package pdpasim

// Determinism regression tests: the same seed and spec must yield
// byte-identical serialized results, run after run and across the Run /
// RunContext entry points. This property is the correctness foundation for
// the runqueue's result cache — a cached outcome is only substitutable for a
// fresh simulation if replaying the spec could never produce different
// bytes.

import (
	"bytes"
	"context"
	"testing"
)

func runJSON(t *testing.T, run func() (*Outcome, error)) []byte {
	t.Helper()
	out, err := run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := out.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDeterministicWriteJSON(t *testing.T) {
	spec := WorkloadSpec{Mix: "w3", Load: 0.8, Seed: 42}
	for _, opts := range []Options{
		{Policy: PDPA, Seed: 42},
		{Policy: Equipartition, Seed: 42},
		{Policy: IRIX, Seed: 42},
	} {
		opts := opts
		t.Run(string(opts.Policy), func(t *testing.T) {
			first := runJSON(t, func() (*Outcome, error) { return Run(spec, opts) })
			again := runJSON(t, func() (*Outcome, error) { return Run(spec, opts) })
			if !bytes.Equal(first, again) {
				t.Fatal("two Run invocations of the same spec produced different JSON")
			}
			viaCtx := runJSON(t, func() (*Outcome, error) {
				return RunContext(context.Background(), spec, opts)
			})
			if !bytes.Equal(first, viaCtx) {
				t.Fatal("RunContext produced different JSON than Run for the same spec")
			}
			if len(first) < 100 {
				t.Fatalf("suspiciously small result: %d bytes", len(first))
			}
		})
	}
}
