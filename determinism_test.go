package pdpasim

// Determinism regression tests: the same seed and spec must yield
// byte-identical serialized results, run after run and across the Run /
// RunContext entry points. This property is the correctness foundation for
// the runqueue's result cache — a cached outcome is only substitutable for a
// fresh simulation if replaying the spec could never produce different
// bytes.

import (
	"bytes"
	"context"
	"testing"
	"time"
)

func runJSON(t *testing.T, run func() (*Outcome, error)) []byte {
	t.Helper()
	out, err := run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := out.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDeterministicSweepAcrossWorkers extends the determinism guarantee to
// the sweep engine: the serialized grid result must be byte-identical no
// matter how many workers executed it, and identical run to run. This is
// what makes parallel sweeps substitutable for serial ones.
func TestDeterministicSweepAcrossWorkers(t *testing.T) {
	spec := SweepSpec{
		Policies: []Policy{PDPA, Equipartition, IRIX},
		Mixes:    []string{"w1", "w3"},
		Loads:    []float64{1.0},
		Seeds:    []int64{1, 2},
		NCPU:     32,
		Window:   60 * time.Second,
	}
	sweepJSON := func(workers int) []byte {
		t.Helper()
		spec := spec
		spec.Workers = workers
		res, err := Sweep(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	baseline := sweepJSON(1)
	if len(baseline) < 100 {
		t.Fatalf("suspiciously small sweep result: %d bytes", len(baseline))
	}
	for _, workers := range []int{1, 2, 4, 8} {
		if !bytes.Equal(baseline, sweepJSON(workers)) {
			t.Fatalf("sweep with %d workers produced different bytes than 1 worker", workers)
		}
	}
}

func TestDeterministicWriteJSON(t *testing.T) {
	spec := WorkloadSpec{Mix: "w3", Load: 0.8, Seed: 42}
	for _, opts := range []Options{
		{Policy: PDPA, Seed: 42},
		{Policy: Equipartition, Seed: 42},
		{Policy: IRIX, Seed: 42},
	} {
		opts := opts
		t.Run(string(opts.Policy), func(t *testing.T) {
			run := func() (*Outcome, error) {
				return RunContext(context.Background(), spec, opts)
			}
			first := runJSON(t, run)
			again := runJSON(t, run)
			if !bytes.Equal(first, again) {
				t.Fatal("two RunContext invocations of the same spec produced different JSON")
			}
			if len(first) < 100 {
				t.Fatalf("suspiciously small result: %d bytes", len(first))
			}
		})
	}
}
