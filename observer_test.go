package pdpasim

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func traceSpec(seed int64) (WorkloadSpec, Options) {
	spec := WorkloadSpec{Mix: "w1", Load: 0.6, Window: 60 * time.Second, Seed: seed}
	opts := Options{Policy: PDPA, Seed: seed, DecisionTrace: DecisionTraceUnlimited}
	return spec, opts
}

func traceJSON(t *testing.T) []byte {
	t.Helper()
	spec, opts := traceSpec(7)
	out, err := RunContext(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	dt := out.DecisionTrace()
	if dt == nil {
		t.Fatal("no decision trace despite DecisionTrace option")
	}
	var buf bytes.Buffer
	if err := dt.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDecisionTraceDeterminism: for a fixed seed the serialized decision
// trace is byte-identical run after run, including runs racing on other
// goroutines (the property that lets traces explain cached results — and
// that `go test -race` exercises for cross-goroutine interference).
func TestDecisionTraceDeterminism(t *testing.T) {
	want := traceJSON(t)
	if got := traceJSON(t); !bytes.Equal(want, got) {
		t.Fatal("sequential reruns produced different trace bytes")
	}
	const workers = 4
	got := make([][]byte, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = traceJSON(t)
		}(i)
	}
	wg.Wait()
	for i, g := range got {
		if !bytes.Equal(want, g) {
			t.Fatalf("concurrent rerun %d produced different trace bytes", i)
		}
	}
}

// TestDecisionTraceCoverage: the trace records what the tentpole promises —
// every PDPA state transition with its measured efficiency input, admission
// decisions with reasons, and machine reallocations — bracketed by run
// lifecycle events.
func TestDecisionTraceCoverage(t *testing.T) {
	spec, opts := traceSpec(3)
	out, err := RunContext(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	dt := out.DecisionTrace()
	events := dt.Events()
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	if events[0].Kind != "run_start" || events[len(events)-1].Kind != "run_end" {
		t.Fatalf("trace bracket %s..%s, want run_start..run_end",
			events[0].Kind, events[len(events)-1].Kind)
	}
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has Seq %d", i, e.Seq)
		}
	}
	var sawEff, sawReason, sawStates bool
	for _, e := range events {
		switch e.Kind {
		case "policy_state":
			if e.From == "" || e.To == "" {
				t.Fatalf("policy_state without state names: %+v", e)
			}
			if e.Eff > 0 {
				sawEff = true
			}
			sawStates = true
		case "admit", "deny":
			if e.Reason == "" {
				t.Fatalf("%s without a reason: %+v", e.Kind, e)
			}
			sawReason = true
		}
	}
	if !sawStates || !sawEff {
		t.Error("no policy_state transition with a measured efficiency input")
	}
	if !sawReason {
		t.Error("no admission decision with a reason")
	}
	if dt.CountKind("realloc") == 0 {
		t.Error("no realloc events")
	}
	if dt.CountKind("job_start") == 0 || dt.CountKind("job_done") == 0 {
		t.Error("job lifecycle missing from trace")
	}

	// The human rendering mentions the PDPA states by name.
	var text bytes.Buffer
	if err := dt.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "NO_REF") {
		t.Error("text rendering lacks PDPA state names")
	}
}

// TestObserverStreamMatchesTrace: an Observer sees exactly the retained
// event stream, and an Observer alone streams without retaining.
func TestObserverStreamMatchesTrace(t *testing.T) {
	spec, opts := traceSpec(5)
	var streamed []TraceEvent
	opts.Observer = ObserverFunc(func(e TraceEvent) { streamed = append(streamed, e) })
	out, err := RunContext(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	retained := out.DecisionTrace().Events()
	if len(streamed) != len(retained) {
		t.Fatalf("observer saw %d events, trace retained %d", len(streamed), len(retained))
	}
	for i := range streamed {
		if streamed[i] != retained[i] {
			t.Fatalf("event %d differs: streamed %+v retained %+v", i, streamed[i], retained[i])
		}
	}

	// Observer without DecisionTrace: streaming only, nothing retained.
	streamed = nil
	opts.DecisionTrace = 0
	out, err = RunContext(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(retained) {
		t.Fatalf("stream-only observer saw %d events, want %d", len(streamed), len(retained))
	}
	if out.DecisionTrace() != nil {
		t.Fatal("stream-only run retained a trace")
	}
}

// TestDecisionTraceLimit: a bounded trace keeps the first N events and
// counts the overflow, and Validate rejects nonsense limits.
func TestDecisionTraceLimit(t *testing.T) {
	spec, opts := traceSpec(7)
	opts.DecisionTrace = 10
	out, err := RunContext(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	dt := out.DecisionTrace()
	if dt.Len() != 10 {
		t.Fatalf("retained %d events, want 10", dt.Len())
	}
	if dt.Dropped() == 0 {
		t.Fatal("no events counted as dropped beyond the limit")
	}

	opts.DecisionTrace = -2
	if err := opts.Validate(); err == nil {
		t.Fatal("Validate accepted DecisionTrace -2")
	}
}

// TestSweepObserver: SweepSpec.Observer receives one sweep_run event per
// completed run with progress counts, and flags each cell's last replicate.
func TestSweepObserver(t *testing.T) {
	var mu sync.Mutex
	var events []TraceEvent
	sweepSpec := SweepSpec{
		Policies: []Policy{Equipartition, PDPA},
		Mixes:    []string{"w1"},
		Loads:    []float64{0.6},
		Seeds:    []int64{1, 2},
		Window:   45 * time.Second,
		Observer: ObserverFunc(func(e TraceEvent) {
			mu.Lock()
			events = append(events, e)
			mu.Unlock()
		}),
	}
	if _, err := Sweep(context.Background(), sweepSpec); err != nil {
		t.Fatal(err)
	}
	const total = 4 // 2 policies × 1 mix × 1 load × 2 seeds
	if len(events) != total {
		t.Fatalf("observer saw %d events, want %d", len(events), total)
	}
	cellsDone := 0
	for _, e := range events {
		if e.Kind != "sweep_run" {
			t.Fatalf("unexpected kind %q", e.Kind)
		}
		if e.Total != total || e.Done < 1 || e.Done > total || e.ID == "" {
			t.Fatalf("bad progress event: %+v", e)
		}
		if e.State == "cell_done" {
			cellsDone++
		}
	}
	if cellsDone != 2 {
		t.Fatalf("%d cell_done events, want 2 (one per cell)", cellsDone)
	}
}
