// Package pdpasim is a full reproduction of "Performance-Driven Processor
// Allocation" (Corbalan, Martorell, Labarta; OSDI 2000): the PDPA
// coordinated scheduling policy, the NANOS execution environment it lives in
// (resource manager, queuing system, runtime library, SelfAnalyzer), the
// baseline policies it is evaluated against (native IRIX scheduling,
// Equipartition, Equal_efficiency), and the workloads and experiments of the
// paper's evaluation — all running on a deterministic discrete-event model
// of a 64-processor CC-NUMA machine.
//
// The package exposes a small façade over the internal packages:
//
//	spec := pdpasim.WorkloadSpec{Mix: "w3", Load: 1.0}
//	out, err := pdpasim.RunContext(ctx, spec, pdpasim.Options{Policy: pdpasim.PDPA})
//	fmt.Println(out.Summary())
//
// runs workload 3 (half bt.A, half apsi) at 100% machine demand under PDPA
// and reports per-class response and execution times, the multiprogramming
// level PDPA chose, and scheduling-stability statistics.
//
// Comparative studies — the paper's own methodology — are batch-first: Sweep
// runs a whole policy × mix × load × seed grid across a bounded worker pool,
// generating each workload trace once and replaying it read-only under every
// policy, then aggregates the seed replicates into per-cell mean, standard
// deviation, and 95% confidence intervals:
//
//	res, err := pdpasim.Sweep(ctx, pdpasim.SweepSpec{
//		Policies: pdpasim.Policies(),          // irix, equip, equal_eff, pdpa
//		Mixes:    []string{"w3"},
//		Loads:    []float64{0.6, 1.0},
//		Seeds:    []int64{1, 2, 3},
//	})
//	c := res.Cell(pdpasim.PDPA, "w3", 1.0)
//	fmt.Printf("makespan %.0fs ±%.0f\n", c.Makespan.Mean, c.Makespan.CI95)
//
// The grid result is deterministic — byte-identical at any SweepSpec.Workers
// setting — so cached and fresh sweeps are interchangeable. See
// examples/policycompare for a complete capacity-planning study built on one
// Sweep call.
//
// Every table and figure of the paper can be regenerated through
// RunExperiment (or `go test -bench .` / cmd/experiments); see DESIGN.md for
// the per-experiment index and EXPERIMENTS.md for measured-versus-paper
// results.
//
// Every layer shares one observability hook: an Observer receives the
// unified TraceEvent stream — a run's decision trace (every PDPA state
// transition with its measured efficiency, every admission decision with
// its reason, every reallocation), a sweep's per-run completions, and the
// daemon's run lifecycle are three adapters over the same schema. Set
// Options.DecisionTrace to retain a run's trace and read it back through
// Outcome.DecisionTrace; with no observer and no trace limit the hooks
// compile down to nil checks and the simulation allocates nothing extra
// (enforced by the benchmark gate). See the README's "Observability"
// section.
//
// # API migration
//
// Earlier revisions exposed several narrower hooks; each remains as a thin
// compatibility wrapper, and new code should use the replacement:
//
//   - Run(spec, opts) → RunContext(ctx, spec, opts): identical result bytes,
//     plus mid-simulation cancellation when ctx ends.
//   - RunSWF(r, opts) → RunSWFContext(ctx, r, opts): same as above for SWF
//     replay.
//   - SweepSpec.Progress → SweepSpec.Observer: the callback survives as an
//     adapter over the Observer stream; an Observer receives the identical
//     completions as "sweep_run" TraceEvents.
//
// The deprecated forms are frozen — they delegate in one line and gain no
// new behavior — and scripts/depcheck.sh (run in CI) keeps non-test code off
// them.
//
// Simulations can also be served as a service: cmd/pdpad is an HTTP daemon
// (see the README's quickstart) whose worker pool reuses PDPA's own
// admission rule, backed by internal/runqueue (PDPA-governed admission,
// canonical-config-hash result cache, singleflight dedup, per-run deadlines,
// per-run decision traces, graceful drain) and internal/server (JSON API,
// server-sent progress events, decision-trace endpoint, Prometheus metrics).
package pdpasim
