// Package pdpasim is a full reproduction of "Performance-Driven Processor
// Allocation" (Corbalan, Martorell, Labarta; OSDI 2000): the PDPA
// coordinated scheduling policy, the NANOS execution environment it lives in
// (resource manager, queuing system, runtime library, SelfAnalyzer), the
// baseline policies it is evaluated against (native IRIX scheduling,
// Equipartition, Equal_efficiency), and the workloads and experiments of the
// paper's evaluation — all running on a deterministic discrete-event model
// of a 64-processor CC-NUMA machine.
//
// The package exposes a small façade over the internal packages:
//
//	spec := pdpasim.WorkloadSpec{Mix: "w3", Load: 1.0}
//	out, err := pdpasim.RunContext(ctx, spec, pdpasim.Options{Policy: pdpasim.PDPA})
//	fmt.Println(out.Summary())
//
// runs workload 3 (half bt.A, half apsi) at 100% machine demand under PDPA
// and reports per-class response and execution times, the multiprogramming
// level PDPA chose, and scheduling-stability statistics.
//
// Comparative studies — the paper's own methodology — are batch-first: Sweep
// runs a whole policy × mix × load × seed grid across a bounded worker pool,
// generating each workload trace once and replaying it read-only under every
// policy, then aggregates the seed replicates into per-cell mean, standard
// deviation, and 95% confidence intervals:
//
//	res, err := pdpasim.Sweep(ctx, pdpasim.SweepSpec{
//		Policies: pdpasim.Policies(),          // irix, equip, equal_eff, pdpa
//		Mixes:    []string{"w3"},
//		Loads:    []float64{0.6, 1.0},
//		Seeds:    []int64{1, 2, 3},
//	})
//	c := res.Cell(pdpasim.PDPA, "w3", 1.0)
//	fmt.Printf("makespan %.0fs ±%.0f\n", c.Makespan.Mean, c.Makespan.CI95)
//
// The grid result is deterministic — byte-identical at any SweepSpec.Workers
// setting — so cached and fresh sweeps are interchangeable. See
// examples/policycompare for a complete capacity-planning study built on one
// Sweep call.
//
// Long-lived callers amortize per-run construction with a Runner: one run's
// arenas — the event-heap backing, trace recorder, machine, queuing slabs,
// and per-job runtime state — are recycled into the next run instead of
// being rebuilt, cutting the steady-state run path to a handful of
// allocations. Reuse is contractually invisible: a reused Runner's outcome
// and decision trace are byte-for-byte what a fresh environment produces
// for the same spec (a regression suite interleaves policies, seeds, and
// machine sizes on one Runner to enforce this). A Runner is not safe for
// concurrent use; give each goroutine its own, as the sweep pool gives one
// to each worker.
//
// # Throughput mode
//
// Options.Throughput > 1 enables coarse throughput mode: up to that many
// undisturbed iterations of a running job are fused into a single engine
// event, so multi-month submission windows — millions of jobs — simulate in
// seconds per million jobs instead of minutes (BenchmarkSweepManyJobs
// drives one sweep cell through >1M jobs this way; `make bench-throughput`
// runs it once).
//
// What fusion drops is measurement granularity only: the SelfAnalyzer
// observes one measured iteration per fused span rather than every
// iteration, so measured efficiencies — and therefore PDPA's allocation
// decisions — can differ slightly from exact mode. Everything structural
// stays exact: fusion never crosses an iteration-space phase boundary,
// never spans a baseline measurement, and collapses immediately when the
// scheduler changes the job's allocation mid-span, so reallocation
// response is not delayed. Fused runs are fully deterministic per seed —
// byte-identical across repeats, worker counts, and fresh-versus-reused
// Runners — but are not byte-equal to exact mode; compare fused results
// only against fused results. The IRIX time-sharing model re-rates jobs
// every quantum, which would collapse every fusion, so it ignores the
// stride: IRIX results are byte-identical with or without Throughput set.
//
// The same switch is SweepSpec.Throughput for grids and `pdpasim
// -throughput N` on the command line (see EXPERIMENTS.md for a worked
// example and measured event reductions).
//
// Every table and figure of the paper can be regenerated through
// RunExperiment (or `go test -bench .` / cmd/experiments); see DESIGN.md for
// the per-experiment index and EXPERIMENTS.md for measured-versus-paper
// results.
//
// Every layer shares one observability hook: an Observer receives the
// unified TraceEvent stream — a run's decision trace (every PDPA state
// transition with its measured efficiency, every admission decision with
// its reason, every reallocation), a sweep's per-run completions, and the
// daemon's run lifecycle are three adapters over the same schema. Set
// Options.DecisionTrace to retain a run's trace and read it back through
// Outcome.DecisionTrace; with no observer and no trace limit the hooks
// compile down to nil checks and the simulation allocates nothing extra
// (enforced by the benchmark gate). See the README's "Observability"
// section.
//
// # API migration
//
// The v1 cleanup removed the compatibility wrappers earlier revisions kept
// for narrower hooks. Code still using a removed symbol migrates
// mechanically:
//
//   - Run(spec, opts) was removed → call RunContext(ctx, spec, opts):
//     identical result bytes, plus mid-simulation cancellation when ctx
//     ends. context.Background() reproduces the old behavior exactly.
//   - RunSWF(r, opts) was removed → call RunSWFContext(ctx, r, opts): same
//     as above for SWF replay.
//   - SweepSpec.Progress and the SweepProgress type were removed → set
//     SweepSpec.Observer: it receives the identical completions as
//     "sweep_run" TraceEvents (the event ID is "policy/mix/load/seed";
//     State "cell_done" marks a cell's last replicate).
//
// scripts/depcheck.sh (run in CI) keeps the removed symbols removed and
// rejects new Deprecated: markers without a recorded removal plan.
//
// In the same cleanup, the pdpad daemon's HTTP API settled its v1 error
// contract: every non-2xx response carries one envelope,
//
//	{"error": {"code": "...", "message": "...", "retry_after_seconds": N}}
//
// with a stable machine-readable code (internal/server documents the code
// set) and a retry hint mirrored in the Retry-After header exactly when
// retrying later can succeed. Clients that matched on the old flat
// {"error": "..."} body should read .error.code instead. The list
// endpoints (GET /v1/runs, GET /v1/sweeps) now paginate: pass limit= and
// follow next_cursor; state= filters by lifecycle state.
//
// Simulations can also be served as a service: cmd/pdpad is an HTTP daemon
// (see the README's quickstart) whose worker pool reuses PDPA's own
// admission rule, backed by internal/runqueue (PDPA-governed admission,
// canonical-config-hash result cache, singleflight dedup, per-run deadlines,
// per-run decision traces, graceful drain) and internal/server (JSON API,
// server-sent progress events, decision-trace endpoint, Prometheus metrics).
package pdpasim
