package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// maxErrorBody bounds how much of an error response the client reads.
const maxErrorBody = 1 << 20

// Client talks to one pdpad daemon (standalone, node, or coordinator).
// The zero value is not usable; create with New. All methods are safe for
// concurrent use.
type Client struct {
	base         string
	hc           *http.Client
	retries      int
	retryWaitCap time.Duration
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the http.Client used for every request (the
// default is a fresh client with no timeout — pass one with a timeout, or
// bound calls with contexts).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetries makes retryable rejections — 429 sheds and 503s carrying a
// retry hint — retry up to n times, sleeping the advertised
// retry_after_seconds (capped by WithRetryWaitCap) between attempts. The
// default 0 surfaces every rejection as an *APIError.
func WithRetries(n int) Option {
	return func(c *Client) { c.retries = n }
}

// WithRetryWaitCap bounds the per-attempt retry sleep (default 30s).
func WithRetryWaitCap(d time.Duration) Option {
	return func(c *Client) { c.retryWaitCap = d }
}

// New returns a client for the daemon at base (e.g. "http://localhost:8080").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:         strings.TrimRight(base, "/"),
		hc:           &http.Client{},
		retryWaitCap: 30 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Base returns the daemon base URL the client targets.
func (c *Client) Base() string { return c.base }

// APIError is a non-2xx response carrying a well-formed v1 error envelope.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the envelope's stable machine-readable discriminator
	// ("overloaded", "queue_full", "draining", "not_found", ...).
	Code string
	// Message is the envelope's free-form message.
	Message string
	// RetryAfterSeconds is the envelope's retry hint; 0 means none.
	RetryAfterSeconds int
}

func (e *APIError) Error() string {
	return fmt.Sprintf("pdpad: %s (%d): %s", e.Code, e.Status, e.Message)
}

// IsShed reports whether the error is an admission rejection worth
// retrying after the advertised pause (a 429 shed).
func (e *APIError) IsShed() bool {
	return e.Status == http.StatusTooManyRequests
}

// ContractError is a response outside the v1 contract: a non-2xx without a
// well-formed envelope, a 2xx whose body does not decode, or a 429 whose
// Retry-After header disagrees with its envelope hint.
type ContractError struct {
	Status int
	Detail string
	// Body is the offending response body, bounded.
	Body []byte
}

func (e *ContractError) Error() string {
	return fmt.Sprintf("pdpad: response outside the v1 contract (status %d): %s", e.Status, e.Detail)
}

// errorEnvelope is the wire form of every non-2xx v1 response.
type errorEnvelope struct {
	Error struct {
		Code              string `json:"code"`
		Message           string `json:"message"`
		RetryAfterSeconds int    `json:"retry_after_seconds"`
	} `json:"error"`
}

// Do performs one JSON round trip against the v1 surface: method and path
// (e.g. "GET", "/v1/runs/run-000001"), an optional request body in, an
// optional response destination out. Non-2xx responses become *APIError or
// *ContractError; retryable rejections honor the client's retry budget.
// Do is exported as the escape hatch for endpoints without a typed method.
func (c *Client) Do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("pdpad: encoding request: %w", err)
		}
	}
	for attempt := 0; ; attempt++ {
		err := c.once(ctx, method, path, body, out)
		var apiErr *APIError
		if err == nil || attempt >= c.retries || !errors.As(err, &apiErr) {
			return err
		}
		if !retryable(apiErr) {
			return err
		}
		wait := time.Duration(apiErr.RetryAfterSeconds) * time.Second
		if wait > c.retryWaitCap {
			wait = c.retryWaitCap
		}
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
}

// retryable reports whether an envelope error is worth retrying after its
// advertised pause: sheds always are, 503s only when they hint.
func retryable(e *APIError) bool {
	switch e.Status {
	case http.StatusTooManyRequests:
		return true
	case http.StatusServiceUnavailable:
		return e.RetryAfterSeconds > 0
	}
	return false
}

// once performs a single attempt of Do.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("pdpad: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("pdpad: %s %s: %w", method, path, err)
	}
	data, readErr := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
	resp.Body.Close()
	if readErr != nil {
		return fmt.Errorf("pdpad: reading response: %w", readErr)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil {
			return nil
		}
		if err := json.Unmarshal(data, out); err != nil {
			return &ContractError{Status: resp.StatusCode,
				Detail: fmt.Sprintf("undecodable success body: %v", err), Body: data}
		}
		return nil
	}
	return decodeAPIError(resp, data)
}

// decodeAPIError turns a non-2xx response into *APIError, or *ContractError
// when the response violates the envelope contract.
func decodeAPIError(resp *http.Response, data []byte) error {
	var env errorEnvelope
	if err := json.Unmarshal(data, &env); err != nil || env.Error.Code == "" {
		return &ContractError{Status: resp.StatusCode,
			Detail: "non-2xx without a well-formed error envelope", Body: data}
	}
	apiErr := &APIError{
		Status:            resp.StatusCode,
		Code:              env.Error.Code,
		Message:           env.Error.Message,
		RetryAfterSeconds: env.Error.RetryAfterSeconds,
	}
	// The shed contract: a 429 must advertise a positive hint, identically
	// in the envelope and the Retry-After header.
	if resp.StatusCode == http.StatusTooManyRequests {
		header := resp.Header.Get("Retry-After")
		if apiErr.RetryAfterSeconds < 1 || header != strconv.Itoa(apiErr.RetryAfterSeconds) {
			return &ContractError{Status: resp.StatusCode,
				Detail: fmt.Sprintf("429 without a coherent retry hint (header %q, envelope %d)",
					header, apiErr.RetryAfterSeconds),
				Body: data}
		}
	}
	return apiErr
}

// Version fetches GET /v1/version.
func (c *Client) Version(ctx context.Context) (VersionInfo, error) {
	var v VersionInfo
	err := c.Do(ctx, http.MethodGet, "/v1/version", nil, &v)
	return v, err
}

// Health fetches GET /healthz.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.Do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// SubmitRun submits one run.
func (c *Client) SubmitRun(ctx context.Context, req SubmitRunRequest) (SubmitResult, error) {
	var res SubmitResult
	err := c.Do(ctx, http.MethodPost, "/v1/runs", req, &res)
	return res, err
}

// Run fetches one run's status (result included once done).
func (c *Client) Run(ctx context.Context, id string) (RunView, error) {
	var v RunView
	err := c.Do(ctx, http.MethodGet, "/v1/runs/"+url.PathEscape(id), nil, &v)
	return v, err
}

// CancelRun cancels a queued or running run.
func (c *Client) CancelRun(ctx context.Context, id string) (RunView, error) {
	var v RunView
	err := c.Do(ctx, http.MethodDelete, "/v1/runs/"+url.PathEscape(id), nil, &v)
	return v, err
}

// Trace fetches a run's recorded decision trace JSON.
func (c *Client) Trace(ctx context.Context, id string) (json.RawMessage, error) {
	var raw json.RawMessage
	err := c.Do(ctx, http.MethodGet, "/v1/runs/"+url.PathEscape(id)+"/trace", nil, &raw)
	return raw, err
}

// ReconcileRuns asks a node daemon for the authoritative state of each run
// in ids (POST /v1/runs/reconcile). A recovering coordinator uses this to
// adopt results completed while it was down and to learn which placements
// the node has no record of.
func (c *Client) ReconcileRuns(ctx context.Context, ids []string) (ReconcileResult, error) {
	var res ReconcileResult
	err := c.Do(ctx, http.MethodPost, "/v1/runs/reconcile", ReconcileRequest{IDs: ids}, &res)
	return res, err
}

// ListOptions parameterize one page of a list endpoint.
type ListOptions struct {
	// Limit is the page size (0 = server default).
	Limit int
	// Cursor resumes after a previous page's NextCursor.
	Cursor string
	// State filters to one lifecycle state.
	State string
}

func (o ListOptions) query() string {
	q := url.Values{}
	if o.Limit > 0 {
		q.Set("limit", strconv.Itoa(o.Limit))
	}
	if o.Cursor != "" {
		q.Set("cursor", o.Cursor)
	}
	if o.State != "" {
		q.Set("state", o.State)
	}
	if len(q) == 0 {
		return ""
	}
	return "?" + q.Encode()
}

// Runs fetches one page of runs, newest first.
func (c *Client) Runs(ctx context.Context, opts ListOptions) (RunPage, error) {
	var page RunPage
	err := c.Do(ctx, http.MethodGet, "/v1/runs"+opts.query(), nil, &page)
	return page, err
}

// AllRuns walks every page of the run list and returns the concatenation,
// newest first.
func (c *Client) AllRuns(ctx context.Context, opts ListOptions) ([]RunView, error) {
	var all []RunView
	for {
		page, err := c.Runs(ctx, opts)
		if err != nil {
			return all, err
		}
		all = append(all, page.Runs...)
		if page.NextCursor == "" {
			return all, nil
		}
		opts.Cursor = page.NextCursor
	}
}

// WaitRun polls a run until it reaches a terminal state and returns the
// final view. poll is the probe cadence (0 = 20ms). The context bounds the
// wait.
func (c *Client) WaitRun(ctx context.Context, id string, poll time.Duration) (RunView, error) {
	if poll <= 0 {
		poll = 20 * time.Millisecond
	}
	for {
		v, err := c.Run(ctx, id)
		if err != nil {
			return v, err
		}
		if v.Terminal() {
			return v, nil
		}
		t := time.NewTimer(poll)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return v, ctx.Err()
		}
	}
}

// SubmitSweep submits one grid.
func (c *Client) SubmitSweep(ctx context.Context, req SubmitSweepRequest) (SweepSubmitResult, error) {
	var res SweepSubmitResult
	err := c.Do(ctx, http.MethodPost, "/v1/sweeps", req, &res)
	return res, err
}

// Sweep fetches one sweep's status (cells included once done).
func (c *Client) Sweep(ctx context.Context, id string) (SweepView, error) {
	var v SweepView
	err := c.Do(ctx, http.MethodGet, "/v1/sweeps/"+url.PathEscape(id), nil, &v)
	return v, err
}

// CancelSweep cancels a sweep's remaining members.
func (c *Client) CancelSweep(ctx context.Context, id string) (SweepView, error) {
	var v SweepView
	err := c.Do(ctx, http.MethodDelete, "/v1/sweeps/"+url.PathEscape(id), nil, &v)
	return v, err
}

// Sweeps fetches one page of sweeps, newest first.
func (c *Client) Sweeps(ctx context.Context, opts ListOptions) (SweepPage, error) {
	var page SweepPage
	err := c.Do(ctx, http.MethodGet, "/v1/sweeps"+opts.query(), nil, &page)
	return page, err
}

// WaitSweep polls a sweep until every member is terminal and returns the
// final view. poll is the probe cadence (0 = 20ms).
func (c *Client) WaitSweep(ctx context.Context, id string, poll time.Duration) (SweepView, error) {
	if poll <= 0 {
		poll = 20 * time.Millisecond
	}
	for {
		v, err := c.Sweep(ctx, id)
		if err != nil {
			return v, err
		}
		if Terminal(v.State) {
			return v, nil
		}
		t := time.NewTimer(poll)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return v, ctx.Err()
		}
	}
}

// Nodes fetches one page of a coordinator's node list.
func (c *Client) Nodes(ctx context.Context, opts ListOptions) (NodePage, error) {
	var page NodePage
	err := c.Do(ctx, http.MethodGet, "/v1/nodes"+opts.query(), nil, &page)
	return page, err
}

// CordonNode stops new placements on a node; running and queued work stays.
func (c *Client) CordonNode(ctx context.Context, id string) (NodeView, error) {
	var v NodeView
	err := c.Do(ctx, http.MethodPost, "/v1/nodes/"+url.PathEscape(id)+"/cordon", nil, &v)
	return v, err
}

// UncordonNode reverses CordonNode.
func (c *Client) UncordonNode(ctx context.Context, id string) (NodeView, error) {
	var v NodeView
	err := c.Do(ctx, http.MethodPost, "/v1/nodes/"+url.PathEscape(id)+"/uncordon", nil, &v)
	return v, err
}

// DrainNode cordons a node and requeues its placed runs onto other nodes.
func (c *Client) DrainNode(ctx context.Context, id string) (NodeView, error) {
	var v NodeView
	err := c.Do(ctx, http.MethodPost, "/v1/nodes/"+url.PathEscape(id)+"/drain", nil, &v)
	return v, err
}

// Metrics scrapes GET /metrics and sums each family's series by base name
// (labels collapsed) — the slice of Prometheus exposition a load test or
// smoke script wants to assert on.
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, fmt.Errorf("pdpad: building request: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("pdpad: GET /metrics: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
	if err != nil {
		return nil, fmt.Errorf("pdpad: reading metrics: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &ContractError{Status: resp.StatusCode, Detail: "metrics scrape failed", Body: data}
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, rest, found := strings.Cut(line, " ")
		if !found {
			continue
		}
		base, _, _ := strings.Cut(name, "{")
		var v float64
		if _, err := fmt.Sscanf(rest, "%g", &v); err == nil {
			out[base] += v
		}
	}
	return out, nil
}

// CloseIdleConnections drops pooled keep-alive connections so their
// background goroutines exit — call before a goroutine-leak check.
func (c *Client) CloseIdleConnections() { c.hc.CloseIdleConnections() }
