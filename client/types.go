package client

// Wire-type mirrors of the v1 API. JSON tags match the server's types
// field for field (the drift tests in client_test.go enforce it); the
// mirrors exist so this package imports nothing from the daemon internals.

import (
	"encoding/json"
	"time"
)

// Workload mirrors the server's workload spec: what workload to generate.
// Zero fields take the simulator's defaults (load 1.0, 60 CPUs, 300 s
// window).
type Workload struct {
	// Mix is "w1", "w2", "w3", or "w4".
	Mix string `json:"mix"`
	// Load is the estimated processor demand fraction; 0 means 1.0.
	Load float64 `json:"load,omitempty"`
	// NCPU is the machine size; 0 means 60.
	NCPU int `json:"ncpu,omitempty"`
	// WindowS is the submission window in seconds; 0 means 300.
	WindowS float64 `json:"window_s,omitempty"`
	// Seed drives the arrival process.
	Seed int64 `json:"seed,omitempty"`
	// UniformRequest forces every job's processor request; 0 keeps tuned
	// requests.
	UniformRequest int `json:"uniform_request,omitempty"`
}

// RunOptions mirrors the server's scheduling options. PDPA parameters left
// zero take the paper's defaults.
type RunOptions struct {
	// Policy is the scheduling regime: irix, gang, equip, equal_eff,
	// dynamic, pdpa, or pdpa_adaptive.
	Policy               string  `json:"policy"`
	TargetEff            float64 `json:"target_eff,omitempty"`
	HighEff              float64 `json:"high_eff,omitempty"`
	Step                 int     `json:"step,omitempty"`
	BaseMPL              int     `json:"base_mpl,omitempty"`
	MaxStableTransitions int     `json:"max_stable_transitions,omitempty"`
	FixedMPL             int     `json:"fixed_mpl,omitempty"`
	NoiseSigma           float64 `json:"noise_sigma,omitempty"`
	Seed                 int64   `json:"seed,omitempty"`
	NUMANodeSize         int     `json:"numa_node_size,omitempty"`
}

// Spec is a workload plus its scheduling options — one unit of work.
type Spec struct {
	Workload Workload   `json:"workload"`
	Options  RunOptions `json:"options"`
}

// SubmitRunRequest is the POST /v1/runs payload.
type SubmitRunRequest struct {
	Workload Workload   `json:"workload"`
	Options  RunOptions `json:"options"`
	// DeadlineS bounds the run's total latency in seconds, queue wait
	// included; 0 uses the daemon's default.
	DeadlineS float64 `json:"deadline_s,omitempty"`
}

// SubmitResult reports how a run submission was resolved.
type SubmitResult struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// CacheHit: an identical spec had already completed; the result is
	// immediately available.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Deduped: an identical spec was already queued or running; this
	// submission joined it.
	Deduped bool `json:"deduped,omitempty"`
}

// RunView is a run's status, with the full result JSON once done.
type RunView struct {
	ID          string     `json:"id"`
	State       string     `json:"state"`
	Error       string     `json:"error,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	WallSeconds float64    `json:"wall_seconds,omitempty"`
	CacheKey    string     `json:"cache_key"`
	Spec        Spec       `json:"spec"`
	// Result is the Outcome JSON, present once State is "done".
	Result json.RawMessage `json:"result,omitempty"`
}

// Terminal reports whether the view's state is final.
func (v *RunView) Terminal() bool { return Terminal(v.State) }

// Terminal reports whether a run state string is final.
func Terminal(state string) bool {
	switch state {
	case "done", "failed", "canceled":
		return true
	}
	return false
}

// RunPage is one page of GET /v1/runs, newest first. A non-empty
// NextCursor fetches the next page; its absence marks the last page.
type RunPage struct {
	Runs       []RunView `json:"runs"`
	NextCursor string    `json:"next_cursor,omitempty"`
}

// ReconcileRequest is the POST /v1/runs/reconcile payload: the run IDs a
// restarted coordinator believes the target node owns.
type ReconcileRequest struct {
	IDs []string `json:"ids"`
}

// ReconcileResult answers a reconcile probe: full views (results included)
// for the runs the node has a record of, and the IDs it knows nothing
// about.
type ReconcileResult struct {
	Runs    []RunView `json:"runs,omitempty"`
	Missing []string  `json:"missing,omitempty"`
}

// Event is one server-sent lifecycle event from GET /v1/runs/{id}/events.
type Event struct {
	RunID   string    `json:"run_id"`
	State   string    `json:"state"`
	At      time.Time `json:"at"`
	Message string    `json:"message,omitempty"`
}

// SweepSpec mirrors the server's sweep grid: policies × mixes × loads ×
// seeds, sharing workload parameters and scheduling options.
type SweepSpec struct {
	Policies []string  `json:"policies"`
	Mixes    []string  `json:"mixes"`
	Loads    []float64 `json:"loads,omitempty"`
	Seeds    []int64   `json:"seeds,omitempty"`
	NCPU     int       `json:"ncpu,omitempty"`
	WindowS  float64   `json:"window_s,omitempty"`
	// UniformRequest forces every job's processor request; 0 keeps tuned
	// requests.
	UniformRequest int `json:"uniform_request,omitempty"`
	// Options carries the scheduling knobs shared by every member; its
	// Policy and Seed fields are ignored (the grid supplies them).
	Options RunOptions `json:"options,omitempty"`
}

// SubmitSweepRequest is the POST /v1/sweeps payload.
type SubmitSweepRequest struct {
	SweepSpec
	// DeadlineS bounds each member run's total latency in seconds; 0 uses
	// the daemon's default.
	DeadlineS float64 `json:"deadline_s,omitempty"`
}

// SweepSubmitResult reports how a sweep submission was resolved.
type SweepSubmitResult struct {
	ID string `json:"id"`
	// RunIDs are the member run IDs in grid order (mixes → loads →
	// policies, each cell's seeds contiguous).
	RunIDs    []string `json:"run_ids"`
	CacheHits int      `json:"cache_hits,omitempty"`
	Deduped   int      `json:"deduped,omitempty"`
}

// SweepView is a sweep's status; Cells carries the per-cell aggregate JSON
// once every member is done. It is kept raw so the client stays agnostic
// to the cell schema — and so two sweeps' cells can be compared byte for
// byte, which is the fleet's determinism contract.
type SweepView struct {
	ID          string          `json:"id"`
	State       string          `json:"state"`
	Done        int             `json:"done"`
	Total       int             `json:"total"`
	SubmittedAt time.Time       `json:"submitted_at"`
	Spec        SweepSpec       `json:"spec"`
	RunIDs      []string        `json:"run_ids,omitempty"`
	Errors      []string        `json:"errors,omitempty"`
	Cells       json.RawMessage `json:"cells,omitempty"`
}

// SweepPage is one page of GET /v1/sweeps, newest first.
type SweepPage struct {
	Sweeps     []SweepView `json:"sweeps"`
	NextCursor string      `json:"next_cursor,omitempty"`
}

// VersionInfo is the GET /v1/version payload.
type VersionInfo struct {
	Service   string `json:"service"`
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	// APIRevision is the wire-surface revision; a coordinator refuses
	// nodes whose revision differs from its own.
	APIRevision int `json:"api_revision"`
	// Role is standalone, coordinator, or node.
	Role string `json:"role"`
}

// Health is the GET /healthz payload. The coordinator role adds the node
// counts; the standalone and node roles leave them zero.
type Health struct {
	Status   string  `json:"status"`
	UptimeS  float64 `json:"uptime_s"`
	Queue    int     `json:"queue"`
	Inflight int     `json:"inflight"`
	Nodes    int     `json:"nodes,omitempty"`
	Healthy  int     `json:"healthy,omitempty"`
}

// NodeView is one fleet node as the coordinator reports it on GET
// /v1/nodes. The coordinator itself uses this type to render the
// endpoint, so client and server cannot drift.
type NodeView struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	// Addr is the node's advertised base URL.
	Addr string `json:"addr"`
	// State is healthy, cordoned, unhealthy, or drained.
	State string `json:"state"`
	// Cordoned is the manual placement stop, reported separately because
	// it persists underneath the liveness states.
	Cordoned    bool      `json:"cordoned,omitempty"`
	CPUs        int       `json:"cpus,omitempty"`
	BaseWorkers int       `json:"base_workers,omitempty"`
	MaxWorkers  int       `json:"max_workers,omitempty"`
	RegisteredAt time.Time `json:"registered_at"`
	// LastHeartbeatAt and Heartbeats describe the heartbeat stream;
	// QueueDepth, Inflight, and Draining are the node's last snapshot.
	LastHeartbeatAt time.Time `json:"last_heartbeat_at"`
	Heartbeats      uint64    `json:"heartbeats"`
	QueueDepth      int       `json:"queue_depth"`
	Inflight        int       `json:"inflight"`
	Draining        bool      `json:"draining,omitempty"`
	// Assigned counts the coordinator-tracked runs currently placed on
	// this node and not yet terminal.
	Assigned int `json:"assigned"`
}

// NodePage is one page of GET /v1/nodes, newest first by node ID.
type NodePage struct {
	Nodes      []NodeView `json:"nodes"`
	NextCursor string     `json:"next_cursor,omitempty"`
}

// NodeRegisterRequest mirrors the fleet's POST /v1/nodes/register payload:
// a node announces its address, wire revision, and capacity.
type NodeRegisterRequest struct {
	Name string `json:"name,omitempty"`
	// Addr is the node's advertised base URL.
	Addr string `json:"addr"`
	// APIRevision is the wire revision the node speaks; a mismatch with the
	// coordinator's is refused with code incompatible_revision.
	APIRevision int `json:"api_revision"`
	CPUs        int `json:"cpus,omitempty"`
	BaseWorkers int `json:"base_workers,omitempty"`
	MaxWorkers  int `json:"max_workers,omitempty"`
}

// NodeRegisterResponse acknowledges a registration: the coordinator-assigned
// node ID and the directed heartbeat cadence.
type NodeRegisterResponse struct {
	ID                 string  `json:"id"`
	HeartbeatIntervalS float64 `json:"heartbeat_interval_s"`
}

// NodeHeartbeatRequest mirrors the periodic node → coordinator liveness
// report: the node's current queue-depth/MPL snapshot.
type NodeHeartbeatRequest struct {
	QueueDepth int  `json:"queue_depth"`
	Inflight   int  `json:"inflight"`
	Draining   bool `json:"draining,omitempty"`
}

// NodeHeartbeatResponse tells the node how the coordinator currently sees
// it. A "drained" answer is an instruction to leave the fleet.
type NodeHeartbeatResponse struct {
	State string `json:"state"`
}
