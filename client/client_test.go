package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pdpasim"
	"pdpasim/client"
	"pdpasim/internal/fleet"
	"pdpasim/internal/runqueue"
	"pdpasim/internal/server"
)

// mustJSON marshals v or fails the test.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestWireDrift pins the client mirrors to the daemon's wire types: the
// same values must marshal to the same JSON, field for field. A failure
// here means a daemon type changed without its client mirror.
func TestWireDrift(t *testing.T) {
	at := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	later := at.Add(3 * time.Second)

	serverRun := server.RunView{
		ID: "run-000001", State: "done", Error: "boom",
		SubmittedAt: at, StartedAt: &at, FinishedAt: &later,
		WallSeconds: 3, CacheKey: "k",
		Spec: runqueue.Spec{
			Workload: runqueue.WorkloadSpec{Mix: "w1", Load: 0.6, NCPU: 32, WindowS: 60, Seed: 7, UniformRequest: 4},
			Options: runqueue.RunOptions{Policy: "pdpa", TargetEff: 0.7, HighEff: 0.9, Step: 2, BaseMPL: 3,
				MaxStableTransitions: 5, FixedMPL: 8, NoiseSigma: 0.01, Seed: 9, NUMANodeSize: 4},
		},
		Result: json.RawMessage(`{"ok":true}`),
	}
	clientRun := client.RunView{
		ID: "run-000001", State: "done", Error: "boom",
		SubmittedAt: at, StartedAt: &at, FinishedAt: &later,
		WallSeconds: 3, CacheKey: "k",
		Spec: client.Spec{
			Workload: client.Workload{Mix: "w1", Load: 0.6, NCPU: 32, WindowS: 60, Seed: 7, UniformRequest: 4},
			Options: client.RunOptions{Policy: "pdpa", TargetEff: 0.7, HighEff: 0.9, Step: 2, BaseMPL: 3,
				MaxStableTransitions: 5, FixedMPL: 8, NoiseSigma: 0.01, Seed: 9, NUMANodeSize: 4},
		},
		Result: json.RawMessage(`{"ok":true}`),
	}
	if a, b := mustJSON(t, serverRun), mustJSON(t, clientRun); a != b {
		t.Errorf("RunView drift:\nserver %s\nclient %s", a, b)
	}

	serverSubmit := server.SubmitRequest{
		Workload:  serverRun.Spec.Workload,
		Options:   serverRun.Spec.Options,
		DeadlineS: 5,
	}
	clientSubmit := client.SubmitRunRequest{
		Workload:  clientRun.Spec.Workload,
		Options:   clientRun.Spec.Options,
		DeadlineS: 5,
	}
	if a, b := mustJSON(t, serverSubmit), mustJSON(t, clientSubmit); a != b {
		t.Errorf("SubmitRequest drift:\nserver %s\nclient %s", a, b)
	}

	serverSweep := server.SweepSubmitRequest{
		SweepSpec: runqueue.SweepSpec{
			Policies: []string{"equip"}, Mixes: []string{"w1"}, Loads: []float64{0.5},
			Seeds: []int64{1, 2}, NCPU: 32, WindowS: 30, UniformRequest: 2,
			Options: serverRun.Spec.Options,
		},
		DeadlineS: 5,
	}
	clientSweep := client.SubmitSweepRequest{
		SweepSpec: client.SweepSpec{
			Policies: []string{"equip"}, Mixes: []string{"w1"}, Loads: []float64{0.5},
			Seeds: []int64{1, 2}, NCPU: 32, WindowS: 30, UniformRequest: 2,
			Options: clientRun.Spec.Options,
		},
		DeadlineS: 5,
	}
	if a, b := mustJSON(t, serverSweep), mustJSON(t, clientSweep); a != b {
		t.Errorf("SweepSubmitRequest drift:\nserver %s\nclient %s", a, b)
	}

	serverEvent := runqueue.Event{RunID: "run-000001", State: runqueue.Running, At: at, Message: "m"}
	clientEvent := client.Event{RunID: "run-000001", State: "running", At: at, Message: "m"}
	if a, b := mustJSON(t, serverEvent), mustJSON(t, clientEvent); a != b {
		t.Errorf("Event drift:\nserver %s\nclient %s", a, b)
	}

	serverVersion := server.VersionInfo{Service: "pdpad", Version: "v1", GoVersion: "go", APIRevision: 1, Role: "node"}
	clientVersion := client.VersionInfo{Service: "pdpad", Version: "v1", GoVersion: "go", APIRevision: 1, Role: "node"}
	if a, b := mustJSON(t, serverVersion), mustJSON(t, clientVersion); a != b {
		t.Errorf("VersionInfo drift:\nserver %s\nclient %s", a, b)
	}

	serverReconcileReq := server.ReconcileRequest{IDs: []string{"run-000001", "run-000002"}}
	clientReconcileReq := client.ReconcileRequest{IDs: []string{"run-000001", "run-000002"}}
	if a, b := mustJSON(t, serverReconcileReq), mustJSON(t, clientReconcileReq); a != b {
		t.Errorf("ReconcileRequest drift:\nserver %s\nclient %s", a, b)
	}

	serverReconcile := server.ReconcileResponse{Runs: []server.RunView{serverRun}, Missing: []string{"run-000009"}}
	clientReconcile := client.ReconcileResult{Runs: []client.RunView{clientRun}, Missing: []string{"run-000009"}}
	if a, b := mustJSON(t, serverReconcile), mustJSON(t, clientReconcile); a != b {
		t.Errorf("ReconcileResponse drift:\nserver %s\nclient %s", a, b)
	}
}

// TestNodePlaneWireDrift pins the node-plane wire shapes — register and
// heartbeat in both directions — to their client mirrors, the same way
// TestWireDrift pins the run plane.
func TestNodePlaneWireDrift(t *testing.T) {
	fleetRegister := fleet.RegisterRequest{
		Name: "n1", Addr: "http://127.0.0.1:1", APIRevision: 2,
		CPUs: 32, BaseWorkers: 2, MaxWorkers: 4,
	}
	clientRegister := client.NodeRegisterRequest{
		Name: "n1", Addr: "http://127.0.0.1:1", APIRevision: 2,
		CPUs: 32, BaseWorkers: 2, MaxWorkers: 4,
	}
	if a, b := mustJSON(t, fleetRegister), mustJSON(t, clientRegister); a != b {
		t.Errorf("RegisterRequest drift:\nfleet %s\nclient %s", a, b)
	}
	// The zero-value shapes must agree too: omitempty mismatches only show
	// up on zero fields.
	if a, b := mustJSON(t, fleet.RegisterRequest{}), mustJSON(t, client.NodeRegisterRequest{}); a != b {
		t.Errorf("RegisterRequest zero drift:\nfleet %s\nclient %s", a, b)
	}

	fleetRegResp := fleet.RegisterResponse{ID: "node-001", HeartbeatIntervalS: 2.5}
	clientRegResp := client.NodeRegisterResponse{ID: "node-001", HeartbeatIntervalS: 2.5}
	if a, b := mustJSON(t, fleetRegResp), mustJSON(t, clientRegResp); a != b {
		t.Errorf("RegisterResponse drift:\nfleet %s\nclient %s", a, b)
	}

	fleetBeat := fleet.HeartbeatRequest{QueueDepth: 3, Inflight: 2, Draining: true}
	clientBeat := client.NodeHeartbeatRequest{QueueDepth: 3, Inflight: 2, Draining: true}
	if a, b := mustJSON(t, fleetBeat), mustJSON(t, clientBeat); a != b {
		t.Errorf("HeartbeatRequest drift:\nfleet %s\nclient %s", a, b)
	}
	if a, b := mustJSON(t, fleet.HeartbeatRequest{}), mustJSON(t, client.NodeHeartbeatRequest{}); a != b {
		t.Errorf("HeartbeatRequest zero drift:\nfleet %s\nclient %s", a, b)
	}

	fleetBeatResp := fleet.HeartbeatResponse{State: fleet.StateDrained}
	clientBeatResp := client.NodeHeartbeatResponse{State: "drained"}
	if a, b := mustJSON(t, fleetBeatResp), mustJSON(t, clientBeatResp); a != b {
		t.Errorf("HeartbeatResponse drift:\nfleet %s\nclient %s", a, b)
	}
}

func newDaemon(t *testing.T, cfg runqueue.Config, opts ...server.Option) (*client.Client, *runqueue.Pool) {
	t.Helper()
	pool := runqueue.New(cfg)
	ts := httptest.NewServer(server.New(pool, opts...))
	cli := client.New(ts.URL)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		pool.Drain(ctx)
		cancel()
		ts.Close()
		cli.CloseIdleConnections()
	})
	return cli, pool
}

func instantSim(ctx context.Context, spec runqueue.Spec) (*pdpasim.Outcome, error) {
	ws := pdpasim.WorkloadSpec{Mix: spec.Workload.Mix, Load: 0.2, NCPU: 8,
		Window: 5 * time.Second, Seed: spec.Workload.Seed}
	return pdpasim.RunContext(ctx, ws, pdpasim.Options{Policy: pdpasim.Equipartition})
}

func TestClientEndToEnd(t *testing.T) {
	cli, _ := newDaemon(t, runqueue.Config{Warmup: time.Millisecond, Simulate: instantSim})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	v, err := cli.Version(ctx)
	if err != nil || v.Role != server.RoleStandalone || v.APIRevision != server.APIRevision {
		t.Fatalf("version = %+v, err %v", v, err)
	}
	h, err := cli.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("health = %+v, err %v", h, err)
	}

	sub, err := cli.SubmitRun(ctx, client.SubmitRunRequest{
		Workload: client.Workload{Mix: "w1", Seed: 1},
		Options:  client.RunOptions{Policy: "equip"},
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := cli.WaitRun(ctx, sub.ID, 0)
	if err != nil || run.State != "done" || len(run.Result) == 0 {
		t.Fatalf("run = %+v, err %v", run, err)
	}
	// The stubbed simulator records no decision trace; the absence must
	// surface as the typed 404, not a contract violation.
	if _, err := cli.Trace(ctx, sub.ID); err != nil {
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
			t.Fatalf("trace: %v", err)
		}
	}

	var states []string
	if err := cli.FollowRun(ctx, sub.ID, func(ev client.Event) bool {
		states = append(states, ev.State)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(states) == 0 || states[len(states)-1] != "done" {
		t.Errorf("SSE states = %v", states)
	}

	// Pagination: five runs, pages of two, walked to exhaustion.
	for seed := int64(2); seed <= 5; seed++ {
		if _, err := cli.SubmitRun(ctx, client.SubmitRunRequest{
			Workload: client.Workload{Mix: "w1", Seed: seed},
			Options:  client.RunOptions{Policy: "equip"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	all, err := cli.AllRuns(ctx, client.ListOptions{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 {
		t.Fatalf("AllRuns = %d runs, want 5", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID < all[i].ID {
			t.Fatalf("AllRuns not newest-first: %s before %s", all[i-1].ID, all[i].ID)
		}
	}

	sw, err := cli.SubmitSweep(ctx, client.SubmitSweepRequest{SweepSpec: client.SweepSpec{
		Policies: []string{"equip"}, Mixes: []string{"w1"}, Seeds: []int64{1, 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	sv, err := cli.WaitSweep(ctx, sw.ID, 0)
	if err != nil || sv.State != "done" || len(sv.Cells) == 0 {
		t.Fatalf("sweep = %+v, err %v", sv, err)
	}
	page, err := cli.Sweeps(ctx, client.ListOptions{})
	if err != nil || len(page.Sweeps) != 1 {
		t.Fatalf("sweeps page = %+v, err %v", page, err)
	}

	met, err := cli.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if met["pdpad_runs_finished_total"] < 5 {
		t.Errorf("runs_finished_total = %v, want >= 5", met["pdpad_runs_finished_total"])
	}
}

func TestNotFoundIsAPIError(t *testing.T) {
	cli, _ := newDaemon(t, runqueue.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := cli.Run(ctx, "run-999999")
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.Status != http.StatusNotFound || apiErr.Code != server.CodeNotFound {
		t.Fatalf("err = %v, want 404 %s", err, server.CodeNotFound)
	}
}

// TestRetriesShed: the client retries 429 sheds for the advertised pause
// and succeeds once capacity returns.
func TestRetriesShed(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			server.WriteRetryError(w, http.StatusTooManyRequests, server.CodeOverloaded,
				fmt.Errorf("shed"), 1)
			return
		}
		server.WriteJSON(w, http.StatusAccepted, server.SubmitResponse{ID: "run-000001", State: "queued"})
	}))
	defer ts.Close()
	cli := client.New(ts.URL, client.WithRetries(3), client.WithRetryWaitCap(time.Millisecond))
	defer cli.CloseIdleConnections()
	sub, err := cli.SubmitRun(context.Background(), client.SubmitRunRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID != "run-000001" || calls.Load() != 3 {
		t.Fatalf("sub = %+v after %d calls", sub, calls.Load())
	}
}

// TestRetryBudgetExhausted: with no retries, a shed surfaces as *APIError
// carrying the hint.
func TestRetryBudgetExhausted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		server.WriteRetryError(w, http.StatusTooManyRequests, server.CodeOverloaded, fmt.Errorf("shed"), 7)
	}))
	defer ts.Close()
	cli := client.New(ts.URL)
	defer cli.CloseIdleConnections()
	_, err := cli.SubmitRun(context.Background(), client.SubmitRunRequest{})
	apiErr, ok := err.(*client.APIError)
	if !ok || !apiErr.IsShed() || apiErr.RetryAfterSeconds != 7 {
		t.Fatalf("err = %v, want shed with hint 7", err)
	}
}

// TestContractErrors: responses outside the v1 contract are typed as
// *ContractError, never silently retried or decoded.
func TestContractErrors(t *testing.T) {
	cases := []struct {
		name    string
		handler http.HandlerFunc
	}{
		{"garbage 500", func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte("not json"))
		}},
		{"429 without retry hint", func(w http.ResponseWriter, r *http.Request) {
			// Envelope advertises a hint the header contradicts.
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "99")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(server.ErrorResponse{Error: server.ErrorBody{
				Code: server.CodeOverloaded, Message: "shed", RetryAfterSeconds: 1,
			}})
		}},
		{"undecodable 200", func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte("not json"))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(tc.handler)
			defer ts.Close()
			cli := client.New(ts.URL, client.WithRetries(5), client.WithRetryWaitCap(time.Millisecond))
			defer cli.CloseIdleConnections()
			_, err := cli.SubmitRun(context.Background(), client.SubmitRunRequest{})
			var contract *client.ContractError
			if !errors.As(err, &contract) {
				t.Fatalf("err = %v (%T), want *ContractError", err, err)
			}
		})
	}
}
