// Package client is the Go client for the pdpad v1 API: submit runs and
// sweeps, poll or stream them to completion, walk the paginated lists, and
// drive a fleet coordinator's node plane — all with the v1 error envelope
// decoded into typed errors.
//
//	c := client.New("http://localhost:8080")
//	res, err := c.SubmitRun(ctx, client.SubmitRunRequest{
//		Workload: client.Workload{Mix: "w2", Seed: 7},
//		Options:  client.RunOptions{Policy: "pdpa"},
//	})
//	view, err := c.WaitRun(ctx, res.ID, 0)
//
// Every non-2xx response with a well-formed v1 envelope surfaces as an
// *APIError carrying the stable code, message, and retry hint; responses
// that violate the v1 contract — a non-envelope error body, or a 429 whose
// Retry-After header disagrees with its envelope hint — surface as a
// *ContractError, which is how load generators count contract violations.
// With WithRetries(n), retryable rejections (429 overloaded/queue_full,
// 503 with a retry hint) are retried automatically after honoring the
// advertised hint.
//
// # Migrating from hand-rolled v1 HTTP
//
// The package replaces the per-tool HTTP mirrors that grew around the API
// (cmd/pdpaload carried its own envelope, submit, and run-view structs).
// The mapping is mechanical:
//
//   - POST /v1/runs + status switch  →  SubmitRun; errors.As on *APIError
//     replaces switching on the raw status code (err.Code "overloaded" or
//     "queue_full" is a shed, err.RetryAfterSeconds the hint).
//   - GET /v1/runs/{id} poll loops   →  WaitRun (or Run for one probe).
//   - hand-parsed SSE "data:" lines  →  FollowRun with a callback.
//   - cursor-walking list loops      →  Runs / Sweeps (one page) or the
//     cursor loop in AllRuns.
//   - /metrics scrapes               →  Metrics, which sums each family's
//     series by base name.
//
// Wire types here deliberately mirror the server's JSON shapes rather than
// importing them, keeping the package importable outside this module; the
// client_test drift tests pin the two sets of shapes to each other.
//
// # Coordinator restarts and retries
//
// A durable coordinator (one started with a store) may restart under a
// client's feet. The gap surfaces as plain transport errors — connection
// refused is not a v1 envelope, so WithRetries does not retry it; callers
// that must ride through a restart should loop on transport errors
// themselves. What the coordinator does guarantee is identity: run and
// sweep IDs survive the restart, so a WaitRun or WaitSweep resumed against
// the recovered coordinator picks up the same run, and results adopted
// from the nodes during reconciliation are byte-identical to what an
// uninterrupted coordinator would have returned. ReconcileRuns is the
// recovery plane's bulk probe — a recovering coordinator calls it on every
// node daemon, which is why revision-2 nodes must serve it.
package client
