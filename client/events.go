package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// FollowRun streams a run's lifecycle over server-sent events, invoking fn
// for each state transition. The stream ends — and FollowRun returns nil —
// after the terminal event, when fn returns false, or when the server
// closes the stream; the context cancels it early. Callers wanting the
// final state should read it from the last event fn saw (or fall back to
// WaitRun when the stream ends early, e.g. because the serving node died).
func (c *Client) FollowRun(ctx context.Context, id string, fn func(Event) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/runs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return fmt.Errorf("pdpad: building request: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("pdpad: GET events: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
		return decodeAPIError(resp, data)
	}
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev) != nil {
			continue
		}
		if !fn(ev) || Terminal(ev.State) {
			return nil
		}
	}
	if err := scanner.Err(); err != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return scanner.Err()
}
