package pdpasim

// The OutcomeJSON schema is shared by Outcome.WriteJSON, the pdpad daemon's
// /v1/runs result field, and sweep run exports. The golden file pins both
// the field set and the byte-level encoding: a change here is an API break
// for daemon clients and invalidates cached results, so it must be
// deliberate. Regenerate with: go test -run TestOutcomeSchemaGolden -update

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestOutcomeSchemaGolden(t *testing.T) {
	spec := WorkloadSpec{Mix: "w1", Load: 1.0, NCPU: 32, Window: 60 * time.Second, Seed: 1}
	out, err := RunContext(context.Background(), spec, Options{Policy: PDPA, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := out.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "outcome_schema.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Outcome JSON schema drifted from %s — if the change is deliberate, "+
			"regenerate with -update and flag the API break", golden)
	}

	// Export must be the same value WriteJSON serializes: one schema, two
	// access paths.
	viaExport, err := json.MarshalIndent(out.Export(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(buf.Bytes()), bytes.TrimSpace(viaExport)) {
		t.Fatal("Outcome.Export and Outcome.WriteJSON disagree")
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range ExtendedPolicies() {
		parsed, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("ParsePolicy rejected canonical name %q: %v", p, err)
		}
		if parsed != p {
			t.Fatalf("round trip changed %q to %q", p, parsed)
		}
		// JSON round trip via MarshalText/UnmarshalText.
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var back Policy
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != p {
			t.Fatalf("JSON round trip changed %q to %q", p, back)
		}
	}
	if _, err := ParsePolicy("  PDPA \n"); err != nil {
		t.Fatalf("ParsePolicy is not case/space tolerant: %v", err)
	}
	if _, err := ParsePolicy("robin"); err == nil {
		t.Fatal("ParsePolicy accepted an unknown name")
	}
	var p Policy
	if err := json.Unmarshal([]byte(`"robin"`), &p); err == nil {
		t.Fatal("UnmarshalText accepted an unknown name")
	}
	if _, err := json.Marshal(Policy("robin")); err == nil {
		t.Fatal("MarshalText serialized an unknown policy")
	}
}
