# Convenience targets; everything is plain go tooling underneath.

.PHONY: build test vet depcheck bench bench-gate bench-throughput scenario-smoke loadtest-smoke fleet-smoke

build:
	go build ./...

vet:
	go vet ./...

# Keep the removed facade APIs removed (Run/RunSWF, SweepSpec.Progress)
# and reject stray Deprecated: markers.
depcheck:
	./scripts/depcheck.sh

test:
	go test -shuffle=on ./...

# Run the bundled scenario library twice at a fixed seed and require the JSON
# reports to match byte for byte — the determinism contract of the scenario
# runner (same check TestBundledScenarioLibrary applies in-process).
scenario-smoke:
	go run ./cmd/scenario run -json -seed 1 -o /tmp/scenario-report-a.json scenarios/*.yaml
	go run ./cmd/scenario run -json -seed 1 -o /tmp/scenario-report-b.json scenarios/*.yaml
	cmp /tmp/scenario-report-a.json /tmp/scenario-report-b.json
	@echo "scenario reports byte-identical across replays"

# End-to-end durability + sustained-load smoke against a real pdpad process:
# kill -9 recovery with byte-identical run bodies, a pdpaload soak that must
# observe 429 shedding with coherent retry hints, and a clean SIGTERM drain.
# Knobs: LOADTEST_PORT, LOADTEST_DURATION, LOADTEST_WORKERS.
loadtest-smoke:
	./scripts/loadtest.sh

# End-to-end fleet smoke: coordinator + two node daemons + a standalone
# oracle. A sharded sweep must be byte-identical to the standalone run —
# including after kill -9 of a node mid-sweep — goroutine counts must settle
# back to baseline, and SIGTERM must drain everything cleanly.
# Knobs: FLEETSMOKE_PORT_BASE.
fleet-smoke:
	./scripts/fleetsmoke.sh

# Run the gated benchmark suite with -benchmem, capture pprof profiles into
# bench-artifacts/, and record a BENCH_<date>.json trajectory point.
# Knobs: BENCH_COUNT, BENCH_TIME, BENCH_PHASE, BENCH_JSON (see scripts/bench.sh).
bench:
	./scripts/bench.sh

# One pass of the million-job sweep (BenchmarkSweepManyJobs): a w1 trace
# spanning an 8.4M-second window under PDPA in coarse throughput mode. The
# benchmark fails itself if fewer than a million jobs complete, so this is
# both a scaling demo and a correctness smoke for Options.Throughput.
bench-throughput:
	go test -run '^$$' -bench SweepManyJobs -benchtime 1x -benchmem .

# Compare a fresh run against the most recent committed trajectory point.
# Fails on significant regression (loose on ns/op, tight on allocs/op and B/op).
bench-gate: bench
	go run ./cmd/benchgate compare \
		-baseline $$(ls BENCH_*.json | sort | tail -n 1) \
		bench-artifacts/bench.txt
