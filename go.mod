module pdpasim

go 1.22
