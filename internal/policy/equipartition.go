// Package policy implements the baseline space-sharing processor allocation
// policies the paper compares PDPA against: Equipartition (McCann, Vaswani,
// Zahorjan) and Equal_efficiency (Nguyen, Zahorjan, Vaswani). The native
// IRIX scheduler model — a time-sharing manager, not a space-sharing
// policy — lives in internal/rm.
package policy

import (
	"slices"

	"pdpasim/internal/sched"
	"pdpasim/internal/sim"
)

// Equipartition divides the machine equally among running jobs, capping each
// job at its request and redistributing the leftovers. Reallocations happen
// only at job arrival and completion (Section 3.3), which keeps the
// schedule stable but ignores how well applications use their processors.
type Equipartition struct {
	// plan is the current allocation, recomputed only when the job set
	// changes.
	plan  map[sched.JobID]int
	dirty bool
}

// NewEquipartition returns an Equipartition policy.
func NewEquipartition() *Equipartition {
	return &Equipartition{plan: map[sched.JobID]int{}, dirty: true}
}

// Reset reinitializes the policy to its freshly constructed state, keeping
// the plan map's storage.
func (e *Equipartition) Reset() {
	if e.plan == nil {
		e.plan = map[sched.JobID]int{}
	} else {
		clear(e.plan)
	}
	e.dirty = true
}

// Name implements sched.Policy.
func (e *Equipartition) Name() string { return "Equip" }

// JobStarted implements sched.Policy: arrival triggers reallocation.
func (e *Equipartition) JobStarted(now sim.Time, job *sched.JobView) { e.dirty = true }

// JobFinished implements sched.Policy: completion triggers reallocation.
func (e *Equipartition) JobFinished(now sim.Time, id sched.JobID) {
	delete(e.plan, id)
	e.dirty = true
}

// ReportPerformance implements sched.Policy. Equipartition ignores
// application performance.
func (e *Equipartition) ReportPerformance(now sim.Time, job *sched.JobView, r sched.Report) {}

// Plan implements sched.Policy.
func (e *Equipartition) Plan(v sched.View) map[sched.JobID]int {
	if !e.dirty {
		return e.plan
	}
	e.dirty = false
	e.plan = Equipartitioned(v.NCPU, v.Jobs)
	return e.plan
}

// WantsNewJob implements sched.Policy: Equipartition runs under a fixed
// multiprogramming level enforced by the queuing system.
func (e *Equipartition) WantsNewJob(v sched.View) bool { return true }

// Equipartitioned computes an equal division of ncpu processors among jobs,
// capping each at its request: repeatedly give every unsatisfied job an
// equal share of what remains, with ties broken toward earlier arrivals
// (lower IDs). Every job receives at least one processor when possible.
func Equipartitioned(ncpu int, jobs []*sched.JobView) map[sched.JobID]int {
	out := make(map[sched.JobID]int, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	type item struct {
		id  sched.JobID
		req int
	}
	items := make([]item, 0, len(jobs))
	for _, j := range jobs {
		req := j.Request
		if req < 1 {
			req = 1
		}
		items = append(items, item{id: j.ID, req: req})
		out[j.ID] = 0
	}
	slices.SortFunc(items, func(a, b item) int { return int(a.id - b.id) })

	remaining := ncpu
	unsat := items
	for remaining > 0 && len(unsat) > 0 {
		share := remaining / len(unsat)
		if share == 0 {
			// Fewer processors than jobs: one each to the earliest until
			// exhausted.
			for i := 0; i < remaining; i++ {
				out[unsat[i].id]++
			}
			remaining = 0
			break
		}
		progressed := false
		next := unsat[:0]
		for _, it := range unsat {
			if it.req-out[it.id] <= share {
				// Fully satisfiable within the fair share.
				remaining -= it.req - out[it.id]
				out[it.id] = it.req
				progressed = true
			} else {
				next = append(next, it)
			}
		}
		unsat = next
		if !progressed {
			// Everyone wants more than the share: split evenly, leftovers
			// to the earliest jobs.
			extra := remaining % len(unsat)
			for i, it := range unsat {
				out[it.id] += share
				if i < extra {
					out[it.id]++
				}
			}
			remaining = 0
			break
		}
	}
	return out
}
