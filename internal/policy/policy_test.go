package policy

import (
	"testing"
	"testing/quick"

	"pdpasim/internal/sched"
)

func views(reqs ...int) []*sched.JobView {
	out := make([]*sched.JobView, len(reqs))
	for i, r := range reqs {
		out[i] = &sched.JobView{ID: sched.JobID(i), Request: r}
	}
	return out
}

func TestEquipartitionedEvenSplit(t *testing.T) {
	got := Equipartitioned(60, views(30, 30, 30, 30))
	for id, n := range got {
		if n != 15 {
			t.Fatalf("job %d got %d, want 15", id, n)
		}
	}
}

func TestEquipartitionedCapsAtRequest(t *testing.T) {
	got := Equipartitioned(60, views(2, 30, 30))
	if got[0] != 2 {
		t.Fatalf("small job got %d, want its request 2", got[0])
	}
	if got[1] != 29 || got[2] != 29 {
		t.Fatalf("big jobs got %d,%d, want 29 each", got[1], got[2])
	}
}

func TestEquipartitionedLeftoverToEarliest(t *testing.T) {
	got := Equipartitioned(10, views(30, 30, 30))
	if got[0] != 4 || got[1] != 3 || got[2] != 3 {
		t.Fatalf("split = %v", got)
	}
}

func TestEquipartitionedMoreJobsThanCPUs(t *testing.T) {
	got := Equipartitioned(2, views(5, 5, 5))
	total := got[0] + got[1] + got[2]
	if total != 2 {
		t.Fatalf("allocated %d of 2", total)
	}
	if got[0] != 1 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("split = %v, want earliest served first", got)
	}
}

func TestEquipartitionedEmpty(t *testing.T) {
	if got := Equipartitioned(60, nil); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestEquipartitionPolicyReallocOnlyOnChange(t *testing.T) {
	e := NewEquipartition()
	jobs := views(30, 30)
	v := sched.View{NCPU: 60, Jobs: jobs}
	e.JobStarted(0, jobs[0])
	e.JobStarted(0, jobs[1])
	p1 := e.Plan(v)
	// A performance report must not change the plan object (no realloc).
	e.ReportPerformance(0, jobs[0], sched.Report{Procs: 30, Speedup: 20, Efficiency: 0.66})
	p2 := e.Plan(v)
	if &p1 == &p2 {
		// maps compare by identity via pointer-ish trick; instead check
		// contents stay identical.
		t.Log("same map returned (ok)")
	}
	for id := range p1 {
		if p1[id] != p2[id] {
			t.Fatal("plan changed without arrival/completion")
		}
	}
	// Completion triggers recompute.
	e.JobFinished(0, jobs[1].ID)
	v.Jobs = jobs[:1]
	p3 := e.Plan(v)
	if p3[jobs[0].ID] != 30 {
		t.Fatalf("after completion job0 got %d, want 30", p3[jobs[0].ID])
	}
}

func TestEquipartitionName(t *testing.T) {
	if NewEquipartition().Name() != "Equip" {
		t.Fatal("name")
	}
	if !NewEquipartition().WantsNewJob(sched.View{}) {
		t.Fatal("fixed-MPL policy must always allow admission")
	}
}

// Property: Equipartitioned never over-allocates, never exceeds requests,
// and is fair (allocations differ by at most 1 among jobs with equal,
// unsatisfied requests).
func TestEquipartitionedProperties(t *testing.T) {
	f := func(ncpuRaw uint8, reqsRaw []uint8) bool {
		ncpu := int(ncpuRaw)%100 + 1
		if len(reqsRaw) == 0 {
			return true
		}
		if len(reqsRaw) > 20 {
			reqsRaw = reqsRaw[:20]
		}
		reqs := make([]int, len(reqsRaw))
		for i, r := range reqsRaw {
			reqs[i] = int(r)%40 + 1
		}
		jobs := views(reqs...)
		got := Equipartitioned(ncpu, jobs)
		total := 0
		for _, j := range jobs {
			n := got[j.ID]
			if n < 0 || n > j.Request {
				return false
			}
			total += n
		}
		if total > ncpu {
			return false
		}
		// Fairness among unsatisfied equals.
		for _, a := range jobs {
			for _, b := range jobs {
				if a.Request == b.Request && got[a.ID] < a.Request && got[b.ID] < b.Request {
					d := got[a.ID] - got[b.ID]
					if d < -1 || d > 1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualEfficiencyFitsAlpha(t *testing.T) {
	e := NewEqualEfficiency()
	j := &sched.JobView{ID: 1, Request: 30}
	e.JobStarted(0, j)
	// Perfect scaling: alpha 0.
	j.Reports = append(j.Reports, sched.Report{Procs: 10, Speedup: 10})
	e.ReportPerformance(0, j, j.Reports[len(j.Reports)-1])
	if a := e.Alpha(1); a != 0 {
		t.Fatalf("alpha = %v, want 0", a)
	}
	// Amdahl-ish: S(10)=5 => alpha = (10/5-1)/9 = 1/9.
	j.Reports = append(j.Reports, sched.Report{Procs: 10, Speedup: 5})
	e.ReportPerformance(0, j, j.Reports[len(j.Reports)-1])
	if a := e.Alpha(1); a < 0.05 || a > 0.12 {
		t.Fatalf("alpha = %v", a)
	}
	// Superlinear: S(10)=15 => negative alpha.
	j.Reports = []sched.Report{{Procs: 10, Speedup: 15}}
	e.ReportPerformance(0, j, j.Reports[0])
	if a := e.Alpha(1); a >= 0 {
		t.Fatalf("alpha = %v, want negative for superlinear", a)
	}
}

func TestEqualEfficiencyFavorsEfficientJob(t *testing.T) {
	e := NewEqualEfficiency()
	good := &sched.JobView{ID: 1, Request: 30}
	bad := &sched.JobView{ID: 2, Request: 30}
	e.JobStarted(0, good)
	e.JobStarted(0, bad)
	good.Reports = []sched.Report{{Procs: 8, Speedup: 7.8}} // alpha ~0.004
	bad.Reports = []sched.Report{{Procs: 8, Speedup: 2}}    // alpha ~0.43
	e.ReportPerformance(0, good, good.Reports[0])
	e.ReportPerformance(0, bad, bad.Reports[0])
	plan := e.Plan(sched.View{NCPU: 40, Jobs: []*sched.JobView{good, bad}})
	if plan[1] <= plan[2] {
		t.Fatalf("plan = %v, efficient job should dominate", plan)
	}
	if plan[1]+plan[2] != 40 {
		t.Fatalf("plan total = %d, want full machine use", plan[1]+plan[2])
	}
}

func TestEqualEfficiencySuperlinearCapture(t *testing.T) {
	// A superlinear job (negative alpha) must capture nearly everything up
	// to its request — the pathology the paper reports (2..28 CPUs for
	// identical swims).
	e := NewEqualEfficiency()
	super := &sched.JobView{ID: 1, Request: 28}
	normal := &sched.JobView{ID: 2, Request: 30}
	e.JobStarted(0, super)
	e.JobStarted(0, normal)
	super.Reports = []sched.Report{{Procs: 12, Speedup: 17}}
	normal.Reports = []sched.Report{{Procs: 12, Speedup: 10}}
	e.ReportPerformance(0, super, super.Reports[0])
	e.ReportPerformance(0, normal, normal.Reports[0])
	plan := e.Plan(sched.View{NCPU: 30, Jobs: []*sched.JobView{super, normal}})
	if plan[1] != 28 {
		t.Fatalf("superlinear job got %d, want its full request 28", plan[1])
	}
	if plan[2] != 2 {
		t.Fatalf("normal job got %d, want leftovers 2", plan[2])
	}
}

func TestEqualEfficiencyRunToCompletionMinimum(t *testing.T) {
	e := NewEqualEfficiency()
	jobs := views(30, 30, 30)
	for _, j := range jobs {
		e.JobStarted(0, j)
	}
	plan := e.Plan(sched.View{NCPU: 2, Jobs: jobs})
	one := 0
	for _, n := range plan {
		if n == 1 {
			one++
		}
	}
	if one != 2 {
		t.Fatalf("plan = %v, want the 2 CPUs spread one per job", plan)
	}
}

func TestEqualEfficiencyUnknownJobOptimistic(t *testing.T) {
	e := NewEqualEfficiency()
	known := &sched.JobView{ID: 1, Request: 30}
	fresh := &sched.JobView{ID: 2, Request: 30}
	e.JobStarted(0, known)
	e.JobStarted(0, fresh)
	known.Reports = []sched.Report{{Procs: 10, Speedup: 4}} // poor
	e.ReportPerformance(0, known, known.Reports[0])
	plan := e.Plan(sched.View{NCPU: 30, Jobs: []*sched.JobView{known, fresh}})
	if plan[2] <= plan[1] {
		t.Fatalf("plan = %v, unmeasured job should win on optimism", plan)
	}
}

func TestEqualEfficiencyCleanup(t *testing.T) {
	e := NewEqualEfficiency()
	j := &sched.JobView{ID: 1, Request: 4}
	e.JobStarted(0, j)
	e.JobFinished(0, 1)
	if e.Alpha(1) != 0 {
		t.Fatal("alpha retained after finish")
	}
	if e.Name() != "Equal_eff" {
		t.Fatal("name")
	}
}

func TestEqualEfficiencyIgnoresUnusableSamples(t *testing.T) {
	e := NewEqualEfficiency()
	j := &sched.JobView{ID: 1, Request: 4}
	e.JobStarted(0, j)
	j.Reports = []sched.Report{{Procs: 1, Speedup: 1}, {Procs: 0, Speedup: 0}}
	e.ReportPerformance(0, j, j.Reports[1])
	if e.Alpha(1) != 0 {
		t.Fatalf("alpha = %v from unusable samples", e.Alpha(1))
	}
}
