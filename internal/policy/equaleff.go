package policy

import (
	"pdpasim/internal/obs"
	"pdpasim/internal/sched"
	"pdpasim/internal/sim"
)

// EqualEfficiency implements the Equal_efficiency policy of Nguyen et al.:
// it extrapolates each application's efficiency curve from its runtime
// measurements and gives processors, one at a time, to the application whose
// extrapolated efficiency at its next processor is highest — equalizing
// marginal efficiency across the machine.
//
// Faithful to the paper's critique (Section 5.1), the policy reallocates on
// every performance report and extrapolates from a short window of noisy
// samples, so small measurement variations translate into large allocation
// swings, and superlinear applications (whose fitted serialization parameter
// goes negative) can capture wildly different allocations across instances.
type EqualEfficiency struct {
	// Window is how many recent reports the curve fit uses.
	Window int
	// alpha is the fitted serialization parameter per job: the model is
	// S(p) = p / (1 + alpha·(p-1)), i.e. eff(p) = 1 / (1 + alpha·(p-1)).
	// alpha 0 = perfect scaling; negative = superlinear.
	alpha map[sched.JobID]float64
	tr    *obs.Trace
}

// SetTrace attaches a decision-trace recorder (nil detaches): every curve
// refit is recorded as an extrapolate event carrying the fitted alpha.
func (e *EqualEfficiency) SetTrace(tr *obs.Trace) { e.tr = tr }

// NewEqualEfficiency returns an Equal_efficiency policy extrapolating from
// the most recent report — the per-measurement sensitivity the paper
// criticizes ('too sensitive to small changes in the efficiency
// measurements'). Raise Window to damp it.
func NewEqualEfficiency() *EqualEfficiency {
	return &EqualEfficiency{Window: 1, alpha: map[sched.JobID]float64{}}
}

// Reset reinitializes the policy to the state NewEqualEfficiency would
// produce (Window 1, no fits, trace detached), keeping the alpha map's
// storage.
func (e *EqualEfficiency) Reset() {
	e.Window = 1
	if e.alpha == nil {
		e.alpha = map[sched.JobID]float64{}
	} else {
		clear(e.alpha)
	}
	e.tr = nil
}

// Name implements sched.Policy.
func (e *EqualEfficiency) Name() string { return "Equal_eff" }

// JobStarted implements sched.Policy. New jobs are assumed to scale
// perfectly until measured — the optimistic extrapolation the original
// policy uses.
func (e *EqualEfficiency) JobStarted(now sim.Time, job *sched.JobView) {
	e.alpha[job.ID] = 0
}

// JobFinished implements sched.Policy.
func (e *EqualEfficiency) JobFinished(now sim.Time, id sched.JobID) {
	delete(e.alpha, id)
}

// ReportPerformance implements sched.Policy: refit the job's efficiency
// curve from its recent reports.
func (e *EqualEfficiency) ReportPerformance(now sim.Time, job *sched.JobView, r sched.Report) {
	reports := job.Reports
	if len(reports) > e.Window {
		reports = reports[len(reports)-e.Window:]
	}
	sum, n := 0.0, 0
	for _, rep := range reports {
		if rep.Procs <= 1 || rep.Speedup <= 0 {
			continue
		}
		// Invert the model at the sample: alpha = (p/S - 1) / (p - 1).
		a := (float64(rep.Procs)/rep.Speedup - 1) / float64(rep.Procs-1)
		sum += a
		n++
	}
	if n == 0 {
		return
	}
	e.alpha[job.ID] = sum / float64(n)
	if e.tr != nil {
		e.tr.Record(obs.Event{
			At: now, Kind: obs.KindExtrapolate, Job: int32(job.ID),
			Procs: int32(r.Procs), Eff: r.Efficiency, Speedup: e.alpha[job.ID],
		})
	}
}

// extrapolatedEff returns the fitted efficiency of the job at p processors.
// The denominator is floored to keep superlinear (negative-alpha) fits from
// diverging.
func (e *EqualEfficiency) extrapolatedEff(id sched.JobID, p int) float64 {
	a := e.alpha[id]
	den := 1 + a*float64(p-1)
	if den < 0.05 {
		den = 0.05
	}
	return 1 / den
}

// Plan implements sched.Policy: water-filling by extrapolated efficiency.
// Every job gets one processor (run-to-completion); each remaining processor
// goes to the job, below its request, with the highest extrapolated
// efficiency at its next processor.
func (e *EqualEfficiency) Plan(v sched.View) map[sched.JobID]int {
	plan := make(map[sched.JobID]int, len(v.Jobs))
	if len(v.Jobs) == 0 {
		return plan
	}
	jobs := v.Jobs // already sorted by ascending ID (View contract)

	remaining := v.NCPU
	for _, j := range jobs {
		if remaining == 0 {
			plan[j.ID] = 0
			continue
		}
		plan[j.ID] = 1
		remaining--
	}
	for remaining > 0 {
		var best *sched.JobView
		bestEff := -1.0
		for _, j := range jobs {
			if plan[j.ID] >= j.Request {
				continue
			}
			eff := e.extrapolatedEff(j.ID, plan[j.ID]+1)
			if eff > bestEff {
				best, bestEff = j, eff
			}
		}
		if best == nil {
			break
		}
		plan[best.ID]++
		remaining--
	}
	return plan
}

// WantsNewJob implements sched.Policy: Equal_efficiency runs under a fixed
// multiprogramming level enforced by the queuing system.
func (e *EqualEfficiency) WantsNewJob(v sched.View) bool { return true }

// Alpha returns the fitted serialization parameter for a job (0 when
// unknown) — exposed for tests and diagnostics.
func (e *EqualEfficiency) Alpha(id sched.JobID) float64 { return e.alpha[id] }
