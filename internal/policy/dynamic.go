package policy

import (
	"pdpasim/internal/sched"
	"pdpasim/internal/sim"
)

// Dynamic implements the processor allocation policy of McCann, Vaswani, and
// Zahorjan (TOCS 1993), one of the policies the paper's related work
// discusses: processors move eagerly to wherever they can be used, driven by
// each application's reported ability to use them, with no efficiency
// target. "Their approach considers the idleness ... and results in a large
// number of reallocations" (Section 2).
//
// This implementation estimates each application's marginal speedup from its
// recent measurements (the same fitted model Equal_efficiency uses) and
// water-fills processors by marginal speedup: every processor goes to the
// application whose total speedup it raises most. It replans on every
// report, arrival, and completion — maximizing instantaneous utilization at
// the price of constant reallocation.
type Dynamic struct {
	// Window is how many recent reports the curve fit uses.
	Window int
	alpha  map[sched.JobID]float64
}

// NewDynamic returns a Dynamic policy.
func NewDynamic() *Dynamic {
	return &Dynamic{Window: 3, alpha: map[sched.JobID]float64{}}
}

// Reset reinitializes the policy to the state NewDynamic would produce,
// keeping the alpha map's storage.
func (d *Dynamic) Reset() {
	d.Window = 3
	if d.alpha == nil {
		d.alpha = map[sched.JobID]float64{}
	} else {
		clear(d.alpha)
	}
}

// Name implements sched.Policy.
func (d *Dynamic) Name() string { return "Dynamic" }

// JobStarted implements sched.Policy.
func (d *Dynamic) JobStarted(now sim.Time, job *sched.JobView) { d.alpha[job.ID] = 0 }

// JobFinished implements sched.Policy.
func (d *Dynamic) JobFinished(now sim.Time, id sched.JobID) { delete(d.alpha, id) }

// ReportPerformance implements sched.Policy.
func (d *Dynamic) ReportPerformance(now sim.Time, job *sched.JobView, r sched.Report) {
	reports := job.Reports
	if len(reports) > d.Window {
		reports = reports[len(reports)-d.Window:]
	}
	sum, n := 0.0, 0
	for _, rep := range reports {
		if rep.Procs <= 1 || rep.Speedup <= 0 {
			continue
		}
		sum += (float64(rep.Procs)/rep.Speedup - 1) / float64(rep.Procs-1)
		n++
	}
	if n > 0 {
		d.alpha[job.ID] = sum / float64(n)
	}
}

// fitted returns the modeled speedup of job at p processors.
func (d *Dynamic) fitted(id sched.JobID, p int) float64 {
	if p < 1 {
		return 0
	}
	a := d.alpha[id]
	den := 1 + a*float64(p-1)
	if den < 0.05 {
		den = 0.05
	}
	return float64(p) / den
}

// Plan implements sched.Policy: marginal-speedup water-filling. Each job
// gets one processor (run-to-completion); each further processor goes to the
// job with the largest fitted speedup gain.
func (d *Dynamic) Plan(v sched.View) map[sched.JobID]int {
	plan := make(map[sched.JobID]int, len(v.Jobs))
	if len(v.Jobs) == 0 {
		return plan
	}
	jobs := v.Jobs // already sorted by ascending ID (View contract)

	remaining := v.NCPU
	for _, j := range jobs {
		if remaining == 0 {
			plan[j.ID] = 0
			continue
		}
		plan[j.ID] = 1
		remaining--
	}
	for remaining > 0 {
		var best *sched.JobView
		bestGain := 0.0
		for _, j := range jobs {
			if plan[j.ID] >= j.Request {
				continue
			}
			gain := d.fitted(j.ID, plan[j.ID]+1) - d.fitted(j.ID, plan[j.ID])
			if gain > bestGain {
				best, bestGain = j, gain
			}
		}
		if best == nil {
			break
		}
		plan[best.ID]++
		remaining--
	}
	return plan
}

// WantsNewJob implements sched.Policy: Dynamic runs under a fixed
// multiprogramming level enforced by the queuing system.
func (d *Dynamic) WantsNewJob(v sched.View) bool { return true }
