package policy

import (
	"testing"

	"pdpasim/internal/sched"
)

func TestDynamicMarginalWaterfill(t *testing.T) {
	d := NewDynamic()
	scalable := &sched.JobView{ID: 1, Request: 30}
	flat := &sched.JobView{ID: 2, Request: 30}
	d.JobStarted(0, scalable)
	d.JobStarted(0, flat)
	scalable.Reports = []sched.Report{{Procs: 8, Speedup: 7.8}}
	flat.Reports = []sched.Report{{Procs: 8, Speedup: 1.5}}
	d.ReportPerformance(0, scalable, scalable.Reports[0])
	d.ReportPerformance(0, flat, flat.Reports[0])

	plan := d.Plan(sched.View{NCPU: 20, Jobs: []*sched.JobView{scalable, flat}})
	// Marginal speedup of the flat job is near zero: it keeps the
	// run-to-completion single processor, the scalable job takes the rest.
	if plan[2] > 3 {
		t.Fatalf("flat job got %d processors", plan[2])
	}
	if plan[1] < 17 {
		t.Fatalf("scalable job got %d processors", plan[1])
	}
	if plan[1]+plan[2] != 20 {
		t.Fatalf("plan wastes processors: %v", plan)
	}
}

func TestDynamicUnmeasuredOptimistic(t *testing.T) {
	d := NewDynamic()
	j := &sched.JobView{ID: 1, Request: 16}
	d.JobStarted(0, j)
	plan := d.Plan(sched.View{NCPU: 60, Jobs: []*sched.JobView{j}})
	if plan[1] != 16 {
		t.Fatalf("fresh job got %d, want its request (optimistic linear fit)", plan[1])
	}
}

func TestDynamicRunToCompletionMinimum(t *testing.T) {
	d := NewDynamic()
	jobs := views(30, 30, 30)
	for _, j := range jobs {
		d.JobStarted(0, j)
	}
	plan := d.Plan(sched.View{NCPU: 2, Jobs: jobs})
	granted := 0
	for _, n := range plan {
		granted += n
	}
	if granted != 2 {
		t.Fatalf("plan = %v", plan)
	}
}

func TestDynamicCleanup(t *testing.T) {
	d := NewDynamic()
	j := &sched.JobView{ID: 7, Request: 4}
	d.JobStarted(0, j)
	d.JobFinished(0, 7)
	if _, ok := d.alpha[7]; ok {
		t.Fatal("alpha retained")
	}
	if d.Name() != "Dynamic" || !d.WantsNewJob(sched.View{}) {
		t.Fatal("identity")
	}
}

func TestDynamicIgnoresBadSamples(t *testing.T) {
	d := NewDynamic()
	j := &sched.JobView{ID: 1, Request: 8}
	d.JobStarted(0, j)
	j.Reports = []sched.Report{{Procs: 1, Speedup: 1}}
	d.ReportPerformance(0, j, j.Reports[0])
	if d.alpha[1] != 0 {
		t.Fatalf("alpha = %v", d.alpha[1])
	}
}
