package obs

import "testing"

// TestRegistryValue: Value reads the same numbers WritePrometheus would
// render, across every series shape — counters, counter funcs, gauges, and
// histograms through their _count/_sum derived names.
func TestRegistryValue(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("evictions_total", "h")
	c.Add(3)
	reg.LabeledCounter("finished_total", "h", "state", "done").Add(7)
	reg.CounterFunc("submitted_total", "h", func() uint64 { return 11 })
	reg.GaugeFunc("depth", "h", func() float64 { return 2.5 })
	h := reg.Histogram("wall_seconds", "h", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)

	cases := []struct {
		name, label string
		want        float64
	}{
		{"evictions_total", "", 3},
		{"finished_total", "done", 7},
		{"submitted_total", "", 11},
		{"depth", "", 2.5},
		{"wall_seconds_count", "", 2},
		{"wall_seconds_sum", "", 5.5},
		{"wall_seconds", "", 2}, // bare histogram name reads as _count
	}
	for _, tc := range cases {
		got, ok := reg.Value(tc.name, tc.label)
		if !ok || got != tc.want {
			t.Errorf("Value(%q, %q) = %v, %v; want %v, true", tc.name, tc.label, got, ok, tc.want)
		}
	}

	for _, tc := range []struct{ name, label string }{
		{"nonexistent", ""},
		{"finished_total", "exploded"}, // unknown label value
		{"evictions_total_count", ""},  // _count on a non-histogram
	} {
		if v, ok := reg.Value(tc.name, tc.label); ok {
			t.Errorf("Value(%q, %q) = %v, true; want missing", tc.name, tc.label, v)
		}
	}
}
