package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdpasim/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestTraceRetentionAndSink(t *testing.T) {
	tr := NewTrace(2)
	var seqs []int
	tr.SetSink(func(seq int, e Event) { seqs = append(seqs, seq) })
	for i := 0; i < 5; i++ {
		tr.Record(Event{At: sim.Time(i), Kind: KindReport, Job: int32(i)})
	}
	if tr.Len() != 2 || tr.Dropped() != 3 || tr.Total() != 5 {
		t.Fatalf("len=%d dropped=%d total=%d, want 2/3/5", tr.Len(), tr.Dropped(), tr.Total())
	}
	if len(seqs) != 5 || seqs[4] != 4 {
		t.Fatalf("sink saw %v, want all five events", seqs)
	}

	streamOnly := NewTrace(-1)
	streamOnly.Record(Event{Kind: KindReport})
	if streamOnly.Retains() || streamOnly.Len() != 0 || streamOnly.Total() != 1 {
		t.Fatalf("stream-only trace retained events")
	}
	unlimited := NewTrace(0)
	for i := 0; i < 100; i++ {
		unlimited.Record(Event{Kind: KindReport})
	}
	if unlimited.Len() != 100 || unlimited.Dropped() != 0 {
		t.Fatalf("unlimited trace len=%d dropped=%d", unlimited.Len(), unlimited.Dropped())
	}
}

func TestExportMapping(t *testing.T) {
	e := Export(7, Event{
		At: 2 * sim.Second, Kind: KindPolicyState, Job: 3,
		From: 0, To: 1, Procs: 8, Want: 12, Eff: 0.93, Speedup: 7.4,
	})
	if e.Seq != 7 || e.AtUS != 2_000_000 || e.Kind != "policy_state" ||
		e.From != "NO_REF" || e.To != "INC" || e.Procs != 8 || e.Want != 12 {
		t.Fatalf("policy_state export wrong: %+v", e)
	}
	re := Export(0, Event{Kind: KindRealloc, Job: 2, From: 12, To: 16, Want: 20})
	if re.Old != 12 || re.New != 16 || re.Want != 20 || re.From != "" {
		t.Fatalf("realloc export wrong: %+v", re)
	}
	ex := Export(0, Event{Kind: KindExtrapolate, Job: 1, Procs: 4, Eff: 0.8, Speedup: 0.05})
	if ex.Alpha != 0.05 || ex.Speedup != 0 {
		t.Fatalf("extrapolate export wrong: %+v", ex)
	}
	de := Export(0, Event{Kind: KindDeny, Reason: ReasonUnsettled, Job: 5, Procs: 4})
	if de.Reason != "unsettled_job" || de.Job != 5 {
		t.Fatalf("deny export wrong: %+v", de)
	}
}

func TestTraceSerializationDeterminism(t *testing.T) {
	build := func() *Trace {
		tr := NewTrace(0)
		tr.Record(Event{At: 0, Kind: KindRunStart, Job: -1, Procs: 60, Want: 10})
		tr.Record(Event{At: sim.Second, Kind: KindAdmit, Reason: ReasonBelowBaseMPL, Job: -1, Procs: 0})
		tr.Record(Event{At: sim.Second, Kind: KindPolicyState, Job: 0, From: 0, To: 3, Procs: 8, Want: 8, Eff: 0.7321, Speedup: 5.857})
		return tr
	}
	var a, b bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("JSON serialization not deterministic")
	}
	var c bytes.Buffer
	if err := build().WriteCSV(&c); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(c.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want header+3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "seq,at_us,kind,job") {
		t.Fatalf("CSV header wrong: %q", lines[0])
	}
	var txt bytes.Buffer
	if err := build().WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "NO_REF->STABLE") {
		t.Fatalf("text render missing transition: %q", txt.String())
	}
}

// TestPrometheusExpositionGolden pins the exposition format byte-for-byte:
// family ordering, label quoting, histogram bucket/sum/count rendering.
// Regenerate with `go test ./internal/obs -run Golden -update`.
func TestPrometheusExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	sub := reg.Counter("demo_runs_submitted_total", "Runs submitted.")
	sub.Add(7)
	reg.LabeledCounter("demo_runs_finished_total", "Runs finished by state.", "state", "done").Add(5)
	reg.LabeledCounter("demo_runs_finished_total", "Runs finished by state.", "state", "failed").Inc()
	reg.CounterFunc("demo_events_total", "Events from a closure.", func() uint64 { return 42 })
	reg.GaugeFunc("demo_queue_depth", "Queued runs.", func() float64 { return 3 })
	h := reg.Histogram("demo_wall_seconds", "Run wall time.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	lh := reg.LabeledHistogram("demo_span_seconds", "Span timing.", "stage", "simulate", []float64{0.5})
	lh.Observe(0.25)
	lh.Observe(2)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := (&Registry{fams: map[string]*family{}}).Histogram("h", "h", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	s := h.Snapshot()
	if s.Count != 3 || s.Sum != 5 {
		t.Fatalf("count=%d sum=%v", s.Count, s.Sum)
	}
	if s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Fatalf("bucket counts %v", s.Counts)
	}
}

func TestSpan(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("span_seconds", "spans", []float64{10})
	sp := StartSpan(h)
	if sec := sp.End(); sec < 0 {
		t.Fatalf("negative span %v", sec)
	}
	if s := h.Snapshot(); s.Count != 1 {
		t.Fatalf("span not observed")
	}
	if StartSpan(nil).End() != 0 {
		t.Fatalf("nil span should be a no-op")
	}
}
