package obs

import "time"

// Span measures one wall-clock interval into a histogram — the span-style
// timing the daemon threads through submit→queue→simulate→export. A Span
// with a nil histogram is a no-op, so callers can time unconditionally.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan opens a span observing into h when ended.
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End closes the span, observes the elapsed seconds, and returns them.
func (s Span) End() float64 {
	if s.h == nil {
		return 0
	}
	sec := time.Since(s.start).Seconds()
	s.h.Observe(sec)
	return sec
}
