// Package obs is the observability subsystem: a structured decision-trace
// event stream, a metrics registry with Prometheus text exposition, and
// span-style wall timing.
//
// The decision trace records *why* the scheduler did what it did — every PDPA
// state-machine step with the efficiency measurement that triggered it, every
// multiprogramming-level admission decision with its reason, every machine
// reallocation and IRIX preemption — in deterministic order: events are
// recorded from inside the single-threaded simulation event loop, so a fixed
// seed yields a byte-identical trace.
//
// The subsystem is zero-cost when disabled: producers hold a concrete
// *Trace pointer and guard every Record with a nil check, so a run without an
// observer takes no allocations and no indirect calls on its hot paths (the
// bench gate on BenchmarkSingleRunPDPA/IRIX enforces this).
package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"pdpasim/internal/sim"
)

// Kind identifies what a trace event describes.
type Kind uint8

const (
	// KindRunStart opens a run: Procs is the machine size, Want the job count.
	KindRunStart Kind = iota
	// KindRunEnd closes a run at the last completion time.
	KindRunEnd
	// KindJobArrive is a job entering the queuing system; Procs is its request.
	KindJobArrive
	// KindJobStart is the queuing system launching a job; Procs is its request.
	KindJobStart
	// KindJobDone is a job completing.
	KindJobDone
	// KindReport is a runtime performance measurement reaching the resource
	// manager: Procs, Eff, and Speedup are the measurement.
	KindReport
	// KindPolicyState is one PDPA state-machine step: From/To are core.State
	// values, Procs the allocation the triggering measurement was taken at,
	// Want the allocation the transition decided, Eff/Speedup the measurement.
	KindPolicyState
	// KindExtrapolate is an Equal_efficiency curve refit: Procs and Eff are
	// the triggering measurement, Alpha (the Eff slot of the export) the
	// fitted serialization parameter.
	KindExtrapolate
	// KindAdmit is an MPL admission granting a job a start; Reason says why.
	KindAdmit
	// KindDeny is an MPL admission holding the queue; Reason says why, and
	// Job (when >= 0) names the unsettled application blocking admission.
	KindDeny
	// KindRealloc is a machine partition resize: From/To are the old and new
	// allocations, Want what the policy asked for.
	KindRealloc
	// KindPreempt is the IRIX time-sharing scheduler leaving an application
	// with zero threads on CPUs for a quantum; From is the thread count it
	// ran in the previous quantum.
	KindPreempt
	// KindSweepRun is one completed run inside a sweep (synthesized by the
	// facade's sweep adapter, not recorded by the simulation).
	KindSweepRun
	// KindRunState is a daemon run lifecycle change (synthesized by the pdpad
	// run queue, not recorded by the simulation).
	KindRunState

	kindCount
)

var kindNames = [kindCount]string{
	KindRunStart:    "run_start",
	KindRunEnd:      "run_end",
	KindJobArrive:   "job_arrive",
	KindJobStart:    "job_start",
	KindJobDone:     "job_done",
	KindReport:      "report",
	KindPolicyState: "policy_state",
	KindExtrapolate: "extrapolate",
	KindAdmit:       "admit",
	KindDeny:        "deny",
	KindRealloc:     "realloc",
	KindPreempt:     "preempt",
	KindSweepRun:    "sweep_run",
	KindRunState:    "run_state",
}

// String returns the event kind's wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Reason explains an admission decision.
type Reason uint8

const (
	ReasonNone Reason = iota
	// ReasonBelowBaseMPL: below PDPA's base multiprogramming level admission
	// is unconditional (Section 4.3).
	ReasonBelowBaseMPL
	// ReasonJobsSettled: free processors exist and every running application
	// has settled, so PDPA admits beyond the base level.
	ReasonJobsSettled
	// ReasonNoFreeCPUs: beyond the base level PDPA requires a free processor.
	ReasonNoFreeCPUs
	// ReasonUnsettled: a running application is still searching (NO_REF or
	// INC), so its allocation has not settled.
	ReasonUnsettled
	// ReasonBelowFixedMPL: the queuing system's fixed multiprogramming level
	// has a slot free (the traditional regimes).
	ReasonBelowFixedMPL
	// ReasonFixedMPLFull: the fixed multiprogramming level is reached.
	ReasonFixedMPLFull

	reasonCount
)

var reasonNames = [reasonCount]string{
	ReasonNone:          "",
	ReasonBelowBaseMPL:  "below_base_mpl",
	ReasonJobsSettled:   "jobs_settled",
	ReasonNoFreeCPUs:    "no_free_cpus",
	ReasonUnsettled:     "unsettled_job",
	ReasonBelowFixedMPL: "below_fixed_mpl",
	ReasonFixedMPLFull:  "fixed_mpl_full",
}

// String returns the reason's wire name ("" for ReasonNone).
func (r Reason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return fmt.Sprintf("reason(%d)", int(r))
}

// policyStateNames mirrors core.State's String values; obs cannot import
// core (core records into obs), so the names are pinned here and by
// TestPolicyStateNames in the core package.
var policyStateNames = [...]string{"NO_REF", "INC", "DEC", "STABLE"}

func policyStateName(s int32) string {
	if s >= 0 && int(s) < len(policyStateNames) {
		return policyStateNames[s]
	}
	return fmt.Sprintf("state(%d)", s)
}

// PolicyStateName returns the PDPA state name for a recorded From/To value.
func PolicyStateName(s int) string { return policyStateName(int32(s)) }

// Event is one decision-trace record. Field meaning depends on Kind (see the
// Kind constants); unused fields are zero. The struct is flat and small so
// recording is one slice append with no per-event allocation.
type Event struct {
	At      sim.Time
	Kind    Kind
	Reason  Reason
	Job     int32 // -1 for events not scoped to a job
	From    int32 // old state (KindPolicyState) or old allocation (KindRealloc) or old thread count (KindPreempt)
	To      int32 // new state (KindPolicyState) or new allocation (KindRealloc)
	Procs   int32 // measurement allocation / request / machine size
	Want    int32 // allocation the decision asked for
	Eff     float64
	Speedup float64 // measurement speedup; fitted alpha for KindExtrapolate
}

// Trace is an append-only decision-trace recorder for one run. It is not
// safe for concurrent use: events are recorded from the single-threaded
// simulation event loop, which is what makes the order — and hence the
// serialized trace — deterministic for a fixed seed.
type Trace struct {
	events  []Event
	seq     int
	limit   int // >0: retain at most limit events; 0: unlimited; <0: stream-only
	dropped int
	sink    func(seq int, e Event)
}

// NewTrace returns a recorder. limit > 0 bounds retained events (later
// events still reach the sink and are counted as dropped); limit == 0
// retains everything; limit < 0 retains nothing (stream-only).
func NewTrace(limit int) *Trace {
	return &Trace{limit: limit}
}

// SetSink installs a streaming callback invoked synchronously for every
// recorded event, including events beyond the retention limit. seq is the
// event's position in the full stream.
func (t *Trace) SetSink(fn func(seq int, e Event)) { t.sink = fn }

// Record appends one event. Callers hold a possibly-nil *Trace and must
// guard with a nil check; Record itself assumes t is non-nil.
func (t *Trace) Record(e Event) {
	seq := t.seq
	t.seq++
	if t.sink != nil {
		t.sink(seq, e)
	}
	switch {
	case t.limit < 0:
		t.dropped++
	case t.limit > 0 && len(t.events) >= t.limit:
		t.dropped++
	default:
		t.events = append(t.events, e)
	}
}

// Events returns the retained events; the i-th event has sequence number i.
// The slice is owned by the trace and must not be mutated.
func (t *Trace) Events() []Event { return t.events }

// Len returns the number of retained events.
func (t *Trace) Len() int { return len(t.events) }

// Total returns how many events were recorded, including dropped ones.
func (t *Trace) Total() int { return t.seq }

// Dropped returns how many events exceeded the retention limit.
func (t *Trace) Dropped() int { return t.dropped }

// Retains reports whether the trace keeps events (false for stream-only).
func (t *Trace) Retains() bool { return t.limit >= 0 }

// CountKind returns how many retained events have the given kind.
func (t *Trace) CountKind(k Kind) int {
	n := 0
	for i := range t.events {
		if t.events[i].Kind == k {
			n++
		}
	}
	return n
}

// ExportEvent is the wire form of one trace event: the schema of the JSON
// and CSV exports, the facade's TraceEvent, and the pdpad daemon's
// /v1/runs/{id}/trace payload. Field use depends on Kind; unused fields are
// omitted.
type ExportEvent struct {
	// Seq is the event's position in the stream; AtUS the simulation time in
	// microseconds (wall-clock microseconds for daemon-synthesized events).
	Seq  int    `json:"seq"`
	AtUS int64  `json:"at_us"`
	Kind string `json:"kind"`
	// Job is the job id the event concerns, -1 when not job-scoped.
	Job int `json:"job"`
	// From/To are PDPA state names for policy_state events.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Old/New are the allocations around a realloc; Old is the previous
	// thread count for a preempt.
	Old int `json:"old,omitempty"`
	New int `json:"new,omitempty"`
	// Procs is the measurement allocation (report, policy_state,
	// extrapolate), the job's request (job_arrive, job_start), the machine
	// size (run_start), or the running-set size (admit, deny).
	Procs int `json:"procs,omitempty"`
	// Want is the allocation the decision asked for.
	Want    int     `json:"want,omitempty"`
	Eff     float64 `json:"eff,omitempty"`
	Speedup float64 `json:"speedup,omitempty"`
	// Alpha is the fitted serialization parameter of an extrapolate event.
	Alpha  float64 `json:"alpha,omitempty"`
	Reason string  `json:"reason,omitempty"`
	// ID and State carry daemon scope: the run id and its lifecycle state
	// for run_state events, the grid point for sweep_run events.
	ID    string `json:"id,omitempty"`
	State string `json:"state,omitempty"`
	// Done/Total report sweep progress on sweep_run events.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
}

// Export converts one recorded event to its wire form.
func Export(seq int, e Event) ExportEvent {
	out := ExportEvent{
		Seq:  seq,
		AtUS: int64(e.At) / int64(sim.Microsecond),
		Kind: e.Kind.String(),
		Job:  int(e.Job),
	}
	if e.Reason != ReasonNone {
		out.Reason = e.Reason.String()
	}
	switch e.Kind {
	case KindPolicyState:
		out.From = policyStateName(e.From)
		out.To = policyStateName(e.To)
		out.Procs = int(e.Procs)
		out.Want = int(e.Want)
		out.Eff = e.Eff
		out.Speedup = e.Speedup
	case KindRealloc:
		out.Old = int(e.From)
		out.New = int(e.To)
		out.Want = int(e.Want)
	case KindPreempt:
		out.Old = int(e.From)
	case KindExtrapolate:
		out.Procs = int(e.Procs)
		out.Eff = e.Eff
		out.Alpha = e.Speedup
	default:
		out.Procs = int(e.Procs)
		out.Want = int(e.Want)
		out.Eff = e.Eff
		out.Speedup = e.Speedup
	}
	return out
}

// Export returns the retained events in wire form.
func (t *Trace) Export() []ExportEvent {
	out := make([]ExportEvent, len(t.events))
	for i := range t.events {
		out[i] = Export(i, t.events[i])
	}
	return out
}

// ExportJSON is the JSON document WriteJSON emits.
type ExportJSON struct {
	// Events are the retained events; Dropped counts events beyond the
	// retention limit.
	Events  []ExportEvent `json:"events"`
	Dropped int           `json:"dropped,omitempty"`
}

// WriteJSON writes the trace as one indented JSON document. The output is
// deterministic: the same trace always serializes to the same bytes.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	doc := ExportJSON{Events: t.Export(), Dropped: t.dropped}
	if doc.Events == nil {
		doc.Events = []ExportEvent{}
	}
	return enc.Encode(doc)
}

var csvHeader = []string{
	"seq", "at_us", "kind", "job", "from", "to", "old", "new",
	"procs", "want", "eff", "speedup", "alpha", "reason",
}

// WriteCSV writes the trace as CSV, one row per retained event.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	g := func(v float64) string {
		if v == 0 {
			return ""
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	d := func(v int) string {
		if v == 0 {
			return ""
		}
		return strconv.Itoa(v)
	}
	for i := range t.events {
		e := Export(i, t.events[i])
		row := []string{
			strconv.Itoa(e.Seq), strconv.FormatInt(e.AtUS, 10), e.Kind,
			strconv.Itoa(e.Job), e.From, e.To, d(e.Old), d(e.New),
			d(e.Procs), d(e.Want), g(e.Eff), g(e.Speedup), g(e.Alpha), e.Reason,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteText renders the trace as human-readable lines, one per event — the
// decision-log counterpart of the per-CPU execution trace cmd/traceview
// draws.
func (t *Trace) WriteText(w io.Writer) error {
	for i := range t.events {
		e := &t.events[i]
		if _, err := fmt.Fprintf(w, "%s\n", FormatEvent(i, *e)); err != nil {
			return err
		}
	}
	if t.dropped > 0 {
		if _, err := fmt.Fprintf(w, "(+%d events beyond the retention limit)\n", t.dropped); err != nil {
			return err
		}
	}
	return nil
}

// FormatEvent renders one event as a single human-readable line.
func FormatEvent(seq int, e Event) string {
	at := float64(e.At) / float64(sim.Second)
	job := ""
	if e.Job >= 0 {
		job = fmt.Sprintf(" job %d", e.Job)
	}
	switch e.Kind {
	case KindRunStart:
		return fmt.Sprintf("[%10.3fs] run_start: %d CPUs, %d jobs", at, e.Procs, e.Want)
	case KindRunEnd:
		return fmt.Sprintf("[%10.3fs] run_end", at)
	case KindJobArrive:
		return fmt.Sprintf("[%10.3fs] job_arrive:%s requests %d", at, job, e.Procs)
	case KindJobStart:
		return fmt.Sprintf("[%10.3fs] job_start:%s requests %d", at, job, e.Procs)
	case KindJobDone:
		return fmt.Sprintf("[%10.3fs] job_done:%s", at, job)
	case KindReport:
		return fmt.Sprintf("[%10.3fs] report:%s procs=%d eff=%.3f speedup=%.2f",
			at, job, e.Procs, e.Eff, e.Speedup)
	case KindPolicyState:
		return fmt.Sprintf("[%10.3fs] policy_state:%s %s->%s procs=%d want=%d eff=%.3f",
			at, job, policyStateName(e.From), policyStateName(e.To), e.Procs, e.Want, e.Eff)
	case KindExtrapolate:
		return fmt.Sprintf("[%10.3fs] extrapolate:%s procs=%d eff=%.3f alpha=%.4f",
			at, job, e.Procs, e.Eff, e.Speedup)
	case KindAdmit:
		return fmt.Sprintf("[%10.3fs] admit: %s (running %d)", at, e.Reason, e.Procs)
	case KindDeny:
		return fmt.Sprintf("[%10.3fs] deny: %s%s (running %d)", at, e.Reason, job, e.Procs)
	case KindRealloc:
		return fmt.Sprintf("[%10.3fs] realloc:%s %d->%d (want %d)", at, job, e.From, e.To, e.Want)
	case KindPreempt:
		return fmt.Sprintf("[%10.3fs] preempt:%s had %d threads running", at, job, e.From)
	default:
		return fmt.Sprintf("[%10.3fs] %s:%s", at, e.Kind, job)
	}
}
