package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Families support one optional label; series values come
// from owned Counters/Histograms or from read-time closures (for state that
// already lives elsewhere, e.g. a pool's queue depth).
//
// Registration is safe for concurrent use, as is WritePrometheus; the output
// is deterministic for a given set of values (families and series sorted by
// name and label value).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type family struct {
	name, help string
	kind       metricKind
	label      string // "" for unlabeled single-series families
	buckets    []float64

	counters   map[string]*Counter
	counterFns map[string]func() uint64
	gaugeFns   map[string]func() float64
	hists      map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

func (r *Registry) family(name, help string, kind metricKind, label string) *family {
	f, ok := r.fams[name]
	if !ok {
		f = &family{
			name: name, help: help, kind: kind, label: label,
			counters:   map[string]*Counter{},
			counterFns: map[string]func() uint64{},
			gaugeFns:   map[string]func() float64{},
			hists:      map[string]*Histogram{},
		}
		r.fams[name] = f
	}
	if f.kind != kind || f.label != label {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different type or label", name))
	}
	return f
}

// Counter is a monotonically increasing metric, safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter registers (or returns) the unlabeled counter name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.LabeledCounter(name, help, "", "")
}

// LabeledCounter registers (or returns) the series of counter family name
// with label=value.
func (r *Registry) LabeledCounter(name, help, label, value string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindCounter, label)
	c, ok := f.counters[value]
	if !ok {
		c = &Counter{}
		f.counters[value] = c
	}
	return c
}

// CounterFunc registers a counter whose value is read from fn at exposition
// time — for monotone state owned elsewhere.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.LabeledCounterFunc(name, help, "", "", fn)
}

// LabeledCounterFunc is CounterFunc for one series of a labeled family.
func (r *Registry) LabeledCounterFunc(name, help, label, value string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.family(name, help, kindCounter, label).counterFns[value] = fn
}

// GaugeFunc registers a gauge read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.family(name, help, kindGauge, "").gaugeFns[""] = fn
}

// Histogram is a fixed-bucket histogram, safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	buckets []float64 // upper bounds, ascending; an implicit +Inf follows
	counts  []uint64  // len(buckets)+1, last is the +Inf bucket
	sum     float64
	count   uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.buckets, v)
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// HistogramSnapshot is a consistent copy of a histogram's state.
type HistogramSnapshot struct {
	// Buckets are the upper bounds; Counts the per-bucket (non-cumulative)
	// observation counts, with one extra trailing +Inf bucket.
	Buckets []float64
	Counts  []uint64
	Sum     float64
	Count   uint64
}

// Snapshot returns a copy of the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Buckets: h.buckets,
		Counts:  append([]uint64(nil), h.counts...),
		Sum:     h.sum,
		Count:   h.count,
	}
}

// Histogram registers (or returns) the unlabeled histogram name with the
// given ascending upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.LabeledHistogram(name, help, "", "", buckets)
}

// LabeledHistogram registers (or returns) one series of a labeled histogram
// family.
func (r *Registry) LabeledHistogram(name, help, label, value string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindHistogram, label)
	if f.buckets == nil {
		f.buckets = append([]float64(nil), buckets...)
	}
	h, ok := f.hists[value]
	if !ok {
		h = &Histogram{buckets: f.buckets, counts: make([]uint64, len(f.buckets)+1)}
		f.hists[value] = h
	}
	return h
}

// Value reads one series' current value by family name and label value
// (label is "" for unlabeled families): counters and counter funcs as their
// count, gauges by evaluating their closure. Histogram families are
// addressed through their derived series — "<family>_count" and
// "<family>_sum". The bool reports whether the series exists. Value is how
// programmatic consumers (scenario metric assertions) read the same numbers
// WritePrometheus exposes.
func (r *Registry) Value(name, label string) (float64, bool) {
	r.mu.Lock()
	f, ok := r.fams[name]
	var hist *Histogram
	var histField string
	if !ok {
		for _, suffix := range []string{"_count", "_sum"} {
			base := strings.TrimSuffix(name, suffix)
			if base == name {
				continue
			}
			if hf, hok := r.fams[base]; hok && hf.kind == kindHistogram {
				hist, histField = hf.hists[label], suffix
			}
		}
	}
	// Read-time closures may lock the state they report on (e.g. the pool
	// mutex), so evaluate them outside the registry lock.
	var counter *Counter
	var counterFn func() uint64
	var gaugeFn func() float64
	if ok {
		switch f.kind {
		case kindCounter:
			counter, counterFn = f.counters[label], f.counterFns[label]
		case kindGauge:
			gaugeFn = f.gaugeFns[label]
		case kindHistogram:
			hist, histField = f.hists[label], "_count"
		}
	}
	r.mu.Unlock()

	switch {
	case counter != nil:
		return float64(counter.Value()), true
	case counterFn != nil:
		return float64(counterFn()), true
	case gaugeFn != nil:
		return gaugeFn(), true
	case hist != nil:
		s := hist.Snapshot()
		if histField == "_sum" {
			return s.Sum, true
		}
		return float64(s.Count), true
	}
	return 0, false
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format, families sorted by name and series by label value.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.fams[name]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	typ := "counter"
	switch f.kind {
	case kindGauge:
		typ = "gauge"
	case kindHistogram:
		typ = "histogram"
	}
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, typ); err != nil {
		return err
	}
	series := make([]string, 0, len(f.counters)+len(f.counterFns)+len(f.gaugeFns)+len(f.hists))
	seen := map[string]bool{}
	add := func(v string) {
		if !seen[v] {
			seen[v] = true
			series = append(series, v)
		}
	}
	for v := range f.counters {
		add(v)
	}
	for v := range f.counterFns {
		add(v)
	}
	for v := range f.gaugeFns {
		add(v)
	}
	for v := range f.hists {
		add(v)
	}
	sort.Strings(series)
	for _, value := range series {
		if err := f.writeSeries(w, value); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) labelSuffix(value string, extra string) string {
	switch {
	case f.label == "" && extra == "":
		return ""
	case f.label == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + f.label + "=" + strconv.Quote(value) + "}"
	default:
		return "{" + f.label + "=" + strconv.Quote(value) + "," + extra + "}"
	}
}

func (f *family) writeSeries(w io.Writer, value string) error {
	switch f.kind {
	case kindCounter:
		var v uint64
		if c, ok := f.counters[value]; ok {
			v = c.Value()
		} else if fn, ok := f.counterFns[value]; ok {
			v = fn()
		}
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, f.labelSuffix(value, ""), v)
		return err
	case kindGauge:
		fn := f.gaugeFns[value]
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, f.labelSuffix(value, ""), formatFloat(fn()))
		return err
	case kindHistogram:
		s := f.hists[value].Snapshot()
		cum := uint64(0)
		for i, le := range s.Buckets {
			cum += s.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, f.labelSuffix(value, `le="`+formatFloat(le)+`"`), cum); err != nil {
				return err
			}
		}
		cum += s.Counts[len(s.Buckets)]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, f.labelSuffix(value, `le="+Inf"`), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
			f.name, f.labelSuffix(value, ""), formatFloat(s.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, f.labelSuffix(value, ""), cum)
		return err
	}
	return nil
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
