package store

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrames feeds arbitrary bytes to the journal decoder. Whatever
// the input: no panic, goodBytes never exceeds the input length, dropped
// plus good always accounts for every byte, and re-encoding the recovered
// records reproduces exactly the prefix the decoder accepted (decode is a
// left inverse of encode on the intact region).
func FuzzDecodeFrames(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeFrame(Record{Kind: "run", Payload: []byte(`{"n":1}`)}))
	two := append(encodeFrame(Record{Kind: "run", Payload: []byte("a")}),
		encodeFrame(Record{Kind: "sweep", Payload: []byte("bb")})...)
	f.Add(two)
	f.Add(two[:len(two)-3])                              // torn tail
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 1}) // absurd length prefix
	f.Add(append([]byte(nil), make([]byte, 64)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		res := decodeFrames(data)
		if res.goodBytes < 0 || res.goodBytes > int64(len(data)) {
			t.Fatalf("goodBytes %d out of range [0,%d]", res.goodBytes, len(data))
		}
		if res.goodBytes+res.droppedBytes != int64(len(data)) {
			t.Fatalf("good %d + dropped %d != len %d", res.goodBytes, res.droppedBytes, len(data))
		}
		if (res.truncated || res.corrupt) == (res.droppedBytes == 0) && len(data) > 0 {
			// Damage implies dropped bytes and vice versa (an empty input is
			// trivially clean).
			t.Fatalf("damage flags (%v,%v) inconsistent with dropped %d",
				res.truncated, res.corrupt, res.droppedBytes)
		}
		var reencoded []byte
		for _, rec := range res.records {
			reencoded = append(reencoded, encodeFrame(rec)...)
		}
		if !bytes.Equal(reencoded, data[:res.goodBytes]) {
			t.Fatalf("re-encoding %d records does not reproduce the accepted prefix", len(res.records))
		}
	})
}
