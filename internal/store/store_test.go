package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// syncEvery makes every append durable immediately — recovery tests want no
// batching window.
var syncEvery = Options{SyncInterval: -1}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func rec(kind string, i int) Record {
	return Record{Kind: kind, Payload: []byte(fmt.Sprintf(`{"n":%d,"pad":"%032d"}`, i, i))}
}

func appendN(t *testing.T, s *Store, kind string, n int) []Record {
	t.Helper()
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = rec(kind, i)
		if err := s.Append(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return recs
}

func wantRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d: got %s %q, want %s %q",
				i, got[i].Kind, got[i].Payload, want[i].Kind, want[i].Payload)
		}
	}
}

func journalPath(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "journal-*.pdpj"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("journal files %v (err %v), want exactly one", matches, err)
	}
	return matches[0]
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, syncEvery)
	want := appendN(t, s, "run", 20)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, syncEvery)
	wantRecords(t, s2.TakeRecovered(), want)
	if again := s2.TakeRecovered(); again != nil {
		t.Fatalf("second TakeRecovered returned %d records, want nil", len(again))
	}
	st := s2.Stats()
	if st.RecoveredEntries != 20 || st.TruncatedTails != 0 || st.CorruptFrames != 0 {
		t.Fatalf("stats %+v, want 20 clean recovered entries", st)
	}
}

// TestCrashMidAppend simulates a kill -9 at every byte of the final frame:
// whatever the torn tail looks like, recovery returns exactly the records
// whose frames completed, and the next generation appends cleanly.
func TestCrashMidAppend(t *testing.T) {
	// Build a reference journal to learn the frame boundaries.
	refDir := t.TempDir()
	ref := mustOpen(t, refDir, syncEvery)
	want := appendN(t, ref, "run", 3)
	ref.Close()
	full, err := os.ReadFile(journalPath(t, refDir))
	if err != nil {
		t.Fatal(err)
	}
	lastFrame := len(encodeFrame(want[2]))
	cutStart := len(full) - lastFrame

	for cut := cutStart + 1; cut < len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, journalName(0)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s := mustOpen(t, dir, syncEvery)
		wantRecords(t, s.TakeRecovered(), want[:2])
		st := s.Stats()
		if st.TruncatedTails != 1 {
			t.Fatalf("cut at %d: truncated tails %d, want 1", cut, st.TruncatedTails)
		}
		if st.DroppedBytes != uint64(cut-cutStart) {
			t.Fatalf("cut at %d: dropped %d bytes, want %d", cut, st.DroppedBytes, cut-cutStart)
		}
		// The journal was cut back to the last intact frame, so appending
		// and re-recovering yields the two survivors plus the new record.
		extra := rec("run", 99)
		if err := s.Append(extra); err != nil {
			t.Fatal(err)
		}
		s.Close()
		s2 := mustOpen(t, dir, syncEvery)
		wantRecords(t, s2.TakeRecovered(), append(append([]Record(nil), want[:2]...), extra))
		s2.Close()
	}
}

// TestTruncatedTail: a file ending inside the frame header (fewer than 8
// bytes of trailing garbage) is cut back without losing intact frames.
func TestTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, syncEvery)
	want := appendN(t, s, "run", 5)
	s.Close()

	jp := journalPath(t, dir)
	full, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jp, append(full, 0x42, 0x42, 0x42), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, syncEvery)
	wantRecords(t, s2.TakeRecovered(), want)
	if st := s2.Stats(); st.TruncatedTails != 1 || st.DroppedBytes != 3 {
		t.Fatalf("stats %+v, want one truncated tail of 3 bytes", st)
	}
}

// TestCorruptCRCFrame: a bit flip inside a frame drops that frame and
// everything after it (bytes past damage in an append-only file cannot be
// trusted), keeps everything before it, and counts the corruption.
func TestCorruptCRCFrame(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, syncEvery)
	want := appendN(t, s, "run", 4)
	s.Close()

	jp := journalPath(t, dir)
	data, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the third frame.
	off := 0
	for i := 0; i < 2; i++ {
		off += len(encodeFrame(want[i]))
	}
	data[off+frameHeaderSize+2] ^= 0xFF
	if err := os.WriteFile(jp, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, syncEvery)
	wantRecords(t, s2.TakeRecovered(), want[:2])
	st := s2.Stats()
	if st.CorruptFrames != 1 || st.TruncatedTails != 1 {
		t.Fatalf("stats %+v, want one corrupt frame in one cut tail", st)
	}
}

// TestSnapshotJournalReplayEquivalence: compacting must not change what
// recovery returns — snapshot+empty-journal and pure-journal histories
// recover to identical record sets, and post-compaction appends land after
// the snapshot's records.
func TestSnapshotJournalReplayEquivalence(t *testing.T) {
	plain := t.TempDir()
	s1 := mustOpen(t, plain, syncEvery)
	want := appendN(t, s1, "run", 10)
	s1.Close()

	compacted := t.TempDir()
	s2 := mustOpen(t, compacted, syncEvery)
	appendN(t, s2, "run", 10)
	if err := s2.Compact(want); err != nil {
		t.Fatal(err)
	}
	if got := s2.JournalBytes(); got != 0 {
		t.Fatalf("journal %d bytes after compaction, want 0", got)
	}
	tail := rec("sweep", 100)
	if err := s2.Append(tail); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	r1 := mustOpen(t, plain, syncEvery)
	r2 := mustOpen(t, compacted, syncEvery)
	got1, got2 := r1.TakeRecovered(), r2.TakeRecovered()
	wantRecords(t, got1, want)
	wantRecords(t, got2, append(append([]Record(nil), want...), tail))

	// Only one generation of files survives a compaction.
	files, err := os.ReadDir(compacted)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		names := make([]string, len(files))
		for i, f := range files {
			names[i] = f.Name()
		}
		t.Fatalf("files after compaction: %v, want one snapshot + one journal", names)
	}
}

// TestCompactDropsDeadRecords: records omitted from the live set are gone
// after recovery — compaction is the store's only deletion mechanism.
func TestCompactDropsDeadRecords(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, syncEvery)
	all := appendN(t, s, "run", 6)
	live := all[3:]
	if err := s.Compact(live); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := mustOpen(t, dir, syncEvery)
	wantRecords(t, s2.TakeRecovered(), live)
	if st := s2.Stats(); st.RecoveredEntries != 3 {
		t.Fatalf("recovered %d entries, want 3", st.RecoveredEntries)
	}
}

// TestBatchedSyncFlushes: with a batching interval, appends become durable
// without an explicit Sync once the flusher has run.
func TestBatchedSyncFlushes(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SyncInterval: 5 * time.Millisecond})
	want := appendN(t, s, "run", 3)
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flusher never synced")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := mustOpen(t, dir, syncEvery)
	wantRecords(t, s2.TakeRecovered(), want)
}

// TestEmptyAndMissingDir: opening a fresh directory recovers nothing and
// works immediately.
func TestEmptyAndMissingDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "store")
	s := mustOpen(t, dir, syncEvery)
	if got := s.TakeRecovered(); len(got) != 0 {
		t.Fatalf("fresh store recovered %d records", len(got))
	}
	appendN(t, s, "run", 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close must be a no-op, got", err)
	}
}
