package store

// The frame format shared by journals and snapshots. Each record is one
// frame:
//
//	u32le payload length (kind + blob)
//	u32le CRC-32 (IEEE) of the payload
//	u8    kind length
//	      kind bytes
//	      payload blob
//
// The CRC covers the kind and the blob, so a torn or bit-flipped frame is
// detected wherever the damage lands. There is no file header: an empty
// file is an empty store, and the first frame starts at offset zero.

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
)

// frameHeaderSize is the fixed prefix: payload length + CRC.
const frameHeaderSize = 8

// maxFrameSize bounds a single record (64 MiB): a length prefix beyond it
// is treated as corruption rather than honored as an allocation request.
const maxFrameSize = 64 << 20

// encodeFrame renders one record in the frame format.
func encodeFrame(rec Record) []byte {
	payload := make([]byte, 0, 1+len(rec.Kind)+len(rec.Payload))
	payload = append(payload, byte(len(rec.Kind)))
	payload = append(payload, rec.Kind...)
	payload = append(payload, rec.Payload...)
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderSize:], payload)
	return frame
}

// decodeResult is what decoding a journal or snapshot yields: the intact
// records, the offset of the first damaged byte (== file length when the
// whole file decoded), and what kind of damage ended the scan.
type decodeResult struct {
	records   []Record
	goodBytes int64 // offset of the last intact frame's end
	// truncated: the file ended inside a frame (torn tail).
	// corrupt: a frame's CRC or structure was invalid.
	truncated    bool
	corrupt      bool
	droppedBytes int64 // bytes past goodBytes
}

// decodeFrames scans data as a sequence of frames, stopping at the first
// torn or corrupt frame. Everything after the stop point is counted as
// dropped: in an append-only file, bytes after damage cannot be trusted to
// be frame-aligned.
func decodeFrames(data []byte) decodeResult {
	var res decodeResult
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeaderSize {
			res.truncated = true
			break
		}
		plen := binary.LittleEndian.Uint32(data[off : off+4])
		if plen < 1 || plen > maxFrameSize {
			res.corrupt = true
			break
		}
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		end := off + frameHeaderSize + int(plen)
		if end > len(data) {
			res.truncated = true
			break
		}
		payload := data[off+frameHeaderSize : end]
		if crc32.ChecksumIEEE(payload) != want {
			res.corrupt = true
			break
		}
		klen := int(payload[0])
		if 1+klen > len(payload) {
			res.corrupt = true
			break
		}
		res.records = append(res.records, Record{
			Kind:    string(payload[1 : 1+klen]),
			Payload: append([]byte(nil), payload[1+klen:]...),
		})
		off = end
		res.goodBytes = int64(off)
	}
	res.droppedBytes = int64(len(data)) - res.goodBytes
	return res
}

// decodeFile reads and decodes one journal or snapshot file.
func decodeFile(path string) (decodeResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return decodeResult{}, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return decodeResult{}, err
	}
	return decodeFrames(data), nil
}
