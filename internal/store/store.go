// Package store is the daemon's durability layer: an append-only journal of
// opaque records with periodic snapshots, so a restarted pdpad recovers every
// completed run byte for byte.
//
// The on-disk model is the classic log-plus-snapshot pair:
//
//   - snapshot-<gen>.pdps holds the complete live record set as of the
//     moment it was written (produced by Compact, installed by atomic
//     rename, so a half-written snapshot never bears the final name);
//   - journal-<gen>.pdpj holds every record appended since that snapshot.
//
// Both files use the same CRC-framed binary format (see journal.go).
// Recovery loads the newest snapshot, then replays its journal; a torn or
// corrupt journal tail — the expected wreckage of a kill -9 mid-append — is
// detected by the frame CRCs, cut off at the last intact frame, and counted,
// never fatal. Appends reach the OS immediately and are fsynced in batches
// (SyncInterval), trading a bounded window of recent records against
// per-append fsync latency; Sync forces the batch out.
//
// The store knows nothing about what a record means: callers tag each
// payload with a Kind and interpret recovered records themselves (the pool's
// schema lives in runqueue/persist.go). Compact rewrites the files from the
// caller-supplied live set, which is how superseded records are dropped.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Record is one durable entry: a short kind tag plus an opaque payload the
// caller encodes and decodes.
type Record struct {
	Kind    string
	Payload []byte
}

// Options parameterize Open. The zero value gets sensible defaults.
type Options struct {
	// SyncInterval is how long appended records may sit unfsynced before the
	// background flusher forces them to disk (default 50 ms). Zero keeps the
	// default; negative disables batching and fsyncs every append.
	SyncInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.SyncInterval == 0 {
		o.SyncInterval = 50 * time.Millisecond
	}
	return o
}

// Stats is a consistent snapshot of the store's counters. All fields are
// monotone over the store's lifetime (recovery counters are set once by
// Open).
type Stats struct {
	// AppendedEntries and AppendedBytes count journal writes since Open,
	// frame overhead included.
	AppendedEntries uint64
	AppendedBytes   uint64
	// Fsyncs counts batched journal fsyncs.
	Fsyncs uint64
	// Snapshots counts snapshots written; Compactions counts completed
	// compactions (snapshot installed, journal reset, old generation gone).
	Snapshots   uint64
	Compactions uint64
	// RecoveredEntries and RecoveredBytes describe what Open read back.
	RecoveredEntries uint64
	RecoveredBytes   uint64
	// TruncatedTails counts journal tails cut off during recovery (torn
	// final frames from a crash mid-append); DroppedBytes is how many bytes
	// they held. CorruptFrames counts frames dropped for a CRC mismatch.
	TruncatedTails uint64
	DroppedBytes   uint64
	CorruptFrames  uint64
}

// Store is an open journal+snapshot pair. Create with Open; Append, Sync,
// Compact, and Stats are safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu        sync.Mutex
	gen       uint64
	journal   *os.File
	jbytes    int64 // current journal size, frames included
	dirty     bool  // appended since the last fsync
	closed    bool
	recovered []Record

	flushWake chan struct{}
	flushDone chan struct{}

	appended   atomic.Uint64
	appendedB  atomic.Uint64
	fsyncs     atomic.Uint64
	snapshots  atomic.Uint64
	compacts   atomic.Uint64
	recEntries uint64
	recBytes   uint64
	truncTails uint64
	truncBytes uint64
	corrupt    uint64
}

func snapshotName(gen uint64) string { return fmt.Sprintf("snapshot-%06d.pdps", gen) }
func journalName(gen uint64) string  { return fmt.Sprintf("journal-%06d.pdpj", gen) }

// parseGen extracts the generation number from a snapshot/journal file name,
// reporting ok=false for foreign files.
func parseGen(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Open opens (creating if needed) the store rooted at dir and recovers its
// records: the newest intact snapshot, then that generation's journal, with
// any torn tail cut off and counted. The recovered records are retrieved
// once with TakeRecovered.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{
		dir:       dir,
		opts:      opts,
		flushWake: make(chan struct{}, 1),
		flushDone: make(chan struct{}),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	go s.flusher()
	return s, nil
}

// recover loads the newest intact snapshot plus its journal and opens the
// journal for appending.
func (s *Store) recover() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: reading %s: %w", s.dir, err)
	}
	var snapGens []uint64
	for _, e := range entries {
		if gen, ok := parseGen(e.Name(), "snapshot-", ".pdps"); ok {
			snapGens = append(snapGens, gen)
		}
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] > snapGens[j] })

	// Newest snapshot first; a snapshot that fails to load wholesale (its
	// rename was atomic, so this means later disk damage) falls back to the
	// previous generation rather than losing everything.
	s.gen = 0
	var recs []Record
	for _, gen := range snapGens {
		res, err := decodeFile(filepath.Join(s.dir, snapshotName(gen)))
		if err != nil {
			continue
		}
		if res.truncated || res.corrupt {
			// A snapshot is written whole and renamed into place; framing
			// damage means the medium, not a crash. Skip it.
			continue
		}
		s.gen = gen
		recs = res.records
		s.recBytes += uint64(res.goodBytes)
		break
	}

	jpath := filepath.Join(s.dir, journalName(s.gen))
	if res, err := decodeFile(jpath); err == nil {
		recs = append(recs, res.records...)
		s.recBytes += uint64(res.goodBytes)
		if res.truncated || res.corrupt {
			// Torn tail from a crash mid-append: cut the journal back to the
			// last intact frame so future appends start from a clean edge.
			s.truncTails++
			s.truncBytes += uint64(res.droppedBytes)
			if res.corrupt {
				s.corrupt++
			}
			if err := os.Truncate(jpath, res.goodBytes); err != nil {
				return fmt.Errorf("store: truncating torn journal tail: %w", err)
			}
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("store: reading journal: %w", err)
	}
	s.recEntries = uint64(len(recs))
	s.recovered = recs

	f, err := os.OpenFile(jpath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening journal: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: stat journal: %w", err)
	}
	s.journal = f
	s.jbytes = info.Size()
	return nil
}

// TakeRecovered returns the records recovered at Open and releases them; the
// second call returns nil.
func (s *Store) TakeRecovered() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.recovered
	s.recovered = nil
	return recs
}

// Append writes one record to the journal. The write reaches the OS before
// Append returns; the fsync is batched (see Options.SyncInterval).
func (s *Store) Append(rec Record) error {
	frame := encodeFrame(rec)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: append after close")
	}
	if _, err := s.journal.Write(frame); err != nil {
		return fmt.Errorf("store: appending: %w", err)
	}
	s.jbytes += int64(len(frame))
	s.appended.Add(1)
	s.appendedB.Add(uint64(len(frame)))
	if s.opts.SyncInterval < 0 {
		s.fsyncs.Add(1)
		return s.journal.Sync()
	}
	s.dirty = true
	select {
	case s.flushWake <- struct{}{}:
	default:
	}
	return nil
}

// flusher is the background fsync batcher: woken by the first append of a
// batch, it sleeps one SyncInterval — absorbing every append that lands in
// the window — then syncs once.
func (s *Store) flusher() {
	defer close(s.flushDone)
	for range s.flushWake {
		time.Sleep(s.opts.SyncInterval)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		s.syncLocked()
		s.mu.Unlock()
	}
}

func (s *Store) syncLocked() {
	if !s.dirty || s.journal == nil {
		return
	}
	s.dirty = false
	s.fsyncs.Add(1)
	s.journal.Sync()
}

// Sync forces any batched appends to disk before returning.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.syncLocked()
	return nil
}

// JournalBytes reports the current journal size — the caller's compaction
// trigger.
func (s *Store) JournalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jbytes
}

// Compact replaces the store's contents with live: the records are written
// to a fresh snapshot (fsynced, atomically renamed into place), a new empty
// journal generation starts, and the previous generation's files are
// removed. Records not in live are thereby dropped — that is how the caller
// expires superseded entries.
func (s *Store) Compact(live []Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: compact after close")
	}
	newGen := s.gen + 1
	snapPath := filepath.Join(s.dir, snapshotName(newGen))
	tmp := snapPath + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: snapshot tmp: %w", err)
	}
	for _, rec := range live {
		if _, err := f.Write(encodeFrame(rec)); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("store: writing snapshot: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, snapPath); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	s.snapshots.Add(1)

	// The snapshot now owns everything; retire the old generation. A crash
	// from here on recovers from the new snapshot (its journal simply does
	// not exist yet, which Open treats as empty).
	jpath := filepath.Join(s.dir, journalName(newGen))
	nj, err := os.OpenFile(jpath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: new journal: %w", err)
	}
	s.syncLocked()
	s.journal.Close()
	os.Remove(filepath.Join(s.dir, journalName(s.gen)))
	os.Remove(filepath.Join(s.dir, snapshotName(s.gen)))
	s.journal = nj
	s.jbytes = 0
	s.dirty = false
	s.gen = newGen
	s.compacts.Add(1)
	return nil
}

// Close syncs and closes the journal and stops the background flusher. The
// store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.syncLocked()
	err := s.journal.Close()
	s.journal = nil
	close(s.flushWake)
	s.mu.Unlock()
	<-s.flushDone
	return err
}

// Stats returns the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	rec, recB := s.recEntries, s.recBytes
	tails, dropped, corrupt := s.truncTails, s.truncBytes, s.corrupt
	s.mu.Unlock()
	return Stats{
		AppendedEntries:  s.appended.Load(),
		AppendedBytes:    s.appendedB.Load(),
		Fsyncs:           s.fsyncs.Load(),
		Snapshots:        s.snapshots.Load(),
		Compactions:      s.compacts.Load(),
		RecoveredEntries: rec,
		RecoveredBytes:   recB,
		TruncatedTails:   tails,
		DroppedBytes:     dropped,
		CorruptFrames:    corrupt,
	}
}
