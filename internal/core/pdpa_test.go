package core

import (
	"testing"

	"pdpasim/internal/app"
	"pdpasim/internal/sched"
	"pdpasim/internal/sim"
)

// harness drives a PDPA instance against a synthetic application with a true
// speedup curve, simulating the manager's grant-and-report loop.
type harness struct {
	t     *testing.T
	p     *PDPA
	view  sched.View
	jobs  map[sched.JobID]*sched.JobView
	curve map[sched.JobID]app.SpeedupModel
	now   sim.Time
}

func newHarness(t *testing.T, params Params, ncpu int) *harness {
	return &harness{
		t:     t,
		p:     MustNew(params),
		view:  sched.View{NCPU: ncpu},
		jobs:  map[sched.JobID]*sched.JobView{},
		curve: map[sched.JobID]app.SpeedupModel{},
	}
}

func (h *harness) start(id sched.JobID, request int, curve app.SpeedupModel) {
	jv := &sched.JobView{ID: id, Name: "job", Request: request}
	h.jobs[id] = jv
	h.curve[id] = curve
	h.view.Jobs = append(h.view.Jobs, jv)
	h.view.SortJobs()
	h.p.JobStarted(h.now, jv)
	h.plan()
}

func (h *harness) finish(id sched.JobID) {
	h.p.JobFinished(h.now, id)
	delete(h.jobs, id)
	jobs := h.view.Jobs[:0]
	for _, j := range h.view.Jobs {
		if j.ID != id {
			jobs = append(jobs, j)
		}
	}
	h.view.Jobs = jobs
	h.plan()
}

// plan applies the policy plan with the manager's clamping rules: shrinks
// first, then grows bounded by free processors.
func (h *harness) plan() {
	plan := h.p.Plan(h.view)
	for id, want := range plan {
		jv := h.jobs[id]
		if want < jv.Allocated {
			jv.Allocated = want
		}
	}
	for id, want := range plan {
		jv := h.jobs[id]
		if want > jv.Allocated {
			free := h.view.FreeCPUs()
			grant := want - jv.Allocated
			if grant > free {
				grant = free
			}
			jv.Allocated += grant
		}
	}
	// Run-to-completion: every running job keeps at least one processor,
	// preempting from the largest allocation if the machine is full.
	for _, jv := range h.jobs {
		for jv.Allocated < 1 {
			var biggest *sched.JobView
			for _, other := range h.jobs {
				if biggest == nil || other.Allocated > biggest.Allocated {
					biggest = other
				}
			}
			if biggest == nil || biggest.Allocated <= 1 {
				break
			}
			biggest.Allocated--
			jv.Allocated++
		}
	}
}

// report delivers a measurement at the job's current allocation using its
// true curve, then replans.
func (h *harness) report(id sched.JobID) {
	h.now += sim.Second
	jv := h.jobs[id]
	s := h.curve[id].Speedup(jv.Allocated)
	r := sched.Report{
		At: h.now, Procs: jv.Allocated,
		Speedup: s, Efficiency: s / float64(jv.Allocated),
	}
	jv.Reports = append(jv.Reports, r)
	h.p.ReportPerformance(h.now, jv, r)
	h.plan()
}

// settle reports until the job stops changing state or allocation.
func (h *harness) settle(id sched.JobID, maxRounds int) {
	for i := 0; i < maxRounds; i++ {
		before := h.jobs[id].Allocated
		beforeState := h.p.StateOf(id)
		h.report(id)
		if h.jobs[id].Allocated == before && h.p.StateOf(id) == beforeState && beforeState == Stable {
			return
		}
	}
}

func btCurve() app.SpeedupModel    { return app.ProfileFor(app.BT).Speedup }
func hydroCurve() app.SpeedupModel { return app.ProfileFor(app.Hydro2D).Speedup }
func apsiCurve() app.SpeedupModel  { return app.ProfileFor(app.Apsi).Speedup }
func swimCurve() app.SpeedupModel  { return app.ProfileFor(app.Swim).Speedup }

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{TargetEff: 0, HighEff: 0.9, Step: 4, BaseMPL: 4},
		{TargetEff: 0.9, HighEff: 0.7, Step: 4, BaseMPL: 4},
		{TargetEff: 0.7, HighEff: 0.9, Step: 0, BaseMPL: 4},
		{TargetEff: 0.7, HighEff: 0.9, Step: 4, BaseMPL: 0},
		{TargetEff: 0.7, HighEff: 0.9, Step: 4, BaseMPL: 4, MaxStableTransitions: -1},
	}
	for i, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{NoRef: "NO_REF", Inc: "INC", Dec: "DEC", Stable: "STABLE"}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%v", s)
		}
	}
	if State(9).String() != "state(9)" {
		t.Fatal("unknown state string")
	}
}

func TestInitialAllocationMinRequestFree(t *testing.T) {
	h := newHarness(t, DefaultParams(), 60)
	h.start(1, 30, btCurve())
	if got := h.jobs[1].Allocated; got != 30 {
		t.Fatalf("empty machine: alloc = %d, want request 30", got)
	}
	h.start(2, 30, btCurve())
	if got := h.jobs[2].Allocated; got != 30 {
		t.Fatalf("second job alloc = %d, want 30", got)
	}
	h.start(3, 30, btCurve())
	if got := h.jobs[3].Allocated; got != 1 {
		t.Fatalf("full machine: alloc = %d, want minimum 1", got)
	}
}

func TestNoRefTransitions(t *testing.T) {
	// apsi at its request of 2 has eff ~0.71: acceptable => STABLE.
	h := newHarness(t, DefaultParams(), 60)
	h.start(1, 2, apsiCurve())
	h.report(1)
	if got := h.p.StateOf(1); got != Stable {
		t.Fatalf("apsi at 2: state %v, want STABLE", got)
	}

	// bt at 8 has eff 0.91 > high => INC.
	h2 := newHarness(t, DefaultParams(), 8)
	h2.start(1, 30, btCurve())
	if h2.jobs[1].Allocated != 8 {
		t.Fatalf("alloc = %d", h2.jobs[1].Allocated)
	}
	h2.report(1)
	if got := h2.p.StateOf(1); got != Inc {
		t.Fatalf("bt at 8: state %v, want INC", got)
	}

	// hydro2d at 30 has eff 0.33 < target => DEC.
	h3 := newHarness(t, DefaultParams(), 60)
	h3.start(1, 30, hydroCurve())
	h3.report(1)
	if got := h3.p.StateOf(1); got != Dec {
		t.Fatalf("hydro at 30: state %v, want DEC", got)
	}
	if got := h3.jobs[1].Allocated; got != 26 {
		t.Fatalf("hydro after DEC: alloc = %d, want 26", got)
	}
}

func TestDecConvergesToTargetEfficiency(t *testing.T) {
	// hydro2d must walk down from 30 until efficiency >= 0.7 (at ~8-10).
	h := newHarness(t, DefaultParams(), 60)
	h.start(1, 30, hydroCurve())
	h.settle(1, 20)
	if got := h.p.StateOf(1); got != Stable {
		t.Fatalf("state = %v", got)
	}
	alloc := h.jobs[1].Allocated
	if alloc < 6 || alloc > 10 {
		t.Fatalf("hydro settled at %d, want 6..10", alloc)
	}
	eff := app.Efficiency(hydroCurve(), alloc)
	if eff < 0.7 {
		t.Fatalf("settled efficiency %v < target", eff)
	}
}

func TestApsiShrinksToMinimumOne(t *testing.T) {
	// apsi requesting 30 (untuned): must walk down to ~2 or fewer.
	h := newHarness(t, DefaultParams(), 60)
	h.start(1, 30, apsiCurve())
	h.settle(1, 20)
	if got := h.jobs[1].Allocated; got > 2 {
		t.Fatalf("untuned apsi settled at %d, want <= 2", got)
	}
	if h.p.StateOf(1) != Stable {
		t.Fatalf("state = %v", h.p.StateOf(1))
	}
}

func TestIncGrowsWhileScalable(t *testing.T) {
	// bt starting small on a big machine must grow toward its request.
	h := newHarness(t, DefaultParams(), 60)
	h.start(1, 30, btCurve())
	h.jobs[1].Allocated = 8 // pretend only 8 were free at arrival
	h.settle(1, 30)
	got := h.jobs[1].Allocated
	if got != 30 {
		t.Fatalf("bt settled at %d, want its full request 30", got)
	}
}

func TestRelativeSpeedupStopsSwim(t *testing.T) {
	// swim from 12: superlinear up to ~16, then relative speedup collapses.
	// The INC chain must stop well short of the request even though
	// efficiency stays above high_eff (superlinear).
	h := newHarness(t, DefaultParams(), 60)
	h.start(1, 30, swimCurve())
	h.jobs[1].Allocated = 12
	h.settle(1, 30)
	got := h.jobs[1].Allocated
	if got < 14 || got > 26 {
		t.Fatalf("swim settled at %d, want 16..24 (relative-speedup stop)", got)
	}
}

func TestIncWithoutFreeProcessorsKeepsWaiting(t *testing.T) {
	h := newHarness(t, DefaultParams(), 8)
	h.start(1, 30, btCurve())
	h.report(1) // eff(8)=0.95 => INC, but no free CPUs: stays at 8
	if h.jobs[1].Allocated != 8 {
		t.Fatalf("alloc grew to %d with no free CPUs", h.jobs[1].Allocated)
	}
	h.report(1) // still nothing granted: keep desiring the step in INC
	if h.p.StateOf(1) != Inc {
		t.Fatalf("state = %v, want INC (waiting for the grant)", h.p.StateOf(1))
	}
	// When processors free up, the pending step is granted immediately and
	// the application resumes its search.
	h.view.NCPU = 60
	h.plan()
	if h.jobs[1].Allocated != 12 {
		t.Fatalf("alloc = %d after CPUs freed, want 12", h.jobs[1].Allocated)
	}
	h.settle(1, 30)
	if h.jobs[1].Allocated != 30 {
		t.Fatalf("alloc = %d after settling on a big machine, want 30", h.jobs[1].Allocated)
	}
}

func TestIncAtRequestCapSettles(t *testing.T) {
	h := newHarness(t, DefaultParams(), 60)
	h.start(1, 8, btCurve()) // request 8: eff(8)=0.95 > high but capped
	h.report(1)
	if h.p.StateOf(1) != Stable {
		t.Fatalf("state = %v, want STABLE at the request cap", h.p.StateOf(1))
	}
	if h.jobs[1].Allocated != 8 {
		t.Fatalf("alloc = %d", h.jobs[1].Allocated)
	}
}

func TestStableLosesStepOnlyBelowTarget(t *testing.T) {
	// Craft a curve: great at 8, mediocre at 12 (eff < target): after
	// growing 8->12 the app must fall back to 8.
	curve := app.MustTable(
		app.Point{Procs: 1, Speedup: 1},
		app.Point{Procs: 8, Speedup: 7.6},  // eff 0.95
		app.Point{Procs: 12, Speedup: 7.9}, // eff 0.66 < target
	)
	h := newHarness(t, DefaultParams(), 60)
	h.start(1, 30, curve)
	h.jobs[1].Allocated = 8
	h.report(1) // INC to 12
	if h.jobs[1].Allocated != 12 {
		t.Fatalf("alloc = %d, want 12", h.jobs[1].Allocated)
	}
	h.report(1) // at 12: rel speedup poor AND eff < target: lose the step
	if h.jobs[1].Allocated != 8 {
		t.Fatalf("alloc = %d, want fallback to 8", h.jobs[1].Allocated)
	}
	if h.p.StateOf(1) != Stable {
		t.Fatalf("state = %v", h.p.StateOf(1))
	}
}

func TestStableKeepsStepAboveTarget(t *testing.T) {
	// Growth 16->20 on swim: rel speedup fails but eff(20)=1.32 >= target:
	// the app keeps 20.
	h := newHarness(t, DefaultParams(), 60)
	h.start(1, 30, swimCurve())
	h.jobs[1].Allocated = 16
	h.report(1) // eff(16)=1.5 > high => INC to 20
	if h.jobs[1].Allocated != 20 {
		t.Fatalf("alloc = %d, want 20", h.jobs[1].Allocated)
	}
	h.report(1)
	if got := h.jobs[1].Allocated; got != 20 && got != 24 {
		t.Fatalf("alloc = %d, want to keep >= 20", got)
	}
}

func TestStableHoldsWithoutChange(t *testing.T) {
	// Re-evaluating identical measurements must not creep the allocation:
	// once STABLE, the allocation is frozen until performance or parameters
	// change.
	h := newHarness(t, DefaultParams(), 60)
	h.start(1, 30, swimCurve())
	h.jobs[1].Allocated = 12
	h.settle(1, 30)
	frozen := h.jobs[1].Allocated
	for i := 0; i < 20; i++ {
		h.report(1)
		if h.jobs[1].Allocated != frozen {
			t.Fatalf("STABLE allocation crept: %d -> %d", frozen, h.jobs[1].Allocated)
		}
	}
}

func TestParameterChangeReevaluatesStable(t *testing.T) {
	h := newHarness(t, DefaultParams(), 60)
	h.start(1, 30, hydroCurve())
	h.settle(1, 30)
	before := h.jobs[1].Allocated // ~6-10 at target 0.7
	// Raise the target: the settled allocation no longer qualifies.
	strict := DefaultParams()
	strict.TargetEff = 0.9
	strict.HighEff = 0.95
	if err := h.p.SetParams(strict); err != nil {
		t.Fatal(err)
	}
	h.settle(1, 30)
	if got := h.jobs[1].Allocated; got >= before {
		t.Fatalf("allocation %d did not shrink after raising target (was %d)", got, before)
	}
}

func TestPingPongGuard(t *testing.T) {
	params := DefaultParams()
	params.MaxStableTransitions = 2
	h := newHarness(t, params, 60)
	h.start(1, 30, hydroCurve())
	h.settle(1, 30)
	// Flap the parameters: each change could pull the app out of STABLE,
	// but the guard caps how many times it may leave.
	lax := params
	lax.TargetEff = 0.3
	lax.HighEff = 0.95
	moves := 0
	last := h.jobs[1].Allocated
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			h.p.SetParams(params)
		} else {
			h.p.SetParams(lax)
		}
		h.report(1)
		if h.jobs[1].Allocated != last {
			moves++
			last = h.jobs[1].Allocated
		}
	}
	if moves > 2*params.MaxStableTransitions+2 {
		t.Fatalf("allocation moved %d times despite ping-pong guard", moves)
	}
}

func TestRunToCompletionMinimumOne(t *testing.T) {
	h := newHarness(t, DefaultParams(), 60)
	h.start(1, 2, apsiCurve())
	h.jobs[1].Allocated = 1
	h.report(1) // eff(1) = 1 => fine, STABLE (or INC capped by request)
	if h.jobs[1].Allocated < 1 {
		t.Fatal("allocation below one processor")
	}
}

func TestWantsNewJobBelowBaseMPL(t *testing.T) {
	h := newHarness(t, DefaultParams(), 100)
	for i := 0; i < 3; i++ {
		h.start(sched.JobID(i), 30, btCurve())
	}
	// 3 jobs (below the base level of 4): admit regardless of the jobs'
	// states — the default-level semantics shared with the fixed-level
	// policies (the run-to-completion minimum finds the newcomer a CPU).
	if !h.p.WantsNewJob(h.view) {
		t.Fatal("admission below base MPL must be allowed")
	}
	// Beyond the base level, a free processor is required.
	h2 := newHarness(t, DefaultParams(), 60)
	for i := 0; i < 4; i++ {
		h2.start(sched.JobID(i), 30, btCurve())
	}
	for i := 0; i < 4; i++ {
		h2.settle(sched.JobID(i), 30)
	}
	if h2.view.FreeCPUs() == 0 && h2.p.WantsNewJob(h2.view) {
		t.Fatal("admitted beyond base MPL with no free processor")
	}
}

func TestWantsNewJobRequiresStability(t *testing.T) {
	h := newHarness(t, DefaultParams(), 200)
	for i := 0; i < 4; i++ {
		h.start(sched.JobID(i), 30, btCurve())
	}
	// All four running but NO_REF: admission beyond base must wait.
	if h.p.WantsNewJob(h.view) {
		t.Fatal("admitted with NO_REF jobs at base MPL")
	}
	for i := 0; i < 4; i++ {
		h.settle(sched.JobID(i), 30)
	}
	if !h.p.WantsNewJob(h.view) {
		t.Fatal("not admitted with all jobs stable and free CPUs")
	}
}

func TestWantsNewJobRequiresFreeCPU(t *testing.T) {
	h := newHarness(t, DefaultParams(), 60)
	for i := 0; i < 4; i++ {
		h.start(sched.JobID(i), 30, btCurve())
	}
	for i := 0; i < 4; i++ {
		h.settle(sched.JobID(i), 30)
	}
	// 4 bt jobs on 60 CPUs: allocations sum to 60 (15 each or so): no free.
	if h.view.FreeCPUs() == 0 && h.p.WantsNewJob(h.view) {
		t.Fatal("admitted with zero free CPUs beyond base MPL")
	}
}

func TestWantsNewJobAllowsDecJobs(t *testing.T) {
	h := newHarness(t, DefaultParams(), 60)
	for i := 0; i < 4; i++ {
		h.start(sched.JobID(i), 2, apsiCurve())
	}
	for i := 0; i < 4; i++ {
		h.report(sched.JobID(i)) // apsi at 2: STABLE immediately
	}
	if !h.p.WantsNewJob(h.view) {
		t.Fatal("apsi workload should admit more jobs (paper reaches ML 34)")
	}
}

func TestJobFinishedCleansUp(t *testing.T) {
	h := newHarness(t, DefaultParams(), 60)
	h.start(1, 30, btCurve())
	h.finish(1)
	if h.p.StateOf(1) != NoRef {
		t.Fatal("finished job state retained")
	}
	if len(h.p.Plan(h.view)) != 0 {
		t.Fatal("plan contains finished job")
	}
}

func TestSetParamsRuntime(t *testing.T) {
	p := MustNew(DefaultParams())
	np := DefaultParams()
	np.TargetEff = 0.5
	if err := p.SetParams(np); err != nil {
		t.Fatal(err)
	}
	if p.Params().TargetEff != 0.5 {
		t.Fatal("params not applied")
	}
	np.Step = 0
	if err := p.SetParams(np); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestStaleReportForUnknownJobIgnored(t *testing.T) {
	p := MustNew(DefaultParams())
	jv := &sched.JobView{ID: 5, Request: 30, Allocated: 10}
	p.ReportPerformance(0, jv, sched.Report{Procs: 10, Speedup: 8, Efficiency: 0.8})
	// Must not panic or create state.
	if p.StateOf(5) != NoRef {
		t.Fatal("state created for unknown job")
	}
}

// TestConvergenceMatchesAnalyticTarget cross-checks the state machine's
// settled allocation against the analytic efficiency frontier for all four
// application classes on a dedicated machine.
func TestConvergenceMatchesAnalyticTarget(t *testing.T) {
	for _, c := range app.AllClasses() {
		prof := app.ProfileFor(c)
		h := newHarness(t, DefaultParams(), 60)
		h.start(1, prof.Request, prof.Speedup)
		h.settle(1, 40)
		got := h.jobs[1].Allocated
		// The frontier: largest p with eff >= target, capped by request.
		frontier := app.MaxProcsAtEfficiency(prof.Speedup, 0.7, prof.Request)
		// The search moves in steps of 4 and stops on relative-speedup
		// collapse, so allow a generous band around the frontier.
		lo, hi := frontier-6, frontier+4
		if c == app.Swim {
			// Superlinear: efficiency never dips below target, the
			// relative-speedup test is what stops it; see
			// TestRelativeSpeedupStopsSwim.
			continue
		}
		if got < lo || got > hi {
			t.Errorf("%s settled at %d, frontier %d", prof.Name, got, frontier)
		}
	}
}

func TestTransitionHistory(t *testing.T) {
	h := newHarness(t, DefaultParams(), 60)
	h.p.RecordHistory(true)
	h.start(1, 30, hydroCurve())
	h.settle(1, 30)
	hist := h.p.History()
	if len(hist) == 0 {
		t.Fatal("no transitions recorded")
	}
	// The hydro descent: first transition out of NO_REF must be a DEC with
	// a sub-target efficiency.
	first := hist[0]
	if first.From != NoRef || first.To != Dec {
		t.Fatalf("first transition %v -> %v, want NO_REF -> DEC", first.From, first.To)
	}
	if first.Efficiency >= 0.7 {
		t.Fatalf("triggering efficiency %v, want < target", first.Efficiency)
	}
	// The last transition must settle into STABLE.
	last := hist[len(hist)-1]
	if last.To != Stable {
		t.Fatalf("last transition to %v, want STABLE", last.To)
	}
	// Desired allocations must walk downward monotonically during descent.
	for i := 1; i < len(hist); i++ {
		if hist[i].Desired > hist[i-1].Desired {
			t.Fatalf("descent reversed at %d: %v", i, hist)
		}
	}
}

func TestHistoryDisabledByDefault(t *testing.T) {
	h := newHarness(t, DefaultParams(), 60)
	h.start(1, 30, hydroCurve())
	h.settle(1, 30)
	if h.p.History() != nil {
		t.Fatal("history recorded without opt-in")
	}
}

func TestAdaptiveValidation(t *testing.T) {
	base := DefaultParams()
	cases := []struct {
		min, max float64
		qh       int
	}{
		{0, 0.9, 10},
		{0.9, 0.5, 10},
		{0.5, 2.0, 10},
		{0.5, 0.9, 0},
	}
	for i, c := range cases {
		if _, err := NewAdaptive(base, c.min, c.max, c.qh); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	a := MustNewAdaptive(base, 0.5, 0.9, 10)
	if a.Name() != "PDPA-adaptive" {
		t.Fatal("name")
	}
}

func TestAdaptiveTargetTracksQueue(t *testing.T) {
	a := MustNewAdaptive(DefaultParams(), 0.5, 0.9, 10)
	// Empty queue: relax to the minimum.
	a.Plan(sched.View{NCPU: 60, Queued: 0})
	if got := a.Params().TargetEff; got != 0.5 {
		t.Fatalf("empty-queue target = %v, want 0.5", got)
	}
	// Deep queue: tighten to the maximum.
	a.Plan(sched.View{NCPU: 60, Queued: 20})
	if got := a.Params().TargetEff; got != 0.9 {
		t.Fatalf("deep-queue target = %v, want 0.9", got)
	}
	if a.Params().HighEff < 0.9 {
		t.Fatalf("high_eff %v fell below the target", a.Params().HighEff)
	}
	// Mid queue: interpolated.
	a.Plan(sched.View{NCPU: 60, Queued: 5})
	if got := a.Params().TargetEff; got < 0.65 || got > 0.75 {
		t.Fatalf("mid-queue target = %v, want ~0.7", got)
	}
}

func TestAdaptiveHysteresis(t *testing.T) {
	a := MustNewAdaptive(DefaultParams(), 0.5, 0.9, 100)
	a.Plan(sched.View{NCPU: 60, Queued: 50}) // target 0.7
	before := a.Params().TargetEff
	// A one-job wiggle (0.4% of range) must not change the parameters (and
	// so must not reopen every STABLE application's search).
	a.Plan(sched.View{NCPU: 60, Queued: 51})
	if a.Params().TargetEff != before {
		t.Fatalf("target moved on a tiny queue change: %v -> %v", before, a.Params().TargetEff)
	}
}

func TestAdaptiveAllocatesByLoad(t *testing.T) {
	// Same hydro2d application: generous allocation when the queue is
	// empty, tight when it is deep.
	run := func(queued int) int {
		h := newHarness(t, DefaultParams(), 60)
		h.p = nil // replaced by the adaptive policy below
		a := MustNewAdaptive(DefaultParams(), 0.5, 0.9, 10)
		jv := &sched.JobView{ID: 1, Name: "hydro", Request: 30}
		a.JobStarted(0, jv)
		view := sched.View{NCPU: 60, Jobs: []*sched.JobView{jv}, Queued: queued}
		apply := func() {
			plan := a.Plan(view)
			if want, ok := plan[1]; ok {
				if want > 60 {
					want = 60
				}
				jv.Allocated = want
			}
		}
		apply()
		curve := hydroCurve()
		for i := 0; i < 30; i++ {
			s := curve.Speedup(jv.Allocated)
			r := sched.Report{Procs: jv.Allocated, Speedup: s, Efficiency: s / float64(jv.Allocated)}
			jv.Reports = append(jv.Reports, r)
			a.ReportPerformance(0, jv, r)
			apply()
		}
		return jv.Allocated
	}
	generous := run(0) // target 0.5
	tight := run(20)   // target 0.9
	if generous <= tight {
		t.Fatalf("empty-queue allocation %d not above deep-queue %d", generous, tight)
	}
}
