package core

import (
	"testing"

	"pdpasim/internal/obs"
)

// TestPolicyStateNames pins the name table obs uses to render recorded
// From/To state values to core.State's own names: obs cannot import core, so
// the mapping is duplicated and this test keeps the copies in sync.
func TestPolicyStateNames(t *testing.T) {
	for _, s := range []State{NoRef, Inc, Dec, Stable} {
		if got := obs.PolicyStateName(int(s)); got != s.String() {
			t.Errorf("obs.PolicyStateName(%d) = %q, core name %q", int(s), got, s.String())
		}
	}
}
