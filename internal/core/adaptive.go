package core

import (
	"fmt"

	"pdpasim/internal/sched"
)

// Adaptive wraps PDPA with a load-driven target efficiency — the variant the
// paper sketches in Section 4.1: "Alternatively, it is dynamically set
// depending on the load of the system."
//
// When the queue is empty there is no one to reclaim processors for, so the
// target relaxes toward MinTarget and applications get generous allocations
// (better execution times). As the queue deepens the target climbs toward
// MaxTarget, packing applications onto fewer processors so more jobs run
// (better response times). The adjustment goes through SetParams, so STABLE
// applications re-evaluate against the new threshold — exactly the
// parameter-change path Section 4.2.4 defines.
type Adaptive struct {
	*PDPA
	// MinTarget applies with an empty queue; MaxTarget once the queue
	// reaches QueueHigh waiting jobs. The high-efficiency threshold keeps
	// its margin above the target.
	MinTarget float64
	MaxTarget float64
	QueueHigh int
}

// NewAdaptive returns an adaptive PDPA moving its target efficiency between
// minTarget and maxTarget as the queue grows to queueHigh. The embedded
// PDPA starts from base (its TargetEff is overridden immediately).
func NewAdaptive(base Params, minTarget, maxTarget float64, queueHigh int) (*Adaptive, error) {
	switch {
	case minTarget <= 0 || maxTarget > 1.5 || minTarget > maxTarget:
		return nil, fmt.Errorf("core: adaptive target range [%v, %v] invalid", minTarget, maxTarget)
	case queueHigh < 1:
		return nil, fmt.Errorf("core: queueHigh %d < 1", queueHigh)
	}
	p, err := New(base)
	if err != nil {
		return nil, err
	}
	return &Adaptive{
		PDPA:      p,
		MinTarget: minTarget,
		MaxTarget: maxTarget,
		QueueHigh: queueHigh,
	}, nil
}

// MustNewAdaptive is NewAdaptive that panics on error.
func MustNewAdaptive(base Params, minTarget, maxTarget float64, queueHigh int) *Adaptive {
	a, err := NewAdaptive(base, minTarget, maxTarget, queueHigh)
	if err != nil {
		panic(err)
	}
	return a
}

// Name implements sched.Policy.
func (a *Adaptive) Name() string { return "PDPA-adaptive" }

// targetFor maps the queue depth to a target efficiency.
func (a *Adaptive) targetFor(queued int) float64 {
	if queued >= a.QueueHigh {
		return a.MaxTarget
	}
	if queued <= 0 {
		return a.MinTarget
	}
	frac := float64(queued) / float64(a.QueueHigh)
	return a.MinTarget + frac*(a.MaxTarget-a.MinTarget)
}

// Plan implements sched.Policy: re-derive the target from the current queue
// depth, then delegate. Small drifts are ignored so the parameter epoch (and
// with it every STABLE application's re-evaluation) only advances on real
// load changes.
func (a *Adaptive) Plan(v sched.View) map[sched.JobID]int {
	want := a.targetFor(v.Queued)
	cur := a.Params()
	if diff := want - cur.TargetEff; diff > 0.05 || diff < -0.05 {
		next := cur
		next.TargetEff = want
		if next.HighEff < want {
			next.HighEff = want
		}
		// Keep the standard margin when the target sits below it.
		if base := DefaultParams(); next.HighEff < base.HighEff {
			next.HighEff = base.HighEff
		}
		// Validation cannot fail here (range-checked in NewAdaptive), but a
		// refused update simply keeps the previous target.
		_ = a.SetParams(next)
	}
	return a.PDPA.Plan(v)
}
