// Package core implements the paper's contribution: the Performance-Driven
// Processor Allocation policy (PDPA, Section 4).
//
// PDPA is a dynamic space-sharing policy that searches, per application, for
// the maximum processor allocation that still achieves a target efficiency,
// using speedups measured at runtime. Each application moves through the
// state machine of Fig. 2 — NO_REF, INC, DEC, STABLE — as its measured
// efficiency is compared against the target_eff and high_eff thresholds.
// PDPA also decides the multiprogramming level: coordinated with the queuing
// system, it admits a new application when free processors exist and the
// running applications' allocations have settled.
package core

import (
	"fmt"

	"pdpasim/internal/obs"
	"pdpasim/internal/sched"
	"pdpasim/internal/sim"
)

// State is a PDPA application state (Fig. 2).
type State int

const (
	// NoRef: PDPA has no performance knowledge about the application yet.
	NoRef State = iota
	// Inc: the application performed well at the last evaluation and was
	// granted additional processors.
	Inc
	// Dec: the application missed the target efficiency and is shrinking.
	Dec
	// Stable: the application holds the maximum allocation PDPA considers
	// acceptable.
	Stable
)

// String returns the paper's name for the state.
func (s State) String() string {
	switch s {
	case NoRef:
		return "NO_REF"
	case Inc:
		return "INC"
	case Dec:
		return "DEC"
	case Stable:
		return "STABLE"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Params are the PDPA policy parameters (Section 4.2). They may be changed
// between runs; the paper notes they can also be modified at runtime.
type Params struct {
	// TargetEff is the efficiency PDPA guarantees for allocated processors
	// (the paper's evaluation uses 0.7).
	TargetEff float64
	// HighEff is the efficiency considered very good (0.9 in the paper).
	HighEff float64
	// Step is the number of processors added or removed per transition.
	Step int
	// BaseMPL is the default multiprogramming level: below it, admission is
	// unconditional (the paper's default is 4).
	BaseMPL int
	// MaxStableTransitions bounds how many times an application may leave
	// STABLE again, avoiding ping-pong effects (Section 4.2.4). Zero means
	// no limit.
	MaxStableTransitions int
}

// stableHysteresis shrinks the target a STABLE application is re-checked
// against, so measurement noise at the efficiency frontier does not cause
// reallocation churn.
const stableHysteresis = 0.95

// DefaultParams returns the parameter values used throughout the paper's
// evaluation.
func DefaultParams() Params {
	return Params{
		TargetEff:            0.7,
		HighEff:              0.9,
		Step:                 4,
		BaseMPL:              4,
		MaxStableTransitions: 4,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.TargetEff <= 0 || p.TargetEff > 1.5:
		return fmt.Errorf("core: target_eff %v out of range", p.TargetEff)
	case p.HighEff < p.TargetEff:
		return fmt.Errorf("core: high_eff %v below target_eff %v", p.HighEff, p.TargetEff)
	case p.Step < 1:
		return fmt.Errorf("core: step %v < 1", p.Step)
	case p.BaseMPL < 1:
		return fmt.Errorf("core: base multiprogramming level %v < 1", p.BaseMPL)
	case p.MaxStableTransitions < 0:
		return fmt.Errorf("core: negative stable-transition limit")
	}
	return nil
}

// jobState is PDPA's memory about one application: its state and the recent
// past the search algorithm compares against (Section 4.1: "it remembers the
// last processor allocations different from the current one and the
// efficiency achieved with them").
type jobState struct {
	state State
	// desired is the allocation PDPA currently wants for the job (-1 until
	// the initial allocation is computed in Plan).
	desired int
	// prevProcs/prevSpeedup are the measurement taken at the previous,
	// different allocation (the reference for RelativeSpeedup).
	prevProcs   int
	prevSpeedup float64
	// stableLeaves counts transitions out of STABLE (ping-pong guard).
	stableLeaves int
	// searched records that the search algorithm has reached an upward
	// verdict for this application: either an INC growth test concluded
	// (the frontier was found — superlinear applications stay above
	// high_eff at their relative-speedup stop and must not re-climb), or
	// the application descended through DEC (larger allocations are known
	// to miss the target). An application that settled straight out of
	// NO_REF has never looked upward and is granted one probe.
	searched bool
	// epoch is the parameter epoch the job was last evaluated under; a
	// parameter change makes STABLE applications re-evaluate (Section
	// 4.2.4).
	epoch int
}

// Transition is one recorded step of the state machine — the raw material
// for debugging a policy decision after the fact.
type Transition struct {
	At   sim.Time
	Job  sched.JobID
	From State
	To   State
	// Procs is the allocation the triggering measurement was taken at;
	// Desired is the allocation decided by the transition.
	Procs   int
	Desired int
	// Efficiency is the measured efficiency that triggered the step.
	Efficiency float64
}

// PDPA implements sched.Policy. Create with New.
type PDPA struct {
	params Params
	jobs   map[sched.JobID]*jobState
	epoch  int
	// transitions counts state transitions, for diagnostics and tests.
	transitions int
	// history records transitions when enabled (see RecordHistory).
	history       []Transition
	recordHistory bool
	// plan is the map returned by Plan, reused across calls; the manager
	// consumes it before the next replan.
	plan map[sched.JobID]int
	// tr, when non-nil, receives decision-trace events: every state
	// transition and every admission decision with its reason.
	tr *obs.Trace
	// free recycles jobState structs across jobs (and, via Reset, runs).
	free []*jobState
}

// SetTrace attaches a decision-trace recorder (nil detaches). Every state
// transition and every WantsNewJob admission decision is recorded.
func (p *PDPA) SetTrace(tr *obs.Trace) { p.tr = tr }

// RecordHistory enables transition recording; History returns the log.
func (p *PDPA) RecordHistory(on bool) { p.recordHistory = on }

// History returns the recorded transitions (nil unless RecordHistory(true)
// was called before the run).
func (p *PDPA) History() []Transition { return p.history }

// New returns a PDPA policy with the given parameters.
func New(params Params) (*PDPA, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &PDPA{params: params, jobs: make(map[sched.JobID]*jobState)}, nil
}

// MustNew is New that panics on error.
func MustNew(params Params) *PDPA {
	p, err := New(params)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements sched.Policy.
func (p *PDPA) Name() string { return "PDPA" }

// Params returns the current parameters.
func (p *PDPA) Params() Params { return p.params }

// SetParams changes the policy parameters at runtime. STABLE applications
// will be re-evaluated against the new thresholds at their next report.
func (p *PDPA) SetParams(params Params) error {
	if err := params.Validate(); err != nil {
		return err
	}
	p.params = params
	p.epoch++
	return nil
}

// StateOf returns the PDPA state of a running job (NoRef for unknown jobs).
func (p *PDPA) StateOf(id sched.JobID) State {
	if s, ok := p.jobs[id]; ok {
		return s.state
	}
	return NoRef
}

// Transitions returns how many state transitions the policy has performed.
func (p *PDPA) Transitions() int { return p.transitions }

// JobStarted implements sched.Policy: the application enters NO_REF.
func (p *PDPA) JobStarted(now sim.Time, job *sched.JobView) {
	var s *jobState
	if n := len(p.free); n > 0 {
		s = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		s = new(jobState)
	}
	*s = jobState{state: NoRef, desired: -1}
	p.jobs[job.ID] = s
}

// JobFinished implements sched.Policy.
func (p *PDPA) JobFinished(now sim.Time, id sched.JobID) {
	if s, ok := p.jobs[id]; ok {
		p.free = append(p.free, s)
		delete(p.jobs, id)
	}
}

// Reset reinitializes the policy to the state New(params) would produce,
// recycling the per-job state structs and the plan map. History recording is
// switched off and any attached trace detached, as on a fresh policy.
func (p *PDPA) Reset(params Params) error {
	if err := params.Validate(); err != nil {
		return err
	}
	for id, s := range p.jobs {
		p.free = append(p.free, s)
		delete(p.jobs, id)
	}
	if p.jobs == nil {
		p.jobs = make(map[sched.JobID]*jobState)
	}
	p.params = params
	p.epoch = 0
	p.transitions = 0
	p.history = nil
	p.recordHistory = false
	if p.plan != nil {
		clear(p.plan)
	}
	p.tr = nil
	return nil
}

// ReportPerformance implements sched.Policy: it runs one step of the state
// machine of Fig. 2 for the reporting application.
func (p *PDPA) ReportPerformance(now sim.Time, job *sched.JobView, r sched.Report) {
	s, ok := p.jobs[job.ID]
	if !ok {
		return
	}
	procs := r.Procs
	eff := r.Efficiency
	speedup := r.Speedup

	prevState := s.state
	switch s.state {
	case NoRef:
		switch {
		case eff > p.params.HighEff:
			p.grow(s, job, procs)
		case eff < p.params.TargetEff:
			p.shrink(s, procs)
		default:
			s.state = Stable
			s.desired = procs
			s.searched = false
		}
		s.prevProcs = procs
		s.prevSpeedup = speedup

	case Inc:
		if procs <= s.prevProcs {
			if s.desired > procs {
				// The growth has not been granted yet (no free processors).
				// Stay in INC, still desiring the step: the manager grants
				// it as soon as processors free up, and only then is there
				// something to evaluate.
				break
			}
			// Nothing more to ask for (request cap): settle.
			s.state = Stable
			s.searched = true
			s.desired = procs
			break
		}
		// RelativeSpeedup: has scalability kept up with the additional
		// processors? (Section 4.2.2.)
		rel := 0.0
		if s.prevSpeedup > 0 {
			rel = speedup / s.prevSpeedup
		}
		required := float64(procs) / float64(s.prevProcs) * p.params.HighEff
		if eff > p.params.HighEff && speedup > s.prevSpeedup && rel > required {
			s.prevProcs = procs
			s.prevSpeedup = speedup
			p.grow(s, job, procs)
			break
		}
		// Good but no longer scaling: settle. The application loses the
		// step received in the last transition only if the current
		// efficiency misses the target.
		s.state = Stable
		s.searched = true
		if eff < p.params.TargetEff {
			s.desired = s.prevProcs
		} else {
			s.desired = procs
			s.prevProcs = procs
			s.prevSpeedup = speedup
		}

	case Dec:
		if eff < p.params.TargetEff && procs > 1 {
			s.prevProcs = procs
			s.prevSpeedup = speedup
			p.shrink(s, procs)
			break
		}
		s.state = Stable
		// The application descended from larger allocations that missed the
		// target: the upward verdict is in, no probe needed.
		s.searched = true
		s.desired = procs
		s.prevProcs = procs
		s.prevSpeedup = speedup

	case Stable:
		// STABLE holds the allocation; it is re-evaluated when the
		// application's performance changes or the policy parameters were
		// changed at runtime (Section 4.2.4). Leaving STABLE is rate
		// limited against ping-pong.
		if p.params.MaxStableTransitions > 0 && s.stableLeaves >= p.params.MaxStableTransitions {
			break
		}
		paramsChanged := s.epoch != p.epoch
		switch {
		// A genuine miss, with hysteresis: a measurement-noise dip just
		// below the target must not evict a settled application (the
		// robustness PDPA has over Equal_efficiency, Section 5.1).
		case eff < p.params.TargetEff*stableHysteresis:
			s.stableLeaves++
			s.prevProcs = procs
			s.prevSpeedup = speedup
			p.shrink(s, procs)
		// Acceptable performance with headroom and no upward verdict yet:
		// probe upward once (resuming the search); the probe's own INC
		// evaluation then delivers the verdict. A parameter change reopens
		// the search (Section 4.2.4).
		case eff >= p.params.TargetEff && procs < job.Request && (paramsChanged || !s.searched):
			s.stableLeaves++
			s.prevProcs = procs
			s.prevSpeedup = speedup
			p.grow(s, job, procs)
		}
	}
	s.epoch = p.epoch
	if s.state != prevState || s.desired != procs {
		p.transitions++
		if p.recordHistory {
			p.history = append(p.history, Transition{
				At: now, Job: job.ID, From: prevState, To: s.state,
				Procs: procs, Desired: s.desired, Efficiency: eff,
			})
		}
		if p.tr != nil {
			p.tr.Record(obs.Event{
				At: now, Kind: obs.KindPolicyState, Job: int32(job.ID),
				From: int32(prevState), To: int32(s.state),
				Procs: int32(procs), Want: int32(s.desired),
				Eff: eff, Speedup: speedup,
			})
		}
	}
}

// grow moves the job to INC, requesting step more processors (clamped to the
// request; the manager further clamps to the free processors). An
// application already at its request has nothing to gain and settles.
func (p *PDPA) grow(s *jobState, job *sched.JobView, procs int) {
	want := procs + p.params.Step
	if want > job.Request {
		want = job.Request
	}
	if want <= procs {
		s.state = Stable
		s.desired = procs
		return
	}
	s.state = Inc
	s.desired = want
}

// shrink moves the job to DEC, releasing step processors (minimum one:
// run-to-completion).
func (p *PDPA) shrink(s *jobState, procs int) {
	s.state = Dec
	want := procs - p.params.Step
	if want < 1 {
		want = 1
	}
	s.desired = want
}

// Plan implements sched.Policy. New applications receive the minimum of
// their request and the free processors (at least one); applications with
// performance knowledge receive their state machine's desired allocation.
func (p *PDPA) Plan(v sched.View) map[sched.JobID]int {
	if p.plan == nil {
		p.plan = make(map[sched.JobID]int, len(v.Jobs))
	} else {
		clear(p.plan)
	}
	plan := p.plan
	free := v.FreeCPUs()
	for _, job := range v.Jobs {
		s, ok := p.jobs[job.ID]
		if !ok {
			continue
		}
		// Initial allocation (Section 4.2.1): the minimum of the request
		// and the free processors. For a granular (MPI) job that has not
		// managed to start yet — the manager grants whole processes or
		// nothing — the initial decision is recomputed as processors free
		// up, so the job eventually fits.
		waitingGranular := job.Gran > 1 && job.Allocated < job.Gran && !job.HasPerformance()
		if s.desired < 0 || waitingGranular {
			want := job.Request
			if avail := job.Allocated + free; want > avail {
				want = avail
			}
			if want < 1 {
				want = 1
			}
			if want > s.desired {
				s.desired = want
			}
			free -= s.desired - job.Allocated
			if free < 0 {
				free = 0
			}
		}
		plan[job.ID] = s.desired
	}
	return plan
}

// WantsNewJob implements sched.Policy: the multiprogramming-level policy of
// Section 4.3. Below the base level, admission is unconditional. Beyond it,
// a new application may start only when at least one processor is free and
// every running application's allocation has settled — it is STABLE, or it
// is shrinking (DEC: bad performance means it will not take more
// processors).
func (p *PDPA) WantsNewJob(v sched.View) bool {
	if len(v.Jobs) < p.params.BaseMPL {
		// Below the default multiprogramming level admission is
		// unconditional, like the fixed-level policies; the
		// run-to-completion minimum finds the new application a processor.
		p.recordAdmission(v, obs.KindAdmit, obs.ReasonBelowBaseMPL, -1)
		return true
	}
	if v.FreeCPUs() < 1 {
		// Beyond it, "...when free processors are available".
		p.recordAdmission(v, obs.KindDeny, obs.ReasonNoFreeCPUs, -1)
		return false
	}
	for _, job := range v.Jobs {
		s, ok := p.jobs[job.ID]
		if !ok {
			continue
		}
		if s.state == NoRef || s.state == Inc {
			p.recordAdmission(v, obs.KindDeny, obs.ReasonUnsettled, int32(job.ID))
			return false
		}
	}
	p.recordAdmission(v, obs.KindAdmit, obs.ReasonJobsSettled, -1)
	return true
}

// recordAdmission traces one WantsNewJob verdict; blocking names the
// unsettled job a denial is waiting on (-1 when not applicable).
func (p *PDPA) recordAdmission(v sched.View, kind obs.Kind, reason obs.Reason, blocking int32) {
	if p.tr == nil {
		return
	}
	p.tr.Record(obs.Event{
		At: v.Now, Kind: kind, Reason: reason, Job: blocking,
		Procs: int32(len(v.Jobs)),
	})
}
