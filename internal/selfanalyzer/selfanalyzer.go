// Package selfanalyzer implements the NANOS SelfAnalyzer (Section 3.1): the
// runtime component that measures the speedup parallel applications actually
// achieve, exploiting their iterative structure.
//
// The analyzer controls the first few iterations of the outer loop on a
// small number of processors — the baseline measure. Once the time with
// baseline is known, subsequent iterations run on whatever the resource
// manager allocated, and the speedup with P processors is computed as the
// ratio between the baseline time and the time with P, normalized by an
// Amdahl Factor (the assumed speedup at the baseline processor count, since
// the baseline itself usually runs on more than one processor).
//
// Iterations whose timing spans a reallocation or penalty are dirty and are
// discarded; measurement noise is modeled as multiplicative log-normal
// jitter on iteration wall times.
package selfanalyzer

import (
	"fmt"

	"pdpasim/internal/app"
	"pdpasim/internal/sim"
	"pdpasim/internal/stats"
)

// Config parameterizes an Analyzer.
type Config struct {
	// BaselineProcs is the maximum processor count used during the baseline
	// iterations.
	BaselineProcs int
	// BaselineIterations is how many clean iterations form the baseline.
	BaselineIterations int
	// NoiseSigma is the standard deviation of the log of the multiplicative
	// measurement noise (0 disables noise).
	NoiseSigma float64
	// AF is the Amdahl Factor model: the speedup the analyzer assumes the
	// application achieved at the baseline processor count, used to
	// normalize baseline-relative speedups to one-processor speedups. When
	// calls are inserted by the compiler the hint is accurate; the
	// binary-only path uses a generic Amdahl estimate.
	AF app.SpeedupModel
}

func (c Config) validate() error {
	switch {
	case c.BaselineProcs < 1:
		return fmt.Errorf("selfanalyzer: baseline procs %d < 1", c.BaselineProcs)
	case c.BaselineIterations < 1:
		return fmt.Errorf("selfanalyzer: baseline iterations %d < 1", c.BaselineIterations)
	case c.NoiseSigma < 0:
		return fmt.Errorf("selfanalyzer: negative noise sigma")
	case c.AF == nil:
		return fmt.Errorf("selfanalyzer: nil Amdahl Factor model")
	}
	return nil
}

// ConfigFor builds the standard configuration for an application profile:
// the profile's baseline parameters and its true curve as the (accurate,
// compiler-inserted) Amdahl Factor hint.
func ConfigFor(prof *app.Profile, noiseSigma float64) Config {
	return Config{
		BaselineProcs:      prof.BaselineProcs,
		BaselineIterations: prof.BaselineIterations,
		NoiseSigma:         noiseSigma,
		AF:                 prof.Speedup,
	}
}

// Measurement is one performance observation delivered to the scheduler.
type Measurement struct {
	// Procs is the allocation the measurement was taken at.
	Procs int
	// Speedup is the measured speedup versus one processor.
	Speedup float64
	// Efficiency is Speedup/Procs.
	Efficiency float64
	// IterTime is the (noisy) measured iteration wall time.
	IterTime sim.Time
	// Iteration is the index of the iteration that produced the sample.
	Iteration int
}

// Analyzer accumulates iteration timings for one application instance.
type Analyzer struct {
	cfg Config
	rng *stats.RNG

	baselineProcs int // procs of the accumulating baseline samples
	baselineSum   sim.Time
	baselineN     int
	baselineTime  sim.Time // mean clean-iteration time at baselineProcs
	haveBaseline  bool
}

// New returns an analyzer. rng supplies measurement noise and may be nil
// only when cfg.NoiseSigma is 0.
func New(cfg Config, rng *stats.RNG) (*Analyzer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.NoiseSigma > 0 && rng == nil {
		return nil, fmt.Errorf("selfanalyzer: noise requested but no RNG")
	}
	return &Analyzer{cfg: cfg, rng: rng}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config, rng *stats.RNG) *Analyzer {
	a, err := New(cfg, rng)
	if err != nil {
		panic(err)
	}
	return a
}

// Init reinitializes a to a freshly constructed state in place, recycling the
// struct across application instances. Validation matches New.
func Init(a *Analyzer, cfg Config, rng *stats.RNG) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if cfg.NoiseSigma > 0 && rng == nil {
		return fmt.Errorf("selfanalyzer: noise requested but no RNG")
	}
	*a = Analyzer{cfg: cfg, rng: rng}
	return nil
}

// InBaseline reports whether the analyzer is still collecting the baseline
// measure. While true, the runtime caps the application's effective
// parallelism at BaselineCap.
func (a *Analyzer) InBaseline() bool { return !a.haveBaseline }

// BaselineCap returns the processor cap the runtime applies during the
// baseline phase.
func (a *Analyzer) BaselineCap() int { return a.cfg.BaselineProcs }

// BaselineTime returns the measured baseline iteration time (0 until the
// baseline completes).
func (a *Analyzer) BaselineTime() sim.Time { return a.baselineTime }

func (a *Analyzer) noisy(t sim.Time) sim.Time {
	if a.cfg.NoiseSigma <= 0 {
		return t
	}
	return sim.Time(float64(t) * a.rng.LogNormalFactor(a.cfg.NoiseSigma))
}

// RecordIteration feeds the timing of one completed iteration, taken while
// the application effectively ran on procs processors. It returns a
// Measurement (and true) when the sample yields a valid performance
// observation: after the baseline completes, every clean iteration yields a
// measurement at its allocation. Baseline iterations and dirty samples
// (spanning reallocations or penalties) yield nothing — in particular the
// scheduler never sees a report taken at the artificially small baseline
// allocation, which would mislead its search.
func (a *Analyzer) RecordIteration(s app.IterationSample, procs int) (Measurement, bool) {
	if procs < 1 || !s.Clean {
		return Measurement{}, false
	}
	wall := a.noisy(s.WallTime)
	if wall <= 0 {
		return Measurement{}, false
	}
	if !a.haveBaseline {
		if procs != a.baselineProcs {
			// Allocation moved during the baseline phase (the RM granted a
			// different count): restart accumulation at the new count.
			a.baselineProcs = procs
			a.baselineSum = 0
			a.baselineN = 0
		}
		a.baselineSum += wall
		a.baselineN++
		if a.baselineN < a.cfg.BaselineIterations {
			return Measurement{}, false
		}
		a.baselineTime = a.baselineSum / sim.Time(a.baselineN)
		a.haveBaseline = true
		return Measurement{}, false
	}
	sp := a.cfg.AF.Speedup(a.baselineProcs) * float64(a.baselineTime) / float64(wall)
	return Measurement{
		Procs:      procs,
		Speedup:    sp,
		Efficiency: sp / float64(procs),
		IterTime:   wall,
		Iteration:  s.Index,
	}, true
}
