package selfanalyzer

import (
	"math"
	"testing"

	"pdpasim/internal/app"
	"pdpasim/internal/sim"
	"pdpasim/internal/stats"
)

func clean(idx int, wall sim.Time) app.IterationSample {
	return app.IterationSample{Index: idx, WallTime: wall, Clean: true}
}

// analyzerFor builds a noiseless analyzer for a perfectly parallel app with
// baseline at 4 procs over 2 iterations.
func testAnalyzer(t *testing.T) *Analyzer {
	t.Helper()
	a, err := New(Config{
		BaselineProcs: 4, BaselineIterations: 2,
		AF: app.Amdahl{Parallel: 1},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBaselineThenMeasure(t *testing.T) {
	a := testAnalyzer(t)
	if !a.InBaseline() || a.BaselineCap() != 4 {
		t.Fatal("fresh analyzer should be in baseline with cap 4")
	}
	if _, ok := a.RecordIteration(clean(0, 25*sim.Second), 4); ok {
		t.Fatal("first baseline iteration should not yield a measurement")
	}
	if _, ok := a.RecordIteration(clean(1, 25*sim.Second), 4); ok {
		t.Fatal("baseline completion must not leak a measurement to the scheduler")
	}
	if a.InBaseline() {
		t.Fatal("baseline should be done")
	}
	if a.BaselineTime() != 25*sim.Second {
		t.Fatalf("baseline time = %v", a.BaselineTime())
	}
	// Iteration at 20 procs, perfectly parallel: wall = 25s * 4/20 = 5s.
	m, ok := a.RecordIteration(clean(2, 5*sim.Second), 20)
	if !ok {
		t.Fatal("clean post-baseline iteration should measure")
	}
	if math.Abs(m.Speedup-20) > 1e-9 || math.Abs(m.Efficiency-1) > 1e-9 {
		t.Fatalf("measurement = %+v", m)
	}
}

func TestDirtySamplesIgnored(t *testing.T) {
	a := testAnalyzer(t)
	dirty := app.IterationSample{Index: 0, WallTime: sim.Second, Clean: false}
	if _, ok := a.RecordIteration(dirty, 4); ok {
		t.Fatal("dirty sample measured")
	}
	if !a.InBaseline() {
		t.Fatal("dirty sample advanced baseline")
	}
}

func TestBaselineRestartsOnProcsChange(t *testing.T) {
	a := testAnalyzer(t)
	a.RecordIteration(clean(0, 25*sim.Second), 4)
	// RM shrank the allocation mid-baseline: restart at 2 procs.
	if _, ok := a.RecordIteration(clean(1, 50*sim.Second), 2); ok {
		t.Fatal("restarted baseline should not complete after one sample")
	}
	if _, ok := a.RecordIteration(clean(2, 50*sim.Second), 2); ok {
		t.Fatal("baseline completion must not measure")
	}
	if a.InBaseline() {
		t.Fatal("baseline should be complete at the new procs")
	}
	m, ok := a.RecordIteration(clean(3, 50*sim.Second), 2)
	if !ok || m.Procs != 2 || math.Abs(m.Speedup-2) > 1e-9 {
		t.Fatalf("measurement = %+v ok=%v", m, ok)
	}
}

func TestAmdahlFactorNormalization(t *testing.T) {
	// AF hint says speedup at 4 procs is 3 (75% efficiency).
	af := app.MustTable(
		app.Point{Procs: 1, Speedup: 1},
		app.Point{Procs: 4, Speedup: 3},
		app.Point{Procs: 8, Speedup: 5},
	)
	a := MustNew(Config{BaselineProcs: 4, BaselineIterations: 1, AF: af}, nil)
	if _, ok := a.RecordIteration(clean(0, 30*sim.Second), 4); ok {
		t.Fatal("baseline completion must not measure")
	}
	// An iteration twice as fast as baseline: speedup = 3 * 2 = 6.
	m, ok := a.RecordIteration(clean(1, 15*sim.Second), 8)
	if !ok || math.Abs(m.Speedup-6) > 1e-9 || math.Abs(m.Efficiency-0.75) > 1e-9 {
		t.Fatalf("measurement = %+v", m)
	}
}

func TestNoiseIsBoundedAndDeterministic(t *testing.T) {
	mk := func() *Analyzer {
		return MustNew(Config{
			BaselineProcs: 1, BaselineIterations: 1,
			NoiseSigma: 0.02, AF: app.Amdahl{Parallel: 1},
		}, stats.NewRNG(99))
	}
	a, b := mk(), mk()
	a.RecordIteration(clean(0, 10*sim.Second), 1)
	b.RecordIteration(clean(0, 10*sim.Second), 1)
	for i := 1; i < 50; i++ {
		ma, oka := a.RecordIteration(clean(i, sim.Second), 10)
		mb, okb := b.RecordIteration(clean(i, sim.Second), 10)
		if oka != okb || ma.Speedup != mb.Speedup {
			t.Fatal("noise not deterministic per seed")
		}
		// 2% log-noise on both baseline and sample: speedup within ~±15%.
		if ma.Speedup < 8.5 || ma.Speedup > 11.5 {
			t.Fatalf("noisy speedup %v implausible", ma.Speedup)
		}
	}
}

func TestInvalidInputsRejected(t *testing.T) {
	a := testAnalyzer(t)
	if _, ok := a.RecordIteration(clean(0, sim.Second), 0); ok {
		t.Fatal("procs=0 measured")
	}
	if _, ok := a.RecordIteration(clean(0, 0), 4); ok {
		t.Fatal("zero wall time measured")
	}
}

func TestConfigValidation(t *testing.T) {
	af := app.Amdahl{Parallel: 1}
	cases := []Config{
		{BaselineProcs: 0, BaselineIterations: 1, AF: af},
		{BaselineProcs: 1, BaselineIterations: 0, AF: af},
		{BaselineProcs: 1, BaselineIterations: 1, NoiseSigma: -1, AF: af},
		{BaselineProcs: 1, BaselineIterations: 1},
	}
	for i, c := range cases {
		if _, err := New(c, nil); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := New(Config{BaselineProcs: 1, BaselineIterations: 1, NoiseSigma: 0.1, AF: af}, nil); err == nil {
		t.Error("noise without RNG accepted")
	}
}

func TestConfigFor(t *testing.T) {
	prof := app.ProfileFor(app.BT)
	cfg := ConfigFor(prof, 0.01)
	if cfg.BaselineProcs != prof.BaselineProcs || cfg.BaselineIterations != prof.BaselineIterations {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.AF.Speedup(8) != prof.Speedup.Speedup(8) {
		t.Fatal("AF hint should be the profile curve")
	}
	a := MustNew(cfg, stats.NewRNG(1))
	if a.BaselineCap() != prof.BaselineProcs {
		t.Fatal("cap mismatch")
	}
}

// TestEndToEndAccuracy runs the analyzer over a simulated bt execution and
// checks the measured efficiencies track the true curve within noise.
func TestEndToEndAccuracy(t *testing.T) {
	prof := app.ProfileFor(app.BT)
	a := MustNew(ConfigFor(prof, 0.01), stats.NewRNG(5))
	t1 := prof.SerialIterationTime
	iter := 0
	feed := func(procs int) (Measurement, bool) {
		wall := sim.Time(float64(t1) / prof.Speedup.Speedup(procs))
		m, ok := a.RecordIteration(clean(iter, wall), procs)
		iter++
		return m, ok
	}
	feed(4)
	feed(4) // baseline done
	for _, p := range []int{8, 16, 24, 30} {
		m, ok := feed(p)
		if !ok {
			t.Fatalf("no measurement at %d", p)
		}
		trueEff := app.Efficiency(prof.Speedup, p)
		if math.Abs(m.Efficiency-trueEff) > 0.08*trueEff {
			t.Fatalf("eff at %d = %v, true %v", p, m.Efficiency, trueEff)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustNew(Config{}, nil)
}
