package sim

import (
	"context"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Fatalf("Seconds = %v", got)
	}
	if (Second).String() != "1.000s" {
		t.Fatalf("String = %q", Second.String())
	}
	if Forever.String() != "forever" {
		t.Fatalf("Forever.String = %q", Forever.String())
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(3*Second, "c", func() { order = append(order, 3) })
	e.At(1*Second, "a", func() { order = append(order, 1) })
	e.At(2*Second, "b", func() { order = append(order, 2) })
	e.RunUntilIdle()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 3*Second {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(Second, "first", func() { order = append(order, "first") })
	e.At(Second, "second", func() { order = append(order, "second") })
	e.RunUntilIdle()
	if order[0] != "first" || order[1] != "second" {
		t.Fatalf("tie broken wrongly: %v", order)
	}
}

func TestEngineDeadline(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(1*Second, "in", func() { ran++ })
	e.At(2*Second, "at", func() { ran++ })
	e.At(3*Second, "out", func() { ran++ })
	e.Run(2 * Second)
	if ran != 2 {
		t.Fatalf("ran = %d, want 2 (deadline inclusive)", ran)
	}
	if e.Now() != 2*Second {
		t.Fatalf("Now = %v, want clock advanced to deadline", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d", e.Pending())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.At(Second, "x", func() { ran = true })
	if !ev.Scheduled() {
		t.Fatal("event should be scheduled")
	}
	e.Cancel(ev)
	if ev.Scheduled() {
		t.Fatal("event should be cancelled")
	}
	e.Cancel(ev) // double-cancel is a no-op
	e.Cancel(nil)
	e.RunUntilIdle()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var order []int
	evs := make([]*Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.At(Time(i)*Second, "n", func() { order = append(order, i) })
	}
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.RunUntilIdle()
	if len(order) != 8 {
		t.Fatalf("order = %v", order)
	}
	for _, v := range order {
		if v == 4 || v == 7 {
			t.Fatalf("cancelled event %d ran", v)
		}
	}
}

func TestEngineScheduleDuringRun(t *testing.T) {
	e := NewEngine()
	var hit []Time
	e.At(Second, "outer", func() {
		e.After(Second, "inner", func() { hit = append(hit, e.Now()) })
	})
	e.RunUntilIdle()
	if len(hit) != 1 || hit[0] != 2*Second {
		t.Fatalf("hit = %v", hit)
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(5*Second, "later", func() {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(Second, "past", func() {})
}

func TestEngineNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	NewEngine().At(0, "nil", nil)
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(1*Second, "a", func() { ran++; e.Stop() })
	e.At(2*Second, "b", func() { ran++ })
	e.RunUntilIdle()
	if ran != 1 {
		t.Fatalf("ran = %d after Stop", ran)
	}
	// Run can resume afterwards.
	e.RunUntilIdle()
	if ran != 2 {
		t.Fatalf("ran = %d after resume", ran)
	}
}

func TestEngineAfterClampsNegative(t *testing.T) {
	e := NewEngine()
	ran := false
	e.After(-5*Second, "neg", func() { ran = true })
	e.RunUntilIdle()
	if !ran || e.Now() != 0 {
		t.Fatalf("negative After mishandled: ran=%v now=%v", ran, e.Now())
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue should be false")
	}
	e.At(Second, "x", func() {})
	if !e.Step() {
		t.Fatal("Step should run the event")
	}
	if e.Executed != 1 {
		t.Fatalf("Executed = %d", e.Executed)
	}
}

// Property: for any set of scheduled times, execution order is sorted.
func TestEngineOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEngine()
		var seen []Time
		for _, off := range offsets {
			tt := Time(off) * Millisecond
			e.At(tt, "p", func() { seen = append(seen, e.Now()) })
		}
		e.RunUntilIdle()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineInterruptStops(t *testing.T) {
	e := NewEngine()
	var ran int
	var tick func()
	tick = func() {
		ran++
		e.After(Millisecond, "tick", tick)
	}
	e.After(Millisecond, "tick", tick)
	stop := errSentinel("stop")
	e.SetInterrupt(func() error {
		if ran >= 1000 {
			return stop
		}
		return nil
	})
	e.RunUntilIdle()
	if e.InterruptErr() != stop {
		t.Fatalf("InterruptErr = %v, want %v", e.InterruptErr(), stop)
	}
	// The check runs every interruptStride events, so at most one stride of
	// extra events executes after the condition trips.
	if ran < 1000 || ran > 1000+interruptStride {
		t.Fatalf("ran %d events; interrupt was not prompt", ran)
	}
}

func TestEngineInterruptImmediate(t *testing.T) {
	// An interrupt that is already tripped aborts before any event runs.
	e := NewEngine()
	e.After(0, "x", func() { t.Fatal("event ran despite tripped interrupt") })
	e.SetInterrupt(func() error { return errSentinel("dead") })
	e.RunUntilIdle()
	if e.InterruptErr() == nil || e.Executed != 0 {
		t.Fatalf("InterruptErr = %v, Executed = %d", e.InterruptErr(), e.Executed)
	}
}

func TestEngineInterruptClearedBetweenRuns(t *testing.T) {
	e := NewEngine()
	e.SetInterrupt(func() error { return errSentinel("dead") })
	e.After(0, "x", func() {})
	e.RunUntilIdle()
	if e.InterruptErr() == nil {
		t.Fatal("first run should be interrupted")
	}
	e.SetInterrupt(nil)
	ran := false
	e.After(0, "y", func() { ran = true })
	e.RunUntilIdle()
	if e.InterruptErr() != nil || !ran {
		t.Fatalf("second run: err=%v ran=%v", e.InterruptErr(), ran)
	}
}

type errSentinel string

func (e errSentinel) Error() string { return string(e) }

// benchEngine builds a chain of n self-rescheduling events, the hot shape of
// a simulation run.
func benchEngine(b *testing.B, interrupt func() error) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		left := 10000
		var tick func()
		tick = func() {
			if left--; left > 0 {
				e.After(Millisecond, "tick", tick)
			}
		}
		e.After(Millisecond, "tick", tick)
		e.SetInterrupt(interrupt)
		e.RunUntilIdle()
		if e.InterruptErr() != nil {
			b.Fatal(e.InterruptErr())
		}
	}
}

// BenchmarkEngineInterrupt guards the satellite requirement that checking
// ctx.Err() between events has negligible overhead: compare the /none and
// /ctx variants — the delta is the full cost of cancellation support.
func BenchmarkEngineInterrupt(b *testing.B) {
	b.Run("none", func(b *testing.B) { benchEngine(b, nil) })
	b.Run("ctx", func(b *testing.B) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		benchEngine(b, ctx.Err)
	})
}
