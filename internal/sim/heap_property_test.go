package sim

import (
	"math/rand"
	"testing"
)

// TestEngineHeapOrderUnderChurn is the heap-ordering property under
// randomized fault timing: payload events are scheduled at random times and
// then disturbed mid-run by fault events that cancel or reschedule random
// victims. Whatever the interleaving, the engine must execute exactly the
// surviving events, each once, at its final scheduled time, in (time, seq)
// order — the documented total order of the event heap.
func TestEngineHeapOrderUnderChurn(t *testing.T) {
	type modelEvent struct {
		ev        *Event
		when      Time
		cancelled bool
		runs      int
	}
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()

		const payloads = 60
		model := make([]*modelEvent, payloads)
		type executed struct {
			at  Time
			seq uint64
		}
		var order []executed
		for i := 0; i < payloads; i++ {
			me := &modelEvent{when: Time(rng.Intn(50)) * Millisecond}
			me.ev = e.At(me.when, "payload", func() {
				me.runs++
				order = append(order, executed{at: e.Now(), seq: me.ev.seq})
				if e.Now() != me.when {
					t.Fatalf("seed %d: event ran at %v, model says %v", seed, e.Now(), me.when)
				}
			})
			model[i] = me
		}
		// Fault events strike at random times during the run and disturb
		// random victims. The model is updated only when the engine reports
		// the disturbance took effect, so executed-or-cancelled victims stay
		// consistent.
		for f := 0; f < 40; f++ {
			at := Time(rng.Intn(50)) * Millisecond
			victim := model[rng.Intn(payloads)]
			if rng.Intn(2) == 0 {
				e.At(at, "fault_cancel", func() {
					if victim.ev.Scheduled() {
						e.Cancel(victim.ev)
						victim.cancelled = true
					}
				})
			} else {
				e.At(at, "fault_reschedule", func() {
					to := e.Now() + Time(rng.Intn(20))*Millisecond
					if e.Reschedule(victim.ev, to) {
						victim.when = to
					}
				})
			}
		}
		e.RunUntilIdle()

		for i, me := range model {
			want := 1
			if me.cancelled {
				want = 0
			}
			if me.runs != want {
				t.Fatalf("seed %d: event %d ran %d times (cancelled=%v), want %d",
					seed, i, me.runs, me.cancelled, want)
			}
		}
		// Execution order must be non-decreasing in time, and strictly
		// seq-ordered within each instant.
		for i := 1; i < len(order); i++ {
			prev, cur := order[i-1], order[i]
			if cur.at < prev.at {
				t.Fatalf("seed %d: executed out of time order: %v after %v", seed, cur.at, prev.at)
			}
			if cur.at == prev.at && cur.seq <= prev.seq {
				t.Fatalf("seed %d: tie at %v broken out of scheduling order (seq %d after %d)",
					seed, cur.at, cur.seq, prev.seq)
			}
		}
		if e.Pending() != 0 {
			t.Fatalf("seed %d: %d events still pending after RunUntilIdle", seed, e.Pending())
		}
	}
}
