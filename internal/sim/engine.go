package sim

import (
	"fmt"
)

// Handler is the body of a scheduled event. It runs at the event's time with
// the engine clock already advanced.
type Handler func()

// Event is a pending occurrence in the simulation. Events are ordered by
// time, with ties broken by scheduling order, so the execution order of
// simultaneous events is deterministic.
//
// The zero Event is a valid detached (not scheduled) event: owners may embed
// one by value and arm it with ScheduleInto without a separate allocation.
type Event struct {
	when Time
	seq  uint64
	// pos is the event's 1-based position in the engine's heap; 0 when the
	// event is not queued. One-based so the zero value means detached.
	pos     int
	name    string
	handler Handler
}

// When returns the time the event is scheduled for.
func (e *Event) When() Time { return e.when }

// Name returns the label given at scheduling time (for debugging).
func (e *Event) Name() string { return e.name }

// Scheduled reports whether the event is still pending.
func (e *Event) Scheduled() bool { return e != nil && e.pos > 0 }

// before is the heap order: earliest time first, scheduling order breaking
// ties. (when, seq) is unique per scheduled event, so the pop order is a
// total order — independent of the heap's internal arrangement.
func (e *Event) before(o *Event) bool {
	if e.when != o.when {
		return e.when < o.when
	}
	return e.seq < o.seq
}

// interruptStride is how many events run between interrupt checks. Checking
// a context involves a mutex acquisition; amortizing it over a stride keeps
// the per-event cost well under a nanosecond (see BenchmarkEngineInterrupt)
// while still aborting a runaway simulation within microseconds of real time.
const interruptStride = 64

// Engine is the discrete-event simulation core: a clock and a pending-event
// queue. The zero value is not usable; call NewEngine.
//
// The queue is a hand-rolled binary heap rather than container/heap: the
// sift loops run on every Reschedule/pop of the simulation's inner loop, and
// inlining the (when, seq) comparison avoids the interface dispatch the
// generic heap pays per element move.
type Engine struct {
	now     Time
	queue   []*Event
	seq     uint64
	stopped bool
	// Executed counts events run so far (for diagnostics and tests).
	Executed uint64

	interrupt    func() error
	untilCheck   int
	interruptErr error
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Reset returns the engine to its freshly constructed state while keeping the
// heap's backing array, so a reused engine schedules its first events without
// regrowing the queue. Any still-pending events are detached; the clock,
// sequence counter, and Executed counter restart at zero, making the event
// order of a subsequent run identical to one on a brand-new engine.
func (e *Engine) Reset() {
	for i, ev := range e.queue {
		if ev != nil {
			ev.pos = 0
		}
		e.queue[i] = nil
	}
	e.queue = e.queue[:0]
	e.now = 0
	e.seq = 0
	e.stopped = false
	e.Executed = 0
	e.interrupt = nil
	e.untilCheck = 0
	e.interruptErr = nil
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// siftUp moves the event at heap position i (0-based) toward the root until
// the heap order holds.
func (e *Engine) siftUp(i int) {
	q := e.queue
	ev := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !ev.before(q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].pos = i + 1
		i = parent
	}
	q[i] = ev
	ev.pos = i + 1
}

// siftDown moves the event at heap position i (0-based) toward the leaves
// until the heap order holds. Reports whether the event moved.
func (e *Engine) siftDown(i int) bool {
	q := e.queue
	n := len(q)
	ev := q[i]
	start := i
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && q[r].before(q[child]) {
			child = r
		}
		if !q[child].before(ev) {
			break
		}
		q[i] = q[child]
		q[i].pos = i + 1
		i = child
	}
	q[i] = ev
	ev.pos = i + 1
	return i != start
}

// push adds a detached event to the heap.
func (e *Engine) push(ev *Event) {
	e.queue = append(e.queue, ev)
	ev.pos = len(e.queue)
	e.siftUp(len(e.queue) - 1)
}

// popMin removes and returns the earliest event.
func (e *Engine) popMin() *Event {
	q := e.queue
	min := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[0].pos = 1
	q[n] = nil
	e.queue = q[:n]
	if n > 0 {
		e.siftDown(0)
	}
	min.pos = 0
	return min
}

// remove detaches the event at heap position i (0-based).
func (e *Engine) remove(i int) {
	q := e.queue
	n := len(q) - 1
	removed := q[i]
	if i != n {
		q[i] = q[n]
		q[i].pos = i + 1
	}
	q[n] = nil
	e.queue = q[:n]
	if i < n {
		if !e.siftDown(i) {
			e.siftUp(i)
		}
	}
	removed.pos = 0
}

// At schedules handler to run at time t. Scheduling in the past panics: it
// would silently reorder causality. Returns the event so the caller may
// cancel it.
func (e *Engine) At(t Time, name string, handler Handler) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", name, t, e.now))
	}
	if handler == nil {
		panic("sim: nil handler for event " + name)
	}
	e.seq++
	ev := &Event{when: t, seq: e.seq, name: name, handler: handler}
	e.push(ev)
	return ev
}

// After schedules handler to run d after the current time.
func (e *Engine) After(d Time, name string, handler Handler) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, name, handler)
}

// Reschedule moves a still-pending event to time t, reusing its struct, and
// reports whether it did. The event receives a fresh sequence number, so the
// ordering among simultaneous events is exactly as if it had been cancelled
// and scheduled anew. Returns false when ev is nil, already run, or
// cancelled — the caller then schedules a fresh event with At. This is the
// allocation-free path for the owner-reschedules-own-event pattern that
// dominates the simulation (iteration-boundary events move on every
// allocation change).
func (e *Engine) Reschedule(ev *Event, t Time) bool {
	if ev == nil || ev.pos == 0 {
		return false
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: rescheduling %q at %v before now %v", ev.name, t, e.now))
	}
	e.seq++
	ev.when = t
	ev.seq = e.seq
	i := ev.pos - 1
	if !e.siftDown(i) {
		e.siftUp(i)
	}
	return true
}

// ScheduleInto schedules handler at t, reusing ev's struct when ev is a
// previously returned (or zero-value embedded) event that is not currently
// pending. The caller must hold the only reference to ev — recycling an
// event another party still inspects would alias two logical events onto one
// struct. When ev is nil or still pending a fresh event is allocated
// instead. Either way the scheduled event is returned; the intended pattern
// is
//
//	r.ev = engine.ScheduleInto(r.ev, t, name, handler)
//
// for owners that re-arm the same conceptual event many times (iteration
// boundaries, scheduler quanta).
func (e *Engine) ScheduleInto(ev *Event, t Time, name string, handler Handler) *Event {
	if ev == nil || ev.pos > 0 {
		return e.At(t, name, handler)
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", name, t, e.now))
	}
	if handler == nil {
		panic("sim: nil handler for event " + name)
	}
	e.seq++
	ev.when = t
	ev.seq = e.seq
	ev.name = name
	ev.handler = handler
	e.push(ev)
	return ev
}

// Cancel removes a pending event. Cancelling a nil, already-run, or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.pos == 0 {
		return
	}
	e.remove(ev.pos - 1)
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// SetInterrupt installs a check that Run consults between events, every
// interruptStride events (and once on entry). When it returns a non-nil
// error, Run stops immediately and InterruptErr reports the error. The
// canonical use is cancellation: pass ctx.Err to abort a simulation when the
// caller's context is done. A nil check disables interruption.
func (e *Engine) SetInterrupt(check func() error) {
	e.interrupt = check
	e.untilCheck = 0
}

// InterruptErr returns the error that stopped the last Run, or nil if the
// run ended normally (queue drained, deadline passed, or Stop).
func (e *Engine) InterruptErr() error { return e.interruptErr }

// Run executes events in order until the queue empties, the clock passes
// deadline, or Stop is called. It returns the final clock value. Events
// scheduled exactly at the deadline still run.
func (e *Engine) Run(deadline Time) Time {
	e.stopped = false
	e.interruptErr = nil
	e.untilCheck = 0
	for len(e.queue) > 0 && !e.stopped {
		if e.interrupt != nil {
			if e.untilCheck--; e.untilCheck < 0 {
				e.untilCheck = interruptStride - 1
				if err := e.interrupt(); err != nil {
					e.interruptErr = err
					return e.now
				}
			}
		}
		next := e.queue[0]
		if next.when > deadline {
			break
		}
		e.popMin()
		e.now = next.when
		e.Executed++
		next.handler()
	}
	if e.now < deadline && deadline != Forever {
		e.now = deadline
	}
	return e.now
}

// RunUntilIdle executes events until none remain or Stop is called.
func (e *Engine) RunUntilIdle() Time { return e.Run(Forever) }

// Step executes exactly one event if any is pending and reports whether one
// ran.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	next := e.popMin()
	e.now = next.when
	e.Executed++
	next.handler()
	return true
}
