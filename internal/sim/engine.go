package sim

import (
	"container/heap"
	"fmt"
)

// Handler is the body of a scheduled event. It runs at the event's time with
// the engine clock already advanced.
type Handler func()

// Event is a pending occurrence in the simulation. Events are ordered by
// time, with ties broken by scheduling order, so the execution order of
// simultaneous events is deterministic.
type Event struct {
	when    Time
	seq     uint64
	index   int // heap index; -1 once removed
	name    string
	handler Handler
}

// When returns the time the event is scheduled for.
func (e *Event) When() Time { return e.when }

// Name returns the label given at scheduling time (for debugging).
func (e *Event) Name() string { return e.name }

// Scheduled reports whether the event is still pending.
func (e *Event) Scheduled() bool { return e != nil && e.index >= 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// interruptStride is how many events run between interrupt checks. Checking
// a context involves a mutex acquisition; amortizing it over a stride keeps
// the per-event cost well under a nanosecond (see BenchmarkEngineInterrupt)
// while still aborting a runaway simulation within microseconds of real time.
const interruptStride = 64

// Engine is the discrete-event simulation core: a clock and a pending-event
// queue. The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stopped bool
	// Executed counts events run so far (for diagnostics and tests).
	Executed uint64

	interrupt    func() error
	untilCheck   int
	interruptErr error
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// At schedules handler to run at time t. Scheduling in the past panics: it
// would silently reorder causality. Returns the event so the caller may
// cancel it.
func (e *Engine) At(t Time, name string, handler Handler) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", name, t, e.now))
	}
	if handler == nil {
		panic("sim: nil handler for event " + name)
	}
	e.seq++
	ev := &Event{when: t, seq: e.seq, name: name, handler: handler}
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules handler to run d after the current time.
func (e *Engine) After(d Time, name string, handler Handler) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, name, handler)
}

// Reschedule moves a still-pending event to time t, reusing its struct, and
// reports whether it did. The event receives a fresh sequence number, so the
// ordering among simultaneous events is exactly as if it had been cancelled
// and scheduled anew. Returns false when ev is nil, already run, or
// cancelled — the caller then schedules a fresh event with At. This is the
// allocation-free path for the owner-reschedules-own-event pattern that
// dominates the simulation (iteration-boundary events move on every
// allocation change).
func (e *Engine) Reschedule(ev *Event, t Time) bool {
	if ev == nil || ev.index < 0 {
		return false
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: rescheduling %q at %v before now %v", ev.name, t, e.now))
	}
	e.seq++
	ev.when = t
	ev.seq = e.seq
	heap.Fix(&e.queue, ev.index)
	return true
}

// ScheduleInto schedules handler at t, reusing ev's struct when ev is a
// previously returned event that has already run or been cancelled. The
// caller must hold the only reference to ev — recycling an event another
// party still inspects would alias two logical events onto one struct. When
// ev is nil or still pending a fresh event is allocated instead. Either way
// the scheduled event is returned; the intended pattern is
//
//	r.ev = engine.ScheduleInto(r.ev, t, name, handler)
//
// for owners that re-arm the same conceptual event many times (iteration
// boundaries, scheduler quanta).
func (e *Engine) ScheduleInto(ev *Event, t Time, name string, handler Handler) *Event {
	if ev == nil || ev.index >= 0 {
		return e.At(t, name, handler)
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", name, t, e.now))
	}
	if handler == nil {
		panic("sim: nil handler for event " + name)
	}
	e.seq++
	ev.when = t
	ev.seq = e.seq
	ev.name = name
	ev.handler = handler
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes a pending event. Cancelling a nil, already-run, or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// SetInterrupt installs a check that Run consults between events, every
// interruptStride events (and once on entry). When it returns a non-nil
// error, Run stops immediately and InterruptErr reports the error. The
// canonical use is cancellation: pass ctx.Err to abort a simulation when the
// caller's context is done. A nil check disables interruption.
func (e *Engine) SetInterrupt(check func() error) {
	e.interrupt = check
	e.untilCheck = 0
}

// InterruptErr returns the error that stopped the last Run, or nil if the
// run ended normally (queue drained, deadline passed, or Stop).
func (e *Engine) InterruptErr() error { return e.interruptErr }

// Run executes events in order until the queue empties, the clock passes
// deadline, or Stop is called. It returns the final clock value. Events
// scheduled exactly at the deadline still run.
func (e *Engine) Run(deadline Time) Time {
	e.stopped = false
	e.interruptErr = nil
	e.untilCheck = 0
	for len(e.queue) > 0 && !e.stopped {
		if e.interrupt != nil {
			if e.untilCheck--; e.untilCheck < 0 {
				e.untilCheck = interruptStride - 1
				if err := e.interrupt(); err != nil {
					e.interruptErr = err
					return e.now
				}
			}
		}
		next := e.queue[0]
		if next.when > deadline {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.when
		e.Executed++
		next.handler()
	}
	if e.now < deadline && deadline != Forever {
		e.now = deadline
	}
	return e.now
}

// RunUntilIdle executes events until none remain or Stop is called.
func (e *Engine) RunUntilIdle() Time { return e.Run(Forever) }

// Step executes exactly one event if any is pending and reports whether one
// ran.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	next := heap.Pop(&e.queue).(*Event)
	e.now = next.when
	e.Executed++
	next.handler()
	return true
}
