// Package sim implements the deterministic discrete-event simulation engine
// underlying the whole system.
//
// The engine is single threaded: events are executed strictly in (time,
// sequence-number) order, which makes every run reproducible. Scheduling
// components (the resource manager, queuing system, and application models)
// are ordinary callbacks; no goroutines are involved, so processor-allocation
// semantics are explicit rather than hidden behind the Go runtime.
package sim

import (
	"fmt"
	"time"
)

// Time is a simulation timestamp in microseconds. Using a fixed-point
// integer representation keeps event ordering exact (no floating-point
// drift) across hundreds of thousands of events.
type Time int64

// Common durations.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Forever is a sentinel meaning "no deadline".
const Forever Time = 1<<63 - 1

// FromSeconds converts seconds to a Time, rounding to the nearest
// microsecond.
func FromSeconds(s float64) Time {
	return Time(s*float64(Second) + 0.5)
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts t, interpreted as a span, to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) * time.Microsecond }

// String formats t as seconds with millisecond precision.
func (t Time) String() string {
	if t == Forever {
		return "forever"
	}
	return fmt.Sprintf("%.3fs", t.Seconds())
}
