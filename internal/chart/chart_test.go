package chart

import (
	"bytes"
	"encoding/xml"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sampleChart() *Chart {
	return &Chart{
		Title:  "Workload 1 <response>",
		XLabel: "load (%)",
		YLabel: "seconds",
		Series: []Series{
			{Name: "PDPA", X: []float64{60, 80, 100}, Y: []float64{11, 23, 33}},
			{Name: "Equip", X: []float64{60, 80, 100}, Y: []float64{9, 15, 20}},
		},
	}
}

func TestWriteSVGWellFormedXML(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChart().WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	out := buf.String()
	for _, want := range []string{"<svg", "polyline", "PDPA", "Equip", "load (%)", "&lt;response&gt;"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Fatal("expected one polyline per series")
	}
}

func TestValidateRejectsBadSeries(t *testing.T) {
	cases := []*Chart{
		{Title: "empty"},
		{Title: "mismatch", Series: []Series{{Name: "a", X: []float64{1}, Y: []float64{1, 2}}}},
		{Title: "empty series", Series: []Series{{Name: "a"}}},
		{Title: "nan", Series: []Series{{Name: "a", X: []float64{math.NaN()}, Y: []float64{1}}}},
		{Title: "inf", Series: []Series{{Name: "a", X: []float64{1}, Y: []float64{math.Inf(1)}}}},
	}
	for _, c := range cases {
		if err := c.WriteSVG(&bytes.Buffer{}); err == nil {
			t.Errorf("%s: accepted", c.Title)
		}
	}
}

func TestDegenerateRangesRender(t *testing.T) {
	c := &Chart{
		Title: "flat",
		Series: []Series{
			{Name: "const", X: []float64{5, 5, 5}, Y: []float64{3, 3, 3}},
		},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") || strings.Contains(buf.String(), "Inf") {
		t.Fatal("degenerate range produced non-finite coordinates")
	}
}

func TestCustomSizeAndRange(t *testing.T) {
	c := sampleChart()
	c.Width, c.Height = 800, 500
	c.YMin, c.YMax = 0, 100
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `width="800" height="500"`) {
		t.Fatal("custom size ignored")
	}
}

func TestXTicksBounded(t *testing.T) {
	xs := make([]float64, 40)
	ys := make([]float64, 40)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i * i)
	}
	c := &Chart{Title: "many", Series: []Series{{Name: "s", X: xs, Y: ys}}}
	if got := c.xTicks(8); len(got) > 9 {
		t.Fatalf("ticks = %d", len(got))
	}
}

// Property: any finite data renders parseable XML with no NaN coordinates.
func TestRenderProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 24 {
			raw = raw[:24]
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(i)
			ys[i] = float64(v)
		}
		c := &Chart{Title: "p", Series: []Series{{Name: "s", X: xs, Y: ys}}}
		var buf bytes.Buffer
		if err := c.WriteSVG(&buf); err != nil {
			return false
		}
		s := buf.String()
		return !strings.Contains(s, "NaN") && strings.HasSuffix(strings.TrimSpace(s), "</svg>")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
