// Package chart renders simple line charts as SVG using only the standard
// library. It exists so the repository can regenerate the paper's figures as
// actual plots (response/execution time versus load per policy, speedup
// curves, the multiprogramming-level timeline), not just as text tables.
package chart

import (
	"bufio"
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"math"
)

// Series is one named line.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is a single-panel line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height are the SVG dimensions in pixels (defaults 560x360).
	Width, Height int
	// YMin/YMax fix the Y range; both zero = auto from the data (with a
	// zero baseline).
	YMin, YMax float64
}

// palette holds distinguishable line colors (colorblind-safe-ish).
var palette = []string{
	"#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#000000",
}

const (
	marginLeft   = 64.0
	marginRight  = 16.0
	marginTop    = 32.0
	marginBottom = 48.0
)

// Validate checks the chart is renderable.
func (c *Chart) Validate() error {
	if len(c.Series) == 0 {
		return fmt.Errorf("chart %q: no series", c.Title)
	}
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("chart %q series %q: %d x values vs %d y values",
				c.Title, s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return fmt.Errorf("chart %q series %q: empty", c.Title, s.Name)
		}
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsInf(s.X[i], 0) ||
				math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
				return fmt.Errorf("chart %q series %q: non-finite point %d", c.Title, s.Name, i)
			}
		}
	}
	return nil
}

func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, xmax = math.Inf(1), math.Inf(-1)
	ymin, ymax = math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if c.YMin != 0 || c.YMax != 0 {
		ymin, ymax = c.YMin, c.YMax
	} else {
		ymin = math.Min(0, ymin) // zero baseline by default
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	return
}

// WriteSVG renders the chart.
func (c *Chart) WriteSVG(w io.Writer) error {
	if err := c.Validate(); err != nil {
		return err
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 560
	}
	if height <= 0 {
		height = 360
	}
	plotW := float64(width) - marginLeft - marginRight
	plotH := float64(height) - marginTop - marginBottom
	xmin, xmax, ymin, ymax := c.bounds()
	xpos := func(x float64) float64 { return marginLeft + (x-xmin)/(xmax-xmin)*plotW }
	ypos := func(y float64) float64 { return marginTop + plotH - (y-ymin)/(ymax-ymin)*plotH }

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(bw, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	// Title.
	fmt.Fprintf(bw, `<text x="%g" y="18" font-size="13" font-weight="bold">%s</text>`+"\n",
		marginLeft, esc(c.Title))
	// Axes.
	fmt.Fprintf(bw, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, marginTop+plotH)
	fmt.Fprintf(bw, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)
	// Y ticks and gridlines.
	for i := 0; i <= 4; i++ {
		v := ymin + (ymax-ymin)*float64(i)/4
		y := ypos(v)
		fmt.Fprintf(bw, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n",
			marginLeft, y, marginLeft+plotW, y)
		fmt.Fprintf(bw, `<text x="%g" y="%g" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+4, fmtTick(v))
	}
	// X ticks (at the union of the series' x values, up to 8).
	for _, x := range c.xTicks(8) {
		px := xpos(x)
		fmt.Fprintf(bw, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
			px, marginTop+plotH, px, marginTop+plotH+4)
		fmt.Fprintf(bw, `<text x="%g" y="%g" text-anchor="middle">%s</text>`+"\n",
			px, marginTop+plotH+18, fmtTick(x))
	}
	// Axis labels.
	fmt.Fprintf(bw, `<text x="%g" y="%g" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, float64(height)-8, esc(c.XLabel))
	fmt.Fprintf(bw, `<text x="14" y="%g" text-anchor="middle" transform="rotate(-90 14 %g)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, esc(c.YLabel))
	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		fmt.Fprintf(bw, `<polyline fill="none" stroke="%s" stroke-width="2" points="`, color)
		for i := range s.X {
			if i > 0 {
				bw.WriteByte(' ')
			}
			fmt.Fprintf(bw, "%.1f,%.1f", xpos(s.X[i]), ypos(s.Y[i]))
		}
		fmt.Fprintln(bw, `"/>`)
		for i := range s.X {
			fmt.Fprintf(bw, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
				xpos(s.X[i]), ypos(s.Y[i]), color)
		}
		// Legend entry.
		lx := marginLeft + plotW - 110
		ly := marginTop + 8 + float64(si)*16
		fmt.Fprintf(bw, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly, lx+18, ly, color)
		fmt.Fprintf(bw, `<text x="%g" y="%g">%s</text>`+"\n", lx+24, ly+4, esc(s.Name))
	}
	fmt.Fprintln(bw, `</svg>`)
	return bw.Flush()
}

// xTicks returns up to maxTicks distinct x values across all series.
func (c *Chart) xTicks(maxTicks int) []float64 {
	seen := map[float64]bool{}
	var ticks []float64
	for _, s := range c.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				ticks = append(ticks, x)
			}
		}
	}
	if len(ticks) > maxTicks {
		step := len(ticks) / maxTicks
		var out []float64
		for i := 0; i < len(ticks); i += step + 1 {
			out = append(out, ticks[i])
		}
		return out
	}
	return ticks
}

func fmtTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e6 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.1f", v)
}

func esc(s string) string {
	var b bytes.Buffer
	_ = xml.EscapeText(&b, []byte(s))
	return b.String()
}
