package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestCheckPassesWhenBalanced: a goroutine started and stopped inside the
// test must not trip the detector.
func TestCheckPassesWhenBalanced(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

// blockForever parks a goroutine so the diff has something to find. Named so
// the creation site is recognizable in the report.
func blockForever(release chan struct{}) { <-release }

func TestDiffReportsNewGoroutines(t *testing.T) {
	before := stacks()
	release := make(chan struct{})
	defer close(release)
	go blockForever(release)
	// Give the goroutine a beat to be scheduled and parked.
	deadline := time.Now().Add(2 * time.Second)
	for {
		report := diff(before, stacks())
		if strings.Contains(report, "blockForever") {
			if !strings.Contains(report, "1 new goroutine(s)") {
				t.Fatalf("report missing count:\n%s", report)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("diff never reported the leaked goroutine:\n%s", report)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDiffIgnoresVanishedGoroutines(t *testing.T) {
	release := make(chan struct{})
	go blockForever(release)
	time.Sleep(5 * time.Millisecond)
	before := stacks()
	close(release)
	time.Sleep(5 * time.Millisecond)
	if report := diff(before, stacks()); strings.Contains(report, "blockForever") {
		t.Fatalf("diff reported a goroutine that exited:\n%s", report)
	}
}
