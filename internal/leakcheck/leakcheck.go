// Package leakcheck is a hand-rolled goroutine-leak detector for tests:
// snapshot the goroutine population up front, and at cleanup poll until the
// count subsides to the baseline, failing with a stack-dump diff of the
// surviving goroutines grouped by creation site.
package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// Grace is how long a check waits for goroutines to wind down: channel
// closes and context cancellations propagate asynchronously, so a freshly
// drained pool's workers may still be returning when the check runs.
const Grace = 5 * time.Second

// Baseline is a snapshot of the goroutine population, taken before the work
// under scrutiny starts. It is the non-testing entry point — the scenario
// runner's no_leaks assertion uses it directly.
type Baseline struct {
	count  int
	stacks []string
}

// Snapshot records the current goroutine population.
func Snapshot() Baseline {
	return Baseline{count: runtime.NumGoroutine(), stacks: stacks()}
}

// Wait polls until the goroutine count subsides to the baseline or grace
// expires, then returns nil on success or an error describing the surviving
// goroutine groups (one sample stack each).
func (b Baseline) Wait(grace time.Duration) error {
	deadline := time.Now().Add(grace)
	for {
		if runtime.NumGoroutine() <= b.count {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("goroutine leak: %d before, %d after\n%s",
		b.count, runtime.NumGoroutine(), diff(b.stacks, stacks()))
}

// Check registers a cleanup that fails t if the test leaves more goroutines
// behind than existed when Check was called. Call it first in the test so
// the baseline precedes everything the test creates. Tests using it must
// not run in parallel with tests that leave goroutines around, and must
// shut down everything they start (drain pools, close servers).
func Check(t testing.TB) {
	t.Helper()
	before := Snapshot()
	t.Cleanup(func() {
		if err := before.Wait(Grace); err != nil {
			t.Error(err)
		}
	})
}

// stacks returns one stack dump per live goroutine.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return strings.Split(strings.TrimSpace(string(buf[:n])), "\n\n")
		}
		buf = make([]byte, 2*len(buf))
	}
}

// site extracts a goroutine's grouping key: its creation site when present
// (the "created by" trailer), else its top frame.
func site(g string) string {
	lines := strings.Split(g, "\n")
	for i := len(lines) - 1; i >= 0; i-- {
		if strings.HasPrefix(lines[i], "created by ") {
			return strings.TrimSpace(lines[i])
		}
	}
	if len(lines) > 1 {
		return strings.TrimSpace(lines[1])
	}
	return strings.TrimSpace(g)
}

// diff reports the goroutine groups more populous after than before, with
// one sample stack each.
func diff(before, after []string) string {
	counts := make(map[string]int)
	for _, g := range before {
		counts[site(g)]++
	}
	leaked := make(map[string]int)
	sample := make(map[string]string)
	for _, g := range after {
		k := site(g)
		counts[k]--
		if counts[k] < 0 {
			leaked[k]++
			sample[k] = g
		}
	}
	if len(leaked) == 0 {
		return "(no new goroutine groups; the extra goroutines match pre-existing creation sites)"
	}
	keys := make([]string, 0, len(leaked))
	for k := range leaked {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%d new goroutine(s): %s\nsample stack:\n%s\n\n", leaked[k], k, sample[k])
	}
	return strings.TrimSpace(b.String())
}
