package cluster

import (
	"testing"

	"pdpasim/internal/app"
	"pdpasim/internal/sim"
	"pdpasim/internal/workload"
)

func testWorkload(t *testing.T, mix workload.Mix, load float64, seed int64) *workload.Workload {
	t.Helper()
	w, err := workload.Generate(workload.GenConfig{
		Mix: mix, Load: load, NCPU: 64, Window: 200 * sim.Second, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestClusterValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	w := testWorkload(t, workload.W3(), 0.5, 1)
	if _, err := Run(Config{Nodes: 0, CPUsPerNode: 16, Workload: w}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := Run(Config{Nodes: 4, CPUsPerNode: 16, Workload: w, Placement: "bogus"}); err == nil {
		t.Fatal("bogus placement accepted")
	}
}

func TestClusterRunsAllPlacements(t *testing.T) {
	w := testWorkload(t, workload.W3(), 0.5, 1)
	for _, pl := range []Placement{RoundRobin, LeastLoaded, Coordinated} {
		res, err := Run(Config{Nodes: 4, CPUsPerNode: 16, Workload: w, Placement: pl, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", pl, err)
		}
		if len(res.Jobs) != len(w.Jobs) {
			t.Fatalf("%s: %d results", pl, len(res.Jobs))
		}
		for _, j := range res.Jobs {
			if j.End <= j.Start || j.CPUSeconds <= 0 {
				t.Fatalf("%s: job %d inconsistent: %+v", pl, j.ID, j)
			}
			node, ok := res.NodeOf[j.ID]
			if !ok || node < 0 || node >= 4 {
				t.Fatalf("%s: job %d node %d", pl, j.ID, node)
			}
		}
		total := 0
		for _, n := range res.PerNodeJobs {
			total += n
		}
		if total != len(w.Jobs) {
			t.Fatalf("%s: per-node job counts sum to %d", pl, total)
		}
	}
}

func TestClusterRoundRobinSpreads(t *testing.T) {
	w := testWorkload(t, workload.W3(), 0.5, 2)
	res, err := Run(Config{Nodes: 4, CPUsPerNode: 16, Workload: w, Placement: RoundRobin, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range res.PerNodeJobs {
		if n == 0 {
			t.Fatalf("node %d received no jobs under round robin: %v", i, res.PerNodeJobs)
		}
	}
}

func TestClusterJobsClampedToNode(t *testing.T) {
	// Jobs requesting 30 on 16-CPU nodes must still complete (clamped).
	w := testWorkload(t, workload.W1(), 0.5, 3)
	res, err := Run(Config{Nodes: 4, CPUsPerNode: 16, Workload: w, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.Jobs {
		if j.AvgAlloc > 16 {
			t.Fatalf("job %d averaged %.1f CPUs on a 16-CPU node", j.ID, j.AvgAlloc)
		}
	}
}

func TestClusterCoordinatedBeatsRoundRobinOnImbalance(t *testing.T) {
	// With heavy, long jobs, blind round-robin can pile work on one node.
	w := testWorkload(t, workload.W2(), 0.8, 4)
	rr, err := Run(Config{Nodes: 4, CPUsPerNode: 16, Workload: w, Placement: RoundRobin, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := Run(Config{Nodes: 4, CPUsPerNode: 16, Workload: w, Placement: Coordinated, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Coordinated placement should not be meaningfully worse on makespan.
	if coord.Makespan > rr.Makespan+rr.Makespan/4 {
		t.Fatalf("coordinated makespan %v much worse than round robin %v",
			coord.Makespan, rr.Makespan)
	}
}

func TestClusterVersusSingleMachine(t *testing.T) {
	// A 4x16 cluster cannot beat a single 64-CPU machine for 30-CPU
	// requests (jobs are clamped to 16), but it must stay within a small
	// factor — the partitioning cost the future work discusses.
	w := testWorkload(t, workload.W3(), 0.5, 5)
	res, err := Run(Config{Nodes: 4, CPUsPerNode: 16, Workload: w, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	resp := res.ResponseByClass()
	if resp[app.Apsi] <= 0 || resp[app.BT] <= 0 {
		t.Fatalf("responses: %v", resp)
	}
	if res.Imbalance() > 25 {
		t.Fatalf("imbalance = %.1f", res.Imbalance())
	}
}

func TestClusterDeterministic(t *testing.T) {
	w := testWorkload(t, workload.W4(), 0.5, 6)
	a, err := Run(Config{Nodes: 2, CPUsPerNode: 32, Workload: w, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Nodes: 2, CPUsPerNode: 32, Workload: w, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("makespan differs: %v vs %v", a.Makespan, b.Makespan)
	}
	for i := range a.Jobs {
		if a.Jobs[i].End != b.Jobs[i].End || a.NodeOf[a.Jobs[i].ID] != b.NodeOf[b.Jobs[i].ID] {
			t.Fatalf("job %d differs", i)
		}
	}
}

func TestImbalanceDegenerate(t *testing.T) {
	r := &Result{}
	if r.Imbalance() != 1 {
		t.Fatal("empty imbalance")
	}
	r.PerNodeBusy = []float64{0, 100}
	if r.Imbalance() <= 1 {
		t.Fatal("idle-node imbalance should be large")
	}
}
