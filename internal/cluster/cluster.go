// Package cluster implements the paper's second future-work direction
// (Section 6): running the scheduling environment "on clusters of SMPs,
// where the resources are physically distributed", with cooperation between
// the scheduling policies running on the different machines.
//
// A Cluster is a set of SMP nodes, each with its own machine model and its
// own resource manager (typically PDPA), plus a front-end dispatcher that
// holds the global job queue and routes each job to a node. Jobs do not span
// nodes (the paper's model: each application is given resources on one
// machine); the interesting questions are placement quality and how much a
// partitioned machine loses against a single shared-memory machine of the
// same total size.
package cluster

import (
	"fmt"
	"sort"

	"pdpasim/internal/app"
	"pdpasim/internal/core"
	"pdpasim/internal/machine"
	"pdpasim/internal/metrics"
	"pdpasim/internal/nthlib"
	"pdpasim/internal/qs"
	"pdpasim/internal/rm"
	"pdpasim/internal/sched"
	"pdpasim/internal/selfanalyzer"
	"pdpasim/internal/sim"
	"pdpasim/internal/stats"
	"pdpasim/internal/trace"
	"pdpasim/internal/workload"
)

// Placement selects the node an admissible job goes to.
type Placement string

// Placement strategies.
const (
	// RoundRobin cycles through nodes regardless of load.
	RoundRobin Placement = "round_robin"
	// LeastLoaded picks the node with the most free processors.
	LeastLoaded Placement = "least_loaded"
	// Coordinated asks every node's resource manager whether it would
	// admit a job now (the PDPA admission criterion evaluated per node) and
	// picks the admitting node with the most free processors — the
	// cross-machine cooperation the paper sketches.
	Coordinated Placement = "coordinated"
)

// Config parameterizes a cluster run.
type Config struct {
	// Nodes is the number of SMP nodes.
	Nodes int
	// CPUsPerNode is each node's processor count.
	CPUsPerNode int
	// Placement selects the dispatch strategy (default Coordinated).
	Placement Placement
	// PDPAParams configures each node's PDPA instance (nil = defaults).
	PDPAParams *core.Params
	// Workload is the job stream (its NCPU field is ignored; nodes define
	// the capacity).
	Workload *workload.Workload
	// NoiseSigma is the SelfAnalyzer noise (default 1%; negative disables).
	NoiseSigma float64
	// Seed drives measurement noise.
	Seed int64
	// MaxSimTime bounds the run (default 50000 s).
	MaxSimTime sim.Time
}

func (c *Config) withDefaults() error {
	if c.Nodes < 1 || c.CPUsPerNode < 1 {
		return fmt.Errorf("cluster: need at least one node and one CPU")
	}
	if c.Workload == nil || len(c.Workload.Jobs) == 0 {
		return fmt.Errorf("cluster: empty workload")
	}
	if c.Placement == "" {
		c.Placement = Coordinated
	}
	switch c.Placement {
	case RoundRobin, LeastLoaded, Coordinated:
	default:
		return fmt.Errorf("cluster: unknown placement %q", c.Placement)
	}
	if c.NoiseSigma == 0 {
		c.NoiseSigma = 0.01
	}
	if c.NoiseSigma < 0 {
		c.NoiseSigma = 0
	}
	if c.MaxSimTime <= 0 {
		c.MaxSimTime = 50000 * sim.Second
	}
	return nil
}

// node is one SMP of the cluster.
type node struct {
	index   int
	mach    *machine.Machine
	rec     *trace.Recorder
	mgr     *rm.SpaceManager
	running int
}

func (n *node) free() int { return n.mach.FreeCPUs() }

// Result is the outcome of a cluster run.
type Result struct {
	Jobs []metrics.JobResult
	// NodeOf records which node each job ran on.
	NodeOf map[int]int
	// Makespan is the last completion time.
	Makespan sim.Time
	// PerNodeBusy is each node's total busy CPU-seconds.
	PerNodeBusy []float64
	// PerNodeJobs is how many jobs each node executed.
	PerNodeJobs []int
	// Placement echoes the strategy used.
	Placement Placement
}

// ResponseByClass returns the mean response time per class in seconds.
func (r *Result) ResponseByClass() map[app.Class]float64 {
	sums := map[app.Class]*stats.Summary{}
	for _, j := range r.Jobs {
		if sums[j.Class] == nil {
			sums[j.Class] = &stats.Summary{}
		}
		sums[j.Class].Add(j.Response().Seconds())
	}
	out := map[app.Class]float64{}
	for c, s := range sums {
		out[c] = s.Mean()
	}
	return out
}

// Imbalance returns the ratio between the busiest and least-busy node's
// CPU-seconds (1 = perfectly balanced).
func (r *Result) Imbalance() float64 {
	if len(r.PerNodeBusy) == 0 {
		return 1
	}
	lo, hi := r.PerNodeBusy[0], r.PerNodeBusy[0]
	for _, b := range r.PerNodeBusy {
		if b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	if lo <= 0 {
		return hi + 1 // degenerate: an idle node
	}
	return hi / lo
}

// Run executes the workload on the cluster: a single global FIFO queue, one
// PDPA-driven resource manager per node, and the configured placement
// strategy deciding where each admitted job runs.
func Run(cfg Config) (*Result, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	noise := stats.NewRNG(cfg.Seed).Stream("cluster-noise")
	params := core.DefaultParams()
	if cfg.PDPAParams != nil {
		params = *cfg.PDPAParams
	}

	nodes := make([]*node, cfg.Nodes)
	for i := range nodes {
		rec := trace.NewRecorder(cfg.CPUsPerNode)
		rec.KeepBursts = false
		mach := machine.New(cfg.CPUsPerNode, rec)
		pol, err := core.New(params)
		if err != nil {
			return nil, err
		}
		nodes[i] = &node{
			index: i,
			mach:  mach,
			rec:   rec,
			mgr:   rm.NewSpaceManager(eng, mach, pol, rec),
		}
	}

	res := &Result{
		NodeOf:      map[int]int{},
		PerNodeBusy: make([]float64, cfg.Nodes),
		PerNodeJobs: make([]int, cfg.Nodes),
		Placement:   cfg.Placement,
	}
	type track struct {
		job        workload.Job
		node       *node
		start, end sim.Time
		done       bool
	}
	tracks := map[int]*track{}

	rr := 0
	pick := func(job workload.Job) *node {
		switch cfg.Placement {
		case RoundRobin:
			n := nodes[rr%len(nodes)]
			rr++
			return n
		case LeastLoaded:
			return mostFree(nodes, nil)
		default: // Coordinated
			admitting := make([]*node, 0, len(nodes))
			for _, n := range nodes {
				if n.mgr.CanAdmit() {
					admitting = append(admitting, n)
				}
			}
			if len(admitting) == 0 {
				return nil
			}
			return mostFree(admitting, nil)
		}
	}

	var queue *qs.QueuingSystem
	start := func(job workload.Job) {
		n := pick(job)
		if n == nil {
			// Defensive: admission said yes, placement found nobody — put
			// the job on the globally freest node.
			n = mostFree(nodes, nil)
		}
		id := sched.JobID(job.ID)
		prof := app.ProfileFor(job.Class)
		an := selfanalyzer.MustNew(
			selfanalyzer.ConfigFor(prof, cfg.NoiseSigma),
			noise.Stream(fmt.Sprintf("job/%d", job.ID)))
		request := job.Request
		if request > cfg.CPUsPerNode {
			request = cfg.CPUsPerNode // jobs cannot span nodes
		}
		tr := &track{job: job, node: n, start: eng.Now()}
		tracks[job.ID] = tr
		var rt *nthlib.Runtime
		rt = nthlib.New(eng, prof, request, an, nthlib.Hooks{
			OnPerformance: func(m selfanalyzer.Measurement) { n.mgr.ReportPerformance(id, m) },
			OnDone: func() {
				tr.end = eng.Now()
				tr.done = true
				n.mgr.JobFinished(id)
				n.running--
				queue.JobCompleted()
			},
		})
		rt.SetGranularity(job.Granularity())
		n.running++
		res.NodeOf[job.ID] = n.index
		res.PerNodeJobs[n.index]++
		n.mgr.StartJob(id, rt)
	}

	canAdmit := func() bool {
		if cfg.Placement != Coordinated {
			return true
		}
		for _, n := range nodes {
			if n.mgr.CanAdmit() {
				return true
			}
		}
		return false
	}
	queue = qs.New(eng, 0, canAdmit, start, nil)
	for _, n := range nodes {
		n.mgr.SetAdmissionChanged(queue.TryStart)
	}
	queue.SubmitAll(cfg.Workload)

	eng.Run(cfg.MaxSimTime)
	if !queue.Drained() {
		return nil, fmt.Errorf("cluster: workload did not drain within %v (%d queued, %d running)",
			cfg.MaxSimTime, queue.Queued(), queue.Running())
	}

	for _, job := range cfg.Workload.Jobs {
		tr := tracks[job.ID]
		if tr == nil || !tr.done {
			return nil, fmt.Errorf("cluster: job %d not completed", job.ID)
		}
		cpuSec := metrics.IntegrateAllocation(tr.node.rec.AllocationHistory(job.ID), tr.end)
		jr := metrics.JobResult{
			ID: job.ID, Class: job.Class, Request: job.Request,
			Submit: job.Submit, Start: tr.start, End: tr.end,
			CPUSeconds: cpuSec,
		}
		if exec := jr.Execution().Seconds(); exec > 0 {
			jr.AvgAlloc = cpuSec / exec
		}
		res.Jobs = append(res.Jobs, jr)
		res.PerNodeBusy[tr.node.index] += cpuSec
		if tr.end > res.Makespan {
			res.Makespan = tr.end
		}
	}
	sort.Slice(res.Jobs, func(i, j int) bool { return res.Jobs[i].ID < res.Jobs[j].ID })
	for _, n := range nodes {
		n.rec.Close(res.Makespan)
	}
	return res, nil
}

// mostFree returns the node with the most free processors (ties to the
// lowest index). filter may be nil.
func mostFree(nodes []*node, filter func(*node) bool) *node {
	var best *node
	for _, n := range nodes {
		if filter != nil && !filter(n) {
			continue
		}
		if best == nil || n.free() > best.free() {
			best = n
		}
	}
	return best
}
