package qs

import (
	"testing"

	"pdpasim/internal/app"
	"pdpasim/internal/sim"
	"pdpasim/internal/trace"
	"pdpasim/internal/workload"
)

func job(id int, submit sim.Time) workload.Job {
	return workload.Job{ID: id, Class: app.BT, Submit: submit, Request: 30}
}

func TestFixedMPLEnforced(t *testing.T) {
	eng := sim.NewEngine()
	var started []int
	q := New(eng, 2, nil, func(j workload.Job) { started = append(started, j.ID) }, nil)
	for i := 0; i < 5; i++ {
		q.Enqueue(job(i, 0))
	}
	if len(started) != 2 {
		t.Fatalf("started %d, want 2 (fixed MPL)", len(started))
	}
	q.JobCompleted()
	if len(started) != 3 {
		t.Fatalf("started %d after completion, want 3", len(started))
	}
	if q.Queued() != 2 || q.Running() != 2 {
		t.Fatalf("queued=%d running=%d", q.Queued(), q.Running())
	}
}

func TestAdmissionGate(t *testing.T) {
	eng := sim.NewEngine()
	allow := false
	started := 0
	q := New(eng, 0, func() bool { return allow }, func(workload.Job) { started++ }, nil)
	q.Enqueue(job(0, 0))
	if started != 0 {
		t.Fatal("started despite admission denial")
	}
	allow = true
	q.TryStart()
	if started != 1 {
		t.Fatal("not started after admission opened")
	}
}

func TestUnlimitedMPLWithOpenAdmission(t *testing.T) {
	eng := sim.NewEngine()
	started := 0
	q := New(eng, 0, nil, func(workload.Job) { started++ }, nil)
	for i := 0; i < 40; i++ {
		q.Enqueue(job(i, 0))
	}
	if started != 40 {
		t.Fatalf("started = %d, want all 40", started)
	}
	if q.MaxMPL() != 40 {
		t.Fatalf("maxMPL = %d", q.MaxMPL())
	}
}

func TestSubmitAllSchedulesArrivals(t *testing.T) {
	eng := sim.NewEngine()
	rec := trace.NewRecorder(1)
	var starts []sim.Time
	q := New(eng, 4, nil, func(workload.Job) { starts = append(starts, eng.Now()) }, rec)
	w := &workload.Workload{NCPU: 1, Jobs: []workload.Job{
		job(0, 5*sim.Second), job(1, 10*sim.Second),
	}}
	q.SubmitAll(w)
	eng.RunUntilIdle()
	if len(starts) != 2 || starts[0] != 5*sim.Second || starts[1] != 10*sim.Second {
		t.Fatalf("starts = %v", starts)
	}
	if len(rec.MPLTimeline()) == 0 {
		t.Fatal("MPL not observed")
	}
}

func TestReentrantTryStart(t *testing.T) {
	eng := sim.NewEngine()
	started := 0
	var q *QueuingSystem
	q = New(eng, 0, nil, func(workload.Job) {
		started++
		q.TryStart() // manager callbacks may poke the queue mid-start
	}, nil)
	q.Enqueue(job(0, 0))
	q.Enqueue(job(1, 0))
	if started != 2 {
		t.Fatalf("started = %d", started)
	}
}

func TestDrained(t *testing.T) {
	eng := sim.NewEngine()
	q := New(eng, 1, nil, func(workload.Job) {}, nil)
	if !q.Drained() {
		t.Fatal("empty queue should be drained")
	}
	q.Enqueue(job(0, 0))
	if q.Drained() {
		t.Fatal("running job should block drained")
	}
	q.JobCompleted()
	if !q.Drained() || q.Started() != 1 {
		t.Fatalf("drained=%v started=%d", q.Drained(), q.Started())
	}
}

func TestNilStartPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(sim.NewEngine(), 1, nil, nil, nil)
}

func TestNegativeMPLTreatedUnlimited(t *testing.T) {
	eng := sim.NewEngine()
	started := 0
	q := New(eng, -3, nil, func(workload.Job) { started++ }, nil)
	for i := 0; i < 10; i++ {
		q.Enqueue(job(i, 0))
	}
	if started != 10 {
		t.Fatalf("started = %d", started)
	}
}

func TestSJFOrdering(t *testing.T) {
	eng := sim.NewEngine()
	var started []app.Class
	q := New(eng, 1, nil, func(j workload.Job) { started = append(started, j.Class) }, nil)
	q.SetOrder(SJFByWork)
	// Fill one slot, then queue a long bt before a short swim.
	q.Enqueue(workload.Job{ID: 0, Class: app.Hydro2D})
	q.Enqueue(workload.Job{ID: 1, Class: app.BT})
	q.Enqueue(workload.Job{ID: 2, Class: app.Swim})
	q.JobCompleted() // swim (short) must start before bt (long)
	if len(started) != 2 || started[1] != app.Swim {
		t.Fatalf("started = %v, want swim before bt", started)
	}
	q.JobCompleted()
	if started[2] != app.BT {
		t.Fatalf("started = %v", started)
	}
}

func TestSJFTieBreakFIFO(t *testing.T) {
	a := workload.Job{ID: 1, Class: app.Swim}
	b := workload.Job{ID: 2, Class: app.Swim}
	if !SJFByWork(a, b) || SJFByWork(b, a) {
		t.Fatal("equal-work jobs must keep submission order")
	}
}
