// Package qs implements the NANOS Queuing System (Section 3.2): the
// user-level submission tool that replays a workload trace, holds arriving
// jobs in a FIFO queue, and starts them subject to the multiprogramming
// level — either a fixed level (the traditional regime IRIX, Equipartition,
// and Equal_efficiency run under) or the resource manager's coordinated
// admission decision (PDPA).
//
// The queuing system selects *which* job to start (FIFO); the processor
// scheduling policy decides *when* a new job may start — the split of
// responsibilities Section 4.3 proposes.
package qs

import (
	"sort"

	"pdpasim/internal/app"
	"pdpasim/internal/obs"
	"pdpasim/internal/sim"
	"pdpasim/internal/trace"
	"pdpasim/internal/workload"
)

// QueuingSystem replays job submissions and controls job starts.
type QueuingSystem struct {
	eng *sim.Engine
	// fixedMPL caps concurrently running jobs; 0 means no fixed cap (the
	// resource manager's admission alone decides).
	fixedMPL int
	canAdmit func() bool
	start    func(job workload.Job)
	rec      *trace.Recorder
	tr       *obs.Trace

	// queue is a head-indexed FIFO: Enqueue appends, TryStart advances head,
	// and the backing array is reused once drained — reslicing the front off
	// instead would defeat append's amortization and reallocate steadily.
	queue   []workload.Job
	head    int
	less    func(a, b workload.Job) bool
	running int
	maxMPL  int
	started int

	inTryStart bool

	// subJobs/subCursor/subEvents are the SubmitAll batch state: an arrival-
	// event slab plus the cursor the shared arrival handler advances. Held on
	// the QueuingSystem (not a per-call struct) so Init-style reuse recycles
	// the slab across runs. subFn is the shared handler, bound once.
	subJobs   []workload.Job
	subCursor int
	subEvents []sim.Event
	subFn     func()
}

// New returns a queuing system. canAdmit is the resource manager's admission
// check (may be nil, meaning always allowed); start launches a job.
func New(eng *sim.Engine, fixedMPL int, canAdmit func() bool, start func(job workload.Job), rec *trace.Recorder) *QueuingSystem {
	if start == nil {
		panic("qs: nil start function")
	}
	if fixedMPL < 0 {
		fixedMPL = 0
	}
	return &QueuingSystem{
		eng:      eng,
		fixedMPL: fixedMPL,
		canAdmit: canAdmit,
		start:    start,
		rec:      rec,
	}
}

// Init reinitializes q in place — the variant of New for drivers that reuse
// one QueuingSystem across runs. The queue and the arrival-event slab keep
// their backing arrays; any installed trace and queue order are detached
// (re-apply SetTrace/SetOrder after Init). The previous run must have
// drained (or its engine been Reset) so no slab event is still pending.
func Init(q *QueuingSystem, eng *sim.Engine, fixedMPL int, canAdmit func() bool, start func(job workload.Job), rec *trace.Recorder) {
	if start == nil {
		panic("qs: nil start function")
	}
	if fixedMPL < 0 {
		fixedMPL = 0
	}
	q.eng = eng
	q.fixedMPL = fixedMPL
	q.canAdmit = canAdmit
	q.start = start
	q.rec = rec
	q.tr = nil
	q.queue = q.queue[:0]
	q.head = 0
	q.less = nil
	q.running = 0
	q.maxMPL = 0
	q.started = 0
	q.inTryStart = false
	q.subJobs = nil
	q.subCursor = 0
}

// SubmitAll schedules the arrival of every job in the workload.
//
// Generated workloads list jobs in submission order; then the arrival events
// pop jobs from a shared cursor (arrivals fire in (time, scheduling-order)
// order, which equals list order), so the whole batch costs one event slab
// and one closure rather than one of each per job. An unsorted job list
// falls back to per-job closures.
func (q *QueuingSystem) SubmitAll(w *workload.Workload) {
	jobs := w.Jobs
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Submit < jobs[i-1].Submit {
			for _, job := range jobs {
				job := job
				q.eng.At(job.Submit, "qs/arrival", func() { q.Enqueue(job) })
			}
			return
		}
	}
	q.subJobs = jobs
	q.subCursor = 0
	if cap(q.subEvents) < len(jobs) {
		q.subEvents = make([]sim.Event, len(jobs))
	} else {
		q.subEvents = q.subEvents[:len(jobs)]
		clear(q.subEvents)
	}
	if q.subFn == nil {
		q.subFn = q.subNext
	}
	for i := range jobs {
		q.eng.ScheduleInto(&q.subEvents[i], jobs[i].Submit, "qs/arrival", q.subFn)
	}
}

// subNext is the shared arrival handler of the SubmitAll batch: arrivals fire
// in list order, so one cursor replaces one captured job per event.
func (q *QueuingSystem) subNext() {
	job := q.subJobs[q.subCursor]
	q.subCursor++
	q.Enqueue(job)
}

// SetTrace attaches a decision-trace recorder (nil detaches): job arrivals
// and starts are recorded, plus fixed-MPL admission decisions when a fixed
// multiprogramming level governs (under coordinated admission the policy
// records its own decisions with richer reasons).
func (q *QueuingSystem) SetTrace(tr *obs.Trace) { q.tr = tr }

// SetOrder installs a queue discipline: less reports whether a should start
// before b. Nil (the default) keeps FIFO submission order. The discipline
// re-sorts the queue at every enqueue; the paper's NANOS QS is FIFO, but
// shortest-job-first variants are a classic alternative (see SJFByWork).
func (q *QueuingSystem) SetOrder(less func(a, b workload.Job) bool) {
	q.less = less
}

// SJFByWork orders the queue by each job's estimated serial work — the
// shortest-job-first discipline, using the same per-class knowledge a site's
// historical accounting would provide.
func SJFByWork(a, b workload.Job) bool {
	wa := app.ProfileFor(a.Class).TotalSerialWork()
	wb := app.ProfileFor(b.Class).TotalSerialWork()
	if wa != wb {
		return wa < wb
	}
	return a.ID < b.ID // stable tie-break: submission order
}

// Enqueue adds one job to the queue (at its submission time) and attempts to
// start jobs.
func (q *QueuingSystem) Enqueue(job workload.Job) {
	if q.head > 0 && q.head == len(q.queue) {
		q.queue = q.queue[:0]
		q.head = 0
	}
	q.queue = append(q.queue, job)
	if q.tr != nil {
		q.tr.Record(obs.Event{
			At: q.eng.Now(), Kind: obs.KindJobArrive,
			Job: int32(job.ID), Procs: int32(job.Request),
		})
	}
	if q.less != nil {
		waiting := q.queue[q.head:]
		sort.SliceStable(waiting, func(i, j int) bool { return q.less(waiting[i], waiting[j]) })
	}
	q.TryStart()
}

// JobCompleted informs the queuing system that a running job finished.
func (q *QueuingSystem) JobCompleted() {
	q.running--
	q.observeMPL()
	q.TryStart()
}

// TryStart launches queued jobs while the multiprogramming level and the
// resource manager's admission allow. It is safe to call reentrantly (a
// started job's manager callback may poke it again).
func (q *QueuingSystem) TryStart() {
	if q.inTryStart {
		return
	}
	q.inTryStart = true
	defer func() { q.inTryStart = false }()
	for q.head < len(q.queue) {
		if q.fixedMPL > 0 && q.running >= q.fixedMPL {
			if q.tr != nil {
				q.tr.Record(obs.Event{
					At: q.eng.Now(), Kind: obs.KindDeny,
					Reason: obs.ReasonFixedMPLFull, Job: -1, Procs: int32(q.running),
				})
			}
			break
		}
		if q.canAdmit != nil && !q.canAdmit() {
			// Coordinated admission: the policy's WantsNewJob records the
			// denial and its reason itself.
			break
		}
		job := q.queue[q.head]
		q.head++
		q.running++
		q.started++
		if q.tr != nil {
			if q.fixedMPL > 0 {
				q.tr.Record(obs.Event{
					At: q.eng.Now(), Kind: obs.KindAdmit,
					Reason: obs.ReasonBelowFixedMPL, Job: int32(job.ID), Procs: int32(q.running - 1),
				})
			}
			q.tr.Record(obs.Event{
				At: q.eng.Now(), Kind: obs.KindJobStart,
				Job: int32(job.ID), Procs: int32(job.Request),
			})
		}
		q.observeMPL()
		q.start(job)
	}
}

func (q *QueuingSystem) observeMPL() {
	if q.running > q.maxMPL {
		q.maxMPL = q.running
	}
	if q.rec != nil {
		q.rec.ObserveMPL(q.eng.Now(), q.running)
	}
}

// Running returns the number of running jobs.
func (q *QueuingSystem) Running() int { return q.running }

// Queued returns the number of jobs waiting.
func (q *QueuingSystem) Queued() int { return len(q.queue) - q.head }

// Started returns how many jobs have been started in total.
func (q *QueuingSystem) Started() int { return q.started }

// MaxMPL returns the highest multiprogramming level reached.
func (q *QueuingSystem) MaxMPL() int { return q.maxMPL }

// Drained reports whether every submitted job has been started and finished.
func (q *QueuingSystem) Drained() bool { return q.Queued() == 0 && q.running == 0 }
