// Package experiments defines one runnable experiment per table and figure
// of the paper's evaluation (Section 5), plus ablations over the PDPA design
// parameters. Each experiment builds its workloads, runs the policies it
// compares, and formats the same rows or series the paper reports.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"pdpasim/internal/app"
	"pdpasim/internal/metrics"
	"pdpasim/internal/sim"
	"pdpasim/internal/stats"
	"pdpasim/internal/sweep"
	"pdpasim/internal/system"
	"pdpasim/internal/workload"
)

// Options control experiment execution.
type Options struct {
	// Seeds are the trace seeds to average over (default {1, 2, 3}).
	Seeds []int64
	// NCPU is the machine size (default 60, the paper's configuration).
	NCPU int
	// Window is the submission window (default 300 s).
	Window sim.Time
	// Loads are the demand levels (default 60%, 80%, 100%).
	Loads []float64
	// KeepBursts enables trace retention where an experiment needs it.
	KeepBursts bool
	// Workers bounds the worker pool the policy × load × seed grids run on
	// (0 = one worker per CPU). Results are identical at any setting.
	Workers int
}

func (o Options) withDefaults() Options {
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1, 2, 3}
	}
	if o.NCPU == 0 {
		o.NCPU = 60
	}
	if o.Window == 0 {
		o.Window = 300 * sim.Second
	}
	if len(o.Loads) == 0 {
		o.Loads = []float64{0.6, 0.8, 1.0}
	}
	return o
}

// Quick returns reduced options for fast smoke runs and benchmarks.
func Quick() Options {
	return Options{Seeds: []int64{1}, Loads: []float64{0.6, 1.0}}
}

// Result is a completed experiment: an identifier matching the paper
// artifact and the formatted reproduction.
type Result struct {
	ID    string
	Title string
	Text  string
}

func (r Result) String() string {
	return fmt.Sprintf("### %s — %s\n\n%s", r.ID, r.Title, r.Text)
}

// Spec describes an available experiment.
type Spec struct {
	ID    string
	Title string
	Run   func(Options) (Result, error)
}

// All returns every experiment in paper order.
func All() []Spec {
	return []Spec{
		{"fig3", "Speedup curves of the applications", Fig3},
		{"tab1", "Workload characteristics", Table1},
		{"fig4", "Workload 1: response and execution time", Fig4},
		{"fig5", "Execution views for workload 1 under IRIX and PDPA", Fig5},
		{"tab2", "IRIX versus PDPA and Equipartition stability (w1, load=100%)", Table2},
		{"fig6", "Workload 2: response and execution time", Fig6},
		{"fig7", "Workload 2 at multiprogramming levels 2, 3, and 4", Fig7},
		{"fig8", "Multiprogramming level decided by PDPA (w2, load=100%)", Fig8},
		{"fig9", "Workload 3: response and execution time", Fig9},
		{"tab3", "Workload 3 with apsi not tuned (request=30, load=60%)", Table3},
		{"fig10", "Workload 4: response and execution time", Fig10},
		{"tab4", "Workload 4 not tuned (all requests=30, load=60%)", Table4},
		{"abl1", "Ablation: target efficiency sweep", AblationTargetEff},
		{"abl2", "Ablation: allocation step sweep", AblationStep},
		{"abl3", "Ablation: measurement-noise sensitivity", AblationNoise},
		{"abl4", "Ablation: malleability (rigid MPI / hybrid / malleable)", AblationMalleability},
		{"ext1", "Extended baselines: Gang and Dynamic", ExtendedBaselines},
		{"ext2", "Sensitivity: seed-sweep confidence intervals", Sensitivity},
		{"ext3", "Memory-migration stability study", MemoryStability},
		{"ext4", "Monitoring path: compiler-inserted vs binary-only", MonitoringPath},
		{"ext5", "Arrival burstiness sensitivity", Burstiness},
		{"ext6", "Load-adaptive target efficiency", AdaptiveTarget},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Spec, error) {
	for _, s := range All() {
		if s.ID == id {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// genWorkload builds the standard workload for a mix/load/seed.
func genWorkload(o Options, mix workload.Mix, load float64, seed int64) (*workload.Workload, error) {
	return workload.Generate(workload.GenConfig{
		Mix: mix, Load: load, NCPU: o.NCPU, Window: o.Window, Seed: seed,
	})
}

// cell aggregates one (policy, load, class, metric) value across seeds.
type cell struct{ sum stats.Summary }

// matrix holds averaged per-class response/execution times for a set of
// policy × load runs.
type matrix struct {
	o        Options
	mix      workload.Mix
	policies []system.PolicyKind
	// values[policy][load][class][metric]
	resp  map[system.PolicyKind]map[float64]map[app.Class]*cell
	exec  map[system.PolicyKind]map[float64]map[app.Class]*cell
	alloc map[system.PolicyKind]map[float64]map[app.Class]*cell
	// lastRuns keeps one representative RunResult per (policy, load).
	lastRuns map[system.PolicyKind]map[float64]*metrics.RunResult
}

func newMatrix(o Options, mix workload.Mix, policies []system.PolicyKind) *matrix {
	m := &matrix{
		o: o, mix: mix, policies: policies,
		resp:     map[system.PolicyKind]map[float64]map[app.Class]*cell{},
		exec:     map[system.PolicyKind]map[float64]map[app.Class]*cell{},
		alloc:    map[system.PolicyKind]map[float64]map[app.Class]*cell{},
		lastRuns: map[system.PolicyKind]map[float64]*metrics.RunResult{},
	}
	return m
}

func (m *matrix) add(kind system.PolicyKind, load float64, res *metrics.RunResult) {
	put := func(store map[system.PolicyKind]map[float64]map[app.Class]*cell, vals map[app.Class]float64) {
		if store[kind] == nil {
			store[kind] = map[float64]map[app.Class]*cell{}
		}
		if store[kind][load] == nil {
			store[kind][load] = map[app.Class]*cell{}
		}
		for c, v := range vals {
			cl := store[kind][load][c]
			if cl == nil {
				cl = &cell{}
				store[kind][load][c] = cl
			}
			cl.sum.Add(v)
		}
	}
	put(m.resp, res.ResponseByClass())
	put(m.exec, res.ExecutionByClass())
	put(m.alloc, res.AvgAllocByClass())
	if m.lastRuns[kind] == nil {
		m.lastRuns[kind] = map[float64]*metrics.RunResult{}
	}
	m.lastRuns[kind][load] = res
}

func (m *matrix) mean(store map[system.PolicyKind]map[float64]map[app.Class]*cell,
	kind system.PolicyKind, load float64, c app.Class) float64 {
	if store[kind] == nil || store[kind][load] == nil || store[kind][load][c] == nil {
		return 0
	}
	return store[kind][load][c].sum.Mean()
}

// runMatrix executes the mix under every policy × load × seed on the
// parallel sweep engine: each (load, seed) workload is generated once and
// shared by every policy, and the grid fans out across Options.Workers.
func runMatrix(o Options, mix workload.Mix, policies []system.PolicyKind, tweak func(*system.Config)) (*matrix, error) {
	m := newMatrix(o, mix, policies)
	res, err := sweep.Run(context.Background(), sweep.Config{
		Policies: policies,
		Mixes:    []string{mix.Name},
		Loads:    o.Loads,
		Seeds:    o.Seeds,
		NCPU:     o.NCPU,
		Window:   o.Window,
		Workers:  o.Workers,
		Tweak:    tweak,
	})
	if err != nil {
		return nil, err
	}
	// Accumulate seed-major, exactly the order the serial loop used, so the
	// floating-point sums — and every rendered digit — are unchanged.
	for _, seed := range o.Seeds {
		for _, load := range o.Loads {
			for _, pk := range policies {
				m.add(pk, load, res.Run(pk, mix.Name, load, seed))
			}
		}
	}
	return m, nil
}

// policyLabel renders the paper's policy names.
func policyLabel(pk system.PolicyKind) string {
	switch pk {
	case system.IRIX:
		return "IRIX"
	case system.Equipartition:
		return "Equip"
	case system.EqualEfficiency:
		return "Equal_eff"
	case system.PDPA:
		return "PDPA"
	case system.Dynamic:
		return "Dynamic"
	case system.Gang:
		return "Gang"
	case system.AdaptivePDPA:
		return "PDPA-adaptive"
	}
	return string(pk)
}

// renderResponseExec formats the Fig. 4/6/9/10 data: per class, average
// response and execution time per policy and load.
func (m *matrix) renderResponseExec(classes []app.Class) string {
	var sb strings.Builder
	loads := append([]float64(nil), m.o.Loads...)
	sort.Float64s(loads)
	for _, c := range classes {
		fmt.Fprintf(&sb, "%s — average response time (s)\n", c)
		m.renderOne(&sb, m.resp, c, loads)
		fmt.Fprintf(&sb, "%s — average execution time (s)\n", c)
		m.renderOne(&sb, m.exec, c, loads)
	}
	return sb.String()
}

func (m *matrix) renderOne(sb *strings.Builder, store map[system.PolicyKind]map[float64]map[app.Class]*cell, c app.Class, loads []float64) {
	fmt.Fprintf(sb, "  %-10s", "load")
	for _, l := range loads {
		fmt.Fprintf(sb, "%10.0f%%", l*100)
	}
	sb.WriteByte('\n')
	for _, pk := range m.policies {
		fmt.Fprintf(sb, "  %-10s", policyLabel(pk))
		for _, l := range loads {
			fmt.Fprintf(sb, "%11.1f", m.mean(store, pk, l, c))
		}
		sb.WriteByte('\n')
	}
	sb.WriteByte('\n')
}
