package experiments

import (
	"fmt"

	"pdpasim/internal/app"
	"pdpasim/internal/chart"
	"pdpasim/internal/system"
	"pdpasim/internal/workload"
)

// FigureChart is one renderable plot with the paper-artifact id it belongs
// to.
type FigureChart struct {
	// Name is a filesystem-friendly identifier, e.g. "fig4_swim_response".
	Name  string
	Chart *chart.Chart
}

// Charts regenerates the paper's figures as SVG-renderable line charts:
// Fig. 3's speedup curves, the response/execution-versus-load panels of
// Figs. 4, 6, 9, and 10, and Fig. 8's multiprogramming-level timeline.
func Charts(o Options) ([]FigureChart, error) {
	o = o.withDefaults()
	var out []FigureChart

	// Fig. 3: speedup curves.
	fig3 := &chart.Chart{
		Title:  "Fig. 3 — speedup curves",
		XLabel: "processors",
		YLabel: "speedup",
	}
	procs := []int{1, 2, 4, 8, 12, 16, 20, 24, 30, 40, 50, 60}
	for _, c := range app.AllClasses() {
		prof := app.ProfileFor(c)
		s := chart.Series{Name: prof.Name}
		for _, p := range procs {
			s.X = append(s.X, float64(p))
			s.Y = append(s.Y, prof.Speedup.Speedup(p))
		}
		fig3.Series = append(fig3.Series, s)
	}
	out = append(out, FigureChart{Name: "fig3_speedup_curves", Chart: fig3})

	// Figs. 4, 6, 9, 10: per-class response and execution versus load.
	figures := []struct {
		id      string
		mix     workload.Mix
		classes []app.Class
	}{
		{"fig4", workload.W1(), []app.Class{app.Swim, app.BT}},
		{"fig6", workload.W2(), []app.Class{app.BT, app.Hydro2D}},
		{"fig9", workload.W3(), []app.Class{app.BT, app.Apsi}},
		{"fig10", workload.W4(), app.AllClasses()},
	}
	for _, fig := range figures {
		m, err := runMatrix(o, fig.mix, system.PolicyKinds(), nil)
		if err != nil {
			return nil, err
		}
		for _, cl := range fig.classes {
			for _, metric := range []struct {
				name  string
				store map[system.PolicyKind]map[float64]map[app.Class]*cell
			}{
				{"response", m.resp},
				{"execution", m.exec},
			} {
				c := &chart.Chart{
					Title:  fmt.Sprintf("%s — %s average %s time (%s)", fig.id, cl, metric.name, fig.mix.Name),
					XLabel: "load (%)",
					YLabel: "seconds",
				}
				for _, pk := range m.policies {
					s := chart.Series{Name: policyLabel(pk)}
					for _, load := range o.Loads {
						s.X = append(s.X, load*100)
						s.Y = append(s.Y, m.mean(metric.store, pk, load, cl))
					}
					c.Series = append(c.Series, s)
				}
				out = append(out, FigureChart{
					Name:  fmt.Sprintf("%s_%s_%s", fig.id, sanitize(cl.String()), metric.name),
					Chart: c,
				})
			}
		}
	}

	// Fig. 8: multiprogramming-level timeline under PDPA, w2 at 100%.
	w, err := genWorkload(o, workload.W2(), 1.0, o.Seeds[0])
	if err != nil {
		return nil, err
	}
	res, err := system.Run(system.Config{Workload: w, Policy: system.PDPA, Seed: o.Seeds[0]})
	if err != nil {
		return nil, err
	}
	fig8 := &chart.Chart{
		Title:  "Fig. 8 — multiprogramming level decided by PDPA (w2, 100%)",
		XLabel: "time (s)",
		YLabel: "multiprogramming level",
	}
	s := chart.Series{Name: "PDPA"}
	for _, p := range res.MPLTimeline {
		s.X = append(s.X, p.At.Seconds())
		s.Y = append(s.Y, float64(p.Value))
	}
	if len(s.X) > 0 {
		fig8.Series = append(fig8.Series, s)
		out = append(out, FigureChart{Name: "fig8_mpl_timeline", Chart: fig8})
	}
	return out, nil
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
