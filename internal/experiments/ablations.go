package experiments

import (
	"fmt"
	"strings"

	"pdpasim/internal/app"
	"pdpasim/internal/system"
	"pdpasim/internal/workload"
)

// AblationTargetEff sweeps PDPA's target efficiency on workload 4: a lower
// target hands out more processors (better individual execution time, worse
// packing); a higher target packs tighter.
func AblationTargetEff(o Options) (Result, error) {
	o = o.withDefaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %10s %10s %12s %10s %12s\n",
		"target_eff", "hydro cpus", "hydro exec", "apsi resp", "makespan", "cpu-seconds")
	for _, target := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
		params := defaultPDPAParams()
		params.TargetEff = target
		if params.HighEff < target {
			params.HighEff = target
		}
		res, makespan, err := averagedRuns(o, workload.W4(), 0.8, func(w *workload.Workload, seed int64) system.Config {
			return system.Config{Workload: w, Policy: system.PDPA, PDPAParams: &params, Seed: seed}
		})
		if err != nil {
			return Result{}, err
		}
		fmt.Fprintf(&sb, "%-10.2f %10.1f %10.1f %12.1f %10.1f %12.0f\n",
			target,
			res.AvgAllocByClass()[app.Hydro2D],
			res.ExecutionByClass()[app.Hydro2D],
			res.ResponseByClass()[app.Apsi],
			makespan,
			res.CPUSecondsTotal())
	}
	sb.WriteString("\nLower targets allocate more generously; higher targets reclaim processors\n" +
		"for the queue. The paper's 0.7 balances the two.\n")
	return Result{ID: "abl1", Title: "Ablation: target efficiency sweep (w4, load=80%)", Text: sb.String()}, nil
}

// AblationStep sweeps the allocation step on workload 2: small steps search
// slowly (long transients), large steps overshoot.
func AblationStep(o Options) (Result, error) {
	o = o.withDefaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %10s %10s %12s %10s\n", "step", "bt resp", "bt exec", "hydro cpus", "makespan")
	for _, step := range []int{1, 2, 4, 8, 16} {
		params := defaultPDPAParams()
		params.Step = step
		res, makespan, err := averagedRuns(o, workload.W2(), 1.0, func(w *workload.Workload, seed int64) system.Config {
			return system.Config{Workload: w, Policy: system.PDPA, PDPAParams: &params, Seed: seed}
		})
		if err != nil {
			return Result{}, err
		}
		fmt.Fprintf(&sb, "%-6d %10.1f %10.1f %12.1f %10.1f\n",
			step,
			res.ResponseByClass()[app.BT],
			res.ExecutionByClass()[app.BT],
			res.AvgAllocByClass()[app.Hydro2D],
			makespan)
	}
	return Result{ID: "abl2", Title: "Ablation: allocation step sweep (w2, load=100%)", Text: sb.String()}, nil
}

// AblationNoise sweeps the SelfAnalyzer measurement noise on workload 1,
// contrasting PDPA's threshold-based robustness with Equal_efficiency's
// extrapolation fragility (Section 5.1's critique).
func AblationNoise(o Options) (Result, error) {
	o = o.withDefaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %12s %12s %14s %14s\n",
		"sigma", "PDPA resp", "EqEff resp", "PDPA swim spread", "EqEff swim spread")
	for _, sigma := range []float64{-1, 0.01, 0.03, 0.10} {
		label := fmt.Sprintf("%.0f%%", sigma*100)
		if sigma < 0 {
			label = "0%"
		}
		row := map[system.PolicyKind][3]float64{}
		for _, pk := range []system.PolicyKind{system.PDPA, system.EqualEfficiency} {
			respSum, spreadSum := 0.0, 0.0
			for _, seed := range o.Seeds {
				w, err := genWorkload(o, workload.W1(), 1.0, seed)
				if err != nil {
					return Result{}, err
				}
				res, err := system.Run(system.Config{Workload: w, Policy: pk, Seed: seed, NoiseSigma: sigma})
				if err != nil {
					return Result{}, err
				}
				respSum += res.ResponseByClass()[app.Swim]
				lo, hi := res.MinMaxAllocByClass(app.Swim)
				spreadSum += hi - lo
			}
			n := float64(len(o.Seeds))
			row[pk] = [3]float64{respSum / n, spreadSum / n}
		}
		fmt.Fprintf(&sb, "%-8s %12.1f %12.1f %14.1f %14.1f\n",
			label,
			row[system.PDPA][0], row[system.EqualEfficiency][0],
			row[system.PDPA][1], row[system.EqualEfficiency][1])
	}
	sb.WriteString("\n'swim spread' is the gap between the smallest and largest average\n" +
		"allocation identical swim jobs received — the paper's fairness complaint\n" +
		"about Equal_efficiency (2 vs 28 processors).\n")
	return Result{ID: "abl3", Title: "Ablation: measurement-noise sensitivity (w1, load=100%)", Text: sb.String()}, nil
}
