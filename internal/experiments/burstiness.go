package experiments

import (
	"fmt"
	"strings"

	"pdpasim/internal/app"
	"pdpasim/internal/system"
	"pdpasim/internal/workload"
)

// Burstiness studies arrival-pattern sensitivity: the paper's workloads use
// homogeneous Poisson arrivals; real submission streams arrive in bursts.
// A fixed multiprogramming level queues a burst behind four slots, while
// PDPA's coordinated admission widens the level exactly when a burst of
// small-footprint jobs arrives.
func Burstiness(o Options) (Result, error) {
	o = o.withDefaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "w3 at 80%% load; burst periods carry the stated multiple of the calm\narrival intensity (overall demand unchanged)\n\n")
	fmt.Fprintf(&sb, "%-12s %-8s %12s %12s %10s %8s\n",
		"burstiness", "policy", "bt resp", "apsi resp", "makespan", "maxML")
	for _, burst := range []float64{1, 4, 10} {
		for _, pk := range []system.PolicyKind{system.Equipartition, system.PDPA} {
			var btResp, apsiResp, makespan, maxML float64
			for _, seed := range o.Seeds {
				w, err := workload.Generate(workload.GenConfig{
					Mix: workload.W3(), Load: 0.8, NCPU: o.NCPU, Window: o.Window,
					Seed: seed, Burstiness: burst,
				})
				if err != nil {
					return Result{}, err
				}
				res, err := system.Run(system.Config{Workload: w, Policy: pk, Seed: seed})
				if err != nil {
					return Result{}, err
				}
				btResp += res.ResponseByClass()[app.BT]
				apsiResp += res.ResponseByClass()[app.Apsi]
				makespan += res.Makespan.Seconds()
				maxML += float64(res.MaxMPL)
			}
			n := float64(len(o.Seeds))
			fmt.Fprintf(&sb, "%-12s %-8s %11.1fs %11.1fs %9.1fs %8.1f\n",
				fmt.Sprintf("%gx", burst), policyLabel(pk), btResp/n, apsiResp/n, makespan/n, maxML/n)
		}
	}
	sb.WriteString("\nPDPA's advantage holds (and its multiprogramming level stretches further)\n" +
		"as arrivals concentrate into bursts; the fixed level cannot absorb them.\n")
	return Result{ID: "ext5", Title: "Arrival burstiness sensitivity (w3, load=80%)", Text: sb.String()}, nil
}
