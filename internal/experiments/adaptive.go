package experiments

import (
	"fmt"
	"strings"

	"pdpasim/internal/app"
	"pdpasim/internal/system"
	"pdpasim/internal/workload"
)

// AdaptiveTarget evaluates the paper's sketched variant of PDPA whose target
// efficiency follows the system load ("alternatively, it is dynamically set
// depending on the load of the system", Section 4.1): with an empty queue
// the target relaxes and applications run wide; under backlog it tightens
// and the machine packs. The static 0.7 target is the paper's compromise;
// the adaptive policy should approach the better of the two regimes at each
// load.
func AdaptiveTarget(o Options) (Result, error) {
	o = o.withDefaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %-14s %12s %12s %12s %10s\n",
		"load", "policy", "bt resp", "hydro resp", "hydro exec", "makespan")
	for _, load := range o.Loads {
		for _, pk := range []system.PolicyKind{system.PDPA, system.AdaptivePDPA} {
			var btResp, hyResp, hyExec, makespan float64
			for _, seed := range o.Seeds {
				w, err := genWorkload(o, workload.W2(), load, seed)
				if err != nil {
					return Result{}, err
				}
				res, err := system.Run(system.Config{Workload: w, Policy: pk, Seed: seed})
				if err != nil {
					return Result{}, err
				}
				btResp += res.ResponseByClass()[app.BT]
				hyResp += res.ResponseByClass()[app.Hydro2D]
				hyExec += res.ExecutionByClass()[app.Hydro2D]
				makespan += res.Makespan.Seconds()
			}
			n := float64(len(o.Seeds))
			fmt.Fprintf(&sb, "%-8.0f %-14s %11.1fs %11.1fs %11.1fs %9.1fs\n",
				load*100, policyLabel(pk), btResp/n, hyResp/n, hyExec/n, makespan/n)
		}
	}
	sb.WriteString("\nAt light load the adaptive target relaxes (hydro2d runs wider, better\n" +
		"execution times); under backlog it tightens to the static policy's\n" +
		"packing. The static 0.7 is the paper's single-point compromise.\n")
	return Result{ID: "ext6", Title: "Load-adaptive target efficiency (w2)", Text: sb.String()}, nil
}
