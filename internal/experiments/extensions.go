package experiments

import (
	"fmt"
	"strings"

	"pdpasim/internal/app"
	"pdpasim/internal/system"
	"pdpasim/internal/workload"
)

// AblationMalleability studies what the paper's Section 4.3 argues: dynamic
// space sharing works because applications are malleable. The same workload
// 2 runs with bt.A fully malleable (OpenMP), as an MPI+OpenMP hybrid with 4
// processes (the paper's future-work proposal), and fully rigid (plain MPI,
// all-or-nothing at its request), under Equipartition and PDPA.
func AblationMalleability(o Options) (Result, error) {
	o = o.withDefaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %-8s %12s %12s %14s %10s\n",
		"bt.A malleability", "policy", "bt resp", "hydro resp", "makespan", "util")
	variants := []struct {
		name string
		gran int
	}{
		{"malleable", 1},
		{"hybrid (4 procs)", 4},
		{"rigid", 30},
	}
	for _, variant := range variants {
		for _, pk := range []system.PolicyKind{system.Equipartition, system.PDPA} {
			var btResp, hyResp, makespan, util float64
			for _, seed := range o.Seeds {
				w, err := genWorkload(o, workload.W2(), 0.8, seed)
				if err != nil {
					return Result{}, err
				}
				w = w.WithGranularity(app.BT, variant.gran)
				res, err := system.Run(system.Config{Workload: w, Policy: pk, Seed: seed})
				if err != nil {
					return Result{}, err
				}
				btResp += res.ResponseByClass()[app.BT]
				hyResp += res.ResponseByClass()[app.Hydro2D]
				makespan += res.Makespan.Seconds()
				util += res.Stability.Utilization
			}
			n := float64(len(o.Seeds))
			fmt.Fprintf(&sb, "%-18s %-8s %11.1fs %11.1fs %13.1fs %9.0f%%\n",
				variant.name, policyLabel(pk), btResp/n, hyResp/n, makespan/n, util/n*100)
		}
	}
	sb.WriteString("\nRigid jobs wait for their full request (fragmentation, Section 4.3);\n" +
		"the MPI+OpenMP hybrid recovers most of the malleable behaviour — the\n" +
		"paper's future-work direction.\n")
	return Result{ID: "abl4", Title: "Ablation: malleability (w2, load=80%, bt.A rigid/hybrid/malleable)", Text: sb.String()}, nil
}

// ExtendedBaselines compares the paper's four policies plus the two
// related-work baselines this repository also implements — gang scheduling
// and McCann's Dynamic — on the full mix (workload 4).
func ExtendedBaselines(o Options) (Result, error) {
	o = o.withDefaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %10s %10s %10s %10s %12s %8s %8s\n",
		"policy", "swim resp", "bt resp", "hydro resp", "apsi resp", "makespan", "maxML", "migr")
	for _, pk := range system.ExtendedPolicyKinds() {
		agg := map[app.Class]float64{}
		var makespan, maxML, migr float64
		for _, seed := range o.Seeds {
			w, err := genWorkload(o, workload.W4(), 0.8, seed)
			if err != nil {
				return Result{}, err
			}
			res, err := system.Run(system.Config{Workload: w, Policy: pk, Seed: seed})
			if err != nil {
				return Result{}, err
			}
			for c, v := range res.ResponseByClass() {
				agg[c] += v
			}
			makespan += res.Makespan.Seconds()
			maxML += float64(res.MaxMPL)
			migr += float64(res.Stability.Migrations)
		}
		n := float64(len(o.Seeds))
		fmt.Fprintf(&sb, "%-10s %9.0fs %9.0fs %9.0fs %9.0fs %11.0fs %8.1f %8.0f\n",
			policyLabel(pk),
			agg[app.Swim]/n, agg[app.BT]/n, agg[app.Hydro2D]/n, agg[app.Apsi]/n,
			makespan/n, maxML/n, migr/n)
	}
	sb.WriteString("\nGang gives dedicated-machine behaviour per slot but dilates time by the\n" +
		"row count; Dynamic maximizes instantaneous speedup and starves poor\n" +
		"scalers; PDPA's efficiency target plus coordinated admission wins on\n" +
		"response time.\n")
	return Result{ID: "ext1", Title: "Extended baselines: Gang and Dynamic versus the paper's policies (w4, load=80%)", Text: sb.String()}, nil
}
