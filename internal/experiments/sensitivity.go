package experiments

import (
	"fmt"
	"strings"

	"pdpasim/internal/app"
	"pdpasim/internal/stats"
	"pdpasim/internal/system"
	"pdpasim/internal/workload"
)

// Sensitivity quantifies how much the headline comparison depends on the
// workload draw: it re-runs workload 3 at 100% load over many seeds and
// reports the mean response time with a 95% confidence interval per policy.
// The paper uses single trace files; this experiment shows the PDPA gap is
// far wider than the trace-to-trace variation.
func Sensitivity(o Options) (Result, error) {
	o = o.withDefaults()
	seeds := o.Seeds
	if len(seeds) < 8 {
		seeds = make([]int64, 10)
		for i := range seeds {
			seeds[i] = int64(i + 1)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "workload 3 at 100%% load, %d independent traces\n\n", len(seeds))
	fmt.Fprintf(&sb, "%-10s %22s %22s %14s\n",
		"policy", "bt.A response (s)", "apsi response (s)", "makespan (s)")
	type agg struct{ bt, apsi, mk stats.Summary }
	for _, pk := range []system.PolicyKind{system.Equipartition, system.PDPA} {
		var a agg
		for _, seed := range seeds {
			w, err := genWorkload(o, workload.W3(), 1.0, seed)
			if err != nil {
				return Result{}, err
			}
			res, err := system.Run(system.Config{Workload: w, Policy: pk, Seed: seed})
			if err != nil {
				return Result{}, err
			}
			resp := res.ResponseByClass()
			a.bt.Add(resp[app.BT])
			a.apsi.Add(resp[app.Apsi])
			a.mk.Add(res.Makespan.Seconds())
		}
		fmt.Fprintf(&sb, "%-10s %12.0f ± %-7.0f %12.0f ± %-7.0f %8.0f ± %-5.0f\n",
			policyLabel(pk),
			a.bt.Mean(), a.bt.ConfidenceInterval95(),
			a.apsi.Mean(), a.apsi.ConfidenceInterval95(),
			a.mk.Mean(), a.mk.ConfidenceInterval95())
	}
	sb.WriteString("\nIntervals are 95% confidence on the mean across traces. The policy gap\n" +
		"dominates the trace-to-trace variation by a wide margin.\n")
	return Result{ID: "ext2", Title: "Sensitivity: seed-sweep confidence intervals (w3, load=100%)", Text: sb.String()}, nil
}
