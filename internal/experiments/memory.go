package experiments

import (
	"fmt"
	"strings"

	"pdpasim/internal/system"
	"pdpasim/internal/workload"
)

// MemoryStability quantifies the paper's Section 5.1.1 observation that a
// stable schedule lets the OS's automatic page migration do its work. With
// the CC-NUMA page-placement model on (Origin-like 1.3x remote penalty and
// a daemon healing 20%/s), every space-sharing policy pays only a few
// percent — each allocation change costs a short healing window — while the
// instability of the churny policies shows as thousands of thread
// migrations versus PDPA's near-zero.
func MemoryStability(o Options) (Result, error) {
	o = o.withDefaults()
	var sb strings.Builder
	mem := &system.MemoryConfig{}
	fmt.Fprintf(&sb, "w1 at 100%% load, 4-CPU NUMA nodes, remote penalty 1.3x, daemon 20%%/s\n\n")
	fmt.Fprintf(&sb, "%-10s %14s %14s %10s %12s\n",
		"policy", "makespan flat", "makespan NUMA", "slowdown", "migrations")
	policies := []system.PolicyKind{
		system.Equipartition, system.EqualEfficiency, system.Dynamic, system.PDPA,
	}
	for _, pk := range policies {
		var flat, numa, migr float64
		for _, seed := range o.Seeds {
			w, err := genWorkload(o, workload.W1(), 1.0, seed)
			if err != nil {
				return Result{}, err
			}
			base, err := system.Run(system.Config{
				Workload: w, Policy: pk, Seed: seed, NUMANodeSize: 4,
			})
			if err != nil {
				return Result{}, err
			}
			withMem, err := system.Run(system.Config{
				Workload: w, Policy: pk, Seed: seed, NUMANodeSize: 4, Memory: mem,
			})
			if err != nil {
				return Result{}, err
			}
			flat += base.Makespan.Seconds()
			numa += withMem.Makespan.Seconds()
			migr += float64(withMem.Stability.Migrations)
		}
		n := float64(len(o.Seeds))
		fmt.Fprintf(&sb, "%-10s %13.1fs %13.1fs %9.2fx %12.0f\n",
			policyLabel(pk), flat/n, numa/n, numa/flat, migr/n)
	}
	sb.WriteString("\nWith the Origin's modest NUMA ratio and a working page-migration daemon,\n" +
		"every space-sharing policy loses only a few percent to remote accesses —\n" +
		"each allocation change (PDPA's search included) costs a short healing\n" +
		"period. The locality damage of instability shows in the thread-migration\n" +
		"counts (Equal_eff/Dynamic in the thousands, PDPA near zero): per-\n" +
		"migration cache losses are what the IRIX model's time sharing pays for\n" +
		"directly, and why the paper insists allocations stay stable (Section 6).\n")
	return Result{ID: "ext3", Title: "Memory-migration stability study (w1, load=100%, CC-NUMA model)", Text: sb.String()}, nil
}
