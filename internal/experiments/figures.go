package experiments

import (
	"fmt"
	"strings"

	"pdpasim/internal/app"
	"pdpasim/internal/sim"
	"pdpasim/internal/system"
	"pdpasim/internal/trace"
	"pdpasim/internal/workload"
)

// Fig3 reproduces the speedup curves of the four applications.
func Fig3(o Options) (Result, error) {
	o = o.withDefaults()
	var sb strings.Builder
	procs := []int{1, 2, 4, 8, 12, 16, 20, 24, 30, 40, 50, 60}
	fmt.Fprintf(&sb, "%-9s", "procs")
	for _, p := range procs {
		fmt.Fprintf(&sb, "%7d", p)
	}
	sb.WriteByte('\n')
	for _, c := range app.AllClasses() {
		prof := app.ProfileFor(c)
		fmt.Fprintf(&sb, "%-9s", prof.Name)
		for _, p := range procs {
			fmt.Fprintf(&sb, "%7.1f", prof.Speedup.Speedup(p))
		}
		sb.WriteByte('\n')
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "shape checks: swim superlinear on 8..16 = %v; "+
		"bt eff(30) = %.2f; hydro2d 0.7-frontier = %d procs; apsi max speedup = %.2f\n",
		app.Efficiency(app.ProfileFor(app.Swim).Speedup, 12) > 1,
		app.Efficiency(app.ProfileFor(app.BT).Speedup, 30),
		app.MaxProcsAtEfficiency(app.ProfileFor(app.Hydro2D).Speedup, 0.7, 60),
		app.ProfileFor(app.Apsi).Speedup.Speedup(60))
	return Result{ID: "fig3", Title: "Speedup curves of the applications (Fig. 3)", Text: sb.String()}, nil
}

// Fig4 reproduces workload 1: 50% swim + 50% bt under the four policies.
func Fig4(o Options) (Result, error) {
	o = o.withDefaults()
	m, err := runMatrix(o, workload.W1(), system.PolicyKinds(), nil)
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:    "fig4",
		Title: "Workload 1 response and execution times (Fig. 4)",
		Text:  m.renderResponseExec([]app.Class{app.Swim, app.BT}),
	}, nil
}

// Fig5 renders the execution views of workload 1 (load=100%) under IRIX and
// PDPA — the textual analogue of the Paraver windows.
func Fig5(o Options) (Result, error) {
	o = o.withDefaults()
	seed := o.Seeds[0]
	w, err := genWorkload(o, workload.W1(), 1.0, seed)
	if err != nil {
		return Result{}, err
	}
	var sb strings.Builder
	for _, pk := range []system.PolicyKind{system.IRIX, system.PDPA} {
		res, err := system.Run(system.Config{Workload: w, Policy: pk, Seed: seed, KeepBursts: true})
		if err != nil {
			return Result{}, err
		}
		classOf := map[int]app.Class{}
		for _, j := range w.Jobs {
			classOf[j.ID] = j.Class
		}
		fmt.Fprintf(&sb, "--- %s (first 120 s, rows = CPUs, letters = applications: S=swim B=bt, .=idle)\n", policyLabel(pk))
		sb.WriteString(res.Recorder.Render(trace.RenderOptions{
			Width: 100,
			From:  0,
			To:    120 * sim.Second,
			Label: func(job int) rune { return classOf[job].Letter() },
		}))
		sb.WriteByte('\n')
	}
	sb.WriteString("A stable space-sharing schedule shows long horizontal runs of one letter;\n" +
		"the native scheduler's view is speckled by migrations and time slicing.\n")
	return Result{ID: "fig5", Title: "Execution views for workload 1 under IRIX and PDPA (Fig. 5)", Text: sb.String()}, nil
}

// Fig6 reproduces workload 2: 50% bt + 50% hydro2d.
func Fig6(o Options) (Result, error) {
	o = o.withDefaults()
	m, err := runMatrix(o, workload.W2(), system.PolicyKinds(), nil)
	if err != nil {
		return Result{}, err
	}
	var sb strings.Builder
	sb.WriteString(m.renderResponseExec([]app.Class{app.BT, app.Hydro2D}))
	// The per-class allocations behind the result (paper: PDPA gives ~20 to
	// bt and ~9 to hydro2d; Equipartition ~15 each).
	fmt.Fprintf(&sb, "average processors at load=100%%: ")
	for _, pk := range m.policies {
		fmt.Fprintf(&sb, "%s bt=%.1f hydro=%.1f  ",
			policyLabel(pk), m.mean(m.alloc, pk, 1.0, app.BT), m.mean(m.alloc, pk, 1.0, app.Hydro2D))
	}
	sb.WriteByte('\n')
	return Result{
		ID:    "fig6",
		Title: "Workload 2 response and execution times (Fig. 6)",
		Text:  sb.String(),
	}, nil
}

// Fig7 reproduces the multiprogramming-level sensitivity study: workload 2
// under Equipartition and PDPA with the level set to 2, 3, and 4.
func Fig7(o Options) (Result, error) {
	o = o.withDefaults()
	var sb strings.Builder
	classes := []app.Class{app.BT, app.Hydro2D}
	fmt.Fprintf(&sb, "%-8s %-10s %-4s", "load", "policy", "ml")
	for _, c := range classes {
		fmt.Fprintf(&sb, " %12s %12s", c.String()+" resp", c.String()+" exec")
	}
	fmt.Fprintf(&sb, " %10s %8s\n", "makespan", "maxML")
	for _, load := range o.Loads {
		for _, ml := range []int{2, 3, 4} {
			for _, pk := range []system.PolicyKind{system.Equipartition, system.PDPA} {
				var respSum, execSum [2]float64
				var makespan, maxML float64
				for _, seed := range o.Seeds {
					w, err := genWorkload(o, workload.W2(), load, seed)
					if err != nil {
						return Result{}, err
					}
					cfg := system.Config{Workload: w, Policy: pk, Seed: seed, FixedMPL: ml}
					if pk == system.PDPA {
						params := defaultPDPAParams()
						params.BaseMPL = ml
						cfg.PDPAParams = &params
					}
					res, err := system.Run(cfg)
					if err != nil {
						return Result{}, err
					}
					resp := res.ResponseByClass()
					exec := res.ExecutionByClass()
					for i, c := range classes {
						respSum[i] += resp[c]
						execSum[i] += exec[c]
					}
					makespan += res.Makespan.Seconds()
					maxML += float64(res.MaxMPL)
				}
				n := float64(len(o.Seeds))
				fmt.Fprintf(&sb, "%-8.0f %-10s %-4d", load*100, policyLabel(pk), ml)
				for i := range classes {
					fmt.Fprintf(&sb, " %12.1f %12.1f", respSum[i]/n, execSum[i]/n)
				}
				fmt.Fprintf(&sb, " %10.1f %8.1f\n", makespan/n, maxML/n)
			}
		}
	}
	sb.WriteString("\nPDPA's results barely move with the configured level (it re-decides the\n" +
		"level itself); Equipartition's execution times degrade as ml grows.\n")
	return Result{ID: "fig7", Title: "Workload 2 at multiprogramming levels 2, 3, 4 (Fig. 7)", Text: sb.String()}, nil
}

// Fig8 reproduces the dynamic multiprogramming-level timeline decided by
// PDPA on workload 2 at 100% load.
func Fig8(o Options) (Result, error) {
	o = o.withDefaults()
	seed := o.Seeds[0]
	w, err := genWorkload(o, workload.W2(), 1.0, seed)
	if err != nil {
		return Result{}, err
	}
	res, err := system.Run(system.Config{Workload: w, Policy: system.PDPA, Seed: seed})
	if err != nil {
		return Result{}, err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "max ML = %d, time-weighted average = %.1f\n\n", res.MaxMPL, res.AvgMPL)
	// Render as a coarse step chart: one row per 10 s bucket.
	bucket := 10 * sim.Second
	tl := res.MPLTimeline
	level := 0
	idx := 0
	for t := sim.Time(0); t < res.Makespan; t += bucket {
		for idx < len(tl) && tl[idx].At <= t {
			level = tl[idx].Value
			idx++
		}
		fmt.Fprintf(&sb, "%6.0fs |%s %d\n", t.Seconds(), strings.Repeat("#", level), level)
	}
	return Result{ID: "fig8", Title: "Multiprogramming level decided by PDPA (Fig. 8)", Text: sb.String()}, nil
}

// Fig9 reproduces workload 3: 50% bt + 50% apsi.
func Fig9(o Options) (Result, error) {
	o = o.withDefaults()
	m, err := runMatrix(o, workload.W3(), system.PolicyKinds(), nil)
	if err != nil {
		return Result{}, err
	}
	var sb strings.Builder
	sb.WriteString(m.renderResponseExec([]app.Class{app.BT, app.Apsi}))
	if run := m.lastRuns[system.PDPA][1.0]; run != nil {
		fmt.Fprintf(&sb, "PDPA at load=100%%: max multiprogramming level = %d (the paper reports up to 34)\n", run.MaxMPL)
	}
	return Result{
		ID:    "fig9",
		Title: "Workload 3 response and execution times (Fig. 9)",
		Text:  sb.String(),
	}, nil
}

// Fig10 reproduces workload 4: 25% of each application.
func Fig10(o Options) (Result, error) {
	o = o.withDefaults()
	m, err := runMatrix(o, workload.W4(), system.PolicyKinds(), nil)
	if err != nil {
		return Result{}, err
	}
	var sb strings.Builder
	sb.WriteString(m.renderResponseExec(app.AllClasses()))
	fmt.Fprintf(&sb, "average processors at load=80%% under PDPA: ")
	for _, c := range app.AllClasses() {
		fmt.Fprintf(&sb, "%s=%.1f ", c, m.mean(m.alloc, system.PDPA, 0.8, c))
	}
	fmt.Fprintf(&sb, "\n(the paper reports swim=17, bt=20, hydro2d=10, apsi=2)\n")
	// Equal_efficiency fairness pathology: allocation spread for swim.
	if run := m.lastRuns[system.EqualEfficiency][1.0]; run != nil {
		lo, hi := run.MinMaxAllocByClass(app.Swim)
		fmt.Fprintf(&sb, "Equal_eff swim allocations at load=100%%: min=%.1f max=%.1f "+
			"(the paper reports 2..28 for identical jobs)\n", lo, hi)
	}
	return Result{
		ID:    "fig10",
		Title: "Workload 4 response and execution times (Fig. 10)",
		Text:  sb.String(),
	}, nil
}
