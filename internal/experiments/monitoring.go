package experiments

import (
	"fmt"
	"strings"

	"pdpasim/internal/app"
	"pdpasim/internal/system"
	"pdpasim/internal/workload"
)

// MonitoringPath compares the two instrumentation paths of Section 3.1:
// compiler-inserted SelfAnalyzer calls versus binary-only monitoring, where
// the Dynamic Periodicity Detector must first discover the iterative
// structure before any measurement reaches PDPA. The delayed knowledge
// lengthens every application's NO_REF phase and slows the search.
func MonitoringPath(o Options) (Result, error) {
	o = o.withDefaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %12s %12s %12s %10s\n",
		"monitoring", "swim resp", "hydro resp", "apsi resp", "makespan")
	for _, variant := range []struct {
		name       string
		binaryOnly bool
	}{
		{"compiler-inserted", false},
		{"binary-only (DPD)", true},
	} {
		agg := map[app.Class]float64{}
		makespan := 0.0
		for _, seed := range o.Seeds {
			w, err := genWorkload(o, workload.W4(), 0.8, seed)
			if err != nil {
				return Result{}, err
			}
			res, err := system.Run(system.Config{
				Workload: w, Policy: system.PDPA, Seed: seed,
				BinaryOnly: variant.binaryOnly,
			})
			if err != nil {
				return Result{}, err
			}
			for c, v := range res.ResponseByClass() {
				agg[c] += v
			}
			makespan += res.Makespan.Seconds()
		}
		n := float64(len(o.Seeds))
		fmt.Fprintf(&sb, "%-22s %11.1fs %11.1fs %11.1fs %9.1fs\n",
			variant.name,
			agg[app.Swim]/n, agg[app.Hydro2D]/n, agg[app.Apsi]/n, makespan/n)
	}
	sb.WriteString("\nBinary-only monitoring pays a structure-discovery warm-up per job (three\n" +
		"confirmed repetitions of the loop pattern) before PDPA hears anything;\n" +
		"response times degrade modestly — the price of scheduling unmodified\n" +
		"binaries.\n")
	return Result{ID: "ext4", Title: "Monitoring-path comparison: compiler-inserted vs binary-only (w4, load=80%)", Text: sb.String()}, nil
}
