package experiments

import (
	"strings"
	"testing"

	"pdpasim/internal/app"
	"pdpasim/internal/system"
	"pdpasim/internal/workload"
)

func quick() Options { return Quick() }

func TestAllSpecsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	for _, spec := range All() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			res, err := spec.Run(quick())
			if err != nil {
				t.Fatal(err)
			}
			if res.ID != spec.ID {
				t.Fatalf("result id %q for spec %q", res.ID, spec.ID)
			}
			if len(res.Text) < 50 {
				t.Fatalf("suspiciously short report: %q", res.Text)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig4"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if len(o.Seeds) == 0 || o.NCPU != 60 || len(o.Loads) != 3 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestFig3CurveOrdering(t *testing.T) {
	res, err := Fig3(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"swim", "bt.A", "hydro2d", "apsi"} {
		if !strings.Contains(res.Text, name) {
			t.Fatalf("curve for %s missing", name)
		}
	}
}

// TestHeadlineShapes verifies the reproduction's central claims on a quick
// configuration: these are the "who wins, by roughly what factor" assertions
// of the paper.
func TestHeadlineShapes(t *testing.T) {
	o := quick().withDefaults()

	// Workload 3 at 100% load: PDPA's coordinated admission crushes the
	// fixed-MPL policies on response time (paper: ~600%).
	w, err := genWorkload(o, workload.W3(), 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	pdpa, err := system.Run(system.Config{Workload: w, Policy: system.PDPA, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	equip, err := system.Run(system.Config{Workload: w, Policy: system.Equipartition, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pr := pdpa.ResponseByClass()
	er := equip.ResponseByClass()
	if er[app.BT] < 2*pr[app.BT] {
		t.Errorf("w3 bt response: Equip %.0fs vs PDPA %.0fs — want >= 2x gap", er[app.BT], pr[app.BT])
	}
	if er[app.Apsi] < 2*pr[app.Apsi] {
		t.Errorf("w3 apsi response: Equip %.0fs vs PDPA %.0fs — want >= 2x gap", er[app.Apsi], pr[app.Apsi])
	}
	if pdpa.MaxMPL <= 2*equip.MaxMPL {
		t.Errorf("w3 max MPL: PDPA %d vs Equip %d — dynamic level should dominate", pdpa.MaxMPL, equip.MaxMPL)
	}
	// PDPA pays a bounded execution-time cost for it (paper: ~30% for bt).
	pe := pdpa.ExecutionByClass()
	ee := equip.ExecutionByClass()
	if pe[app.BT] > 2.5*ee[app.BT] {
		t.Errorf("w3 bt execution blew up under PDPA: %.0fs vs %.0fs", pe[app.BT], ee[app.BT])
	}

	// Stability (Table 2 shape): IRIX migrates orders of magnitude more
	// than the space-sharing policies, with far shorter bursts.
	w1, err := genWorkload(o, workload.W1(), 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	irix, err := system.Run(system.Config{Workload: w1, Policy: system.IRIX, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pdpa1, err := system.Run(system.Config{Workload: w1, Policy: system.PDPA, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if irix.Stability.Migrations < 100*(pdpa1.Stability.Migrations+1) {
		t.Errorf("migrations: IRIX %d vs PDPA %d — want >= 100x",
			irix.Stability.Migrations, pdpa1.Stability.Migrations)
	}
	if irix.Stability.AvgBurst*10 > pdpa1.Stability.AvgBurst {
		t.Errorf("bursts: IRIX %v vs PDPA %v — want >= 10x shorter",
			irix.Stability.AvgBurst, pdpa1.Stability.AvgBurst)
	}
}

func TestTable3UntunedShape(t *testing.T) {
	res, err := Table3(quick())
	if err != nil {
		t.Fatal(err)
	}
	// The speedup row must show PDPA winning response by a wide margin.
	if !strings.Contains(res.Text, "speedup") {
		t.Fatalf("missing speedup row: %s", res.Text)
	}
}

func TestFig7PDPARobustToMPL(t *testing.T) {
	o := quick()
	o.Loads = []float64{1.0}
	res, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "ml") {
		t.Fatal("missing ml column")
	}
}

func TestPct(t *testing.T) {
	if got := pct(200, 100); got != 100 {
		t.Fatalf("pct(200,100) = %v", got)
	}
	if got := pct(100, 200); got != -100 {
		t.Fatalf("pct(100,200) = %v", got)
	}
	if got := pct(0, 5); got != 0 {
		t.Fatalf("pct(0,5) = %v", got)
	}
}
