package experiments

import (
	"fmt"
	"strings"

	"pdpasim/internal/app"
	"pdpasim/internal/core"
	"pdpasim/internal/metrics"
	"pdpasim/internal/system"
	"pdpasim/internal/workload"
)

func defaultPDPAParams() core.Params { return core.DefaultParams() }

// Table1 reproduces the workload composition table.
func Table1(o Options) (Result, error) {
	o = o.withDefaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-5s", "")
	for _, c := range app.AllClasses() {
		fmt.Fprintf(&sb, "%10s", c)
	}
	sb.WriteByte('\n')
	for _, mix := range []workload.Mix{workload.W1(), workload.W2(), workload.W3(), workload.W4()} {
		fmt.Fprintf(&sb, "%-5s", mix.Name)
		for _, c := range app.AllClasses() {
			if share := mix.Shares[c]; share > 0 {
				fmt.Fprintf(&sb, "%9.0f%%", share*100)
			} else {
				fmt.Fprintf(&sb, "%10s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	// Realized job counts for one seed at each load.
	sb.WriteByte('\n')
	for _, mix := range []workload.Mix{workload.W1(), workload.W2(), workload.W3(), workload.W4()} {
		for _, load := range o.Loads {
			w, err := genWorkload(o, mix, load, o.Seeds[0])
			if err != nil {
				return Result{}, err
			}
			fmt.Fprintf(&sb, "%s load=%3.0f%%: %3d jobs, realized load %.2f, composition %v\n",
				mix.Name, load*100, len(w.Jobs), w.EstimatedLoad(o.Window), w.CountByClass())
		}
	}
	return Result{ID: "tab1", Title: "Workload characteristics (Table 1)", Text: sb.String()}, nil
}

// Table2 reproduces the stability comparison: thread migrations, average
// burst per CPU, and bursts per CPU, for IRIX, PDPA, and Equipartition on
// workload 1 at 100% load.
func Table2(o Options) (Result, error) {
	o = o.withDefaults()
	seed := o.Seeds[0]
	w, err := genWorkload(o, workload.W1(), 1.0, seed)
	if err != nil {
		return Result{}, err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %12s %24s %24s %12s\n",
		"", "Migrations", "Avg exec burst per cpu", "Avg bursts per cpu", "Utilization")
	for _, pk := range []system.PolicyKind{system.IRIX, system.PDPA, system.Equipartition} {
		res, err := system.Run(system.Config{Workload: w, Policy: pk, Seed: seed})
		if err != nil {
			return Result{}, err
		}
		s := res.Stability
		fmt.Fprintf(&sb, "%-8s %12d %21.0f ms %24.1f %11.0f%%\n",
			policyLabel(pk), s.Migrations,
			float64(s.AvgBurst.Duration().Milliseconds()), s.AvgBurstsPerCPU,
			s.Utilization*100)
	}
	sb.WriteString("\n(The paper reports IRIX 159,865 migrations / 243 ms bursts / 2882 bursts per\n" +
		"cpu versus PDPA 66 / 10,782 ms / 41 and Equip 325 / 11,375 ms / 43.)\n")
	return Result{ID: "tab2", Title: "IRIX versus PDPA and Equipartition, workload 1, load=100% (Table 2)", Text: sb.String()}, nil
}

// untunedComparison runs a workload variant with every request forced to 30
// under Equipartition and PDPA — the Tables 3 and 4 setup — and reports
// per-class response/execution, total workload execution time, and the
// multiprogramming level reached.
func untunedComparison(o Options, mix workload.Mix, classes []app.Class) (string, error) {
	var sb strings.Builder
	load := 0.6
	type agg struct {
		resp, exec map[app.Class]float64
		makespan   float64
		maxML      float64
	}
	rows := map[system.PolicyKind]*agg{}
	for _, pk := range []system.PolicyKind{system.Equipartition, system.PDPA} {
		rows[pk] = &agg{resp: map[app.Class]float64{}, exec: map[app.Class]float64{}}
	}
	for _, seed := range o.Seeds {
		w, err := genWorkload(o, mix, load, seed)
		if err != nil {
			return "", err
		}
		untuned := w.WithUniformRequest(30)
		for _, pk := range []system.PolicyKind{system.Equipartition, system.PDPA} {
			res, err := system.Run(system.Config{Workload: untuned, Policy: pk, Seed: seed})
			if err != nil {
				return "", err
			}
			a := rows[pk]
			resp := res.ResponseByClass()
			exec := res.ExecutionByClass()
			for _, c := range classes {
				a.resp[c] += resp[c]
				a.exec[c] += exec[c]
			}
			a.makespan += res.Makespan.Seconds()
			a.maxML += float64(res.MaxMPL)
		}
	}
	n := float64(len(o.Seeds))
	fmt.Fprintf(&sb, "%-8s", "")
	for _, c := range classes {
		fmt.Fprintf(&sb, " %10s %10s", c.String()+" resp", "exec")
	}
	fmt.Fprintf(&sb, " %14s %6s\n", "workload exec", "ML")
	for _, pk := range []system.PolicyKind{system.Equipartition, system.PDPA} {
		a := rows[pk]
		fmt.Fprintf(&sb, "%-8s", policyLabel(pk))
		for _, c := range classes {
			fmt.Fprintf(&sb, " %9.0fs %9.0fs", a.resp[c]/n, a.exec[c]/n)
		}
		fmt.Fprintf(&sb, " %13.0fs %6.0f\n", a.makespan/n, a.maxML/n)
	}
	eq, pd := rows[system.Equipartition], rows[system.PDPA]
	fmt.Fprintf(&sb, "%-8s", "speedup")
	for _, c := range classes {
		fmt.Fprintf(&sb, " %9.0f%% %9.0f%%",
			pct(eq.resp[c], pd.resp[c]), pct(eq.exec[c], pd.exec[c]))
	}
	fmt.Fprintf(&sb, " %13.0f%%\n", pct(eq.makespan, pd.makespan))
	return sb.String(), nil
}

// pct returns the improvement of b over a in the paper's convention:
// positive when PDPA (b) is faster, negative when slower.
func pct(a, b float64) float64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a >= b {
		return (a/b - 1) * 100
	}
	return -(b/a - 1) * 100
}

// Table3 reproduces the workload 3 run with apsi submitted untuned
// (requesting 30 processors), load 60%.
func Table3(o Options) (Result, error) {
	o = o.withDefaults()
	text, err := untunedComparison(o, workload.W3(), []app.Class{app.BT, app.Apsi})
	if err != nil {
		return Result{}, err
	}
	text += "\n(The paper reports Equip 949s/890s response vs PDPA 95s/107s — a ~10x gap —\n" +
		"with workload execution 1993s vs 427s and ML 4 vs 29.)\n"
	return Result{ID: "tab3", Title: "Workload 3, apsi requesting 30 processors (Table 3)", Text: text}, nil
}

// Table4 reproduces the workload 4 run with every application untuned
// (requesting 30 processors), load 60%.
func Table4(o Options) (Result, error) {
	o = o.withDefaults()
	text, err := untunedComparison(o, workload.W4(), app.AllClasses())
	if err != nil {
		return Result{}, err
	}
	text += "\n(The paper reports response-time speedups of 2830%/617%/1006%/109% for\n" +
		"swim/bt/hydro2d/apsi at execution-time costs of -30%..+6%.)\n"
	return Result{ID: "tab4", Title: "Workload 4 not tuned (Table 4)", Text: text}, nil
}

// trimmedMakespan is a helper for ablations: the makespan averaged over
// seeds for one config.
func averagedRuns(o Options, mix workload.Mix, load float64, mk func(w *workload.Workload, seed int64) system.Config) (*metrics.RunResult, float64, error) {
	var last *metrics.RunResult
	total := 0.0
	for _, seed := range o.Seeds {
		w, err := genWorkload(o, mix, load, seed)
		if err != nil {
			return nil, 0, err
		}
		res, err := system.Run(mk(w, seed))
		if err != nil {
			return nil, 0, err
		}
		total += res.Makespan.Seconds()
		last = res
	}
	return last, total / float64(len(o.Seeds)), nil
}
