package periodicity

import (
	"testing"
	"testing/quick"

	"pdpasim/internal/app"
)

// feed returns the indices at which Observe reported a period boundary.
func feed(d *Detector, stream []uint64) []int {
	var marks []int
	for i, s := range stream {
		if d.Observe(s) {
			marks = append(marks, i)
		}
	}
	return marks
}

func repeat(pattern []uint64, n int) []uint64 {
	out := make([]uint64, 0, len(pattern)*n)
	for i := 0; i < n; i++ {
		out = append(out, pattern...)
	}
	return out
}

func TestDetectsSimplePattern(t *testing.T) {
	d := NewDetector(0)
	pattern := []uint64{10, 20, 30}
	marks := feed(d, repeat(pattern, 5))
	if d.Period() != 3 {
		t.Fatalf("period = %d, want 3", d.Period())
	}
	// First detection after three repetitions (index 8), then every 3 samples.
	want := []int{8, 11, 14}
	if len(marks) != len(want) {
		t.Fatalf("marks = %v, want %v", marks, want)
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestDetectsConstantStream(t *testing.T) {
	d := NewDetector(0)
	marks := feed(d, repeat([]uint64{7}, 6))
	if d.Period() != 1 {
		t.Fatalf("period = %d, want 1", d.Period())
	}
	if len(marks) != 4 { // boundary after every sample from the third on
		t.Fatalf("marks = %v", marks)
	}
}

func TestFindsSmallestPeriod(t *testing.T) {
	d := NewDetector(0)
	// ABAB... could be read as period 2 or 4; the smallest must win.
	feed(d, repeat([]uint64{1, 2}, 6))
	if d.Period() != 2 {
		t.Fatalf("period = %d, want 2", d.Period())
	}
}

func TestPatternBreakResets(t *testing.T) {
	d := NewDetector(0)
	feed(d, repeat([]uint64{1, 2, 3}, 4))
	if d.Period() != 3 {
		t.Fatalf("period = %d", d.Period())
	}
	// Break the pattern.
	if d.Observe(99) {
		t.Fatal("broken sample reported as boundary")
	}
	if d.Period() != 0 {
		t.Fatalf("period after break = %d, want 0", d.Period())
	}
	// A new pattern can be learned afterwards.
	feed(d, repeat([]uint64{5, 6}, 4))
	if d.Period() != 2 {
		t.Fatalf("re-detected period = %d, want 2", d.Period())
	}
}

func TestNoFalsePositiveOnAperiodicStream(t *testing.T) {
	d := NewDetector(0)
	stream := make([]uint64, 100)
	for i := range stream {
		stream[i] = uint64(i * i % 97) // no short repetition
	}
	// A few incidental boundaries may fire, but no stable period should
	// survive to the end.
	feed(d, stream)
	if p := d.Period(); p != 0 && d.Confirmations() > 3 {
		t.Fatalf("confirmed period %d on aperiodic stream", p)
	}
}

func TestMaxPeriodBound(t *testing.T) {
	d := NewDetector(2)
	feed(d, repeat([]uint64{1, 2, 3}, 6)) // period 3 > bound 2
	if d.Period() != 0 {
		t.Fatalf("period = %d beyond bound", d.Period())
	}
}

func TestConfirmationsGrow(t *testing.T) {
	d := NewDetector(0)
	feed(d, repeat([]uint64{1, 2}, 5))
	if d.Confirmations() < 3 {
		t.Fatalf("confirmations = %d", d.Confirmations())
	}
}

func TestLongStreamBoundedMemory(t *testing.T) {
	d := NewDetector(8)
	for i := 0; i < 100000; i++ {
		d.Observe(uint64(i % 4))
	}
	if len(d.history) > 4*8 {
		t.Fatalf("history grew unbounded: %d", len(d.history))
	}
	if d.Period() != 4 {
		t.Fatalf("period = %d", d.Period())
	}
}

// TestAppLoopSignatures checks the detector finds every built-in
// application's loop signature — the paper's binary-only monitoring path.
func TestAppLoopSignatures(t *testing.T) {
	for _, c := range app.AllClasses() {
		prof := app.ProfileFor(c)
		d := NewDetector(0)
		marks := feed(d, repeat(prof.LoopSignature, 6))
		if d.Period() != len(prof.LoopSignature) {
			t.Errorf("%s: period = %d, want %d", prof.Name, d.Period(), len(prof.LoopSignature))
		}
		if len(marks) < 3 {
			t.Errorf("%s: only %d boundaries", prof.Name, len(marks))
		}
	}
}

// Property: for any pattern of length 1..6 repeated many times, any
// confirmed period never exceeds the true pattern length, and boundaries
// keep firing (the detector never starves on a periodic stream). Junction
// artifacts may make the detector lock briefly onto a shorter pseudo-period
// and reset; what matters for the SelfAnalyzer is a steady boundary supply.
func TestDetectionProperty(t *testing.T) {
	f := func(raw []byte, lenRaw uint8) bool {
		plen := int(lenRaw)%6 + 1
		if len(raw) < plen {
			return true
		}
		pattern := make([]uint64, plen)
		for i := 0; i < plen; i++ {
			pattern[i] = uint64(raw[i])
		}
		d := NewDetector(0)
		marks := feed(d, repeat(pattern, 16))
		if p := d.Period(); p > plen {
			return false
		}
		// At least one boundary per two repetitions over the last 10 reps.
		late := 0
		for _, m := range marks {
			if m >= 6*plen {
				late++
			}
		}
		return late >= 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
