// Package periodicity implements the Dynamic Periodicity Detector of
// Freitag, Corbalan, and Labarta (IPDPS 2001), the tool the NANOS
// environment uses to find the iterative structure of applications whose
// source is not available (Section 3.1).
//
// The detector consumes the stream of parallel-loop identifiers (the
// addresses of the encapsulated loop functions) as the application executes
// them, and emits a boolean per sample indicating whether that sample begins
// a new period of the detected iteration pattern. The SelfAnalyzer uses
// those period starts as outer-loop iteration boundaries.
package periodicity

// DefaultMaxPeriod bounds the pattern lengths the detector searches.
const DefaultMaxPeriod = 64

// Detector finds the smallest repeating period in a stream of loop
// identifiers. The zero value is not usable; call NewDetector.
type Detector struct {
	maxPeriod int
	history   []uint64
	// period is the currently confirmed period length (0 = none).
	period int
	// confirmed counts how many consecutive full periods matched.
	confirmed int
	// posInPeriod is the index of the next expected sample within the
	// detected period.
	posInPeriod int
}

// NewDetector returns a detector that searches periods up to maxPeriod
// samples long (DefaultMaxPeriod if maxPeriod <= 0).
func NewDetector(maxPeriod int) *Detector {
	if maxPeriod <= 0 {
		maxPeriod = DefaultMaxPeriod
	}
	return &Detector{maxPeriod: maxPeriod}
}

// Period returns the detected period length, or 0 if no period is confirmed
// yet.
func (d *Detector) Period() int {
	if d.confirmed < 3 {
		return 0
	}
	return d.period
}

// Observe feeds one loop identifier and reports whether this sample
// completes a full period of a confirmed pattern — i.e. the next sample
// starts a new outer-loop iteration. Detection requires seeing at least two
// full consecutive repetitions.
func (d *Detector) Observe(loop uint64) bool {
	d.history = append(d.history, loop)
	if len(d.history) > 4*d.maxPeriod {
		// Keep a bounded window: enough for detection and re-detection
		// (the search needs 3×maxPeriod samples).
		d.history = append(d.history[:0], d.history[len(d.history)-3*d.maxPeriod:]...)
	}

	if d.Period() > 0 {
		// Follow the confirmed pattern; fall back to searching if it breaks.
		expected := d.history[len(d.history)-1-d.period]
		if loop == expected {
			d.posInPeriod++
			if d.posInPeriod == d.period {
				d.posInPeriod = 0
				d.confirmed++
				return true
			}
			return false
		}
		d.reset()
		return false
	}

	// Search for the smallest p such that the last 3p samples are three
	// equal repetitions. Requiring three (not two) keeps incidental
	// repetitions at pattern junctions from confirming a wrong short period.
	n := len(d.history)
	for p := 1; p <= d.maxPeriod && 3*p <= n; p++ {
		if equalThirds(d.history[n-3*p:]) {
			d.period = p
			d.confirmed = 3
			d.posInPeriod = 0
			// The current sample completes the third repetition; the next
			// sample starts a new period, so this one is a period *end*,
			// reported as a boundary.
			return true
		}
	}
	return false
}

func (d *Detector) reset() {
	d.period = 0
	d.confirmed = 0
	d.posInPeriod = 0
}

func equalThirds(s []uint64) bool {
	p := len(s) / 3
	for i := 0; i < p; i++ {
		if s[i] != s[p+i] || s[p+i] != s[2*p+i] {
			return false
		}
	}
	return true
}

// Confirmations returns how many consecutive repetitions of the current
// period have been observed (0 when no period is confirmed).
func (d *Detector) Confirmations() int {
	if d.Period() == 0 {
		return 0
	}
	return d.confirmed
}
