package periodicity

import "testing"

// FuzzDetector checks the detector never panics, keeps bounded memory, and
// reports only sane periods for arbitrary loop-address streams.
func FuzzDetector(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1, 2, 3, 1, 2, 3})
	f.Add([]byte{7, 7, 7, 7})
	f.Add([]byte{})
	f.Add([]byte{1, 2, 1, 2, 9, 1, 2, 1, 2})
	f.Fuzz(func(t *testing.T, stream []byte) {
		d := NewDetector(16)
		for _, b := range stream {
			d.Observe(uint64(b))
			if p := d.Period(); p < 0 || p > 16 {
				t.Fatalf("period %d out of range", p)
			}
			if len(d.history) > 4*16 {
				t.Fatalf("history grew to %d", len(d.history))
			}
			if d.Period() == 0 && d.Confirmations() != 0 {
				t.Fatal("confirmations without a period")
			}
		}
	})
}
