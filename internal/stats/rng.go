// Package stats provides the deterministic random-number streams and the
// summary statistics used across the simulator.
//
// All randomness in a simulation run flows from a single 64-bit seed through
// named streams (see NewRNG and RNG.Stream), so that two runs with the same
// seed — or the same workload replayed under two scheduling policies — see
// byte-identical random sequences. This is the repeatability property the
// paper obtains with workload trace files.
package stats

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// RNG is a deterministic random stream. It wraps math/rand with the
// distributions the simulator needs (exponential interarrivals, normally
// distributed measurement noise) and supports deriving independent named
// substreams.
type RNG struct {
	seed int64
	src  *rand.Rand
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{seed: seed, src: rand.New(rand.NewSource(seed))}
}

// InitRNG (re)seeds r in place. A reseeded stream produces exactly the draws
// a freshly constructed NewRNG(seed) would — rand.Rand.Seed reinitializes the
// underlying source to its post-construction state — so callers can recycle
// the ~5 KB source allocation across simulation runs without perturbing any
// byte of output.
func InitRNG(r *RNG, seed int64) {
	r.seed = seed
	if r.src == nil {
		r.src = rand.New(rand.NewSource(seed))
		return
	}
	r.src.Seed(seed)
}

// Stream derives an independent substream identified by name. The substream
// seed depends only on the parent seed and the name, never on how much of the
// parent stream has been consumed, so adding a consumer does not perturb the
// draws seen by existing consumers.
func (r *RNG) Stream(name string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	derived := int64(h.Sum64() ^ (uint64(r.seed)*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019))
	return NewRNG(derived)
}

// StreamInto is Stream writing into an existing RNG: dst is reseeded to the
// identical derived seed without allocating a new source. dst and r may not
// alias.
func (r *RNG) StreamInto(dst *RNG, name string) {
	InitRNG(dst, r.deriveSeed(fnvString(name)))
}

// StreamIntoBytes is StreamInto for a caller-built byte name, avoiding the
// string conversion on hot paths that rebuild the name per run.
func (r *RNG) StreamIntoBytes(dst *RNG, name []byte) {
	InitRNG(dst, r.deriveSeed(fnvBytes(name)))
}

func (r *RNG) deriveSeed(h uint64) int64 {
	return int64(h ^ (uint64(r.seed)*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019))
}

// fnvString/fnvBytes inline hash/fnv's 64a so substream derivation does not
// allocate a hasher. The constants and update order match hash/fnv exactly —
// Stream and StreamInto must derive identical seeds for the same name.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(name string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime64
	}
	return h
}

func fnvBytes(name []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range name {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// Seed returns the seed this stream was created with.
func (r *RNG) Seed() int64 { return r.seed }

// Float64 returns a uniform draw in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform draw in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int { return r.src.Intn(n) }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Exp returns an exponential draw with the given mean. The mean must be
// positive.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("stats: Exp requires positive mean")
	}
	return r.src.ExpFloat64() * mean
}

// Normal returns a normal draw with the given mean and standard deviation.
func (r *RNG) Normal(mean, stddev float64) float64 {
	return r.src.NormFloat64()*stddev + mean
}

// LogNormalFactor returns a multiplicative noise factor with median 1 whose
// log has standard deviation sigma. Used for measurement noise: multiplying
// a duration by the factor keeps it positive regardless of sigma.
func (r *RNG) LogNormalFactor(sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	return math.Exp(r.src.NormFloat64() * sigma)
}

// Poisson returns a Poisson draw with the given mean, using inversion for
// small means and a normal approximation for large ones.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		n := int(math.Round(r.Normal(mean, math.Sqrt(mean))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.src.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Pick returns an index in [0, len(weights)) drawn proportionally to the
// weights. Non-positive weights are treated as zero. If all weights are
// zero it returns 0.
func (r *RNG) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := r.src.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}
