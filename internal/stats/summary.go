package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates scalar observations and reports the usual moments and
// order statistics. The zero value is ready to use.
type Summary struct {
	values []float64
	sum    float64
	sorted bool
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	s.values = append(s.values, v)
	s.sum += v
	s.sorted = false
}

// AddAll records every observation in vs.
func (s *Summary) AddAll(vs []float64) {
	for _, v := range vs {
		s.Add(v)
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return len(s.values) }

// Sum returns the sum of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// Min returns the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.values[0]
}

// Max returns the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.values[len(s.values)-1]
}

// Stddev returns the sample standard deviation (n-1 denominator), or 0 with
// fewer than two observations.
func (s *Summary) Stddev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	ss := 0.0
	for _, v := range s.values {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// CoefficientOfVariation returns stddev/mean, or 0 when the mean is 0.
func (s *Summary) CoefficientOfVariation() float64 {
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return s.Stddev() / m
}

// tCritical95 holds two-sided 95% Student-t critical values for small
// sample sizes (index = degrees of freedom); beyond the table the normal
// approximation 1.96 applies.
var tCritical95 = []float64{0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447,
	2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131}

// ConfidenceInterval95 returns the half-width of the two-sided 95%
// confidence interval of the mean (Student's t for small samples). It
// returns 0 with fewer than two observations.
func (s *Summary) ConfidenceInterval95() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	df := n - 1
	t := 1.96
	if df < len(tCritical95) {
		t = tCritical95[df]
	}
	return t * s.Stddev() / math.Sqrt(float64(n))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between order statistics, or 0 with no observations.
func (s *Summary) Percentile(p float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Median returns the 50th percentile.
func (s *Summary) Median() float64 { return s.Percentile(50) }

func (s *Summary) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// String summarizes the distribution in one line.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f max=%.3f",
		s.N(), s.Mean(), s.Stddev(), s.Min(), s.Median(), s.Max())
}

// TimeWeighted accumulates a piecewise-constant time series (for example the
// multiprogramming level, or the number of allocated CPUs) and reports its
// time-weighted average. Values are weighted by how long they were in effect.
type TimeWeighted struct {
	lastTime  float64
	lastValue float64
	area      float64
	total     float64
	started   bool
	max       float64
	min       float64
}

// Observe records that the series took value v at time t. The previous value
// is assumed to have held from the previous observation until t. Observations
// must have non-decreasing times.
func (tw *TimeWeighted) Observe(t, v float64) {
	if !tw.started {
		tw.started = true
		tw.lastTime = t
		tw.lastValue = v
		tw.max = v
		tw.min = v
		return
	}
	if t < tw.lastTime {
		panic(fmt.Sprintf("stats: TimeWeighted.Observe time went backwards: %v < %v", t, tw.lastTime))
	}
	dt := t - tw.lastTime
	tw.area += tw.lastValue * dt
	tw.total += dt
	tw.lastTime = t
	tw.lastValue = v
	if v > tw.max {
		tw.max = v
	}
	if v < tw.min {
		tw.min = v
	}
}

// Finish closes the series at time t without changing the value.
func (tw *TimeWeighted) Finish(t float64) {
	if tw.started {
		tw.Observe(t, tw.lastValue)
	}
}

// Mean returns the time-weighted average, or 0 if no time has elapsed.
func (tw *TimeWeighted) Mean() float64 {
	if tw.total == 0 {
		return 0
	}
	return tw.area / tw.total
}

// Max returns the largest observed value.
func (tw *TimeWeighted) Max() float64 { return tw.max }

// Min returns the smallest observed value.
func (tw *TimeWeighted) Min() float64 { return tw.min }

// Duration returns the total time covered by the series.
func (tw *TimeWeighted) Duration() float64 { return tw.total }
