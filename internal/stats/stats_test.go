package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	r := NewRNG(7)
	s1 := r.Stream("arrivals")
	// Consuming the parent must not perturb substream derivation.
	for i := 0; i < 50; i++ {
		r.Float64()
	}
	s2 := NewRNG(7).Stream("arrivals")
	for i := 0; i < 100; i++ {
		if s1.Float64() != s2.Float64() {
			t.Fatalf("substream not stable under parent consumption at draw %d", i)
		}
	}
}

func TestRNGStreamsDifferByName(t *testing.T) {
	r := NewRNG(7)
	a := r.Stream("a")
	b := r.Stream("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams %q draws look identical (%d/100 equal)", "a/b", same)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(1)
	var s Summary
	for i := 0; i < 20000; i++ {
		s.Add(r.Exp(3.0))
	}
	if got := s.Mean(); math.Abs(got-3.0) > 0.1 {
		t.Fatalf("Exp(3) mean = %v, want ~3.0", got)
	}
}

func TestExpPanicsOnNonPositiveMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	NewRNG(1).Exp(0)
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(2)
	for _, mean := range []float64{0.5, 4, 20, 200} {
		var s Summary
		for i := 0; i < 20000; i++ {
			s.Add(float64(r.Poisson(mean)))
		}
		if got := s.Mean(); math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", mean, got)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	if got := NewRNG(1).Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := NewRNG(1).Poisson(-1); got != 0 {
		t.Fatalf("Poisson(-1) = %d, want 0", got)
	}
}

func TestLogNormalFactor(t *testing.T) {
	r := NewRNG(3)
	if f := r.LogNormalFactor(0); f != 1 {
		t.Fatalf("sigma=0 factor = %v, want 1", f)
	}
	var s Summary
	for i := 0; i < 10000; i++ {
		f := r.LogNormalFactor(0.05)
		if f <= 0 {
			t.Fatalf("factor %v not positive", f)
		}
		s.Add(math.Log(f))
	}
	if math.Abs(s.Mean()) > 0.01 {
		t.Fatalf("log-factor mean = %v, want ~0", s.Mean())
	}
	if math.Abs(s.Stddev()-0.05) > 0.01 {
		t.Fatalf("log-factor stddev = %v, want ~0.05", s.Stddev())
	}
}

func TestPickProportional(t *testing.T) {
	r := NewRNG(4)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[r.Pick([]float64{1, 2, 1})]++
	}
	if frac := float64(counts[1]) / 30000; math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("middle weight picked %v of the time, want ~0.5", frac)
	}
}

func TestPickDegenerate(t *testing.T) {
	r := NewRNG(5)
	if got := r.Pick([]float64{0, 0}); got != 0 {
		t.Fatalf("all-zero weights pick = %d, want 0", got)
	}
	if got := r.Pick([]float64{-1, 0, 5}); got != 2 {
		t.Fatalf("only positive weight pick = %d, want 2", got)
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	s.AddAll([]float64{4, 1, 3, 2})
	if s.N() != 4 || s.Sum() != 10 {
		t.Fatalf("N=%d Sum=%v", s.N(), s.Sum())
	}
	if s.Mean() != 2.5 {
		t.Fatalf("Mean=%v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Fatalf("Min=%v Max=%v", s.Min(), s.Max())
	}
	if s.Median() != 2.5 {
		t.Fatalf("Median=%v", s.Median())
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Stddev()-want) > 1e-12 {
		t.Fatalf("Stddev=%v want %v", s.Stddev(), want)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Stddev() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestSummaryPercentileBounds(t *testing.T) {
	var s Summary
	s.AddAll([]float64{10, 20, 30})
	if s.Percentile(-5) != 10 || s.Percentile(0) != 10 {
		t.Fatal("low percentile should clamp to min")
	}
	if s.Percentile(100) != 30 || s.Percentile(150) != 30 {
		t.Fatal("high percentile should clamp to max")
	}
	if got := s.Percentile(50); got != 20 {
		t.Fatalf("p50=%v want 20", got)
	}
}

func TestSummaryAddAfterSortedQuery(t *testing.T) {
	var s Summary
	s.AddAll([]float64{3, 1})
	_ = s.Min() // forces sort
	s.Add(0)
	if s.Min() != 0 {
		t.Fatalf("Min after late Add = %v, want 0", s.Min())
	}
}

func TestTimeWeightedMean(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(0, 2)
	tw.Observe(10, 4)
	tw.Observe(20, 0)
	tw.Finish(30)
	// 2 for 10s, 4 for 10s, 0 for 10s => mean 2.
	if got := tw.Mean(); got != 2 {
		t.Fatalf("Mean=%v want 2", got)
	}
	if tw.Max() != 4 || tw.Min() != 0 {
		t.Fatalf("Max=%v Min=%v", tw.Max(), tw.Min())
	}
	if tw.Duration() != 30 {
		t.Fatalf("Duration=%v want 30", tw.Duration())
	}
}

func TestTimeWeightedEmpty(t *testing.T) {
	var tw TimeWeighted
	if tw.Mean() != 0 {
		t.Fatalf("empty Mean=%v", tw.Mean())
	}
	tw.Finish(10) // must not panic when never observed
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time did not panic")
		}
	}()
	var tw TimeWeighted
	tw.Observe(5, 1)
	tw.Observe(4, 1)
}

// Property: the mean of a Summary always lies between Min and Max, and the
// percentile function is monotone.
func TestSummaryProperties(t *testing.T) {
	f := func(vs []float64) bool {
		var s Summary
		clean := vs[:0]
		for _, v := range vs {
			// Keep the domain finite and far from overflow: the invariant
			// under test is about ordering, not extreme-magnitude arithmetic.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s.AddAll(clean)
		if s.Mean() < s.Min()-1e-9*math.Abs(s.Min())-1e-9 ||
			s.Mean() > s.Max()+1e-9*math.Abs(s.Max())+1e-9 {
			return false
		}
		prev := s.Percentile(0)
		for p := 10.0; p <= 100; p += 10 {
			cur := s.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Poisson draws are always non-negative and deterministic per seed.
func TestPoissonProperties(t *testing.T) {
	f := func(seed int64, mean float64) bool {
		m := math.Mod(math.Abs(mean), 100)
		a := NewRNG(seed).Poisson(m)
		b := NewRNG(seed).Poisson(m)
		return a >= 0 && a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConfidenceInterval95(t *testing.T) {
	var s Summary
	if s.ConfidenceInterval95() != 0 {
		t.Fatal("empty CI should be 0")
	}
	s.Add(5)
	if s.ConfidenceInterval95() != 0 {
		t.Fatal("single-sample CI should be 0")
	}
	// Two samples: df=1, t=12.706, sd = sqrt(2)/sqrt(2)... values 4 and 6:
	// mean 5, sd = sqrt(2), CI = 12.706*sqrt(2)/sqrt(2) = 12.706.
	s.Add(7) // values 5,7: sd = sqrt(2), CI = 12.706*sqrt(2)/sqrt(2)=12.706
	want := 12.706
	if got := s.ConfidenceInterval95(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("CI = %v, want %v", got, want)
	}
	// Large n approaches the normal z: CI ~ 1.96*sd/sqrt(n).
	var big Summary
	r := NewRNG(9)
	for i := 0; i < 400; i++ {
		big.Add(r.Normal(10, 2))
	}
	approx := 1.96 * big.Stddev() / math.Sqrt(400)
	if got := big.ConfidenceInterval95(); math.Abs(got-approx) > 1e-9 {
		t.Fatalf("large-n CI = %v, want %v", got, approx)
	}
	if big.ConfidenceInterval95() > 0.3 {
		t.Fatalf("CI suspiciously wide: %v", big.ConfidenceInterval95())
	}
}
