// Package sweep is the parallel grid-execution engine: it fans a
// policies × mixes × loads × seeds grid out across a bounded worker pool,
// memoizes workload generation so each (mix, load, seed) trace is built once
// and shared read-only by every policy that replays it, and aggregates seed
// replicates into per-cell summaries (mean, stddev, 95% CI).
//
// The engine is deterministic: the grid is enumerated in a fixed order
// (mixes → loads → policies → seeds), workers write results by task index,
// and all aggregation happens single-threaded after the pool drains, so the
// output is byte-identical regardless of the worker count. Only the order of
// Progress callbacks depends on scheduling.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"pdpasim/internal/core"
	"pdpasim/internal/metrics"
	"pdpasim/internal/sim"
	"pdpasim/internal/stats"
	"pdpasim/internal/system"
	"pdpasim/internal/workload"
)

// Config describes a sweep grid and how to execute it.
type Config struct {
	// Policies, Mixes, Loads, and Seeds span the grid. A cell is one
	// (policy, mix, load) combination; the seeds are its replicates.
	// Policies and Mixes are required; Loads defaults to {1.0} and Seeds to
	// {0} (one replicate of the default trace).
	Policies []system.PolicyKind
	Mixes    []string
	Loads    []float64
	Seeds    []int64

	// NCPU is the machine size (default 60); Window the submission window
	// (default 300 s). UniformRequest, when positive, forces every job's
	// request to that value.
	NCPU           int
	Window         sim.Time
	UniformRequest int

	// FixedMPL, NoiseSigma, PDPAParams, and NUMANodeSize configure each run
	// exactly as system.Config does. The workload seed doubles as the noise
	// seed, matching the repository's experiment methodology.
	FixedMPL     int
	NoiseSigma   float64
	PDPAParams   *core.Params
	NUMANodeSize int

	// Workers bounds the worker pool; 0 means runtime.NumCPU(). The pool
	// never exceeds GOMAXPROCS (or the task count): extra workers cannot run
	// in parallel anyway and their goroutines only thrash the scheduler and
	// the per-worker arenas.
	Workers int

	// Throughput > 1 enables coarse throughput mode for every run (see
	// system.Config.Throughput): iterations are fused so million-job grids
	// process far fewer events, at the cost of sampled — still
	// deterministic, but not byte-equal to exact mode — measurements.
	Throughput int

	// Tweak, when set, adjusts each run's configuration after the standard
	// fields are filled (the experiment harness uses it for per-artifact
	// variations). It must be safe for concurrent calls and must leave the
	// shared Workload untouched.
	Tweak func(*system.Config)

	// Progress, when set, is called after every completed run. Calls are
	// serialized but arrive in completion order, which depends on
	// scheduling.
	Progress func(Progress)
}

// Task is one point of the grid.
type Task struct {
	Policy system.PolicyKind
	Mix    string
	Load   float64
	Seed   int64
	// Cell is the index into Result.Cells of the cell this task replicates.
	Cell int
}

// Progress reports sweep advancement after one completed run.
type Progress struct {
	// Done runs out of Total are complete.
	Done, Total int
	// Task is the run that just finished.
	Task Task
	// CellDone reports that this run was its cell's last replicate;
	// CellsDone counts completed cells out of Cells.
	CellDone         bool
	CellsDone, Cells int
}

// Aggregate summarizes one metric across a cell's seed replicates.
type Aggregate struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	// CI95 is the half-width of the 95% confidence interval of the mean
	// (Student's t for small samples).
	CI95 float64 `json:"ci95"`
}

// Cell is the aggregated result of one (policy, mix, load) grid cell.
type Cell struct {
	Policy string  `json:"policy"`
	Mix    string  `json:"mix"`
	Load   float64 `json:"load"`
	Seeds  []int64 `json:"seeds"`

	Makespan    Aggregate `json:"makespan_s"`
	AvgMPL      Aggregate `json:"avg_mpl"`
	MaxMPL      Aggregate `json:"max_mpl"`
	Utilization Aggregate `json:"utilization"`
	Migrations  Aggregate `json:"migrations"`
	AvgBurstMS  Aggregate `json:"avg_burst_ms"`

	// Response and Execution aggregate the per-application average response
	// and execution times (seconds), keyed by application name.
	Response  map[string]Aggregate `json:"response_s_by_app"`
	Execution map[string]Aggregate `json:"execution_s_by_app"`
}

// Result is a completed sweep.
type Result struct {
	// Tasks enumerates the grid in execution order; Runs holds the
	// corresponding run exports, index-aligned with Tasks. Cells aggregates
	// the replicates per (policy, mix, load), in mixes → loads → policies
	// order.
	Tasks []Task
	Runs  []metrics.Export
	Cells []Cell

	raw []*metrics.RunResult
	idx map[taskKey]int
}

type taskKey struct {
	policy system.PolicyKind
	mix    string
	load   float64
	seed   int64
}

// Run returns the full result of one grid point, or nil if the point is not
// part of the grid.
func (r *Result) Run(policy system.PolicyKind, mix string, load float64, seed int64) *metrics.RunResult {
	if i, ok := r.idx[taskKey{policy, mix, load, seed}]; ok {
		return r.raw[i]
	}
	return nil
}

func (c Config) withDefaults() Config {
	if len(c.Loads) == 0 {
		c.Loads = []float64{1.0}
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{0}
	}
	if c.NCPU == 0 {
		c.NCPU = 60
	}
	if c.Window == 0 {
		c.Window = 300 * sim.Second
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if max := runtime.GOMAXPROCS(0); c.Workers > max {
		c.Workers = max
	}
	return c
}

// Validate checks the grid without running it: the axes must be non-empty
// (after defaulting) and every mix known.
func (c Config) Validate() error {
	if len(c.Policies) == 0 {
		return fmt.Errorf("sweep: no policies")
	}
	if len(c.Mixes) == 0 {
		return fmt.Errorf("sweep: no mixes")
	}
	for _, m := range c.Mixes {
		if _, err := workload.MixByName(m); err != nil {
			return err
		}
	}
	for _, l := range c.Loads {
		if l < 0 {
			return fmt.Errorf("sweep: negative load %v", l)
		}
	}
	switch {
	case c.NCPU < 0:
		return fmt.Errorf("sweep: negative machine size %d", c.NCPU)
	case c.Window < 0:
		return fmt.Errorf("sweep: negative submission window %v", c.Window)
	case c.UniformRequest < 0:
		return fmt.Errorf("sweep: negative uniform request %d", c.UniformRequest)
	case c.FixedMPL < 0:
		return fmt.Errorf("sweep: negative multiprogramming level %d", c.FixedMPL)
	case c.NUMANodeSize < 0:
		return fmt.Errorf("sweep: negative NUMA node size %d", c.NUMANodeSize)
	case c.Throughput < 0:
		return fmt.Errorf("sweep: negative throughput stride %d", c.Throughput)
	}
	if c.PDPAParams != nil {
		if err := c.PDPAParams.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// wcacheEntry memoizes one workload build: the first task that needs the
// trace generates it, every other task sharing the key blocks on the Once
// and then replays the same read-only Workload.
type wcacheEntry struct {
	once sync.Once
	w    *workload.Workload
	err  error
}

type wkey struct {
	mix  string
	load float64
	seed int64
}

// Run executes the grid. Workers pull tasks from a shared queue and write
// results by task index; aggregation happens after the pool drains, so the
// Result (and any serialization of it) is independent of Workers. On error
// or cancellation the remaining tasks are abandoned and the first error in
// task order is returned.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	// Enumerate the grid: cells in mixes → loads → policies order, each
	// cell's seeds contiguous in task order.
	var tasks []Task
	cells := 0
	for _, mix := range cfg.Mixes {
		for _, load := range cfg.Loads {
			for _, pk := range cfg.Policies {
				for _, seed := range cfg.Seeds {
					tasks = append(tasks, Task{Policy: pk, Mix: mix, Load: load, Seed: seed, Cell: cells})
				}
				cells++
			}
		}
	}

	// One memo entry per distinct trace; every policy replaying the same
	// (mix, load, seed) shares one generated Workload.
	memo := make(map[wkey]*wcacheEntry)
	for _, t := range tasks {
		k := wkey{t.Mix, t.Load, t.Seed}
		if memo[k] == nil {
			memo[k] = &wcacheEntry{}
		}
	}
	buildWorkload := func(k wkey) (*workload.Workload, error) {
		e := memo[k]
		e.once.Do(func() {
			mix, err := workload.MixByName(k.mix)
			if err != nil {
				e.err = err
				return
			}
			w, err := workload.Generate(workload.GenConfig{
				Mix: mix, Load: k.load, NCPU: cfg.NCPU, Window: cfg.Window, Seed: k.seed,
			})
			if err != nil {
				e.err = err
				return
			}
			if cfg.UniformRequest > 0 {
				w = w.WithUniformRequest(cfg.UniformRequest)
			}
			e.w = w
		})
		return e.w, e.err
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	raw := make([]*metrics.RunResult, len(tasks))
	errs := make([]error, len(tasks))

	var (
		progressMu  sync.Mutex
		done        int
		cellsDone   int
		cellPending = make([]int, cells)
	)
	for _, t := range tasks {
		cellPending[t.Cell]++
	}
	reportProgress := func(t Task) {
		if cfg.Progress == nil {
			return
		}
		progressMu.Lock()
		done++
		cellPending[t.Cell]--
		cellDone := cellPending[t.Cell] == 0
		if cellDone {
			cellsDone++
		}
		p := Progress{
			Done: done, Total: len(tasks), Task: t,
			CellDone: cellDone, CellsDone: cellsDone, Cells: cells,
		}
		progressMu.Unlock()
		cfg.Progress(p)
	}

	runTask := func(sys *system.System, i int) {
		t := tasks[i]
		w, err := buildWorkload(wkey{t.Mix, t.Load, t.Seed})
		if err != nil {
			errs[i] = err
			cancel()
			return
		}
		sc := system.Config{
			Workload:     w,
			Policy:       t.Policy,
			PDPAParams:   cfg.PDPAParams,
			FixedMPL:     cfg.FixedMPL,
			NoiseSigma:   cfg.NoiseSigma,
			Seed:         t.Seed,
			NUMANodeSize: cfg.NUMANodeSize,
			Throughput:   cfg.Throughput,
		}
		if cfg.Tweak != nil {
			cfg.Tweak(&sc)
		}
		res, err := sys.RunContext(runCtx, sc)
		if err != nil {
			errs[i] = fmt.Errorf("%s/%s/load %.0f%%/seed %d: %w", t.Policy, t.Mix, t.Load*100, t.Seed, err)
			cancel()
			return
		}
		raw[i] = res
		reportProgress(t)
	}

	workers := cfg.Workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	// Dispatch longest-first (LPT): IRIX runs simulate every scheduling
	// quantum and cost several times a space-sharing run, so queuing them
	// ahead of the rest keeps the final stretch of the pool balanced.
	// Dispatch order cannot affect the output — results land at their task
	// index and aggregation happens after the join.
	order := make([]int, 0, len(tasks))
	for i, t := range tasks {
		if t.Policy == system.IRIX {
			order = append(order, i)
		}
	}
	for i, t := range tasks {
		if t.Policy != system.IRIX {
			order = append(order, i)
		}
	}
	// Workers pull contiguous chunks of the dispatch order instead of single
	// indexes: a few channel operations per worker rather than one per task,
	// so the pool's fixed overhead stays negligible even for grids of tiny
	// runs. Four chunks per worker keeps the tail balanced.
	chunk := len(order) / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	type span struct{ lo, hi int } // half-open range into order
	queue := make(chan span, (len(order)+chunk-1)/chunk)
	for lo := 0; lo < len(order); lo += chunk {
		hi := lo + chunk
		if hi > len(order) {
			hi = len(order)
		}
		queue <- span{lo, hi}
	}
	close(queue)
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One reusable simulation environment per worker: every run in
			// this worker's chunks recycles the same arenas.
			sys := system.NewSystem()
			for sp := range queue {
				for _, i := range order[sp.lo:sp.hi] {
					if runCtx.Err() != nil {
						errs[i] = runCtx.Err()
						continue
					}
					runTask(sys, i)
				}
			}
		}()
	}
	wg.Wait()

	// Error selection is deterministic: the parent context's own error wins
	// (a cancelled sweep reports cancellation, not whichever task it
	// happened to abort), then the first failing task in grid order.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		// Tasks aborted because a peer failed report wrapped cancellations;
		// the peer's own error is the one to surface.
		if !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	// Aggregation runs single-threaded over the index-ordered results: the
	// floating-point summation order — and therefore every output byte — is
	// fixed regardless of how tasks interleaved across workers.
	res := &Result{
		Tasks: tasks,
		Runs:  make([]metrics.Export, len(tasks)),
		Cells: make([]Cell, 0, cells),
		raw:   raw,
		idx:   make(map[taskKey]int, len(tasks)),
	}
	for i, t := range tasks {
		res.Runs[i] = raw[i].ToExport()
		res.idx[taskKey{t.Policy, t.Mix, t.Load, t.Seed}] = i
	}
	nseeds := len(cfg.Seeds)
	for c := 0; c < cells; c++ {
		first := tasks[c*nseeds]
		res.Cells = append(res.Cells, Summarize(
			string(first.Policy), first.Mix, first.Load, cfg.Seeds,
			res.Runs[c*nseeds:(c+1)*nseeds]))
	}
	return res, nil
}

// Summarize aggregates one cell's seed replicates. It is shared by the
// in-process engine and the pdpad daemon's sweep endpoint so both produce
// the same cell schema from the same run exports.
func Summarize(policy, mix string, load float64, seeds []int64, runs []metrics.Export) Cell {
	c := Cell{
		Policy: policy, Mix: mix, Load: load,
		Seeds:     append([]int64(nil), seeds...),
		Response:  map[string]Aggregate{},
		Execution: map[string]Aggregate{},
	}
	var makespan, avgMPL, maxMPL, util, migr, burst stats.Summary
	respVals := map[string]*stats.Summary{}
	execVals := map[string]*stats.Summary{}
	for _, r := range runs {
		makespan.Add(r.MakespanS)
		avgMPL.Add(r.AvgMPL)
		maxMPL.Add(float64(r.MaxMPL))
		util.Add(r.Util)
		migr.Add(float64(r.Migrations))
		burst.Add(r.AvgBurstMS)
		addByApp(respVals, r.Response)
		addByApp(execVals, r.Execution)
	}
	c.Makespan = aggregate(&makespan)
	c.AvgMPL = aggregate(&avgMPL)
	c.MaxMPL = aggregate(&maxMPL)
	c.Utilization = aggregate(&util)
	c.Migrations = aggregate(&migr)
	c.AvgBurstMS = aggregate(&burst)
	for app, s := range respVals {
		c.Response[app] = aggregate(s)
	}
	for app, s := range execVals {
		c.Execution[app] = aggregate(s)
	}
	return c
}

func addByApp(dst map[string]*stats.Summary, vals map[string]float64) {
	for app, v := range vals {
		s := dst[app]
		if s == nil {
			s = &stats.Summary{}
			dst[app] = s
		}
		s.Add(v)
	}
}

func aggregate(s *stats.Summary) Aggregate {
	return Aggregate{N: s.N(), Mean: s.Mean(), Stddev: s.Stddev(), CI95: s.ConfidenceInterval95()}
}
