package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"pdpasim/internal/metrics"
	"pdpasim/internal/sim"
	"pdpasim/internal/system"
	"pdpasim/internal/workload"
)

// smallGrid keeps the tests fast: a short window and a small machine.
func smallGrid() Config {
	return Config{
		Policies: []system.PolicyKind{system.PDPA, system.Equipartition},
		Mixes:    []string{"w1"},
		Loads:    []float64{1.0},
		Seeds:    []int64{1, 2},
		NCPU:     32,
		Window:   60 * sim.Second,
	}
}

// TestRunMatchesDirectSimulation proves the engine is a pure reorganization:
// every grid point equals the same spec run directly through system.Run,
// byte for byte, despite the shared memoized workload.
func TestRunMatchesDirectSimulation(t *testing.T) {
	cfg := smallGrid()
	cfg.Workers = 4
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 4 || len(res.Runs) != 4 {
		t.Fatalf("expected 4 tasks, got %d tasks / %d runs", len(res.Tasks), len(res.Runs))
	}
	for i, task := range res.Tasks {
		mix, err := workload.MixByName(task.Mix)
		if err != nil {
			t.Fatal(err)
		}
		w, err := workload.Generate(workload.GenConfig{
			Mix: mix, Load: task.Load, NCPU: cfg.NCPU, Window: cfg.Window, Seed: task.Seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		direct, err := system.Run(system.Config{Workload: w, Policy: task.Policy, Seed: task.Seed})
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(direct.ToExport())
		got, _ := json.Marshal(res.Runs[i])
		if string(want) != string(got) {
			t.Fatalf("task %d (%s/%s/seed %d): sweep result differs from direct run",
				i, task.Policy, task.Mix, task.Seed)
		}
	}
}

// TestDeterministicAcrossWorkers is the engine's core guarantee: the
// serialized result must be byte-identical no matter how many workers
// executed the grid.
func TestDeterministicAcrossWorkers(t *testing.T) {
	var baseline []byte
	for _, workers := range []int{1, 2, 4} {
		cfg := smallGrid()
		cfg.Workers = workers
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := json.Marshal(struct {
			Tasks []Task
			Runs  []metrics.Export
			Cells []Cell
		}{res.Tasks, res.Runs, res.Cells})
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = out
			continue
		}
		if string(out) != string(baseline) {
			t.Fatalf("workers=%d produced different bytes than workers=1", workers)
		}
	}
}

// TestCancellationMidGrid cancels from the first progress callback and
// expects the sweep to abort in-flight simulations and report cancellation.
func TestCancellationMidGrid(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := smallGrid()
	cfg.Seeds = []int64{1, 2, 3, 4}
	cfg.Workers = 2
	var fired atomic.Int32
	cfg.Progress = func(p Progress) {
		if fired.Add(1) == 1 {
			cancel()
		}
	}
	res, err := Run(ctx, cfg)
	if res != nil {
		t.Fatal("cancelled sweep returned a result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}

func TestProgressCounts(t *testing.T) {
	cfg := smallGrid()
	cfg.Workers = 3
	var runsSeen, cellsSeen atomic.Int32
	var lastDone, lastCells atomic.Int32
	cfg.Progress = func(p Progress) {
		runsSeen.Add(1)
		if p.CellDone {
			cellsSeen.Add(1)
		}
		if p.Done == p.Total {
			lastDone.Store(int32(p.Done))
			lastCells.Store(int32(p.CellsDone))
		}
	}
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if got := runsSeen.Load(); got != 4 {
		t.Fatalf("progress fired %d times, want 4", got)
	}
	if got := cellsSeen.Load(); got != 2 {
		t.Fatalf("saw %d completed cells, want 2", got)
	}
	if lastDone.Load() != 4 || lastCells.Load() != 2 {
		t.Fatalf("final progress reported %d/%d done, %d cells", lastDone.Load(), 4, lastCells.Load())
	}
}

func TestResultLookup(t *testing.T) {
	cfg := smallGrid()
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r := res.Run(system.PDPA, "w1", 1.0, 2); r == nil {
		t.Fatal("grid point missing from lookup")
	} else if r.Policy != "PDPA" {
		t.Fatalf("lookup returned wrong run: %s", r.Policy)
	}
	if r := res.Run(system.IRIX, "w1", 1.0, 2); r != nil {
		t.Fatal("lookup invented a run outside the grid")
	}
}

func TestConfigValidate(t *testing.T) {
	base := smallGrid()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no policies", func(c *Config) { c.Policies = nil }},
		{"no mixes", func(c *Config) { c.Mixes = nil }},
		{"unknown mix", func(c *Config) { c.Mixes = []string{"w9"} }},
		{"negative load", func(c *Config) { c.Loads = []float64{-0.5} }},
		{"negative ncpu", func(c *Config) { c.NCPU = -1 }},
		{"negative window", func(c *Config) { c.Window = -sim.Second }},
		{"negative uniform request", func(c *Config) { c.UniformRequest = -1 }},
		{"negative mpl", func(c *Config) { c.FixedMPL = -2 }},
		{"negative numa node size", func(c *Config) { c.NUMANodeSize = -4 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := Run(context.Background(), cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestSummarize(t *testing.T) {
	runs := []metrics.Export{
		{MakespanS: 100, AvgMPL: 2, MaxMPL: 3, Util: 0.5, Migrations: 10, AvgBurstMS: 50,
			Response: map[string]float64{"swim": 10}, Execution: map[string]float64{"swim": 8}},
		{MakespanS: 110, AvgMPL: 4, MaxMPL: 5, Util: 0.7, Migrations: 20, AvgBurstMS: 70,
			Response: map[string]float64{"swim": 20}, Execution: map[string]float64{"swim": 12}},
	}
	c := Summarize("pdpa", "w1", 1.0, []int64{1, 2}, runs)
	if c.Makespan.N != 2 || c.Makespan.Mean != 105 {
		t.Fatalf("makespan aggregate wrong: %+v", c.Makespan)
	}
	if math.Abs(c.Makespan.Stddev-math.Sqrt(50)) > 1e-9 {
		t.Fatalf("makespan stddev wrong: %v", c.Makespan.Stddev)
	}
	if c.Response["swim"].Mean != 15 || c.Execution["swim"].Mean != 10 {
		t.Fatalf("per-app aggregates wrong: %+v / %+v", c.Response, c.Execution)
	}
	if c.Makespan.CI95 <= 0 {
		t.Fatal("CI95 not computed")
	}
}
