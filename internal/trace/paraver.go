package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Paraver export: the paper visualizes its scpus traces with the Paraver
// tool (Labarta et al.). This writer emits the recorder's burst history in
// the Paraver trace format (.prv) so the views of Fig. 5 can be opened in
// the real tool: a header describing the resource hierarchy, then one state
// record per burst.
//
// The subset written here:
//
//	#Paraver (dd/mm/yy at hh:mm):ftime:nNodes(nCPUs):nAppl:appl1,...
//	1:cpu:appl:task:thread:begin:end:state
//
// Record type 1 is a state record; state 1 means "running". CPUs,
// applications, tasks, and threads are numbered from 1. Idle periods carry
// no records (Paraver renders them as idle). Times are in microseconds, the
// recorder's native resolution.

// paraverRunning is the Paraver state value for a running burst.
const paraverRunning = 1

// WriteParaver writes the recorded history as a .prv trace. Jobs become
// Paraver applications with a single task whose thread count is the number
// of CPUs the job ever used. The recording must be closed first.
func (r *Recorder) WriteParaver(w io.Writer) error {
	if !r.closed {
		return fmt.Errorf("trace: close the recorder before exporting")
	}
	bw := bufio.NewWriter(w)

	jobs := r.JobsSeen()
	jobIndex := make(map[int]int, len(jobs)) // job id -> 1-based appl number
	for i, j := range jobs {
		jobIndex[j] = i + 1
	}

	// Header: date placeholder, total time, one node with NCPU CPUs, and
	// the application list (each: 1 task with n threads mapped to node 1).
	fmt.Fprintf(bw, "#Paraver (01/01/00 at 00:00):%d_ns:1(%d):%d", int64(r.end), r.ncpu, len(jobs))
	cpusOf := make(map[int]map[int]bool, len(jobs))
	for _, b := range r.bursts {
		if cpusOf[b.Job] == nil {
			cpusOf[b.Job] = map[int]bool{}
		}
		cpusOf[b.Job][b.CPU] = true
	}
	for _, j := range jobs {
		fmt.Fprintf(bw, ":1(%d:1)", len(cpusOf[j]))
	}
	fmt.Fprintln(bw)

	// State records, sorted by begin time for well-formedness.
	bursts := make([]Burst, len(r.bursts))
	copy(bursts, r.bursts)
	sort.Slice(bursts, func(i, j int) bool {
		if bursts[i].Start != bursts[j].Start {
			return bursts[i].Start < bursts[j].Start
		}
		return bursts[i].CPU < bursts[j].CPU
	})
	// Thread numbering per job: a burst's thread is the rank of its CPU in
	// the job's CPU set (stable across the run).
	threadOf := make(map[int]map[int]int, len(jobs))
	for _, j := range jobs {
		cpus := make([]int, 0, len(cpusOf[j]))
		for cpu := range cpusOf[j] {
			cpus = append(cpus, cpu)
		}
		sort.Ints(cpus)
		threadOf[j] = make(map[int]int, len(cpus))
		for rank, cpu := range cpus {
			threadOf[j][cpu] = rank + 1
		}
	}
	for _, b := range bursts {
		fmt.Fprintf(bw, "1:%d:%d:1:%d:%d:%d:%d\n",
			b.CPU+1, jobIndex[b.Job], threadOf[b.Job][b.CPU],
			int64(b.Start), int64(b.End), paraverRunning)
	}
	return bw.Flush()
}
