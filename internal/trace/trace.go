// Package trace records what every CPU executed over time, in the spirit of
// the paper's scpus/Paraver tooling.
//
// The recorder is fed CPU assignment changes by the machine model and job
// lifecycle events by the system driver. From the resulting burst list it
// derives the stability metrics of Table 2 (thread migrations, average burst
// duration per CPU, average number of bursts per CPU), the execution views
// of Fig. 5 (ASCII timeline rendering), and the multiprogramming-level
// timeline of Fig. 8.
//
// Every stored series is run-length encoded: per-CPU assignment streams
// collapse into bursts (one record per ownership change, not one per
// quantum), and the MPL and per-job allocation series drop consecutive
// duplicates. Per-job state (allocation histories, busy time) lives in dense
// slices indexed by the workload's small integer job ids, keeping the
// recorder off the map-hash path the per-quantum callers would otherwise
// pay.
package trace

import (
	"pdpasim/internal/sim"
)

// NoJob marks a CPU as idle in assignment records.
const NoJob = -1

// Burst is a maximal interval during which one CPU continuously executed the
// same job. Idle periods are not stored as bursts.
type Burst struct {
	CPU   int
	Job   int
	Start sim.Time
	End   sim.Time
}

// Duration returns the burst length.
func (b Burst) Duration() sim.Time { return b.End - b.Start }

// TimePoint is one step of a piecewise-constant integer time series.
type TimePoint struct {
	At    sim.Time
	Value int
}

// Recorder accumulates the execution history of one simulation run. The zero
// value is unusable; call NewRecorder.
type Recorder struct {
	ncpu       int
	current    []int      // job per CPU, NoJob when idle
	burstStart []sim.Time // start of the current burst per CPU
	bursts     []Burst
	migrations int
	mpl        []TimePoint
	allocs     [][]TimePoint // per-job allocation history, dense by job id
	closed     bool
	end        sim.Time

	// KeepBursts controls whether closed bursts are stored (needed for
	// rendering and per-burst statistics). Aggregate counters are always
	// maintained. Defaults to true.
	KeepBursts bool

	burstCount    []int      // per CPU
	burstDuration []sim.Time // per CPU, sum over closed bursts
	jobBusy       []sim.Time // dense by job id
}

// NewRecorder returns a recorder for a machine with ncpu CPUs, all idle at
// time zero.
func NewRecorder(ncpu int) *Recorder {
	r := &Recorder{
		ncpu:          ncpu,
		current:       make([]int, ncpu),
		burstStart:    make([]sim.Time, ncpu),
		KeepBursts:    true,
		burstCount:    make([]int, ncpu),
		burstDuration: make([]sim.Time, ncpu),
	}
	for i := range r.current {
		r.current[i] = NoJob
	}
	return r
}

// NCPU returns the number of CPUs being recorded.
func (r *Recorder) NCPU() int { return r.ncpu }

// Reset returns the recorder to the state NewRecorder(ncpu) would produce
// while keeping every backing array — the per-CPU tables, the burst and MPL
// series, and each job's allocation history — so a reused recorder appends
// its next run without reallocating. KeepBursts is preserved.
func (r *Recorder) Reset(ncpu int) {
	if ncpu != r.ncpu {
		r.ncpu = ncpu
		r.current = resizeInts(r.current, ncpu)
		r.burstStart = resizeTimes(r.burstStart, ncpu)
		r.burstCount = resizeInts(r.burstCount, ncpu)
		r.burstDuration = resizeTimes(r.burstDuration, ncpu)
	}
	for i := range r.current {
		r.current[i] = NoJob
		r.burstStart[i] = 0
		r.burstCount[i] = 0
		r.burstDuration[i] = 0
	}
	r.bursts = r.bursts[:0]
	r.migrations = 0
	r.mpl = r.mpl[:0]
	// The outer allocs and jobBusy tables keep their length: their grow loops
	// extend by appending zero values, so emptied inner histories and zeroed
	// busy counters are indistinguishable from a fresh recorder — and the
	// per-job history arrays (the dominant trace allocation) are recycled.
	for i := range r.allocs {
		r.allocs[i] = r.allocs[i][:0]
	}
	for i := range r.jobBusy {
		r.jobBusy[i] = 0
	}
	r.closed = false
	r.end = 0
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func resizeTimes(s []sim.Time, n int) []sim.Time {
	if cap(s) < n {
		return make([]sim.Time, n)
	}
	return s[:n]
}

// Assign records that cpu starts executing job at time t. Assigning the job
// the CPU is already running is a no-op (the burst continues). Assigning
// NoJob idles the CPU.
func (r *Recorder) Assign(t sim.Time, cpu, job int) {
	if cpu < 0 || cpu >= r.ncpu {
		panic("trace: CPU index out of range")
	}
	prev := r.current[cpu]
	if prev == job {
		return
	}
	if prev != NoJob {
		r.closeBurst(t, cpu)
	}
	r.current[cpu] = job
	if job != NoJob {
		r.burstStart[cpu] = t
	}
}

func (r *Recorder) closeBurst(t sim.Time, cpu int) {
	b := Burst{CPU: cpu, Job: r.current[cpu], Start: r.burstStart[cpu], End: t}
	if b.End > b.Start { // zero-length bursts carry no information
		if r.KeepBursts {
			r.bursts = append(r.bursts, b)
		}
		r.burstCount[cpu]++
		r.burstDuration[cpu] += b.Duration()
		for len(r.jobBusy) <= b.Job {
			r.jobBusy = append(r.jobBusy, 0)
		}
		r.jobBusy[b.Job] += b.Duration()
	}
}

// JobBusy returns the total CPU time (across all CPUs) recorded for job.
func (r *Recorder) JobBusy(job int) sim.Time {
	if job < 0 || job >= len(r.jobBusy) {
		return 0
	}
	return r.jobBusy[job]
}

// BurstHistogram buckets the stored bursts by duration: counts[i] holds the
// bursts with duration < bounds[i] (and the final element those >= the last
// bound). Requires KeepBursts.
func (r *Recorder) BurstHistogram(bounds []sim.Time) []int {
	counts := make([]int, len(bounds)+1)
	for _, b := range r.bursts {
		placed := false
		for i, bound := range bounds {
			if b.Duration() < bound {
				counts[i]++
				placed = true
				break
			}
		}
		if !placed {
			counts[len(bounds)]++
		}
	}
	return counts
}

// Migration records that a thread was scheduled on a different CPU than it
// last ran on.
func (r *Recorder) Migration() { r.migrations++ }

// Migrations returns the total number of thread migrations recorded.
func (r *Recorder) Migrations() int { return r.migrations }

// ObserveMPL records the multiprogramming level (number of running jobs) at
// time t. Consecutive duplicates are collapsed.
func (r *Recorder) ObserveMPL(t sim.Time, level int) {
	if n := len(r.mpl); n > 0 && r.mpl[n-1].Value == level {
		return
	}
	r.mpl = append(r.mpl, TimePoint{At: t, Value: level})
}

// MPLTimeline returns the recorded multiprogramming-level series.
func (r *Recorder) MPLTimeline() []TimePoint { return r.mpl }

// ObserveAllocation records that job's processor allocation became procs at
// time t. Consecutive duplicates are collapsed (the series is run-length
// encoded by construction).
func (r *Recorder) ObserveAllocation(t sim.Time, job, procs int) {
	for len(r.allocs) <= job {
		r.allocs = append(r.allocs, nil)
	}
	hist := r.allocs[job]
	if n := len(hist); n > 0 && hist[n-1].Value == procs {
		return
	}
	if len(hist) == cap(hist) {
		// Grow 4× rather than append's 2×: time-sharing runs toggle each
		// job's allocation every few quanta, so histories reach hundreds of
		// points and the reallocation count matters more than the overshoot.
		c := cap(hist) * 4
		if c == 0 {
			c = 8
		}
		grown := make([]TimePoint, len(hist), c)
		copy(grown, hist)
		hist = grown
	}
	r.allocs[job] = append(hist, TimePoint{At: t, Value: procs})
}

// AllocationHistory returns the allocation series recorded for job, or nil.
func (r *Recorder) AllocationHistory(job int) []TimePoint {
	if job < 0 || job >= len(r.allocs) {
		return nil
	}
	return r.allocs[job]
}

// Close ends the recording at time t, closing all open bursts. Further
// assignments panic.
func (r *Recorder) Close(t sim.Time) {
	if r.closed {
		return
	}
	for cpu := range r.current {
		if r.current[cpu] != NoJob {
			r.closeBurst(t, cpu)
			r.current[cpu] = NoJob
		}
	}
	r.closed = true
	r.end = t
}

// End returns the time the recording was closed (zero if still open).
func (r *Recorder) End() sim.Time { return r.end }

// Bursts returns all closed bursts (only if KeepBursts was true).
func (r *Recorder) Bursts() []Burst { return r.bursts }

// Stats summarizes scheduling stability, reproducing the columns of Table 2.
type Stats struct {
	Migrations int
	// AvgBurst is the mean duration a CPU continuously executed the same
	// application.
	AvgBurst sim.Time
	// AvgBurstsPerCPU is the mean number of bursts each CPU executed.
	AvgBurstsPerCPU float64
	// TotalBusy is the aggregate CPU busy time.
	TotalBusy sim.Time
	// Utilization is busy time over ncpu × recorded span (0 when the span
	// is unknown because the recorder is still open).
	Utilization float64
}

// Stats computes the stability statistics over the recorded history.
func (r *Recorder) Stats() Stats {
	var s Stats
	s.Migrations = r.migrations
	total := 0
	var busy sim.Time
	for cpu := 0; cpu < r.ncpu; cpu++ {
		total += r.burstCount[cpu]
		busy += r.burstDuration[cpu]
	}
	s.TotalBusy = busy
	if total > 0 {
		s.AvgBurst = busy / sim.Time(total)
	}
	if r.ncpu > 0 {
		s.AvgBurstsPerCPU = float64(total) / float64(r.ncpu)
	}
	if r.end > 0 && r.ncpu > 0 {
		s.Utilization = busy.Seconds() / (float64(r.ncpu) * r.end.Seconds())
	}
	return s
}

// CPUBusy returns the busy time recorded for one CPU.
func (r *Recorder) CPUBusy(cpu int) sim.Time { return r.burstDuration[cpu] }
