package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Chrome-tracing export: the modern counterpart of the Paraver views. The
// output loads in chrome://tracing or Perfetto (ui.perfetto.dev): one track
// per CPU, one complete event per burst, labeled with the job.

// chromeEvent is one entry of the Chrome tracing JSON array ("X" = complete
// event; timestamps and durations in microseconds).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTracing writes the burst history in the Chrome trace-event
// format. label maps a job id to a display name (nil uses "job N"). The
// recording must be closed and must have kept its bursts.
func (r *Recorder) WriteChromeTracing(w io.Writer, label func(job int) string) error {
	if !r.closed {
		return fmt.Errorf("trace: close the recorder before exporting")
	}
	if label == nil {
		label = func(job int) string { return fmt.Sprintf("job %d", job) }
	}
	events := make([]chromeEvent, 0, r.ncpu+len(r.bursts))
	// Track-name metadata: tid = CPU index.
	for cpu := 0; cpu < r.ncpu; cpu++ {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: cpu,
			Args: map[string]any{"name": fmt.Sprintf("cpu%02d", cpu)},
		})
	}
	for _, b := range r.bursts {
		events = append(events, chromeEvent{
			Name: label(b.Job), Ph: "X",
			Ts: int64(b.Start), Dur: int64(b.Duration()),
			Pid: 1, Tid: b.CPU,
			Args: map[string]any{"job": b.Job},
		})
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", " ")
	if err := enc.Encode(events); err != nil {
		return err
	}
	return bw.Flush()
}
