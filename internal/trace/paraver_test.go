package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"pdpasim/internal/sim"
)

func TestWriteParaverGolden(t *testing.T) {
	r := NewRecorder(2)
	r.Assign(0, 0, 10)
	r.Assign(0, 1, 20)
	r.Assign(5*sim.Second, 0, 20)
	r.Close(10 * sim.Second)

	var buf bytes.Buffer
	if err := r.WriteParaver(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "#Paraver (01/01/00 at 00:00):10000000_ns:1(2):2:1(1:1):1(2:1)\n" +
		"1:1:1:1:1:0:5000000:1\n" +
		"1:2:2:1:2:0:10000000:1\n" +
		"1:1:2:1:1:5000000:10000000:1\n"
	if got != want {
		t.Fatalf("paraver output:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteParaverRequiresClosed(t *testing.T) {
	r := NewRecorder(1)
	var buf bytes.Buffer
	if err := r.WriteParaver(&buf); err == nil {
		t.Fatal("export of an open recording accepted")
	}
}

// TestWriteParaverWellFormed checks structural invariants on a larger trace:
// every record has 8 fields, begins <= ends, CPUs and applications are
// 1-based and in range, and records are sorted by begin time.
func TestWriteParaverWellFormed(t *testing.T) {
	r := NewRecorder(4)
	// A churny assignment pattern.
	for i := 0; i < 50; i++ {
		cpu := i % 4
		job := (i / 2) % 3
		r.Assign(sim.Time(i)*sim.Second, cpu, job)
	}
	r.Close(60 * sim.Second)

	var buf bytes.Buffer
	if err := r.WriteParaver(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("no header")
	}
	if !strings.HasPrefix(sc.Text(), "#Paraver") {
		t.Fatalf("header = %q", sc.Text())
	}
	prevBegin := int64(-1)
	records := 0
	for sc.Scan() {
		fields := strings.Split(sc.Text(), ":")
		if len(fields) != 8 {
			t.Fatalf("record has %d fields: %q", len(fields), sc.Text())
		}
		if fields[0] != "1" {
			t.Fatalf("record type %q", fields[0])
		}
		cpu, _ := strconv.Atoi(fields[1])
		appl, _ := strconv.Atoi(fields[2])
		begin, _ := strconv.ParseInt(fields[5], 10, 64)
		end, _ := strconv.ParseInt(fields[6], 10, 64)
		if cpu < 1 || cpu > 4 {
			t.Fatalf("cpu %d out of range", cpu)
		}
		if appl < 1 || appl > 3 {
			t.Fatalf("appl %d out of range", appl)
		}
		if begin >= end {
			t.Fatalf("empty or inverted record: %q", sc.Text())
		}
		if begin < prevBegin {
			t.Fatal("records not sorted by begin time")
		}
		prevBegin = begin
		records++
	}
	if records != len(r.Bursts()) {
		t.Fatalf("records = %d, bursts = %d", records, len(r.Bursts()))
	}
}

func TestWriteChromeTracing(t *testing.T) {
	r := NewRecorder(2)
	r.Assign(0, 0, 1)
	r.Assign(0, 1, 2)
	r.Assign(5*sim.Second, 0, 2)
	r.Close(10 * sim.Second)

	var buf bytes.Buffer
	if err := r.WriteChromeTracing(&buf, func(job int) string {
		return map[int]string{1: "swim", 2: "bt"}[job]
	}); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 2 metadata + 3 bursts.
	if len(events) != 5 {
		t.Fatalf("events = %d", len(events))
	}
	var complete int
	for _, e := range events {
		switch e["ph"] {
		case "X":
			complete++
			if e["dur"].(float64) <= 0 {
				t.Fatalf("non-positive duration: %v", e)
			}
			if name := e["name"].(string); name != "swim" && name != "bt" {
				t.Fatalf("label %q", name)
			}
		case "M":
			if e["name"] != "thread_name" {
				t.Fatalf("metadata %v", e)
			}
		}
	}
	if complete != 3 {
		t.Fatalf("complete events = %d", complete)
	}
}

func TestWriteChromeTracingRequiresClosed(t *testing.T) {
	r := NewRecorder(1)
	if err := r.WriteChromeTracing(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("open recording accepted")
	}
}

func TestWriteChromeTracingEmpty(t *testing.T) {
	r := NewRecorder(1)
	r.Close(0)
	var buf bytes.Buffer
	if err := r.WriteChromeTracing(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON for empty trace: %v", err)
	}
}
