package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"pdpasim/internal/sim"
)

func TestBurstAccounting(t *testing.T) {
	r := NewRecorder(2)
	r.Assign(0, 0, 1)
	r.Assign(10*sim.Second, 0, 2) // closes 10s burst of job 1
	r.Assign(15*sim.Second, 0, NoJob)
	r.Assign(0, 1, 1)
	r.Close(20 * sim.Second)

	bursts := r.Bursts()
	if len(bursts) != 3 {
		t.Fatalf("bursts = %d, want 3", len(bursts))
	}
	s := r.Stats()
	// Total busy: 10 + 5 + 20 = 35s over 3 bursts.
	if s.TotalBusy != 35*sim.Second {
		t.Fatalf("TotalBusy = %v", s.TotalBusy)
	}
	if s.AvgBurst != 35*sim.Second/3 {
		t.Fatalf("AvgBurst = %v", s.AvgBurst)
	}
	if s.AvgBurstsPerCPU != 1.5 {
		t.Fatalf("AvgBurstsPerCPU = %v", s.AvgBurstsPerCPU)
	}
	if got := s.Utilization; got < 0.87 || got > 0.88 {
		t.Fatalf("Utilization = %v, want 35/40", got)
	}
}

func TestAssignSameJobContinuesBurst(t *testing.T) {
	r := NewRecorder(1)
	r.Assign(0, 0, 5)
	r.Assign(sim.Second, 0, 5) // no-op
	r.Close(2 * sim.Second)
	if len(r.Bursts()) != 1 {
		t.Fatalf("bursts = %d, want 1 continuous burst", len(r.Bursts()))
	}
	if r.Bursts()[0].Duration() != 2*sim.Second {
		t.Fatalf("duration = %v", r.Bursts()[0].Duration())
	}
}

func TestZeroLengthBurstDropped(t *testing.T) {
	r := NewRecorder(1)
	r.Assign(sim.Second, 0, 1)
	r.Assign(sim.Second, 0, 2)
	r.Close(2 * sim.Second)
	if len(r.Bursts()) != 1 {
		t.Fatalf("bursts = %v", r.Bursts())
	}
	if r.Bursts()[0].Job != 2 {
		t.Fatalf("surviving burst job = %d", r.Bursts()[0].Job)
	}
}

func TestAssignOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewRecorder(2).Assign(0, 2, 1)
}

func TestMigrations(t *testing.T) {
	r := NewRecorder(1)
	for i := 0; i < 7; i++ {
		r.Migration()
	}
	if r.Migrations() != 7 {
		t.Fatalf("Migrations = %d", r.Migrations())
	}
}

func TestMPLTimelineCollapsesDuplicates(t *testing.T) {
	r := NewRecorder(1)
	r.ObserveMPL(0, 1)
	r.ObserveMPL(sim.Second, 1)
	r.ObserveMPL(2*sim.Second, 3)
	tl := r.MPLTimeline()
	if len(tl) != 2 || tl[1].Value != 3 {
		t.Fatalf("timeline = %v", tl)
	}
	out := r.RenderMPL()
	if !strings.Contains(out, "ml=3") {
		t.Fatalf("RenderMPL missing level: %q", out)
	}
}

func TestAllocationHistory(t *testing.T) {
	r := NewRecorder(1)
	r.ObserveAllocation(0, 9, 4)
	r.ObserveAllocation(sim.Second, 9, 4)
	r.ObserveAllocation(2*sim.Second, 9, 8)
	h := r.AllocationHistory(9)
	if len(h) != 2 || h[1].Value != 8 {
		t.Fatalf("history = %v", h)
	}
	if r.AllocationHistory(404) != nil {
		t.Fatal("unknown job should have nil history")
	}
}

func TestCloseIdempotent(t *testing.T) {
	r := NewRecorder(1)
	r.Assign(0, 0, 1)
	r.Close(sim.Second)
	r.Close(2 * sim.Second)
	if r.End() != sim.Second {
		t.Fatalf("End = %v", r.End())
	}
	if len(r.Bursts()) != 1 {
		t.Fatalf("bursts = %d", len(r.Bursts()))
	}
}

func TestKeepBurstsFalseStillCounts(t *testing.T) {
	r := NewRecorder(1)
	r.KeepBursts = false
	r.Assign(0, 0, 1)
	r.Close(10 * sim.Second)
	if len(r.Bursts()) != 0 {
		t.Fatal("bursts stored despite KeepBursts=false")
	}
	s := r.Stats()
	if s.TotalBusy != 10*sim.Second || s.AvgBurstsPerCPU != 1 {
		t.Fatalf("stats without stored bursts: %+v", s)
	}
}

func TestRenderShape(t *testing.T) {
	r := NewRecorder(3)
	r.Assign(0, 0, 0)
	r.Assign(0, 1, 1)
	// cpu2 idle throughout.
	r.Assign(5*sim.Second, 0, 1)
	r.Close(10 * sim.Second)
	out := r.Render(RenderOptions{Width: 10})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 3 cpus
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "AAAAABBBBB") {
		t.Fatalf("cpu0 row = %q", lines[1])
	}
	if !strings.Contains(lines[2], "BBBBBBBBBB") {
		t.Fatalf("cpu1 row = %q", lines[2])
	}
	if !strings.Contains(lines[3], "..........") {
		t.Fatalf("cpu2 row = %q", lines[3])
	}
}

func TestRenderEmptyWindow(t *testing.T) {
	r := NewRecorder(1)
	r.Close(0)
	if got := r.Render(RenderOptions{}); got != "" {
		t.Fatalf("empty render = %q", got)
	}
}

func TestRenderCustomLabel(t *testing.T) {
	r := NewRecorder(1)
	r.Assign(0, 0, 3)
	r.Close(sim.Second)
	out := r.Render(RenderOptions{Width: 4, Label: func(int) rune { return 'x' }})
	if !strings.Contains(out, "xxxx") {
		t.Fatalf("custom label missing: %q", out)
	}
}

func TestJobsSeen(t *testing.T) {
	r := NewRecorder(2)
	r.Assign(0, 0, 5)
	r.Assign(0, 1, 2)
	r.Assign(sim.Second, 0, 2)
	r.Close(2 * sim.Second)
	got := r.JobsSeen()
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("JobsSeen = %v", got)
	}
}

// Property: for arbitrary assignment sequences, total busy time never
// exceeds ncpu × span and burst intervals are well-formed.
func TestBurstInvariants(t *testing.T) {
	f := func(steps []uint8) bool {
		const ncpu = 4
		r := NewRecorder(ncpu)
		var now sim.Time
		for _, s := range steps {
			now += sim.Time(s%50) * sim.Millisecond
			cpu := int(s) % ncpu
			job := int(s/4)%3 - 1 // -1 (idle), 0, 1
			r.Assign(now, cpu, job)
		}
		now += sim.Second
		r.Close(now)
		var busy sim.Time
		for _, b := range r.Bursts() {
			if b.End <= b.Start || b.Job == NoJob {
				return false
			}
			busy += b.Duration()
		}
		return busy <= sim.Time(ncpu)*now
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestJobBusy(t *testing.T) {
	r := NewRecorder(2)
	r.Assign(0, 0, 1)
	r.Assign(0, 1, 1)
	r.Assign(5*sim.Second, 0, 2)
	r.Close(10 * sim.Second)
	if got := r.JobBusy(1); got != 15*sim.Second {
		t.Fatalf("job 1 busy = %v, want 15s (5+10)", got)
	}
	if got := r.JobBusy(2); got != 5*sim.Second {
		t.Fatalf("job 2 busy = %v", got)
	}
	if got := r.JobBusy(404); got != 0 {
		t.Fatalf("unknown job busy = %v", got)
	}
}

func TestBurstHistogram(t *testing.T) {
	r := NewRecorder(1)
	r.Assign(0, 0, 1)
	r.Assign(100*sim.Millisecond, 0, 2) // 100ms burst
	r.Assign(2*sim.Second, 0, 3)        // 1.9s burst
	r.Close(30 * sim.Second)            // 28s burst
	bounds := []sim.Time{sim.Second, 10 * sim.Second}
	got := r.BurstHistogram(bounds)
	if len(got) != 3 || got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("histogram = %v", got)
	}
}
