package trace

import (
	"fmt"
	"sort"
	"strings"

	"pdpasim/internal/sim"
)

// RenderOptions controls ASCII timeline rendering.
type RenderOptions struct {
	// Width is the number of time buckets (columns). Defaults to 100.
	Width int
	// From/To bound the rendered window. A zero To means the recording end.
	From, To sim.Time
	// Label maps a job id to a single rune. Nil uses 'A' + job mod 26.
	Label func(job int) rune
}

// Render draws the recorded per-CPU execution history as an ASCII timeline:
// one row per CPU, one column per time bucket, the character identifying the
// application that dominated the bucket ('.' for idle). This is the textual
// analogue of the Paraver views in Fig. 5: a stable space-sharing schedule
// shows long horizontal runs of one letter, while a time-shared schedule
// looks speckled.
func (r *Recorder) Render(opt RenderOptions) string {
	width := opt.Width
	if width <= 0 {
		width = 100
	}
	from := opt.From
	to := opt.To
	if to == 0 {
		to = r.end
	}
	if to <= from {
		return ""
	}
	label := opt.Label
	if label == nil {
		label = func(job int) rune { return rune('A' + job%26) }
	}

	span := to - from
	// dominant[cpu][bucket] accumulates busy time per job; track only the
	// running maximum to stay O(cpus × width).
	type cell struct {
		job  int
		busy sim.Time
	}
	best := make([][]cell, r.ncpu)
	acc := make([]map[int]sim.Time, r.ncpu)
	for i := range best {
		best[i] = make([]cell, width)
		for j := range best[i] {
			best[i][j] = cell{job: NoJob}
		}
		acc[i] = make(map[int]sim.Time)
	}
	bucketOf := func(t sim.Time) int {
		b := int(int64(t-from) * int64(width) / int64(span))
		if b < 0 {
			b = 0
		}
		if b >= width {
			b = width - 1
		}
		return b
	}
	bucketBounds := func(b int) (sim.Time, sim.Time) {
		lo := from + sim.Time(int64(span)*int64(b)/int64(width))
		hi := from + sim.Time(int64(span)*int64(b+1)/int64(width))
		return lo, hi
	}
	for _, burst := range r.bursts {
		if burst.End <= from || burst.Start >= to {
			continue
		}
		s, e := burst.Start, burst.End
		if s < from {
			s = from
		}
		if e > to {
			e = to
		}
		for b := bucketOf(s); b <= bucketOf(e-1); b++ {
			lo, hi := bucketBounds(b)
			ov := overlap(s, e, lo, hi)
			if ov <= 0 {
				continue
			}
			acc[burst.CPU][burst.Job] += ov
			if acc[burst.CPU][burst.Job] > best[burst.CPU][b].busy {
				best[burst.CPU][b] = cell{job: burst.Job, busy: acc[burst.CPU][burst.Job]}
			}
			// Reset accumulator per bucket by subtracting after use.
			acc[burst.CPU][burst.Job] = 0
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "time %s .. %s, %d cpus, one column = %s\n",
		from, to, r.ncpu, (span / sim.Time(width)))
	for cpu := 0; cpu < r.ncpu; cpu++ {
		fmt.Fprintf(&sb, "cpu%02d |", cpu)
		for b := 0; b < width; b++ {
			c := best[cpu][b]
			if c.job == NoJob {
				sb.WriteByte('.')
			} else {
				sb.WriteRune(label(c.job))
			}
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}

func overlap(s1, e1, s2, e2 sim.Time) sim.Time {
	s := s1
	if s2 > s {
		s = s2
	}
	e := e1
	if e2 < e {
		e = e2
	}
	if e <= s {
		return 0
	}
	return e - s
}

// RenderMPL draws the multiprogramming-level series as a compact step list,
// the data behind Fig. 8.
func (r *Recorder) RenderMPL() string {
	var sb strings.Builder
	for _, p := range r.mpl {
		fmt.Fprintf(&sb, "%8.1fs  ml=%d\n", p.At.Seconds(), p.Value)
	}
	return sb.String()
}

// JobsSeen returns the sorted ids of all jobs that appear in the burst
// history.
func (r *Recorder) JobsSeen() []int {
	set := map[int]bool{}
	for _, b := range r.bursts {
		set[b.Job] = true
	}
	out := make([]int, 0, len(set))
	for j := range set {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}
