package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"pdpasim/internal/app"
	"pdpasim/internal/sim"
	"pdpasim/internal/stats"
)

func genW(t *testing.T, mix Mix, load float64, seed int64) *Workload {
	t.Helper()
	w, err := Generate(GenConfig{
		Mix: mix, Load: load, NCPU: 60, Window: 300 * sim.Second, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestMixesMatchTable1(t *testing.T) {
	for _, m := range []Mix{W1(), W2(), W3(), W4()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s invalid: %v", m.Name, err)
		}
	}
	if W1().Shares[app.Swim] != 0.5 || W1().Shares[app.BT] != 0.5 {
		t.Fatal("w1 shares wrong")
	}
	if len(W4().Shares) != 4 {
		t.Fatal("w4 must contain all classes")
	}
	for _, c := range app.AllClasses() {
		if W4().Shares[c] != 0.25 {
			t.Fatalf("w4 share for %v = %v", c, W4().Shares[c])
		}
	}
}

func TestMixByName(t *testing.T) {
	for _, name := range []string{"w1", "w2", "w3", "w4"} {
		m, err := MixByName(name)
		if err != nil || m.Name != name {
			t.Fatalf("MixByName(%q) = %v, %v", name, m.Name, err)
		}
	}
	if _, err := MixByName("w9"); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

func TestMixValidate(t *testing.T) {
	bad := Mix{Name: "bad", Shares: map[app.Class]float64{app.Swim: 0.6}}
	if bad.Validate() == nil {
		t.Fatal("shares not summing to 1 accepted")
	}
	neg := Mix{Name: "neg", Shares: map[app.Class]float64{app.Swim: -0.5, app.BT: 1.5}}
	if neg.Validate() == nil {
		t.Fatal("negative share accepted")
	}
}

func TestGenerateCalibration(t *testing.T) {
	// Average over seeds: the realized demand should be near the target.
	for _, load := range []float64{0.6, 0.8, 1.0} {
		total := 0.0
		const seeds = 20
		for s := int64(0); s < seeds; s++ {
			w := genW(t, W1(), load, s)
			total += w.EstimatedLoad(300 * sim.Second)
		}
		avg := total / seeds
		if math.Abs(avg-load) > 0.15*load {
			t.Errorf("load %.0f%%: realized %.3f", load*100, avg)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genW(t, W2(), 0.8, 7)
	b := genW(t, W2(), 0.8, 7)
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("job counts differ: %d vs %d", len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs: %+v vs %+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
}

func TestGenerateEveryClassPresent(t *testing.T) {
	for s := int64(0); s < 10; s++ {
		w := genW(t, W4(), 0.6, s)
		counts := w.CountByClass()
		for c, share := range W4().Shares {
			if share > 0 && counts[c] == 0 {
				t.Fatalf("seed %d: class %v absent", s, c)
			}
		}
	}
}

func TestGenerateSortedAndNumbered(t *testing.T) {
	w := genW(t, W3(), 1.0, 3)
	for i, j := range w.Jobs {
		if j.ID != i {
			t.Fatalf("job %d has ID %d", i, j.ID)
		}
		if i > 0 && j.Submit < w.Jobs[i-1].Submit {
			t.Fatal("jobs not sorted by submit")
		}
		if j.Submit < 0 || j.Submit > 300*sim.Second {
			t.Fatalf("submit %v outside window", j.Submit)
		}
	}
}

func TestGenerateTunedRequests(t *testing.T) {
	w := genW(t, W3(), 0.6, 1)
	for _, j := range w.Jobs {
		want := app.ProfileFor(j.Class).Request
		if j.Request != want {
			t.Fatalf("%v request = %d, want %d", j.Class, j.Request, want)
		}
	}
}

func TestWithUniformRequest(t *testing.T) {
	w := genW(t, W3(), 0.6, 1)
	u := w.WithUniformRequest(30)
	if len(u.Jobs) != len(w.Jobs) {
		t.Fatal("job count changed")
	}
	for i, j := range u.Jobs {
		if j.Request != 30 {
			t.Fatalf("request = %d", j.Request)
		}
		if j.Submit != w.Jobs[i].Submit || j.Class != w.Jobs[i].Class {
			t.Fatal("untuned variant changed submissions")
		}
	}
	// Original untouched.
	for _, j := range w.Jobs {
		if j.Class == app.Apsi && j.Request != 2 {
			t.Fatal("original workload mutated")
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(GenConfig{Mix: W1(), Load: 0, NCPU: 60, Window: sim.Second}); err == nil {
		t.Fatal("zero load accepted")
	}
	if _, err := Generate(GenConfig{Mix: W1(), Load: 1, NCPU: 0, Window: sim.Second}); err == nil {
		t.Fatal("zero NCPU accepted")
	}
	if _, err := Generate(GenConfig{Mix: Mix{Name: "x", Shares: map[app.Class]float64{app.Swim: 2}}, Load: 1, NCPU: 60, Window: sim.Second}); err == nil {
		t.Fatal("invalid mix accepted")
	}
}

func TestSWFRoundTrip(t *testing.T) {
	w := genW(t, W4(), 0.8, 11)
	var buf bytes.Buffer
	if err := w.WriteSWF(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NCPU != w.NCPU || got.TargetLoad != w.TargetLoad || got.Name != w.Name {
		t.Fatalf("header lost: %+v", got)
	}
	if len(got.Jobs) != len(w.Jobs) {
		t.Fatalf("jobs = %d, want %d", len(got.Jobs), len(w.Jobs))
	}
	for i := range got.Jobs {
		a, b := got.Jobs[i], w.Jobs[i]
		if a.Class != b.Class || a.Request != b.Request || a.ID != b.ID {
			t.Fatalf("job %d: %+v vs %+v", i, a, b)
		}
		// Submit survives at 1-second granularity (SWF stores seconds).
		if math.Abs(a.Submit.Seconds()-b.Submit.Seconds()) > 0.51 {
			t.Fatalf("job %d submit: %v vs %v", i, a.Submit, b.Submit)
		}
	}
}

func TestParseSWFErrors(t *testing.T) {
	cases := map[string]string{
		"short line":    "1 2 3\n",
		"bad submit":    "1 x -1 -1 -1 -1 -1 4 -1 -1 -1 -1 -1 0 -1 -1 -1 -1\n",
		"bad request":   "1 0 -1 -1 -1 -1 -1 0 -1 -1 -1 -1 -1 0 -1 -1 -1 -1\n",
		"bad class":     "1 0 -1 -1 -1 -1 -1 4 -1 -1 -1 -1 -1 99 -1 -1 -1 -1\n",
		"unsorted jobs": "1 10 -1 -1 -1 -1 -1 4 -1 -1 -1 -1 -1 0 -1 -1 -1 -1\n2 5 -1 -1 -1 -1 -1 4 -1 -1 -1 -1 -1 0 -1 -1 -1 -1\n",
	}
	for name, in := range cases {
		if _, err := ParseSWF(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestParseSWFIgnoresBlanksAndComments(t *testing.T) {
	in := "; Version: 2\n\n; stray comment without colon form\n1 0 -1 -1 -1 -1 -1 4 -1 -1 -1 -1 -1 1 -1 -1 -1 -1\n"
	w, err := ParseSWF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 1 || w.Jobs[0].Class != app.BT {
		t.Fatalf("jobs = %+v", w.Jobs)
	}
}

func TestDemandUntunedDiffers(t *testing.T) {
	w := genW(t, W3(), 0.6, 2)
	u := w.WithUniformRequest(30)
	// apsi at 30 CPUs wastes ~28 of them; untuned demand must be far higher.
	if u.Demand(nil) < 1.5*w.Demand(nil) {
		t.Fatalf("untuned demand %v not >> tuned %v", u.Demand(nil), w.Demand(nil))
	}
}

// Property: generation never emits jobs outside the window, with invalid
// requests, or unsorted, for any seed/load.
func TestGenerateProperty(t *testing.T) {
	f := func(seed int64, loadRaw uint8) bool {
		load := 0.2 + float64(loadRaw%100)/100
		w, err := Generate(GenConfig{Mix: W4(), Load: load, NCPU: 60, Window: 300 * sim.Second, Seed: seed})
		if err != nil {
			return false
		}
		prev := sim.Time(0)
		for _, j := range w.Jobs {
			if j.Submit < prev || j.Submit > 300*sim.Second || j.Request < 1 {
				return false
			}
			prev = j.Submit
		}
		return len(w.Jobs) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBurstyArrivalsCluster(t *testing.T) {
	gen := func(burstiness float64) *Workload {
		w, err := Generate(GenConfig{
			Mix: W3(), Load: 1.0, NCPU: 60, Window: 300 * sim.Second,
			Seed: 5, Burstiness: burstiness,
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	// Burstiness concentrates arrivals: the coefficient of variation of
	// interarrival gaps must grow markedly.
	cv := func(w *Workload) float64 {
		var s stats.Summary
		for i := 1; i < len(w.Jobs); i++ {
			s.Add((w.Jobs[i].Submit - w.Jobs[i-1].Submit).Seconds())
		}
		return s.CoefficientOfVariation()
	}
	smooth := gen(1)
	bursty := gen(8)
	if cv(bursty) < 1.3*cv(smooth) {
		t.Fatalf("bursty cv %.2f not much above smooth cv %.2f", cv(bursty), cv(smooth))
	}
	// Job count (demand) stays calibrated.
	ratio := float64(len(bursty.Jobs)) / float64(len(smooth.Jobs))
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("burstiness changed the job count: %d vs %d", len(bursty.Jobs), len(smooth.Jobs))
	}
	// All arrivals stay inside the window and sorted.
	for i, j := range bursty.Jobs {
		if j.Submit < 0 || j.Submit >= 300*sim.Second {
			t.Fatalf("job %d outside window: %v", i, j.Submit)
		}
		if i > 0 && j.Submit < bursty.Jobs[i-1].Submit {
			t.Fatal("unsorted")
		}
	}
}

func TestBurstyDeterministic(t *testing.T) {
	gen := func() *Workload {
		w, err := Generate(GenConfig{
			Mix: W1(), Load: 0.8, NCPU: 60, Window: 300 * sim.Second,
			Seed: 6, Burstiness: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	a, b := gen(), gen()
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs", i)
		}
	}
}
