package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseSWF checks the parser never panics and, when it accepts input,
// produces a well-formed workload. Run with `go test -fuzz FuzzParseSWF`;
// plain `go test` exercises the seed corpus.
func FuzzParseSWF(f *testing.F) {
	f.Add("; Version: 2\n1 0 -1 -1 -1 -1 -1 4 -1 -1 -1 -1 -1 0 -1 -1 -1 -1\n")
	f.Add("; MaxProcs: 64\n")
	f.Add("1 10 -1 -1 -1 -1 -1 30 -1 -1 -1 -1 -1 1 -1 -1 -1 -1\n" +
		"2 20 -1 -1 -1 -1 -1 2 -1 -1 -1 -1 -1 3 -1 -1 -1 -1\n")
	f.Add("garbage line\n")
	f.Add("1 -5 -1 -1 -1 -1 -1 4 -1 -1 -1 -1 -1 0 -1 -1 -1 -1\n")
	f.Add("; TargetLoad: 0.8\n; Workload: fuzz\n")
	f.Fuzz(func(t *testing.T, input string) {
		w, err := ParseSWF(strings.NewReader(input))
		if err != nil {
			return
		}
		prev := int64(-1)
		for i, j := range w.Jobs {
			if j.ID != i {
				t.Fatalf("job ids not sequential: %d at %d", j.ID, i)
			}
			if j.Request < 1 {
				t.Fatalf("accepted request %d", j.Request)
			}
			if int64(j.Submit) < prev {
				t.Fatal("accepted unsorted submissions")
			}
			prev = int64(j.Submit)
		}
		// An accepted workload must round-trip through the writer.
		var buf bytes.Buffer
		if err := w.WriteSWF(&buf); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		if _, err := ParseSWF(&buf); err != nil {
			t.Fatalf("round-trip failed: %v", err)
		}
	})
}
