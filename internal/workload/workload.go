// Package workload builds and serializes the job streams the evaluation
// runs: combinations of the four applications submitted with Poisson
// interarrivals over a 300-second window, calibrated to an estimated
// processor demand of 60, 80, or 100 percent of the machine (Section 5).
//
// Workloads are written to and read from Feitelson's Standard Workload
// Format (SWF), the format the paper's trace files use, so the identical
// arrival sequence can be replayed under every scheduling policy.
package workload

import (
	"fmt"
	"sort"

	"pdpasim/internal/app"
	"pdpasim/internal/sim"
	"pdpasim/internal/stats"
)

// Job is one submission: an application instance arriving at Submit and
// requesting Request processors.
type Job struct {
	ID      int
	Class   app.Class
	Submit  sim.Time
	Request int
	// Gran is the job's allocation granularity: 0 or 1 means fully
	// malleable (the paper's OpenMP applications); Request means rigid (an
	// MPI application that runs with exactly its request or not at all);
	// an intermediate value g models the paper's future-work MPI+OpenMP
	// hybrid — g processes whose OpenMP thread counts the scheduler
	// controls, so allocations are multiples of g.
	Gran int
}

// Granularity returns the effective allocation granularity (>= 1).
func (j Job) Granularity() int {
	if j.Gran < 1 {
		return 1
	}
	if j.Gran > j.Request {
		return j.Request
	}
	return j.Gran
}

// Workload is an ordered job stream plus the machine context it was
// calibrated for.
type Workload struct {
	Name string
	// NCPU is the machine size the load was calibrated against.
	NCPU int
	// TargetLoad is the calibrated demand fraction (0.6, 0.8, 1.0).
	TargetLoad float64
	Jobs       []Job
}

// Mix describes a workload composition: the fraction of the total load
// contributed by each application class (Table 1).
type Mix struct {
	Name   string
	Shares map[app.Class]float64
}

// The four workload mixes of Table 1.
func W1() Mix {
	return Mix{Name: "w1", Shares: map[app.Class]float64{app.Swim: 0.5, app.BT: 0.5}}
}
func W2() Mix {
	return Mix{Name: "w2", Shares: map[app.Class]float64{app.BT: 0.5, app.Hydro2D: 0.5}}
}
func W3() Mix {
	return Mix{Name: "w3", Shares: map[app.Class]float64{app.BT: 0.5, app.Apsi: 0.5}}
}
func W4() Mix {
	return Mix{Name: "w4", Shares: map[app.Class]float64{
		app.Swim: 0.25, app.BT: 0.25, app.Hydro2D: 0.25, app.Apsi: 0.25}}
}

// MixByName returns the named standard mix.
func MixByName(name string) (Mix, error) {
	switch name {
	case "w1":
		return W1(), nil
	case "w2":
		return W2(), nil
	case "w3":
		return W3(), nil
	case "w4":
		return W4(), nil
	}
	return Mix{}, fmt.Errorf("workload: unknown mix %q (want w1..w4)", name)
}

// Validate checks that the shares are non-negative and sum to ~1.
func (m Mix) Validate() error {
	sum := 0.0
	for c, s := range m.Shares {
		if s < 0 {
			return fmt.Errorf("workload %s: negative share for %v", m.Name, c)
		}
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("workload %s: shares sum to %v, want 1", m.Name, sum)
	}
	return nil
}

// GenConfig parameterizes workload generation.
type GenConfig struct {
	Mix Mix
	// Load is the estimated processor demand as a fraction of capacity.
	Load float64
	// NCPU is the machine size (the paper uses 60 of the Origin's 64).
	NCPU int
	// Window is the submission window (the paper uses 300 s).
	Window sim.Time
	// Seed drives the arrival process.
	Seed int64
	// Profiles optionally overrides the application profiles used to
	// estimate per-job demand. Nil uses app.ProfileFor.
	Profiles func(app.Class) *app.Profile
	// Burstiness makes arrivals bursty: during burst periods the arrival
	// intensity is Burstiness times the calm intensity, with the overall
	// expected demand unchanged. 0 or 1 keeps the paper's homogeneous
	// Poisson arrivals. (Modeled as a two-state modulated process: calm
	// and burst periods alternate, exponentially distributed.)
	Burstiness float64
	// BurstFraction is the fraction of the window spent in the burst state
	// (default 0.2 when Burstiness > 1).
	BurstFraction float64
	// MeanBurst is the mean burst-period length (default 20 s).
	MeanBurst sim.Time
}

func (c *GenConfig) profile(cl app.Class) *app.Profile {
	if c.Profiles != nil {
		return c.Profiles(cl)
	}
	return app.ProfileFor(cl)
}

// Generate builds a workload: for each class with a positive share, arrivals
// form a Poisson process over the window whose rate makes the class's
// expected CPU demand equal share × load × NCPU × window. Every
// positive-share class contributes at least one job so per-class metrics are
// always defined. Jobs are sorted by submission time and numbered from 0.
func Generate(cfg GenConfig) (*Workload, error) {
	if err := cfg.Mix.Validate(); err != nil {
		return nil, err
	}
	if cfg.Load <= 0 {
		return nil, fmt.Errorf("workload: load %v must be positive", cfg.Load)
	}
	if cfg.NCPU <= 0 || cfg.Window <= 0 {
		return nil, fmt.Errorf("workload: NCPU and Window must be positive")
	}
	rng := stats.NewRNG(cfg.Seed).Stream("arrivals/" + cfg.Mix.Name)
	var jobs []Job

	classes := make([]app.Class, 0, len(cfg.Mix.Shares))
	for c := range cfg.Mix.Shares {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })

	for _, cl := range classes {
		share := cfg.Mix.Shares[cl]
		if share <= 0 {
			continue
		}
		prof := cfg.profile(cl)
		// The CPU-seconds of useful work one job carries (its serial work).
		// Estimating demand from work rather than from request × runtime
		// means a poorly-scaling application holding 30 processors
		// oversubscribes the machine — exactly the situation the paper's
		// 100%-load workloads create and PDPA exploits.
		perJob := prof.TotalSerialWork().Seconds()
		targetDemand := share * cfg.Load * float64(cfg.NCPU) * cfg.Window.Seconds()
		expectedJobs := targetDemand / perJob

		// Conditioned Poisson process: draw the job count by stratified
		// rounding of the expectation (so the realized demand stays close
		// to the calibration target even for classes with very heavy jobs),
		// then place the arrivals as uniform order statistics — which is
		// exactly the distribution of Poisson arrival times given their
		// count. Every positive-share class contributes at least one job.
		crng := rng.Stream(cl.String())
		n := int(expectedJobs)
		if crng.Float64() < expectedJobs-float64(n) {
			n++
		}
		if n < 1 {
			n = 1
		}
		times := make([]float64, n)
		for i := range times {
			times[i] = crng.Float64() * cfg.Window.Seconds()
		}
		if cfg.Burstiness > 1 {
			mapThroughIntensity(times, cfg, rng.Stream("bursts"))
		}
		sort.Float64s(times)
		for _, t := range times {
			jobs = append(jobs, Job{
				Class:   cl,
				Submit:  sim.FromSeconds(t),
				Request: prof.Request,
			})
		}
	}
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Submit < jobs[j].Submit })
	for i := range jobs {
		jobs[i].ID = i
	}
	return &Workload{
		Name:       fmt.Sprintf("%s-load%.0f", cfg.Mix.Name, cfg.Load*100),
		NCPU:       cfg.NCPU,
		TargetLoad: cfg.Load,
		Jobs:       jobs,
	}, nil
}

// mapThroughIntensity warps uniform arrival positions through the inverse
// cumulative of a two-state (calm/burst) intensity profile, so the same job
// count clusters into bursts. The profile is shared across classes (one
// "bursts" stream per workload) so bursts are correlated, as real arrival
// surges are.
func mapThroughIntensity(times []float64, cfg GenConfig, rng *stats.RNG) {
	window := cfg.Window.Seconds()
	burstFrac := cfg.BurstFraction
	if burstFrac <= 0 || burstFrac >= 1 {
		burstFrac = 0.2
	}
	meanBurst := cfg.MeanBurst.Seconds()
	if meanBurst <= 0 {
		meanBurst = 20
	}
	meanCalm := meanBurst * (1 - burstFrac) / burstFrac

	// Build alternating calm/burst segments covering the window.
	type segment struct{ start, length, intensity float64 }
	var segs []segment
	t := 0.0
	inBurst := rng.Float64() < burstFrac
	for t < window {
		mean := meanCalm
		intensity := 1.0
		if inBurst {
			mean = meanBurst
			intensity = cfg.Burstiness
		}
		length := rng.Exp(mean)
		if t+length > window {
			length = window - t
		}
		segs = append(segs, segment{start: t, length: length, intensity: intensity})
		t += length
		inBurst = !inBurst
	}
	// Cumulative intensity; map each uniform position u∈[0,window) through
	// the inverse: find where u×(total/window) of cumulative mass falls.
	total := 0.0
	for _, s := range segs {
		total += s.length * s.intensity
	}
	for i, u := range times {
		target := u / window * total
		acc := 0.0
		for _, s := range segs {
			mass := s.length * s.intensity
			if acc+mass >= target {
				times[i] = s.start + (target-acc)/s.intensity
				break
			}
			acc += mass
		}
		if times[i] >= window {
			times[i] = window - 1e-6
		}
	}
}

// WithGranularity returns a copy of w in which every job of class c has
// allocation granularity g (see Job.Gran). Other classes are untouched.
func (w *Workload) WithGranularity(c app.Class, g int) *Workload {
	out := &Workload{
		Name:       w.Name,
		NCPU:       w.NCPU,
		TargetLoad: w.TargetLoad,
		Jobs:       make([]Job, len(w.Jobs)),
	}
	copy(out.Jobs, w.Jobs)
	for i := range out.Jobs {
		if out.Jobs[i].Class == c {
			out.Jobs[i].Gran = g
		}
	}
	return out
}

// WithUniformRequest returns a copy of w in which every job requests n
// processors — the paper's "not tuned" experiments (Tables 3 and 4) replay
// the same submissions with the request forced to 30.
func (w *Workload) WithUniformRequest(n int) *Workload {
	out := &Workload{
		Name:       w.Name + "-untuned",
		NCPU:       w.NCPU,
		TargetLoad: w.TargetLoad,
		Jobs:       make([]Job, len(w.Jobs)),
	}
	copy(out.Jobs, w.Jobs)
	for i := range out.Jobs {
		out.Jobs[i].Request = n
	}
	return out
}

// Work returns the workload's total useful work in CPU-seconds (the sum of
// each job's serial work) — the quantity load calibration targets.
func (w *Workload) Work(profiles func(app.Class) *app.Profile) float64 {
	if profiles == nil {
		profiles = app.ProfileFor
	}
	total := 0.0
	for _, j := range w.Jobs {
		total += profiles(j.Class).TotalSerialWork().Seconds()
	}
	return total
}

// Demand returns the CPU-seconds the workload *holds* when every job runs at
// its requested size: request × dedicated runtime. For poorly scaling
// applications this far exceeds Work — the gap PDPA reclaims.
func (w *Workload) Demand(profiles func(app.Class) *app.Profile) float64 {
	if profiles == nil {
		profiles = app.ProfileFor
	}
	total := 0.0
	for _, j := range w.Jobs {
		prof := profiles(j.Class)
		total += float64(j.Request) * prof.DedicatedTime(j.Request).Seconds()
	}
	return total
}

// EstimatedLoad returns Work divided by machine capacity over the window.
func (w *Workload) EstimatedLoad(window sim.Time) float64 {
	return w.Work(nil) / (float64(w.NCPU) * window.Seconds())
}

// CountByClass returns how many jobs of each class the workload contains.
func (w *Workload) CountByClass() map[app.Class]int {
	out := map[app.Class]int{}
	for _, j := range w.Jobs {
		out[j.Class]++
	}
	return out
}
