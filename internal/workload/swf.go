package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pdpasim/internal/app"
	"pdpasim/internal/sim"
)

// The Standard Workload Format (SWF, Feitelson et al., version 2) describes
// one job per line with 18 whitespace-separated integer fields. This package
// uses the subset an *input* trace needs:
//
//	field  2: submit time (seconds)
//	field  8: requested number of processors
//	field 14: executable (application) number — we store the app.Class
//
// plus field 1 (job number). Unknown or inapplicable fields are -1, as the
// format specifies. Header comment lines start with ';'.

// WriteSWF serializes the workload as an SWF version 2 trace.
func (w *Workload) WriteSWF(out io.Writer) error {
	bw := bufio.NewWriter(out)
	fmt.Fprintf(bw, "; Version: 2\n")
	fmt.Fprintf(bw, "; Computer: pdpasim simulated SGI Origin 2000\n")
	fmt.Fprintf(bw, "; MaxProcs: %d\n", w.NCPU)
	fmt.Fprintf(bw, "; Workload: %s\n", w.Name)
	fmt.Fprintf(bw, "; TargetLoad: %.2f\n", w.TargetLoad)
	fmt.Fprintf(bw, "; Note: executable number (field 14) encodes the application class:\n")
	for _, c := range app.AllClasses() {
		fmt.Fprintf(bw, ";   %d = %s\n", int(c), c)
	}
	for _, j := range w.Jobs {
		// 18 fields: jobnum submit wait run procs cpu mem reqprocs reqtime
		// reqmem status uid gid exe queue partition prec think
		fmt.Fprintf(bw, "%d %d -1 -1 -1 -1 -1 %d -1 -1 -1 -1 -1 %d -1 -1 -1 -1\n",
			j.ID+1, int64(j.Submit.Seconds()+0.5), j.Request, int(j.Class))
	}
	return bw.Flush()
}

// ParseSWF reads an SWF trace written by WriteSWF (or any SWF v2 input trace
// using the same field conventions). Header directives MaxProcs, Workload,
// and TargetLoad are honored when present.
func ParseSWF(in io.Reader) (*Workload, error) {
	w := &Workload{NCPU: 64}
	sc := bufio.NewScanner(in)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			parseHeader(w, line)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 14 {
			return nil, fmt.Errorf("workload: swf line %d: %d fields, want >= 14", lineno, len(fields))
		}
		submit, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || submit < 0 {
			return nil, fmt.Errorf("workload: swf line %d: bad submit time %q", lineno, fields[1])
		}
		req, err := strconv.Atoi(fields[7])
		if err != nil || req < 1 {
			return nil, fmt.Errorf("workload: swf line %d: bad requested processors %q", lineno, fields[7])
		}
		exe, err := strconv.Atoi(fields[13])
		if err != nil || exe < 0 || exe >= app.NumClasses {
			return nil, fmt.Errorf("workload: swf line %d: bad executable number %q", lineno, fields[13])
		}
		w.Jobs = append(w.Jobs, Job{
			ID:      len(w.Jobs),
			Class:   app.Class(exe),
			Submit:  sim.FromSeconds(submit),
			Request: req,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading swf: %w", err)
	}
	for i := 1; i < len(w.Jobs); i++ {
		if w.Jobs[i].Submit < w.Jobs[i-1].Submit {
			return nil, fmt.Errorf("workload: swf jobs not sorted by submit time at line for job %d", i+1)
		}
	}
	return w, nil
}

func parseHeader(w *Workload, line string) {
	body := strings.TrimSpace(strings.TrimPrefix(line, ";"))
	key, val, ok := strings.Cut(body, ":")
	if !ok {
		return
	}
	val = strings.TrimSpace(val)
	switch strings.TrimSpace(key) {
	case "MaxProcs":
		if n, err := strconv.Atoi(val); err == nil && n > 0 {
			w.NCPU = n
		}
	case "Workload":
		w.Name = val
	case "TargetLoad":
		if f, err := strconv.ParseFloat(val, 64); err == nil && f > 0 {
			w.TargetLoad = f
		}
	}
}
