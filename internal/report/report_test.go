package report

import (
	"strings"
	"testing"

	"pdpasim/internal/experiments"
	"pdpasim/internal/sim"
)

func quickOpts() experiments.Options {
	o := experiments.Quick()
	o.Window = 300 * sim.Second
	return o
}

func TestScorecardAllPass(t *testing.T) {
	if testing.Short() {
		t.Skip("full scorecard")
	}
	results := Scorecard(quickOpts())
	if len(results) < 8 {
		t.Fatalf("only %d claims", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: error: %v", r.Claim.ID, r.Err)
			continue
		}
		if !r.Pass {
			t.Errorf("%s FAILED: %s (%s)", r.Claim.ID, r.Claim.Statement, r.Detail)
		}
	}
}

func TestRender(t *testing.T) {
	results := []Result{
		{Claim: Claim{ID: "x", Statement: "s"}, Pass: true, Detail: "d"},
		{Claim: Claim{ID: "y", Statement: "t"}, Pass: false, Detail: "e"},
	}
	out := Render(results)
	for _, want := range []string{"[PASS] x", "[FAIL] y", "1/2 claims reproduced"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}

func TestClaimsHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Claims() {
		if c.ID == "" || c.Statement == "" || c.Check == nil {
			t.Fatalf("incomplete claim %+v", c)
		}
		if seen[c.ID] {
			t.Fatalf("duplicate claim id %q", c.ID)
		}
		seen[c.ID] = true
	}
}
