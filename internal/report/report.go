// Package report verifies the reproduction: each paper claim is encoded as
// a programmatic check over fresh simulation runs, and the scorecard states
// pass/fail with the measured numbers. This is the library form of "does
// the repository still reproduce the paper" — run it after any change to
// the models or the policy.
package report

import (
	"fmt"

	"pdpasim/internal/app"
	"pdpasim/internal/experiments"
	"pdpasim/internal/metrics"
	"pdpasim/internal/sim"
	"pdpasim/internal/system"
	"pdpasim/internal/workload"
)

// Claim is one verifiable statement from the paper.
type Claim struct {
	// ID ties the claim to its artifact (fig4, tab2, ...).
	ID string
	// Statement is the paper's claim in one sentence.
	Statement string
	// Check runs the necessary simulations and returns pass plus a detail
	// line with the measured values.
	Check func(o experiments.Options) (bool, string, error)
}

// Result is one verified claim.
type Result struct {
	Claim  Claim
	Pass   bool
	Detail string
	Err    error
}

// window returns the options' submission window, defaulting to the paper's
// 300 s.
func window(o experiments.Options) sim.Time {
	if o.Window > 0 {
		return o.Window
	}
	return 300 * sim.Second
}

// run executes a workload/policy pair with default settings.
func run(o experiments.Options, mix workload.Mix, load float64, seed int64, pk system.PolicyKind) (*metrics.RunResult, error) {
	w, err := workload.Generate(workload.GenConfig{
		Mix: mix, Load: load, NCPU: 60, Window: window(o), Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return system.Run(system.Config{Workload: w, Policy: pk, Seed: seed})
}

// Claims returns the scorecard's checks in paper order.
func Claims() []Claim {
	return []Claim{
		{
			ID:        "fig3",
			Statement: "The four applications span superlinear, good, medium, and no scalability",
			Check: func(o experiments.Options) (bool, string, error) {
				swim := app.ProfileFor(app.Swim).Speedup
				bt := app.ProfileFor(app.BT).Speedup
				hydro := app.ProfileFor(app.Hydro2D).Speedup
				apsi := app.ProfileFor(app.Apsi).Speedup
				pass := app.Efficiency(swim, 12) > 1 &&
					app.Efficiency(bt, 30) >= 0.85 &&
					app.MaxProcsAtEfficiency(hydro, 0.7, 60) >= 8 &&
					app.MaxProcsAtEfficiency(hydro, 0.7, 60) <= 12 &&
					apsi.Speedup(60) < 1.7
				detail := fmt.Sprintf("swim eff(12)=%.2f, bt eff(30)=%.2f, hydro frontier=%d, apsi S(60)=%.2f",
					app.Efficiency(swim, 12), app.Efficiency(bt, 30),
					app.MaxProcsAtEfficiency(hydro, 0.7, 60), apsi.Speedup(60))
				return pass, detail, nil
			},
		},
		{
			ID:        "fig4",
			Statement: "On w1 (PDPA's worst case) PDPA trails Equipartition moderately, IRIX is far worse, and Equal_efficiency's schedule churns",
			Check: func(o experiments.Options) (bool, string, error) {
				resp := map[system.PolicyKind]float64{}
				migs := map[system.PolicyKind]int{}
				for _, pk := range system.PolicyKinds() {
					res, err := run(o, workload.W1(), 1.0, 1, pk)
					if err != nil {
						return false, "", err
					}
					resp[pk] = res.ResponseByClass()[app.Swim]
					migs[pk] = res.Stability.Migrations
				}
				pass := resp[system.PDPA] <= 2.5*resp[system.Equipartition] &&
					resp[system.IRIX] > resp[system.PDPA] &&
					migs[system.EqualEfficiency] >= 20*(migs[system.PDPA]+1)
				detail := fmt.Sprintf("swim resp: IRIX=%.0fs Equip=%.0fs Equal_eff=%.0fs PDPA=%.0fs; migrations Equal_eff=%d PDPA=%d",
					resp[system.IRIX], resp[system.Equipartition],
					resp[system.EqualEfficiency], resp[system.PDPA],
					migs[system.EqualEfficiency], migs[system.PDPA])
				return pass, detail, nil
			},
		},
		{
			ID:        "tab2",
			Statement: "IRIX migrates orders of magnitude more than PDPA, whose bursts are ~100x longer",
			Check: func(o experiments.Options) (bool, string, error) {
				irix, err := run(o, workload.W1(), 1.0, 1, system.IRIX)
				if err != nil {
					return false, "", err
				}
				pdpa, err := run(o, workload.W1(), 1.0, 1, system.PDPA)
				if err != nil {
					return false, "", err
				}
				pass := irix.Stability.Migrations >= 100*(pdpa.Stability.Migrations+1) &&
					pdpa.Stability.AvgBurst >= 20*irix.Stability.AvgBurst
				detail := fmt.Sprintf("migrations IRIX=%d PDPA=%d; bursts IRIX=%v PDPA=%v",
					irix.Stability.Migrations, pdpa.Stability.Migrations,
					irix.Stability.AvgBurst, pdpa.Stability.AvgBurst)
				return pass, detail, nil
			},
		},
		{
			ID:        "fig6",
			Statement: "On w2 PDPA matches Equipartition's bt response and gives bt more processors than hydro2d",
			Check: func(o experiments.Options) (bool, string, error) {
				pdpa, err := run(o, workload.W2(), 1.0, 1, system.PDPA)
				if err != nil {
					return false, "", err
				}
				equip, err := run(o, workload.W2(), 1.0, 1, system.Equipartition)
				if err != nil {
					return false, "", err
				}
				alloc := pdpa.AvgAllocByClass()
				pass := pdpa.ResponseByClass()[app.BT] <= 1.3*equip.ResponseByClass()[app.BT] &&
					alloc[app.BT] > alloc[app.Hydro2D]
				detail := fmt.Sprintf("bt resp PDPA=%.0fs Equip=%.0fs; PDPA cpus bt=%.1f hydro=%.1f",
					pdpa.ResponseByClass()[app.BT], equip.ResponseByClass()[app.BT],
					alloc[app.BT], alloc[app.Hydro2D])
				return pass, detail, nil
			},
		},
		{
			ID:        "fig8",
			Statement: "PDPA drives the multiprogramming level above the fixed default and adapts it over the run",
			Check: func(o experiments.Options) (bool, string, error) {
				res, err := run(o, workload.W2(), 1.0, 1, system.PDPA)
				if err != nil {
					return false, "", err
				}
				pass := res.MaxMPL > 4 && len(res.MPLTimeline) > 10
				detail := fmt.Sprintf("max ML=%d, %d level changes", res.MaxMPL, len(res.MPLTimeline))
				return pass, detail, nil
			},
		},
		{
			ID:        "fig9",
			Statement: "On w3 PDPA improves both classes' response times by a large factor (the paper reports ~600%)",
			Check: func(o experiments.Options) (bool, string, error) {
				pdpa, err := run(o, workload.W3(), 1.0, 1, system.PDPA)
				if err != nil {
					return false, "", err
				}
				equip, err := run(o, workload.W3(), 1.0, 1, system.Equipartition)
				if err != nil {
					return false, "", err
				}
				pr, er := pdpa.ResponseByClass(), equip.ResponseByClass()
				pass := er[app.BT] >= 2*pr[app.BT] && er[app.Apsi] >= 2*pr[app.Apsi]
				detail := fmt.Sprintf("bt %.0fs->%.0fs (%.1fx), apsi %.0fs->%.0fs (%.1fx)",
					er[app.BT], pr[app.BT], er[app.BT]/pr[app.BT],
					er[app.Apsi], pr[app.Apsi], er[app.Apsi]/pr[app.Apsi])
				return pass, detail, nil
			},
		},
		{
			ID:        "fig9-exec",
			Statement: "PDPA's response gains cost little execution time: apsi none, bt bounded",
			Check: func(o experiments.Options) (bool, string, error) {
				pdpa, err := run(o, workload.W3(), 1.0, 1, system.PDPA)
				if err != nil {
					return false, "", err
				}
				equip, err := run(o, workload.W3(), 1.0, 1, system.Equipartition)
				if err != nil {
					return false, "", err
				}
				pe, ee := pdpa.ExecutionByClass(), equip.ExecutionByClass()
				pass := pe[app.Apsi] <= 1.1*ee[app.Apsi] && pe[app.BT] <= 2.2*ee[app.BT]
				detail := fmt.Sprintf("exec apsi %.0fs vs %.0fs; bt %.0fs vs %.0fs",
					pe[app.Apsi], ee[app.Apsi], pe[app.BT], ee[app.BT])
				return pass, detail, nil
			},
		},
		{
			ID:        "fig10",
			Statement: "On the full mix PDPA improves every class's response time, and superlinear swim gets fewer processors than bt (the RelativeSpeedup stop)",
			Check: func(o experiments.Options) (bool, string, error) {
				pdpa, err := run(o, workload.W4(), 0.8, 1, system.PDPA)
				if err != nil {
					return false, "", err
				}
				equip, err := run(o, workload.W4(), 0.8, 1, system.Equipartition)
				if err != nil {
					return false, "", err
				}
				pass := true
				for _, c := range app.AllClasses() {
					if pdpa.ResponseByClass()[c] >= equip.ResponseByClass()[c] {
						pass = false
					}
				}
				alloc := pdpa.AvgAllocByClass()
				swimBelowBT := alloc[app.Swim] < alloc[app.BT]+3
				detail := fmt.Sprintf("PDPA cpus swim=%.1f bt=%.1f hydro=%.1f apsi=%.1f",
					alloc[app.Swim], alloc[app.BT], alloc[app.Hydro2D], alloc[app.Apsi])
				return pass && swimBelowBT, detail, nil
			},
		},
		{
			ID:        "tab3",
			Statement: "Untuned submissions (apsi requesting 30) are where PDPA's robustness shows: far better response and workload time, far higher ML",
			Check: func(o experiments.Options) (bool, string, error) {
				w, err := workload.Generate(workload.GenConfig{
					Mix: workload.W3(), Load: 0.6, NCPU: 60, Window: window(o), Seed: 1,
				})
				if err != nil {
					return false, "", err
				}
				untuned := w.WithUniformRequest(30)
				pdpa, err := system.Run(system.Config{Workload: untuned, Policy: system.PDPA, Seed: 1})
				if err != nil {
					return false, "", err
				}
				equip, err := system.Run(system.Config{Workload: untuned, Policy: system.Equipartition, Seed: 1})
				if err != nil {
					return false, "", err
				}
				pass := equip.ResponseByClass()[app.Apsi] >= 1.5*pdpa.ResponseByClass()[app.Apsi] &&
					equip.Makespan > pdpa.Makespan &&
					pdpa.MaxMPL >= 3*equip.MaxMPL
				detail := fmt.Sprintf("apsi resp %.0fs vs %.0fs; makespan %.0fs vs %.0fs; ML %d vs %d",
					equip.ResponseByClass()[app.Apsi], pdpa.ResponseByClass()[app.Apsi],
					equip.Makespan.Seconds(), pdpa.Makespan.Seconds(),
					equip.MaxMPL, pdpa.MaxMPL)
				return pass, detail, nil
			},
		},
		{
			ID:        "ext3",
			Statement: "The CC-NUMA page model costs stable space-sharing schedules only a few percent; instability shows as thread-migration churn",
			Check: func(o experiments.Options) (bool, string, error) {
				slow := func(pk system.PolicyKind) (float64, error) {
					w, err := workload.Generate(workload.GenConfig{
						Mix: workload.W1(), Load: 1.0, NCPU: 60, Window: window(o), Seed: 1,
					})
					if err != nil {
						return 0, err
					}
					mem := &system.MemoryConfig{}
					base, err := system.Run(system.Config{Workload: w, Policy: pk, Seed: 1, NUMANodeSize: 4})
					if err != nil {
						return 0, err
					}
					numa, err := system.Run(system.Config{Workload: w, Policy: pk, Seed: 1, NUMANodeSize: 4, Memory: mem})
					if err != nil {
						return 0, err
					}
					return numa.Makespan.Seconds() / base.Makespan.Seconds(), nil
				}
				p, err := slow(system.PDPA)
				if err != nil {
					return false, "", err
				}
				d, err := slow(system.Dynamic)
				if err != nil {
					return false, "", err
				}
				pass := p < 1.15 && d < 1.15
				return pass, fmt.Sprintf("slowdown PDPA=%.2fx Dynamic=%.2fx (churn cost is in migration counts, cf. fig4/tab2)", p, d), nil
			},
		},
		{
			ID:        "ext6",
			Statement: "A load-adaptive target efficiency (the paper's sketched variant) improves on the static 0.7 at light load without losing under backlog",
			Check: func(o experiments.Options) (bool, string, error) {
				static, err := run(o, workload.W2(), 0.6, 1, system.PDPA)
				if err != nil {
					return false, "", err
				}
				adaptive, err := run(o, workload.W2(), 0.6, 1, system.AdaptivePDPA)
				if err != nil {
					return false, "", err
				}
				se := static.ExecutionByClass()[app.Hydro2D]
				ae := adaptive.ExecutionByClass()[app.Hydro2D]
				pass := ae < se && adaptive.Makespan <= static.Makespan+static.Makespan/10
				detail := fmt.Sprintf("hydro exec static=%.0fs adaptive=%.0fs; makespan %.0fs vs %.0fs",
					se, ae, static.Makespan.Seconds(), adaptive.Makespan.Seconds())
				return pass, detail, nil
			},
		},
	}
}

// Scorecard verifies every claim and returns the results.
func Scorecard(o experiments.Options) []Result {
	var out []Result
	for _, c := range Claims() {
		pass, detail, err := c.Check(o)
		out = append(out, Result{Claim: c, Pass: pass && err == nil, Detail: detail, Err: err})
	}
	return out
}

// Render formats the scorecard as text.
func Render(results []Result) string {
	out := ""
	passed := 0
	for _, r := range results {
		mark := "PASS"
		if !r.Pass {
			mark = "FAIL"
		} else {
			passed++
		}
		out += fmt.Sprintf("[%s] %-9s %s\n", mark, r.Claim.ID, r.Claim.Statement)
		if r.Err != nil {
			out += fmt.Sprintf("           error: %v\n", r.Err)
		} else {
			out += fmt.Sprintf("           %s\n", r.Detail)
		}
	}
	out += fmt.Sprintf("\n%d/%d claims reproduced\n", passed, len(results))
	return out
}
