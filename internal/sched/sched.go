// Package sched defines the vocabulary shared between the resource manager
// and the space-sharing processor allocation policies: the per-job view a
// policy sees, the performance reports flowing up from the runtime, and the
// Policy interface itself.
//
// Policies never see an application's true speedup curve — only the
// measurements the SelfAnalyzer reports — mirroring the paper's premise that
// a priori information is unavailable or untrustworthy.
package sched

import (
	"slices"

	"pdpasim/internal/sim"
)

// JobID identifies one running job within a simulation.
type JobID int

// Report is one performance observation of a job, produced by the
// SelfAnalyzer and forwarded by the runtime.
type Report struct {
	// At is when the report was delivered.
	At sim.Time
	// Procs is the allocation the measurement was taken at.
	Procs int
	// Speedup is the measured speedup versus one processor.
	Speedup float64
	// Efficiency is Speedup/Procs.
	Efficiency float64
	// IterTime is the measured iteration wall time.
	IterTime sim.Time
}

// JobView is the scheduler-visible state of one running job.
type JobView struct {
	ID      JobID
	Name    string
	Request int
	// Gran is the job's allocation granularity: 1 for malleable OpenMP
	// jobs, Request for rigid MPI jobs, an intermediate process count for
	// MPI+OpenMP hybrids. The resource manager rounds grants to multiples
	// of Gran; policies may plan any number.
	Gran int
	// Allocated is the job's current processor allocation.
	Allocated int
	// Arrived is when the job started running (entered RM control).
	Arrived sim.Time
	// Reports is the job's performance history, oldest first. Policies may
	// read but must not mutate it.
	Reports []Report
}

// LastReport returns the most recent report, or nil.
func (j *JobView) LastReport() *Report {
	if len(j.Reports) == 0 {
		return nil
	}
	return &j.Reports[len(j.Reports)-1]
}

// HasPerformance reports whether the job has delivered any measurement yet.
func (j *JobView) HasPerformance() bool { return len(j.Reports) > 0 }

// View is the system snapshot a policy plans against.
type View struct {
	Now sim.Time
	// NCPU is the machine size.
	NCPU int
	// Jobs are the running jobs, sorted by ascending ID (arrival order).
	Jobs []*JobView
	// Queued is the number of jobs waiting in the queuing system.
	Queued int
}

// FreeCPUs returns NCPU minus the sum of current allocations (never
// negative).
func (v *View) FreeCPUs() int {
	used := 0
	for _, j := range v.Jobs {
		used += j.Allocated
	}
	if used >= v.NCPU {
		return 0
	}
	return v.NCPU - used
}

// SortJobs orders the job list by ascending ID (the resource manager
// guarantees this before handing the view to a policy).
func (v *View) SortJobs() {
	// slices.SortFunc, not sort.Slice: this runs on every replan and the
	// reflection-based swapper allocates.
	slices.SortFunc(v.Jobs, func(a, b *JobView) int { return int(a.ID - b.ID) })
}

// Policy is a dynamic space-sharing processor allocation policy. The
// resource manager invokes the event hooks as things happen and then calls
// Plan to obtain the desired allocation for every running job; it applies
// the plan to the machine (shrinks before grows) and enforces feasibility.
//
// Implementations: PDPA (internal/core), Equipartition and Equal_efficiency
// (internal/policy). The native-IRIX model is not a Policy — it is a
// time-sharing resource manager of its own (internal/rm).
type Policy interface {
	// Name identifies the policy in results tables.
	Name() string
	// JobStarted notifies that job entered the system.
	JobStarted(now sim.Time, job *JobView)
	// JobFinished notifies that the job left the system.
	JobFinished(now sim.Time, id JobID)
	// ReportPerformance delivers a new measurement for job. The JobView
	// already includes it as the last element of Reports.
	ReportPerformance(now sim.Time, job *JobView, r Report)
	// Plan returns the desired allocation per running job. Jobs absent from
	// the map keep their current allocation. The manager clamps the plan to
	// machine capacity.
	Plan(v View) map[JobID]int
	// WantsNewJob reports whether the queuing system may launch another job
	// now — the coordination between processor scheduling and job
	// scheduling that Section 4.3 describes. Fixed-multiprogramming
	// policies return true unconditionally and rely on the queuing system's
	// level.
	WantsNewJob(v View) bool
}
