package sched

import (
	"testing"

	"pdpasim/internal/sim"
)

func TestJobViewLastReport(t *testing.T) {
	j := &JobView{ID: 1}
	if j.LastReport() != nil || j.HasPerformance() {
		t.Fatal("fresh job should have no reports")
	}
	j.Reports = append(j.Reports, Report{Procs: 4}, Report{Procs: 8})
	if got := j.LastReport(); got == nil || got.Procs != 8 {
		t.Fatalf("LastReport = %+v", got)
	}
	if !j.HasPerformance() {
		t.Fatal("HasPerformance false with reports")
	}
}

func TestViewFreeCPUs(t *testing.T) {
	v := View{NCPU: 10, Jobs: []*JobView{{Allocated: 3}, {Allocated: 4}}}
	if got := v.FreeCPUs(); got != 3 {
		t.Fatalf("free = %d", got)
	}
	v.Jobs = append(v.Jobs, &JobView{Allocated: 99})
	if got := v.FreeCPUs(); got != 0 {
		t.Fatalf("oversubscribed free = %d, want 0", got)
	}
}

func TestViewSortJobs(t *testing.T) {
	v := View{Jobs: []*JobView{{ID: 3}, {ID: 1}, {ID: 2}}}
	v.SortJobs()
	for i, want := range []JobID{1, 2, 3} {
		if v.Jobs[i].ID != want {
			t.Fatalf("order = %v %v %v", v.Jobs[0].ID, v.Jobs[1].ID, v.Jobs[2].ID)
		}
	}
}

func TestReportFields(t *testing.T) {
	r := Report{At: sim.Second, Procs: 8, Speedup: 6, Efficiency: 0.75}
	if r.Efficiency != r.Speedup/float64(r.Procs) {
		t.Fatal("fixture inconsistent")
	}
}
