package app

import (
	"fmt"

	"pdpasim/internal/sim"
)

// Class identifies one of the paper's four application types.
type Class int

// The four applications of the evaluation (Section 5): swim (SpecFP95,
// superlinear), bt.A (NAS, good scalability), hydro2d (SpecFP95, medium
// scalability), and apsi (SpecFP95, no scalability).
const (
	Swim Class = iota
	BT
	Hydro2D
	Apsi
	numClasses
)

// NumClasses is the number of built-in application classes.
const NumClasses = int(numClasses)

// String returns the application name.
func (c Class) String() string {
	switch c {
	case Swim:
		return "swim"
	case BT:
		return "bt.A"
	case Hydro2D:
		return "hydro2d"
	case Apsi:
		return "apsi"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Letter returns a one-rune label for trace rendering.
func (c Class) Letter() rune {
	switch c {
	case Swim:
		return 'S'
	case BT:
		return 'B'
	case Hydro2D:
		return 'H'
	case Apsi:
		return 'a'
	}
	return '?'
}

// Profile is the static description of an application: its scalability, its
// iterative structure, and its costs. Profiles are immutable and shared.
type Profile struct {
	Name  string
	Class Class

	// Speedup is the application's true speedup curve (Fig. 3). The
	// schedulers never see it directly; they see SelfAnalyzer measurements
	// derived from it.
	Speedup SpeedupModel

	// SerialIterationTime is the duration of one outer-loop iteration on a
	// single processor, excluding instrumentation overhead.
	SerialIterationTime sim.Time

	// Iterations is the number of outer-loop iterations the application
	// executes.
	Iterations int

	// Request is the processor count the (tuned) job submission asks for.
	Request int

	// BaselineProcs and BaselineIterations configure the SelfAnalyzer's
	// baseline measurement: the first BaselineIterations iterations run on
	// at most BaselineProcs processors.
	BaselineProcs      int
	BaselineIterations int

	// MeasurementOverhead is the fractional slowdown instrumentation adds
	// to every iteration (the paper notes hydro2d "suffers overhead due to
	// the measurement process").
	MeasurementOverhead float64

	// ReallocPenalty is wall-clock dead time the application pays each time
	// its processor allocation changes (thread creation/joining and data
	// redistribution on the CC-NUMA machine).
	ReallocPenalty sim.Time

	// IterEventName optionally names the engine event for the application's
	// iteration boundaries ("<name>/iter"). Runtimes fall back to building
	// the string per instance when empty; the built-in profiles precompute it
	// because one is armed for every job start.
	IterEventName string

	// LoopSignature is the sequence of parallel-loop identifiers executed by
	// one outer iteration, used by the Dynamic Periodicity Detector when
	// monitoring binary-only applications.
	LoopSignature []uint64

	// Phases optionally makes the application's scalability change over its
	// run — the paper's Section 3.1 caveat about iterative parallel regions
	// with a variable working set. Entries must be sorted by FromIteration;
	// before the first entry (and with no entries) Speedup applies.
	Phases []Phase
}

// Phase is one behavioural regime of a phase-changing application.
type Phase struct {
	// FromIteration is the first outer-loop iteration this model governs.
	FromIteration int
	// Speedup is the true curve during the phase.
	Speedup SpeedupModel
}

// SpeedupAt returns the speedup model governing the given iteration.
func (p *Profile) SpeedupAt(iteration int) SpeedupModel {
	model := p.Speedup
	for _, ph := range p.Phases {
		if iteration >= ph.FromIteration {
			model = ph.Speedup
		} else {
			break
		}
	}
	return model
}

// TotalSerialWork returns the application's total work in serial-seconds,
// excluding instrumentation overhead.
func (p *Profile) TotalSerialWork() sim.Time {
	return p.SerialIterationTime * sim.Time(p.Iterations)
}

// DedicatedTime estimates the wall time on a dedicated machine with procs
// processors, ignoring baseline measurement (the steady-state time the
// workload generator uses to calibrate load).
func (p *Profile) DedicatedTime(procs int) sim.Time {
	s := p.Speedup.Speedup(procs)
	return sim.Time(float64(p.TotalSerialWork()) / s)
}

// Validate checks the profile invariants.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("app: profile without name")
	case p.Speedup == nil:
		return fmt.Errorf("app %s: nil speedup model", p.Name)
	case p.SerialIterationTime <= 0:
		return fmt.Errorf("app %s: non-positive iteration time", p.Name)
	case p.Iterations <= 0:
		return fmt.Errorf("app %s: non-positive iteration count", p.Name)
	case p.Request < 1:
		return fmt.Errorf("app %s: request < 1", p.Name)
	case p.BaselineProcs < 1:
		return fmt.Errorf("app %s: baseline procs < 1", p.Name)
	case p.BaselineIterations < 0 || p.BaselineIterations >= p.Iterations:
		return fmt.Errorf("app %s: baseline iterations %d out of range", p.Name, p.BaselineIterations)
	case p.MeasurementOverhead < 0:
		return fmt.Errorf("app %s: negative measurement overhead", p.Name)
	case p.ReallocPenalty < 0:
		return fmt.Errorf("app %s: negative realloc penalty", p.Name)
	}
	for i, ph := range p.Phases {
		if ph.Speedup == nil {
			return fmt.Errorf("app %s: phase %d without speedup model", p.Name, i)
		}
		if ph.FromIteration <= 0 || ph.FromIteration >= p.Iterations {
			return fmt.Errorf("app %s: phase %d boundary %d out of range", p.Name, i, ph.FromIteration)
		}
		if i > 0 && ph.FromIteration <= p.Phases[i-1].FromIteration {
			return fmt.Errorf("app %s: phases not sorted", p.Name)
		}
	}
	return nil
}

// The calibrated speedup curves. Shapes follow Fig. 3; magnitudes are
// calibrated so standalone execution times with the tuned request match the
// per-application times reported in Tables 3 and 4 (see DESIGN.md).
var (
	// swimCurve is superlinear in the 8–16 range (the working set fits the
	// aggregate cache), still rising but with a sharply lower relative
	// speedup beyond ~16 — the property PDPA's RelativeSpeedup test detects
	// (Section 5.4).
	swimCurve = MustTable(
		Point{1, 1}, Point{2, 2.05}, Point{4, 4.3}, Point{8, 10.5},
		Point{12, 17.5}, Point{16, 24.0}, Point{20, 26.5}, Point{24, 28.0},
		Point{30, 29.5}, Point{40, 31.0}, Point{50, 32.0}, Point{60, 32.5},
	)
	// btCurve scales well and steadily: efficiency stays above high_eff=0.9
	// out to the full 30-processor request (the paper's PDPA grows bt to
	// 20-30 processors), then degrades.
	btCurve = MustTable(
		Point{1, 1}, Point{2, 1.98}, Point{4, 3.9}, Point{8, 7.6},
		Point{12, 11.3}, Point{16, 14.9}, Point{20, 18.4}, Point{24, 21.8},
		Point{30, 27.2}, Point{40, 34.0}, Point{50, 39.0}, Point{60, 43.0},
	)
	// hydroCurve saturates around ten processors (medium scalability). Its
	// 0.7-efficiency frontier sits at exactly 10 processors — the paper
	// reports PDPA settling hydro2d at 9-10.
	hydroCurve = MustTable(
		Point{1, 1}, Point{2, 1.9}, Point{4, 3.5}, Point{8, 5.9},
		Point{10, 7.05}, Point{12, 7.6}, Point{16, 8.4}, Point{20, 8.9},
		Point{24, 9.3}, Point{30, 9.8}, Point{40, 10.2}, Point{50, 10.4},
		Point{60, 10.5},
	)
	// apsiCurve does not scale: efficiency at its tuned request of 2 sits
	// just above the paper's target_eff=0.7, so PDPA holds the tuned
	// request while shrinking any larger allocation down to it.
	apsiCurve = MustTable(
		Point{1, 1}, Point{2, 1.48}, Point{4, 1.58}, Point{8, 1.64},
		Point{12, 1.66}, Point{30, 1.68}, Point{60, 1.68},
	)
)

// profiles holds the calibrated singleton for each built-in class, built
// once at package init. ProfileFor hands these out directly — a fresh copy
// per call would put two allocations (profile + loop signature) on every
// job start.
var profiles [NumClasses]*Profile

func init() {
	for c := Class(0); c < numClasses; c++ {
		p := newProfile(c)
		p.IterEventName = p.Name + "/iter"
		profiles[c] = p
	}
}

// ProfileFor returns the calibrated profile for an application class. The
// returned profile is shared and read-only: callers that need to vary a
// field (the untuned experiments of Tables 3 and 4 override per-job
// requests) must copy the struct first.
func ProfileFor(c Class) *Profile {
	if c >= 0 && c < numClasses {
		return profiles[c]
	}
	return newProfile(c) // panics with the class number
}

func newProfile(c Class) *Profile {
	var p Profile
	switch c {
	case Swim:
		p = Profile{
			Name: "swim", Class: Swim, Speedup: swimCurve,
			SerialIterationTime: 3500 * sim.Millisecond, Iterations: 60,
			Request: 30, BaselineProcs: 4, BaselineIterations: 2,
			MeasurementOverhead: 0.005,
			ReallocPenalty:      60 * sim.Millisecond,
			LoopSignature:       []uint64{0x401100, 0x401240, 0x4013a0, 0x401520},
		}
	case BT:
		p = Profile{
			Name: "bt.A", Class: BT, Speedup: btCurve,
			SerialIterationTime: 11 * sim.Second, Iterations: 200,
			Request: 30, BaselineProcs: 4, BaselineIterations: 2,
			MeasurementOverhead: 0.003,
			ReallocPenalty:      80 * sim.Millisecond,
			LoopSignature: []uint64{0x402000, 0x402140, 0x402300, 0x402480,
				0x402600, 0x402780, 0x402900, 0x402a80},
		}
	case Hydro2D:
		p = Profile{
			Name: "hydro2d", Class: Hydro2D, Speedup: hydroCurve,
			SerialIterationTime: 2800 * sim.Millisecond, Iterations: 100,
			Request: 30, BaselineProcs: 4, BaselineIterations: 2,
			// hydro2d is the application the paper singles out as suffering
			// from instrumentation overhead.
			MeasurementOverhead: 0.04,
			ReallocPenalty:      50 * sim.Millisecond,
			LoopSignature:       []uint64{0x403000, 0x403150, 0x4032a0, 0x403400, 0x403560, 0x4036c0},
		}
	case Apsi:
		p = Profile{
			Name: "apsi", Class: Apsi, Speedup: apsiCurve,
			SerialIterationTime: 2 * sim.Second, Iterations: 75,
			Request: 2, BaselineProcs: 2, BaselineIterations: 2,
			MeasurementOverhead: 0.005,
			ReallocPenalty:      30 * sim.Millisecond,
			LoopSignature:       []uint64{0x404000, 0x404180, 0x404300},
		}
	default:
		panic(fmt.Sprintf("app: unknown class %d", int(c)))
	}
	return &p
}

// AllClasses lists the built-in classes in canonical order.
func AllClasses() []Class { return []Class{Swim, BT, Hydro2D, Apsi} }
