// Package app models the parallel applications the workloads are made of.
//
// The paper evaluates four OpenMP codes with very different scalability
// (Fig. 3): swim is superlinear in the 8–16 processor range, bt.A scales
// well, hydro2d has medium scalability, and apsi does not scale. All four
// scheduling policies consume only two things from an application: the wall
// time of its outer-loop iterations (measured by the SelfAnalyzer) and its
// malleability. This package therefore models an application as an iterative
// structure driven by a calibrated speedup curve.
package app

import (
	"fmt"
	"math"
	"sort"
)

// SpeedupModel maps a processor count to the application speedup relative to
// one processor. Implementations must return 1 for p == 1 and be defined for
// every p >= 1.
type SpeedupModel interface {
	// Speedup returns S(p). p < 1 is treated as 1.
	Speedup(p int) float64
}

// Efficiency returns S(p)/p for the given model.
func Efficiency(m SpeedupModel, p int) float64 {
	if p < 1 {
		p = 1
	}
	return m.Speedup(p) / float64(p)
}

// Amdahl is the classic analytic model: a fraction Parallel of the work
// scales perfectly, the rest is serial, and an optional per-processor
// Overhead (synchronization, data distribution) grows linearly.
type Amdahl struct {
	// Parallel is the parallelizable fraction in [0, 1].
	Parallel float64
	// Overhead is the extra serial fraction added per additional processor.
	Overhead float64
}

// Speedup implements SpeedupModel.
func (a Amdahl) Speedup(p int) float64 {
	if p <= 1 {
		return 1
	}
	denom := (1 - a.Parallel) + a.Parallel/float64(p) + a.Overhead*float64(p-1)
	if denom <= 0 {
		return float64(p)
	}
	s := 1 / denom
	if s < 0 {
		return 0
	}
	return s
}

// Point is one measured (processors, speedup) sample of a curve.
type Point struct {
	Procs   int
	Speedup float64
}

// Table is a piecewise-linear speedup curve through measured points, the
// representation used for the paper's four applications. Between points the
// curve interpolates linearly; beyond the last point it stays flat (the
// conservative assumption the paper's schedulers also make).
type Table struct {
	points []Point
}

// NewTable builds a Table from points. Points are sorted by processor count.
// The curve must include p=1 with speedup 1 or it is added implicitly.
// Duplicate processor counts or non-positive speedups are rejected.
func NewTable(points ...Point) (*Table, error) {
	ps := make([]Point, 0, len(points)+1)
	havep1 := false
	for _, p := range points {
		if p.Procs < 1 {
			return nil, fmt.Errorf("app: table point with procs %d < 1", p.Procs)
		}
		if p.Speedup <= 0 {
			return nil, fmt.Errorf("app: table point with non-positive speedup %v", p.Speedup)
		}
		if p.Procs == 1 {
			if p.Speedup != 1 {
				return nil, fmt.Errorf("app: speedup at 1 processor must be 1, got %v", p.Speedup)
			}
			havep1 = true
		}
		ps = append(ps, p)
	}
	if !havep1 {
		ps = append(ps, Point{Procs: 1, Speedup: 1})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Procs < ps[j].Procs })
	for i := 1; i < len(ps); i++ {
		if ps[i].Procs == ps[i-1].Procs {
			return nil, fmt.Errorf("app: duplicate table point at %d processors", ps[i].Procs)
		}
	}
	return &Table{points: ps}, nil
}

// MustTable is NewTable that panics on error, for static curve definitions.
func MustTable(points ...Point) *Table {
	t, err := NewTable(points...)
	if err != nil {
		panic(err)
	}
	return t
}

// Speedup implements SpeedupModel by linear interpolation.
func (t *Table) Speedup(p int) float64 {
	if p < 1 {
		p = 1
	}
	pts := t.points
	if p <= pts[0].Procs {
		return pts[0].Speedup
	}
	last := pts[len(pts)-1]
	if p >= last.Procs {
		return last.Speedup
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Procs >= p })
	if pts[i].Procs == p {
		return pts[i].Speedup
	}
	lo, hi := pts[i-1], pts[i]
	frac := float64(p-lo.Procs) / float64(hi.Procs-lo.Procs)
	return lo.Speedup + frac*(hi.Speedup-lo.Speedup)
}

// Points returns a copy of the curve's samples.
func (t *Table) Points() []Point {
	out := make([]Point, len(t.points))
	copy(out, t.points)
	return out
}

// Scaled wraps a model, multiplying its speedup by a constant factor > 0
// (keeping S(1) = 1). It is used to derive perturbed curves in tests and
// ablations.
type Scaled struct {
	Model  SpeedupModel
	Factor float64
}

// Speedup implements SpeedupModel.
func (s Scaled) Speedup(p int) float64 {
	if p <= 1 {
		return 1
	}
	v := s.Model.Speedup(p) * s.Factor
	return math.Max(v, 0.01)
}

// BestProcs returns the processor count in [1, maxProcs] with the highest
// speedup (ties resolved toward fewer processors).
func BestProcs(m SpeedupModel, maxProcs int) int {
	best, bestS := 1, m.Speedup(1)
	for p := 2; p <= maxProcs; p++ {
		if s := m.Speedup(p); s > bestS {
			best, bestS = p, s
		}
	}
	return best
}

// MaxProcsAtEfficiency returns the largest processor count in [1, maxProcs]
// whose efficiency is at least target — the allocation PDPA's search
// converges toward in a dedicated machine.
func MaxProcsAtEfficiency(m SpeedupModel, target float64, maxProcs int) int {
	best := 1
	for p := 1; p <= maxProcs; p++ {
		if Efficiency(m, p) >= target {
			best = p
		}
	}
	return best
}
