package app

import (
	"testing"

	"pdpasim/internal/sim"
)

// tinyProfile returns a 3-iteration profile with a perfectly parallel
// speedup, 10s serial work per iteration, no overheads.
func tinyProfile() *Profile {
	return &Profile{
		Name: "tiny", Speedup: Amdahl{Parallel: 1},
		SerialIterationTime: 10 * sim.Second, Iterations: 3,
		Request: 4, BaselineProcs: 1, BaselineIterations: 1,
	}
}

func TestExecutionBasicFlow(t *testing.T) {
	e := NewExecution(tinyProfile(), false, 0)
	if e.Done() {
		t.Fatal("fresh execution done")
	}
	e.SetRate(0, 2) // speedup 2 => iteration takes 5s
	end := e.NextIterationEnd()
	if end != 5*sim.Second {
		t.Fatalf("NextIterationEnd = %v", end)
	}
	s := e.CompleteIteration(end)
	if !s.Clean || s.WallTime != 5*sim.Second || s.Rate != 2 || s.Index != 0 {
		t.Fatalf("sample = %+v", s)
	}
	if e.IterationsDone() != 1 {
		t.Fatalf("done = %d", e.IterationsDone())
	}
}

func TestExecutionRateChangeDirtiesIteration(t *testing.T) {
	e := NewExecution(tinyProfile(), false, 0)
	e.SetRate(0, 2)
	e.SetRate(2*sim.Second, 5) // mid-iteration change
	// Remaining work: 10 - 4 = 6 serial seconds at rate 5 => 1.2s more.
	if got := e.NextIterationEnd(); got != 3200*sim.Millisecond {
		t.Fatalf("NextIterationEnd = %v", got)
	}
	s := e.CompleteIteration(e.NextIterationEnd())
	if s.Clean {
		t.Fatal("iteration spanning a rate change should be dirty")
	}
	// Next iteration at constant rate is clean again.
	s2 := e.CompleteIteration(e.NextIterationEnd())
	if !s2.Clean || s2.Rate != 5 {
		t.Fatalf("sample2 = %+v", s2)
	}
}

func TestExecutionSameRateSetNotDirty(t *testing.T) {
	e := NewExecution(tinyProfile(), false, 0)
	e.SetRate(0, 2)
	e.SetRate(2*sim.Second, 2) // same rate: still clean
	s := e.CompleteIteration(e.NextIterationEnd())
	if !s.Clean {
		t.Fatal("same-rate SetRate dirtied the iteration")
	}
}

func TestExecutionPenaltyDelaysCompletion(t *testing.T) {
	e := NewExecution(tinyProfile(), false, 0)
	e.SetRate(0, 2)
	e.AddPenalty(sim.Second, 3*sim.Second)
	// 2 serial seconds done at t=1s; penalty 3s; remaining 8 serial at rate
	// 2 = 4s. End = 1 + 3 + 4 = 8s.
	if got := e.NextIterationEnd(); got != 8*sim.Second {
		t.Fatalf("NextIterationEnd = %v", got)
	}
	s := e.CompleteIteration(8 * sim.Second)
	if s.Clean {
		t.Fatal("penalized iteration should be dirty")
	}
}

func TestExecutionZeroRateStalls(t *testing.T) {
	e := NewExecution(tinyProfile(), false, 0)
	if e.NextIterationEnd() != sim.Forever {
		t.Fatal("stopped app should never finish")
	}
	e.SetRate(10*sim.Second, 1)
	if got := e.NextIterationEnd(); got != 20*sim.Second {
		t.Fatalf("end after idle start = %v", got)
	}
	// Idle wait before the first progress is not part of the iteration time.
	s := e.CompleteIteration(20 * sim.Second)
	if s.WallTime != 10*sim.Second || !s.Clean {
		t.Fatalf("sample = %+v", s)
	}
}

func TestExecutionStopMidIteration(t *testing.T) {
	e := NewExecution(tinyProfile(), false, 0)
	e.SetRate(0, 2)
	e.SetRate(sim.Second, 0) // preempted entirely
	if e.NextIterationEnd() != sim.Forever {
		t.Fatal("stopped app must not complete")
	}
	e.SetRate(5*sim.Second, 2)
	// 8 serial seconds remain at rate 2 => 4s.
	if got := e.NextIterationEnd(); got != 9*sim.Second {
		t.Fatalf("end = %v", got)
	}
}

func TestExecutionInstrumentationOverhead(t *testing.T) {
	p := tinyProfile()
	p.MeasurementOverhead = 0.1
	e := NewExecution(p, true, 0)
	e.SetRate(0, 1)
	if got := e.NextIterationEnd(); got != 11*sim.Second {
		t.Fatalf("instrumented iteration end = %v", got)
	}
	e2 := NewExecution(p, false, 0)
	e2.SetRate(0, 1)
	if got := e2.NextIterationEnd(); got != 10*sim.Second {
		t.Fatalf("uninstrumented iteration end = %v", got)
	}
}

func TestExecutionCompletesAll(t *testing.T) {
	e := NewExecution(tinyProfile(), false, 0)
	e.SetRate(0, 10)
	for i := 0; i < 3; i++ {
		if e.Done() {
			t.Fatalf("done early at %d", i)
		}
		e.CompleteIteration(e.NextIterationEnd())
	}
	if !e.Done() {
		t.Fatal("not done after all iterations")
	}
	if e.RemainingWork() != 0 {
		t.Fatalf("remaining = %v", e.RemainingWork())
	}
	if e.NextIterationEnd() != sim.Forever {
		t.Fatal("done app should report Forever")
	}
}

func TestExecutionRemainingWork(t *testing.T) {
	e := NewExecution(tinyProfile(), false, 0)
	if e.RemainingWork() != 30*sim.Second {
		t.Fatalf("initial remaining = %v", e.RemainingWork())
	}
	e.SetRate(0, 2)
	e.Advance(sim.Second)
	if e.RemainingWork() != 28*sim.Second {
		t.Fatalf("after 1s at rate 2: %v", e.RemainingWork())
	}
}

func TestExecutionEarlyCompletePanics(t *testing.T) {
	e := NewExecution(tinyProfile(), false, 0)
	e.SetRate(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	e.CompleteIteration(sim.Second)
}

func TestExecutionBackwardsAdvancePanics(t *testing.T) {
	e := NewExecution(tinyProfile(), false, 0)
	e.Advance(5 * sim.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	e.Advance(4 * sim.Second)
}

func TestExecutionOvershootPanics(t *testing.T) {
	e := NewExecution(tinyProfile(), false, 0)
	e.SetRate(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	// Advancing far past the iteration boundary without completing is a
	// driver bug and must be caught.
	e.Advance(60 * sim.Second)
}

func TestExecutionNegativeRateClamps(t *testing.T) {
	e := NewExecution(tinyProfile(), false, 0)
	e.SetRate(0, -5)
	if e.Rate() != 0 {
		t.Fatalf("rate = %v", e.Rate())
	}
}

func TestExecutionZeroPenaltyIgnored(t *testing.T) {
	e := NewExecution(tinyProfile(), false, 0)
	e.SetRate(0, 1)
	e.AddPenalty(sim.Second, 0)
	s := e.CompleteIteration(e.NextIterationEnd())
	if !s.Clean {
		t.Fatal("zero penalty dirtied iteration")
	}
}
