package app

import (
	"fmt"
	"math"

	"pdpasim/internal/sim"
)

// progressTolerance absorbs the fixed-point rounding of iteration-end event
// times: completion events are scheduled at the ceiling of the remaining
// wall time, so progress can overshoot the iteration boundary by at most
// rate × 1µs (rates are bounded by the machine size).
const progressTolerance = 100 * sim.Microsecond

// Execution tracks the runtime progress of one application instance through
// its iterative structure. Progress is integrated piecewise: between
// scheduling events the application advances through its serial work at a
// constant rate (its current effective speedup). Reallocation penalties are
// modeled as wall-clock dead time consumed before useful progress resumes.
//
// Execution is driven by the system clock: every state change first calls
// Advance to integrate progress up to "now" at the old rate.
type Execution struct {
	prof *Profile

	iterationsDone int
	iterWork       sim.Time // serial work per iteration, incl. instrumentation
	progress       sim.Time // serial work completed in the current iteration
	penalty        sim.Time // wall-clock dead time still to be served

	rate     float64 // current effective speedup (serial seconds per second)
	lastTime sim.Time

	iterStart     sim.Time // wall time the current iteration started
	iterDirty     bool     // the current iteration spanned a rate change
	iterStartRate float64

	// batch > 1 fuses that many iterations into one boundary event
	// (throughput mode). A hard rate change or penalty mid-batch collapses
	// the fusion so scheduling semantics never change — only how many engine
	// events an undisturbed stretch of iterations costs.
	batch int
}

// NewExecution returns the execution state for prof, instrumented (paying
// MeasurementOverhead) if instrumented is true, starting stopped (rate 0) at
// time start.
func NewExecution(prof *Profile, instrumented bool, start sim.Time) *Execution {
	e := new(Execution)
	InitExecution(e, prof, instrumented, start)
	return e
}

// InitExecution initializes e in place — the allocation-free variant of
// NewExecution for callers that embed an Execution by value. Any previous
// state of e is discarded.
func InitExecution(e *Execution, prof *Profile, instrumented bool, start sim.Time) {
	if err := prof.Validate(); err != nil {
		panic(err)
	}
	work := prof.SerialIterationTime
	if instrumented {
		work = sim.Time(float64(work) * (1 + prof.MeasurementOverhead))
	}
	*e = Execution{
		prof:      prof,
		iterWork:  work,
		lastTime:  start,
		iterStart: start,
	}
}

// Profile returns the static application description.
func (e *Execution) Profile() *Profile { return e.prof }

// Rate returns the current effective speedup.
func (e *Execution) Rate() float64 { return e.rate }

// IterationsDone returns how many iterations have completed.
func (e *Execution) IterationsDone() int { return e.iterationsDone }

// Done reports whether every iteration has completed.
func (e *Execution) Done() bool { return e.iterationsDone >= e.prof.Iterations }

// curWork returns the serial work of the current boundary span: one
// iteration normally, batch iterations while a fusion is active.
func (e *Execution) curWork() sim.Time {
	if e.batch > 1 {
		return e.iterWork * sim.Time(e.batch)
	}
	return e.iterWork
}

// AtIterationStart reports whether the execution sits exactly at an
// iteration boundary with no pending penalty and no dirty measurement — the
// only state where StartBatch is legal.
func (e *Execution) AtIterationStart() bool {
	return e.progress == 0 && e.penalty == 0 && !e.iterDirty && e.batch <= 1
}

// StartBatch fuses the next n iterations into a single boundary event. Legal
// only at a clean iteration start, with n iterations actually remaining.
// While fused, the span completes as one CompleteIteration whose sample
// reports the per-iteration average wall time; a hard rate change or penalty
// mid-span collapses the fusion (crediting whole iterations already passed)
// so allocation changes behave exactly as without batching.
func (e *Execution) StartBatch(n int) {
	if n <= 1 || e.batch > 1 {
		return
	}
	if e.progress != 0 || e.penalty != 0 || e.iterDirty {
		panic(fmt.Sprintf("app %s: StartBatch mid-iteration", e.prof.Name))
	}
	if e.iterationsDone+n > e.prof.Iterations {
		panic(fmt.Sprintf("app %s: StartBatch(%d) past the last iteration", e.prof.Name, n))
	}
	e.batch = n
}

// collapseBatch ends an active fusion early: whole iterations already worked
// through are credited to iterationsDone (their samples are dropped — the
// sampling throughput mode documents), and the in-progress iteration
// continues as a normal single iteration. The current (possibly boundary-
// complete) iteration is always left pending so the armed completion event
// stays valid.
func (e *Execution) collapseBatch() {
	if e.batch <= 1 {
		return
	}
	completed := int(e.progress / e.iterWork)
	if completed > e.batch-1 {
		completed = e.batch - 1
	}
	e.iterationsDone += completed
	e.progress -= e.iterWork * sim.Time(completed)
	e.batch = 0
}

// Advance integrates progress up to time t at the current rate. It must be
// called with non-decreasing times. Advancing past the end of the current
// iteration panics: the caller must complete iterations at their boundary
// events (the event scheduled from NextIterationEnd).
func (e *Execution) Advance(t sim.Time) {
	if t < e.lastTime {
		panic(fmt.Sprintf("app: Advance time went backwards: %v < %v", t, e.lastTime))
	}
	dt := t - e.lastTime
	e.lastTime = t
	if dt == 0 || e.Done() {
		return
	}
	if e.penalty > 0 {
		if dt <= e.penalty {
			e.penalty -= dt
			return
		}
		dt -= e.penalty
		e.penalty = 0
	}
	if e.rate <= 0 {
		return
	}
	gained := sim.Time(float64(dt) * e.rate)
	e.progress += gained
	if work := e.curWork(); e.progress > work+progressTolerance {
		panic(fmt.Sprintf("app %s: advanced %v past iteration end %v", e.prof.Name, e.progress, work))
	} else if e.progress > work {
		e.progress = work
	}
}

// SetRate changes the effective speedup at time t (advancing progress up to t
// first). If the current iteration has made progress at a different rate, it
// is marked dirty: the SelfAnalyzer discards its timing.
func (e *Execution) SetRate(t sim.Time, rate float64) {
	e.setRate(t, rate, false)
}

// SetRateSoft changes the rate without dirtying the current iteration's
// measurement. It models environmental drift the monitoring stack cannot
// observe — memory-locality changes on the CC-NUMA machine — whose effect
// legitimately lands in measured iteration times as noise. Reallocation
// rate changes must use SetRate: the runtime knows about those.
func (e *Execution) SetRateSoft(t sim.Time, rate float64) {
	e.setRate(t, rate, true)
}

func (e *Execution) setRate(t sim.Time, rate float64, soft bool) {
	if rate < 0 {
		rate = 0
	}
	e.Advance(t)
	if !soft && rate != e.rate {
		e.collapseBatch()
		if e.progress > 0 {
			e.iterDirty = true
		}
	}
	e.rate = rate
	if e.progress == 0 {
		e.iterStartRate = rate
		e.iterStart = t // idle wait before the iteration begins is not timed
	}
}

// AddPenalty adds wall-clock dead time (a reallocation penalty) at time t.
// The penalty dirties the current iteration's measurement — even at an
// iteration boundary, since the dead time lands inside the iteration's wall
// clock and would otherwise bias every measured speedup low.
func (e *Execution) AddPenalty(t, penalty sim.Time) {
	if penalty <= 0 {
		return
	}
	e.Advance(t)
	e.collapseBatch()
	e.penalty += penalty
	e.iterDirty = true
}

// NextIterationEnd returns the wall time at which the current iteration will
// complete if the rate stays constant, or sim.Forever if the application is
// stopped or already done.
func (e *Execution) NextIterationEnd() sim.Time {
	if e.Done() {
		return sim.Forever
	}
	remaining := e.curWork() - e.progress
	if e.rate <= 0 {
		return sim.Forever
	}
	return e.lastTime + e.penalty + sim.Time(math.Ceil(float64(remaining)/e.rate))
}

// IterationSample is the timing of one completed iteration, the raw material
// of the SelfAnalyzer.
type IterationSample struct {
	Index    int
	WallTime sim.Time
	// Rate the iteration ran at (meaningful only when Clean).
	Rate float64
	// Clean reports that the whole iteration ran at one rate with no
	// penalties, so its wall time is a valid performance measurement.
	Clean bool
}

// CompleteIteration finishes the current iteration at time t. It panics if
// the iteration has not actually reached its end (callers must only invoke
// it from the event scheduled at NextIterationEnd, and must reschedule that
// event whenever the rate changes).
func (e *Execution) CompleteIteration(t sim.Time) IterationSample {
	e.Advance(t)
	if e.Done() {
		panic("app: CompleteIteration after done")
	}
	work := e.curWork()
	if work-e.progress > progressTolerance || e.penalty > 0 {
		panic(fmt.Sprintf("app %s: iteration %d not finished (progress %v/%v, penalty %v)",
			e.prof.Name, e.iterationsDone, e.progress, work, e.penalty))
	}
	n := 1
	if e.batch > 1 {
		n = e.batch
	}
	s := IterationSample{
		Index:    e.iterationsDone + n - 1,
		WallTime: (t - e.iterStart) / sim.Time(n),
		Rate:     e.iterStartRate,
		Clean:    !e.iterDirty,
	}
	e.iterationsDone += n
	e.batch = 0
	e.progress = 0
	e.iterStart = t
	e.iterDirty = false
	e.iterStartRate = e.rate
	return s
}

// RemainingWork returns the serial work left, across all iterations.
func (e *Execution) RemainingWork() sim.Time {
	if e.Done() {
		return 0
	}
	n := 1
	if e.batch > 1 {
		n = e.batch
	}
	left := e.curWork() - e.progress
	left += e.iterWork * sim.Time(e.prof.Iterations-e.iterationsDone-n)
	return left
}
