package app

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAmdahlLimits(t *testing.T) {
	a := Amdahl{Parallel: 0.9}
	if a.Speedup(1) != 1 {
		t.Fatalf("S(1) = %v", a.Speedup(1))
	}
	if got := a.Speedup(2); math.Abs(got-1/(0.1+0.45)) > 1e-12 {
		t.Fatalf("S(2) = %v", got)
	}
	// Asymptote 1/(1-f) = 10.
	if got := a.Speedup(100000); math.Abs(got-10) > 0.01 {
		t.Fatalf("S(inf) = %v", got)
	}
}

func TestAmdahlOverheadCreatesMaximum(t *testing.T) {
	a := Amdahl{Parallel: 0.99, Overhead: 0.002}
	best := BestProcs(a, 100)
	if best <= 1 || best >= 100 {
		t.Fatalf("overhead model should peak inside the range, got %d", best)
	}
	if a.Speedup(100) >= a.Speedup(best) {
		t.Fatal("speedup should decline past the peak")
	}
}

func TestAmdahlClampsNegativeP(t *testing.T) {
	a := Amdahl{Parallel: 0.5}
	if a.Speedup(0) != 1 || a.Speedup(-3) != 1 {
		t.Fatal("p<1 should behave like p=1")
	}
}

func TestTableInterpolation(t *testing.T) {
	tab := MustTable(Point{1, 1}, Point{4, 4}, Point{8, 6})
	if got := tab.Speedup(2); math.Abs(got-2) > 1e-12 {
		t.Fatalf("S(2) = %v", got)
	}
	if got := tab.Speedup(6); math.Abs(got-5) > 1e-12 {
		t.Fatalf("S(6) = %v", got)
	}
	if got := tab.Speedup(4); got != 4 {
		t.Fatalf("S(4) = %v (exact point)", got)
	}
	// Flat beyond the last point.
	if got := tab.Speedup(100); got != 6 {
		t.Fatalf("S(100) = %v", got)
	}
	if got := tab.Speedup(0); got != 1 {
		t.Fatalf("S(0) = %v", got)
	}
}

func TestTableImplicitP1(t *testing.T) {
	tab := MustTable(Point{4, 4})
	if got := tab.Speedup(1); got != 1 {
		t.Fatalf("implicit S(1) = %v", got)
	}
}

func TestTableValidation(t *testing.T) {
	if _, err := NewTable(Point{0, 1}); err == nil {
		t.Fatal("procs<1 accepted")
	}
	if _, err := NewTable(Point{2, -1}); err == nil {
		t.Fatal("negative speedup accepted")
	}
	if _, err := NewTable(Point{1, 2}); err == nil {
		t.Fatal("S(1) != 1 accepted")
	}
	if _, err := NewTable(Point{4, 4}, Point{4, 5}); err == nil {
		t.Fatal("duplicate procs accepted")
	}
}

func TestMustTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustTable(Point{0, 1})
}

func TestScaled(t *testing.T) {
	s := Scaled{Model: Amdahl{Parallel: 1}, Factor: 0.5}
	if s.Speedup(1) != 1 {
		t.Fatalf("scaled S(1) = %v", s.Speedup(1))
	}
	if got := s.Speedup(10); math.Abs(got-5) > 1e-12 {
		t.Fatalf("scaled S(10) = %v", got)
	}
}

func TestEfficiency(t *testing.T) {
	a := Amdahl{Parallel: 1}
	if got := Efficiency(a, 8); got != 1 {
		t.Fatalf("perfect efficiency = %v", got)
	}
	if got := Efficiency(a, 0); got != 1 {
		t.Fatalf("eff at p=0 should clamp: %v", got)
	}
}

func TestMaxProcsAtEfficiency(t *testing.T) {
	// hydro-like curve: efficiency crosses 0.7 between 8 and 12.
	got := MaxProcsAtEfficiency(hydroCurve, 0.7, 60)
	if got < 6 || got > 10 {
		t.Fatalf("hydro2d 0.7-efficiency point = %d, want ~8", got)
	}
	if MaxProcsAtEfficiency(Amdahl{Parallel: 1}, 0.9, 60) != 60 {
		t.Fatal("perfectly parallel app should sustain any allocation")
	}
}

// TestFigure3Shapes pins the qualitative properties of the calibrated curves
// that the paper's evaluation depends on.
func TestFigure3Shapes(t *testing.T) {
	swim := ProfileFor(Swim).Speedup
	bt := ProfileFor(BT).Speedup
	hydro := ProfileFor(Hydro2D).Speedup
	apsi := ProfileFor(Apsi).Speedup

	// swim is superlinear in the 8..16 range.
	for p := 8; p <= 16; p += 4 {
		if Efficiency(swim, p) <= 1 {
			t.Fatalf("swim not superlinear at %d procs: eff=%v", p, Efficiency(swim, p))
		}
	}
	// swim's relative speedup collapses past 16: doubling 16 -> 32 gains
	// little.
	if ratio := swim.Speedup(32) / swim.Speedup(16); ratio > 1.3 {
		t.Fatalf("swim relative speedup past 16 too high: %v", ratio)
	}
	// bt keeps efficiency >= 0.7 through its request of 30.
	if eff := Efficiency(bt, 30); eff < 0.7 {
		t.Fatalf("bt efficiency at 30 = %v, want >= 0.7", eff)
	}
	// hydro2d's 0.7-efficiency allocation is ~8-10 (the paper reports PDPA
	// settling at 9-10 processors).
	if got := MaxProcsAtEfficiency(hydro, 0.7, 60); got < 7 || got > 11 {
		t.Fatalf("hydro2d target allocation = %d", got)
	}
	// apsi does not scale: speedup below 1.7 everywhere.
	if s := apsi.Speedup(60); s > 1.7 {
		t.Fatalf("apsi S(60) = %v", s)
	}
	// apsi's efficiency at its tuned request of 2 sits just above 0.7 —
	// acceptable to PDPA with margin against measurement noise.
	if eff := Efficiency(apsi, 2); eff < 0.70 || eff > 0.78 {
		t.Fatalf("apsi eff(2) = %v, want just above 0.7", eff)
	}
	// Ordering at 30 processors: swim > bt > hydro > apsi (Fig. 3).
	if !(swim.Speedup(30) > bt.Speedup(30) && bt.Speedup(30) > hydro.Speedup(30) && hydro.Speedup(30) > apsi.Speedup(30)) {
		t.Fatalf("curve ordering broken at 30: %v %v %v %v",
			swim.Speedup(30), bt.Speedup(30), hydro.Speedup(30), apsi.Speedup(30))
	}
}

// TestCalibratedExecutionTimes checks standalone execution times against the
// per-application values the paper reports (Tables 3-4): swim ~6-10s,
// bt ~80-105s, hydro2d ~28-40s, apsi ~95-125s.
func TestCalibratedExecutionTimes(t *testing.T) {
	bounds := map[Class][2]float64{
		Swim:    {5, 11},
		BT:      {75, 110},
		Hydro2D: {25, 42},
		Apsi:    {90, 130},
	}
	for c, b := range bounds {
		p := ProfileFor(c)
		got := p.DedicatedTime(p.Request).Seconds()
		if got < b[0] || got > b[1] {
			t.Errorf("%s dedicated time with request %d = %.1fs, want in [%v, %v]",
				p.Name, p.Request, got, b[0], b[1])
		}
	}
}

func TestProfileValidate(t *testing.T) {
	for _, c := range AllClasses() {
		if err := ProfileFor(c).Validate(); err != nil {
			t.Errorf("profile %v invalid: %v", c, err)
		}
	}
	bad := *ProfileFor(Swim) // ProfileFor returns shared singletons; copy before mutating
	bad.Iterations = 0
	if bad.Validate() == nil {
		t.Fatal("zero iterations accepted")
	}
	bad = *ProfileFor(Swim)
	bad.BaselineIterations = bad.Iterations
	if bad.Validate() == nil {
		t.Fatal("baseline >= iterations accepted")
	}
}

func TestClassString(t *testing.T) {
	if Swim.String() != "swim" || BT.String() != "bt.A" ||
		Hydro2D.String() != "hydro2d" || Apsi.String() != "apsi" {
		t.Fatal("class names wrong")
	}
	if Class(99).String() != "class(99)" {
		t.Fatalf("unknown class string = %q", Class(99).String())
	}
	for _, c := range AllClasses() {
		if c.Letter() == '?' {
			t.Fatalf("class %v has no letter", c)
		}
	}
}

// Property: table curves are monotone non-decreasing in p wherever their
// defining points are, and interpolation stays within the hull of adjacent
// points.
func TestTableMonotoneProperty(t *testing.T) {
	curves := []*Table{swimCurve, btCurve, hydroCurve, apsiCurve}
	for _, c := range curves {
		prev := 0.0
		for p := 1; p <= 64; p++ {
			s := c.Speedup(p)
			if s < prev {
				t.Fatalf("curve decreasing at p=%d: %v < %v", p, s, prev)
			}
			prev = s
		}
	}
}

// Property: for random tables, Speedup never extrapolates outside
// [min, max] of the defining speedups.
func TestTableBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		pts := []Point{}
		used := map[int]bool{1: true}
		for i, r := range raw {
			procs := int(r)%62 + 2
			if used[procs] {
				continue
			}
			used[procs] = true
			pts = append(pts, Point{Procs: procs, Speedup: 1 + float64(i%17)})
		}
		tab, err := NewTable(pts...)
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range tab.Points() {
			lo = math.Min(lo, p.Speedup)
			hi = math.Max(hi, p.Speedup)
		}
		for p := 0; p < 70; p++ {
			s := tab.Speedup(p)
			if s < lo-1e-9 || s > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
