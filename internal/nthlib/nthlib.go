// Package nthlib models the NANOS threads library (NthLib): the
// application-level runtime that executes the parallel application, reacts
// to processor allocation changes pushed by the resource manager, and feeds
// iteration timings to the SelfAnalyzer, reporting the resulting
// measurements back up (Section 3.1).
//
// One Runtime drives one application instance. It owns the application's
// iteration-boundary events on the simulation engine; the resource manager
// owns when and how many processors the application gets.
package nthlib

import (
	"fmt"

	"pdpasim/internal/app"
	"pdpasim/internal/periodicity"
	"pdpasim/internal/selfanalyzer"
	"pdpasim/internal/sim"
)

// Hooks are the callbacks a Runtime raises toward the system driver.
type Hooks struct {
	// OnPerformance is called when the SelfAnalyzer produces a measurement
	// (instrumented runtimes only).
	OnPerformance func(m selfanalyzer.Measurement)
	// OnDone is called once when the application completes.
	OnDone func()
	// OnIteration, if set, is called after every completed iteration (used
	// by tracing and tests).
	OnIteration func(s app.IterationSample)
	// Listener, when set, receives the same performance/done notifications
	// through one interface value instead of two captured closures — the
	// allocation-free option for drivers that start many jobs. A function
	// hook and the Listener may both be set; the function fires first.
	Listener Listener
}

// Listener is the interface form of the OnPerformance/OnDone hooks.
type Listener interface {
	OnPerformance(m selfanalyzer.Measurement)
	OnDone()
}

// Runtime executes one application instance.
type Runtime struct {
	eng      *sim.Engine
	prof     *app.Profile
	exec     app.Execution          // embedded by value: one Runtime, one Execution
	analyzer *selfanalyzer.Analyzer // nil when uninstrumented
	hooks    Hooks

	request   int
	gran      int // allocation granularity (1 = malleable, see SetGranularity)
	allocated int // processors currently granted by the RM
	effective int // processors actually in use (baseline cap, request cap)
	// rateFactor scales the space-sharing execution rate; the memory model
	// uses it to express NUMA locality (1 = all accesses local).
	rateFactor float64
	// iterEv is the iteration-boundary event, embedded by value: the engine's
	// Reschedule/ScheduleInto re-arm the same struct for the application's
	// whole life, so no per-job (or per-reschedule) event is ever allocated.
	iterEv  sim.Event
	done    bool
	rawMode bool // time-sharing manager drives rates directly

	// stride > 1 enables throughput mode: undisturbed post-baseline
	// iterations are fused up to stride at a time into one boundary event
	// (see SetThroughput).
	stride int

	// iterName and iterFn are the event name and callback passed to the
	// engine on every reschedule, precomputed once: building them inline
	// would allocate a string and a closure per allocation change.
	iterName string
	iterFn   func()

	// detector implements the binary-only monitoring path (Section 3.1):
	// when set, the runtime does not know the outer-loop structure a priori
	// — it feeds the stream of parallel-loop addresses to the Dynamic
	// Periodicity Detector and only once the iterative structure is
	// confirmed do iteration timings reach the SelfAnalyzer.
	detector       *periodicity.Detector
	structureKnown bool
}

// New returns a runtime for one instance of prof requesting request
// processors, starting at the engine's current time. analyzer may be nil
// (the uninstrumented, native-runtime case); then no performance is ever
// reported.
func New(eng *sim.Engine, prof *app.Profile, request int, analyzer *selfanalyzer.Analyzer, hooks Hooks) *Runtime {
	r := new(Runtime)
	Init(r, eng, prof, request, analyzer, hooks)
	return r
}

// Init initializes r in place — the variant of New for drivers that slab-
// allocate one Runtime per job. Any previous state of r is discarded; r must
// not have a still-pending iteration event.
func Init(r *Runtime, eng *sim.Engine, prof *app.Profile, request int, analyzer *selfanalyzer.Analyzer, hooks Hooks) {
	if request < 1 {
		panic(fmt.Sprintf("nthlib: request %d < 1", request))
	}
	iterName := prof.IterEventName
	if iterName == "" {
		iterName = prof.Name + "/iter"
	}
	// The iteration callback is a method value bound to r itself, so a
	// recycled Runtime can keep its previous one instead of allocating a
	// fresh closure per job.
	iterFn := r.iterFn
	*r = Runtime{
		eng:        eng,
		prof:       prof,
		analyzer:   analyzer,
		hooks:      hooks,
		request:    request,
		gran:       1,
		rateFactor: 1,
		iterName:   iterName,
	}
	app.InitExecution(&r.exec, prof, analyzer != nil, eng.Now())
	if iterFn == nil {
		iterFn = r.completeIteration
	}
	r.iterFn = iterFn
}

// SetRateFactor scales the application's execution rate by f in (0, 1] —
// the hook the NUMA memory model uses to express locality. Changing the
// factor mid-iteration dirties the current measurement, exactly as real
// memory effects pollute timing. Only meaningful in space-sharing mode.
func (r *Runtime) SetRateFactor(f float64) {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("nthlib: rate factor %v out of (0, 1]", f))
	}
	if f == r.rateFactor {
		return
	}
	r.rateFactor = f
	if !r.rawMode {
		r.applyRate()
	}
}

// applyRate recomputes and applies the current execution rate. The change is
// soft — it comes from environmental drift (memory locality) the monitoring
// stack cannot observe, so the current measurement stays valid and simply
// absorbs the drift as noise.
func (r *Runtime) applyRate() {
	rate := 0.0
	if r.effective >= 1 {
		rate = r.prof.SpeedupAt(r.exec.IterationsDone()).Speedup(r.effective) * r.rateFactor
	}
	if rate == r.exec.Rate() {
		return
	}
	r.exec.SetRateSoft(r.eng.Now(), rate)
	r.reschedule()
}

// SetGranularity declares the application's allocation granularity: 1 for a
// malleable OpenMP application, request for a rigid MPI application, an
// intermediate process count for an MPI+OpenMP hybrid. The runtime uses only
// multiples of the granularity (one OpenMP thread count per MPI process);
// with fewer processors than one per process the application cannot run.
// Must be called before the first allocation.
func (r *Runtime) SetGranularity(g int) {
	if g < 1 {
		g = 1
	}
	if g > r.request {
		g = r.request
	}
	r.gran = g
}

// Granularity returns the allocation granularity.
func (r *Runtime) Granularity() int { return r.gran }

// SetBinaryOnly switches the runtime to the binary-only monitoring path:
// the application's source is unavailable, so instrumentation is injected
// by interposition and the outer-loop structure must first be discovered by
// the Dynamic Periodicity Detector from the parallel-loop address stream.
// Until the detector confirms the period, no measurements reach the
// scheduler — a realistic warm-up cost compared with compiler-inserted
// instrumentation. Must be called before execution starts.
func (r *Runtime) SetBinaryOnly(on bool) {
	if !on {
		r.detector = nil
		r.structureKnown = false
		return
	}
	r.detector = periodicity.NewDetector(0)
	r.structureKnown = false
}

// StructureKnown reports whether the iterative structure is known to the
// monitoring stack (always true for compiler-instrumented applications;
// for binary-only applications, true once the detector confirms it).
func (r *Runtime) StructureKnown() bool {
	return r.detector == nil || r.structureKnown
}

// Profile returns the application profile.
func (r *Runtime) Profile() *app.Profile { return r.prof }

// Request returns the processor request.
func (r *Runtime) Request() int { return r.request }

// Allocated returns the current RM grant.
func (r *Runtime) Allocated() int { return r.allocated }

// Effective returns the parallelism actually in use (grant clamped by the
// request and, during the baseline phase, by the SelfAnalyzer cap).
func (r *Runtime) Effective() int { return r.effective }

// Done reports whether the application has completed.
func (r *Runtime) Done() bool { return r.done }

// IterationsDone returns completed iteration count.
func (r *Runtime) IterationsDone() int { return r.exec.IterationsDone() }

// RemainingWork returns serial work left.
func (r *Runtime) RemainingWork() sim.Time { return r.exec.RemainingWork() }

// SetAllocation applies an RM grant of procs processors at the current
// engine time. Changing the effective parallelism of a running application
// charges the profile's reallocation penalty.
func (r *Runtime) SetAllocation(procs int) {
	if r.rawMode {
		panic("nthlib: SetAllocation on a raw-mode runtime")
	}
	if procs < 0 {
		procs = 0
	}
	r.allocated = procs
	r.refreshEffective()
}

func (r *Runtime) refreshEffective() {
	if r.done {
		return
	}
	now := r.eng.Now()
	eff := r.allocated
	if eff > r.request {
		eff = r.request
	}
	if r.analyzer != nil && r.analyzer.InBaseline() {
		limit := r.analyzer.BaselineCap()
		if limit < r.gran {
			limit = r.gran // at least one thread per MPI process
		}
		if eff > limit {
			eff = limit
		}
	}
	if r.gran > 1 {
		eff = eff / r.gran * r.gran // whole processes only
	}
	rate := 0.0
	if eff >= 1 {
		// The application's current phase governs its true speedup (phase
		// changes model the paper's variable-working-set caveat); the rate
		// factor carries NUMA memory locality.
		rate = r.prof.SpeedupAt(r.exec.IterationsDone()).Speedup(eff) * r.rateFactor
	}
	if eff == r.effective && rate == r.exec.Rate() {
		return
	}
	if r.effective > 0 && eff > 0 && eff != r.effective {
		// Threads are created/joined and data redistributed.
		r.exec.AddPenalty(now, r.prof.ReallocPenalty)
	}
	r.effective = eff
	r.exec.SetRate(now, rate)
	r.reschedule()
}

// SetRawRate drives the execution rate directly — used by time-sharing
// resource managers (the IRIX model) that compute per-quantum effective
// rates themselves. procs records the parallelism for bookkeeping only.
func (r *Runtime) SetRawRate(rate float64, procs int) {
	r.rawMode = true
	if r.done {
		return
	}
	r.allocated = procs
	r.effective = procs
	r.exec.SetRate(r.eng.Now(), rate)
	r.reschedule()
}

// SetThroughput enables throughput mode with the given stride: once the
// baseline measure is complete and the iterative structure known, up to k
// consecutive undisturbed iterations are fused into a single engine event,
// and the SelfAnalyzer sees one averaged measurement per fused span instead
// of one per iteration. Scheduling semantics are unchanged — any allocation
// change or penalty collapses the fusion at the exact iteration it lands in,
// and fusions never cross a phase boundary — but measurement sampling (and
// therefore the noise-draw sequence) differs from exact mode, so results are
// deterministic per seed yet not byte-equal to a stride-1 run. k <= 1
// disables the mode. Raw-mode (time-sharing) runtimes ignore the stride:
// their per-quantum rate changes would collapse every fusion immediately.
func (r *Runtime) SetThroughput(k int) {
	if k < 1 {
		k = 1
	}
	r.stride = k
}

// maybeBatch arms an iteration fusion when the runtime sits at a clean
// iteration boundary and nothing scheduled needs per-iteration visibility.
func (r *Runtime) maybeBatch() {
	if r.stride <= 1 || r.rawMode || r.done || !r.exec.AtIterationStart() {
		return
	}
	if r.analyzer != nil && r.analyzer.InBaseline() {
		return // the baseline measure needs every iteration individually
	}
	if !r.StructureKnown() {
		return // the periodicity detector needs the per-iteration loop stream
	}
	done := r.exec.IterationsDone()
	n := r.prof.Iterations - done
	// Never fuse across a phase boundary: the true speedup changes there and
	// the rate must be recomputed at the exact iteration.
	for _, ph := range r.prof.Phases {
		if ph.FromIteration > done {
			if d := ph.FromIteration - done; d < n {
				n = d
			}
			break
		}
	}
	if n > r.stride {
		n = r.stride
	}
	r.exec.StartBatch(n)
}

func (r *Runtime) reschedule() {
	if r.done {
		r.eng.Cancel(&r.iterEv)
		return
	}
	r.maybeBatch()
	end := r.exec.NextIterationEnd()
	if end == sim.Forever {
		r.eng.Cancel(&r.iterEv)
		return
	}
	if r.eng.Reschedule(&r.iterEv, end) {
		return
	}
	// The previous arming (if any) has fired or been cancelled and nothing
	// else holds the struct; re-arm it.
	r.eng.ScheduleInto(&r.iterEv, end, r.iterName, r.iterFn)
}

func (r *Runtime) completeIteration() {
	sample := r.exec.CompleteIteration(r.eng.Now())
	if r.hooks.OnIteration != nil {
		r.hooks.OnIteration(sample)
	}
	if r.exec.Done() {
		r.done = true
		r.effective = 0
		if r.hooks.OnDone != nil {
			r.hooks.OnDone()
		}
		if r.hooks.Listener != nil {
			r.hooks.Listener.OnDone()
		}
		return
	}

	if r.detector != nil && !r.structureKnown {
		// Binary-only path: replay the iteration's parallel-loop addresses
		// into the periodicity detector; measurements start only once the
		// iterative structure is confirmed.
		for _, loop := range r.prof.LoopSignature {
			if r.detector.Observe(loop) {
				r.structureKnown = true
			}
		}
	}
	var (
		m  selfanalyzer.Measurement
		ok bool
	)
	if r.analyzer != nil && r.StructureKnown() {
		wasBaseline := r.analyzer.InBaseline()
		m, ok = r.analyzer.RecordIteration(sample, r.effective)
		if wasBaseline && !r.analyzer.InBaseline() {
			// Baseline finished: the cap lifts, possibly jumping the
			// effective parallelism up to the full grant.
			r.refreshEffective()
		}
	}
	if !r.rawMode {
		// A phase boundary may change the true speedup at this allocation.
		r.refreshEffective()
	}
	r.reschedule()
	if ok {
		if r.hooks.OnPerformance != nil {
			r.hooks.OnPerformance(m)
		}
		if r.hooks.Listener != nil {
			r.hooks.Listener.OnPerformance(m)
		}
	}
}
