package nthlib

import (
	"math"
	"testing"

	"pdpasim/internal/app"
	"pdpasim/internal/selfanalyzer"
	"pdpasim/internal/sim"
)

// prof4 returns a 5-iteration, perfectly parallel profile: 10s serial per
// iteration, baseline 2 iterations on 2 procs, no penalties.
func prof4() *app.Profile {
	return &app.Profile{
		Name: "t", Speedup: app.Amdahl{Parallel: 1},
		SerialIterationTime: 10 * sim.Second, Iterations: 5,
		Request: 8, BaselineProcs: 2, BaselineIterations: 2,
	}
}

func analyzer(p *app.Profile) *selfanalyzer.Analyzer {
	return selfanalyzer.MustNew(selfanalyzer.ConfigFor(p, 0), nil)
}

func TestRuntimeLifecycle(t *testing.T) {
	eng := sim.NewEngine()
	p := prof4()
	var perf []selfanalyzer.Measurement
	var doneAt sim.Time
	var rt *Runtime
	rt = New(eng, p, p.Request, analyzer(p), Hooks{
		OnPerformance: func(m selfanalyzer.Measurement) { perf = append(perf, m) },
		OnDone:        func() { doneAt = eng.Now() },
	})
	rt.SetAllocation(8)
	// Baseline cap: effective must be 2 despite the grant of 8.
	if rt.Effective() != 2 || rt.Allocated() != 8 {
		t.Fatalf("effective=%d allocated=%d", rt.Effective(), rt.Allocated())
	}
	eng.RunUntilIdle()
	if !rt.Done() {
		t.Fatal("not done")
	}
	// Baseline: 2 iterations at 2 procs = 2 × 5s. Then 3 iterations at 8
	// procs = 3 × 1.25s. Total 13.75s.
	if want := 13750 * sim.Millisecond; doneAt != want {
		t.Fatalf("done at %v, want %v", doneAt, want)
	}
	// Measurements: iterations 0-1 are the baseline (no reports); iterations
	// 2 and 3 measure at 8 procs; iteration 4 completes the app (no
	// measurement).
	if len(perf) != 2 {
		t.Fatalf("measurements = %d, want 2", len(perf))
	}
	for _, m := range perf {
		if m.Procs != 8 || math.Abs(m.Speedup-8) > 1e-9 {
			t.Fatalf("measurement = %+v", m)
		}
	}
}

func TestRuntimeReallocPenalty(t *testing.T) {
	eng := sim.NewEngine()
	p := prof4()
	p.BaselineIterations = 1
	p.BaselineProcs = 1
	p.ReallocPenalty = sim.Second
	rt := New(eng, p, p.Request, nil, Hooks{}) // uninstrumented: no baseline
	rt.SetAllocation(4)
	if rt.Effective() != 4 {
		t.Fatalf("effective = %d", rt.Effective())
	}
	// First iteration would end at 2.5s; change allocation at 1s.
	eng.At(sim.Second, "realloc", func() { rt.SetAllocation(8) })
	eng.RunUntilIdle()
	// Work: 1s at rate 4 = 4 serial done; penalty 1s; remaining 46 serial at
	// rate 8 = 5.75s. Total = 1 + 1 + 5.75 = 7.75s.
	if got := eng.Now(); got != 7750*sim.Millisecond {
		t.Fatalf("finished at %v", got)
	}
}

func TestRuntimeSameAllocationNoPenalty(t *testing.T) {
	eng := sim.NewEngine()
	p := prof4()
	p.ReallocPenalty = 10 * sim.Second
	rt := New(eng, p, p.Request, nil, Hooks{})
	rt.SetAllocation(4)
	eng.At(sim.Second, "same", func() { rt.SetAllocation(4) })
	eng.RunUntilIdle()
	// 50 serial at rate 4 = 12.5s; any penalty would push past that.
	if got := eng.Now(); got != 12500*sim.Millisecond {
		t.Fatalf("finished at %v (penalty charged on no-op realloc?)", got)
	}
}

func TestRuntimeGrantAboveRequestClamped(t *testing.T) {
	eng := sim.NewEngine()
	p := prof4()
	rt := New(eng, p, 4, nil, Hooks{})
	rt.SetAllocation(50)
	if rt.Effective() != 4 {
		t.Fatalf("effective = %d, want request cap 4", rt.Effective())
	}
}

func TestRuntimeZeroAllocationStalls(t *testing.T) {
	eng := sim.NewEngine()
	p := prof4()
	rt := New(eng, p, 8, nil, Hooks{})
	rt.SetAllocation(0)
	eng.Run(100 * sim.Second)
	if rt.Done() || rt.IterationsDone() != 0 {
		t.Fatal("app progressed with zero processors")
	}
	rt.SetAllocation(8)
	eng.RunUntilIdle()
	if !rt.Done() {
		t.Fatal("app did not resume")
	}
}

func TestRuntimeDirtyIterationNotReported(t *testing.T) {
	eng := sim.NewEngine()
	p := prof4()
	p.BaselineIterations = 1
	p.BaselineProcs = 2
	var perf []selfanalyzer.Measurement
	rt := New(eng, p, 8, analyzer(p), Hooks{
		OnPerformance: func(m selfanalyzer.Measurement) { perf = append(perf, m) },
	})
	rt.SetAllocation(2)
	// Mid-iteration grant change: iteration 0 runs at 2 (baseline cap), so
	// a change 2 -> 3 effective... baseline cap keeps it at 2. Change the
	// request? Instead change after baseline: schedule a change mid
	// iteration 1.
	eng.At(6*sim.Second, "change", func() { rt.SetAllocation(6) })
	eng.RunUntilIdle()
	// Iteration 1 (first post-baseline) is dirty, so the first post-baseline
	// measurement comes from a later iteration at 6 procs.
	if len(perf) < 2 {
		t.Fatalf("measurements = %d", len(perf))
	}
	for _, m := range perf[1:] {
		if m.Procs != 6 {
			t.Fatalf("post-baseline measurement at %d procs", m.Procs)
		}
	}
}

func TestRuntimeRawMode(t *testing.T) {
	eng := sim.NewEngine()
	p := prof4()
	var done bool
	rt := New(eng, p, 8, nil, Hooks{OnDone: func() { done = true }})
	rt.SetRawRate(5, 8)
	eng.RunUntilIdle()
	if !done {
		t.Fatal("raw mode app did not finish")
	}
	// 50 serial at rate 5 = 10s.
	if eng.Now() != 10*sim.Second {
		t.Fatalf("finished at %v", eng.Now())
	}
}

func TestRuntimeRawModeRejectsSetAllocation(t *testing.T) {
	eng := sim.NewEngine()
	rt := New(eng, prof4(), 8, nil, Hooks{})
	rt.SetRawRate(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	rt.SetAllocation(4)
}

func TestRuntimeOnIterationHook(t *testing.T) {
	eng := sim.NewEngine()
	p := prof4()
	count := 0
	rt := New(eng, p, 8, nil, Hooks{OnIteration: func(app.IterationSample) { count++ }})
	rt.SetAllocation(8)
	eng.RunUntilIdle()
	if count != p.Iterations {
		t.Fatalf("iteration hooks = %d, want %d", count, p.Iterations)
	}
	if rt.RemainingWork() != 0 {
		t.Fatalf("remaining = %v", rt.RemainingWork())
	}
}

func TestRuntimeInvalidRequestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(sim.NewEngine(), prof4(), 0, nil, Hooks{})
}

func TestRuntimeReallocDuringPerfCallback(t *testing.T) {
	// The RM typically reacts to OnPerformance by immediately changing the
	// allocation; the runtime must handle the reentrant call.
	eng := sim.NewEngine()
	p := prof4()
	p.BaselineIterations = 1
	p.BaselineProcs = 1
	var rt *Runtime
	first := true
	rt = New(eng, p, 8, analyzer(p), Hooks{
		OnPerformance: func(m selfanalyzer.Measurement) {
			if first {
				first = false
				rt.SetAllocation(8)
			}
		},
	})
	rt.SetAllocation(2)
	eng.RunUntilIdle()
	if !rt.Done() {
		t.Fatal("did not finish")
	}
}

func TestBinaryOnlyDelaysMeasurements(t *testing.T) {
	mk := func(binaryOnly bool) int {
		eng := sim.NewEngine()
		p := app.ProfileFor(app.BT)
		prof := *p
		prof.Iterations = 20
		var firstReport int = -1
		an := selfanalyzer.MustNew(selfanalyzer.ConfigFor(&prof, 0), nil)
		var rt *Runtime
		rt = New(eng, &prof, 30, an, Hooks{
			OnPerformance: func(m selfanalyzer.Measurement) {
				if firstReport < 0 {
					firstReport = rt.IterationsDone()
				}
			},
		})
		rt.SetBinaryOnly(binaryOnly)
		rt.SetAllocation(30)
		eng.RunUntilIdle()
		if !rt.Done() {
			t.Fatal("did not finish")
		}
		return firstReport
	}
	instrumented := mk(false)
	binary := mk(true)
	if instrumented < 0 || binary < 0 {
		t.Fatalf("no reports: instrumented=%d binary=%d", instrumented, binary)
	}
	if binary <= instrumented {
		t.Fatalf("binary-only first report at iteration %d, instrumented at %d — want later",
			binary, instrumented)
	}
}

func TestStructureKnownStates(t *testing.T) {
	eng := sim.NewEngine()
	p := app.ProfileFor(app.Apsi)
	rt := New(eng, p, 2, nil, Hooks{})
	if !rt.StructureKnown() {
		t.Fatal("instrumented runtime must know its structure")
	}
	rt.SetBinaryOnly(true)
	if rt.StructureKnown() {
		t.Fatal("binary-only runtime must start unknown")
	}
	rt.SetBinaryOnly(false)
	if !rt.StructureKnown() {
		t.Fatal("disabling binary-only restores knowledge")
	}
}

func TestSetRateFactor(t *testing.T) {
	eng := sim.NewEngine()
	p := prof4()
	rt := New(eng, p, 8, nil, Hooks{})
	rt.SetAllocation(8)
	// Halving the rate doubles the remaining time.
	rt.SetRateFactor(0.5)
	eng.RunUntilIdle()
	// 50 serial at rate 8*0.5=4 => 12.5s.
	if got := eng.Now(); got != 12500*sim.Millisecond {
		t.Fatalf("finished at %v", got)
	}
}

func TestSetRateFactorValidation(t *testing.T) {
	eng := sim.NewEngine()
	rt := New(eng, prof4(), 8, nil, Hooks{})
	for _, bad := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("factor %v accepted", bad)
				}
			}()
			rt.SetRateFactor(bad)
		}()
	}
	rt.SetRateFactor(1) // no-op must not panic
}
