package scenario

import (
	"strings"
	"testing"
	"time"

	"pdpasim/internal/faults"
)

const validDoc = `
name: full
description: exercises every schema corner
seed: 9
pool:
  base_workers: 1
  max_workers: 2
  warmup: 1ms
  queue_limit: 8
  cache_size: 2
  shed_depth: 3
  run_timeout: 50ms
  max_retries: 2
  retry_backoff: 1ms
defaults:
  workload: {mix: w2, load: 0.7, ncpu: 16, window_s: 30, seed: 4, uniform_request: 8}
  options: {policy: pdpa, target_eff: 0.6, step: 2}
faults:
  - "worker_start:error transient count=2"
  - "cache_hit:delay delay=5ms"
events:
  - submit: {name: a, workload: {seed: 11}, options: {policy: equip}}
  - arrivals: {prefix: b, count: 2, pattern: diurnal, load_min: 0.2, load_max: 0.8, period: 2}
  - set_policy: {policy: gang}
  - wait: {run: a, state: done}
  - wait_all:
  - cancel: {run: b1}
assertions:
  - state: {run: a, is: done}
  - states: {prefix: b, are: [done, canceled]}
  - admission: {run: a, is: fresh}
  - error_contains: {run: b1, substr: canceled}
  - metric: {name: pdpad_sheds_total, equals: 0}
  - metric: {name: pdpad_run_wall_seconds_count, min: 1, max: 10}
  - outcome: {run: a, policy: Equip, jobs: 3, makespan_min_s: 1, makespan_max_s: 500}
  - same_result: {runs: [a, b0]}
  - injected: {site: worker_start, count: 2}
  - invariants:
  - no_leaks:
`

func TestParseFullSchema(t *testing.T) {
	s, err := Parse([]byte(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "full" || s.Seed != 9 {
		t.Fatalf("header %q/%d", s.Name, s.Seed)
	}
	if s.Pool.RunTimeout != 50*time.Millisecond || s.Pool.CacheSize != 2 {
		t.Fatalf("pool %+v", s.Pool)
	}
	if s.Defaults.Workload.Mix != "w2" || s.Defaults.Options.TargetEff != 0.6 {
		t.Fatalf("defaults %+v", s.Defaults)
	}
	if len(s.Faults) != 2 || s.Faults[0].Site != faults.SiteWorkerStart || !s.Faults[0].Transient {
		t.Fatalf("faults %+v", s.Faults)
	}
	if len(s.Events) != 6 || len(s.Assertions) != 11 {
		t.Fatalf("%d events, %d assertions", len(s.Events), len(s.Assertions))
	}
	sub := s.Events[0].Submit
	if sub.Name != "a" || sub.Workload.Seed != 11 || sub.Options.Policy != "equip" {
		t.Fatalf("submit %+v", sub)
	}
	arr := s.Events[1].Arrivals
	if arr.Pattern != "diurnal" || arr.LoadMax != 0.8 || arr.Period != 2 {
		t.Fatalf("arrivals %+v", arr)
	}
	m := s.Assertions[5].Metric
	if m.Name != "pdpad_run_wall_seconds_count" || *m.Min != 1 || *m.Max != 10 {
		t.Fatalf("metric %+v", m)
	}
}

const fleetDoc = `
name: fleet-full
seed: 3
fleet:
  nodes: 3
  placement: least_loaded
  heartbeat: 25ms
  unhealthy_after: 75ms
  dead_after: 150ms
  node_faults:
    - {node: 1, rule: "worker_start:delay delay=5ms count=1"}
defaults:
  workload: {mix: w1}
  options: {policy: equip}
events:
  - submit: {name: a}
  - cordon_node: {node: 2}
  - kill_node: {node: 1}
  - drain_node: {node: 0}
  - wait: {run: a, state: done}
assertions:
  - node_states: {are: [drained, drained, cordoned]}
`

func TestParseFleetSchema(t *testing.T) {
	s, err := Parse([]byte(fleetDoc))
	if err != nil {
		t.Fatal(err)
	}
	f := s.Fleet
	if f == nil || f.Nodes != 3 || f.Placement != "least_loaded" {
		t.Fatalf("fleet %+v", f)
	}
	if f.Heartbeat != 25*time.Millisecond || f.DeadAfter != 150*time.Millisecond {
		t.Fatalf("fleet timing %+v", f)
	}
	if len(f.NodeFaults) != 1 || f.NodeFaults[0].Node != 1 || f.NodeFaults[0].Rule.Site != faults.SiteWorkerStart {
		t.Fatalf("node_faults %+v", f.NodeFaults)
	}
	if s.Events[1].CordonNode.Node != 2 || s.Events[2].KillNode.Node != 1 || s.Events[3].DrainNode.Node != 0 {
		t.Fatalf("node events %+v", s.Events)
	}
	ns := s.Assertions[0].NodeStates
	if ns == nil || len(ns.Are) != 3 || ns.Are[2] != "cordoned" {
		t.Fatalf("node_states %+v", ns)
	}
}

func TestParseFleetSchemaErrors(t *testing.T) {
	base := "name: x\nevents:\n  - submit: {name: a}\n"
	withFleet := "name: x\nfleet: {nodes: 2}\nevents:\n  - submit: {name: a}\n"
	cases := map[string]string{
		base + "fleet: {}\n":                              "positive nodes",
		base + "fleet: {nodes: 2, placement: psychic}\n":  "placement",
		base + "fleet: {nodes: 2, pets: 1}\n":             "unknown key",
		base + "fleet: {nodes: 2, heartbeat: soon}\n":     "bad duration",
		base + "fleet: {nodes: 2, node_faults: [{rule: \"worker_start:panic\"}]}\n": "out of range",
		base + "fleet: {nodes: 2, node_faults: [{node: 0, rule: \"nowhere:panic\"}]}\n": "unknown site",
		base + "assertions:\n  - node_states: {are: [healthy]}\n":                  "needs a fleet",
		withFleet + "assertions:\n  - node_states: {are: [confused]}\n":            "not a node state",
		withFleet + "assertions:\n  - node_states: {}\n":                           "needs are",
		base + "  - kill_node: {node: 0}\n":               "needs a fleet",
		withFleet + "  - kill_node: {node: 5}\n":          "out of range",
		withFleet + "  - cordon_node: {}\n":               "out of range",
		withFleet + "  - drain_node: {node: -1}\n":        "out of range",
	}
	for src, wantSub := range cases {
		_, err := Parse([]byte(src))
		if err == nil {
			t.Errorf("%q: parsed, want error containing %q", src, wantSub)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%q: error %q, want substring %q", src, err.Error(), wantSub)
		}
	}
}

func TestParseSchemaErrors(t *testing.T) {
	base := "name: x\nevents:\n  - submit: {name: a}\n"
	cases := map[string]string{
		"events:\n  - submit: {name: a}\n":        "needs a name",
		"name: x\n":                               "no events",
		base + "bogus: 1\n":                       "unknown key",
		base + "pool: {workers: 2}\n":             "unknown key",
		base + "pool: {warmup: fast}\n":           "bad duration",
		base + "seed: many\n":                     "must be an integer",
		base + "faults:\n  - \"nowhere:panic\"\n": "unknown site",
		base + "faults:\n  - 7\n":                 "rule string",
		"name: x\nevents:\n  - submit: {name: a}\n  - submit: {name: a}\n":               "duplicate run name",
		"name: x\nevents:\n  - wait: {run: ghost}\n":                                     "before any event names it",
		"name: x\nevents:\n  - submit: {name: a}\n  - wait: {run: a, state: sideways}\n": "invalid",
		"name: x\nevents:\n  - submit: {name: a, nonsense: 1}\n":                         "unknown key",
		"name: x\nevents:\n  - arrivals: {prefix: p}\n":                                  "positive count",
		"name: x\nevents:\n  - arrivals: {prefix: p, count: 2, pattern: tidal}\n":        "invalid",
		base + "assertions:\n  - state: {run: a, is: paused}\n":                          "not a terminal state",
		base + "assertions:\n  - admission: {run: a, is: teleported}\n":                  "invalid",
		base + "assertions:\n  - metric: {name: m}\n":                                    "needs equals, min, or max",
		base + "assertions:\n  - metric: {name: m, equals: 1, min: 0}\n":                 "excludes",
		base + "assertions:\n  - same_result: {runs: [a]}\n":                             "at least two",
		base + "assertions:\n  - state: {run: ghost, is: done}\n":                        "before any event names it",
		base + "assertions:\n  - haunted: {}\n":                                          "unknown assertion",
		base + "assertions:\n  - states: {prefix: a, are: [done], all: done}\n":          "exactly one of",
	}
	for src, wantSub := range cases {
		_, err := Parse([]byte(src))
		if err == nil {
			t.Errorf("%q: parsed, want error containing %q", src, wantSub)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%q: error %q, want substring %q", src, err.Error(), wantSub)
		}
	}
}
