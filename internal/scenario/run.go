package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"

	"pdpasim"
	"pdpasim/internal/faults"
	"pdpasim/internal/invariant"
	"pdpasim/internal/leakcheck"
	"pdpasim/internal/runqueue"
)

// Admission verdicts recorded per submission and checkable by assertions.
const (
	admFresh     = "fresh"
	admCacheHit  = "cache_hit"
	admDedup     = "dedup"
	admShed      = "shed"
	admQueueFull = "queue_full"
)

// waitTimeout bounds each wait event and the final drain. Scenarios run
// in-process simulations that finish in milliseconds; a scenario that needs
// half a minute for one step is wedged, not slow.
const waitTimeout = 30 * time.Second

// submission is the runner's record of one named submit.
type submission struct {
	name      string
	id        string
	admission string
	submitErr error
}

// runner holds one scenario execution's mutable state.
type runner struct {
	s    *Scenario
	pool *runqueue.Pool
	inj  *faults.Injector

	mu       sync.Mutex
	checkers []*invariant.Checker

	subs   []*submission
	byName map[string]*submission
	// template is the current defaults spec; set_policy events mutate it.
	template runqueue.Spec
	// arrivalIdx numbers generated submissions across all arrival phases, so
	// derived workload seeds never repeat within a scenario.
	arrivalIdx int
}

// Run executes the scenario and returns its report. Runtime failures (a wait
// that never settles, a drain that times out) are reported in Report.Error
// with Pass=false; Run itself only errs on input that Parse should have
// rejected.
func Run(s *Scenario) *Report {
	rep := &Report{
		Scenario:    s.Name,
		Description: s.Description,
		Seed:        s.Seed,
	}

	var baseline leakcheck.Baseline
	wantLeakCheck := false
	for _, a := range s.Assertions {
		if a.NoLeaks {
			wantLeakCheck = true
		}
	}
	if wantLeakCheck {
		baseline = leakcheck.Snapshot()
	}

	r := &runner{
		s:        s,
		inj:      faults.New(s.Seed, s.Faults...),
		byName:   map[string]*submission{},
		template: s.Defaults,
	}
	cfg := s.Pool.config()
	cfg.Faults = r.inj
	// Every simulation attempt streams its decision trace through a fresh
	// invariant checker; the "invariants" assertion reads their verdicts
	// after the drain. Attaching an observer never changes the outcome.
	cfg.Simulate = func(ctx context.Context, spec runqueue.Spec) (*pdpasim.Outcome, error) {
		ws, opts := spec.Facade()
		chk := invariant.New()
		opts.Observer = pdpasim.ObserverFunc(chk.Observe)
		r.mu.Lock()
		r.checkers = append(r.checkers, chk)
		r.mu.Unlock()
		return pdpasim.RunContext(ctx, ws, opts)
	}
	r.pool = runqueue.New(cfg)

	err := r.events()
	ctx, cancel := context.WithTimeout(context.Background(), waitTimeout)
	drainErr := r.pool.Drain(ctx)
	cancel()
	if err == nil && drainErr != nil {
		err = fmt.Errorf("drain: %w", drainErr)
	}

	for _, sub := range r.subs {
		sr := SubReport{Name: sub.name, ID: sub.id, Admission: sub.admission}
		if sub.submitErr != nil {
			sr.Error = sub.submitErr.Error()
		} else if snap, gerr := r.pool.Get(sub.id); gerr == nil {
			sr.State = string(snap.State)
			if snap.Err != nil {
				sr.Error = snap.Err.Error()
			}
		}
		rep.Submissions = append(rep.Submissions, sr)
	}

	if err != nil {
		rep.Error = err.Error()
		return rep
	}

	rep.Pass = true
	for _, a := range s.Assertions {
		ar := r.evaluate(a, baseline)
		if !ar.Pass {
			rep.Pass = false
		}
		rep.Assertions = append(rep.Assertions, ar)
	}
	return rep
}

// events walks the timeline in order; the first failing event aborts the
// scenario.
func (r *runner) events() error {
	for i, e := range r.s.Events {
		var err error
		switch {
		case e.Submit != nil:
			err = r.submit(e.Submit.Name, r.merged(e.Submit))
		case e.Arrivals != nil:
			err = r.arrivals(e.Arrivals)
		case e.SetPolicy != nil:
			r.template.Options.Policy = e.SetPolicy.Policy
		case e.Wait != nil:
			err = r.wait(e.Wait.Run, e.Wait.State)
		case e.WaitAll:
			err = r.waitAll()
		case e.Cancel != nil:
			err = r.cancel(e.Cancel.Run)
		}
		if err != nil {
			return fmt.Errorf("events[%d]: %w", i, err)
		}
	}
	return nil
}

// merged applies a submit event's overrides onto the current template.
// Override fields left zero keep the template value — the same convention the
// facade uses for defaulting, so an explicit zero and "unset" coincide.
func (r *runner) merged(e *SubmitEvent) runqueue.Spec {
	spec := r.template
	if w := e.Workload; w != nil {
		if w.Mix != "" {
			spec.Workload.Mix = w.Mix
		}
		if w.Load != 0 {
			spec.Workload.Load = w.Load
		}
		if w.NCPU != 0 {
			spec.Workload.NCPU = w.NCPU
		}
		if w.WindowS != 0 {
			spec.Workload.WindowS = w.WindowS
		}
		if w.Seed != 0 {
			spec.Workload.Seed = w.Seed
		}
		if w.UniformRequest != 0 {
			spec.Workload.UniformRequest = w.UniformRequest
		}
	}
	if o := e.Options; o != nil {
		if o.Policy != "" {
			spec.Options.Policy = o.Policy
		}
		if o.TargetEff != 0 {
			spec.Options.TargetEff = o.TargetEff
		}
		if o.HighEff != 0 {
			spec.Options.HighEff = o.HighEff
		}
		if o.Step != 0 {
			spec.Options.Step = o.Step
		}
		if o.BaseMPL != 0 {
			spec.Options.BaseMPL = o.BaseMPL
		}
		if o.MaxStableTransitions != 0 {
			spec.Options.MaxStableTransitions = o.MaxStableTransitions
		}
		if o.FixedMPL != 0 {
			spec.Options.FixedMPL = o.FixedMPL
		}
		if o.NoiseSigma != 0 {
			spec.Options.NoiseSigma = o.NoiseSigma
		}
		if o.Seed != 0 {
			spec.Options.Seed = o.Seed
		}
		if o.NUMANodeSize != 0 {
			spec.Options.NUMANodeSize = o.NUMANodeSize
		}
	}
	return spec
}

func (r *runner) submit(name string, spec runqueue.Spec) error {
	sub := &submission{name: name}
	res, err := r.pool.Submit(spec, 0)
	switch {
	case err == nil && res.CacheHit:
		sub.id, sub.admission = res.ID, admCacheHit
	case err == nil && res.Deduped:
		sub.id, sub.admission = res.ID, admDedup
	case err == nil:
		sub.id, sub.admission = res.ID, admFresh
	default:
		var ov *runqueue.OverloadError
		switch {
		case errors.As(err, &ov):
			sub.admission, sub.submitErr = admShed, err
		case errors.Is(err, runqueue.ErrQueueFull):
			sub.admission, sub.submitErr = admQueueFull, err
		default:
			return fmt.Errorf("submit %q: %w", name, err)
		}
	}
	r.subs = append(r.subs, sub)
	r.byName[name] = sub
	return nil
}

// arrivals submits one generated phase. Each submission derives its workload
// seed from the master seed and its phase-global index unless the template
// pins one, so phases reshuffle coherently under a seed override and distinct
// arrivals never collapse into one cache entry.
func (r *runner) arrivals(e *ArrivalsEvent) error {
	for j := 0; j < e.Count; j++ {
		spec := r.template
		if spec.Workload.Seed == 0 {
			spec.Workload.Seed = derivedSeed(r.s.Seed, r.arrivalIdx)
		}
		if e.Pattern == "diurnal" {
			phase := 2 * math.Pi * float64(j) / float64(e.Period)
			spec.Workload.Load = e.LoadMin + (e.LoadMax-e.LoadMin)*(0.5-0.5*math.Cos(phase))
		}
		r.arrivalIdx++
		if err := r.submit(fmt.Sprintf("%s%d", e.Prefix, j), spec); err != nil {
			return err
		}
	}
	return nil
}

// derivedSeed is a splitmix64 step over the master seed and index — stable,
// well-spread, and never zero-colliding for adjacent indices.
func derivedSeed(master int64, idx int) int64 {
	z := uint64(master) + uint64(idx+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z >> 1)
}

func (r *runner) admitted(name string) (*submission, error) {
	sub, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("run %q was never submitted", name)
	}
	if sub.submitErr != nil {
		return nil, fmt.Errorf("run %q was not admitted (%s)", name, sub.admission)
	}
	return sub, nil
}

func (r *runner) wait(name, state string) error {
	sub, err := r.admitted(name)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(waitTimeout)
	if state == "terminal" || runqueue.State(state).Terminal() {
		done, err := r.pool.Done(sub.id)
		if err != nil {
			return fmt.Errorf("wait %q: %w", name, err)
		}
		select {
		case <-done:
		case <-time.After(waitTimeout):
			return fmt.Errorf("wait %q: still not terminal after %v", name, waitTimeout)
		}
		if state == "terminal" {
			return nil
		}
	}
	for {
		snap, err := r.pool.Get(sub.id)
		if err != nil {
			return fmt.Errorf("wait %q: %w", name, err)
		}
		if string(snap.State) == state {
			return nil
		}
		if snap.State.Terminal() {
			return fmt.Errorf("wait %q: wanted %s, run settled as %s", name, state, snap.State)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("wait %q: not %s after %v (still %s)", name, state, waitTimeout, snap.State)
		}
		time.Sleep(time.Millisecond)
	}
}

func (r *runner) waitAll() error {
	for _, sub := range r.subs {
		if sub.submitErr != nil {
			continue
		}
		done, err := r.pool.Done(sub.id)
		if err != nil {
			return fmt.Errorf("wait_all %q: %w", sub.name, err)
		}
		select {
		case <-done:
		case <-time.After(waitTimeout):
			return fmt.Errorf("wait_all: %q still not terminal after %v", sub.name, waitTimeout)
		}
	}
	return nil
}

func (r *runner) cancel(name string) error {
	sub, err := r.admitted(name)
	if err != nil {
		return err
	}
	if _, err := r.pool.Cancel(sub.id); err != nil {
		return fmt.Errorf("cancel %q: %w", name, err)
	}
	return nil
}

// evaluate checks one assertion against the drained pool.
func (r *runner) evaluate(a Assertion, baseline leakcheck.Baseline) AssertReport {
	switch {
	case a.State != nil:
		return r.checkState(a.State)
	case a.States != nil:
		return r.checkStates(a.States)
	case a.Admission != nil:
		return r.checkAdmission(a.Admission)
	case a.ErrorContains != nil:
		return r.checkErrorContains(a.ErrorContains)
	case a.Metric != nil:
		return r.checkMetric(a.Metric)
	case a.Outcome != nil:
		return r.checkOutcome(a.Outcome)
	case a.SameResult != nil:
		return r.checkSameResult(a.SameResult)
	case a.Injected != nil:
		got := r.inj.Injected(a.Injected.Site)
		return AssertReport{
			Kind:     "injected",
			Detail:   fmt.Sprintf("site=%s count=%d", a.Injected.Site, a.Injected.Count),
			Observed: fmt.Sprintf("%d", got),
			Pass:     got == a.Injected.Count,
		}
	case a.Invariants:
		return r.checkInvariants()
	case a.NoLeaks:
		ar := AssertReport{Kind: "no_leaks", Detail: "no goroutines leaked", Pass: true}
		if err := baseline.Wait(leakcheck.Grace); err != nil {
			ar.Pass = false
			ar.Observed = err.Error()
		}
		return ar
	}
	return AssertReport{Kind: "unknown", Detail: "empty assertion", Pass: false}
}

// snapFor resolves a run name to its terminal snapshot for an assertion.
func (r *runner) snapFor(name string) (runqueue.Snapshot, string) {
	sub, ok := r.byName[name]
	if !ok {
		return runqueue.Snapshot{}, fmt.Sprintf("run %q was never submitted", name)
	}
	if sub.submitErr != nil {
		return runqueue.Snapshot{}, fmt.Sprintf("run %q was not admitted (%s)", name, sub.admission)
	}
	snap, err := r.pool.Get(sub.id)
	if err != nil {
		return runqueue.Snapshot{}, fmt.Sprintf("run %q: %v", name, err)
	}
	return snap, ""
}

func (r *runner) checkState(a *StateAssertion) AssertReport {
	ar := AssertReport{Kind: "state", Detail: fmt.Sprintf("run=%s is=%s", a.Run, a.Is)}
	snap, msg := r.snapFor(a.Run)
	if msg != "" {
		ar.Observed = msg
		return ar
	}
	ar.Observed = string(snap.State)
	ar.Pass = string(snap.State) == a.Is
	return ar
}

func (r *runner) checkStates(a *StatesAssertion) AssertReport {
	ar := AssertReport{Kind: "states"}
	var got []string
	for _, sub := range r.subs {
		if !strings.HasPrefix(sub.name, a.Prefix) {
			continue
		}
		if sub.submitErr != nil {
			got = append(got, sub.admission)
			continue
		}
		snap, err := r.pool.Get(sub.id)
		if err != nil {
			got = append(got, "unknown")
			continue
		}
		got = append(got, string(snap.State))
	}
	ar.Observed = strings.Join(got, ",")
	if a.All != "" {
		ar.Detail = fmt.Sprintf("prefix=%s all=%s", a.Prefix, a.All)
		ar.Pass = len(got) > 0
		for _, s := range got {
			if s != a.All {
				ar.Pass = false
			}
		}
		return ar
	}
	ar.Detail = fmt.Sprintf("prefix=%s are=%s", a.Prefix, strings.Join(a.Are, ","))
	ar.Pass = len(got) == len(a.Are)
	if ar.Pass {
		for i := range got {
			if got[i] != a.Are[i] {
				ar.Pass = false
			}
		}
	}
	return ar
}

func (r *runner) checkAdmission(a *AdmissionAssertion) AssertReport {
	ar := AssertReport{Kind: "admission", Detail: fmt.Sprintf("run=%s is=%s", a.Run, a.Is)}
	sub, ok := r.byName[a.Run]
	if !ok {
		ar.Observed = fmt.Sprintf("run %q was never submitted", a.Run)
		return ar
	}
	ar.Observed = sub.admission
	ar.Pass = sub.admission == a.Is
	return ar
}

func (r *runner) checkErrorContains(a *ErrorContainsAssertion) AssertReport {
	ar := AssertReport{Kind: "error_contains", Detail: fmt.Sprintf("run=%s substr=%q", a.Run, a.Substr)}
	sub, ok := r.byName[a.Run]
	if !ok {
		ar.Observed = fmt.Sprintf("run %q was never submitted", a.Run)
		return ar
	}
	var msg string
	if sub.submitErr != nil {
		msg = sub.submitErr.Error()
	} else if snap, err := r.pool.Get(sub.id); err == nil && snap.Err != nil {
		msg = snap.Err.Error()
	}
	if msg == "" {
		ar.Observed = "no error"
		return ar
	}
	ar.Observed = msg
	ar.Pass = strings.Contains(msg, a.Substr)
	return ar
}

func (r *runner) checkMetric(a *MetricAssertion) AssertReport {
	ar := AssertReport{Kind: "metric", Detail: metricDetail(a)}
	v, ok := r.pool.Metrics().Value(a.Name, a.Label)
	if !ok {
		ar.Observed = "no such series"
		return ar
	}
	ar.Observed = trimFloat(v)
	ar.Pass = (a.Min == nil || v >= *a.Min) && (a.Max == nil || v <= *a.Max)
	return ar
}

func metricDetail(a *MetricAssertion) string {
	name := a.Name
	if a.Label != "" {
		name += "{" + a.Label + "}"
	}
	if a.Min != nil && a.Max != nil && *a.Min == *a.Max {
		return fmt.Sprintf("%s equals %s", name, trimFloat(*a.Min))
	}
	s := name
	if a.Min != nil {
		s += fmt.Sprintf(" min=%s", trimFloat(*a.Min))
	}
	if a.Max != nil {
		s += fmt.Sprintf(" max=%s", trimFloat(*a.Max))
	}
	return s
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// outcomeWire is the slice of the result JSON the outcome assertion reads.
type outcomeWire struct {
	Policy    string            `json:"policy"`
	Workload  string            `json:"workload"`
	MakespanS float64           `json:"makespan_s"`
	Jobs      []json.RawMessage `json:"jobs"`
}

func (r *runner) checkOutcome(a *OutcomeAssertion) AssertReport {
	ar := AssertReport{Kind: "outcome", Detail: outcomeDetail(a)}
	snap, msg := r.snapFor(a.Run)
	if msg != "" {
		ar.Observed = msg
		return ar
	}
	if len(snap.ResultJSON) == 0 {
		ar.Observed = fmt.Sprintf("run %q has no result (state %s)", a.Run, snap.State)
		return ar
	}
	var w outcomeWire
	if err := json.Unmarshal(snap.ResultJSON, &w); err != nil {
		ar.Observed = fmt.Sprintf("bad result JSON: %v", err)
		return ar
	}
	ar.Observed = fmt.Sprintf("policy=%s workload=%s jobs=%d makespan_s=%s",
		w.Policy, w.Workload, len(w.Jobs), trimFloat(w.MakespanS))
	ar.Pass = (a.Policy == "" || w.Policy == a.Policy) &&
		(a.Workload == "" || w.Workload == a.Workload) &&
		(a.Jobs == nil || len(w.Jobs) == *a.Jobs) &&
		(a.MakespanSMin == nil || w.MakespanS >= *a.MakespanSMin) &&
		(a.MakespanSMax == nil || w.MakespanS <= *a.MakespanSMax)
	return ar
}

func outcomeDetail(a *OutcomeAssertion) string {
	parts := []string{"run=" + a.Run}
	if a.Policy != "" {
		parts = append(parts, "policy="+a.Policy)
	}
	if a.Workload != "" {
		parts = append(parts, "workload="+a.Workload)
	}
	if a.Jobs != nil {
		parts = append(parts, fmt.Sprintf("jobs=%d", *a.Jobs))
	}
	if a.MakespanSMin != nil {
		parts = append(parts, "makespan_min_s="+trimFloat(*a.MakespanSMin))
	}
	if a.MakespanSMax != nil {
		parts = append(parts, "makespan_max_s="+trimFloat(*a.MakespanSMax))
	}
	return strings.Join(parts, " ")
}

func (r *runner) checkSameResult(a *SameResultAssertion) AssertReport {
	ar := AssertReport{Kind: "same_result", Detail: "runs=" + strings.Join(a.Runs, ",")}
	var first []byte
	for i, name := range a.Runs {
		snap, msg := r.snapFor(name)
		if msg != "" {
			ar.Observed = msg
			return ar
		}
		if len(snap.ResultJSON) == 0 {
			ar.Observed = fmt.Sprintf("run %q has no result (state %s)", name, snap.State)
			return ar
		}
		if i == 0 {
			first = snap.ResultJSON
		} else if !bytes.Equal(first, snap.ResultJSON) {
			ar.Observed = fmt.Sprintf("run %q diverges from %q", name, a.Runs[0])
			return ar
		}
	}
	ar.Observed = fmt.Sprintf("%d identical results", len(a.Runs))
	ar.Pass = true
	return ar
}

func (r *runner) checkInvariants() AssertReport {
	ar := AssertReport{Kind: "invariants", Pass: true}
	r.mu.Lock()
	checkers := r.checkers
	r.mu.Unlock()
	ar.Detail = fmt.Sprintf("all invariants hold across %d simulation attempts", len(checkers))
	for _, chk := range checkers {
		if err := chk.Err(); err != nil {
			ar.Pass = false
			ar.Observed = err.Error()
			return ar
		}
	}
	ar.Observed = "clean"
	return ar
}
