package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"time"

	"pdpasim"
	"pdpasim/client"
	"pdpasim/internal/faults"
	"pdpasim/internal/invariant"
	"pdpasim/internal/leakcheck"
	"pdpasim/internal/runqueue"
	"pdpasim/internal/server"
)

// Admission verdicts recorded per submission and checkable by assertions.
const (
	admFresh     = "fresh"
	admCacheHit  = "cache_hit"
	admDedup     = "dedup"
	admShed      = "shed"
	admQueueFull = "queue_full"
)

// waitTimeout bounds each wait event and the final drain. Scenarios run
// in-process simulations that finish in milliseconds; a scenario that needs
// half a minute for one step is wedged, not slow.
const waitTimeout = 30 * time.Second

// submission is the runner's record of one named submit.
type submission struct {
	name      string
	id        string
	admission string
	submitErr error
}

// sweepSub is the runner's record of one named sweep submission; the spec is
// kept so the oracle assertion can replay the same grid standalone.
type sweepSub struct {
	name string
	id   string
	spec *SubmitSweepEvent
}

// admitResult is how a target resolved one submission. A rejection (shed,
// queue full) is a recorded verdict, not a fatal error.
type admitResult struct {
	id        string
	admission string
	reject    error
}

// runStatus is a run's state as a target reports it.
type runStatus struct {
	state  string
	errMsg string
	result []byte
}

func (s runStatus) terminal() bool { return runqueue.State(s.state).Terminal() }

// sweepStatus is a sweep's progress as a target reports it; cells carries
// the reassembled per-cell JSON once every member is done.
type sweepStatus struct {
	state string
	done  int
	total int
	cells []byte
}

func (s sweepStatus) terminal() bool {
	return s.state == "done" || s.state == "failed" || s.state == "canceled"
}

// target abstracts where a scenario executes: an in-process pool (the
// default), or an in-process coordinator + node fleet driven through the v1
// HTTP surface. The runner's timeline and assertions are target-agnostic.
type target interface {
	submit(spec runqueue.Spec) (admitResult, error)
	status(id string) (runStatus, error)
	cancel(id string) error
	// nodeEvent applies kill_node / cordon_node / drain_node (fleet only).
	nodeEvent(kind string, node int) error
	// coordEvent applies kill_coordinator / restart_coordinator (durable
	// fleets only).
	coordEvent(kind string) error
	// submitSweep submits one sweep grid and returns its ID (fleet only).
	submitSweep(spec *SubmitSweepEvent) (string, error)
	// sweepStatus reports a sweep's progress (frozen after settle).
	sweepStatus(id string) (sweepStatus, error)
	// nodeState reports one node's live state by registration index.
	nodeState(node int) (string, error)
	// settle waits until every admitted run (ids) is terminal, freezes the
	// state assertions read, and releases everything the target started —
	// so a no_leaks assertion evaluated afterwards sees a quiet process.
	settle(ctx context.Context, ids []string) error
	metric(name, label string) (float64, bool)
	injected(site faults.Site) int
	// nodeStates lists fleet node states in node-ID order (nil for a pool).
	nodeStates() []string
}

// runner holds one scenario execution's mutable state.
type runner struct {
	s   *Scenario
	tgt target

	mu       sync.Mutex
	checkers []*invariant.Checker

	subs   []*submission
	byName map[string]*submission
	// sweeps records named submit_sweep events; byNameSweep resolves waits
	// and sweep assertions.
	sweeps      []*sweepSub
	byNameSweep map[string]*sweepSub
	// template is the current defaults spec; set_policy events mutate it.
	template runqueue.Spec
	// arrivalIdx numbers generated submissions across all arrival phases, so
	// derived workload seeds never repeat within a scenario.
	arrivalIdx int
}

// simulate is the Simulate hook every target's pool runs: each simulation
// attempt streams its decision trace through a fresh invariant checker; the
// "invariants" assertion reads their verdicts after the drain. Attaching an
// observer never changes the outcome.
func (r *runner) simulate(ctx context.Context, spec runqueue.Spec) (*pdpasim.Outcome, error) {
	ws, opts := spec.Facade()
	chk := invariant.New()
	opts.Observer = pdpasim.ObserverFunc(chk.Observe)
	r.mu.Lock()
	r.checkers = append(r.checkers, chk)
	r.mu.Unlock()
	return pdpasim.RunContext(ctx, ws, opts)
}

// Run executes the scenario and returns its report. Runtime failures (a wait
// that never settles, a drain that times out) are reported in Report.Error
// with Pass=false; Run itself only errs on input that Parse should have
// rejected.
func Run(s *Scenario) *Report {
	rep := &Report{
		Scenario:    s.Name,
		Description: s.Description,
		Seed:        s.Seed,
	}

	var baseline leakcheck.Baseline
	wantLeakCheck := false
	for _, a := range s.Assertions {
		if a.NoLeaks {
			wantLeakCheck = true
		}
	}
	if wantLeakCheck {
		baseline = leakcheck.Snapshot()
	}

	r := &runner{
		s:           s,
		byName:      map[string]*submission{},
		byNameSweep: map[string]*sweepSub{},
		template:    s.Defaults,
	}
	if s.Fleet != nil {
		tgt, err := newFleetTarget(s, r.simulate)
		if err != nil {
			rep.Error = err.Error()
			return rep
		}
		r.tgt = tgt
	} else {
		r.tgt = newPoolTarget(s, r.simulate)
	}

	err := r.events()
	var ids []string
	for _, sub := range r.subs {
		if sub.submitErr == nil {
			ids = append(ids, sub.id)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), waitTimeout)
	settleErr := r.tgt.settle(ctx, ids)
	cancel()
	if err == nil && settleErr != nil {
		err = fmt.Errorf("drain: %w", settleErr)
	}

	for _, sub := range r.subs {
		sr := SubReport{Name: sub.name, ID: sub.id, Admission: sub.admission}
		if sub.submitErr != nil {
			sr.Error = sub.submitErr.Error()
		} else if st, gerr := r.tgt.status(sub.id); gerr == nil {
			sr.State = st.state
			sr.Error = st.errMsg
		}
		rep.Submissions = append(rep.Submissions, sr)
	}
	for _, sw := range r.sweeps {
		sr := SweepReport{Name: sw.name, ID: sw.id}
		if st, gerr := r.tgt.sweepStatus(sw.id); gerr == nil {
			sr.State, sr.Done, sr.Total = st.state, st.done, st.total
		}
		rep.Sweeps = append(rep.Sweeps, sr)
	}

	if err != nil {
		rep.Error = err.Error()
		return rep
	}

	rep.Pass = true
	for _, a := range s.Assertions {
		ar := r.evaluate(a, baseline)
		if !ar.Pass {
			rep.Pass = false
		}
		rep.Assertions = append(rep.Assertions, ar)
	}
	return rep
}

// events walks the timeline in order; the first failing event aborts the
// scenario.
func (r *runner) events() error {
	for i, e := range r.s.Events {
		var err error
		switch {
		case e.Submit != nil:
			err = r.submit(e.Submit.Name, r.merged(e.Submit))
		case e.Arrivals != nil:
			err = r.arrivals(e.Arrivals)
		case e.SetPolicy != nil:
			r.template.Options.Policy = e.SetPolicy.Policy
		case e.Wait != nil:
			err = r.wait(e.Wait.Run, e.Wait.State)
		case e.WaitAll:
			err = r.waitAll()
		case e.Cancel != nil:
			err = r.cancel(e.Cancel.Run)
		case e.KillNode != nil:
			err = r.tgt.nodeEvent("kill", e.KillNode.Node)
		case e.CordonNode != nil:
			err = r.tgt.nodeEvent("cordon", e.CordonNode.Node)
		case e.DrainNode != nil:
			err = r.tgt.nodeEvent("drain", e.DrainNode.Node)
		case e.SubmitSweep != nil:
			err = r.submitSweep(e.SubmitSweep)
		case e.WaitSweep != nil:
			err = r.waitSweep(e.WaitSweep)
		case e.WaitNode != nil:
			err = r.waitNode(e.WaitNode)
		case e.KillCoordinator:
			err = r.tgt.coordEvent("kill")
		case e.RestartCoordinator:
			err = r.tgt.coordEvent("restart")
		}
		if err != nil {
			return fmt.Errorf("events[%d]: %w", i, err)
		}
	}
	return nil
}

// merged applies a submit event's overrides onto the current template.
// Override fields left zero keep the template value — the same convention the
// facade uses for defaulting, so an explicit zero and "unset" coincide.
func (r *runner) merged(e *SubmitEvent) runqueue.Spec {
	spec := r.template
	if w := e.Workload; w != nil {
		if w.Mix != "" {
			spec.Workload.Mix = w.Mix
		}
		if w.Load != 0 {
			spec.Workload.Load = w.Load
		}
		if w.NCPU != 0 {
			spec.Workload.NCPU = w.NCPU
		}
		if w.WindowS != 0 {
			spec.Workload.WindowS = w.WindowS
		}
		if w.Seed != 0 {
			spec.Workload.Seed = w.Seed
		}
		if w.UniformRequest != 0 {
			spec.Workload.UniformRequest = w.UniformRequest
		}
	}
	if o := e.Options; o != nil {
		if o.Policy != "" {
			spec.Options.Policy = o.Policy
		}
		if o.TargetEff != 0 {
			spec.Options.TargetEff = o.TargetEff
		}
		if o.HighEff != 0 {
			spec.Options.HighEff = o.HighEff
		}
		if o.Step != 0 {
			spec.Options.Step = o.Step
		}
		if o.BaseMPL != 0 {
			spec.Options.BaseMPL = o.BaseMPL
		}
		if o.MaxStableTransitions != 0 {
			spec.Options.MaxStableTransitions = o.MaxStableTransitions
		}
		if o.FixedMPL != 0 {
			spec.Options.FixedMPL = o.FixedMPL
		}
		if o.NoiseSigma != 0 {
			spec.Options.NoiseSigma = o.NoiseSigma
		}
		if o.Seed != 0 {
			spec.Options.Seed = o.Seed
		}
		if o.NUMANodeSize != 0 {
			spec.Options.NUMANodeSize = o.NUMANodeSize
		}
	}
	return spec
}

func (r *runner) submit(name string, spec runqueue.Spec) error {
	res, err := r.tgt.submit(spec)
	if err != nil {
		return fmt.Errorf("submit %q: %w", name, err)
	}
	sub := &submission{name: name, id: res.id, admission: res.admission, submitErr: res.reject}
	r.subs = append(r.subs, sub)
	r.byName[name] = sub
	return nil
}

// arrivals submits one generated phase. Each submission derives its workload
// seed from the master seed and its phase-global index unless the template
// pins one, so phases reshuffle coherently under a seed override and distinct
// arrivals never collapse into one cache entry.
func (r *runner) arrivals(e *ArrivalsEvent) error {
	for j := 0; j < e.Count; j++ {
		spec := r.template
		if spec.Workload.Seed == 0 {
			spec.Workload.Seed = derivedSeed(r.s.Seed, r.arrivalIdx)
		}
		if e.Pattern == "diurnal" {
			phase := 2 * math.Pi * float64(j) / float64(e.Period)
			spec.Workload.Load = e.LoadMin + (e.LoadMax-e.LoadMin)*(0.5-0.5*math.Cos(phase))
		}
		r.arrivalIdx++
		if err := r.submit(fmt.Sprintf("%s%d", e.Prefix, j), spec); err != nil {
			return err
		}
	}
	return nil
}

// derivedSeed is a splitmix64 step over the master seed and index — stable,
// well-spread, and never zero-colliding for adjacent indices.
func derivedSeed(master int64, idx int) int64 {
	z := uint64(master) + uint64(idx+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z >> 1)
}

func (r *runner) admitted(name string) (*submission, error) {
	sub, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("run %q was never submitted", name)
	}
	if sub.submitErr != nil {
		return nil, fmt.Errorf("run %q was not admitted (%s)", name, sub.admission)
	}
	return sub, nil
}

func (r *runner) wait(name, state string) error {
	sub, err := r.admitted(name)
	if err != nil {
		return err
	}
	wantTerminal := state == "terminal" || runqueue.State(state).Terminal()
	deadline := time.Now().Add(waitTimeout)
	for {
		st, err := r.tgt.status(sub.id)
		if err != nil {
			return fmt.Errorf("wait %q: %w", name, err)
		}
		if st.state == state || (state == "terminal" && st.terminal()) {
			return nil
		}
		if st.terminal() {
			return fmt.Errorf("wait %q: wanted %s, run settled as %s", name, state, st.state)
		}
		if time.Now().After(deadline) {
			if wantTerminal {
				return fmt.Errorf("wait %q: still not terminal after %v", name, waitTimeout)
			}
			return fmt.Errorf("wait %q: not %s after %v (still %s)", name, state, waitTimeout, st.state)
		}
		time.Sleep(time.Millisecond)
	}
}

func (r *runner) waitAll() error {
	for _, sub := range r.subs {
		if sub.submitErr != nil {
			continue
		}
		deadline := time.Now().Add(waitTimeout)
		for {
			st, err := r.tgt.status(sub.id)
			if err != nil {
				return fmt.Errorf("wait_all %q: %w", sub.name, err)
			}
			if st.terminal() {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("wait_all: %q still not terminal after %v", sub.name, waitTimeout)
			}
			time.Sleep(time.Millisecond)
		}
	}
	return nil
}

func (r *runner) cancel(name string) error {
	sub, err := r.admitted(name)
	if err != nil {
		return err
	}
	if err := r.tgt.cancel(sub.id); err != nil {
		return fmt.Errorf("cancel %q: %w", name, err)
	}
	return nil
}

func (r *runner) submitSweep(e *SubmitSweepEvent) error {
	id, err := r.tgt.submitSweep(e)
	if err != nil {
		return fmt.Errorf("submit_sweep %q: %w", e.Name, err)
	}
	sw := &sweepSub{name: e.Name, id: id, spec: e}
	r.sweeps = append(r.sweeps, sw)
	r.byNameSweep[e.Name] = sw
	return nil
}

func (r *runner) sweepNamed(name string) (*sweepSub, error) {
	sw, ok := r.byNameSweep[name]
	if !ok {
		return nil, fmt.Errorf("sweep %q was never submitted", name)
	}
	return sw, nil
}

func (r *runner) waitSweep(e *WaitSweepEvent) error {
	sw, err := r.sweepNamed(e.Sweep)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(waitTimeout)
	for {
		st, err := r.tgt.sweepStatus(sw.id)
		if err != nil {
			return fmt.Errorf("wait_sweep %q: %w", e.Sweep, err)
		}
		switch {
		case e.Done > 0:
			if st.done >= e.Done {
				return nil
			}
		case st.state == e.State:
			return nil
		case st.terminal():
			return fmt.Errorf("wait_sweep %q: wanted %s, sweep settled as %s", e.Sweep, e.State, st.state)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("wait_sweep %q: still %s (%d/%d done) after %v",
				e.Sweep, st.state, st.done, st.total, waitTimeout)
		}
		time.Sleep(time.Millisecond)
	}
}

func (r *runner) waitNode(e *WaitNodeEvent) error {
	deadline := time.Now().Add(waitTimeout)
	for {
		st, err := r.tgt.nodeState(e.Node)
		if err != nil {
			return fmt.Errorf("wait_node %d: %w", e.Node, err)
		}
		if st == e.State {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("wait_node %d: not %s after %v (still %s)", e.Node, e.State, waitTimeout, st)
		}
		time.Sleep(time.Millisecond)
	}
}

// evaluate checks one assertion against the settled target.
func (r *runner) evaluate(a Assertion, baseline leakcheck.Baseline) AssertReport {
	switch {
	case a.State != nil:
		return r.checkState(a.State)
	case a.States != nil:
		return r.checkStates(a.States)
	case a.Admission != nil:
		return r.checkAdmission(a.Admission)
	case a.ErrorContains != nil:
		return r.checkErrorContains(a.ErrorContains)
	case a.Metric != nil:
		return r.checkMetric(a.Metric)
	case a.Outcome != nil:
		return r.checkOutcome(a.Outcome)
	case a.SameResult != nil:
		return r.checkSameResult(a.SameResult)
	case a.Injected != nil:
		got := r.tgt.injected(a.Injected.Site)
		return AssertReport{
			Kind:     "injected",
			Detail:   fmt.Sprintf("site=%s count=%d", a.Injected.Site, a.Injected.Count),
			Observed: fmt.Sprintf("%d", got),
			Pass:     got == a.Injected.Count,
		}
	case a.NodeStates != nil:
		return r.checkNodeStates(a.NodeStates)
	case a.SweepState != nil:
		return r.checkSweepState(a.SweepState)
	case a.SweepOracle != nil:
		return r.checkSweepOracle(a.SweepOracle)
	case a.ReconciledRuns != nil:
		return r.checkCounter("reconciled_runs", "pdpad_fleet_reconciled_runs_total", a.ReconciledRuns)
	case a.AdoptedResults != nil:
		return r.checkCounter("adopted_results", "pdpad_fleet_adopted_results_total", a.AdoptedResults)
	case a.Invariants:
		return r.checkInvariants()
	case a.NoLeaks:
		ar := AssertReport{Kind: "no_leaks", Detail: "no goroutines leaked", Pass: true}
		if err := baseline.Wait(leakcheck.Grace); err != nil {
			ar.Pass = false
			ar.Observed = err.Error()
		}
		return ar
	}
	return AssertReport{Kind: "unknown", Detail: "empty assertion", Pass: false}
}

// statusFor resolves a run name to its settled status for an assertion.
func (r *runner) statusFor(name string) (runStatus, string) {
	sub, ok := r.byName[name]
	if !ok {
		return runStatus{}, fmt.Sprintf("run %q was never submitted", name)
	}
	if sub.submitErr != nil {
		return runStatus{}, fmt.Sprintf("run %q was not admitted (%s)", name, sub.admission)
	}
	st, err := r.tgt.status(sub.id)
	if err != nil {
		return runStatus{}, fmt.Sprintf("run %q: %v", name, err)
	}
	return st, ""
}

func (r *runner) checkState(a *StateAssertion) AssertReport {
	ar := AssertReport{Kind: "state", Detail: fmt.Sprintf("run=%s is=%s", a.Run, a.Is)}
	st, msg := r.statusFor(a.Run)
	if msg != "" {
		ar.Observed = msg
		return ar
	}
	ar.Observed = st.state
	ar.Pass = st.state == a.Is
	return ar
}

func (r *runner) checkStates(a *StatesAssertion) AssertReport {
	ar := AssertReport{Kind: "states"}
	var got []string
	for _, sub := range r.subs {
		if !strings.HasPrefix(sub.name, a.Prefix) {
			continue
		}
		if sub.submitErr != nil {
			got = append(got, sub.admission)
			continue
		}
		st, err := r.tgt.status(sub.id)
		if err != nil {
			got = append(got, "unknown")
			continue
		}
		got = append(got, st.state)
	}
	ar.Observed = strings.Join(got, ",")
	if a.All != "" {
		ar.Detail = fmt.Sprintf("prefix=%s all=%s", a.Prefix, a.All)
		ar.Pass = len(got) > 0
		for _, s := range got {
			if s != a.All {
				ar.Pass = false
			}
		}
		return ar
	}
	ar.Detail = fmt.Sprintf("prefix=%s are=%s", a.Prefix, strings.Join(a.Are, ","))
	ar.Pass = len(got) == len(a.Are)
	if ar.Pass {
		for i := range got {
			if got[i] != a.Are[i] {
				ar.Pass = false
			}
		}
	}
	return ar
}

func (r *runner) checkAdmission(a *AdmissionAssertion) AssertReport {
	ar := AssertReport{Kind: "admission", Detail: fmt.Sprintf("run=%s is=%s", a.Run, a.Is)}
	sub, ok := r.byName[a.Run]
	if !ok {
		ar.Observed = fmt.Sprintf("run %q was never submitted", a.Run)
		return ar
	}
	ar.Observed = sub.admission
	ar.Pass = sub.admission == a.Is
	return ar
}

func (r *runner) checkErrorContains(a *ErrorContainsAssertion) AssertReport {
	ar := AssertReport{Kind: "error_contains", Detail: fmt.Sprintf("run=%s substr=%q", a.Run, a.Substr)}
	sub, ok := r.byName[a.Run]
	if !ok {
		ar.Observed = fmt.Sprintf("run %q was never submitted", a.Run)
		return ar
	}
	var msg string
	if sub.submitErr != nil {
		msg = sub.submitErr.Error()
	} else if st, err := r.tgt.status(sub.id); err == nil {
		msg = st.errMsg
	}
	if msg == "" {
		ar.Observed = "no error"
		return ar
	}
	ar.Observed = msg
	ar.Pass = strings.Contains(msg, a.Substr)
	return ar
}

func (r *runner) checkMetric(a *MetricAssertion) AssertReport {
	ar := AssertReport{Kind: "metric", Detail: metricDetail(a)}
	v, ok := r.tgt.metric(a.Name, a.Label)
	if !ok {
		ar.Observed = "no such series"
		return ar
	}
	ar.Observed = trimFloat(v)
	ar.Pass = (a.Min == nil || v >= *a.Min) && (a.Max == nil || v <= *a.Max)
	return ar
}

func metricDetail(a *MetricAssertion) string {
	name := a.Name
	if a.Label != "" {
		name += "{" + a.Label + "}"
	}
	if a.Min != nil && a.Max != nil && *a.Min == *a.Max {
		return fmt.Sprintf("%s equals %s", name, trimFloat(*a.Min))
	}
	s := name
	if a.Min != nil {
		s += fmt.Sprintf(" min=%s", trimFloat(*a.Min))
	}
	if a.Max != nil {
		s += fmt.Sprintf(" max=%s", trimFloat(*a.Max))
	}
	return s
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// outcomeWire is the slice of the result JSON the outcome assertion reads.
type outcomeWire struct {
	Policy    string            `json:"policy"`
	Workload  string            `json:"workload"`
	MakespanS float64           `json:"makespan_s"`
	Jobs      []json.RawMessage `json:"jobs"`
}

func (r *runner) checkOutcome(a *OutcomeAssertion) AssertReport {
	ar := AssertReport{Kind: "outcome", Detail: outcomeDetail(a)}
	st, msg := r.statusFor(a.Run)
	if msg != "" {
		ar.Observed = msg
		return ar
	}
	if len(st.result) == 0 {
		ar.Observed = fmt.Sprintf("run %q has no result (state %s)", a.Run, st.state)
		return ar
	}
	var w outcomeWire
	if err := json.Unmarshal(st.result, &w); err != nil {
		ar.Observed = fmt.Sprintf("bad result JSON: %v", err)
		return ar
	}
	ar.Observed = fmt.Sprintf("policy=%s workload=%s jobs=%d makespan_s=%s",
		w.Policy, w.Workload, len(w.Jobs), trimFloat(w.MakespanS))
	ar.Pass = (a.Policy == "" || w.Policy == a.Policy) &&
		(a.Workload == "" || w.Workload == a.Workload) &&
		(a.Jobs == nil || len(w.Jobs) == *a.Jobs) &&
		(a.MakespanSMin == nil || w.MakespanS >= *a.MakespanSMin) &&
		(a.MakespanSMax == nil || w.MakespanS <= *a.MakespanSMax)
	return ar
}

func outcomeDetail(a *OutcomeAssertion) string {
	parts := []string{"run=" + a.Run}
	if a.Policy != "" {
		parts = append(parts, "policy="+a.Policy)
	}
	if a.Workload != "" {
		parts = append(parts, "workload="+a.Workload)
	}
	if a.Jobs != nil {
		parts = append(parts, fmt.Sprintf("jobs=%d", *a.Jobs))
	}
	if a.MakespanSMin != nil {
		parts = append(parts, "makespan_min_s="+trimFloat(*a.MakespanSMin))
	}
	if a.MakespanSMax != nil {
		parts = append(parts, "makespan_max_s="+trimFloat(*a.MakespanSMax))
	}
	return strings.Join(parts, " ")
}

func (r *runner) checkSameResult(a *SameResultAssertion) AssertReport {
	ar := AssertReport{Kind: "same_result", Detail: "runs=" + strings.Join(a.Runs, ",")}
	var first []byte
	for i, name := range a.Runs {
		st, msg := r.statusFor(name)
		if msg != "" {
			ar.Observed = msg
			return ar
		}
		if len(st.result) == 0 {
			ar.Observed = fmt.Sprintf("run %q has no result (state %s)", name, st.state)
			return ar
		}
		if i == 0 {
			first = st.result
		} else if !bytes.Equal(first, st.result) {
			ar.Observed = fmt.Sprintf("run %q diverges from %q", name, a.Runs[0])
			return ar
		}
	}
	ar.Observed = fmt.Sprintf("%d identical results", len(a.Runs))
	ar.Pass = true
	return ar
}

func (r *runner) checkNodeStates(a *NodeStatesAssertion) AssertReport {
	ar := AssertReport{Kind: "node_states", Detail: "are=" + strings.Join(a.Are, ",")}
	got := r.tgt.nodeStates()
	ar.Observed = strings.Join(got, ",")
	ar.Pass = len(got) == len(a.Are)
	if ar.Pass {
		for i := range got {
			if got[i] != a.Are[i] {
				ar.Pass = false
			}
		}
	}
	return ar
}

func (r *runner) sweepStatusFor(name string) (sweepStatus, string) {
	sw, ok := r.byNameSweep[name]
	if !ok {
		return sweepStatus{}, fmt.Sprintf("sweep %q was never submitted", name)
	}
	st, err := r.tgt.sweepStatus(sw.id)
	if err != nil {
		return sweepStatus{}, fmt.Sprintf("sweep %q: %v", name, err)
	}
	return st, ""
}

func (r *runner) checkSweepState(a *SweepStateAssertion) AssertReport {
	ar := AssertReport{Kind: "sweep_state", Detail: fmt.Sprintf("sweep=%s is=%s", a.Sweep, a.Is)}
	st, msg := r.sweepStatusFor(a.Sweep)
	if msg != "" {
		ar.Observed = msg
		return ar
	}
	ar.Observed = fmt.Sprintf("%s (%d/%d done)", st.state, st.done, st.total)
	ar.Pass = st.state == a.Is
	return ar
}

// checkSweepOracle replays the sweep's grid on a fresh standalone
// single-worker daemon — no faults, no fleet — and requires the target's
// reassembled cells to match the oracle's byte for byte.
func (r *runner) checkSweepOracle(a *SweepOracleAssertion) AssertReport {
	ar := AssertReport{Kind: "sweep_cells_match_oracle", Detail: "sweep=" + a.Sweep}
	st, msg := r.sweepStatusFor(a.Sweep)
	if msg != "" {
		ar.Observed = msg
		return ar
	}
	if len(st.cells) == 0 {
		ar.Observed = fmt.Sprintf("sweep has no cells (state %s, %d/%d done)", st.state, st.done, st.total)
		return ar
	}
	want, err := r.oracleCells(r.byNameSweep[a.Sweep].spec)
	if err != nil {
		ar.Observed = fmt.Sprintf("oracle: %v", err)
		return ar
	}
	if !bytes.Equal(st.cells, want) {
		ar.Observed = fmt.Sprintf("cells diverge from the standalone oracle (%d vs %d bytes)", len(st.cells), len(want))
		return ar
	}
	ar.Observed = fmt.Sprintf("%d cell bytes byte-identical to the standalone oracle", len(st.cells))
	ar.Pass = true
	return ar
}

// oracleCells runs the grid on a clean standalone daemon and returns its
// cells JSON. The oracle pool shares the runner's Simulate hook, so its
// attempts are invariant-checked like every other simulation.
func (r *runner) oracleCells(spec *SubmitSweepEvent) ([]byte, error) {
	pool := runqueue.New(runqueue.Config{Simulate: r.simulate})
	srv := httptest.NewServer(server.New(pool))
	cli := client.New(srv.URL)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), waitTimeout)
		pool.Drain(ctx)
		cancel()
		srv.Close()
		cli.CloseIdleConnections()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), waitTimeout)
	defer cancel()
	sub, err := cli.SubmitSweep(ctx, sweepWire(spec))
	if err != nil {
		return nil, err
	}
	v, err := cli.WaitSweep(ctx, sub.ID, 0)
	if err != nil {
		return nil, err
	}
	if v.State != "done" {
		return nil, fmt.Errorf("oracle sweep settled as %s (errors %v)", v.State, v.Errors)
	}
	return v.Cells, nil
}

// sweepWire converts a submit_sweep event to the client's wire shape.
func sweepWire(e *SubmitSweepEvent) client.SubmitSweepRequest {
	return client.SubmitSweepRequest{SweepSpec: client.SweepSpec{
		Policies: e.Policies,
		Mixes:    e.Mixes,
		Loads:    e.Loads,
		Seeds:    e.Seeds,
		NCPU:     e.NCPU,
		WindowS:  e.WindowS,
	}}
}

// checkCounter evaluates a recovery-counter assertion by bounding its metric
// series under the assertion's own kind.
func (r *runner) checkCounter(kind, series string, a *CounterBoundAssertion) AssertReport {
	ar := r.checkMetric(&MetricAssertion{Name: series, Min: a.Min, Max: a.Max})
	ar.Kind = kind
	return ar
}

func (r *runner) checkInvariants() AssertReport {
	ar := AssertReport{Kind: "invariants", Pass: true}
	r.mu.Lock()
	checkers := r.checkers
	r.mu.Unlock()
	ar.Detail = fmt.Sprintf("all invariants hold across %d simulation attempts", len(checkers))
	for _, chk := range checkers {
		if err := chk.Err(); err != nil {
			ar.Pass = false
			ar.Observed = err.Error()
			return ar
		}
	}
	ar.Observed = "clean"
	return ar
}
