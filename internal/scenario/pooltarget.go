package scenario

import (
	"context"
	"errors"
	"fmt"

	"pdpasim"
	"pdpasim/internal/faults"
	"pdpasim/internal/runqueue"
)

// poolTarget runs a scenario against a bare in-process runqueue.Pool — the
// original (and default) execution target.
type poolTarget struct {
	pool *runqueue.Pool
	inj  *faults.Injector
}

func newPoolTarget(s *Scenario, sim func(context.Context, runqueue.Spec) (*pdpasim.Outcome, error)) *poolTarget {
	inj := faults.New(s.Seed, s.Faults...)
	cfg := s.Pool.config()
	cfg.Faults = inj
	cfg.Simulate = sim
	return &poolTarget{pool: runqueue.New(cfg), inj: inj}
}

func (t *poolTarget) submit(spec runqueue.Spec) (admitResult, error) {
	res, err := t.pool.Submit(spec, 0)
	switch {
	case err == nil && res.CacheHit:
		return admitResult{id: res.ID, admission: admCacheHit}, nil
	case err == nil && res.Deduped:
		return admitResult{id: res.ID, admission: admDedup}, nil
	case err == nil:
		return admitResult{id: res.ID, admission: admFresh}, nil
	}
	var ov *runqueue.OverloadError
	switch {
	case errors.As(err, &ov):
		return admitResult{admission: admShed, reject: err}, nil
	case errors.Is(err, runqueue.ErrQueueFull):
		return admitResult{admission: admQueueFull, reject: err}, nil
	}
	return admitResult{}, err
}

func (t *poolTarget) status(id string) (runStatus, error) {
	snap, err := t.pool.Get(id)
	if err != nil {
		return runStatus{}, err
	}
	st := runStatus{state: string(snap.State), result: snap.ResultJSON}
	if snap.Err != nil {
		st.errMsg = snap.Err.Error()
	}
	return st, nil
}

func (t *poolTarget) cancel(id string) error {
	_, err := t.pool.Cancel(id)
	return err
}

func (t *poolTarget) nodeEvent(kind string, node int) error {
	return fmt.Errorf("%s_node: scenario has no fleet: stanza", kind)
}

func (t *poolTarget) coordEvent(kind string) error {
	return fmt.Errorf("%s_coordinator: scenario has no fleet: stanza", kind)
}

func (t *poolTarget) submitSweep(spec *SubmitSweepEvent) (string, error) {
	return "", fmt.Errorf("submit_sweep: scenario has no fleet: stanza")
}

func (t *poolTarget) sweepStatus(id string) (sweepStatus, error) {
	return sweepStatus{}, fmt.Errorf("sweep %s: scenario has no fleet: stanza", id)
}

func (t *poolTarget) nodeState(node int) (string, error) {
	return "", fmt.Errorf("wait_node: scenario has no fleet: stanza")
}

func (t *poolTarget) settle(ctx context.Context, ids []string) error {
	return t.pool.Drain(ctx)
}

func (t *poolTarget) metric(name, label string) (float64, bool) {
	return t.pool.Metrics().Value(name, label)
}

func (t *poolTarget) injected(site faults.Site) int {
	return t.inj.Injected(site)
}

func (t *poolTarget) nodeStates() []string { return nil }
