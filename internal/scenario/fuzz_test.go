package scenario

import (
	"errors"
	"testing"
)

// FuzzParseScenario: malformed input must never panic and must always fail
// with a typed *ParseError — the contract that lets the CLI distinguish bad
// input (exit 2) from failing scenarios (exit 1).
func FuzzParseScenario(f *testing.F) {
	f.Add(validDoc)
	f.Add("name: x\nevents:\n  - submit: {name: a}\n")
	f.Add("")
	f.Add("---\n")
	f.Add("a: [1, {b: 2}, 'c']\n")
	f.Add("\ta: tab")
	f.Add("a: &anchor b")
	f.Add("a: |\n  block")
	f.Add("events:\n- submit:\n   name: \"xé\"\n")
	f.Add("{a: 1, a: 2}")
	f.Add("seed: 99999999999999999999999999")
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse([]byte(src))
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %T (%v), want *ParseError", err, err)
			}
			return
		}
		if s.Name == "" || len(s.Events) == 0 {
			t.Fatalf("Parse accepted a scenario Validate should reject: %+v", s)
		}
	})
}
