package scenario

// A hand-rolled parser for the strict YAML subset the scenario DSL uses.
// The repository takes no external dependencies, so rather than vendoring a
// full YAML implementation this parser accepts exactly the constructs the
// DSL needs — block mappings and sequences by indentation, one-line flow
// collections ([a, b] and {k: v}), quoted and plain scalars, comments — and
// rejects everything else with a *ParseError carrying the line number.
// Malformed input must never panic (FuzzParseScenario enforces it): every
// failure path returns a typed error.
//
// Deliberate restrictions, each an error rather than a silent surprise:
// tabs in indentation, duplicate mapping keys, multi-document streams,
// anchors/aliases/tags, and multi-line block scalars (| and >) are all
// rejected.

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// ParseError is the typed error every YAML or schema failure surfaces as.
type ParseError struct {
	// Line is the 1-based input line, 0 when the error is not line-scoped.
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("scenario: line %d: %s", e.Line, e.Msg)
	}
	return "scenario: " + e.Msg
}

func parseErrf(line int, format string, args ...any) *ParseError {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// maxDepth bounds nesting so hostile input cannot exhaust the stack.
const maxDepth = 64

// yamlLine is one significant input line: indentation stripped, comment
// removed, original line number kept for errors.
type yamlLine struct {
	num    int
	indent int
	text   string
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseYAML parses a document into nested map[string]any / []any / scalar
// values (string, int64, float64, bool, nil).
func parseYAML(src string) (any, error) {
	p := &yamlParser{}
	if err := p.split(src); err != nil {
		return nil, err
	}
	if len(p.lines) == 0 {
		return nil, parseErrf(0, "empty document")
	}
	v, err := p.value(p.lines[0].indent, 0)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, parseErrf(l.num, "unexpected content %q after the document (indentation decreased past the top level?)", l.text)
	}
	return v, nil
}

// split breaks the source into significant lines, stripping comments and
// blanks and validating indentation.
func (p *yamlParser) split(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		num := i + 1
		indent := 0
		for indent < len(raw) && raw[indent] == ' ' {
			indent++
		}
		rest := raw[indent:]
		if strings.HasPrefix(rest, "\t") {
			return parseErrf(num, "tab in indentation (use spaces)")
		}
		rest = strings.TrimRight(stripComment(rest), " \t")
		if rest == "" {
			continue
		}
		if rest == "---" && len(p.lines) == 0 {
			continue // leading document marker
		}
		if rest == "---" || rest == "..." {
			return parseErrf(num, "multi-document streams are not supported")
		}
		if strings.HasPrefix(rest, "&") || strings.HasPrefix(rest, "*") || strings.HasPrefix(rest, "!!") {
			return parseErrf(num, "anchors, aliases, and tags are not supported")
		}
		p.lines = append(p.lines, yamlLine{num: num, indent: indent, text: rest})
	}
	return nil
}

// stripComment removes a trailing comment: an unquoted "#" preceded by start
// of line or whitespace.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote == '"' && c == '\\':
			i++
		case quote != 0 && c == quote:
			quote = 0
		case quote == 0 && (c == '"' || c == '\''):
			quote = c
		case quote == 0 && c == '#' && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t'):
			return s[:i]
		}
	}
	return s
}

// value parses the block starting at the current line, whose indent must be
// exactly indent (the caller has already established it).
func (p *yamlParser) value(indent, depth int) (any, error) {
	if depth > maxDepth {
		return nil, parseErrf(p.lines[p.pos].num, "nesting deeper than %d levels", maxDepth)
	}
	l := p.lines[p.pos]
	if l.text == "-" || strings.HasPrefix(l.text, "- ") {
		return p.sequence(indent, depth)
	}
	return p.mapping(indent, depth)
}

// sequence parses "- item" lines at the given indent.
func (p *yamlParser) sequence(indent, depth int) (any, error) {
	var out []any
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent {
			break
		}
		if l.text != "-" && !strings.HasPrefix(l.text, "- ") {
			return nil, parseErrf(l.num, "expected a \"- \" sequence item at this indentation, got %q", l.text)
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(l.text, "-"), " ")
		if rest == "" {
			// Item is a nested block on the following deeper lines.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				out = append(out, nil)
				continue
			}
			v, err := p.value(p.lines[p.pos].indent, depth+1)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		// Inline item content: re-inject it as a line indented to where the
		// content starts, so "- key: value" plus continuation keys at that
		// column parse as one mapping.
		inner := l.indent + (len(l.text) - len(rest))
		p.lines[p.pos] = yamlLine{num: l.num, indent: inner, text: rest}
		if isMappingStart(rest) || rest == "-" || strings.HasPrefix(rest, "- ") {
			v, err := p.value(inner, depth+1)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		v, err := scalar(rest, l.num, depth+1)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		p.pos++
	}
	return out, nil
}

// keyRe is the shape of a plain mapping key.
var keyRe = regexp.MustCompile(`^[A-Za-z0-9_.-]+$`)

// isMappingStart reports whether a line's content begins a mapping entry:
// "key:" or "key: value" with a plain key.
func isMappingStart(s string) bool {
	key, _, ok := cutUnquotedColon(s)
	return ok && keyRe.MatchString(strings.TrimSpace(key))
}

// cutUnquotedColon splits s at the first ": " (or trailing ":") outside
// quotes and flow collections.
func cutUnquotedColon(s string) (key, val string, ok bool) {
	var quote byte
	flowDepth := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote == '"' && c == '\\':
			i++
		case quote != 0 && c == quote:
			quote = 0
		case quote == 0 && (c == '"' || c == '\''):
			quote = c
		case quote == 0 && (c == '[' || c == '{'):
			flowDepth++
		case quote == 0 && (c == ']' || c == '}'):
			flowDepth--
		case quote == 0 && flowDepth == 0 && c == ':':
			if i == len(s)-1 {
				return s[:i], "", true
			}
			if s[i+1] == ' ' {
				return s[:i], strings.TrimSpace(s[i+2:]), true
			}
		}
	}
	return "", "", false
}

// mapping parses "key: value" lines at the given indent.
func (p *yamlParser) mapping(indent, depth int) (any, error) {
	out := map[string]any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent {
			if l.indent > indent {
				return nil, parseErrf(l.num, "unexpected indentation")
			}
			break
		}
		key, val, ok := cutUnquotedColon(l.text)
		key = strings.TrimSpace(key)
		if !ok || !keyRe.MatchString(key) {
			return nil, parseErrf(l.num, "expected \"key: value\", got %q", l.text)
		}
		if _, dup := out[key]; dup {
			return nil, parseErrf(l.num, "duplicate key %q", key)
		}
		if val != "" {
			v, err := scalar(val, l.num, depth+1)
			if err != nil {
				return nil, err
			}
			out[key] = v
			p.pos++
			continue
		}
		// "key:" — a nested block on deeper lines, a sequence at the same
		// indent (the common "items under the key's column" style), or null.
		p.pos++
		if p.pos >= len(p.lines) || p.lines[p.pos].indent < indent {
			out[key] = nil
			continue
		}
		if next := p.lines[p.pos]; next.indent == indent {
			if next.text != "-" && !strings.HasPrefix(next.text, "- ") {
				out[key] = nil
				continue
			}
		}
		v, err := p.value(p.lines[p.pos].indent, depth+1)
		if err != nil {
			return nil, err
		}
		out[key] = v
	}
	return out, nil
}

// scalar parses a one-line value: a flow collection, a quoted string, or a
// typed plain scalar.
func scalar(s string, line, depth int) (any, error) {
	if depth > maxDepth {
		return nil, parseErrf(line, "nesting deeper than %d levels", maxDepth)
	}
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return nil, nil
	case s[0] == '[' || s[0] == '{':
		v, rest, err := flowValue(s, line, depth)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, parseErrf(line, "trailing content %q after flow collection", rest)
		}
		return v, nil
	case s[0] == '"':
		unq, err := strconv.Unquote(s)
		if err != nil {
			return nil, parseErrf(line, "bad double-quoted string %s", s)
		}
		return unq, nil
	case s[0] == '\'':
		if len(s) < 2 || s[len(s)-1] != '\'' {
			return nil, parseErrf(line, "unterminated single-quoted string %s", s)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	case s == "|" || s == ">" || strings.HasPrefix(s, "| ") || strings.HasPrefix(s, "> "):
		return nil, parseErrf(line, "block scalars (| and >) are not supported")
	case s[0] == '&' || s[0] == '*' || s[0] == '!':
		return nil, parseErrf(line, "anchors, aliases, and tags are not supported")
	}
	return plainScalar(s), nil
}

// plainScalar types an unquoted scalar.
func plainScalar(s string) any {
	switch s {
	case "null", "~", "Null", "NULL":
		return nil
	case "true", "True", "TRUE":
		return true
	case "false", "False", "FALSE":
		return false
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil && !strings.HasPrefix(s, "+") {
		return f
	}
	return s
}

// flowValue parses one value of a flow collection starting at s[0],
// returning the remainder of the string after it.
func flowValue(s string, line, depth int) (any, string, error) {
	if depth > maxDepth {
		return nil, "", parseErrf(line, "nesting deeper than %d levels", maxDepth)
	}
	s = strings.TrimLeft(s, " ")
	if s == "" {
		return nil, "", parseErrf(line, "missing value in flow collection")
	}
	switch s[0] {
	case '[':
		return flowSeq(s[1:], line, depth)
	case '{':
		return flowMap(s[1:], line, depth)
	case '"':
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
			} else if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, "", parseErrf(line, "unterminated string in flow collection")
		}
		unq, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, "", parseErrf(line, "bad quoted string in flow collection")
		}
		return unq, s[end+1:], nil
	case '\'':
		end := strings.IndexByte(s[1:], '\'')
		if end < 0 {
			return nil, "", parseErrf(line, "unterminated string in flow collection")
		}
		return s[1 : end+1], s[end+2:], nil
	}
	// Plain scalar: up to the next structural character.
	end := strings.IndexAny(s, ",]}")
	if end < 0 {
		end = len(s)
	}
	return plainScalar(strings.TrimSpace(s[:end])), s[end:], nil
}

// flowSeq parses "[a, b, ...]" content after the opening bracket.
func flowSeq(s string, line, depth int) (any, string, error) {
	out := []any{}
	s = strings.TrimLeft(s, " ")
	if strings.HasPrefix(s, "]") {
		return out, s[1:], nil
	}
	for {
		v, rest, err := flowValue(s, line, depth+1)
		if err != nil {
			return nil, "", err
		}
		out = append(out, v)
		rest = strings.TrimLeft(rest, " ")
		switch {
		case strings.HasPrefix(rest, ","):
			s = rest[1:]
		case strings.HasPrefix(rest, "]"):
			return out, rest[1:], nil
		default:
			return nil, "", parseErrf(line, "expected \",\" or \"]\" in flow sequence")
		}
	}
}

// flowMap parses "{k: v, ...}" content after the opening brace.
func flowMap(s string, line, depth int) (any, string, error) {
	out := map[string]any{}
	s = strings.TrimLeft(s, " ")
	if strings.HasPrefix(s, "}") {
		return out, s[1:], nil
	}
	for {
		s = strings.TrimLeft(s, " ")
		colon := strings.IndexByte(s, ':')
		if colon < 0 {
			return nil, "", parseErrf(line, "expected \"key: value\" in flow mapping")
		}
		key := strings.TrimSpace(s[:colon])
		if !keyRe.MatchString(key) {
			return nil, "", parseErrf(line, "bad flow mapping key %q", key)
		}
		if _, dup := out[key]; dup {
			return nil, "", parseErrf(line, "duplicate key %q", key)
		}
		v, rest, err := flowValue(s[colon+1:], line, depth+1)
		if err != nil {
			return nil, "", err
		}
		out[key] = v
		rest = strings.TrimLeft(rest, " ")
		switch {
		case strings.HasPrefix(rest, ","):
			s = rest[1:]
		case strings.HasPrefix(rest, "}"):
			return out, rest[1:], nil
		default:
			return nil, "", parseErrf(line, "expected \",\" or \"}\" in flow mapping")
		}
	}
}
