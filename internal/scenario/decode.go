package scenario

// Strict schema decoding: the generic YAML tree is walked field by field,
// every unknown key is an error naming its path and the valid alternatives,
// and every value is type-checked at decode time. A scenario that parses is
// therefore a scenario the runner fully understands.

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"pdpasim/internal/faults"
	"pdpasim/internal/fleet"
	"pdpasim/internal/runqueue"
)

// Parse parses and validates a scenario document.
func Parse(src []byte) (*Scenario, error) {
	root, err := parseYAML(string(src))
	if err != nil {
		return nil, err
	}
	m, err := asMap(root, "document")
	if err != nil {
		return nil, err
	}
	d := &decoder{}
	s := &Scenario{Seed: 1}
	s.Name = d.str(m, "name", "")
	s.Description = d.str(m, "description", "")
	if v, ok := m["seed"]; ok {
		s.Seed = d.int64Val(v, "seed")
	}
	if v, ok := m["pool"]; ok {
		s.Pool = d.pool(v)
	}
	if v, ok := m["fleet"]; ok {
		s.Fleet = d.fleet(v)
	}
	if v, ok := m["defaults"]; ok {
		s.Defaults = d.spec(v, "defaults", runqueue.Spec{})
	}
	if v, ok := m["faults"]; ok {
		s.Faults = d.faults(v)
	}
	if v, ok := m["events"]; ok {
		s.Events = d.events(v)
	}
	if v, ok := m["assertions"]; ok {
		s.Assertions = d.assertions(v)
	}
	d.unknown(m, "document", "name", "description", "seed", "pool", "fleet", "defaults", "faults", "events", "assertions")
	if d.err != nil {
		return nil, d.err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// decoder accumulates the first schema error; accessors after a failure are
// no-ops so decode code reads straight-line.
type decoder struct {
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = &ParseError{Msg: fmt.Sprintf(format, args...)}
	}
}

func asMap(v any, path string) (map[string]any, error) {
	if v == nil {
		return map[string]any{}, nil
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, &ParseError{Msg: fmt.Sprintf("%s must be a mapping", path)}
	}
	return m, nil
}

func (d *decoder) mapAt(v any, path string) map[string]any {
	m, err := asMap(v, path)
	if err != nil {
		d.fail("%s must be a mapping", path)
		return map[string]any{}
	}
	return m
}

func (d *decoder) seqAt(v any, path string) []any {
	if v == nil {
		return nil
	}
	s, ok := v.([]any)
	if !ok {
		d.fail("%s must be a sequence", path)
		return nil
	}
	return s
}

func (d *decoder) unknown(m map[string]any, path string, known ...string) {
	var extra []string
	for k := range m {
		found := false
		for _, valid := range known {
			if k == valid {
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, k)
		}
	}
	if len(extra) > 0 {
		sort.Strings(extra)
		d.fail("%s: unknown key %q (valid: %s)", path, extra[0], strings.Join(known, ", "))
	}
}

func (d *decoder) str(m map[string]any, key, path string) string {
	v, ok := m[key]
	if !ok {
		return ""
	}
	s, ok := v.(string)
	if !ok {
		d.fail("%s%s must be a string", dot(path), key)
		return ""
	}
	return s
}

func (d *decoder) int64Val(v any, path string) int64 {
	n, ok := v.(int64)
	if !ok {
		d.fail("%s must be an integer", path)
		return 0
	}
	return n
}

func (d *decoder) intField(m map[string]any, key, path string, dst *int) {
	if v, ok := m[key]; ok {
		*dst = int(d.int64Val(v, dot(path)+key))
	}
}

func (d *decoder) int64Field(m map[string]any, key, path string, dst *int64) {
	if v, ok := m[key]; ok {
		*dst = d.int64Val(v, dot(path)+key)
	}
}

func (d *decoder) floatVal(v any, path string) float64 {
	switch n := v.(type) {
	case int64:
		return float64(n)
	case float64:
		return n
	}
	d.fail("%s must be a number", path)
	return 0
}

func (d *decoder) floatField(m map[string]any, key, path string, dst *float64) {
	if v, ok := m[key]; ok {
		*dst = d.floatVal(v, dot(path)+key)
	}
}

func (d *decoder) boolField(m map[string]any, key, path string, dst *bool) {
	if v, ok := m[key]; ok {
		b, ok := v.(bool)
		if !ok {
			d.fail("%s%s must be true or false", dot(path), key)
			return
		}
		*dst = b
	}
}

func (d *decoder) durField(m map[string]any, key, path string, dst *time.Duration) {
	v, ok := m[key]
	if !ok {
		return
	}
	s, ok := v.(string)
	if !ok {
		d.fail("%s%s must be a duration string like 250ms", dot(path), key)
		return
	}
	dur, err := time.ParseDuration(s)
	if err != nil || dur < 0 {
		d.fail("%s%s: bad duration %q", dot(path), key, s)
		return
	}
	*dst = dur
}

func dot(path string) string {
	if path == "" {
		return ""
	}
	return path + "."
}

func (d *decoder) pool(v any) PoolParams {
	m := d.mapAt(v, "pool")
	var p PoolParams
	d.intField(m, "base_workers", "pool", &p.BaseWorkers)
	d.intField(m, "max_workers", "pool", &p.MaxWorkers)
	d.durField(m, "warmup", "pool", &p.Warmup)
	d.intField(m, "queue_limit", "pool", &p.QueueLimit)
	d.intField(m, "cache_size", "pool", &p.CacheSize)
	d.intField(m, "shed_depth", "pool", &p.ShedDepth)
	d.durField(m, "run_timeout", "pool", &p.RunTimeout)
	d.intField(m, "max_retries", "pool", &p.MaxRetries)
	d.durField(m, "retry_backoff", "pool", &p.RetryBackoff)
	d.unknown(m, "pool", "base_workers", "max_workers", "warmup", "queue_limit",
		"cache_size", "shed_depth", "run_timeout", "max_retries", "retry_backoff")
	return p
}

func (d *decoder) fleet(v any) *FleetParams {
	m := d.mapAt(v, "fleet")
	f := &FleetParams{}
	d.intField(m, "nodes", "fleet", &f.Nodes)
	if f.Nodes < 1 {
		d.fail("fleet needs a positive nodes count")
	}
	f.Placement = d.str(m, "placement", "fleet")
	if _, err := fleet.ParsePlacement(f.Placement); err != nil {
		d.fail("fleet.placement: %v", err)
	}
	d.durField(m, "heartbeat", "fleet", &f.Heartbeat)
	d.durField(m, "unhealthy_after", "fleet", &f.UnhealthyAfter)
	d.durField(m, "dead_after", "fleet", &f.DeadAfter)
	d.boolField(m, "durable", "fleet", &f.Durable)
	d.durField(m, "drain_idle_after", "fleet", &f.DrainIdleAfter)
	d.intField(m, "min_nodes", "fleet", &f.MinNodes)
	d.intField(m, "join_backlog", "fleet", &f.JoinBacklog)
	for i, nv := range d.seqAt(m["node_faults"], "fleet.node_faults") {
		path := fmt.Sprintf("fleet.node_faults[%d]", i)
		nm := d.mapAt(nv, path)
		nf := NodeFault{Node: -1}
		d.intField(nm, "node", path, &nf.Node)
		rule := d.str(nm, "rule", path)
		if rule == "" {
			d.fail("%s needs a rule string (\"<site>:<kind> [options]\")", path)
		} else if r, err := faults.ParseRule(rule); err != nil {
			d.fail("%s: %v", path, err)
		} else {
			nf.Rule = r
		}
		d.unknown(nm, path, "node", "rule")
		f.NodeFaults = append(f.NodeFaults, nf)
	}
	d.unknown(m, "fleet", "nodes", "placement", "heartbeat", "unhealthy_after", "dead_after",
		"durable", "drain_idle_after", "min_nodes", "join_backlog", "node_faults")
	return f
}

// spec decodes a workload/options pair as overrides onto base — the same
// shape serves the defaults template and per-submit overrides.
func (d *decoder) spec(v any, path string, base runqueue.Spec) runqueue.Spec {
	m := d.mapAt(v, path)
	out := base
	if wv, ok := m["workload"]; ok {
		out.Workload = d.workload(wv, path+".workload", base.Workload)
	}
	if ov, ok := m["options"]; ok {
		out.Options = d.options(ov, path+".options", base.Options)
	}
	d.unknown(m, path, "workload", "options")
	return out
}

func (d *decoder) workload(v any, path string, base runqueue.WorkloadSpec) runqueue.WorkloadSpec {
	m := d.mapAt(v, path)
	out := base
	if s := d.str(m, "mix", path); s != "" {
		out.Mix = s
	}
	d.floatField(m, "load", path, &out.Load)
	d.intField(m, "ncpu", path, &out.NCPU)
	d.floatField(m, "window_s", path, &out.WindowS)
	d.int64Field(m, "seed", path, &out.Seed)
	d.intField(m, "uniform_request", path, &out.UniformRequest)
	d.unknown(m, path, "mix", "load", "ncpu", "window_s", "seed", "uniform_request")
	return out
}

func (d *decoder) options(v any, path string, base runqueue.RunOptions) runqueue.RunOptions {
	m := d.mapAt(v, path)
	out := base
	if s := d.str(m, "policy", path); s != "" {
		out.Policy = s
	}
	d.floatField(m, "target_eff", path, &out.TargetEff)
	d.floatField(m, "high_eff", path, &out.HighEff)
	d.intField(m, "step", path, &out.Step)
	d.intField(m, "base_mpl", path, &out.BaseMPL)
	d.intField(m, "max_stable_transitions", path, &out.MaxStableTransitions)
	d.intField(m, "fixed_mpl", path, &out.FixedMPL)
	d.floatField(m, "noise_sigma", path, &out.NoiseSigma)
	d.int64Field(m, "seed", path, &out.Seed)
	d.intField(m, "numa_node_size", path, &out.NUMANodeSize)
	d.unknown(m, path, "policy", "target_eff", "high_eff", "step", "base_mpl",
		"max_stable_transitions", "fixed_mpl", "noise_sigma", "seed", "numa_node_size")
	return out
}

func (d *decoder) faults(v any) []faults.Rule {
	var rules []faults.Rule
	for i, rv := range d.seqAt(v, "faults") {
		s, ok := rv.(string)
		if !ok {
			d.fail("faults[%d] must be a rule string (\"<site>:<kind> [options]\")", i)
			return nil
		}
		r, err := faults.ParseRule(s)
		if err != nil {
			d.fail("faults[%d]: %v", i, err)
			return nil
		}
		rules = append(rules, r)
	}
	return rules
}

func (d *decoder) events(v any) []Event {
	var events []Event
	for i, ev := range d.seqAt(v, "events") {
		path := fmt.Sprintf("events[%d]", i)
		m := d.mapAt(ev, path)
		if len(m) != 1 {
			d.fail("%s must have exactly one event key (submit, submit_sweep, arrivals, set_policy, wait, wait_sweep, wait_node, wait_all, cancel)", path)
			return nil
		}
		var e Event
		for key, body := range m {
			switch key {
			case "submit":
				e.Submit = d.submit(body, path+".submit")
			case "arrivals":
				e.Arrivals = d.arrivals(body, path+".arrivals")
			case "set_policy":
				bm := d.mapAt(body, path+".set_policy")
				policy := d.str(bm, "policy", path+".set_policy")
				if policy == "" {
					d.fail("%s.set_policy needs a policy", path)
				}
				d.unknown(bm, path+".set_policy", "policy")
				e.SetPolicy = &SetPolicyEvent{Policy: policy}
			case "wait":
				bm := d.mapAt(body, path+".wait")
				w := &WaitEvent{Run: d.str(bm, "run", path+".wait"), State: d.str(bm, "state", path+".wait")}
				if w.State == "" {
					w.State = "terminal"
				}
				switch w.State {
				case "terminal", "running", string(runqueue.Done), string(runqueue.Failed), string(runqueue.Canceled):
				default:
					d.fail("%s.wait.state %q invalid (terminal, running, done, failed, canceled)", path, w.State)
				}
				d.unknown(bm, path+".wait", "run", "state")
				e.Wait = w
			case "wait_all":
				if body != nil {
					if bm, ok := body.(map[string]any); !ok || len(bm) != 0 {
						d.fail("%s.wait_all takes no parameters", path)
					}
				}
				e.WaitAll = true
			case "cancel":
				bm := d.mapAt(body, path+".cancel")
				e.Cancel = &CancelEvent{Run: d.str(bm, "run", path+".cancel")}
				d.unknown(bm, path+".cancel", "run")
			case "kill_node", "cordon_node", "drain_node":
				bm := d.mapAt(body, path+"."+key)
				ne := &NodeEvent{Node: -1}
				d.intField(bm, "node", path+"."+key, &ne.Node)
				d.unknown(bm, path+"."+key, "node")
				switch key {
				case "kill_node":
					e.KillNode = ne
				case "cordon_node":
					e.CordonNode = ne
				default:
					e.DrainNode = ne
				}
			case "submit_sweep":
				e.SubmitSweep = d.submitSweep(body, path+".submit_sweep")
			case "wait_sweep":
				bm := d.mapAt(body, path+".wait_sweep")
				w := &WaitSweepEvent{
					Sweep: d.str(bm, "sweep", path+".wait_sweep"),
					State: d.str(bm, "state", path+".wait_sweep"),
				}
				d.intField(bm, "done", path+".wait_sweep", &w.Done)
				if (w.State == "") == (w.Done == 0) {
					d.fail("%s.wait_sweep needs exactly one of state: <terminal> or done: <n>", path)
				}
				if w.Done < 0 {
					d.fail("%s.wait_sweep.done must be positive", path)
				}
				switch w.State {
				case "", "done", "failed", "canceled":
				default:
					d.fail("%s.wait_sweep.state %q invalid (done, failed, canceled)", path, w.State)
				}
				d.unknown(bm, path+".wait_sweep", "sweep", "state", "done")
				e.WaitSweep = w
			case "wait_node":
				bm := d.mapAt(body, path+".wait_node")
				wn := &WaitNodeEvent{Node: -1}
				d.intField(bm, "node", path+".wait_node", &wn.Node)
				wn.State = d.str(bm, "state", path+".wait_node")
				switch wn.State {
				case string(fleet.StateHealthy), string(fleet.StateCordoned),
					string(fleet.StateUnhealthy), string(fleet.StateDrained):
				default:
					d.fail("%s.wait_node.state %q invalid (healthy, cordoned, unhealthy, drained)", path, wn.State)
				}
				d.unknown(bm, path+".wait_node", "node", "state")
				e.WaitNode = wn
			case "kill_coordinator", "restart_coordinator":
				if body != nil {
					if bm, ok := body.(map[string]any); !ok || len(bm) != 0 {
						d.fail("%s.%s takes no parameters", path, key)
					}
				}
				if key == "kill_coordinator" {
					e.KillCoordinator = true
				} else {
					e.RestartCoordinator = true
				}
			default:
				d.fail("%s: unknown event %q (valid: submit, submit_sweep, arrivals, set_policy, wait, wait_sweep, wait_node, wait_all, cancel, kill_node, cordon_node, drain_node, kill_coordinator, restart_coordinator)", path, key)
			}
		}
		events = append(events, e)
		if d.err != nil {
			return nil
		}
	}
	return events
}

func (d *decoder) submit(v any, path string) *SubmitEvent {
	m := d.mapAt(v, path)
	e := &SubmitEvent{Name: d.str(m, "name", path)}
	if e.Name == "" {
		d.fail("%s needs a name", path)
	}
	if wv, ok := m["workload"]; ok {
		w := d.workload(wv, path+".workload", runqueue.WorkloadSpec{})
		e.Workload = &w
	}
	if ov, ok := m["options"]; ok {
		o := d.options(ov, path+".options", runqueue.RunOptions{})
		e.Options = &o
	}
	d.unknown(m, path, "name", "workload", "options")
	return e
}

func (d *decoder) submitSweep(v any, path string) *SubmitSweepEvent {
	m := d.mapAt(v, path)
	e := &SubmitSweepEvent{Name: d.str(m, "name", path)}
	if e.Name == "" {
		d.fail("%s needs a name", path)
	}
	for i, pv := range d.seqAt(m["policies"], path+".policies") {
		s, ok := pv.(string)
		if !ok {
			d.fail("%s.policies[%d] must be a policy name", path, i)
			break
		}
		e.Policies = append(e.Policies, s)
	}
	for i, mv := range d.seqAt(m["mixes"], path+".mixes") {
		s, ok := mv.(string)
		if !ok {
			d.fail("%s.mixes[%d] must be a mix name", path, i)
			break
		}
		e.Mixes = append(e.Mixes, s)
	}
	for i, lv := range d.seqAt(m["loads"], path+".loads") {
		e.Loads = append(e.Loads, d.floatVal(lv, fmt.Sprintf("%s.loads[%d]", path, i)))
	}
	for i, sv := range d.seqAt(m["seeds"], path+".seeds") {
		e.Seeds = append(e.Seeds, d.int64Val(sv, fmt.Sprintf("%s.seeds[%d]", path, i)))
	}
	d.intField(m, "ncpu", path, &e.NCPU)
	d.floatField(m, "window_s", path, &e.WindowS)
	if len(e.Policies) == 0 || len(e.Mixes) == 0 {
		d.fail("%s needs at least one policy and one mix", path)
	}
	d.unknown(m, path, "name", "policies", "mixes", "loads", "seeds", "ncpu", "window_s")
	return e
}

func (d *decoder) arrivals(v any, path string) *ArrivalsEvent {
	m := d.mapAt(v, path)
	e := &ArrivalsEvent{
		Prefix:  d.str(m, "prefix", path),
		Pattern: d.str(m, "pattern", path),
	}
	d.intField(m, "count", path, &e.Count)
	d.floatField(m, "load_min", path, &e.LoadMin)
	d.floatField(m, "load_max", path, &e.LoadMax)
	d.intField(m, "period", path, &e.Period)
	d.unknown(m, path, "prefix", "pattern", "count", "load_min", "load_max", "period")
	if e.Prefix == "" {
		d.fail("%s needs a prefix", path)
	}
	if e.Count <= 0 {
		d.fail("%s needs a positive count", path)
	}
	switch e.Pattern {
	case "", "burst":
		e.Pattern = "burst"
	case "uniform":
	case "diurnal":
		if e.LoadMin <= 0 || e.LoadMax < e.LoadMin {
			d.fail("%s: diurnal needs 0 < load_min <= load_max", path)
		}
		if e.Period <= 0 {
			e.Period = e.Count
		}
	default:
		d.fail("%s.pattern %q invalid (burst, uniform, diurnal)", path, e.Pattern)
	}
	return e
}

func (d *decoder) assertions(v any) []Assertion {
	var asserts []Assertion
	for i, av := range d.seqAt(v, "assertions") {
		path := fmt.Sprintf("assertions[%d]", i)
		m := d.mapAt(av, path)
		if len(m) != 1 {
			d.fail("%s must have exactly one assertion key", path)
			return nil
		}
		var a Assertion
		for key, body := range m {
			switch key {
			case "state":
				bm := d.mapAt(body, path+".state")
				a.State = &StateAssertion{Run: d.str(bm, "run", path+".state"), Is: d.str(bm, "is", path+".state")}
				d.terminalState(a.State.Is, path+".state.is")
				d.unknown(bm, path+".state", "run", "is")
			case "states":
				bm := d.mapAt(body, path+".states")
				st := &StatesAssertion{Prefix: d.str(bm, "prefix", path+".states"), All: d.str(bm, "all", path+".states")}
				for j, sv := range d.seqAt(bm["are"], path+".states.are") {
					s, ok := sv.(string)
					if !ok {
						d.fail("%s.states.are[%d] must be a state string", path, j)
						break
					}
					// Rejected submissions never reach a run state; they report
					// their rejection verdict in the state's place.
					if s != admShed && s != admQueueFull {
						d.terminalState(s, fmt.Sprintf("%s.states.are[%d]", path, j))
					}
					st.Are = append(st.Are, s)
				}
				if st.All != "" {
					d.terminalState(st.All, path+".states.all")
				}
				if (len(st.Are) == 0) == (st.All == "") {
					d.fail("%s.states needs exactly one of are: [...] or all: <state>", path)
				}
				d.unknown(bm, path+".states", "prefix", "are", "all")
				a.States = st
			case "admission":
				bm := d.mapAt(body, path+".admission")
				adm := &AdmissionAssertion{Run: d.str(bm, "run", path+".admission"), Is: d.str(bm, "is", path+".admission")}
				switch adm.Is {
				case admFresh, admCacheHit, admDedup, admShed, admQueueFull:
				default:
					d.fail("%s.admission.is %q invalid (fresh, cache_hit, dedup, shed, queue_full)", path, adm.Is)
				}
				d.unknown(bm, path+".admission", "run", "is")
				a.Admission = adm
			case "error_contains":
				bm := d.mapAt(body, path+".error_contains")
				a.ErrorContains = &ErrorContainsAssertion{
					Run:    d.str(bm, "run", path+".error_contains"),
					Substr: d.str(bm, "substr", path+".error_contains"),
				}
				if a.ErrorContains.Substr == "" {
					d.fail("%s.error_contains needs a substr", path)
				}
				d.unknown(bm, path+".error_contains", "run", "substr")
			case "metric":
				bm := d.mapAt(body, path+".metric")
				ma := &MetricAssertion{Name: d.str(bm, "name", path+".metric"), Label: d.str(bm, "label", path+".metric")}
				if ma.Name == "" {
					d.fail("%s.metric needs a name", path)
				}
				ma.Min, ma.Max = d.bounds(bm, path+".metric")
				if ma.Min == nil && ma.Max == nil {
					d.fail("%s.metric needs equals, min, or max", path)
				}
				d.unknown(bm, path+".metric", "name", "label", "min", "max", "equals")
				a.Metric = ma
			case "outcome":
				bm := d.mapAt(body, path+".outcome")
				oa := &OutcomeAssertion{
					Run:      d.str(bm, "run", path+".outcome"),
					Policy:   d.str(bm, "policy", path+".outcome"),
					Workload: d.str(bm, "workload", path+".outcome"),
				}
				if v, ok := bm["jobs"]; ok {
					n := int(d.int64Val(v, path+".outcome.jobs"))
					oa.Jobs = &n
				}
				if v, ok := bm["makespan_min_s"]; ok {
					f := d.floatVal(v, path+".outcome.makespan_min_s")
					oa.MakespanSMin = &f
				}
				if v, ok := bm["makespan_max_s"]; ok {
					f := d.floatVal(v, path+".outcome.makespan_max_s")
					oa.MakespanSMax = &f
				}
				d.unknown(bm, path+".outcome", "run", "policy", "workload", "jobs", "makespan_min_s", "makespan_max_s")
				a.Outcome = oa
			case "same_result":
				bm := d.mapAt(body, path+".same_result")
				sr := &SameResultAssertion{}
				for j, rv := range d.seqAt(bm["runs"], path+".same_result.runs") {
					s, ok := rv.(string)
					if !ok {
						d.fail("%s.same_result.runs[%d] must be a run name", path, j)
						break
					}
					sr.Runs = append(sr.Runs, s)
				}
				if len(sr.Runs) < 2 {
					d.fail("%s.same_result needs at least two runs", path)
				}
				d.unknown(bm, path+".same_result", "runs")
				a.SameResult = sr
			case "injected":
				bm := d.mapAt(body, path+".injected")
				site, err := faults.ParseSite(d.str(bm, "site", path+".injected"))
				if err != nil {
					d.fail("%s.injected: %v", path, err)
				}
				ia := &InjectedAssertion{Site: site}
				d.intField(bm, "count", path+".injected", &ia.Count)
				d.unknown(bm, path+".injected", "site", "count")
				a.Injected = ia
			case "node_states":
				bm := d.mapAt(body, path+".node_states")
				ns := &NodeStatesAssertion{}
				for j, sv := range d.seqAt(bm["are"], path+".node_states.are") {
					s, ok := sv.(string)
					if !ok {
						d.fail("%s.node_states.are[%d] must be a node state string", path, j)
						break
					}
					switch s {
					case string(fleet.StateHealthy), string(fleet.StateCordoned),
						string(fleet.StateUnhealthy), string(fleet.StateDrained):
					default:
						d.fail("%s.node_states.are[%d]: %q is not a node state (healthy, cordoned, unhealthy, drained)", path, j, s)
					}
					ns.Are = append(ns.Are, s)
				}
				if len(ns.Are) == 0 {
					d.fail("%s.node_states needs are: [...]", path)
				}
				d.unknown(bm, path+".node_states", "are")
				a.NodeStates = ns
			case "sweep_state":
				bm := d.mapAt(body, path+".sweep_state")
				ss := &SweepStateAssertion{
					Sweep: d.str(bm, "sweep", path+".sweep_state"),
					Is:    d.str(bm, "is", path+".sweep_state"),
				}
				switch ss.Is {
				case "done", "failed", "canceled":
				default:
					d.fail("%s.sweep_state.is %q invalid (done, failed, canceled)", path, ss.Is)
				}
				d.unknown(bm, path+".sweep_state", "sweep", "is")
				a.SweepState = ss
			case "sweep_cells_match_oracle":
				bm := d.mapAt(body, path+".sweep_cells_match_oracle")
				a.SweepOracle = &SweepOracleAssertion{Sweep: d.str(bm, "sweep", path+".sweep_cells_match_oracle")}
				d.unknown(bm, path+".sweep_cells_match_oracle", "sweep")
			case "reconciled_runs", "adopted_results":
				bm := d.mapAt(body, path+"."+key)
				cb := &CounterBoundAssertion{}
				cb.Min, cb.Max = d.bounds(bm, path+"."+key)
				if cb.Min == nil && cb.Max == nil {
					d.fail("%s.%s needs equals, min, or max", path, key)
				}
				d.unknown(bm, path+"."+key, "min", "max", "equals")
				if key == "reconciled_runs" {
					a.ReconciledRuns = cb
				} else {
					a.AdoptedResults = cb
				}
			case "invariants", "no_leaks":
				if body != nil {
					if bm, ok := body.(map[string]any); !ok || len(bm) != 0 {
						d.fail("%s.%s takes no parameters", path, key)
					}
				}
				if key == "invariants" {
					a.Invariants = true
				} else {
					a.NoLeaks = true
				}
			default:
				d.fail("%s: unknown assertion %q (valid: state, states, admission, error_contains, metric, outcome, same_result, injected, node_states, sweep_state, sweep_cells_match_oracle, reconciled_runs, adopted_results, invariants, no_leaks)", path, key)
			}
		}
		asserts = append(asserts, a)
		if d.err != nil {
			return nil
		}
	}
	return asserts
}

// bounds decodes the shared min/max/equals trio of a bounded assertion.
func (d *decoder) bounds(bm map[string]any, path string) (mn, mx *float64) {
	if v, ok := bm["min"]; ok {
		f := d.floatVal(v, path+".min")
		mn = &f
	}
	if v, ok := bm["max"]; ok {
		f := d.floatVal(v, path+".max")
		mx = &f
	}
	if v, ok := bm["equals"]; ok {
		if mn != nil || mx != nil {
			d.fail("%s: equals excludes min/max", path)
		}
		f := d.floatVal(v, path+".equals")
		mn, mx = &f, &f
	}
	return mn, mx
}

func (d *decoder) terminalState(s, path string) {
	switch runqueue.State(s) {
	case runqueue.Done, runqueue.Failed, runqueue.Canceled:
	default:
		d.fail("%s: %q is not a terminal state (done, failed, canceled)", path, s)
	}
}
