package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenReport is a fixed report exercising every renderer branch: pass and
// fail verdicts, rejected submissions, observed values, and a runtime error
// stays out because assertions are present.
func goldenReport() *Report {
	return &Report{
		Scenario:    "golden",
		Description: "fixed report for renderer regression",
		Seed:        42,
		Pass:        false,
		Submissions: []SubReport{
			{Name: "a", ID: "run-000001", Admission: "fresh", State: "done"},
			{Name: "hung", ID: "run-000002", Admission: "fresh", State: "failed",
				Error: "runqueue: no result within run timeout 50ms: runqueue: run timeout"},
			{Name: "b0", Admission: "shed",
				Error: "runqueue: overloaded: 2 runs queued; retry in 1s"},
			{Name: "c", ID: "run-000001", Admission: "cache_hit", State: "done"},
		},
		Assertions: []AssertReport{
			{Kind: "state", Detail: "run=a is=done", Observed: "done", Pass: true},
			{Kind: "metric", Detail: "pdpad_sheds_total equals 1", Observed: "1", Pass: true},
			{Kind: "state", Detail: "run=hung is=done", Observed: "failed", Pass: false},
			{Kind: "invariants", Detail: "all invariants hold across 2 simulation attempts",
				Observed: "clean", Pass: true},
		},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden file:\n--- got\n%s\n--- want\n%s", name, got, want)
	}
}

func TestReportGoldenText(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenReport().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.golden.txt", buf.Bytes())
}

func TestReportGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.golden.json", buf.Bytes())
}

// TestReportGoldenErrorText covers the runtime-failure rendering path.
func TestReportGoldenErrorText(t *testing.T) {
	rep := &Report{
		Scenario: "wedged",
		Seed:     1,
		Error:    `events[2]: wait "a": still not terminal after 30s`,
		Submissions: []SubReport{
			{Name: "a", ID: "run-000001", Admission: "fresh", State: "running"},
		},
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report_error.golden.txt", buf.Bytes())
}
