package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func TestYAMLScalars(t *testing.T) {
	got, err := parseYAML(`
a: hello
b: 42
c: 3.5
d: true
e: null
f: "quoted # not comment"
g: 'single ''quoted'''
h: -7
i: 1e3
`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"a": "hello", "b": int64(42), "c": 3.5, "d": true, "e": nil,
		"f": "quoted # not comment", "g": "single 'quoted'", "h": int64(-7), "i": 1e3,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v\nwant %#v", got, want)
	}
}

func TestYAMLNesting(t *testing.T) {
	got, err := parseYAML(`
top:
  mid:
    - name: x
      n: 1
    - name: y
  flowseq: [1, 2, three]
  flowmap: {a: 1, b: two}
list:
- plain
- {k: v}
`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"top": map[string]any{
			"mid": []any{
				map[string]any{"name": "x", "n": int64(1)},
				map[string]any{"name": "y"},
			},
			"flowseq": []any{int64(1), int64(2), "three"},
			"flowmap": map[string]any{"a": int64(1), "b": "two"},
		},
		"list": []any{"plain", map[string]any{"k": "v"}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v\nwant %#v", got, want)
	}
}

func TestYAMLErrors(t *testing.T) {
	cases := map[string]string{
		"\ta: 1":                        "tab",
		"a: 1\na: 2":                    "duplicate",
		"a: [1, 2":                      "expected \",\" or \"]\"",
		"a: {x: 1":                      "expected \",\" or \"}\"",
		"a: |\n  block":                 "block scalars",
		"a: &anchor b":                  "anchors",
		"a: *ref":                       "anchors",
		"a: !!str b":                    "anchors, aliases, and tags",
		"a: 1\n---\nb: 2":               "multi-document",
		"just a scalar":                 "key: value",
		"a: \"unterminated":             "double-quoted",
		"? complex":                     "key: value",
		"a: " + strings.Repeat("[", 80): "nesting deeper",
		"a: {b: {c: [1, 2, }":           "expected \",\" or \"]\"",
	}
	for src, wantSub := range cases {
		_, err := parseYAML(src)
		if err == nil {
			t.Errorf("%q: parsed, want error containing %q", src, wantSub)
			continue
		}
		pe, ok := err.(*ParseError)
		if !ok {
			t.Errorf("%q: error %T, want *ParseError", src, err)
			continue
		}
		if !strings.Contains(pe.Error(), wantSub) {
			t.Errorf("%q: error %q, want substring %q", src, pe.Error(), wantSub)
		}
	}
}

// TestYAMLSequenceAtKeyIndent: the common style where a key's sequence items
// sit at the key's own indentation.
func TestYAMLSequenceAtKeyIndent(t *testing.T) {
	got, err := parseYAML("events:\n- submit: x\n- wait: y\n")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{"events": []any{
		map[string]any{"submit": "x"},
		map[string]any{"wait": "y"},
	}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v\nwant %#v", got, want)
	}
}

func TestYAMLComments(t *testing.T) {
	got, err := parseYAML(`
# leading comment
a: 1  # trailing
# between

b: 2
`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{"a": int64(1), "b": int64(2)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v\nwant %#v", got, want)
	}
}
