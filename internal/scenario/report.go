package scenario

// The report is the scenario's contract with CI: it contains no wall-clock
// times, no absolute paths, and no map-ordered output, so the same scenario
// at the same seed renders byte-identical reports across runs, machines, and
// the race detector.

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report is the outcome of one scenario execution.
type Report struct {
	Scenario    string `json:"scenario"`
	Description string `json:"description,omitempty"`
	Seed        int64  `json:"seed"`
	// Pass is true when the scenario ran to completion and every assertion
	// held.
	Pass bool `json:"pass"`
	// Error is set when the scenario itself failed to run (a wait that never
	// settled, a submit the runner could not place); assertions are then not
	// evaluated.
	Error       string         `json:"error,omitempty"`
	Submissions []SubReport `json:"submissions"`
	// Sweeps records named submit_sweep events (fleet scenarios only).
	Sweeps     []SweepReport  `json:"sweeps,omitempty"`
	Assertions []AssertReport `json:"assertions,omitempty"`
}

// SweepReport records how one named sweep fared.
type SweepReport struct {
	Name  string `json:"name"`
	ID    string `json:"id"`
	State string `json:"state,omitempty"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// SubReport records how one named submission fared.
type SubReport struct {
	Name string `json:"name"`
	// ID is the pool run ID; empty when the submission was rejected.
	ID string `json:"id,omitempty"`
	// Admission is fresh, cache_hit, dedup, shed, or queue_full.
	Admission string `json:"admission"`
	// State is the run's state at report time (terminal after the drain).
	State string `json:"state,omitempty"`
	// Error is the run's failure message, or the rejection message.
	Error string `json:"error,omitempty"`
}

// AssertReport records one assertion's verdict.
type AssertReport struct {
	Kind     string `json:"kind"`
	Detail   string `json:"detail"`
	Observed string `json:"observed,omitempty"`
	Pass     bool   `json:"pass"`
}

// WriteJSON renders the report as indented JSON with a trailing newline.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteText renders the human-readable report.
func (r *Report) WriteText(w io.Writer) error {
	verdict := "FAIL"
	if r.Pass {
		verdict = "PASS"
	}
	if _, err := fmt.Fprintf(w, "scenario %s: %s (seed %d)\n", r.Scenario, verdict, r.Seed); err != nil {
		return err
	}
	if r.Description != "" {
		fmt.Fprintf(w, "  %s\n", r.Description)
	}
	if r.Error != "" {
		fmt.Fprintf(w, "  error: %s\n", r.Error)
	}
	if len(r.Submissions) > 0 {
		fmt.Fprintf(w, "  submissions:\n")
		nameW, idW, admW := 4, 2, 9
		for _, s := range r.Submissions {
			nameW = max(nameW, len(s.Name))
			idW = max(idW, len(s.ID))
			admW = max(admW, len(s.Admission))
		}
		for _, s := range r.Submissions {
			id, state := s.ID, s.State
			if id == "" {
				id = "-"
			}
			if state == "" {
				state = "-"
			}
			fmt.Fprintf(w, "    %-*s  %-*s  %-*s  %s", nameW, s.Name, idW, id, admW, s.Admission, state)
			if s.Error != "" {
				fmt.Fprintf(w, "  (%s)", s.Error)
			}
			fmt.Fprintln(w)
		}
	}
	if len(r.Sweeps) > 0 {
		fmt.Fprintf(w, "  sweeps:\n")
		for _, s := range r.Sweeps {
			state := s.State
			if state == "" {
				state = "-"
			}
			fmt.Fprintf(w, "    %s  %s  %s  %d/%d\n", s.Name, s.ID, state, s.Done, s.Total)
		}
	}
	if len(r.Assertions) > 0 {
		fmt.Fprintf(w, "  assertions:\n")
		for _, a := range r.Assertions {
			mark := "FAIL"
			if a.Pass {
				mark = "ok  "
			}
			fmt.Fprintf(w, "    [%s] %s: %s", mark, a.Kind, a.Detail)
			if a.Observed != "" {
				fmt.Fprintf(w, " — %s", a.Observed)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
