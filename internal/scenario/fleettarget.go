package scenario

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"pdpasim"
	"pdpasim/client"
	"pdpasim/internal/faults"
	"pdpasim/internal/fleet"
	"pdpasim/internal/runqueue"
	"pdpasim/internal/server"
	"pdpasim/internal/store"
)

// fleetTarget runs a scenario against an in-process coordinator plus node
// fleet, wired through real HTTP (httptest servers) and the public client —
// every event and assertion exercises the same v1 surface a remote operator
// would.
//
// Determinism: agents start one at a time, each waiting for registration, so
// the scenario's node index equals the coordinator's registration order
// (node-000, node-001, ...). Each node owns a seeded injector (master seed +
// node index) arming the scenario's global rules plus that node's
// node_faults; the coordinator's injector (master seed) arms the global
// rules for its own sites. Metric assertions read the coordinator registry
// first and fall back to summing the per-node pool registries.
type fleetTarget struct {
	hc       *http.Client
	coord    *fleet.Coordinator
	coordSrv *httptest.Server
	cli      *client.Client
	coordInj *faults.Injector
	nodes    []*fleetNode

	// Durable-fleet state: the coordinator journals its routing table to
	// storeDir, and kill_coordinator / restart_coordinator cycle the
	// coordinator while keeping coordAddr stable so node agents and the
	// client reconnect to the same base URL.
	coordCfg  fleet.Config
	coordAddr string
	storeDir  string
	st        *store.Store
	coordDown bool

	sweepIDs []string

	settled      bool
	frozenRuns   map[string]runStatus
	frozenSweeps map[string]sweepStatus
	frozenNodes  []string
}

// fleetNode is one node daemon: pool, HTTP surface, membership agent.
type fleetNode struct {
	inj   *faults.Injector
	pool  *runqueue.Pool
	hsrv  *httptest.Server
	agent *fleet.Agent
	id    string

	stopped bool // agent stopped
	killed  bool // HTTP surface torn down too
}

// registerTimeout bounds each agent's first registration during startup.
const registerTimeout = 10 * time.Second

func newFleetTarget(s *Scenario, sim func(context.Context, runqueue.Spec) (*pdpasim.Outcome, error)) (*fleetTarget, error) {
	f := s.Fleet
	t := &fleetTarget{
		hc:           &http.Client{},
		coordInj:     faults.New(s.Seed, s.Faults...),
		frozenRuns:   map[string]runStatus{},
		frozenSweeps: map[string]sweepStatus{},
	}
	t.coordCfg = fleet.Config{
		Placement: fleet.Placement(f.Placement),
		Health: fleet.HealthConfig{
			HeartbeatInterval: f.Heartbeat,
			UnhealthyAfter:    f.UnhealthyAfter,
			DeadAfter:         f.DeadAfter,
		},
		Elastic: fleet.ElasticConfig{
			DrainIdleAfter:   f.DrainIdleAfter,
			MinNodes:         f.MinNodes,
			JoinBacklogDepth: f.JoinBacklog,
		},
		Faults:     t.coordInj,
		HTTPClient: t.hc,
	}
	if f.Durable {
		dir, err := os.MkdirTemp("", "pdpad-scenario-store-")
		if err != nil {
			return nil, err
		}
		t.storeDir = dir
		st, err := store.Open(dir, store.Options{SyncInterval: -1})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		t.st = st
		t.coordCfg.Store = st
	}
	coord, err := fleet.NewCoordinator(t.coordCfg)
	if err != nil {
		if t.st != nil {
			t.st.Close()
			os.RemoveAll(t.storeDir)
		}
		return nil, err
	}
	t.coord = coord
	t.coordSrv = httptest.NewServer(coord)
	t.coordAddr = t.coordSrv.Listener.Addr().String()
	t.cli = client.New(t.coordSrv.URL, client.WithHTTPClient(t.hc))

	for i := 0; i < f.Nodes; i++ {
		rules := append([]faults.Rule(nil), s.Faults...)
		for _, nf := range f.NodeFaults {
			if nf.Node == i {
				rules = append(rules, nf.Rule)
			}
		}
		inj := faults.New(s.Seed+int64(i), rules...)
		cfg := s.Pool.config()
		cfg.Faults = inj
		cfg.Simulate = sim
		pool := runqueue.New(cfg)
		hsrv := httptest.NewServer(server.New(pool,
			server.WithFaults(inj), server.WithRole(server.RoleNode)))
		agent := fleet.StartAgent(fleet.AgentConfig{
			Coordinator: t.coordSrv.URL,
			Advertise:   hsrv.URL,
			Name:        fmt.Sprintf("n%d", i),
			BaseWorkers: cfg.BaseWorkers,
			MaxWorkers:  cfg.MaxWorkers,
			HTTPClient:  t.hc,
		}, pool)
		n := &fleetNode{inj: inj, pool: pool, hsrv: hsrv, agent: agent}
		t.nodes = append(t.nodes, n)
		select {
		case <-agent.Registered():
			n.id = agent.ID()
		case <-time.After(registerTimeout):
			t.teardown(context.Background())
			return nil, fmt.Errorf("fleet: node %d did not register within %v", i, registerTimeout)
		}
	}
	return t, nil
}

func (t *fleetTarget) submit(spec runqueue.Spec) (admitResult, error) {
	wire := specWire(spec)
	req := client.SubmitRunRequest{Workload: wire.Workload, Options: wire.Options}
	res, err := t.cli.SubmitRun(context.Background(), req)
	if err == nil {
		switch {
		case res.CacheHit:
			return admitResult{id: res.ID, admission: admCacheHit}, nil
		case res.Deduped:
			return admitResult{id: res.ID, admission: admDedup}, nil
		default:
			return admitResult{id: res.ID, admission: admFresh}, nil
		}
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		switch ae.Code {
		case "overloaded":
			return admitResult{admission: admShed, reject: err}, nil
		case "queue_full":
			return admitResult{admission: admQueueFull, reject: err}, nil
		}
	}
	return admitResult{}, err
}

// specWire converts the runner's internal spec to the client mirror. The
// JSON tags of both sides name the same fields, so the mapping is direct.
func specWire(spec runqueue.Spec) client.Spec {
	return client.Spec{
		Workload: client.Workload{
			Mix:            spec.Workload.Mix,
			Load:           spec.Workload.Load,
			NCPU:           spec.Workload.NCPU,
			WindowS:        spec.Workload.WindowS,
			Seed:           spec.Workload.Seed,
			UniformRequest: spec.Workload.UniformRequest,
		},
		Options: client.RunOptions{
			Policy:               spec.Options.Policy,
			TargetEff:            spec.Options.TargetEff,
			HighEff:              spec.Options.HighEff,
			Step:                 spec.Options.Step,
			BaseMPL:              spec.Options.BaseMPL,
			MaxStableTransitions: spec.Options.MaxStableTransitions,
			FixedMPL:             spec.Options.FixedMPL,
			NoiseSigma:           spec.Options.NoiseSigma,
			Seed:                 spec.Options.Seed,
			NUMANodeSize:         spec.Options.NUMANodeSize,
		},
	}
}

func runStatusOf(v client.RunView) runStatus {
	return runStatus{state: v.State, errMsg: v.Error, result: v.Result}
}

func (t *fleetTarget) status(id string) (runStatus, error) {
	if t.settled {
		st, ok := t.frozenRuns[id]
		if !ok {
			return runStatus{}, fmt.Errorf("run %s was not frozen at settle", id)
		}
		return st, nil
	}
	v, err := t.cli.Run(context.Background(), id)
	if err != nil {
		return runStatus{}, err
	}
	return runStatusOf(v), nil
}

func (t *fleetTarget) cancel(id string) error {
	_, err := t.cli.CancelRun(context.Background(), id)
	return err
}

func (t *fleetTarget) node(i int) (*fleetNode, error) {
	if i < 0 || i >= len(t.nodes) {
		return nil, fmt.Errorf("node %d out of range", i)
	}
	return t.nodes[i], nil
}

// stopAgent stops a node's membership agent exactly once. Stopping the agent
// before a manual drain matters: a drained node that keeps heartbeating gets
// 404 and re-registers under a fresh ID, which would grow the node list.
func (n *fleetNode) stopAgent() {
	if n.stopped {
		return
	}
	n.stopped = true
	n.agent.Stop()
}

func (t *fleetTarget) nodeEvent(kind string, i int) error {
	n, err := t.node(i)
	if err != nil {
		return fmt.Errorf("%s_node: %w", kind, err)
	}
	switch kind {
	case "kill":
		// Abrupt death: membership and the HTTP surface vanish together.
		// The node's pool keeps running its work (a real crashed host's
		// results just never come back); the coordinator notices the
		// silence, declares the node dead, and requeues its runs.
		if n.killed {
			return nil
		}
		n.killed = true
		n.stopAgent()
		n.hsrv.CloseClientConnections()
		n.hsrv.Close()
		return nil
	case "cordon":
		_, err := t.cli.CordonNode(context.Background(), n.id)
		return err
	case "drain":
		n.stopAgent()
		_, err := t.cli.DrainNode(context.Background(), n.id)
		return err
	}
	return fmt.Errorf("unknown node event %q", kind)
}

// coordEvent kills or restarts a durable fleet's coordinator. A kill is
// abrupt: open connections are cut and the store handle dies with the
// process stand-in, leaving only the synced journal on disk. A restart
// reopens the journal, rebinds the same address, and serves — the new
// coordinator rehydrates its routing table before its listener accepts, and
// reconciles with each node as its agent's next heartbeat 404s it into
// re-registering.
func (t *fleetTarget) coordEvent(kind string) error {
	switch kind {
	case "kill":
		if t.st == nil {
			return fmt.Errorf("kill_coordinator: fleet is not durable")
		}
		if t.coordDown {
			return fmt.Errorf("kill_coordinator: the coordinator is already down")
		}
		t.coordSrv.CloseClientConnections()
		t.coordSrv.Close()
		t.coord.Close()
		if err := t.st.Close(); err != nil {
			return fmt.Errorf("kill_coordinator: %w", err)
		}
		t.hc.CloseIdleConnections()
		t.coordDown = true
		return nil
	case "restart":
		if !t.coordDown {
			return fmt.Errorf("restart_coordinator: the coordinator is not down")
		}
		st, err := store.Open(t.storeDir, store.Options{SyncInterval: -1})
		if err != nil {
			return fmt.Errorf("restart_coordinator: %w", err)
		}
		cfg := t.coordCfg
		cfg.Store = st
		coord, err := fleet.NewCoordinator(cfg)
		if err != nil {
			st.Close()
			return fmt.Errorf("restart_coordinator: %w", err)
		}
		l, err := listenAt(t.coordAddr)
		if err != nil {
			coord.Close()
			st.Close()
			return fmt.Errorf("restart_coordinator: %w", err)
		}
		srv := &httptest.Server{Listener: l, Config: &http.Server{Handler: coord}}
		srv.Start()
		t.st, t.coord, t.coordSrv = st, coord, srv
		t.coordDown = false
		return nil
	}
	return fmt.Errorf("unknown coordinator event %q", kind)
}

// listenAt rebinds a just-released address, retrying while the kernel
// finishes tearing the old listener down.
func listenAt(addr string) (net.Listener, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		l, err := net.Listen("tcp", addr)
		if err == nil {
			return l, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("rebind %s: %w", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (t *fleetTarget) submitSweep(spec *SubmitSweepEvent) (string, error) {
	res, err := t.cli.SubmitSweep(context.Background(), sweepWire(spec))
	if err != nil {
		return "", err
	}
	t.sweepIDs = append(t.sweepIDs, res.ID)
	return res.ID, nil
}

func sweepStatusOf(v client.SweepView) sweepStatus {
	return sweepStatus{state: v.State, done: v.Done, total: v.Total, cells: v.Cells}
}

func (t *fleetTarget) sweepStatus(id string) (sweepStatus, error) {
	if t.settled {
		st, ok := t.frozenSweeps[id]
		if !ok {
			return sweepStatus{}, fmt.Errorf("sweep %s was not frozen at settle", id)
		}
		return st, nil
	}
	v, err := t.cli.Sweep(context.Background(), id)
	if err != nil {
		return sweepStatus{}, err
	}
	return sweepStatusOf(v), nil
}

// nodeState reports a node's live state by registration index: the ledger
// entry for the agent's current incarnation.
func (t *fleetTarget) nodeState(i int) (string, error) {
	n, err := t.node(i)
	if err != nil {
		return "", err
	}
	id := n.agent.ID()
	ctx := context.Background()
	opts := client.ListOptions{}
	for {
		page, err := t.cli.Nodes(ctx, opts)
		if err != nil {
			return "", err
		}
		for _, v := range page.Nodes {
			if v.ID == id {
				return v.State, nil
			}
		}
		if page.NextCursor == "" {
			return "", fmt.Errorf("node %s is not in the coordinator's ledger", id)
		}
		opts.Cursor = page.NextCursor
	}
}

func (t *fleetTarget) settle(ctx context.Context, ids []string) error {
	drainErr := t.coord.Drain(ctx)
	if drainErr == nil {
		for _, id := range ids {
			v, err := t.cli.Run(ctx, id)
			if err != nil {
				drainErr = fmt.Errorf("freeze run %s: %w", id, err)
				break
			}
			t.frozenRuns[id] = runStatusOf(v)
		}
	}
	if drainErr == nil {
		for _, id := range t.sweepIDs {
			v, err := t.cli.Sweep(ctx, id)
			if err != nil {
				drainErr = fmt.Errorf("freeze sweep %s: %w", id, err)
				break
			}
			t.frozenSweeps[id] = sweepStatusOf(v)
		}
	}
	if drainErr == nil {
		drainErr = t.freezeNodes(ctx)
	}
	t.teardown(ctx)
	t.settled = true
	return drainErr
}

// freezeNodes snapshots every node's final state, ascending by node ID
// (registration order) regardless of the API's newest-first pages.
func (t *fleetTarget) freezeNodes(ctx context.Context) error {
	var views []client.NodeView
	opts := client.ListOptions{}
	for {
		page, err := t.cli.Nodes(ctx, opts)
		if err != nil {
			return fmt.Errorf("freeze nodes: %w", err)
		}
		views = append(views, page.Nodes...)
		if page.NextCursor == "" {
			break
		}
		opts.Cursor = page.NextCursor
	}
	sort.Slice(views, func(i, j int) bool { return views[i].ID < views[j].ID })
	for _, v := range views {
		t.frozenNodes = append(t.frozenNodes, v.State)
	}
	return nil
}

// teardown releases everything the target started, in dependency order:
// membership agents, the coordinator (traffic source), then each node's
// HTTP surface and pool. Abandoned work on killed nodes finishes here, so a
// no_leaks assertion evaluated afterwards sees a quiet process.
func (t *fleetTarget) teardown(ctx context.Context) {
	for _, n := range t.nodes {
		n.stopAgent()
	}
	if !t.coordDown {
		t.coordSrv.Close()
		t.coord.Close()
		if t.st != nil {
			t.st.Close()
		}
	}
	for _, n := range t.nodes {
		if !n.killed {
			n.hsrv.Close()
		}
		n.pool.Drain(ctx)
	}
	t.hc.CloseIdleConnections()
	if t.storeDir != "" {
		os.RemoveAll(t.storeDir)
	}
}

func (t *fleetTarget) metric(name, label string) (float64, bool) {
	if v, ok := t.coord.Metrics().Value(name, label); ok {
		return v, true
	}
	var sum float64
	found := false
	for _, n := range t.nodes {
		if v, ok := n.pool.Metrics().Value(name, label); ok {
			sum += v
			found = true
		}
	}
	return sum, found
}

func (t *fleetTarget) injected(site faults.Site) int {
	got := t.coordInj.Injected(site)
	for _, n := range t.nodes {
		got += n.inj.Injected(site)
	}
	return got
}

func (t *fleetTarget) nodeStates() []string { return t.frozenNodes }
