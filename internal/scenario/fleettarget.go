package scenario

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"time"

	"pdpasim"
	"pdpasim/client"
	"pdpasim/internal/faults"
	"pdpasim/internal/fleet"
	"pdpasim/internal/runqueue"
	"pdpasim/internal/server"
)

// fleetTarget runs a scenario against an in-process coordinator plus node
// fleet, wired through real HTTP (httptest servers) and the public client —
// every event and assertion exercises the same v1 surface a remote operator
// would.
//
// Determinism: agents start one at a time, each waiting for registration, so
// the scenario's node index equals the coordinator's registration order
// (node-000, node-001, ...). Each node owns a seeded injector (master seed +
// node index) arming the scenario's global rules plus that node's
// node_faults; the coordinator's injector (master seed) arms the global
// rules for its own sites. Metric assertions read the coordinator registry
// first and fall back to summing the per-node pool registries.
type fleetTarget struct {
	hc       *http.Client
	coord    *fleet.Coordinator
	coordSrv *httptest.Server
	cli      *client.Client
	coordInj *faults.Injector
	nodes    []*fleetNode

	settled     bool
	frozenRuns  map[string]runStatus
	frozenNodes []string
}

// fleetNode is one node daemon: pool, HTTP surface, membership agent.
type fleetNode struct {
	inj   *faults.Injector
	pool  *runqueue.Pool
	hsrv  *httptest.Server
	agent *fleet.Agent
	id    string

	stopped bool // agent stopped
	killed  bool // HTTP surface torn down too
}

// registerTimeout bounds each agent's first registration during startup.
const registerTimeout = 10 * time.Second

func newFleetTarget(s *Scenario, sim func(context.Context, runqueue.Spec) (*pdpasim.Outcome, error)) (*fleetTarget, error) {
	f := s.Fleet
	t := &fleetTarget{
		hc:         &http.Client{},
		coordInj:   faults.New(s.Seed, s.Faults...),
		frozenRuns: map[string]runStatus{},
	}
	coord, err := fleet.NewCoordinator(fleet.Config{
		Placement: fleet.Placement(f.Placement),
		Health: fleet.HealthConfig{
			HeartbeatInterval: f.Heartbeat,
			UnhealthyAfter:    f.UnhealthyAfter,
			DeadAfter:         f.DeadAfter,
		},
		Faults:     t.coordInj,
		HTTPClient: t.hc,
	})
	if err != nil {
		return nil, err
	}
	t.coord = coord
	t.coordSrv = httptest.NewServer(coord)
	t.cli = client.New(t.coordSrv.URL, client.WithHTTPClient(t.hc))

	for i := 0; i < f.Nodes; i++ {
		rules := append([]faults.Rule(nil), s.Faults...)
		for _, nf := range f.NodeFaults {
			if nf.Node == i {
				rules = append(rules, nf.Rule)
			}
		}
		inj := faults.New(s.Seed+int64(i), rules...)
		cfg := s.Pool.config()
		cfg.Faults = inj
		cfg.Simulate = sim
		pool := runqueue.New(cfg)
		hsrv := httptest.NewServer(server.New(pool,
			server.WithFaults(inj), server.WithRole(server.RoleNode)))
		agent := fleet.StartAgent(fleet.AgentConfig{
			Coordinator: t.coordSrv.URL,
			Advertise:   hsrv.URL,
			Name:        fmt.Sprintf("n%d", i),
			BaseWorkers: cfg.BaseWorkers,
			MaxWorkers:  cfg.MaxWorkers,
			HTTPClient:  t.hc,
		}, pool)
		n := &fleetNode{inj: inj, pool: pool, hsrv: hsrv, agent: agent}
		t.nodes = append(t.nodes, n)
		select {
		case <-agent.Registered():
			n.id = agent.ID()
		case <-time.After(registerTimeout):
			t.teardown(context.Background())
			return nil, fmt.Errorf("fleet: node %d did not register within %v", i, registerTimeout)
		}
	}
	return t, nil
}

func (t *fleetTarget) submit(spec runqueue.Spec) (admitResult, error) {
	wire := specWire(spec)
	req := client.SubmitRunRequest{Workload: wire.Workload, Options: wire.Options}
	res, err := t.cli.SubmitRun(context.Background(), req)
	if err == nil {
		switch {
		case res.CacheHit:
			return admitResult{id: res.ID, admission: admCacheHit}, nil
		case res.Deduped:
			return admitResult{id: res.ID, admission: admDedup}, nil
		default:
			return admitResult{id: res.ID, admission: admFresh}, nil
		}
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		switch ae.Code {
		case "overloaded":
			return admitResult{admission: admShed, reject: err}, nil
		case "queue_full":
			return admitResult{admission: admQueueFull, reject: err}, nil
		}
	}
	return admitResult{}, err
}

// specWire converts the runner's internal spec to the client mirror. The
// JSON tags of both sides name the same fields, so the mapping is direct.
func specWire(spec runqueue.Spec) client.Spec {
	return client.Spec{
		Workload: client.Workload{
			Mix:            spec.Workload.Mix,
			Load:           spec.Workload.Load,
			NCPU:           spec.Workload.NCPU,
			WindowS:        spec.Workload.WindowS,
			Seed:           spec.Workload.Seed,
			UniformRequest: spec.Workload.UniformRequest,
		},
		Options: client.RunOptions{
			Policy:               spec.Options.Policy,
			TargetEff:            spec.Options.TargetEff,
			HighEff:              spec.Options.HighEff,
			Step:                 spec.Options.Step,
			BaseMPL:              spec.Options.BaseMPL,
			MaxStableTransitions: spec.Options.MaxStableTransitions,
			FixedMPL:             spec.Options.FixedMPL,
			NoiseSigma:           spec.Options.NoiseSigma,
			Seed:                 spec.Options.Seed,
			NUMANodeSize:         spec.Options.NUMANodeSize,
		},
	}
}

func runStatusOf(v client.RunView) runStatus {
	return runStatus{state: v.State, errMsg: v.Error, result: v.Result}
}

func (t *fleetTarget) status(id string) (runStatus, error) {
	if t.settled {
		st, ok := t.frozenRuns[id]
		if !ok {
			return runStatus{}, fmt.Errorf("run %s was not frozen at settle", id)
		}
		return st, nil
	}
	v, err := t.cli.Run(context.Background(), id)
	if err != nil {
		return runStatus{}, err
	}
	return runStatusOf(v), nil
}

func (t *fleetTarget) cancel(id string) error {
	_, err := t.cli.CancelRun(context.Background(), id)
	return err
}

func (t *fleetTarget) node(i int) (*fleetNode, error) {
	if i < 0 || i >= len(t.nodes) {
		return nil, fmt.Errorf("node %d out of range", i)
	}
	return t.nodes[i], nil
}

// stopAgent stops a node's membership agent exactly once. Stopping the agent
// before a manual drain matters: a drained node that keeps heartbeating gets
// 404 and re-registers under a fresh ID, which would grow the node list.
func (n *fleetNode) stopAgent() {
	if n.stopped {
		return
	}
	n.stopped = true
	n.agent.Stop()
}

func (t *fleetTarget) nodeEvent(kind string, i int) error {
	n, err := t.node(i)
	if err != nil {
		return fmt.Errorf("%s_node: %w", kind, err)
	}
	switch kind {
	case "kill":
		// Abrupt death: membership and the HTTP surface vanish together.
		// The node's pool keeps running its work (a real crashed host's
		// results just never come back); the coordinator notices the
		// silence, declares the node dead, and requeues its runs.
		if n.killed {
			return nil
		}
		n.killed = true
		n.stopAgent()
		n.hsrv.CloseClientConnections()
		n.hsrv.Close()
		return nil
	case "cordon":
		_, err := t.cli.CordonNode(context.Background(), n.id)
		return err
	case "drain":
		n.stopAgent()
		_, err := t.cli.DrainNode(context.Background(), n.id)
		return err
	}
	return fmt.Errorf("unknown node event %q", kind)
}

func (t *fleetTarget) settle(ctx context.Context, ids []string) error {
	drainErr := t.coord.Drain(ctx)
	if drainErr == nil {
		for _, id := range ids {
			v, err := t.cli.Run(ctx, id)
			if err != nil {
				drainErr = fmt.Errorf("freeze run %s: %w", id, err)
				break
			}
			t.frozenRuns[id] = runStatusOf(v)
		}
	}
	if drainErr == nil {
		drainErr = t.freezeNodes(ctx)
	}
	t.teardown(ctx)
	t.settled = true
	return drainErr
}

// freezeNodes snapshots every node's final state, ascending by node ID
// (registration order) regardless of the API's newest-first pages.
func (t *fleetTarget) freezeNodes(ctx context.Context) error {
	var views []client.NodeView
	opts := client.ListOptions{}
	for {
		page, err := t.cli.Nodes(ctx, opts)
		if err != nil {
			return fmt.Errorf("freeze nodes: %w", err)
		}
		views = append(views, page.Nodes...)
		if page.NextCursor == "" {
			break
		}
		opts.Cursor = page.NextCursor
	}
	sort.Slice(views, func(i, j int) bool { return views[i].ID < views[j].ID })
	for _, v := range views {
		t.frozenNodes = append(t.frozenNodes, v.State)
	}
	return nil
}

// teardown releases everything the target started, in dependency order:
// membership agents, the coordinator (traffic source), then each node's
// HTTP surface and pool. Abandoned work on killed nodes finishes here, so a
// no_leaks assertion evaluated afterwards sees a quiet process.
func (t *fleetTarget) teardown(ctx context.Context) {
	for _, n := range t.nodes {
		n.stopAgent()
	}
	t.coordSrv.Close()
	t.coord.Close()
	for _, n := range t.nodes {
		if !n.killed {
			n.hsrv.Close()
		}
		n.pool.Drain(ctx)
	}
	t.hc.CloseIdleConnections()
}

func (t *fleetTarget) metric(name, label string) (float64, bool) {
	if v, ok := t.coord.Metrics().Value(name, label); ok {
		return v, true
	}
	var sum float64
	found := false
	for _, n := range t.nodes {
		if v, ok := n.pool.Metrics().Value(name, label); ok {
			sum += v
			found = true
		}
	}
	return sum, found
}

func (t *fleetTarget) injected(site faults.Site) int {
	got := t.coordInj.Injected(site)
	for _, n := range t.nodes {
		got += n.inj.Injected(site)
	}
	return got
}

func (t *fleetTarget) nodeStates() []string { return t.frozenNodes }
