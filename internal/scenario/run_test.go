package scenario

import (
	"bytes"
	"strings"
	"testing"

	"pdpasim/internal/leakcheck"
)

// mustRun parses and executes src, failing the test with the rendered text
// report if the scenario does not pass.
func mustRun(t *testing.T, src string) *Report {
	t.Helper()
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	rep := Run(s)
	if !rep.Pass {
		var buf bytes.Buffer
		rep.WriteText(&buf)
		t.Fatalf("scenario failed:\n%s", buf.String())
	}
	return rep
}

// TestRunSubmitWaitAssert: the minimal scenario — one submission, one wait,
// state/outcome/metric assertions against a real simulation.
func TestRunSubmitWaitAssert(t *testing.T) {
	leakcheck.Check(t)
	rep := mustRun(t, `
name: smoke
seed: 7
defaults:
  workload: {mix: w1, load: 0.6, ncpu: 32, window_s: 60, seed: 5}
  options: {policy: equip}
events:
  - submit: {name: a}
  - wait: {run: a, state: done}
assertions:
  - state: {run: a, is: done}
  - outcome: {run: a, policy: Equip, workload: w1-load60, jobs: 4}
  - metric: {name: pdpad_runs_started_total, equals: 1}
  - invariants:
  - no_leaks:
`)
	if len(rep.Submissions) != 1 || rep.Submissions[0].Admission != admFresh {
		t.Fatalf("submissions %+v", rep.Submissions)
	}
}

// TestRunPolicySwitch: set_policy mid-run changes the template for later
// submissions; both runs complete under their own regime.
func TestRunPolicySwitch(t *testing.T) {
	leakcheck.Check(t)
	mustRun(t, `
name: switch
defaults:
  workload: {mix: w1, load: 0.6, ncpu: 32, window_s: 60, seed: 5}
  options: {policy: equip}
events:
  - submit: {name: before}
  - set_policy: {policy: pdpa}
  - submit: {name: after}
  - wait_all:
assertions:
  - outcome: {run: before, policy: Equip}
  - outcome: {run: after, policy: PDPA}
  - metric: {name: pdpad_cache_hits_total, equals: 0}
`)
}

// TestRunFaultAndCancel: an injected hang is reclaimed by cancellation; the
// pool serves the next run.
func TestRunFaultAndCancel(t *testing.T) {
	leakcheck.Check(t)
	mustRun(t, `
name: cancel-hang
defaults:
  workload: {mix: w1, load: 0.6, ncpu: 32, window_s: 60, seed: 5}
  options: {policy: equip}
faults:
  - "worker_start:hang count=1"
events:
  - submit: {name: hung}
  - wait: {run: hung, state: running}
  - cancel: {run: hung}
  - wait: {run: hung, state: canceled}
  - submit: {name: ok, workload: {seed: 6}}
  - wait: {run: ok, state: done}
assertions:
  - state: {run: hung, is: canceled}
  - state: {run: ok, is: done}
  - injected: {site: worker_start, count: 1}
  - no_leaks:
`)
}

// TestRunDeterministicReport: the same scenario at the same seed renders
// byte-identical JSON reports across executions.
func TestRunDeterministicReport(t *testing.T) {
	leakcheck.Check(t)
	src := `
name: det
seed: 42
defaults:
  workload: {mix: w1, load: 0.5, ncpu: 32, window_s: 60}
  options: {policy: equip}
events:
  - arrivals: {prefix: d, count: 3}
  - wait_all:
assertions:
  - states: {prefix: d, all: done}
`
	render := func() string {
		s, err := Parse([]byte(src))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Run(s).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := render()
	if !strings.Contains(first, `"pass": true`) {
		t.Fatalf("report did not pass:\n%s", first)
	}
	if second := render(); second != first {
		t.Fatalf("reports diverge:\n--- first\n%s\n--- second\n%s", first, second)
	}
}

// TestRunSeedOverrideReshuffles: arrivals derive workload seeds from the
// master seed, so a different -seed produces different generated workloads
// (different result cache keys) while pinned submissions stay put.
func TestRunSeedOverrideReshuffles(t *testing.T) {
	leakcheck.Check(t)
	src := `
name: reseed
defaults:
  workload: {mix: w1, load: 0.5, ncpu: 32, window_s: 60}
  options: {policy: equip}
events:
  - arrivals: {prefix: r, count: 2}
  - wait_all:
assertions:
  - states: {prefix: r, all: done}
`
	ids := func(seed int64) []string {
		s, err := Parse([]byte(src))
		if err != nil {
			t.Fatal(err)
		}
		s.Seed = seed
		rep := Run(s)
		if !rep.Pass {
			t.Fatalf("seed %d failed", seed)
		}
		var out []string
		for _, sub := range rep.Submissions {
			out = append(out, sub.ID)
		}
		return out
	}
	a, b := ids(1), ids(2)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("submissions %v / %v", a, b)
	}
}
