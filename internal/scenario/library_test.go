package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// TestBundledScenarioLibrary runs every scenario under scenarios/ twice: each
// must pass, and the two JSON reports must be byte-identical — the
// determinism contract CI's scenario-smoke job re-checks from the CLI.
func TestBundledScenarioLibrary(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 8 {
		t.Fatalf("found %d bundled scenarios, want at least 8", len(files))
	}
	sort.Strings(files)
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			render := func() []byte {
				s, err := Parse(src)
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				rep := Run(s)
				if !rep.Pass {
					var buf bytes.Buffer
					rep.WriteText(&buf)
					t.Fatalf("scenario failed:\n%s", buf.String())
				}
				var buf bytes.Buffer
				if err := rep.WriteJSON(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			first := render()
			if second := render(); !bytes.Equal(first, second) {
				t.Fatalf("reports diverge across replays:\n--- first\n%s\n--- second\n%s", first, second)
			}
		})
	}
}
