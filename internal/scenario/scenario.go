// Package scenario is the stress/chaos DSL: a YAML file declares a worker
// pool, a default workload/options template, seeded fault-injection rules at
// the internal/faults sites, a timeline of events (single and bursty
// arrivals, diurnal load phases, a mid-run policy switch, cancellation), and
// assertions on the outcome (exact terminal run states, admission verdicts,
// metric bounds read from the pool's obs registry, byte-identical-result
// checks, invariant-checker verdicts, goroutine-leak checks). The runner
// executes the scenario deterministically against an in-process
// runqueue.Pool — same seed, same report, byte for byte — and renders a
// pass/fail report as text or JSON.
//
// The package turns the PR-5 chaos/invariant machinery from closed Go test
// code into an open-ended scenario library: everything a hand-written chaos
// test can script against the pool, a YAML file can now declare.
package scenario

import (
	"fmt"
	"time"

	"pdpasim/internal/faults"
	"pdpasim/internal/runqueue"
)

// Scenario is one parsed, validated scenario file.
type Scenario struct {
	Name        string
	Description string
	// Seed is the master seed: it drives the fault injector and derives the
	// workload seeds of generated arrivals. Explicit workload.seed fields in
	// the file are never touched, so assertions tied to a pinned workload
	// survive a seed override.
	Seed int64
	Pool PoolParams
	// Fleet, when set, runs the scenario against an in-process coordinator
	// plus node fleet (each node an independent pool sized by Pool) instead
	// of a bare pool; events and assertions then flow through the v1 HTTP
	// surface exactly as a remote client's would.
	Fleet *FleetParams
	// Defaults is the spec template events submit; per-event overrides merge
	// onto it field by field.
	Defaults runqueue.Spec
	// Faults are the injection rules, in the shared faults text syntax.
	Faults     []faults.Rule
	Events     []Event
	Assertions []Assertion
}

// PoolParams sizes the in-process pool a scenario runs against. The zero
// value means a deterministic single-worker pool (base=max=1) with a 1 ms
// warm-up — the configuration under which occurrence-indexed fault rules
// fire in submission order.
type PoolParams struct {
	BaseWorkers  int
	MaxWorkers   int
	Warmup       time.Duration
	QueueLimit   int
	CacheSize    int
	ShedDepth    int
	RunTimeout   time.Duration
	MaxRetries   int
	RetryBackoff time.Duration
}

func (p PoolParams) config() runqueue.Config {
	base := p.BaseWorkers
	if base <= 0 {
		base = 1
	}
	max := p.MaxWorkers
	if max <= 0 {
		max = base
	}
	warmup := p.Warmup
	if warmup <= 0 {
		warmup = time.Millisecond
	}
	backoff := p.RetryBackoff
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	return runqueue.Config{
		BaseWorkers:  base,
		MaxWorkers:   max,
		Warmup:       warmup,
		QueueLimit:   p.QueueLimit,
		CacheSize:    p.CacheSize,
		ShedDepth:    p.ShedDepth,
		RunTimeout:   p.RunTimeout,
		MaxRetries:   p.MaxRetries,
		RetryBackoff: backoff,
		TraceLimit:   -1, // runs carry their own Observer; no retained traces
	}
}

// FleetParams sizes the coordinator + node fleet a fleet scenario runs
// against. Node indexes used by events, node_faults, and the node_states
// assertion follow registration order, which the runner makes deterministic
// by starting agents one at a time.
type FleetParams struct {
	// Nodes is how many node daemons join the coordinator.
	Nodes int
	// Placement is round_robin, least_loaded, or lpt ("" = round_robin).
	Placement string
	// Heartbeat, UnhealthyAfter, and DeadAfter time the coordinator's
	// heartbeat-timeout state machine; zeros take the fleet defaults.
	Heartbeat      time.Duration
	UnhealthyAfter time.Duration
	DeadAfter      time.Duration
	// Durable journals the coordinator's routing table to an on-disk store,
	// which is what makes kill_coordinator / restart_coordinator events
	// meaningful: the restarted coordinator rehydrates and reconciles.
	Durable bool
	// DrainIdleAfter, MinNodes, and JoinBacklog configure the elasticity
	// hooks (drain-on-idle, join-on-backlog); zeros disable them.
	DrainIdleAfter time.Duration
	MinNodes       int
	JoinBacklog    int
	// NodeFaults arms extra injection rules on a single node. The
	// scenario's global fault rules are armed on every node independently
	// (each node owns a seeded injector), so a global occurrence-indexed
	// rule fires per node, not once fleet-wide; injected assertions count
	// the sum across the coordinator and all nodes.
	NodeFaults []NodeFault
}

// NodeFault is one injection rule pinned to one node.
type NodeFault struct {
	Node int
	Rule faults.Rule
}

// Event is one timeline step. Exactly one field is set.
type Event struct {
	Submit    *SubmitEvent
	Arrivals  *ArrivalsEvent
	SetPolicy *SetPolicyEvent
	Wait      *WaitEvent
	WaitAll   bool
	Cancel    *CancelEvent
	// KillNode stops a node abruptly (agent and HTTP server die; its runs
	// are requeued once the coordinator declares it dead). CordonNode stops
	// new placements only. DrainNode decommissions: the agent stops and the
	// coordinator requeues the node's runs immediately.
	KillNode   *NodeEvent
	CordonNode *NodeEvent
	DrainNode  *NodeEvent
	// SubmitSweep submits a named sweep grid (fleet scenarios only).
	// WaitSweep blocks on its progress or terminal state.
	SubmitSweep *SubmitSweepEvent
	WaitSweep   *WaitSweepEvent
	// WaitNode blocks until a node reaches a state — how elasticity
	// scenarios observe a scale-drain land.
	WaitNode *WaitNodeEvent
	// KillCoordinator tears the coordinator down abruptly (kill -9
	// semantics: HTTP surface, monitor, and store handle all die; the
	// journal survives on disk). RestartCoordinator reopens the store and
	// brings a fresh coordinator up at the same address, which rehydrates
	// and reconciles with the returning nodes. Durable fleets only.
	KillCoordinator    bool
	RestartCoordinator bool
}

// NodeEvent targets one fleet node by registration index.
type NodeEvent struct {
	Node int
}

// SubmitSweepEvent submits one named sweep grid: policies × mixes × loads ×
// seeds, exactly the POST /v1/sweeps surface.
type SubmitSweepEvent struct {
	Name     string
	Policies []string
	Mixes    []string
	Loads    []float64
	Seeds    []int64
	NCPU     int
	WindowS  float64
}

// WaitSweepEvent blocks until the named sweep reaches a terminal state
// ("done", "failed", "canceled") or, with Done set, until at least that many
// members are terminal — the hook that lets a scenario kill the coordinator
// at a known point mid-sweep.
type WaitSweepEvent struct {
	Sweep string
	State string
	Done  int
}

// WaitNodeEvent blocks until the node (by registration index) reports a
// state ("healthy", "cordoned", "unhealthy", "drained").
type WaitNodeEvent struct {
	Node  int
	State string
}

// SubmitEvent submits one named run built from the defaults template plus
// overrides.
type SubmitEvent struct {
	// Name labels the submission for waits, cancels, and assertions.
	Name string
	// Workload and Options override individual template fields; nil keeps
	// the template.
	Workload *runqueue.WorkloadSpec
	Options  *runqueue.RunOptions
}

// ArrivalsEvent submits a generated phase of runs named "<prefix>0",
// "<prefix>1", ... Their workload seeds derive from the master seed and the
// submission index, so the phase reshuffles coherently under -seed.
type ArrivalsEvent struct {
	Prefix string
	Count  int
	// Pattern shapes per-submission load: "burst" and "uniform" submit at
	// the template load; "diurnal" sweeps load sinusoidally between LoadMin
	// and LoadMax over Period submissions (day-and-night arrival pressure).
	Pattern string
	LoadMin float64
	LoadMax float64
	Period  int
}

// SetPolicyEvent switches the defaults template's policy mid-run: every
// subsequent submission schedules under the new regime.
type SetPolicyEvent struct {
	Policy string
}

// WaitEvent blocks until the named run reaches a state ("done", "failed",
// "canceled", "running", or "terminal" for any final state).
type WaitEvent struct {
	Run   string
	State string
}

// CancelEvent cancels the named run.
type CancelEvent struct {
	Run string
}

// Assertion is one outcome check. Exactly one field is set.
type Assertion struct {
	State         *StateAssertion
	States        *StatesAssertion
	Admission     *AdmissionAssertion
	ErrorContains *ErrorContainsAssertion
	Metric        *MetricAssertion
	Outcome       *OutcomeAssertion
	SameResult    *SameResultAssertion
	Injected      *InjectedAssertion
	NodeStates    *NodeStatesAssertion
	SweepState    *SweepStateAssertion
	SweepOracle   *SweepOracleAssertion
	// ReconciledRuns / AdoptedResults bound the coordinator's recovery
	// counters (pdpad_fleet_reconciled_runs_total /
	// pdpad_fleet_adopted_results_total) — sugar over a metric assertion
	// that names the crash-recovery contract directly.
	ReconciledRuns *CounterBoundAssertion
	AdoptedResults *CounterBoundAssertion
	Invariants     bool
	NoLeaks        bool
}

// SweepStateAssertion pins a sweep's terminal state.
type SweepStateAssertion struct {
	Sweep string
	Is    string
}

// SweepOracleAssertion re-runs the named sweep's grid on a fresh standalone
// single-worker daemon and requires the fleet's reassembled cells JSON to be
// byte-identical to the oracle's — the determinism contract a coordinator
// crash and recovery must not dent.
type SweepOracleAssertion struct {
	Sweep string
}

// CounterBoundAssertion bounds one recovery counter. Min/Max are inclusive;
// a nil bound is open.
type CounterBoundAssertion struct {
	Min *float64
	Max *float64
}

// NodeStatesAssertion pins every fleet node's final state (healthy,
// cordoned, unhealthy, or drained), in node-ID order. Nodes that died and
// re-registered appear once per incarnation.
type NodeStatesAssertion struct {
	Are []string
}

// StateAssertion pins one run's exact terminal state.
type StateAssertion struct {
	Run string
	Is  string
}

// StatesAssertion pins the terminal states of a generated phase, in
// submission order ("are"), or requires one state of every member ("all").
type StatesAssertion struct {
	Prefix string
	Are    []string
	All    string
}

// AdmissionAssertion pins how a submission was admitted: "fresh",
// "cache_hit", "dedup", "shed", or "queue_full".
type AdmissionAssertion struct {
	Run string
	Is  string
}

// ErrorContainsAssertion requires a run's error message to contain a
// substring.
type ErrorContainsAssertion struct {
	Run    string
	Substr string
}

// MetricAssertion bounds one series of the pool's metric registry (the same
// numbers /metrics exposes). Min/Max are inclusive; a nil bound is open.
type MetricAssertion struct {
	Name  string
	Label string
	Min   *float64
	Max   *float64
}

// OutcomeAssertion checks fields of a completed run's result.
type OutcomeAssertion struct {
	Run          string
	Policy       string
	Workload     string
	Jobs         *int
	MakespanSMin *float64
	MakespanSMax *float64
}

// SameResultAssertion requires the named runs' result JSON to be
// byte-identical — the check that proves fault handling has no blast radius
// beyond its target.
type SameResultAssertion struct {
	Runs []string
}

// InjectedAssertion pins how many occurrences of a site fired a rule.
type InjectedAssertion struct {
	Site  faults.Site
	Count int
}

// Validate applies cross-field checks the per-field decoder cannot see.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return &ParseError{Msg: "scenario needs a name"}
	}
	if len(s.Events) == 0 {
		return &ParseError{Msg: fmt.Sprintf("scenario %q declares no events", s.Name)}
	}
	named := map[string]bool{}
	refs := func(name, where string) error {
		if !named[name] {
			return &ParseError{Msg: fmt.Sprintf("%s references run %q before any event names it", where, name)}
		}
		return nil
	}
	nodeRef := func(n int, where string) error {
		if s.Fleet == nil {
			return &ParseError{Msg: fmt.Sprintf("%s needs a fleet: stanza", where)}
		}
		if n < 0 || n >= s.Fleet.Nodes {
			return &ParseError{Msg: fmt.Sprintf("%s: node %d out of range (fleet has %d nodes)", where, n, s.Fleet.Nodes)}
		}
		return nil
	}
	if s.Fleet != nil {
		for i, nf := range s.Fleet.NodeFaults {
			if err := nodeRef(nf.Node, fmt.Sprintf("fleet.node_faults[%d]", i)); err != nil {
				return err
			}
		}
	}
	sweeps := map[string]bool{}
	sweepRefs := func(name, where string) error {
		if !sweeps[name] {
			return &ParseError{Msg: fmt.Sprintf("%s references sweep %q before any event names it", where, name)}
		}
		return nil
	}
	durableRef := func(where string) error {
		if s.Fleet == nil {
			return &ParseError{Msg: fmt.Sprintf("%s needs a fleet: stanza", where)}
		}
		if !s.Fleet.Durable {
			return &ParseError{Msg: fmt.Sprintf("%s needs fleet.durable: true (nothing survives a coordinator kill without a store)", where)}
		}
		return nil
	}
	coordDown := false
	for i, e := range s.Events {
		where := fmt.Sprintf("events[%d]", i)
		switch {
		case e.Submit != nil:
			if named[e.Submit.Name] {
				return &ParseError{Msg: fmt.Sprintf("%s: duplicate run name %q", where, e.Submit.Name)}
			}
			named[e.Submit.Name] = true
		case e.Arrivals != nil:
			for j := 0; j < e.Arrivals.Count; j++ {
				n := fmt.Sprintf("%s%d", e.Arrivals.Prefix, j)
				if named[n] {
					return &ParseError{Msg: fmt.Sprintf("%s: generated run name %q collides", where, n)}
				}
				named[n] = true
			}
		case e.Wait != nil:
			if err := refs(e.Wait.Run, where); err != nil {
				return err
			}
		case e.Cancel != nil:
			if err := refs(e.Cancel.Run, where); err != nil {
				return err
			}
		case e.KillNode != nil:
			if err := nodeRef(e.KillNode.Node, where+".kill_node"); err != nil {
				return err
			}
		case e.CordonNode != nil:
			if err := nodeRef(e.CordonNode.Node, where+".cordon_node"); err != nil {
				return err
			}
		case e.DrainNode != nil:
			if err := nodeRef(e.DrainNode.Node, where+".drain_node"); err != nil {
				return err
			}
		case e.SubmitSweep != nil:
			if s.Fleet == nil {
				return &ParseError{Msg: fmt.Sprintf("%s.submit_sweep needs a fleet: stanza", where)}
			}
			if sweeps[e.SubmitSweep.Name] {
				return &ParseError{Msg: fmt.Sprintf("%s: duplicate sweep name %q", where, e.SubmitSweep.Name)}
			}
			sweeps[e.SubmitSweep.Name] = true
		case e.WaitSweep != nil:
			if err := sweepRefs(e.WaitSweep.Sweep, where+".wait_sweep"); err != nil {
				return err
			}
		case e.WaitNode != nil:
			if err := nodeRef(e.WaitNode.Node, where+".wait_node"); err != nil {
				return err
			}
		case e.KillCoordinator:
			if err := durableRef(where + ".kill_coordinator"); err != nil {
				return err
			}
			if coordDown {
				return &ParseError{Msg: fmt.Sprintf("%s.kill_coordinator: the coordinator is already down", where)}
			}
			coordDown = true
		case e.RestartCoordinator:
			if err := durableRef(where + ".restart_coordinator"); err != nil {
				return err
			}
			if !coordDown {
				return &ParseError{Msg: fmt.Sprintf("%s.restart_coordinator without a preceding kill_coordinator", where)}
			}
			coordDown = false
		}
		if coordDown {
			switch {
			case e.KillCoordinator, e.RestartCoordinator:
			default:
				return &ParseError{Msg: fmt.Sprintf("%s: only restart_coordinator may follow kill_coordinator (the coordinator is down)", where)}
			}
		}
	}
	if coordDown {
		return &ParseError{Msg: "scenario ends with the coordinator down: add a restart_coordinator event"}
	}
	for i, a := range s.Assertions {
		where := fmt.Sprintf("assertions[%d]", i)
		var check []string
		switch {
		case a.State != nil:
			check = []string{a.State.Run}
		case a.Admission != nil:
			check = []string{a.Admission.Run}
		case a.ErrorContains != nil:
			check = []string{a.ErrorContains.Run}
		case a.Outcome != nil:
			check = []string{a.Outcome.Run}
		case a.SameResult != nil:
			check = a.SameResult.Runs
		case a.NodeStates != nil:
			if s.Fleet == nil {
				return &ParseError{Msg: fmt.Sprintf("%s.node_states needs a fleet: stanza", where)}
			}
		case a.SweepState != nil:
			if err := sweepRefs(a.SweepState.Sweep, where+".sweep_state"); err != nil {
				return err
			}
		case a.SweepOracle != nil:
			if err := sweepRefs(a.SweepOracle.Sweep, where+".sweep_cells_match_oracle"); err != nil {
				return err
			}
		case a.ReconciledRuns != nil:
			if s.Fleet == nil {
				return &ParseError{Msg: fmt.Sprintf("%s.reconciled_runs needs a fleet: stanza", where)}
			}
		case a.AdoptedResults != nil:
			if s.Fleet == nil {
				return &ParseError{Msg: fmt.Sprintf("%s.adopted_results needs a fleet: stanza", where)}
			}
		}
		for _, n := range check {
			if err := refs(n, where); err != nil {
				return err
			}
		}
	}
	return nil
}
