package system_test

import (
	"bytes"
	"testing"

	"pdpasim/internal/sim"
	"pdpasim/internal/system"
	"pdpasim/internal/workload"
)

func genWorkload(t testing.TB, seed int64) *workload.Workload {
	t.Helper()
	mix, err := workload.MixByName("w1")
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(workload.GenConfig{
		Mix: mix, Load: 1.0, NCPU: 60, Window: 300 * sim.Second, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestThroughputReducesEvents pins the point of throughput mode: fusing
// iterations must process substantially fewer engine events than exact
// per-iteration simulation of the same workload, while still completing
// every job.
func TestThroughputReducesEvents(t *testing.T) {
	w := genWorkload(t, 1)
	count := func(thru int) uint64 {
		s := system.NewSystem()
		res, err := s.Run(system.Config{Workload: w, Policy: system.PDPA, Seed: 1, Throughput: thru})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Jobs) != len(w.Jobs) {
			t.Fatalf("throughput %d: %d job results for %d jobs", thru, len(res.Jobs), len(w.Jobs))
		}
		return s.EventsExecuted()
	}
	exact := count(0)
	fused := count(16)
	t.Logf("exact events=%d fused events=%d", exact, fused)
	if fused*2 >= exact {
		t.Fatalf("throughput mode saved too little: exact %d events, fused %d", exact, fused)
	}
}

// TestThroughputIgnoredByIRIX pins the documented carve-out: the IRIX
// time-sharing model drives rates per quantum, which would collapse every
// fusion, so raw-mode runtimes ignore the stride and throughput mode must
// leave IRIX results byte-identical to exact mode.
func TestThroughputIgnoredByIRIX(t *testing.T) {
	w := genWorkload(t, 2)
	run := func(thru int) []byte {
		res, err := system.Run(system.Config{Workload: w, Policy: system.IRIX, Seed: 2, Throughput: thru})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if exact, fused := run(0), run(16); !bytes.Equal(exact, fused) {
		t.Fatal("IRIX run with Throughput set differs from exact mode")
	}
}
