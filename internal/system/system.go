// Package system wires the whole NANOS execution environment together — the
// discrete-event engine, the machine model, the queuing system, a resource
// manager, and one runtime + SelfAnalyzer per job — and runs a workload to
// completion under a chosen scheduling policy, producing a metrics.RunResult.
//
// This is the simulation counterpart of the paper's testbed: an SGI Origin
// 2000 running the NANOS QS/RM with IRIX, Equipartition, Equal_efficiency,
// or PDPA (Section 5).
//
// Two entry points exist. Run/RunContext build a fresh environment per call.
// A System built with NewSystem keeps every arena — engine heap, trace
// recorder, machine, queuing slabs, per-job runtimes, manager free lists —
// alive across calls, so steady-state runs allocate almost nothing. Both
// produce byte-identical results for the same Config.
package system

import (
	"context"
	"fmt"
	"strconv"

	"pdpasim/internal/app"
	"pdpasim/internal/core"
	"pdpasim/internal/machine"
	"pdpasim/internal/memory"
	"pdpasim/internal/metrics"
	"pdpasim/internal/nthlib"
	"pdpasim/internal/obs"
	"pdpasim/internal/policy"
	"pdpasim/internal/qs"
	"pdpasim/internal/rm"
	"pdpasim/internal/sched"
	"pdpasim/internal/selfanalyzer"
	"pdpasim/internal/sim"
	"pdpasim/internal/stats"
	"pdpasim/internal/trace"
	"pdpasim/internal/workload"
)

// PolicyKind selects the scheduling regime for a run.
type PolicyKind string

// The four regimes of the evaluation, plus two extended baselines from the
// related-work literature.
const (
	PDPA            PolicyKind = "pdpa"
	Equipartition   PolicyKind = "equip"
	EqualEfficiency PolicyKind = "equal_eff"
	IRIX            PolicyKind = "irix"
	// Dynamic is McCann/Vaswani/Zahorjan's eager reallocation policy
	// (related work, Section 2).
	Dynamic PolicyKind = "dynamic"
	// Gang is classic gang scheduling (Ousterhout matrix).
	Gang PolicyKind = "gang"
	// AdaptivePDPA is PDPA with a load-driven target efficiency — the
	// paper's "alternatively, it is dynamically set depending on the load
	// of the system" (Section 4.1).
	AdaptivePDPA PolicyKind = "pdpa_adaptive"
)

// PolicyKinds lists the paper's four regimes in presentation order.
func PolicyKinds() []PolicyKind {
	return []PolicyKind{IRIX, Equipartition, EqualEfficiency, PDPA}
}

// ExtendedPolicyKinds adds the related-work baselines this repository also
// implements.
func ExtendedPolicyKinds() []PolicyKind {
	return []PolicyKind{IRIX, Gang, Equipartition, EqualEfficiency, Dynamic, PDPA}
}

// Config parameterizes one run.
type Config struct {
	// Workload is the job stream to execute (required).
	Workload *workload.Workload
	// Policy selects the scheduling regime (required).
	Policy PolicyKind
	// PDPAParams overrides the PDPA parameters (nil = DefaultParams).
	PDPAParams *core.Params
	// FixedMPL is the queuing system's fixed multiprogramming level for
	// IRIX, Equipartition, and Equal_efficiency (default 4, the paper's
	// setting). PDPA runs with no fixed level: its own admission policy
	// governs.
	FixedMPL int
	// NoiseSigma is the SelfAnalyzer measurement noise (default 0.01).
	// Negative disables noise entirely.
	NoiseSigma float64
	// Seed drives measurement noise.
	Seed int64
	// KeepBursts stores the full burst history for trace rendering (Fig. 5).
	// Aggregate stability statistics are collected regardless.
	KeepBursts bool
	// IRIXConfig overrides the native-scheduler model parameters.
	IRIXConfig *rm.IRIXConfig
	// MaxSimTime aborts runs that fail to drain (default: the last job's
	// submission time plus 50000 s, so multi-month throughput-mode windows
	// get proportionally long deadlines).
	MaxSimTime sim.Time
	// Profiles overrides the application profiles (nil = app.ProfileFor).
	Profiles func(app.Class) *app.Profile
	// NUMANodeSize groups the machine's CPUs into NUMA nodes of this size
	// (the Origin 2000's node boards); 0 or 1 keeps a flat SMP. Space
	// sharing then packs partitions compactly per node.
	NUMANodeSize int
	// Memory enables the CC-NUMA page-placement model (requires
	// NUMANodeSize > 1 and a space-sharing policy): applications slow down
	// while their pages are remote, and the migration daemon heals
	// placement over time — the paper's Section 5.1.1 stability argument.
	Memory *MemoryConfig
	// BinaryOnly runs every application through the binary-only monitoring
	// path (Section 3.1): the outer-loop structure must first be discovered
	// by the Dynamic Periodicity Detector, so measurements — and the
	// policy's knowledge — arrive later than with compiler-inserted
	// instrumentation.
	BinaryOnly bool
	// QueueOrder selects the queuing discipline: "" or "fifo" (the paper's
	// NANOS QS), or "sjf" (shortest job first by estimated work).
	QueueOrder string
	// Throughput > 1 enables coarse throughput mode: each application fuses
	// up to Throughput undisturbed iterations into one simulation event, so
	// million-job sweeps process far fewer events. Scheduling decisions are
	// unchanged — any reallocation or penalty collapses the fusion at the
	// exact iteration it lands in — but performance measurements are sampled
	// once per fused span instead of once per iteration, so results are
	// deterministic per seed yet not byte-equal to exact mode. IRIX runs
	// ignore the setting (its per-quantum rate changes need every
	// iteration). 0 or 1 keeps exact per-iteration simulation.
	Throughput int
	// Trace, when non-nil, receives the run's decision-trace events: run and
	// job lifecycle, performance reports, policy state transitions,
	// admission decisions, reallocations, and preemptions. Events are
	// recorded from inside the event loop, so the trace is deterministic for
	// a fixed seed. Nil-checked on every hot path: a run without a trace
	// pays nothing.
	Trace *obs.Trace
}

// MemoryConfig parameterizes the page-placement model.
type MemoryConfig struct {
	// RemotePenalty is the slowdown of a fully-remote working set
	// (default 1.3, the Origin 2000's modest NUMA ratio).
	RemotePenalty float64
	// MigrationRate is the fraction of misplaced pages the daemon moves
	// per second (default 0.2 — hot pages migrate within seconds).
	MigrationRate float64
	// Tick is how often locality is re-evaluated (default 1 s).
	Tick sim.Time
}

func (m *MemoryConfig) applyDefaults() {
	if m.RemotePenalty < 1 {
		m.RemotePenalty = 1.3
	}
	if m.MigrationRate <= 0 || m.MigrationRate > 1 {
		m.MigrationRate = 0.2
	}
	if m.Tick <= 0 {
		m.Tick = sim.Second
	}
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Workload == nil || len(out.Workload.Jobs) == 0 {
		return out, fmt.Errorf("system: empty workload")
	}
	switch out.Policy {
	case PDPA, Equipartition, EqualEfficiency, IRIX, Dynamic, Gang, AdaptivePDPA:
	default:
		return out, fmt.Errorf("system: unknown policy %q", out.Policy)
	}
	if out.FixedMPL == 0 {
		out.FixedMPL = 4
	}
	if out.NoiseSigma == 0 {
		out.NoiseSigma = 0.01
	}
	if out.NoiseSigma < 0 {
		out.NoiseSigma = 0
	}
	if out.MaxSimTime <= 0 {
		// The watchdog budget is 50000 s of drain time past the last
		// submission, however long the submission window itself is.
		last := sim.Time(0)
		for _, j := range out.Workload.Jobs {
			if j.Submit > last {
				last = j.Submit
			}
		}
		out.MaxSimTime = last + 50000*sim.Second
	}
	if out.Profiles == nil {
		out.Profiles = app.ProfileFor
	}
	if out.Throughput < 0 {
		out.Throughput = 0
	}
	return out, nil
}

// Run executes the workload under the configured policy and returns the
// measured results. The same workload (same trace) run under different
// policies sees identical submissions, the paper's repeatability setup.
func Run(cfg Config) (*metrics.RunResult, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: the simulation aborts promptly (the
// engine checks ctx between events) when ctx is cancelled or times out,
// returning ctx's error. A background context makes it identical to Run —
// including byte-identical results, since the check never perturbs the
// event order.
func RunContext(ctx context.Context, cfg Config) (*metrics.RunResult, error) {
	return NewSystem().RunContext(ctx, cfg)
}

// runState is the per-run context every jobTrack points back to.
type runState struct {
	sys       *System
	eng       *sim.Engine
	mgr       rm.Manager
	queue     *qs.QueuingSystem
	memDone   func(id int)
	tr        *obs.Trace
	completed int
}

// jobSlot bundles the per-job simulation state that can be recycled the
// moment a job completes: its runtime, SelfAnalyzer, and noise stream. The
// free list therefore holds one slot per concurrently-running job (the peak
// multiprogramming level), not one per job id — the difference between a few
// kilobytes and gigabytes on a million-job workload.
type jobSlot struct {
	rt  nthlib.Runtime
	an  selfanalyzer.Analyzer
	rng stats.RNG
}

// jobTrack is the driver's bookkeeping for one job. Tracks live in one slab
// indexed by job id, and each implements nthlib.Listener so starting a job
// allocates no hook closures.
type jobTrack struct {
	rs    *runState
	job   workload.Job
	rt    *nthlib.Runtime
	slot  *jobSlot
	start sim.Time
	end   sim.Time
	done  bool
}

// OnPerformance implements nthlib.Listener.
func (t *jobTrack) OnPerformance(m selfanalyzer.Measurement) {
	t.rs.mgr.ReportPerformance(sched.JobID(t.job.ID), m)
}

// OnDone implements nthlib.Listener.
func (t *jobTrack) OnDone() {
	rs := t.rs
	t.end = rs.eng.Now()
	t.done = true
	rs.completed++
	if rs.tr != nil {
		rs.tr.Record(obs.Event{At: t.end, Kind: obs.KindJobDone, Job: int32(t.job.ID)})
	}
	rs.memDone(t.job.ID)
	rs.mgr.JobFinished(sched.JobID(t.job.ID))
	// The manager no longer references the runtime and nthlib's iteration
	// event has fired for the last time, so the slot can serve the next
	// admission immediately — which JobCompleted may trigger.
	rs.sys.releaseSlot(t)
	rs.queue.JobCompleted()
}

func noopJob(id int) {}

// System is a reusable simulation environment. Each call to Run or
// RunContext resets and recycles the previous run's arenas — the engine's
// event heap, the trace recorder, the machine, the queuing system's slabs,
// per-job runtimes/analyzers/noise streams, and each manager's free lists —
// so steady-state runs allocate almost nothing. Results are byte-identical
// to the package-level Run: every recycled component reinitializes to
// exactly the state a fresh construction would produce, and the engine's
// event ordering depends only on the call sequence, which is preserved.
//
// A System is NOT safe for concurrent use; give each goroutine its own
// (the sweep runner keeps one per worker). The zero value is ready to use.
type System struct {
	eng  *sim.Engine
	rec  *trace.Recorder
	mach *machine.Machine

	parent stats.RNG // root seed stream, reseeded per run
	noise  stats.RNG // "selfanalyzer-noise" substream, reseeded per run

	// Cached policies and managers, one per PolicyKind actually used. The
	// short-lived ones (AdaptivePDPA's wrapper, Gang) are rebuilt per run.
	pdpa     *core.PDPA
	equip    *policy.Equipartition
	equalEff *policy.EqualEfficiency
	dynamic  *policy.Dynamic
	space    map[PolicyKind]*rm.SpaceManager
	irix     *rm.IRIXManager

	queue    qs.QueuingSystem
	tryStart func() // queue.TryStart method value, built once

	tracks   []jobTrack // slab indexed by job id, cleared per run
	slotFree []*jobSlot // recycled runtime/analyzer/RNG bundles
	rs       runState

	nameBuf []byte // scratch for per-job stream names
}

// NewSystem returns an empty reusable environment. Arenas are grown lazily
// by the first run and recycled by every run after it.
func NewSystem() *System {
	return &System{}
}

// EventsExecuted returns the number of engine events the most recent run on
// this System executed — the diagnostic that makes throughput mode's event
// reduction observable to benchmarks and tests.
func (s *System) EventsExecuted() uint64 {
	if s.eng == nil {
		return 0
	}
	return s.eng.Executed
}

// releaseSlot recycles a completed job's runtime bundle.
func (s *System) releaseSlot(t *jobTrack) {
	if t.slot == nil {
		return
	}
	t.rt = nil
	s.slotFree = append(s.slotFree, t.slot)
	t.slot = nil
}

// takeSlot pops a recycled bundle or allocates a fresh one.
func (s *System) takeSlot() *jobSlot {
	if n := len(s.slotFree); n > 0 {
		slot := s.slotFree[n-1]
		s.slotFree = s.slotFree[:n-1]
		return slot
	}
	return new(jobSlot)
}

// spaceManager returns the cached space-sharing manager for kind (resetting
// it), or builds and caches one driving pol.
func (s *System) spaceManager(kind PolicyKind, pol sched.Policy) *rm.SpaceManager {
	if m := s.space[kind]; m != nil {
		m.Reset(s.rec)
		return m
	}
	if s.space == nil {
		s.space = make(map[PolicyKind]*rm.SpaceManager, 4)
	}
	m := rm.NewSpaceManager(s.eng, s.mach, pol, s.rec)
	s.space[kind] = m
	return m
}

// manager builds or recycles the resource manager for the run's policy.
// Must be called after the engine, machine, and recorder are ready.
func (s *System) manager(c *Config) (rm.Manager, error) {
	switch c.Policy {
	case PDPA, AdaptivePDPA:
		params := core.DefaultParams()
		if c.PDPAParams != nil {
			params = *c.PDPAParams
		}
		if c.Policy == AdaptivePDPA {
			// The adaptive wrapper is cheap and rarely benched; rebuild it.
			pol, err := core.NewAdaptive(params, 0.5, 0.85, 10)
			if err != nil {
				return nil, err
			}
			return rm.NewSpaceManager(s.eng, s.mach, pol, s.rec), nil
		}
		if s.pdpa == nil {
			pol, err := core.New(params)
			if err != nil {
				return nil, err
			}
			s.pdpa = pol
		} else if err := s.pdpa.Reset(params); err != nil {
			return nil, err
		}
		return s.spaceManager(PDPA, s.pdpa), nil
	case Equipartition:
		if s.equip == nil {
			s.equip = policy.NewEquipartition()
		} else {
			s.equip.Reset()
		}
		return s.spaceManager(Equipartition, s.equip), nil
	case EqualEfficiency:
		if s.equalEff == nil {
			s.equalEff = policy.NewEqualEfficiency()
		} else {
			s.equalEff.Reset()
		}
		return s.spaceManager(EqualEfficiency, s.equalEff), nil
	case Dynamic:
		if s.dynamic == nil {
			s.dynamic = policy.NewDynamic()
		} else {
			s.dynamic.Reset()
		}
		return s.spaceManager(Dynamic, s.dynamic), nil
	case Gang:
		return rm.NewGangManager(s.eng, s.mach, s.rec, rm.GangConfig{}), nil
	case IRIX:
		irixCfg := rm.IRIXConfig{}
		if c.IRIXConfig != nil {
			irixCfg = *c.IRIXConfig
		}
		if s.irix == nil {
			s.irix = rm.NewIRIXManager(s.eng, s.mach, s.rec, irixCfg)
		} else {
			s.irix.Reset(s.rec, irixCfg)
		}
		return s.irix, nil
	}
	return nil, fmt.Errorf("system: unknown policy %q", c.Policy)
}

// Run executes one workload, recycling this System's arenas. See RunContext.
func (s *System) Run(cfg Config) (*metrics.RunResult, error) {
	return s.RunContext(context.Background(), cfg)
}

// RunContext executes one workload with cancellation, recycling this
// System's arenas. The returned result owns all its data: it stays valid
// after further runs (with KeepBursts the recorder is handed off and a
// fresh one is built for the next run).
func (s *System) RunContext(ctx context.Context, cfg Config) (*metrics.RunResult, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	w := c.Workload

	if s.eng == nil {
		s.eng = sim.NewEngine()
	} else {
		s.eng.Reset()
	}
	eng := s.eng
	if s.rec == nil {
		s.rec = trace.NewRecorder(w.NCPU)
	} else {
		s.rec.Reset(w.NCPU)
	}
	rec := s.rec
	rec.KeepBursts = c.KeepBursts
	if s.mach == nil {
		s.mach = machine.New(w.NCPU, rec)
	} else {
		s.mach.Reset(w.NCPU, rec)
	}
	mach := s.mach
	if c.NUMANodeSize > 1 {
		mach.SetNodeSize(c.NUMANodeSize)
	}
	// Reseeding reproduces exactly the streams NewRNG + Stream would build.
	stats.InitRNG(&s.parent, c.Seed)
	s.parent.StreamInto(&s.noise, "selfanalyzer-noise")

	mgr, err := s.manager(&c)
	if err != nil {
		return nil, err
	}
	fixedMPL := c.FixedMPL
	if c.Policy == PDPA || c.Policy == AdaptivePDPA {
		fixedMPL = 0 // coordinated admission, no fixed level
	}

	// One track per job, slab-allocated and indexed by the workload's dense
	// job ids.
	maxID := 0
	for _, job := range w.Jobs {
		if job.ID > maxID {
			maxID = job.ID
		}
	}
	if cap(s.tracks) <= maxID {
		s.tracks = make([]jobTrack, maxID+1)
	} else {
		s.tracks = s.tracks[:maxID+1]
		clear(s.tracks)
	}
	tracks := s.tracks
	rs := &s.rs
	*rs = runState{sys: s, eng: eng, mgr: mgr, memDone: noopJob, tr: c.Trace}

	if c.Trace != nil {
		c.Trace.Record(obs.Event{
			At: 0, Kind: obs.KindRunStart, Job: -1,
			Procs: int32(w.NCPU), Want: int32(len(w.Jobs)),
		})
		// Fan the recorder out to every layer that traces decisions. The
		// space manager's policy is reached through the optional SetTrace
		// interface (PDPA and Equal_efficiency implement it; Adaptive
		// promotes PDPA's).
		switch mg := mgr.(type) {
		case *rm.SpaceManager:
			mg.SetTrace(c.Trace)
			if tp, ok := mg.Policy().(interface{ SetTrace(*obs.Trace) }); ok {
				tp.SetTrace(c.Trace)
			}
		case *rm.IRIXManager:
			mg.SetTrace(c.Trace)
		}
	}

	// Optional CC-NUMA memory model (space sharing only; the IRIX model's
	// migration cost already folds locality loss in).
	memStart := noopJob
	if c.Memory != nil && c.NUMANodeSize > 1 && c.Policy != IRIX && c.Policy != Gang {
		mc := *c.Memory
		mc.applyDefaults()
		mem, err := memory.New(mach.Nodes(), mc.RemotePenalty, mc.MigrationRate)
		if err != nil {
			return nil, err
		}
		nodeShare := func(job int) []float64 {
			share := make([]float64, mach.Nodes())
			cpus := mach.CPUsView(job) // read-only view, not retained
			if len(cpus) == 0 {
				return share
			}
			for _, cpu := range cpus {
				share[mach.NodeOf(cpu)] += 1 / float64(len(cpus))
			}
			return share
		}
		lastFactor := map[int]float64{}
		var tick func()
		tick = func() {
			for id := range tracks {
				tr := &tracks[id]
				if tr.done || tr.rt == nil || tr.rt.Allocated() == 0 {
					continue
				}
				f := mem.Advance(eng.Now(), id, nodeShare(id))
				if f < 0.01 {
					f = 0.01
				}
				// Hysteresis: tiny locality drift must not dirty every
				// measurement.
				if last, ok := lastFactor[id]; !ok || f > last+0.02 || f < last-0.02 {
					lastFactor[id] = f
					tr.rt.SetRateFactor(f)
				}
			}
			if rs.completed < len(w.Jobs) {
				eng.After(mc.Tick, "memory/tick", tick)
			}
		}
		eng.After(mc.Tick, "memory/tick", tick)
		memStart = func(id int) { mem.JobStarted(eng.Now(), id, nodeShare(id)) }
		rs.memDone = func(id int) { mem.JobFinished(id) }
	}
	start := func(job workload.Job) {
		id := sched.JobID(job.ID)
		prof := c.Profiles(job.Class)
		slot := s.takeSlot()
		var an *selfanalyzer.Analyzer
		if c.Policy != IRIX {
			// The NANOS runtime instruments applications; the native IRIX
			// regime runs them unmodified.
			sacfg := selfanalyzer.ConfigFor(prof, c.NoiseSigma)
			s.nameBuf = append(s.nameBuf[:0], "job/"...)
			s.nameBuf = strconv.AppendInt(s.nameBuf, int64(job.ID), 10)
			s.noise.StreamIntoBytes(&slot.rng, s.nameBuf)
			if err := selfanalyzer.Init(&slot.an, sacfg, &slot.rng); err != nil {
				panic(err)
			}
			an = &slot.an
		}
		track := &tracks[job.ID]
		*track = jobTrack{rs: rs, job: job, slot: slot, start: eng.Now()}
		rt := &slot.rt
		nthlib.Init(rt, eng, prof, job.Request, an, nthlib.Hooks{Listener: track})
		rt.SetGranularity(job.Granularity())
		rt.SetBinaryOnly(c.BinaryOnly && c.Policy != IRIX)
		if c.Throughput > 1 {
			rt.SetThroughput(c.Throughput)
		}
		track.rt = rt
		mgr.StartJob(id, rt)
		memStart(job.ID)
	}
	queue := &s.queue
	qs.Init(queue, eng, fixedMPL, mgr.CanAdmit, start, rec)
	if c.Trace != nil {
		queue.SetTrace(c.Trace)
	}
	rs.queue = queue
	if sm, ok := mgr.(*rm.SpaceManager); ok {
		sm.SetQueuedFunc(queue.Queued)
	}
	switch c.QueueOrder {
	case "", "fifo":
	case "sjf":
		queue.SetOrder(qs.SJFByWork)
	default:
		return nil, fmt.Errorf("system: unknown queue order %q", c.QueueOrder)
	}
	if s.tryStart == nil {
		s.tryStart = queue.TryStart
	}
	mgr.SetAdmissionChanged(s.tryStart)
	queue.SubmitAll(w)

	if ctx != nil && ctx.Done() != nil {
		// Only contexts that can actually be cancelled pay for the check;
		// context.Background() keeps the engine loop untouched.
		eng.SetInterrupt(ctx.Err)
	}
	eng.Run(c.MaxSimTime)
	if err := eng.InterruptErr(); err != nil {
		return nil, fmt.Errorf("system: %s/%s aborted at %v: %w",
			c.Policy, w.Name, eng.Now(), err)
	}
	if !queue.Drained() {
		return nil, fmt.Errorf("system: %s/%s did not drain within %v (%d queued, %d running)",
			c.Policy, w.Name, c.MaxSimTime, queue.Queued(), queue.Running())
	}
	// The engine clock advances to the deadline once idle; the run really
	// ended at the last completion.
	var end sim.Time
	for i := range tracks {
		if tr := &tracks[i]; tr.done && tr.end > end {
			end = tr.end
		}
	}
	rec.Close(end)
	if c.Trace != nil {
		c.Trace.Record(obs.Event{At: end, Kind: obs.KindRunEnd, Job: -1})
	}

	res := &metrics.RunResult{
		Policy:   mgr.Name(),
		Workload: w.Name,
		Load:     w.TargetLoad,
		MPL:      c.FixedMPL,
		NCPU:     w.NCPU,
		Seed:     c.Seed,
		MaxMPL:   queue.MaxMPL(),
	}
	if c.KeepBursts {
		// The result takes ownership of the recorder; the next run builds a
		// fresh one instead of resetting history the caller still holds.
		res.Recorder = rec
		s.rec = nil
	}
	res.Jobs = make([]metrics.JobResult, 0, len(w.Jobs))
	for _, job := range w.Jobs {
		tr := &tracks[job.ID]
		if !tr.done {
			return nil, fmt.Errorf("system: job %d not completed", job.ID)
		}
		cpuSec := metrics.IntegrateAllocation(rec.AllocationHistory(job.ID), tr.end)
		jr := metrics.JobResult{
			ID:         job.ID,
			Class:      job.Class,
			Request:    job.Request,
			Submit:     job.Submit,
			Start:      tr.start,
			End:        tr.end,
			CPUSeconds: cpuSec,
		}
		if exec := jr.Execution().Seconds(); exec > 0 {
			jr.AvgAlloc = cpuSec / exec
		}
		if ded := c.Profiles(job.Class).DedicatedTime(job.Request); ded > 0 {
			jr.Slowdown = float64(jr.Response()) / float64(ded)
		}
		if jr.End > res.Makespan {
			res.Makespan = jr.End
		}
		res.Jobs = append(res.Jobs, jr)
	}
	res.SortJobs()
	// Copied, not aliased: the recorder's timeline buffer is recycled by the
	// next run on this System.
	res.MPLTimeline = append([]trace.TimePoint(nil), rec.MPLTimeline()...)
	res.AvgMPL = metrics.TimeWeightedMPL(res.MPLTimeline, res.Makespan)
	res.Stability = rec.Stats()
	return res, nil
}
