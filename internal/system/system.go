// Package system wires the whole NANOS execution environment together — the
// discrete-event engine, the machine model, the queuing system, a resource
// manager, and one runtime + SelfAnalyzer per job — and runs a workload to
// completion under a chosen scheduling policy, producing a metrics.RunResult.
//
// This is the simulation counterpart of the paper's testbed: an SGI Origin
// 2000 running the NANOS QS/RM with IRIX, Equipartition, Equal_efficiency,
// or PDPA (Section 5).
package system

import (
	"context"
	"fmt"
	"strconv"

	"pdpasim/internal/app"
	"pdpasim/internal/core"
	"pdpasim/internal/machine"
	"pdpasim/internal/memory"
	"pdpasim/internal/metrics"
	"pdpasim/internal/nthlib"
	"pdpasim/internal/obs"
	"pdpasim/internal/policy"
	"pdpasim/internal/qs"
	"pdpasim/internal/rm"
	"pdpasim/internal/sched"
	"pdpasim/internal/selfanalyzer"
	"pdpasim/internal/sim"
	"pdpasim/internal/stats"
	"pdpasim/internal/trace"
	"pdpasim/internal/workload"
)

// PolicyKind selects the scheduling regime for a run.
type PolicyKind string

// The four regimes of the evaluation, plus two extended baselines from the
// related-work literature.
const (
	PDPA            PolicyKind = "pdpa"
	Equipartition   PolicyKind = "equip"
	EqualEfficiency PolicyKind = "equal_eff"
	IRIX            PolicyKind = "irix"
	// Dynamic is McCann/Vaswani/Zahorjan's eager reallocation policy
	// (related work, Section 2).
	Dynamic PolicyKind = "dynamic"
	// Gang is classic gang scheduling (Ousterhout matrix).
	Gang PolicyKind = "gang"
	// AdaptivePDPA is PDPA with a load-driven target efficiency — the
	// paper's "alternatively, it is dynamically set depending on the load
	// of the system" (Section 4.1).
	AdaptivePDPA PolicyKind = "pdpa_adaptive"
)

// PolicyKinds lists the paper's four regimes in presentation order.
func PolicyKinds() []PolicyKind {
	return []PolicyKind{IRIX, Equipartition, EqualEfficiency, PDPA}
}

// ExtendedPolicyKinds adds the related-work baselines this repository also
// implements.
func ExtendedPolicyKinds() []PolicyKind {
	return []PolicyKind{IRIX, Gang, Equipartition, EqualEfficiency, Dynamic, PDPA}
}

// Config parameterizes one run.
type Config struct {
	// Workload is the job stream to execute (required).
	Workload *workload.Workload
	// Policy selects the scheduling regime (required).
	Policy PolicyKind
	// PDPAParams overrides the PDPA parameters (nil = DefaultParams).
	PDPAParams *core.Params
	// FixedMPL is the queuing system's fixed multiprogramming level for
	// IRIX, Equipartition, and Equal_efficiency (default 4, the paper's
	// setting). PDPA runs with no fixed level: its own admission policy
	// governs.
	FixedMPL int
	// NoiseSigma is the SelfAnalyzer measurement noise (default 0.01).
	// Negative disables noise entirely.
	NoiseSigma float64
	// Seed drives measurement noise.
	Seed int64
	// KeepBursts stores the full burst history for trace rendering (Fig. 5).
	// Aggregate stability statistics are collected regardless.
	KeepBursts bool
	// IRIXConfig overrides the native-scheduler model parameters.
	IRIXConfig *rm.IRIXConfig
	// MaxSimTime aborts runs that fail to drain (default 50000 s).
	MaxSimTime sim.Time
	// Profiles overrides the application profiles (nil = app.ProfileFor).
	Profiles func(app.Class) *app.Profile
	// NUMANodeSize groups the machine's CPUs into NUMA nodes of this size
	// (the Origin 2000's node boards); 0 or 1 keeps a flat SMP. Space
	// sharing then packs partitions compactly per node.
	NUMANodeSize int
	// Memory enables the CC-NUMA page-placement model (requires
	// NUMANodeSize > 1 and a space-sharing policy): applications slow down
	// while their pages are remote, and the migration daemon heals
	// placement over time — the paper's Section 5.1.1 stability argument.
	Memory *MemoryConfig
	// BinaryOnly runs every application through the binary-only monitoring
	// path (Section 3.1): the outer-loop structure must first be discovered
	// by the Dynamic Periodicity Detector, so measurements — and the
	// policy's knowledge — arrive later than with compiler-inserted
	// instrumentation.
	BinaryOnly bool
	// QueueOrder selects the queuing discipline: "" or "fifo" (the paper's
	// NANOS QS), or "sjf" (shortest job first by estimated work).
	QueueOrder string
	// Trace, when non-nil, receives the run's decision-trace events: run and
	// job lifecycle, performance reports, policy state transitions,
	// admission decisions, reallocations, and preemptions. Events are
	// recorded from inside the event loop, so the trace is deterministic for
	// a fixed seed. Nil-checked on every hot path: a run without a trace
	// pays nothing.
	Trace *obs.Trace
}

// MemoryConfig parameterizes the page-placement model.
type MemoryConfig struct {
	// RemotePenalty is the slowdown of a fully-remote working set
	// (default 1.3, the Origin 2000's modest NUMA ratio).
	RemotePenalty float64
	// MigrationRate is the fraction of misplaced pages the daemon moves
	// per second (default 0.2 — hot pages migrate within seconds).
	MigrationRate float64
	// Tick is how often locality is re-evaluated (default 1 s).
	Tick sim.Time
}

func (m *MemoryConfig) applyDefaults() {
	if m.RemotePenalty < 1 {
		m.RemotePenalty = 1.3
	}
	if m.MigrationRate <= 0 || m.MigrationRate > 1 {
		m.MigrationRate = 0.2
	}
	if m.Tick <= 0 {
		m.Tick = sim.Second
	}
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Workload == nil || len(out.Workload.Jobs) == 0 {
		return out, fmt.Errorf("system: empty workload")
	}
	switch out.Policy {
	case PDPA, Equipartition, EqualEfficiency, IRIX, Dynamic, Gang, AdaptivePDPA:
	default:
		return out, fmt.Errorf("system: unknown policy %q", out.Policy)
	}
	if out.FixedMPL == 0 {
		out.FixedMPL = 4
	}
	if out.NoiseSigma == 0 {
		out.NoiseSigma = 0.01
	}
	if out.NoiseSigma < 0 {
		out.NoiseSigma = 0
	}
	if out.MaxSimTime <= 0 {
		out.MaxSimTime = 50000 * sim.Second
	}
	if out.Profiles == nil {
		out.Profiles = app.ProfileFor
	}
	return out, nil
}

// Run executes the workload under the configured policy and returns the
// measured results. The same workload (same trace) run under different
// policies sees identical submissions, the paper's repeatability setup.
func Run(cfg Config) (*metrics.RunResult, error) {
	return RunContext(context.Background(), cfg)
}

// runState is the per-run context every jobTrack points back to.
type runState struct {
	eng       *sim.Engine
	mgr       rm.Manager
	queue     *qs.QueuingSystem
	memDone   func(id int)
	tr        *obs.Trace
	completed int
}

// jobTrack is the driver's bookkeeping for one job. Tracks live in one slab
// indexed by job id, and each implements nthlib.Listener so starting a job
// allocates no hook closures.
type jobTrack struct {
	rs    *runState
	job   workload.Job
	rt    *nthlib.Runtime
	start sim.Time
	end   sim.Time
	done  bool
}

// OnPerformance implements nthlib.Listener.
func (t *jobTrack) OnPerformance(m selfanalyzer.Measurement) {
	t.rs.mgr.ReportPerformance(sched.JobID(t.job.ID), m)
}

// OnDone implements nthlib.Listener.
func (t *jobTrack) OnDone() {
	rs := t.rs
	t.end = rs.eng.Now()
	t.done = true
	rs.completed++
	if rs.tr != nil {
		rs.tr.Record(obs.Event{At: t.end, Kind: obs.KindJobDone, Job: int32(t.job.ID)})
	}
	rs.memDone(t.job.ID)
	rs.mgr.JobFinished(sched.JobID(t.job.ID))
	rs.queue.JobCompleted()
}

// RunContext is Run with cancellation: the simulation aborts promptly (the
// engine checks ctx between events) when ctx is cancelled or times out,
// returning ctx's error. A background context makes it identical to Run —
// including byte-identical results, since the check never perturbs the
// event order.
func RunContext(ctx context.Context, cfg Config) (*metrics.RunResult, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	w := c.Workload
	eng := sim.NewEngine()
	rec := trace.NewRecorder(w.NCPU)
	rec.KeepBursts = c.KeepBursts
	mach := machine.New(w.NCPU, rec)
	if c.NUMANodeSize > 1 {
		mach.SetNodeSize(c.NUMANodeSize)
	}
	noise := stats.NewRNG(c.Seed).Stream("selfanalyzer-noise")

	var mgr rm.Manager
	fixedMPL := c.FixedMPL
	switch c.Policy {
	case PDPA, AdaptivePDPA:
		params := core.DefaultParams()
		if c.PDPAParams != nil {
			params = *c.PDPAParams
		}
		var pol sched.Policy
		if c.Policy == AdaptivePDPA {
			pol, err = core.NewAdaptive(params, 0.5, 0.85, 10)
		} else {
			pol, err = core.New(params)
		}
		if err != nil {
			return nil, err
		}
		mgr = rm.NewSpaceManager(eng, mach, pol, rec)
		fixedMPL = 0 // coordinated admission, no fixed level
	case Equipartition:
		mgr = rm.NewSpaceManager(eng, mach, policy.NewEquipartition(), rec)
	case EqualEfficiency:
		mgr = rm.NewSpaceManager(eng, mach, policy.NewEqualEfficiency(), rec)
	case Dynamic:
		mgr = rm.NewSpaceManager(eng, mach, policy.NewDynamic(), rec)
	case Gang:
		mgr = rm.NewGangManager(eng, mach, rec, rm.GangConfig{})
	case IRIX:
		irixCfg := rm.IRIXConfig{}
		if c.IRIXConfig != nil {
			irixCfg = *c.IRIXConfig
		}
		mgr = rm.NewIRIXManager(eng, mach, rec, irixCfg)
	}

	// One track per job, slab-allocated and indexed by the workload's dense
	// job ids.
	maxID := 0
	for _, job := range w.Jobs {
		if job.ID > maxID {
			maxID = job.ID
		}
	}
	tracks := make([]jobTrack, maxID+1)
	runtimes := make([]nthlib.Runtime, maxID+1)
	rs := &runState{eng: eng, mgr: mgr, memDone: func(id int) {}, tr: c.Trace}

	if c.Trace != nil {
		c.Trace.Record(obs.Event{
			At: 0, Kind: obs.KindRunStart, Job: -1,
			Procs: int32(w.NCPU), Want: int32(len(w.Jobs)),
		})
		// Fan the recorder out to every layer that traces decisions. The
		// space manager's policy is reached through the optional SetTrace
		// interface (PDPA and Equal_efficiency implement it; Adaptive
		// promotes PDPA's).
		switch mg := mgr.(type) {
		case *rm.SpaceManager:
			mg.SetTrace(c.Trace)
			if tp, ok := mg.Policy().(interface{ SetTrace(*obs.Trace) }); ok {
				tp.SetTrace(c.Trace)
			}
		case *rm.IRIXManager:
			mg.SetTrace(c.Trace)
		}
	}

	// Optional CC-NUMA memory model (space sharing only; the IRIX model's
	// migration cost already folds locality loss in).
	memStart := func(id int) {}
	if c.Memory != nil && c.NUMANodeSize > 1 && c.Policy != IRIX && c.Policy != Gang {
		mc := *c.Memory
		mc.applyDefaults()
		mem, err := memory.New(mach.Nodes(), mc.RemotePenalty, mc.MigrationRate)
		if err != nil {
			return nil, err
		}
		nodeShare := func(job int) []float64 {
			share := make([]float64, mach.Nodes())
			cpus := mach.CPUsView(job) // read-only view, not retained
			if len(cpus) == 0 {
				return share
			}
			for _, cpu := range cpus {
				share[mach.NodeOf(cpu)] += 1 / float64(len(cpus))
			}
			return share
		}
		lastFactor := map[int]float64{}
		var tick func()
		tick = func() {
			for id := range tracks {
				tr := &tracks[id]
				if tr.done || tr.rt == nil || tr.rt.Allocated() == 0 {
					continue
				}
				f := mem.Advance(eng.Now(), id, nodeShare(id))
				if f < 0.01 {
					f = 0.01
				}
				// Hysteresis: tiny locality drift must not dirty every
				// measurement.
				if last, ok := lastFactor[id]; !ok || f > last+0.02 || f < last-0.02 {
					lastFactor[id] = f
					tr.rt.SetRateFactor(f)
				}
			}
			if rs.completed < len(w.Jobs) {
				eng.After(mc.Tick, "memory/tick", tick)
			}
		}
		eng.After(mc.Tick, "memory/tick", tick)
		memStart = func(id int) { mem.JobStarted(eng.Now(), id, nodeShare(id)) }
		rs.memDone = func(id int) { mem.JobFinished(id) }
	}
	var nameBuf []byte
	start := func(job workload.Job) {
		id := sched.JobID(job.ID)
		prof := c.Profiles(job.Class)
		var an *selfanalyzer.Analyzer
		if c.Policy != IRIX {
			// The NANOS runtime instruments applications; the native IRIX
			// regime runs them unmodified.
			sacfg := selfanalyzer.ConfigFor(prof, c.NoiseSigma)
			nameBuf = append(nameBuf[:0], "job/"...)
			nameBuf = strconv.AppendInt(nameBuf, int64(job.ID), 10)
			an = selfanalyzer.MustNew(sacfg, noise.Stream(string(nameBuf)))
		}
		track := &tracks[job.ID]
		*track = jobTrack{rs: rs, job: job, start: eng.Now()}
		rt := &runtimes[job.ID]
		nthlib.Init(rt, eng, prof, job.Request, an, nthlib.Hooks{Listener: track})
		rt.SetGranularity(job.Granularity())
		rt.SetBinaryOnly(c.BinaryOnly && c.Policy != IRIX)
		track.rt = rt
		mgr.StartJob(id, rt)
		memStart(job.ID)
	}
	queue := qs.New(eng, fixedMPL, mgr.CanAdmit, start, rec)
	if c.Trace != nil {
		queue.SetTrace(c.Trace)
	}
	rs.queue = queue
	if sm, ok := mgr.(*rm.SpaceManager); ok {
		sm.SetQueuedFunc(queue.Queued)
	}
	switch c.QueueOrder {
	case "", "fifo":
	case "sjf":
		queue.SetOrder(qs.SJFByWork)
	default:
		return nil, fmt.Errorf("system: unknown queue order %q", c.QueueOrder)
	}
	mgr.SetAdmissionChanged(queue.TryStart)
	queue.SubmitAll(w)

	if ctx != nil && ctx.Done() != nil {
		// Only contexts that can actually be cancelled pay for the check;
		// context.Background() keeps the engine loop untouched.
		eng.SetInterrupt(ctx.Err)
	}
	eng.Run(c.MaxSimTime)
	if err := eng.InterruptErr(); err != nil {
		return nil, fmt.Errorf("system: %s/%s aborted at %v: %w",
			c.Policy, w.Name, eng.Now(), err)
	}
	if !queue.Drained() {
		return nil, fmt.Errorf("system: %s/%s did not drain within %v (%d queued, %d running)",
			c.Policy, w.Name, c.MaxSimTime, queue.Queued(), queue.Running())
	}
	// The engine clock advances to the deadline once idle; the run really
	// ended at the last completion.
	var end sim.Time
	for i := range tracks {
		if tr := &tracks[i]; tr.done && tr.end > end {
			end = tr.end
		}
	}
	rec.Close(end)
	if c.Trace != nil {
		c.Trace.Record(obs.Event{At: end, Kind: obs.KindRunEnd, Job: -1})
	}

	res := &metrics.RunResult{
		Policy:   mgr.Name(),
		Workload: w.Name,
		Load:     w.TargetLoad,
		MPL:      c.FixedMPL,
		NCPU:     w.NCPU,
		Seed:     c.Seed,
		MaxMPL:   queue.MaxMPL(),
	}
	if c.KeepBursts {
		res.Recorder = rec
	}
	res.Jobs = make([]metrics.JobResult, 0, len(w.Jobs))
	for _, job := range w.Jobs {
		tr := &tracks[job.ID]
		if tr.rt == nil || !tr.done {
			return nil, fmt.Errorf("system: job %d not completed", job.ID)
		}
		cpuSec := metrics.IntegrateAllocation(rec.AllocationHistory(job.ID), tr.end)
		jr := metrics.JobResult{
			ID:         job.ID,
			Class:      job.Class,
			Request:    job.Request,
			Submit:     job.Submit,
			Start:      tr.start,
			End:        tr.end,
			CPUSeconds: cpuSec,
		}
		if exec := jr.Execution().Seconds(); exec > 0 {
			jr.AvgAlloc = cpuSec / exec
		}
		if ded := c.Profiles(job.Class).DedicatedTime(job.Request); ded > 0 {
			jr.Slowdown = float64(jr.Response()) / float64(ded)
		}
		if jr.End > res.Makespan {
			res.Makespan = jr.End
		}
		res.Jobs = append(res.Jobs, jr)
	}
	res.SortJobs()
	res.MPLTimeline = rec.MPLTimeline()
	res.AvgMPL = metrics.TimeWeightedMPL(res.MPLTimeline, res.Makespan)
	res.Stability = rec.Stats()
	return res, nil
}
