package system

import (
	"context"
	"errors"
	"testing"
	"time"

	"pdpasim/internal/app"
	"pdpasim/internal/core"
	"pdpasim/internal/sim"
	"pdpasim/internal/workload"
)

// smallWorkload builds a quick deterministic workload for system tests.
func smallWorkload(t *testing.T, mix workload.Mix, load float64, seed int64) *workload.Workload {
	t.Helper()
	w, err := workload.Generate(workload.GenConfig{
		Mix: mix, Load: load, NCPU: 60, Window: 120 * sim.Second, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	w := smallWorkload(t, workload.W3(), 0.6, 1)
	if _, err := Run(Config{Workload: w, Policy: "bogus"}); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestAllPoliciesCompleteW3(t *testing.T) {
	w := smallWorkload(t, workload.W3(), 0.6, 1)
	for _, pk := range PolicyKinds() {
		res, err := Run(Config{Workload: w, Policy: pk, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", pk, err)
		}
		if len(res.Jobs) != len(w.Jobs) {
			t.Fatalf("%s: %d results for %d jobs", pk, len(res.Jobs), len(w.Jobs))
		}
		for _, j := range res.Jobs {
			if j.End <= j.Start || j.Start < j.Submit {
				t.Fatalf("%s: job %d times inconsistent: %+v", pk, j.ID, j)
			}
			if j.CPUSeconds <= 0 {
				t.Fatalf("%s: job %d consumed no CPU", pk, j.ID)
			}
		}
		if res.Makespan <= 0 || res.MaxMPL < 1 {
			t.Fatalf("%s: makespan=%v maxMPL=%d", pk, res.Makespan, res.MaxMPL)
		}
	}
}

func TestDeterminism(t *testing.T) {
	w := smallWorkload(t, workload.W1(), 0.6, 3)
	a, err := Run(Config{Workload: w, Policy: PDPA, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Workload: w, Policy: PDPA, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("makespan differs: %v vs %v", a.Makespan, b.Makespan)
	}
	for i := range a.Jobs {
		if a.Jobs[i].End != b.Jobs[i].End {
			t.Fatalf("job %d end differs", i)
		}
	}
}

func TestPDPADynamicMPLExceedsFixed(t *testing.T) {
	// w3 (bt + apsi): apsi stabilizes at tiny allocations, so PDPA's
	// coordinated admission must push the multiprogramming level well past
	// the fixed 4 (the paper reports up to 34).
	w := smallWorkload(t, workload.W3(), 1.0, 2)
	pdpa, err := Run(Config{Workload: w, Policy: PDPA, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pdpa.MaxMPL <= 4 {
		t.Fatalf("PDPA maxMPL = %d, want > 4", pdpa.MaxMPL)
	}
	equip, err := Run(Config{Workload: w, Policy: Equipartition, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if equip.MaxMPL > 4 {
		t.Fatalf("Equip maxMPL = %d, fixed level violated", equip.MaxMPL)
	}
}

func TestPDPAImprovesResponseOnW3(t *testing.T) {
	// The headline result (Fig. 9): with non-scalable apsi in the mix, PDPA
	// beats Equipartition on response time by a large factor.
	w := smallWorkload(t, workload.W3(), 1.0, 4)
	pdpa, err := Run(Config{Workload: w, Policy: PDPA, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	equip, err := Run(Config{Workload: w, Policy: Equipartition, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	pr := pdpa.ResponseByClass()[app.Apsi]
	er := equip.ResponseByClass()[app.Apsi]
	if pr >= er {
		t.Fatalf("PDPA apsi response %.1fs not better than Equip %.1fs", pr, er)
	}
}

func TestIRIXWorstStability(t *testing.T) {
	w := smallWorkload(t, workload.W1(), 1.0, 5)
	irix, err := Run(Config{Workload: w, Policy: IRIX, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pdpa, err := Run(Config{Workload: w, Policy: PDPA, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if irix.Stability.Migrations < 100*pdpa.Stability.Migrations/10 {
		t.Fatalf("IRIX migrations %d vs PDPA %d: gap too small",
			irix.Stability.Migrations, pdpa.Stability.Migrations)
	}
	if irix.Stability.AvgBurst >= pdpa.Stability.AvgBurst {
		t.Fatalf("IRIX avg burst %v should be far below PDPA %v",
			irix.Stability.AvgBurst, pdpa.Stability.AvgBurst)
	}
}

func TestNoiseDisabled(t *testing.T) {
	w := smallWorkload(t, workload.W2(), 0.6, 6)
	res, err := Run(Config{Workload: w, Policy: PDPA, Seed: 6, NoiseSigma: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != len(w.Jobs) {
		t.Fatal("jobs missing")
	}
}

func TestCustomPDPAParams(t *testing.T) {
	w := smallWorkload(t, workload.W2(), 0.6, 7)
	params := core.DefaultParams()
	params.TargetEff = 0.5
	res, err := Run(Config{Workload: w, Policy: PDPA, PDPAParams: &params, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Lower target => larger hydro allocations than with 0.7.
	strictRes, err := Run(Config{Workload: w, Policy: PDPA, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	lax := res.AvgAllocByClass()[app.Hydro2D]
	strict := strictRes.AvgAllocByClass()[app.Hydro2D]
	if lax <= strict {
		t.Fatalf("hydro alloc with target 0.5 (%v) not above target 0.7 (%v)", lax, strict)
	}
}

func TestKeepBurstsRendering(t *testing.T) {
	w := smallWorkload(t, workload.W1(), 0.6, 8)
	res, err := Run(Config{Workload: w, Policy: PDPA, Seed: 8, KeepBursts: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorder == nil || len(res.Recorder.Bursts()) == 0 {
		t.Fatal("bursts not kept")
	}
}

func TestMemoryModelBounded(t *testing.T) {
	// With the CC-NUMA page model on (Origin-like parameters), memory
	// effects cost every space-sharing policy only a modest slowdown — the
	// migration daemon does its work as long as the schedule is stable
	// (Section 5.1.1).
	// Use the paper's full 300 s window: on very short windows the search
	// transient dominates job lifetimes and amplifies locality costs.
	w, err := workload.Generate(workload.GenConfig{
		Mix: workload.W1(), Load: 1.0, NCPU: 60, Window: 300 * sim.Second, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	mem := &MemoryConfig{}
	slowdown := func(pk PolicyKind) float64 {
		base, rerr := Run(Config{Workload: w, Policy: pk, Seed: 21, NUMANodeSize: 4})
		if rerr != nil {
			t.Fatal(rerr)
		}
		numa, rerr := Run(Config{Workload: w, Policy: pk, Seed: 21, NUMANodeSize: 4, Memory: mem})
		if rerr != nil {
			t.Fatal(rerr)
		}
		return numa.Makespan.Seconds() / base.Makespan.Seconds()
	}
	pdpa := slowdown(PDPA)
	eqeff := slowdown(EqualEfficiency)
	// With a working page-migration daemon the cost stays small for every
	// space-sharing policy; runaway slowdowns would mean the locality
	// feedback loop broke the search.
	if pdpa > 1.3 {
		t.Fatalf("PDPA slowdown %v too large for a stable schedule", pdpa)
	}
	if eqeff > 1.3 {
		t.Fatalf("Equal_eff slowdown %v too large", eqeff)
	}
}

func TestMemoryModelNeutralWithoutNUMA(t *testing.T) {
	w := smallWorkload(t, workload.W3(), 0.6, 22)
	a, err := Run(Config{Workload: w, Policy: PDPA, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	// Memory config without NUMA topology is ignored.
	b, err := Run(Config{Workload: w, Policy: PDPA, Seed: 22, Memory: &MemoryConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatal("memory model applied without NUMA topology")
	}
}

func TestExtendedPolicyKindsComplete(t *testing.T) {
	w := smallWorkload(t, workload.W2(), 0.6, 23)
	for _, pk := range ExtendedPolicyKinds() {
		if _, err := Run(Config{Workload: w, Policy: pk, Seed: 23}); err != nil {
			t.Fatalf("%s: %v", pk, err)
		}
	}
}

func TestQueueOrderSJF(t *testing.T) {
	w := smallWorkload(t, workload.W1(), 1.0, 24)
	fifo, err := Run(Config{Workload: w, Policy: Equipartition, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	sjf, err := Run(Config{Workload: w, Policy: Equipartition, Seed: 24, QueueOrder: "sjf"})
	if err != nil {
		t.Fatal(err)
	}
	// SJF must not hurt the short swims' response (it helps once the queue
	// congests; ordering behaviour itself is unit-tested in qs).
	if sjf.ResponseByClass()[app.Swim] > fifo.ResponseByClass()[app.Swim]+1 {
		t.Fatalf("SJF swim response %.1fs worse than FIFO %.1fs",
			sjf.ResponseByClass()[app.Swim], fifo.ResponseByClass()[app.Swim])
	}
	if _, err := Run(Config{Workload: w, Policy: Equipartition, Seed: 24, QueueOrder: "bogus"}); err == nil {
		t.Fatal("bogus queue order accepted")
	}
}

func TestBinaryOnlySlowsConvergence(t *testing.T) {
	w := smallWorkload(t, workload.W3(), 0.8, 25)
	instr, err := Run(Config{Workload: w, Policy: PDPA, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	bin, err := Run(Config{Workload: w, Policy: PDPA, Seed: 25, BinaryOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	// Discovery warm-up cannot make things faster overall.
	if bin.Makespan < instr.Makespan-instr.Makespan/10 {
		t.Fatalf("binary-only makespan %v much faster than instrumented %v",
			bin.Makespan, instr.Makespan)
	}
}

func TestSlowdownComputed(t *testing.T) {
	w := smallWorkload(t, workload.W3(), 0.6, 26)
	res, err := Run(Config{Workload: w, Policy: PDPA, Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.Jobs {
		if j.Slowdown < 0.9 {
			t.Fatalf("job %d slowdown %v < ~1 (cannot beat a dedicated machine by much)", j.ID, j.Slowdown)
		}
	}
	if res.SlowdownStats().Mean() < 1 {
		t.Fatalf("mean slowdown %v", res.SlowdownStats().Mean())
	}
}

func TestAdaptivePDPARuns(t *testing.T) {
	w := smallWorkload(t, workload.W2(), 0.6, 27)
	res, err := Run(Config{Workload: w, Policy: AdaptivePDPA, Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "PDPA-adaptive" {
		t.Fatalf("policy name %q", res.Policy)
	}
	if res.MaxMPL < 1 || len(res.Jobs) != len(w.Jobs) {
		t.Fatal("incomplete run")
	}
}

func TestRunContextCancellation(t *testing.T) {
	w := smallWorkload(t, workload.W3(), 1.0, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead: the run must abort before doing any work
	if _, err := RunContext(ctx, Config{Workload: w, Policy: PDPA}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// An expiring deadline aborts the run rather than letting it complete.
	// The deadline must already be past when the engine starts: a small
	// simulation finishes in well under a millisecond of wall time, so any
	// later deadline would race the run to completion.
	dctx, dcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer dcancel()
	time.Sleep(time.Microsecond)
	start := time.Now()
	_, err := RunContext(dctx, Config{Workload: w, Policy: PDPA})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("abort took %v; not prompt", wall)
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	w1 := smallWorkload(t, workload.W3(), 0.8, 3)
	w2 := smallWorkload(t, workload.W3(), 0.8, 3)
	a, err := Run(Config{Workload: w1, Policy: PDPA, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), Config{Workload: w2, Policy: PDPA, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("RunContext diverged from Run: makespan %v vs %v", a.Makespan, b.Makespan)
	}
}
