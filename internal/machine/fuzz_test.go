package machine

import (
	"math/rand"
	"sort"
	"testing"

	"pdpasim/internal/sim"
	"pdpasim/internal/trace"
)

// The randomized equivalence tests drive the optimized Machine (dense
// affinity tables, bitset free sets, RLE trace feeding) against refMachine, a
// deliberately naive reimplementation of the documented semantics (maps,
// full-array scans, per-step burst bookkeeping). After every operation the
// two must agree on ownership, free counts, per-job CPU lists, thread
// affinity, and migration counts; at the end the naive burst log must match
// the recorder's run-length-encoded output exactly.
//
// Space-sharing (Resize/Release) and time-sharing (PlaceQuantum/
// ForgetThreads) run as separate modes: the Machine documents that the two
// ownership styles must not be mixed on one instance.

// refMachine is the naive reference implementation.
type refMachine struct {
	ncpu     int
	nodeSize int
	owner    []int
	cpus     map[int][]int    // job -> CPU list, assignment order
	lastCPU  map[ThreadID]int // thread -> last CPU
	migTotal int
	migQuant map[int]int // job -> migrations in the latest quantum

	// naive per-CPU burst log
	cur      []int // job per CPU, -1 idle
	curStart []sim.Time
	bursts   []trace.Burst
}

func newRefMachine(ncpu, nodeSize int) *refMachine {
	r := &refMachine{
		ncpu:     ncpu,
		nodeSize: nodeSize,
		owner:    make([]int, ncpu),
		cpus:     map[int][]int{},
		lastCPU:  map[ThreadID]int{},
		migQuant: map[int]int{},
		cur:      make([]int, ncpu),
		curStart: make([]sim.Time, ncpu),
	}
	for i := range r.owner {
		r.owner[i] = Free
		r.cur[i] = Free
	}
	return r
}

func (r *refMachine) assign(t sim.Time, cpu, job int) {
	if r.cur[cpu] == job {
		return
	}
	if r.cur[cpu] != Free && t > r.curStart[cpu] {
		r.bursts = append(r.bursts, trace.Burst{CPU: cpu, Job: r.cur[cpu], Start: r.curStart[cpu], End: t})
	}
	r.cur[cpu] = job
	r.curStart[cpu] = t
}

func (r *refMachine) close(t sim.Time) {
	for cpu := range r.cur {
		if r.cur[cpu] != Free {
			r.assign(t, cpu, Free)
		}
	}
}

func (r *refMachine) free() int {
	n := 0
	for _, o := range r.owner {
		if o == Free {
			n++
		}
	}
	return n
}

// pickFree reproduces pickFreeCPUs naively: ascending CPU order on a flat
// machine; on a NUMA machine, nodes the job occupies first, then nodes with
// more free CPUs, then node index, ascending CPUs within a node.
func (r *refMachine) pickFree(job, want int) []int {
	var free []int
	for cpu, o := range r.owner {
		if o == Free {
			free = append(free, cpu)
		}
	}
	if r.nodeSize > 1 {
		nodeOf := func(cpu int) int { return cpu / r.nodeSize }
		occupied := map[int]bool{}
		for _, cpu := range r.cpus[job] {
			occupied[nodeOf(cpu)] = true
		}
		freeOn := map[int]int{}
		for _, cpu := range free {
			freeOn[nodeOf(cpu)]++
		}
		sort.SliceStable(free, func(a, b int) bool {
			na, nb := nodeOf(free[a]), nodeOf(free[b])
			if na == nb {
				return free[a] < free[b]
			}
			if occupied[na] != occupied[nb] {
				return occupied[na]
			}
			if freeOn[na] != freeOn[nb] {
				return freeOn[na] > freeOn[nb]
			}
			return na < nb
		})
	}
	if len(free) > want {
		free = free[:want]
	}
	return free
}

func (r *refMachine) resize(t sim.Time, job, want int) {
	if want < 0 {
		want = 0
	}
	cur := r.cpus[job]
	if want < len(cur) {
		for _, cpu := range cur[want:] {
			r.owner[cpu] = Free
			r.assign(t, cpu, Free)
		}
		r.cpus[job] = cur[:want]
		return
	}
	for _, cpu := range r.pickFree(job, want-len(cur)) {
		tid := ThreadID{Job: job, Thread: len(cur)}
		if last, ok := r.lastCPU[tid]; ok && last != cpu {
			r.migTotal++
		}
		r.lastCPU[tid] = cpu
		r.owner[cpu] = job
		r.assign(t, cpu, job)
		cur = append(cur, cpu)
		r.cpus[job] = cur
	}
}

func (r *refMachine) release(t sim.Time, job int) {
	r.resize(t, job, 0)
	delete(r.cpus, job)
	r.forgetThreads(job)
}

func (r *refMachine) forgetThreads(job int) {
	for tid := range r.lastCPU {
		if tid.Job == job {
			delete(r.lastCPU, tid)
		}
	}
}

func (r *refMachine) placeQuantum(t sim.Time, placements []Placement) {
	r.migQuant = map[int]int{}
	seen := make([]bool, r.ncpu)
	for _, p := range placements {
		seen[p.CPU] = true
		if last, ok := r.lastCPU[p.Thread]; ok && last != p.CPU {
			r.migTotal++
			r.migQuant[p.Thread.Job]++
		}
		r.lastCPU[p.Thread] = p.CPU
		if r.owner[p.CPU] != p.Thread.Job {
			r.owner[p.CPU] = p.Thread.Job
			r.assign(t, p.CPU, p.Thread.Job)
		}
	}
	for cpu := 0; cpu < r.ncpu; cpu++ {
		if !seen[cpu] && r.owner[cpu] != Free {
			r.owner[cpu] = Free
			r.assign(t, cpu, Free)
		}
	}
}

// compareState asserts the optimized machine and the reference agree on all
// observable state.
func compareState(t *testing.T, step int, m *Machine, ref *refMachine, maxJob, maxThreads int) {
	t.Helper()
	if m.FreeCPUs() != ref.free() {
		t.Fatalf("step %d: FreeCPUs = %d, reference %d", step, m.FreeCPUs(), ref.free())
	}
	for cpu := 0; cpu < ref.ncpu; cpu++ {
		if m.Owner(cpu) != ref.owner[cpu] {
			t.Fatalf("step %d: owner of CPU %d = %d, reference %d", step, cpu, m.Owner(cpu), ref.owner[cpu])
		}
	}
	for job := 0; job <= maxJob; job++ {
		want := ref.cpus[job]
		got := m.CPUsView(job)
		if len(got) != len(want) {
			t.Fatalf("step %d: job %d CPUs = %v, reference %v", step, job, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("step %d: job %d CPUs = %v, reference %v", step, job, got, want)
			}
		}
		if m.Allocated(job) != len(want) {
			t.Fatalf("step %d: job %d Allocated = %d, reference %d", step, job, m.Allocated(job), len(want))
		}
		if got, want := m.QuantumMigrations(job), ref.migQuant[job]; got != want {
			t.Fatalf("step %d: job %d QuantumMigrations = %d, reference %d", step, job, got, want)
		}
		for th := 0; th < maxThreads; th++ {
			tid := ThreadID{Job: job, Thread: th}
			gotCPU, gotOK := m.LastCPU(tid)
			wantCPU, wantOK := ref.lastCPU[tid]
			if gotOK != wantOK || (gotOK && gotCPU != wantCPU) {
				t.Fatalf("step %d: LastCPU(%v) = %d,%v, reference %d,%v",
					step, tid, gotCPU, gotOK, wantCPU, wantOK)
			}
		}
	}
}

// compareBursts asserts the recorder's RLE output equals the naive burst log
// (compared as multisets: closure order within one instant is unspecified).
func compareBursts(t *testing.T, rec *trace.Recorder, ref *refMachine) {
	t.Helper()
	got := append([]trace.Burst(nil), rec.Bursts()...)
	want := append([]trace.Burst(nil), ref.bursts...)
	less := func(s []trace.Burst) func(i, j int) bool {
		return func(i, j int) bool {
			a, b := s[i], s[j]
			if a.CPU != b.CPU {
				return a.CPU < b.CPU
			}
			if a.Start != b.Start {
				return a.Start < b.Start
			}
			return a.Job < b.Job
		}
	}
	sort.Slice(got, less(got))
	sort.Slice(want, less(want))
	if len(got) != len(want) {
		t.Fatalf("bursts: %d recorded, reference %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("burst %d: recorded %+v, reference %+v", i, got[i], want[i])
		}
	}
	if rec.Migrations() != ref.migTotal {
		t.Fatalf("migrations: recorded %d, reference %d", rec.Migrations(), ref.migTotal)
	}
}

func TestFuzzSpaceSharingMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		name     string
		ncpu     int
		nodeSize int
		seed     int64
	}{
		{"flat8", 8, 1, 1},
		{"flat64", 64, 1, 2},
		{"flat70", 70, 1, 3}, // ncpu not a multiple of 64: exercises tail masks
		{"numa16x4", 16, 4, 4},
		{"numa64x8", 64, 8, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			rec := trace.NewRecorder(tc.ncpu)
			m := New(tc.ncpu, rec)
			if tc.nodeSize > 1 {
				m.SetNodeSize(tc.nodeSize)
			}
			ref := newRefMachine(tc.ncpu, tc.nodeSize)
			const maxJob = 11
			now := sim.Time(0)
			for step := 0; step < 600; step++ {
				now += sim.Time(1+rng.Intn(1000)) * sim.Millisecond
				job := rng.Intn(maxJob + 1)
				if rng.Intn(5) == 0 {
					m.Release(now, job)
					ref.release(now, job)
				} else {
					want := rng.Intn(tc.ncpu + 2)
					granted := m.Resize(now, job, want)
					ref.resize(now, job, want)
					if granted != len(ref.cpus[job]) {
						t.Fatalf("step %d: Resize granted %d, reference %d", step, granted, len(ref.cpus[job]))
					}
				}
				compareState(t, step, m, ref, maxJob, tc.ncpu+1)
			}
			now += sim.Second
			rec.Close(now)
			ref.close(now)
			compareBursts(t, rec, ref)
		})
	}
}

func TestFuzzTimeSharingMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		ncpu int
		seed int64
	}{
		{"flat8", 8, 10},
		{"flat64", 64, 11},
		{"flat70", 70, 12},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			rec := trace.NewRecorder(tc.ncpu)
			m := New(tc.ncpu, rec)
			ref := newRefMachine(tc.ncpu, 1)
			const maxJob = 11
			maxThreads := tc.ncpu + 1
			now := sim.Time(0)
			for step := 0; step < 600; step++ {
				now += sim.Time(1+rng.Intn(200)) * sim.Millisecond
				if rng.Intn(8) == 0 {
					job := rng.Intn(maxJob + 1)
					m.ForgetThreads(job)
					ref.forgetThreads(job)
					compareState(t, step, m, ref, maxJob, maxThreads)
					continue
				}
				// A random partial placement: some CPUs idle, each used CPU
				// gets a random (job, thread) pair, threads unique per job.
				var placements []Placement
				usedThread := map[ThreadID]bool{}
				for cpu := 0; cpu < tc.ncpu; cpu++ {
					if rng.Intn(3) == 0 {
						continue
					}
					tid := ThreadID{Job: rng.Intn(maxJob + 1), Thread: rng.Intn(maxThreads)}
					if usedThread[tid] {
						continue
					}
					usedThread[tid] = true
					placements = append(placements, Placement{CPU: cpu, Thread: tid})
				}
				// Shuffle: PlaceQuantum must not depend on placement order
				// beyond the documented per-CPU uniqueness.
				rng.Shuffle(len(placements), func(i, j int) {
					placements[i], placements[j] = placements[j], placements[i]
				})
				m.PlaceQuantum(now, placements)
				ref.placeQuantum(now, placements)
				compareState(t, step, m, ref, maxJob, maxThreads)
			}
			now += sim.Second
			rec.Close(now)
			ref.close(now)
			compareBursts(t, rec, ref)
		})
	}
}

// BenchmarkReleaseManyJobs is the regression guard for the per-job cost of
// Release/ForgetThreads: a stream of short-lived jobs each placing threads
// and exiting. The former map[ThreadID]int affinity store made every release
// scan all threads ever seen; the per-job tables make it O(threads of that
// job) with pooled storage.
func BenchmarkReleaseManyJobs(b *testing.B) {
	const ncpu = 64
	m := New(ncpu, nil)
	placements := make([]Placement, ncpu)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := i
		for cpu := 0; cpu < ncpu; cpu++ {
			placements[cpu] = Placement{CPU: cpu, Thread: ThreadID{Job: job, Thread: cpu}}
		}
		m.PlaceQuantum(sim.Time(i)*sim.Millisecond, placements)
		m.ForgetThreads(job)
	}
}

// BenchmarkResizeReleaseManyJobs is the space-sharing variant: jobs
// repeatedly acquire partitions and release them.
func BenchmarkResizeReleaseManyJobs(b *testing.B) {
	const ncpu = 64
	m := New(ncpu, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := i
		m.Resize(sim.Time(i)*sim.Millisecond, job, 16)
		m.Release(sim.Time(i)*sim.Millisecond+sim.Microsecond, job)
	}
}
