package machine

import (
	"testing"
	"testing/quick"

	"pdpasim/internal/sim"
)

func numaMachine(t *testing.T, ncpu, nodeSize int) *Machine {
	t.Helper()
	m := New(ncpu, nil)
	m.SetNodeSize(nodeSize)
	return m
}

func TestNodeTopology(t *testing.T) {
	m := numaMachine(t, 16, 4)
	if m.Nodes() != 4 {
		t.Fatalf("nodes = %d", m.Nodes())
	}
	if m.NodeOf(0) != 0 || m.NodeOf(3) != 0 || m.NodeOf(4) != 1 || m.NodeOf(15) != 3 {
		t.Fatal("NodeOf mapping wrong")
	}
	// Flat machine defaults.
	flat := New(8, nil)
	if flat.Nodes() != 8 || flat.NodeOf(5) != 5 {
		t.Fatal("flat topology wrong")
	}
}

func TestSetNodeSizeValidation(t *testing.T) {
	m := New(10, nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("non-dividing node size accepted")
			}
		}()
		m.SetNodeSize(4)
	}()
	m2 := New(8, nil)
	m2.Resize(0, 1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("SetNodeSize after allocation accepted")
		}
	}()
	m2.SetNodeSize(4)
}

func TestGrowPacksCompactly(t *testing.T) {
	m := numaMachine(t, 16, 4)
	m.Resize(0, 1, 4)
	if span := m.NodeSpan(1); span != 1 {
		t.Fatalf("4-CPU job spans %d nodes, want 1", span)
	}
	if loc := m.Locality(1); loc != 1 {
		t.Fatalf("locality = %v", loc)
	}
	// A second job must land on different nodes, also compact.
	m.Resize(0, 2, 8)
	if span := m.NodeSpan(2); span != 2 {
		t.Fatalf("8-CPU job spans %d nodes, want 2", span)
	}
	for _, cpu := range m.CPUs(2) {
		if m.NodeOf(cpu) == 0 {
			t.Fatal("second job invaded the first job's node despite free nodes")
		}
	}
}

func TestGrowPrefersOwnNodes(t *testing.T) {
	m := numaMachine(t, 16, 4)
	m.Resize(0, 1, 2)          // node 0, cpus 0-1
	m.Resize(0, 2, 4)          // a different node
	m.Resize(sim.Second, 1, 4) // grow: must fill node 0 first
	if span := m.NodeSpan(1); span != 1 {
		t.Fatalf("grown job spans %d nodes, want 1 (own-node preference)", span)
	}
}

func TestGrowFillsEmptiestNodeNext(t *testing.T) {
	m := numaMachine(t, 12, 4)
	m.Resize(0, 1, 4) // node 0 full
	m.Resize(0, 2, 2) // node 1, half
	m.Resize(0, 3, 4) // prefers the fully free node 2 over node 1's leftovers
	if span := m.NodeSpan(3); span != 1 {
		t.Fatalf("job 3 spans %d nodes, want the empty node", span)
	}
}

func TestLocalityFragmented(t *testing.T) {
	m := numaMachine(t, 16, 4)
	m.Resize(0, 1, 4)            // node 0
	m.Resize(0, 2, 4)            // node 1
	m.Resize(0, 3, 4)            // node 2
	m.Resize(sim.Second, 1, 2)   // shrink: frees 2 CPUs on node 0
	m.Resize(sim.Second, 2, 2)   // frees 2 on node 1
	m.Resize(2*sim.Second, 4, 4) // must span nodes 0 and 1 fragments... or node 3
	// Node 3 is fully free: compact placement must use it.
	if span := m.NodeSpan(4); span != 1 {
		t.Fatalf("job 4 spans %d nodes with a free node available", span)
	}
	// Now force fragmentation: job 5 wants 4 but only fragments remain.
	m.Resize(3*sim.Second, 5, 4)
	if got := m.Allocated(5); got != 4 {
		t.Fatalf("allocated %d", got)
	}
	if span := m.NodeSpan(5); span < 2 {
		t.Fatalf("job 5 spans %d nodes, expected fragmentation", span)
	}
	if loc := m.Locality(5); loc >= 1 {
		t.Fatalf("fragmented locality = %v, want < 1", loc)
	}
}

func TestLocalityNoAllocation(t *testing.T) {
	m := numaMachine(t, 8, 4)
	if m.Locality(42) != 1 {
		t.Fatal("empty job locality should be 1")
	}
	if m.NodeSpan(42) != 0 {
		t.Fatal("empty job span should be 0")
	}
}

// Property: under arbitrary resize sequences on a NUMA machine, ownership
// stays a partition and every fully-satisfiable compact request placed on an
// empty machine is compact.
func TestNUMAPartitionProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		m := New(16, nil)
		m.SetNodeSize(4)
		var now sim.Time
		for _, op := range ops {
			now += sim.Millisecond
			m.Resize(now, int(op)%5, int(op/5)%20)
		}
		total := 0
		for _, job := range m.Jobs() {
			total += m.Allocated(job)
			if m.Locality(job) > 1 || m.Locality(job) <= 0 {
				return false
			}
		}
		return total+m.FreeCPUs() == 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
