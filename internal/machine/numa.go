package machine

import (
	"math/bits"
	"sort"
)

// NUMA topology support. The paper's testbed is an SGI Origin 2000, a
// CC-NUMA machine built from node boards of a few processors each; data
// locality is one of the reasons the paper evaluates on real hardware
// rather than simulation (Section 2), and why stable processor allocations
// matter (memory pages migrate toward their users).
//
// The machine model captures the placement side of this: processors are
// grouped into nodes of NodeSize, Resize prefers to grow a job onto nodes
// it already occupies (then onto the emptiest nodes), and NodeSpan/Locality
// report how compact each job's partition is. Time-sharing placements (the
// IRIX model) bypass this logic — exactly the locality destruction the
// paper attributes to the native scheduler.

// nodeSize returns the machine's NUMA node size (1 = flat SMP).
func (m *Machine) nodeSize() int {
	if m.numaNodeSize < 1 {
		return 1
	}
	return m.numaNodeSize
}

// SetNodeSize declares the NUMA node size. It must be called before any
// allocation and must divide the processor count; nodeSize <= 1 keeps the
// flat model.
func (m *Machine) SetNodeSize(nodeSize int) {
	if nodeSize > 1 && m.ncpu%nodeSize != 0 {
		panic("machine: node size must divide the CPU count")
	}
	for _, o := range m.owner {
		if o != Free {
			panic("machine: SetNodeSize after allocation")
		}
	}
	m.numaNodeSize = nodeSize
}

// NodeOf returns the NUMA node a CPU belongs to.
func (m *Machine) NodeOf(cpu int) int { return cpu / m.nodeSize() }

// Nodes returns the number of NUMA nodes.
func (m *Machine) Nodes() int { return (m.ncpu + m.nodeSize() - 1) / m.nodeSize() }

// NodeSpan returns how many NUMA nodes job's partition touches.
func (m *Machine) NodeSpan(job int) int {
	seen := map[int]bool{}
	for _, cpu := range m.cpusOf(job) {
		seen[m.NodeOf(cpu)] = true
	}
	return len(seen)
}

// Locality returns the compactness of job's partition: the minimal number
// of nodes that could hold it divided by the number it actually spans
// (1 = perfectly compact, smaller = fragmented). Jobs with no processors
// score 1.
func (m *Machine) Locality(job int) float64 {
	n := len(m.cpusOf(job))
	if n == 0 {
		return 1
	}
	size := m.nodeSize()
	minNodes := (n + size - 1) / size
	span := m.NodeSpan(job)
	if span == 0 {
		return 1
	}
	return float64(minNodes) / float64(span)
}

// pickFreeCPUs returns want free CPUs for job, preferring nodes the job
// already occupies, then the nodes with the most free processors (packing
// new jobs compactly), then CPU order. It returns fewer if the machine has
// fewer free. The returned slice is scratch, valid until the next call.
func (m *Machine) pickFreeCPUs(job, want int) []int {
	size := m.nodeSize()
	out := m.pickOut[:0]
	if size <= 1 {
		// Flat machine: first-free order, walking the free bitset.
		for w, word := range m.freeMask {
			for word != 0 && len(out) < want {
				out = append(out, w<<6+bits.TrailingZeros64(word))
				word &= word - 1
			}
			if len(out) >= want {
				break
			}
		}
		m.pickOut = out
		return out
	}
	nodes := m.Nodes()
	if cap(m.nodeFree) < nodes {
		m.nodeFree = make([][]int, nodes)
		m.nodeOwned = make([]bool, nodes)
	}
	freeOn := m.nodeFree[:nodes]
	mem := m.nodeFreeMem[:0]
	for w, word := range m.freeMask {
		for word != 0 {
			mem = append(mem, w<<6+bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	m.nodeFreeMem = mem
	// mem is ascending, so each node's free CPUs form one contiguous run.
	for n := range freeOn {
		freeOn[n] = nil
	}
	for i := 0; i < len(mem); {
		n := m.NodeOf(mem[i])
		j := i
		for j < len(mem) && m.NodeOf(mem[j]) == n {
			j++
		}
		freeOn[n] = mem[i:j]
		i = j
	}
	occupied := m.nodeOwned[:nodes]
	clear(occupied)
	for _, cpu := range m.cpusOf(job) {
		occupied[m.NodeOf(cpu)] = true
	}
	order := m.nodeOrder[:0]
	for n := 0; n < nodes; n++ {
		if len(freeOn[n]) > 0 {
			order = append(order, n)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		na, nb := order[a], order[b]
		// Nodes the job already uses come first.
		if occupied[na] != occupied[nb] {
			return occupied[na]
		}
		// Then emptier-for-us nodes (more free CPUs) to keep partitions
		// compact.
		if len(freeOn[na]) != len(freeOn[nb]) {
			return len(freeOn[na]) > len(freeOn[nb])
		}
		return na < nb
	})
	m.nodeOrder = order
	for _, n := range order {
		for _, cpu := range freeOn[n] {
			if len(out) == want {
				m.pickOut = out
				return out
			}
			out = append(out, cpu)
		}
	}
	m.pickOut = out
	return out
}
