package machine

import (
	"math/rand"
	"testing"

	"pdpasim/internal/sim"
	"pdpasim/internal/trace"
)

// checkPartition asserts the machine-level scheduling invariants directly,
// independent of the naive reference: every CPU has at most one owner, a
// job's Allocated count matches its CPU list, the Owner table agrees with
// the per-job lists, and allocated plus free CPUs always conserve the
// machine size.
func checkPartition(t *testing.T, step int, m *Machine, ncpu, maxJob int) {
	t.Helper()
	owner := make([]int, ncpu)
	for i := range owner {
		owner[i] = Free
	}
	allocated := 0
	for job := 0; job <= maxJob; job++ {
		cpus := m.CPUsView(job)
		if m.Allocated(job) != len(cpus) {
			t.Fatalf("step %d: job %d Allocated = %d but holds %d CPUs", step, job, m.Allocated(job), len(cpus))
		}
		allocated += len(cpus)
		for _, cpu := range cpus {
			if owner[cpu] != Free {
				t.Fatalf("step %d: CPU %d double-owned by jobs %d and %d", step, cpu, owner[cpu], job)
			}
			owner[cpu] = job
			if m.Owner(cpu) != job {
				t.Fatalf("step %d: CPU %d in job %d's list but Owner says %d", step, cpu, job, m.Owner(cpu))
			}
		}
	}
	if allocated+m.FreeCPUs() != ncpu {
		t.Fatalf("step %d: %d allocated + %d free ≠ %d CPUs", step, allocated, m.FreeCPUs(), ncpu)
	}
	for cpu := 0; cpu < ncpu; cpu++ {
		if owner[cpu] == Free && m.Owner(cpu) != Free {
			t.Fatalf("step %d: CPU %d owned by %d but in no job's list", step, cpu, m.Owner(cpu))
		}
	}
}

// TestFuzzInvariantsUnderRandomFaults extends the fuzz-vs-naive harness with
// randomized fault timing: jobs crash (single and in simultaneous bursts,
// including zero time elapsed since their last reallocation) and are reborn
// at the same instant. After every operation the optimized machine must
// still match the reference AND satisfy the partition/conservation
// invariants; the burst log must close cleanly.
func TestFuzzInvariantsUnderRandomFaults(t *testing.T) {
	for _, tc := range []struct {
		name     string
		ncpu     int
		nodeSize int
		seed     int64
	}{
		{"flat8", 8, 1, 21},
		{"flat70", 70, 1, 22},
		{"numa32x8", 32, 8, 23},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			rec := trace.NewRecorder(tc.ncpu)
			m := New(tc.ncpu, rec)
			if tc.nodeSize > 1 {
				m.SetNodeSize(tc.nodeSize)
			}
			ref := newRefMachine(tc.ncpu, tc.nodeSize)
			const maxJob = 9
			now := sim.Time(0)
			for step := 0; step < 500; step++ {
				// Fault timing is part of the randomness: half the steps
				// advance the clock, half strike at the same instant as the
				// previous operation.
				if rng.Intn(2) == 0 {
					now += sim.Time(1+rng.Intn(500)) * sim.Millisecond
				}
				switch rng.Intn(6) {
				case 0: // single crash
					job := rng.Intn(maxJob + 1)
					m.Release(now, job)
					ref.release(now, job)
				case 1: // correlated failure: a burst of jobs dies at one instant
					for job := 0; job <= maxJob; job++ {
						if rng.Intn(3) == 0 {
							m.Release(now, job)
							ref.release(now, job)
						}
					}
				case 2: // crash immediately followed by rebirth at the same time
					job := rng.Intn(maxJob + 1)
					m.Release(now, job)
					ref.release(now, job)
					want := rng.Intn(tc.ncpu + 1)
					m.Resize(now, job, want)
					ref.resize(now, job, want)
				default: // ordinary reallocation traffic
					job := rng.Intn(maxJob + 1)
					want := rng.Intn(tc.ncpu + 2)
					m.Resize(now, job, want)
					ref.resize(now, job, want)
				}
				compareState(t, step, m, ref, maxJob, tc.ncpu+1)
				checkPartition(t, step, m, tc.ncpu, maxJob)
			}
			// Total shutdown: every job crashes; nothing may stay owned.
			now += sim.Second
			for job := 0; job <= maxJob; job++ {
				m.Release(now, job)
				ref.release(now, job)
			}
			checkPartition(t, 500, m, tc.ncpu, maxJob)
			if m.FreeCPUs() != tc.ncpu {
				t.Fatalf("after total shutdown %d CPUs free, want %d", m.FreeCPUs(), tc.ncpu)
			}
			rec.Close(now)
			ref.close(now)
			compareBursts(t, rec, ref)
		})
	}
}
