package machine

import (
	"testing"
	"testing/quick"

	"pdpasim/internal/sim"
	"pdpasim/internal/trace"
)

func TestResizeGrowShrink(t *testing.T) {
	m := New(8, nil)
	if got := m.Resize(0, 1, 4); got != 4 {
		t.Fatalf("grant = %d", got)
	}
	if m.FreeCPUs() != 4 {
		t.Fatalf("free = %d", m.FreeCPUs())
	}
	if got := m.Resize(0, 2, 10); got != 4 {
		t.Fatalf("clamped grant = %d, want 4", got)
	}
	if m.FreeCPUs() != 0 {
		t.Fatalf("free = %d", m.FreeCPUs())
	}
	if got := m.Resize(sim.Second, 1, 2); got != 2 {
		t.Fatalf("shrink grant = %d", got)
	}
	if m.FreeCPUs() != 2 {
		t.Fatalf("free after shrink = %d", m.FreeCPUs())
	}
}

func TestResizeAffinityKeepsCPUs(t *testing.T) {
	m := New(8, nil)
	m.Resize(0, 1, 4)
	before := m.CPUs(1)
	m.Resize(sim.Second, 1, 2)
	m.Resize(2*sim.Second, 1, 4)
	after := m.CPUs(1)
	// The first two CPUs must be unchanged (kept across the shrink).
	if after[0] != before[0] || after[1] != before[1] {
		t.Fatalf("affinity lost: before=%v after=%v", before, after)
	}
}

func TestResizeMigrationCounting(t *testing.T) {
	rec := trace.NewRecorder(4)
	m := New(4, rec)
	m.Resize(0, 1, 2) // threads 0,1 created — no migrations
	if rec.Migrations() != 0 {
		t.Fatalf("creation counted as migration: %d", rec.Migrations())
	}
	m.Resize(sim.Second, 2, 2)   // job 2 on cpus 2,3
	m.Resize(2*sim.Second, 1, 1) // job 1 shrinks, cpu1 free
	m.Resize(3*sim.Second, 2, 3) // job 2 grows onto cpu1: thread 2 is new
	if rec.Migrations() != 0 {
		t.Fatalf("new thread counted as migration: %d", rec.Migrations())
	}
	m.Resize(4*sim.Second, 2, 2) // job 2 back to 2: thread 2 suspended
	m.Resize(5*sim.Second, 1, 2) // job 1 regrows onto cpu1: thread 1 moved 1->1? cpu1 was its original
	// thread 1 of job 1 originally on cpu1, so regrowth onto cpu1 is not a move.
	if rec.Migrations() != 0 {
		t.Fatalf("same-cpu regrowth counted as migration: %d", rec.Migrations())
	}
	m.Resize(6*sim.Second, 1, 1)
	m.Resize(7*sim.Second, 3, 1) // job 3 takes cpu1
	m.Resize(7500*sim.Millisecond, 2, 1)
	m.Resize(8*sim.Second, 1, 2) // job 1 thread 1 must land on freed cpu3 => migration
	if rec.Migrations() != 1 {
		t.Fatalf("migrations = %d, want 1", rec.Migrations())
	}
}

func TestReleaseFreesEverything(t *testing.T) {
	m := New(4, nil)
	m.Resize(0, 7, 3)
	m.Release(sim.Second, 7)
	if m.FreeCPUs() != 4 {
		t.Fatalf("free = %d", m.FreeCPUs())
	}
	if m.Allocated(7) != 0 {
		t.Fatalf("allocated = %d", m.Allocated(7))
	}
	if _, ok := m.LastCPU(ThreadID{Job: 7, Thread: 0}); ok {
		t.Fatal("thread memory not cleared on release")
	}
}

func TestJobsSorted(t *testing.T) {
	m := New(8, nil)
	m.Resize(0, 5, 1)
	m.Resize(0, 2, 1)
	m.Resize(0, 9, 1)
	jobs := m.Jobs()
	if len(jobs) != 3 || jobs[0] != 2 || jobs[1] != 5 || jobs[2] != 9 {
		t.Fatalf("jobs = %v", jobs)
	}
}

func TestResizeNegativeWantClamps(t *testing.T) {
	m := New(2, nil)
	m.Resize(0, 1, 2)
	if got := m.Resize(sim.Second, 1, -3); got != 0 {
		t.Fatalf("negative want grant = %d", got)
	}
}

func TestNegativeJobPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(2, nil).Resize(0, -1, 1)
}

func TestNewValidation(t *testing.T) {
	for _, bad := range []int{0, -1} {
		func() {
			defer func() { recover() }()
			New(bad, nil)
			t.Fatalf("New(%d) did not panic", bad)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched recorder did not panic")
		}
	}()
	New(4, trace.NewRecorder(8))
}

func TestPlaceQuantum(t *testing.T) {
	rec := trace.NewRecorder(3)
	m := New(3, rec)
	m.PlaceQuantum(0, []Placement{
		{CPU: 0, Thread: ThreadID{Job: 1, Thread: 0}},
		{CPU: 1, Thread: ThreadID{Job: 1, Thread: 1}},
		{CPU: 2, Thread: ThreadID{Job: 2, Thread: 0}},
	})
	if rec.Migrations() != 0 {
		t.Fatalf("first placement migrations = %d", rec.Migrations())
	}
	// Swap two threads: two migrations.
	m.PlaceQuantum(100*sim.Millisecond, []Placement{
		{CPU: 1, Thread: ThreadID{Job: 1, Thread: 0}},
		{CPU: 0, Thread: ThreadID{Job: 1, Thread: 1}},
		{CPU: 2, Thread: ThreadID{Job: 2, Thread: 0}},
	})
	if rec.Migrations() != 2 {
		t.Fatalf("migrations = %d, want 2", rec.Migrations())
	}
	// Unmentioned CPU goes idle.
	m.PlaceQuantum(200*sim.Millisecond, []Placement{
		{CPU: 0, Thread: ThreadID{Job: 1, Thread: 1}},
	})
	if m.Owner(2) != Free || m.Owner(1) != Free {
		t.Fatalf("owners = %d,%d, want free", m.Owner(1), m.Owner(2))
	}
}

func TestPlaceQuantumDoublePlacePanics(t *testing.T) {
	m := New(2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.PlaceQuantum(0, []Placement{
		{CPU: 0, Thread: ThreadID{Job: 1, Thread: 0}},
		{CPU: 0, Thread: ThreadID{Job: 2, Thread: 0}},
	})
}

func TestPlaceQuantumOutOfRangePanics(t *testing.T) {
	m := New(2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.PlaceQuantum(0, []Placement{{CPU: 5, Thread: ThreadID{}}})
}

func TestForgetThreads(t *testing.T) {
	m := New(2, nil)
	m.PlaceQuantum(0, []Placement{{CPU: 0, Thread: ThreadID{Job: 3, Thread: 0}}})
	m.ForgetThreads(3)
	if _, ok := m.LastCPU(ThreadID{Job: 3, Thread: 0}); ok {
		t.Fatal("thread memory survived ForgetThreads")
	}
}

// Property: ownership is always a partition — a CPU has at most one owner and
// job CPU lists are disjoint; free count + Σ allocated = ncpu.
func TestOwnershipPartitionProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		const ncpu = 16
		m := New(ncpu, nil)
		var now sim.Time
		for _, op := range ops {
			now += sim.Millisecond
			job := int(op) % 5
			want := int(op/5) % (ncpu + 4)
			m.Resize(now, job, want)
		}
		seen := map[int]int{} // cpu -> job
		total := 0
		for _, job := range m.Jobs() {
			for i, cpu := range m.CPUs(job) {
				if other, dup := seen[cpu]; dup {
					t.Logf("cpu %d owned by %d and %d", cpu, other, job)
					return false
				}
				seen[cpu] = job
				if m.Owner(cpu) != job {
					return false
				}
				_ = i
				total++
			}
		}
		return total+m.FreeCPUs() == ncpu
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
