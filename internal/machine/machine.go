// Package machine models the multiprocessor: a fixed set of CPUs whose
// ownership changes over time under a scheduling policy.
//
// The model plays the role of the paper's SGI Origin 2000. It supports both
// modes the evaluation needs:
//
//   - space sharing (Equipartition, Equal_efficiency, PDPA): each job owns a
//     disjoint CPU set that changes only at reallocations. Resize preserves
//     affinity — a job keeps as many of its current CPUs as possible — and
//     counts a thread migration whenever an existing kernel thread is placed
//     on a CPU different from the one it last ran on.
//
//   - per-quantum time sharing (the IRIX model): the policy decides each
//     quantum which thread runs on which CPU; the machine executes the
//     placement and does the same burst/migration bookkeeping.
//
// All bookkeeping flows into a trace.Recorder, from which Table 2's
// stability metrics and Fig. 5's execution views are derived.
package machine

import (
	"fmt"
	"sort"

	"pdpasim/internal/sim"
	"pdpasim/internal/trace"
)

// Free marks an unowned CPU.
const Free = -1

// ThreadID identifies one kernel thread of one job.
type ThreadID struct {
	Job    int
	Thread int
}

// Machine is the multiprocessor model. Create with New.
type Machine struct {
	ncpu    int
	owner   []int         // job owning each CPU (space sharing), Free if none
	jobCPUs map[int][]int // CPU list per job; thread i runs on jobCPUs[job][i]
	lastCPU map[ThreadID]int
	rec     *trace.Recorder
	// numaNodeSize groups CPUs into NUMA nodes (see SetNodeSize); <= 1
	// means a flat SMP.
	numaNodeSize int

	// quantumSeen and quantumMigs are PlaceQuantum scratch state: the method
	// runs every time-sharing quantum, so its bookkeeping is reused rather
	// than reallocated.
	quantumSeen []bool
	quantumMigs map[int]int
}

// New returns a machine with ncpu processors, all free. The recorder may be
// nil, in which case no trace is kept (migration counts are then unavailable).
func New(ncpu int, rec *trace.Recorder) *Machine {
	if ncpu <= 0 {
		panic("machine: ncpu must be positive")
	}
	if rec != nil && rec.NCPU() != ncpu {
		panic("machine: recorder CPU count mismatch")
	}
	m := &Machine{
		ncpu:    ncpu,
		owner:   make([]int, ncpu),
		jobCPUs: make(map[int][]int),
		lastCPU: make(map[ThreadID]int),
		rec:     rec,
	}
	for i := range m.owner {
		m.owner[i] = Free
	}
	return m
}

// NCPU returns the machine size.
func (m *Machine) NCPU() int { return m.ncpu }

// FreeCPUs returns how many CPUs are currently unowned.
func (m *Machine) FreeCPUs() int {
	n := 0
	for _, o := range m.owner {
		if o == Free {
			n++
		}
	}
	return n
}

// Owner returns the job owning cpu, or Free.
func (m *Machine) Owner(cpu int) int { return m.owner[cpu] }

// Allocated returns the number of CPUs job currently owns.
func (m *Machine) Allocated(job int) int { return len(m.jobCPUs[job]) }

// CPUs returns a copy of the CPU list owned by job, in thread order.
func (m *Machine) CPUs(job int) []int {
	cur := m.jobCPUs[job]
	out := make([]int, len(cur))
	copy(out, cur)
	return out
}

// Jobs returns the ids of all jobs owning at least one CPU, sorted.
func (m *Machine) Jobs() []int {
	out := make([]int, 0, len(m.jobCPUs))
	for j := range m.jobCPUs {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}

// Resize changes job's allocation to want CPUs (clamped to what is free) and
// returns the number actually granted. Affinity is preserved: the job keeps
// its lowest-ranked current CPUs when shrinking and extends with free CPUs
// when growing. Each pre-existing thread placed on a new CPU counts as one
// migration.
func (m *Machine) Resize(t sim.Time, job, want int) int {
	if job < 0 {
		panic("machine: negative job id")
	}
	if want < 0 {
		want = 0
	}
	cur := m.jobCPUs[job]
	switch {
	case want < len(cur):
		m.shrink(t, job, want)
	case want > len(cur):
		m.grow(t, job, want)
	}
	return len(m.jobCPUs[job])
}

func (m *Machine) shrink(t sim.Time, job, want int) {
	cur := m.jobCPUs[job]
	for _, cpu := range cur[want:] {
		m.owner[cpu] = Free
		if m.rec != nil {
			m.rec.Assign(t, cpu, trace.NoJob)
		}
	}
	if want == 0 {
		delete(m.jobCPUs, job)
		return
	}
	m.jobCPUs[job] = cur[:want]
}

func (m *Machine) grow(t sim.Time, job, want int) {
	cur := m.jobCPUs[job]
	for _, cpu := range m.pickFreeCPUs(job, want-len(cur)) {
		thread := ThreadID{Job: job, Thread: len(cur)}
		m.owner[cpu] = job
		if last, ok := m.lastCPU[thread]; ok && last != cpu {
			if m.rec != nil {
				m.rec.Migration()
			}
		}
		m.lastCPU[thread] = cpu
		if m.rec != nil {
			m.rec.Assign(t, cpu, job)
		}
		cur = append(cur, cpu)
	}
	m.jobCPUs[job] = cur
}

// Release frees every CPU owned by job (job completion).
func (m *Machine) Release(t sim.Time, job int) {
	m.shrink(t, job, 0)
	for tid := range m.lastCPU {
		if tid.Job == job {
			delete(m.lastCPU, tid)
		}
	}
}

// Placement is one per-quantum decision in time-sharing mode: thread Thread
// of job Job runs on CPU for the coming quantum.
type Placement struct {
	CPU    int
	Thread ThreadID
}

// PlaceQuantum applies a full time-sharing placement for the quantum starting
// at t and returns the number of thread migrations it caused per job. CPUs
// not mentioned become idle. Placing a thread on a CPU different from its
// previous one counts a migration. PlaceQuantum must not be mixed with
// Resize ownership on the same machine instance. The returned map is reused
// scratch state, valid only until the next PlaceQuantum call.
func (m *Machine) PlaceQuantum(t sim.Time, placements []Placement) map[int]int {
	if m.quantumSeen == nil {
		m.quantumSeen = make([]bool, m.ncpu)
		m.quantumMigs = make(map[int]int)
	}
	seen := m.quantumSeen
	clear(seen)
	migs := m.quantumMigs
	clear(migs)
	for _, p := range placements {
		if p.CPU < 0 || p.CPU >= m.ncpu {
			panic(fmt.Sprintf("machine: placement CPU %d out of range", p.CPU))
		}
		if seen[p.CPU] {
			panic(fmt.Sprintf("machine: CPU %d placed twice in one quantum", p.CPU))
		}
		seen[p.CPU] = true
		if last, ok := m.lastCPU[p.Thread]; ok && last != p.CPU {
			migs[p.Thread.Job]++
			if m.rec != nil {
				m.rec.Migration()
			}
		}
		m.lastCPU[p.Thread] = p.CPU
		m.owner[p.CPU] = p.Thread.Job
		if m.rec != nil {
			m.rec.Assign(t, p.CPU, p.Thread.Job)
		}
	}
	for cpu := 0; cpu < m.ncpu; cpu++ {
		if !seen[cpu] && m.owner[cpu] != Free {
			m.owner[cpu] = Free
			if m.rec != nil {
				m.rec.Assign(t, cpu, trace.NoJob)
			}
		}
	}
	return migs
}

// ForgetThreads drops thread-affinity memory for job (used when a job exits
// in time-sharing mode).
func (m *Machine) ForgetThreads(job int) {
	for tid := range m.lastCPU {
		if tid.Job == job {
			delete(m.lastCPU, tid)
		}
	}
}

// LastCPU returns the CPU thread last ran on and whether it has run.
func (m *Machine) LastCPU(tid ThreadID) (int, bool) {
	cpu, ok := m.lastCPU[tid]
	return cpu, ok
}
