// Package machine models the multiprocessor: a fixed set of CPUs whose
// ownership changes over time under a scheduling policy.
//
// The model plays the role of the paper's SGI Origin 2000. It supports both
// modes the evaluation needs:
//
//   - space sharing (Equipartition, Equal_efficiency, PDPA): each job owns a
//     disjoint CPU set that changes only at reallocations. Resize preserves
//     affinity — a job keeps as many of its current CPUs as possible — and
//     counts a thread migration whenever an existing kernel thread is placed
//     on a CPU different from the one it last ran on.
//
//   - per-quantum time sharing (the IRIX model): the policy decides each
//     quantum which thread runs on which CPU; the machine executes the
//     placement and does the same burst/migration bookkeeping.
//
// All bookkeeping flows into a trace.Recorder, from which Table 2's
// stability metrics and Fig. 5's execution views are derived.
//
// The machine sits on the per-quantum hot path of every simulated run
// (~3000 quanta × 60 CPUs for a 300-second IRIX run), so its state is held
// in dense, profile-chosen structures rather than maps: per-job slice-backed
// thread-affinity tables (job ids are dense small integers assigned by the
// workload generator), a uint64 bitset of free CPUs with an incrementally
// maintained free count, and per-job quantum migration counters cleared via
// a touched list.
package machine

import (
	"fmt"
	"math/bits"

	"pdpasim/internal/sim"
	"pdpasim/internal/trace"
)

// Free marks an unowned CPU.
const Free = -1

// noCPU marks a thread that has never run in the affinity tables.
const noCPU = -1

// ThreadID identifies one kernel thread of one job.
type ThreadID struct {
	Job    int
	Thread int
}

// Machine is the multiprocessor model. Create with New.
type Machine struct {
	ncpu  int
	owner []int // job owning each CPU (space sharing), Free if none
	// nfree is the incrementally maintained count of Free entries in owner,
	// so FreeCPUs never scans.
	nfree int
	// freeMask is the bitset mirror of owner (bit set = CPU free), so
	// pickFreeCPUs walks set bits instead of scanning all owners.
	freeMask []uint64
	// jobCPUs is the CPU list per job, indexed by job id (dense, assigned by
	// the workload generator); thread i runs on jobCPUs[job][i]. A nil or
	// empty entry means the job owns nothing.
	jobCPUs [][]int
	// aff is the per-job thread-affinity table: aff[job][thread] is the CPU
	// the thread last ran on, noCPU if it never ran. Replacing the former
	// map[ThreadID]int makes Release/ForgetThreads O(1) per job instead of
	// O(all threads), and the per-placement lookups index two slices instead
	// of hashing a 16-byte key.
	aff [][]int32
	// affPool and cpuPool recycle detached per-job tables (every entry has
	// capacity >= ncpu), so a stream of short jobs reuses a handful of
	// tables instead of allocating one per job.
	affPool [][]int32
	cpuPool [][]int
	rec     *trace.Recorder
	// numaNodeSize groups CPUs into NUMA nodes (see SetNodeSize); <= 1
	// means a flat SMP.
	numaNodeSize int

	// quantumSeen is PlaceQuantum scratch: a bitset of CPUs mentioned this
	// quantum. migCount/migTouched hold this quantum's per-job migration
	// counts, cleared via the touched list so an idle quantum clears nothing.
	quantumSeen []uint64
	migCount    []int32
	migTouched  []int32

	// pickScratch buffers for the NUMA pickFreeCPUs path, reused across
	// calls.
	pickOut     []int
	nodeFree    [][]int
	nodeFreeMem []int
	nodeOrder   []int
	nodeOwned   []bool
}

// New returns a machine with ncpu processors, all free. The recorder may be
// nil, in which case no trace is kept (migration counts are then unavailable).
func New(ncpu int, rec *trace.Recorder) *Machine {
	if ncpu <= 0 {
		panic("machine: ncpu must be positive")
	}
	if rec != nil && rec.NCPU() != ncpu {
		panic("machine: recorder CPU count mismatch")
	}
	m := &Machine{
		ncpu:     ncpu,
		owner:    make([]int, ncpu),
		nfree:    ncpu,
		freeMask: make([]uint64, (ncpu+63)/64),
		rec:      rec,
	}
	for i := range m.owner {
		m.owner[i] = Free
	}
	for i := range m.freeMask {
		m.freeMask[i] = ^uint64(0)
	}
	if tail := ncpu % 64; tail != 0 {
		m.freeMask[len(m.freeMask)-1] = (uint64(1) << tail) - 1
	}
	return m
}

// Reset returns the machine to the state New(ncpu, rec) would produce, in
// place — callers that cached the *Machine keep a valid pointer — while
// recycling every per-job table into the pools and keeping the dense per-CPU
// arrays. The NUMA node size resets to flat; callers re-apply SetNodeSize per
// run.
func (m *Machine) Reset(ncpu int, rec *trace.Recorder) {
	if ncpu <= 0 {
		panic("machine: ncpu must be positive")
	}
	if rec != nil && rec.NCPU() != ncpu {
		panic("machine: recorder CPU count mismatch")
	}
	for j := range m.jobCPUs {
		if c := m.jobCPUs[j]; cap(c) > 0 {
			m.cpuPool = append(m.cpuPool, c[:0])
		}
		m.jobCPUs[j] = nil
	}
	m.jobCPUs = m.jobCPUs[:0]
	for j := range m.aff {
		m.recycleAff(j)
	}
	m.aff = m.aff[:0]
	// Counters left from the final quantum clear through the touched list,
	// exactly as the next PlaceQuantum would; the dense array keeps its
	// length so ensureJob never regrows it.
	for _, job := range m.migTouched {
		m.migCount[job] = 0
	}
	m.migTouched = m.migTouched[:0]
	if ncpu != m.ncpu {
		m.ncpu = ncpu
		if cap(m.owner) < ncpu {
			m.owner = make([]int, ncpu)
		} else {
			m.owner = m.owner[:ncpu]
		}
		words := (ncpu + 63) / 64
		if cap(m.freeMask) < words {
			m.freeMask = make([]uint64, words)
		} else {
			m.freeMask = m.freeMask[:words]
		}
		m.quantumSeen = nil // PlaceQuantum re-sizes it lazily
	}
	for i := range m.owner {
		m.owner[i] = Free
	}
	for i := range m.freeMask {
		m.freeMask[i] = ^uint64(0)
	}
	if tail := ncpu % 64; tail != 0 {
		m.freeMask[len(m.freeMask)-1] = (uint64(1) << tail) - 1
	}
	m.nfree = ncpu
	m.rec = rec
	m.numaNodeSize = 0
}

// NCPU returns the machine size.
func (m *Machine) NCPU() int { return m.ncpu }

// FreeCPUs returns how many CPUs are currently unowned.
func (m *Machine) FreeCPUs() int { return m.nfree }

// Owner returns the job owning cpu, or Free.
func (m *Machine) Owner(cpu int) int { return m.owner[cpu] }

// setOwner records cpu's new owner (job or Free), keeping the free count and
// the free bitset in sync with the owner array.
func (m *Machine) setOwner(cpu, job int) {
	prev := m.owner[cpu]
	if prev == job {
		return
	}
	m.owner[cpu] = job
	if prev == Free {
		m.nfree--
		m.freeMask[cpu>>6] &^= uint64(1) << (cpu & 63)
	} else if job == Free {
		m.nfree++
		m.freeMask[cpu>>6] |= uint64(1) << (cpu & 63)
	}
}

// ensureJob grows the per-job tables to cover job.
func (m *Machine) ensureJob(job int) {
	if job < len(m.jobCPUs) {
		return
	}
	for len(m.jobCPUs) <= job {
		m.jobCPUs = append(m.jobCPUs, nil)
	}
	for len(m.aff) <= job {
		m.aff = append(m.aff, nil)
	}
	for len(m.migCount) <= job {
		m.migCount = append(m.migCount, 0)
	}
}

// affSlot returns a pointer to the affinity entry for tid, growing the job's
// table as threads appear. New tables come from the pool when possible and
// carry at least ncpu capacity, so a job's table is allocated (or recycled)
// once regardless of how its thread count evolves.
func (m *Machine) affSlot(tid ThreadID) *int32 {
	m.ensureJob(tid.Job)
	table := m.aff[tid.Job]
	if cap(table) <= tid.Thread {
		var grown []int32
		if n := len(m.affPool); n > 0 {
			cand := m.affPool[n-1]
			m.affPool = m.affPool[:n-1]
			if cap(cand) > tid.Thread {
				grown = cand[:0]
			}
		}
		if grown == nil {
			c := m.ncpu
			if c <= tid.Thread {
				c = tid.Thread + 1
			}
			grown = make([]int32, 0, c)
		}
		table = append(grown, table...)
	}
	for len(table) <= tid.Thread {
		table = append(table, noCPU)
	}
	m.aff[tid.Job] = table
	return &table[tid.Thread]
}

// recycleAff detaches job's affinity table into the pool.
func (m *Machine) recycleAff(job int) {
	if t := m.aff[job]; cap(t) > 0 {
		m.affPool = append(m.affPool, t[:0])
	}
	m.aff[job] = nil
}

// Allocated returns the number of CPUs job currently owns.
func (m *Machine) Allocated(job int) int {
	if job < 0 || job >= len(m.jobCPUs) {
		return 0
	}
	return len(m.jobCPUs[job])
}

// CPUs returns a copy of the CPU list owned by job, in thread order. The
// copy is the caller's to keep; use CPUsView on hot paths that only read.
func (m *Machine) CPUs(job int) []int {
	cur := m.cpusOf(job)
	out := make([]int, len(cur))
	copy(out, cur)
	return out
}

// CPUsView returns the CPU list owned by job, in thread order, WITHOUT
// copying: the returned slice aliases the machine's internal state and is
// valid only until the next Resize/Release/PlaceQuantum call. Callers must
// not modify or retain it. It exists for per-tick read-only loops (the
// memory model's locality accounting); everything else should use CPUs.
func (m *Machine) CPUsView(job int) []int { return m.cpusOf(job) }

func (m *Machine) cpusOf(job int) []int {
	if job < 0 || job >= len(m.jobCPUs) {
		return nil
	}
	return m.jobCPUs[job]
}

// Jobs returns the ids of all jobs owning at least one CPU, sorted.
func (m *Machine) Jobs() []int {
	var out []int
	for j, cpus := range m.jobCPUs {
		if len(cpus) > 0 {
			out = append(out, j)
		}
	}
	return out
}

// Resize changes job's allocation to want CPUs (clamped to what is free) and
// returns the number actually granted. Affinity is preserved: the job keeps
// its lowest-ranked current CPUs when shrinking and extends with free CPUs
// when growing. Each pre-existing thread placed on a new CPU counts as one
// migration.
func (m *Machine) Resize(t sim.Time, job, want int) int {
	if job < 0 {
		panic("machine: negative job id")
	}
	if want < 0 {
		want = 0
	}
	m.ensureJob(job)
	cur := m.jobCPUs[job]
	switch {
	case want < len(cur):
		m.shrink(t, job, want)
	case want > len(cur):
		m.grow(t, job, want)
	}
	return len(m.jobCPUs[job])
}

func (m *Machine) shrink(t sim.Time, job, want int) {
	cur := m.jobCPUs[job]
	for _, cpu := range cur[want:] {
		m.setOwner(cpu, Free)
		if m.rec != nil {
			m.rec.Assign(t, cpu, trace.NoJob)
		}
	}
	m.jobCPUs[job] = cur[:want]
}

func (m *Machine) grow(t sim.Time, job, want int) {
	cur := m.jobCPUs[job]
	if cap(cur) < want {
		var grown []int
		if n := len(m.cpuPool); n > 0 {
			cand := m.cpuPool[n-1]
			m.cpuPool = m.cpuPool[:n-1]
			if cap(cand) >= want {
				grown = cand[:0]
			}
		}
		if grown == nil {
			c := m.ncpu
			if c < want {
				c = want
			}
			grown = make([]int, 0, c)
		}
		cur = append(grown, cur...)
	}
	for _, cpu := range m.pickFreeCPUs(job, want-len(cur)) {
		slot := m.affSlot(ThreadID{Job: job, Thread: len(cur)})
		m.setOwner(cpu, job)
		if last := *slot; last != noCPU && int(last) != cpu {
			if m.rec != nil {
				m.rec.Migration()
			}
		}
		*slot = int32(cpu)
		if m.rec != nil {
			m.rec.Assign(t, cpu, job)
		}
		cur = append(cur, cpu)
	}
	m.jobCPUs[job] = cur
}

// Release frees every CPU owned by job (job completion). Thread-affinity
// memory is dropped in O(1): the job's table is detached whole, not scanned
// entry by entry.
func (m *Machine) Release(t sim.Time, job int) {
	m.ensureJob(job)
	m.shrink(t, job, 0)
	if c := m.jobCPUs[job]; cap(c) > 0 {
		m.cpuPool = append(m.cpuPool, c[:0])
	}
	m.jobCPUs[job] = nil
	m.recycleAff(job)
}

// Placement is one per-quantum decision in time-sharing mode: thread Thread
// of job Job runs on CPU for the coming quantum.
type Placement struct {
	CPU    int
	Thread ThreadID
}

// PlaceQuantum applies a full time-sharing placement for the quantum starting
// at t. CPUs not mentioned become idle. Placing a thread on a CPU different
// from its previous one counts a migration; the per-job counts for the
// quantum are readable through QuantumMigrations until the next PlaceQuantum
// call. PlaceQuantum must not be mixed with Resize ownership on the same
// machine instance. Job ids must be non-negative.
//
// Unchanged ownership does not reach the trace recorder at all: the owner
// array acts as the run-length encoder for the per-CPU assignment stream, so
// the IRIX model's one-placement-per-CPU-per-quantum firehose collapses to
// actual ownership changes.
func (m *Machine) PlaceQuantum(t sim.Time, placements []Placement) {
	if m.quantumSeen == nil {
		m.quantumSeen = make([]uint64, len(m.freeMask))
	}
	seen := m.quantumSeen
	clear(seen)
	// Reset only the migration counters the previous quantum touched.
	for _, job := range m.migTouched {
		m.migCount[job] = 0
	}
	m.migTouched = m.migTouched[:0]
	for _, p := range placements {
		if p.CPU < 0 || p.CPU >= m.ncpu {
			panic(fmt.Sprintf("machine: placement CPU %d out of range", p.CPU))
		}
		if p.Thread.Job < 0 {
			panic(fmt.Sprintf("machine: negative job id %d in placement", p.Thread.Job))
		}
		w, b := p.CPU>>6, uint64(1)<<(p.CPU&63)
		if seen[w]&b != 0 {
			panic(fmt.Sprintf("machine: CPU %d placed twice in one quantum", p.CPU))
		}
		seen[w] |= b
		slot := m.affSlot(p.Thread)
		if last := *slot; last != noCPU && int(last) != p.CPU {
			if m.migCount[p.Thread.Job] == 0 {
				m.migTouched = append(m.migTouched, int32(p.Thread.Job))
			}
			m.migCount[p.Thread.Job]++
			if m.rec != nil {
				m.rec.Migration()
			}
		}
		*slot = int32(p.CPU)
		if m.owner[p.CPU] != p.Thread.Job {
			m.setOwner(p.CPU, p.Thread.Job)
			if m.rec != nil {
				m.rec.Assign(t, p.CPU, p.Thread.Job)
			}
		}
	}
	// Idle every owned CPU the placement did not mention: walk the set bits
	// of owned-and-unseen instead of scanning all CPUs.
	for w := range seen {
		idle := ^m.freeMask[w] &^ seen[w]
		if w == len(seen)-1 {
			if tail := m.ncpu % 64; tail != 0 {
				idle &= (uint64(1) << tail) - 1
			}
		}
		for idle != 0 {
			cpu := w<<6 + bits.TrailingZeros64(idle)
			idle &= idle - 1
			m.setOwner(cpu, Free)
			if m.rec != nil {
				m.rec.Assign(t, cpu, trace.NoJob)
			}
		}
	}
}

// QuantumMigrations returns how many thread migrations job suffered in the
// placement applied by the most recent PlaceQuantum call.
func (m *Machine) QuantumMigrations(job int) int {
	if job < 0 || job >= len(m.migCount) {
		return 0
	}
	return int(m.migCount[job])
}

// ForgetThreads drops thread-affinity memory for job (used when a job exits
// in time-sharing mode). O(1): the per-job table is detached whole.
func (m *Machine) ForgetThreads(job int) {
	if job < 0 || job >= len(m.aff) {
		return
	}
	m.recycleAff(job)
}

// LastCPU returns the CPU thread last ran on and whether it has run.
func (m *Machine) LastCPU(tid ThreadID) (int, bool) {
	if tid.Job < 0 || tid.Job >= len(m.aff) {
		return 0, false
	}
	table := m.aff[tid.Job]
	if tid.Thread < 0 || tid.Thread >= len(table) || table[tid.Thread] == noCPU {
		return 0, false
	}
	return int(table[tid.Thread]), true
}
