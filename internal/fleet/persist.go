package fleet

// The coordinator's persistence schema over internal/store: the node ledger,
// run registry, and sweep shard map are journaled as they change, so a
// restarted coordinator rehydrates its full routing table before serving.
// Nodes come back as pending-reconcile records — excluded from placement
// until their daemons re-register, at which point the reconcile protocol
// (reconcile.go) adopts whatever the nodes finished while the coordinator
// was down. Final run views carry the exact result bytes the serving node
// produced, which is what keeps a sweep resumed across a coordinator
// kill -9 byte-identical to an uninterrupted one.
//
// Store failures must never fail coordination: every append error is
// counted in pdpad_fleet_store_errors_total and the coordinator keeps
// serving from memory, exactly like the pool's persistence layer.

import (
	"encoding/json"
	"fmt"
	"time"

	"pdpasim/client"
	"pdpasim/internal/runqueue"
	"pdpasim/internal/store"
)

// Record kinds in the coordinator's store. They share a journal format with
// the pool's kinds but live in a separate store directory, so the prefixes
// only need to be self-consistent.
const (
	kindCoordNode  = "cnode"
	kindCoordRun   = "crun"
	kindCoordSweep = "csweep"
	kindCoordDel   = "cdel"
)

// defaultStoreCompactBytes bounds journal growth between compactions when
// the caller leaves Config.StoreCompactBytes zero.
const defaultStoreCompactBytes = 4 << 20

// nodeRecord is the durable form of one node-ledger entry. The latest
// record for an ID wins, so state flips (cordon, drain, death) are plain
// re-appends.
type nodeRecord struct {
	ID           string    `json:"id"`
	Name         string    `json:"name,omitempty"`
	Addr         string    `json:"addr"`
	CPUs         int       `json:"cpus,omitempty"`
	BaseWorkers  int       `json:"base_workers,omitempty"`
	MaxWorkers   int       `json:"max_workers,omitempty"`
	RegisteredAt time.Time `json:"registered_at"`
	Cordoned     bool      `json:"cordoned,omitempty"`
	Drained      bool      `json:"drained,omitempty"`
	ScaleDrained bool      `json:"scale_drained,omitempty"`
}

// crunRecord is the durable form of one coordinated run. NodeAddr lets
// recovery synthesize a pending-reconcile placeholder when the owning
// node's own record was lost; Final carries the terminal view verbatim,
// result bytes included.
type crunRecord struct {
	ID        string          `json:"id"`
	Key       string          `json:"key"`
	Spec      runqueue.Spec   `json:"spec"`
	DeadlineS float64         `json:"deadline_s,omitempty"`
	Submitted time.Time       `json:"submitted"`
	NodeID    string          `json:"node_id,omitempty"`
	NodeAddr  string          `json:"node_addr,omitempty"`
	RemoteID  string          `json:"remote_id,omitempty"`
	State     string          `json:"state"`
	CacheHit  bool            `json:"cache_hit,omitempty"`
	Deduped   bool            `json:"deduped,omitempty"`
	Requeues  int             `json:"requeues,omitempty"`
	Final     *client.RunView `json:"final,omitempty"`
}

// csweepRecord is the durable form of one sharded sweep: the resolved grid
// and its member run IDs in grid order. Member outcomes live in their own
// crunRecords.
type csweepRecord struct {
	ID        string             `json:"id"`
	Spec      runqueue.SweepSpec `json:"spec"`
	RunIDs    []string           `json:"run_ids"`
	Submitted time.Time          `json:"submitted"`
}

// delRecord marks a run ID as erased (sweep-unwind removal), so recovery
// does not resurrect it from earlier journal entries.
type delRecord struct {
	ID string `json:"id"`
}

// fleetRecovery is recoverState's result: the last surviving record per ID
// in first-seen order, plus how many records had to be dropped.
type fleetRecovery struct {
	nodes   []nodeRecord
	runs    []crunRecord
	sweeps  []csweepRecord
	dropped int
}

// recoverState folds a recovered record stream into the coordinator's
// durable state: later records for an ID supersede earlier ones, cdel
// erases a run, and anything undecodable or unrecognized is dropped and
// counted, never fatal. It is a pure function of the record slice — the
// fuzz target drives it with arbitrary journal wreckage.
func recoverState(recs []store.Record) fleetRecovery {
	var out fleetRecovery
	nodes := map[string]*nodeRecord{}
	runs := map[string]*crunRecord{}
	sweeps := map[string]*csweepRecord{}
	var nodeOrder, runOrder, sweepOrder []string
	for _, rec := range recs {
		switch rec.Kind {
		case kindCoordNode:
			var nr nodeRecord
			if err := json.Unmarshal(rec.Payload, &nr); err != nil || nr.ID == "" {
				out.dropped++
				continue
			}
			if _, seen := nodes[nr.ID]; !seen {
				nodeOrder = append(nodeOrder, nr.ID)
			}
			nodes[nr.ID] = &nr
		case kindCoordRun:
			var rr crunRecord
			if err := json.Unmarshal(rec.Payload, &rr); err != nil || rr.ID == "" {
				out.dropped++
				continue
			}
			if _, seen := runs[rr.ID]; !seen {
				runOrder = append(runOrder, rr.ID)
			}
			runs[rr.ID] = &rr
		case kindCoordSweep:
			var sr csweepRecord
			if err := json.Unmarshal(rec.Payload, &sr); err != nil || sr.ID == "" {
				out.dropped++
				continue
			}
			if _, seen := sweeps[sr.ID]; !seen {
				sweepOrder = append(sweepOrder, sr.ID)
			}
			sweeps[sr.ID] = &sr
		case kindCoordDel:
			var dr delRecord
			if err := json.Unmarshal(rec.Payload, &dr); err != nil || dr.ID == "" {
				out.dropped++
				continue
			}
			delete(runs, dr.ID)
		default:
			out.dropped++
		}
	}
	for _, id := range nodeOrder {
		out.nodes = append(out.nodes, *nodes[id])
	}
	seen := map[string]bool{} // an erased-then-recreated ID appears twice in runOrder
	for _, id := range runOrder {
		if rr, ok := runs[id]; ok && !seen[id] {
			seen[id] = true
			out.runs = append(out.runs, *rr)
		}
	}
	for _, id := range sweepOrder {
		out.sweeps = append(out.sweeps, *sweeps[id])
	}
	return out
}

// nodeRecordLocked snapshots a node for the journal.
func nodeRecordLocked(n *node) nodeRecord {
	return nodeRecord{
		ID:           n.id,
		Name:         n.name,
		Addr:         n.addr,
		CPUs:         n.cpus,
		BaseWorkers:  n.baseWorkers,
		MaxWorkers:   n.maxWorkers,
		RegisteredAt: n.registeredAt,
		Cordoned:     n.cordoned,
		Drained:      n.drained,
		ScaleDrained: n.scaleDrained,
	}
}

// runRecordLocked snapshots a run for the journal.
func (c *Coordinator) runRecordLocked(cr *crun) crunRecord {
	rec := crunRecord{
		ID:        cr.id,
		Key:       cr.key,
		Spec:      cr.spec,
		DeadlineS: cr.deadlineS,
		Submitted: cr.submitted,
		NodeID:    cr.nodeID,
		RemoteID:  cr.remoteID,
		State:     cr.state,
		CacheHit:  cr.cacheHit,
		Deduped:   cr.deduped,
		Requeues:  cr.requeues,
		Final:     cr.final,
	}
	if n := c.nodes[cr.nodeID]; n != nil {
		rec.NodeAddr = n.addr
	}
	return rec
}

// appendLocked journals one record; failures are counted, never fatal.
func (c *Coordinator) appendLocked(kind string, v any) {
	if c.store == nil {
		return
	}
	payload, err := json.Marshal(v)
	if err != nil {
		c.met.storeErrors.Inc()
		return
	}
	if err := c.store.Append(store.Record{Kind: kind, Payload: payload}); err != nil {
		c.met.storeErrors.Inc()
	}
}

func (c *Coordinator) persistNodeLocked(n *node) {
	c.appendLocked(kindCoordNode, nodeRecordLocked(n))
}

func (c *Coordinator) persistRunLocked(cr *crun) {
	if c.store == nil {
		return
	}
	c.appendLocked(kindCoordRun, c.runRecordLocked(cr))
	c.maybeCompactLocked()
}

func (c *Coordinator) persistSweepLocked(cs *csweep) {
	c.appendLocked(kindCoordSweep, csweepRecord{
		ID: cs.id, Spec: cs.spec, RunIDs: cs.runIDs, Submitted: cs.submitted,
	})
}

func (c *Coordinator) persistDeleteLocked(id string) {
	c.appendLocked(kindCoordDel, delRecord{ID: id})
}

// maybeCompactLocked rewrites the store from the live record set once the
// journal exceeds the configured bound — the same trigger discipline as the
// pool's store.
func (c *Coordinator) maybeCompactLocked() {
	if c.store.JournalBytes() < c.storeCompactBytes {
		return
	}
	if err := c.store.Compact(c.liveRecordsLocked()); err != nil {
		c.met.storeErrors.Inc()
	}
}

// liveRecordsLocked serializes the coordinator's durable state: every node
// still in the fleet (or still owed pending runs), every run in submission
// order, and every sweep. Drained tombstones with nothing pending are
// dropped here — that is how old incarnations expire from disk.
func (c *Coordinator) liveRecordsLocked() []store.Record {
	pendingOn := map[string]bool{}
	for _, cr := range c.runOrder {
		if cr.final == nil {
			pendingOn[cr.nodeID] = true
		}
	}
	var out []store.Record
	for _, n := range c.order {
		if n.drained && !pendingOn[n.id] {
			continue
		}
		if payload, err := json.Marshal(nodeRecordLocked(n)); err == nil {
			out = append(out, store.Record{Kind: kindCoordNode, Payload: payload})
		}
	}
	for _, cr := range c.runOrder {
		if payload, err := json.Marshal(c.runRecordLocked(cr)); err == nil {
			out = append(out, store.Record{Kind: kindCoordRun, Payload: payload})
		}
	}
	for _, cs := range c.swOrder {
		if payload, err := json.Marshal(csweepRecord{
			ID: cs.id, Spec: cs.spec, RunIDs: cs.runIDs, Submitted: cs.submitted,
		}); err == nil {
			out = append(out, store.Record{Kind: kindCoordSweep, Payload: payload})
		}
	}
	return out
}

// rehydrate rebuilds the routing table from recovered records. It runs
// inside NewCoordinator before the monitor starts and before any request is
// served, so no locking is needed. Recovered non-drained nodes come back
// pending-reconcile: unplaceable and unrefreshable until their daemon
// re-registers (or liveness declares them dead — their heartbeat clock
// restarts at recovery time, so a node that never returns is requeued after
// DeadAfter, respecting the requeue budget).
func (c *Coordinator) rehydrate(rec fleetRecovery) {
	now := c.now()
	for _, nr := range rec.nodes {
		if c.nodes[nr.ID] != nil {
			continue
		}
		n := &node{
			id:           nr.ID,
			name:         nr.Name,
			addr:         nr.Addr,
			cli:          client.New(nr.Addr, client.WithHTTPClient(c.hc)),
			cpus:         nr.CPUs,
			baseWorkers:  nr.BaseWorkers,
			maxWorkers:   nr.MaxWorkers,
			registeredAt: nr.RegisteredAt,
			lastBeat:     now,
			cordoned:     nr.Cordoned,
			drained:      nr.Drained,
			scaleDrained: nr.ScaleDrained,
		}
		n.pendingReconcile = !n.drained
		c.nodes[n.id] = n
		c.order = append(c.order, n)
		if seq, ok := seqOfID(n.id, "node-"); ok && seq > c.nodeSeq {
			c.nodeSeq = seq
		}
		c.met.recoveredNodes.Inc()
	}
	for i := range rec.runs {
		rr := &rec.runs[i]
		if c.runs[rr.ID] != nil {
			continue
		}
		cr := &crun{
			id:        rr.ID,
			key:       rr.Key,
			spec:      rr.Spec,
			deadlineS: rr.DeadlineS,
			submitted: rr.Submitted,
			nodeID:    rr.NodeID,
			remoteID:  rr.RemoteID,
			state:     rr.State,
			cacheHit:  rr.CacheHit,
			deduped:   rr.Deduped,
			requeues:  rr.Requeues,
		}
		if rr.Final != nil {
			f := *rr.Final
			cr.final = &f
			cr.lastView = &f
			cr.state = f.State
		}
		c.runs[cr.id] = cr
		c.runOrder = append(c.runOrder, cr)
		c.affinity[cr.key] = cr // records replay in submission order: last wins
		if seq, ok := seqOfID(cr.id, "run-"); ok && seq > c.runSeq {
			c.runSeq = seq
		}
		c.met.recoveredRuns.Inc()
		if cr.final != nil {
			continue
		}
		// A pending run re-attaches to its node with full reservation
		// accounting; a missing node record becomes a pending-reconcile
		// placeholder so the daemon at that address can still return and be
		// reconciled.
		n := c.nodes[cr.nodeID]
		if n == nil && cr.nodeID != "" && rr.NodeAddr != "" {
			n = &node{
				id:               cr.nodeID,
				addr:             rr.NodeAddr,
				cli:              client.New(rr.NodeAddr, client.WithHTTPClient(c.hc)),
				registeredAt:     now,
				lastBeat:         now,
				pendingReconcile: true,
			}
			c.nodes[n.id] = n
			c.order = append(c.order, n)
			if seq, ok := seqOfID(n.id, "node-"); ok && seq > c.nodeSeq {
				c.nodeSeq = seq
			}
		}
		if n != nil {
			n.assigned++
			n.costSum += estCost(cr.spec)
			cr.reserved = true
		} else {
			// No node and no address to wait for: the placement is
			// unrecoverable, so fail deterministically rather than hang.
			c.failLocked(cr, "recovered without a reachable placement")
		}
	}
	for _, sr := range rec.sweeps {
		if c.sweeps[sr.ID] != nil {
			continue
		}
		cs := &csweep{id: sr.ID, spec: sr.Spec, runIDs: sr.RunIDs, submitted: sr.Submitted}
		c.sweeps[cs.id] = cs
		c.swOrder = append(c.swOrder, cs)
		if seq, ok := seqOfID(cs.id, "sweep-"); ok && seq > c.swSeq {
			c.swSeq = seq
		}
		c.met.recoveredSweeps.Inc()
	}
	if rec.dropped > 0 {
		c.met.storeErrors.Add(uint64(rec.dropped))
		c.logf("fleet: dropped %d undecodable store records during recovery", rec.dropped)
	}
}

// seqOfID parses the numeric suffix of a "node-%03d" / "run-%06d" /
// "sweep-%06d" ID so recovered sequences continue instead of colliding.
func seqOfID(id, prefix string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(id, prefix+"%d", &n); err != nil {
		return 0, false
	}
	return n, true
}
