// Package fleet lifts pdpad from one process to a cluster: a coordinator
// owns admission and routing while N node daemons each run today's
// PDPA-governed runqueue.Pool unchanged. The division of labor follows the
// paper's two-level structure — per-job processor allocation stays local to
// each node (its pool's PDPA-MPL admission keeps governing what actually
// runs), and the coordinator only balances load across nodes, the way
// PDPA's upper level only decides how many things may run at once.
//
// Nodes register over HTTP (POST /v1/nodes/register), then send periodic
// heartbeats carrying capacity and queue-depth/MPL snapshots; a node whose
// heartbeats stop is marked unhealthy (no new placements) and then drained
// (its placed runs requeue onto surviving nodes, or fail deterministically
// when no healthy node remains). The coordinator serves the same v1 run and
// sweep surface as a standalone daemon — existing clients work unchanged —
// plus the coordinator-facing node plane (GET /v1/nodes, POST
// /v1/nodes/{id}/cordon|uncordon|drain), all speaking the v1 error envelope
// and pagination conventions.
//
// Sweep grids are sharded across healthy nodes member by member and the
// per-cell aggregates are reassembled in grid order by index, so a fleet
// sweep's cells are byte-identical to the same sweep on a single node —
// including after a node dies mid-sweep and survivors absorb its members.
package fleet

import (
	"time"
)

// NodeState is a node's lifecycle state as the coordinator reports it.
type NodeState string

// Node states, from the coordinator's point of view.
const (
	// StateHealthy: heartbeats current, placements allowed.
	StateHealthy NodeState = "healthy"
	// StateCordoned: placements stopped by hand; running and queued work
	// on the node proceeds, heartbeats keep flowing.
	StateCordoned NodeState = "cordoned"
	// StateUnhealthy: heartbeats missed past UnhealthyAfter; no new
	// placements, existing work left alone pending recovery or death.
	StateUnhealthy NodeState = "unhealthy"
	// StateDrained: the node is out of the fleet — heartbeats missed past
	// DeadAfter (its runs were requeued), or a manual drain evicted its
	// placed work.
	StateDrained NodeState = "drained"
)

// HealthConfig is the heartbeat-timeout state machine's timing. The zero
// value takes the defaults noted per field.
type HealthConfig struct {
	// HeartbeatInterval is the cadence the coordinator directs nodes to
	// send heartbeats at (default 2s).
	HeartbeatInterval time.Duration
	// UnhealthyAfter is the heartbeat silence after which a node stops
	// receiving placements (default 3× HeartbeatInterval).
	UnhealthyAfter time.Duration
	// DeadAfter is the silence after which the node is drained and its
	// placed runs are requeued (default 2× UnhealthyAfter).
	DeadAfter time.Duration
}

func (h HealthConfig) withDefaults() HealthConfig {
	if h.HeartbeatInterval <= 0 {
		h.HeartbeatInterval = 2 * time.Second
	}
	if h.UnhealthyAfter <= 0 {
		h.UnhealthyAfter = 3 * h.HeartbeatInterval
	}
	if h.DeadAfter <= 0 {
		h.DeadAfter = 2 * h.UnhealthyAfter
	}
	if h.UnhealthyAfter < h.HeartbeatInterval {
		h.UnhealthyAfter = h.HeartbeatInterval
	}
	if h.DeadAfter < h.UnhealthyAfter {
		h.DeadAfter = h.UnhealthyAfter
	}
	return h
}

// Liveness is the heartbeat-timeout state machine: a pure function of how
// long a node has been silent, so its transitions are exactly testable.
func (h HealthConfig) Liveness(silence time.Duration) NodeState {
	switch {
	case silence >= h.DeadAfter:
		return StateDrained
	case silence >= h.UnhealthyAfter:
		return StateUnhealthy
	default:
		return StateHealthy
	}
}

// CombineState folds the liveness verdict with the manual flags into the
// state GET /v1/nodes reports. Drained (by death or by hand) dominates;
// a silent node reports unhealthy even while cordoned, because liveness is
// the more urgent fact; cordon otherwise masks healthy.
func CombineState(live NodeState, cordoned, drained bool) NodeState {
	switch {
	case drained || live == StateDrained:
		return StateDrained
	case live == StateUnhealthy:
		return StateUnhealthy
	case cordoned:
		return StateCordoned
	default:
		return StateHealthy
	}
}

// RegisterRequest is the node-facing POST /v1/nodes/register payload: a
// node announces its address, wire revision, and capacity.
type RegisterRequest struct {
	// Name is an optional human label; the coordinator assigns the ID.
	Name string `json:"name,omitempty"`
	// Addr is the node's advertised base URL (how the coordinator reaches
	// its v1 surface).
	Addr string `json:"addr"`
	// APIRevision is the wire revision the node speaks; a mismatch with
	// the coordinator's is refused with code incompatible_revision.
	APIRevision int `json:"api_revision"`
	// CPUs, BaseWorkers, and MaxWorkers describe capacity: the machine
	// size its simulations model and the pool's MPL bounds.
	CPUs        int `json:"cpus,omitempty"`
	BaseWorkers int `json:"base_workers,omitempty"`
	MaxWorkers  int `json:"max_workers,omitempty"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	// ID is the coordinator-assigned node ID, used in the heartbeat path
	// and the node-plane endpoints.
	ID string `json:"id"`
	// HeartbeatIntervalS directs the node's heartbeat cadence.
	HeartbeatIntervalS float64 `json:"heartbeat_interval_s"`
}

// HeartbeatRequest is the periodic node → coordinator liveness report with
// the node's current queue-depth/MPL snapshot.
type HeartbeatRequest struct {
	QueueDepth int  `json:"queue_depth"`
	Inflight   int  `json:"inflight"`
	Draining   bool `json:"draining,omitempty"`
}

// HeartbeatResponse tells the node how the coordinator currently sees it,
// so a cordoned or drained node can log the fact.
type HeartbeatResponse struct {
	State NodeState `json:"state"`
}
