package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"pdpasim"
	"pdpasim/client"
	"pdpasim/internal/faults"
	"pdpasim/internal/metrics"
	"pdpasim/internal/obs"
	"pdpasim/internal/runqueue"
	"pdpasim/internal/server"
	"pdpasim/internal/store"
	"pdpasim/internal/sweep"
)

// maxRequestBody mirrors the node daemon's submission size cap.
const maxRequestBody = 1 << 20

// Config parameterizes a Coordinator. The zero value works: round-robin
// placement, default heartbeat timing, three requeues per run.
type Config struct {
	// Placement selects the routing strategy (default round_robin).
	Placement Placement
	// Health is the heartbeat-timeout state machine's timing.
	Health HealthConfig
	// MaxRequeues bounds how many times one run may be re-placed after
	// node deaths or drains before it fails deterministically (default 3;
	// negative means 0).
	MaxRequeues int
	// Faults injects failures at SiteNodeDispatch (per dispatch attempt)
	// and SiteHTTPRequest (per inbound request). Nil is a no-op.
	Faults *faults.Injector
	// HTTPClient carries coordinator → node traffic (default a fresh
	// client; tests inject one wired to httptest servers).
	HTTPClient *http.Client
	// Now is the clock (default time.Now; tests freeze it).
	Now func() time.Time
	// Logf receives operational log lines (default: discarded).
	Logf func(format string, args ...any)
	// Store, when non-nil, journals the node ledger, run registry, and
	// sweep shard map so a restarted coordinator rehydrates its routing
	// table before serving (see persist.go). The caller owns the store's
	// lifecycle; Close does not close it.
	Store *store.Store
	// StoreCompactBytes bounds journal growth between compactions
	// (default 4 MiB).
	StoreCompactBytes int64
	// Elastic configures the queue-depth-driven autoscaling hooks.
	Elastic ElasticConfig
}

// ElasticConfig drives the coordinator's elasticity hooks off the
// queue-depth heartbeats: drain-on-idle retires surplus nodes, and
// join-on-backlog signals that the fleet wants another one. Both surface
// as pdpad_fleet_scale_* metrics whether or not callbacks are installed.
type ElasticConfig struct {
	// DrainIdleAfter: a healthy node with no placements, an empty queue,
	// and nothing inflight for this long is scale-drained — at most one
	// node per monitor tick, never below MinNodes. 0 disables.
	DrainIdleAfter time.Duration
	// MinNodes is the floor drain-on-idle respects (0 means 1).
	MinNodes int
	// JoinBacklogDepth: when the fleet-wide queued backlog reaches this
	// depth, one scale-up signal fires per backlog episode (the flag
	// rearms when the backlog falls back below the threshold). 0 disables.
	JoinBacklogDepth int
	// OnScaleDown observes a scale-drain, called with the node's ID.
	OnScaleDown func(nodeID string)
	// OnScaleUp observes a backlog signal, called with the queued depth.
	OnScaleUp func(backlog int)
}

// node is the coordinator's record of one registered node.
type node struct {
	id   string
	name string
	addr string
	cli  *client.Client

	cpus        int
	baseWorkers int
	maxWorkers  int

	registeredAt time.Time
	lastBeat     time.Time
	beats        uint64
	queueDepth   int
	inflight     int
	nodeDraining bool

	cordoned bool
	drained  bool
	// scaleDrained marks a drain decided by the elasticity hooks; its
	// heartbeats answer "drained" (the agent leaves the fleet) instead of
	// the 404 that would make it re-register.
	scaleDrained bool
	// pendingReconcile marks a node rehydrated from the store that has not
	// re-registered since the coordinator restarted: no placements, no
	// refreshes, heartbeats answer 404 so its agent re-registers and the
	// reconcile protocol runs. Liveness still applies — a recovered node
	// that never returns is declared dead and its runs requeue.
	pendingReconcile bool

	// assigned and costSum are the coordinator-local placement ledgers:
	// non-terminal runs placed here, and their summed LPT cost estimate.
	assigned int
	costSum  float64
}

// crun is the coordinator's record of one run it has placed somewhere.
type crun struct {
	id        string
	key       string
	spec      runqueue.Spec
	deadlineS float64
	submitted time.Time

	// nodeID/remoteID locate the current placement; gen increments on
	// every re-placement so stale refreshes cannot commit.
	nodeID   string
	remoteID string
	gen      int
	reserved bool

	state    string
	cacheHit bool
	deduped  bool
	requeues int

	// lastView is the latest full view fetched from the serving node
	// (ID rewritten); final is set exactly once, when the run reaches a
	// terminal state, and survives the serving node's death.
	lastView *client.RunView
	final    *client.RunView
}

// csweep is the coordinator's record of one sharded sweep.
type csweep struct {
	id        string
	spec      runqueue.SweepSpec // defaults resolved
	runIDs    []string           // coordinator run IDs, grid order
	submitted time.Time
}

// Coordinator owns fleet admission and routing: it speaks the same v1 run
// and sweep surface as a standalone daemon, plus the node plane. Create
// with NewCoordinator; it implements http.Handler.
type Coordinator struct {
	mux       *http.ServeMux
	placement Placement
	health    HealthConfig
	maxReq    int
	flts      *faults.Injector
	hc        *http.Client
	now       func() time.Time
	logf      func(string, ...any)
	started   time.Time

	mu       sync.Mutex
	draining bool
	nodes    map[string]*node
	order    []*node // registration order
	nodeSeq  int
	rrNext   int
	runs     map[string]*crun
	runOrder []*crun // submission order
	runSeq   int
	affinity map[string]*crun // spec key → owning run
	sweeps   map[string]*csweep
	swOrder  []*csweep
	swSeq    int

	store             *store.Store
	storeCompactBytes int64
	elastic           ElasticConfig
	idleSince         map[string]time.Time // node ID → first tick observed idle
	backlogActive     bool                 // one scale-up signal per backlog episode

	reg *obs.Registry
	met coordMetrics

	stopMonitor chan struct{}
	monitorDone chan struct{}
}

type coordMetrics struct {
	heartbeats       *obs.Counter
	dispatches       *obs.Counter
	dispatchFailures *obs.Counter
	requeues         *obs.Counter
	requeueFailures  *obs.Counter
	nodeDeaths       *obs.Counter
	recovered        *obs.Counter
	storeErrors      *obs.Counter
	recoveredNodes   *obs.Counter
	recoveredRuns    *obs.Counter
	recoveredSweeps  *obs.Counter
	reconciled       *obs.Counter
	adopted          *obs.Counter
	scaleDown        *obs.Counter
	scaleUp          *obs.Counter
}

// NewCoordinator returns a running coordinator (its heartbeat monitor is
// started). Stop it with Close.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	pl, err := ParsePlacement(string(cfg.Placement))
	if err != nil {
		return nil, err
	}
	if cfg.MaxRequeues == 0 {
		cfg.MaxRequeues = 3
	}
	if cfg.MaxRequeues < 0 {
		cfg.MaxRequeues = 0
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.StoreCompactBytes <= 0 {
		cfg.StoreCompactBytes = defaultStoreCompactBytes
	}
	c := &Coordinator{
		mux:               http.NewServeMux(),
		placement:         pl,
		health:            cfg.Health.withDefaults(),
		maxReq:            cfg.MaxRequeues,
		flts:              cfg.Faults,
		hc:                cfg.HTTPClient,
		now:               cfg.Now,
		logf:              cfg.Logf,
		started:           cfg.Now(),
		nodes:             map[string]*node{},
		runs:              map[string]*crun{},
		affinity:          map[string]*crun{},
		sweeps:            map[string]*csweep{},
		store:             cfg.Store,
		storeCompactBytes: cfg.StoreCompactBytes,
		elastic:           cfg.Elastic,
		idleSince:         map[string]time.Time{},
		reg:               obs.NewRegistry(),
		stopMonitor:       make(chan struct{}),
		monitorDone:       make(chan struct{}),
	}
	c.met = coordMetrics{
		heartbeats:       c.reg.Counter("pdpad_fleet_heartbeats_total", "Heartbeats accepted from registered nodes."),
		dispatches:       c.reg.Counter("pdpad_fleet_dispatches_total", "Runs successfully placed on a node."),
		dispatchFailures: c.reg.Counter("pdpad_fleet_dispatch_failures_total", "Dispatch attempts that failed and triggered failover."),
		requeues:         c.reg.Counter("pdpad_fleet_requeues_total", "Runs re-placed after a node death or drain."),
		requeueFailures:  c.reg.Counter("pdpad_fleet_requeue_failures_total", "Runs failed because re-placement was impossible or exhausted."),
		nodeDeaths:       c.reg.Counter("pdpad_fleet_node_deaths_total", "Nodes declared dead after missed heartbeats."),
		recovered: c.reg.LabeledCounter("pdpad_recovered_panics_total",
			"Panics recovered without taking the daemon down, by origin.", "where", "http"),
		storeErrors:     c.reg.Counter("pdpad_fleet_store_errors_total", "Coordinator store appends, compactions, or recovered records that failed (never fatal)."),
		recoveredNodes:  c.reg.Counter("pdpad_fleet_recovered_nodes_total", "Node-ledger entries rehydrated from the store at startup."),
		recoveredRuns:   c.reg.Counter("pdpad_fleet_recovered_runs_total", "Run-registry entries rehydrated from the store at startup."),
		recoveredSweeps: c.reg.Counter("pdpad_fleet_recovered_sweeps_total", "Sweep shard maps rehydrated from the store at startup."),
		reconciled:      c.reg.Counter("pdpad_fleet_reconciled_runs_total", "Runs whose state was settled with a returning node after a coordinator restart."),
		adopted:         c.reg.Counter("pdpad_fleet_adopted_results_total", "Terminal results returning nodes reported during reconcile."),
		scaleDown:       c.reg.Counter("pdpad_fleet_scale_down_signals_total", "Nodes scale-drained by the drain-on-idle elasticity hook."),
		scaleUp:         c.reg.Counter("pdpad_fleet_scale_up_signals_total", "Backlog episodes that signalled the join-on-backlog elasticity hook."),
	}
	c.reg.GaugeFunc("pdpad_goroutines", "Live goroutines in the serving process (leak smoke-checks read this).",
		func() float64 { return float64(runtime.NumGoroutine()) })
	c.reg.GaugeFunc("pdpad_fleet_nodes", "Registered nodes not yet drained.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := 0
		for _, nd := range c.order {
			if !nd.drained {
				n++
			}
		}
		return float64(n)
	})
	c.reg.GaugeFunc("pdpad_fleet_nodes_healthy", "Nodes currently eligible for placements.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.eligibleLocked(nil)))
	})

	c.mux.HandleFunc("POST /v1/runs", c.handleSubmit)
	c.mux.HandleFunc("GET /v1/runs", c.handleListRuns)
	c.mux.HandleFunc("GET /v1/runs/{id}", c.handleGetRun)
	c.mux.HandleFunc("DELETE /v1/runs/{id}", c.handleCancelRun)
	c.mux.HandleFunc("GET /v1/runs/{id}/events", c.handleEvents)
	c.mux.HandleFunc("GET /v1/runs/{id}/trace", c.handleTrace)
	c.mux.HandleFunc("POST /v1/sweeps", c.handleSubmitSweep)
	c.mux.HandleFunc("GET /v1/sweeps", c.handleListSweeps)
	c.mux.HandleFunc("GET /v1/sweeps/{id}", c.handleGetSweep)
	c.mux.HandleFunc("DELETE /v1/sweeps/{id}", c.handleCancelSweep)
	c.mux.HandleFunc("POST /v1/nodes/register", c.handleRegister)
	c.mux.HandleFunc("POST /v1/nodes/{id}/heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("GET /v1/nodes", c.handleListNodes)
	c.mux.HandleFunc("POST /v1/nodes/{id}/cordon", c.handleCordon)
	c.mux.HandleFunc("POST /v1/nodes/{id}/uncordon", c.handleUncordon)
	c.mux.HandleFunc("POST /v1/nodes/{id}/drain", c.handleDrainNode)
	c.mux.HandleFunc("GET /v1/version", c.handleVersion)
	c.mux.HandleFunc("GET /healthz", c.handleHealth)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)

	// Rehydrate the routing table from the store before serving a single
	// request and before the monitor can rule on liveness.
	if c.store != nil {
		c.rehydrate(recoverState(c.store.TakeRecovered()))
	}

	go c.monitor()
	return c, nil
}

// ServeHTTP implements http.Handler with the same panic-recovery and
// fault-injection front door as the node daemon.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if rec == http.ErrAbortHandler { //nolint:errorlint // sentinel, compared by identity
			panic(rec)
		}
		c.met.recovered.Inc()
		server.WriteError(w, http.StatusInternalServerError, server.CodeInternal, fmt.Errorf("internal error: %v", rec))
	}()
	if err := c.flts.Hit(r.Context(), faults.SiteHTTPRequest); err != nil {
		server.WriteError(w, http.StatusServiceUnavailable, server.CodeUnavailable, fmt.Errorf("injected fault: %w", err))
		return
	}
	c.mux.ServeHTTP(w, r)
}

// Metrics exposes the coordinator's metric registry — the same numbers
// /metrics renders, readable in-process by tests and the scenario runner.
func (c *Coordinator) Metrics() *obs.Registry { return c.reg }

// Close stops the heartbeat monitor and drops pooled node connections.
func (c *Coordinator) Close() {
	select {
	case <-c.stopMonitor:
	default:
		close(c.stopMonitor)
	}
	<-c.monitorDone
	c.hc.CloseIdleConnections()
}

// Drain stops admissions and waits until every coordinated run is terminal
// (or ctx expires).
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	for {
		pending := c.pendingRuns()
		if len(pending) == 0 {
			return nil
		}
		for _, cr := range pending {
			c.refresh(ctx, cr)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fleet: drain interrupted with %d runs pending: %w", len(c.pendingRuns()), ctx.Err())
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func (c *Coordinator) pendingRuns() []*crun {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*crun
	for _, cr := range c.runOrder {
		if cr.final == nil {
			out = append(out, cr)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Node liveness and the monitor goroutine.

// monitor periodically re-evaluates node liveness and requeues the runs of
// nodes that crossed DeadAfter.
func (c *Coordinator) monitor() {
	defer close(c.monitorDone)
	interval := c.health.HeartbeatInterval / 2
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stopMonitor:
			return
		case <-t.C:
			c.tick()
		}
	}
}

// tick is one monitor pass: declare dead nodes drained, requeue their
// non-terminal runs, and evaluate the elasticity hooks.
func (c *Coordinator) tick() {
	now := c.now()
	var orphans []*crun
	c.mu.Lock()
	for _, n := range c.order {
		if n.drained {
			continue
		}
		if c.health.Liveness(now.Sub(n.lastBeat)) != StateDrained {
			continue
		}
		n.drained = true
		c.met.nodeDeaths.Inc()
		c.persistNodeLocked(n)
		delete(c.idleSince, n.id)
		c.logf("fleet: node %s (%s) declared dead after %v of silence", n.id, n.addr, now.Sub(n.lastBeat))
		orphans = append(orphans, c.runsOnLocked(n.id)...)
	}
	scaledDown := c.scaleDownLocked(now)
	backlog := c.scaleUpLocked()
	c.mu.Unlock()
	for _, cr := range orphans {
		c.requeue(context.Background(), cr, "node died")
	}
	if scaledDown != "" && c.elastic.OnScaleDown != nil {
		c.elastic.OnScaleDown(scaledDown)
	}
	if backlog > 0 && c.elastic.OnScaleUp != nil {
		c.elastic.OnScaleUp(backlog)
	}
}

// scaleDownLocked implements drain-on-idle: a node that has held no
// placements, an empty queue, and nothing inflight for DrainIdleAfter is
// scale-drained — at most one per tick, never below MinNodes. Returns the
// drained node's ID, or "".
func (c *Coordinator) scaleDownLocked(now time.Time) string {
	if c.elastic.DrainIdleAfter <= 0 {
		return ""
	}
	min := c.elastic.MinNodes
	if min < 1 {
		min = 1
	}
	eligible := c.eligibleLocked(nil)
	var victim *node
	var victimSince time.Time
	for _, n := range eligible {
		idle := n.assigned == 0 && n.queueDepth == 0 && n.inflight == 0
		if !idle {
			delete(c.idleSince, n.id)
			continue
		}
		since, ok := c.idleSince[n.id]
		if !ok {
			c.idleSince[n.id] = now
			continue
		}
		if now.Sub(since) < c.elastic.DrainIdleAfter {
			continue
		}
		if victim == nil || since.Before(victimSince) {
			victim, victimSince = n, since
		}
	}
	if victim == nil || len(eligible) <= min {
		return ""
	}
	victim.drained = true
	victim.scaleDrained = true
	delete(c.idleSince, victim.id)
	c.met.scaleDown.Inc()
	c.persistNodeLocked(victim)
	c.logf("fleet: node %s idle for %v, scale-drained (fleet has %d eligible nodes, floor %d)",
		victim.id, now.Sub(victimSince), len(eligible), min)
	return victim.id
}

// scaleUpLocked implements join-on-backlog: when the fleet-wide queued
// depth reaches JoinBacklogDepth, one signal fires per backlog episode.
// Returns the depth when a signal fires, 0 otherwise.
func (c *Coordinator) scaleUpLocked() int {
	if c.elastic.JoinBacklogDepth <= 0 {
		return 0
	}
	backlog := 0
	for _, n := range c.order {
		if n.drained {
			continue
		}
		backlog += n.queueDepth
	}
	if backlog >= c.elastic.JoinBacklogDepth {
		if c.backlogActive {
			return 0
		}
		c.backlogActive = true
		c.met.scaleUp.Inc()
		c.logf("fleet: queued backlog reached %d (threshold %d); signalling scale-up", backlog, c.elastic.JoinBacklogDepth)
		return backlog
	}
	c.backlogActive = false
	return 0
}

// runsOnLocked returns the non-terminal runs currently placed on a node.
func (c *Coordinator) runsOnLocked(nodeID string) []*crun {
	var out []*crun
	for _, cr := range c.runOrder {
		if cr.final == nil && cr.nodeID == nodeID {
			out = append(out, cr)
		}
	}
	return out
}

// eligibleLocked returns the nodes placements may target, in registration
// order: live heartbeats, not cordoned, not drained, not self-draining,
// and not awaiting post-restart reconciliation.
func (c *Coordinator) eligibleLocked(exclude map[string]bool) []*node {
	now := c.now()
	var out []*node
	for _, n := range c.order {
		if n.drained || n.cordoned || n.nodeDraining || n.pendingReconcile || exclude[n.id] {
			continue
		}
		if c.health.Liveness(now.Sub(n.lastBeat)) != StateHealthy {
			continue
		}
		out = append(out, n)
	}
	return out
}

func (c *Coordinator) reserveLocked(cr *crun, n *node) {
	n.assigned++
	n.costSum += estCost(cr.spec)
	cr.nodeID = n.id
	cr.remoteID = ""
	cr.gen++
	cr.reserved = true
}

func (c *Coordinator) releaseLocked(cr *crun) {
	if !cr.reserved {
		return
	}
	cr.reserved = false
	if n := c.nodes[cr.nodeID]; n != nil {
		n.assigned--
		n.costSum -= estCost(cr.spec)
	}
}

// transferLocked moves a recovered run's placement onto a returning node's
// new incarnation. Unlike reserveLocked it keeps remoteID: the node still
// holds the run under that ID, and reconcile is about to ask it for the
// authoritative state.
func (c *Coordinator) transferLocked(cr *crun, n *node) {
	c.releaseLocked(cr)
	n.assigned++
	n.costSum += estCost(cr.spec)
	cr.nodeID = n.id
	cr.gen++
	cr.reserved = true
}

// ---------------------------------------------------------------------------
// Placement and dispatch.

// errDraining and errNoHealthy are coordinator-level admission rejections.
var (
	errDraining  = errors.New("fleet: coordinator is draining")
	errNoHealthy = errors.New("fleet: no healthy node available for placement")
)

// place picks a node for cr and dispatches it, failing over across nodes
// until one accepts or none remain. On success cr is committed (remoteID
// set); on failure the reservation is released and the last error returned.
func (c *Coordinator) place(ctx context.Context, cr *crun, exclude map[string]bool) error {
	if exclude == nil {
		exclude = map[string]bool{}
	}
	body := client.SubmitRunRequest{
		Workload:  mirrorSpec(cr.spec).Workload,
		Options:   mirrorSpec(cr.spec).Options,
		DeadlineS: cr.deadlineS,
	}
	var lastErr error
	for {
		c.mu.Lock()
		cands := c.eligibleLocked(exclude)
		if len(cands) == 0 {
			c.mu.Unlock()
			if lastErr != nil {
				return lastErr
			}
			return errNoHealthy
		}
		n := c.pickLocked(cands, estCost(cr.spec))
		c.reserveLocked(cr, n)
		gen := cr.gen
		cli := n.cli
		c.mu.Unlock()

		err := c.flts.Hit(ctx, faults.SiteNodeDispatch)
		var res client.SubmitResult
		if err == nil {
			res, err = cli.SubmitRun(ctx, body)
		} else {
			err = fmt.Errorf("fleet: injected dispatch fault for node %s: %w", n.id, err)
		}
		if err == nil {
			c.met.dispatches.Inc()
			c.mu.Lock()
			if cr.gen == gen {
				cr.remoteID = res.ID
				cr.state = res.State
				cr.cacheHit = res.CacheHit
				cr.deduped = res.Deduped
				c.persistRunLocked(cr)
			}
			c.mu.Unlock()
			return nil
		}
		lastErr = err
		c.mu.Lock()
		if cr.gen == gen {
			c.releaseLocked(cr)
		}
		c.mu.Unlock()
		var api *client.APIError
		if errors.As(err, &api) && api.Status >= 400 && api.Status < 500 &&
			api.Status != http.StatusTooManyRequests {
			// The node judged the request itself bad; every node would.
			return err
		}
		c.met.dispatchFailures.Inc()
		c.logf("fleet: dispatch to node %s failed: %v", n.id, err)
		exclude[n.id] = true
	}
}

// requeue re-places a run after its node died or was drained, failing it
// deterministically once the requeue budget is spent or no node remains.
func (c *Coordinator) requeue(ctx context.Context, cr *crun, reason string) {
	c.requeueEx(ctx, cr, reason, true)
}

// requeueEx is requeue with the losing node's exclusion made optional:
// reconcile re-places runs a returning node has no record of, and that node
// is a legitimate target again.
func (c *Coordinator) requeueEx(ctx context.Context, cr *crun, reason string, excludeFrom bool) {
	c.mu.Lock()
	if cr.final != nil {
		c.mu.Unlock()
		return
	}
	c.releaseLocked(cr)
	cr.requeues++
	c.met.requeues.Inc()
	from := cr.nodeID
	if cr.requeues > c.maxReq {
		c.met.requeueFailures.Inc()
		c.failLocked(cr, fmt.Sprintf("%s (node %s); requeue budget of %d exhausted", reason, from, c.maxReq))
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	exclude := map[string]bool{}
	if excludeFrom {
		exclude[from] = true
	}
	if err := c.place(ctx, cr, exclude); err != nil {
		c.met.requeueFailures.Inc()
		c.mu.Lock()
		c.failLocked(cr, fmt.Sprintf("%s (node %s); re-placement failed: %v", reason, from, err))
		c.mu.Unlock()
		return
	}
	c.logf("fleet: run %s requeued from node %s (%s)", cr.id, from, reason)
}

// failLocked terminally fails a run coordinator-side, synthesizing the
// final view so the failure survives regardless of node state.
func (c *Coordinator) failLocked(cr *crun, msg string) {
	if cr.final != nil {
		return
	}
	c.releaseLocked(cr)
	cr.state = "failed"
	now := c.now()
	v := client.RunView{
		ID:          cr.id,
		State:       "failed",
		Error:       msg,
		SubmittedAt: cr.submitted,
		FinishedAt:  &now,
		CacheKey:    cr.key,
		Spec:        mirrorSpec(cr.spec),
	}
	cr.final = &v
	cr.lastView = &v
	c.persistRunLocked(cr)
	c.logf("fleet: run %s failed: %s", cr.id, msg)
}

// refresh pulls a run's current view from its node, committing it unless
// the run was re-placed meanwhile. Fetch errors leave the run as-is (the
// monitor decides the node's fate, not a read path).
func (c *Coordinator) refresh(ctx context.Context, cr *crun) {
	c.mu.Lock()
	if cr.final != nil || cr.remoteID == "" {
		c.mu.Unlock()
		return
	}
	n := c.nodes[cr.nodeID]
	if n != nil && n.pendingReconcile {
		// The node has not re-registered since the coordinator restart;
		// its old address may answer for a different incarnation.
		n = nil
	}
	remoteID, gen := cr.remoteID, cr.gen
	c.mu.Unlock()
	if n == nil {
		return
	}
	v, err := n.cli.Run(ctx, remoteID)
	if err != nil {
		return
	}
	v.ID = cr.id
	c.mu.Lock()
	defer c.mu.Unlock()
	if cr.gen != gen || cr.final != nil {
		return
	}
	cr.lastView = &v
	cr.state = v.State
	if v.Terminal() {
		cr.final = &v
		c.releaseLocked(cr)
		c.persistRunLocked(cr)
	}
}

// ---------------------------------------------------------------------------
// Submission.

type submitOutcome struct {
	id       string
	state    string
	cacheHit bool
	deduped  bool
}

// deadEnd reports whether an affinity entry is unusable for dedup: the run
// ended in failure or cancellation, so a resubmission starts fresh.
func deadEnd(cr *crun) bool {
	return cr.final != nil && cr.final.State != "done"
}

// submitOne admits one spec: deduplicated against the fleet-wide affinity
// index, or placed fresh. The returned crun is non-nil exactly when a new
// run was created (the caller unwinds it on batch failure).
func (c *Coordinator) submitOne(ctx context.Context, spec runqueue.Spec, deadlineS float64) (submitOutcome, *crun, error) {
	key := spec.Key()
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return submitOutcome{}, nil, errDraining
	}
	if ex := c.affinity[key]; ex != nil && !deadEnd(ex) {
		out := submitOutcome{id: ex.id, state: ex.state}
		if ex.final != nil {
			out.state = "done"
			out.cacheHit = true
		} else {
			out.deduped = true
		}
		c.mu.Unlock()
		return out, nil, nil
	}
	c.runSeq++
	cr := &crun{
		id:        fmt.Sprintf("run-%06d", c.runSeq),
		key:       key,
		spec:      spec,
		deadlineS: deadlineS,
		submitted: c.now(),
		state:     "queued",
	}
	c.runs[cr.id] = cr
	c.runOrder = append(c.runOrder, cr)
	c.affinity[key] = cr
	c.mu.Unlock()
	if err := c.place(ctx, cr, nil); err != nil {
		c.remove(cr)
		return submitOutcome{}, nil, err
	}
	c.mu.Lock()
	out := submitOutcome{id: cr.id, state: cr.state, cacheHit: cr.cacheHit, deduped: cr.deduped}
	c.mu.Unlock()
	return out, cr, nil
}

// remove erases a run that never committed (failed dispatch, sweep unwind).
func (c *Coordinator) remove(cr *crun) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.releaseLocked(cr)
	c.persistDeleteLocked(cr.id)
	delete(c.runs, cr.id)
	if c.affinity[cr.key] == cr {
		delete(c.affinity, cr.key)
	}
	for i, other := range c.runOrder {
		if other == cr {
			c.runOrder = append(c.runOrder[:i], c.runOrder[i+1:]...)
			break
		}
	}
}

// ---------------------------------------------------------------------------
// HTTP plumbing shared by the handlers.

// decodeBody mirrors the node daemon's request decoding: 1 MiB cap (413),
// unknown fields rejected (400).
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			server.WriteError(w, http.StatusRequestEntityTooLarge, server.CodePayloadTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		server.WriteError(w, http.StatusBadRequest, server.CodeInvalidRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

// writeSubmitError maps an admission or dispatch error onto the envelope.
// Envelope errors from nodes are relayed verbatim — status, code, and retry
// hint — so a fleet client sees exactly what a standalone client would.
func writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errDraining):
		server.WriteError(w, http.StatusServiceUnavailable, server.CodeDraining, err)
	case errors.Is(err, errNoHealthy):
		server.WriteError(w, http.StatusServiceUnavailable, server.CodeNoHealthyNodes, err)
	default:
		relayError(w, err)
	}
}

// relayError forwards a node's envelope error as-is, or wraps transport
// failures as 502 node_unreachable.
func relayError(w http.ResponseWriter, err error) {
	var api *client.APIError
	if errors.As(err, &api) {
		if api.RetryAfterSeconds > 0 {
			server.WriteRetryError(w, api.Status, api.Code, errors.New(api.Message), api.RetryAfterSeconds)
		} else {
			server.WriteError(w, api.Status, api.Code, errors.New(api.Message))
		}
		return
	}
	server.WriteError(w, http.StatusBadGateway, server.CodeNodeUnreachable, err)
}

// mirrorSpec converts the runqueue spec to the client mirror via JSON: the
// tags match field for field, so the round trip is lossless.
func mirrorSpec(s runqueue.Spec) client.Spec {
	b, err := json.Marshal(s)
	if err != nil {
		return client.Spec{}
	}
	var out client.Spec
	if err := json.Unmarshal(b, &out); err != nil {
		return client.Spec{}
	}
	return out
}

// viewLocked renders a run for the wire. client.RunView's tags mirror the
// node daemon's RunView exactly, so coordinator responses are shaped
// identically to standalone ones.
func (c *Coordinator) viewLocked(cr *crun, includeResult bool) client.RunView {
	var v client.RunView
	switch {
	case cr.final != nil:
		v = *cr.final
	case cr.lastView != nil:
		v = *cr.lastView
	default:
		v = client.RunView{
			ID: cr.id, State: cr.state, SubmittedAt: cr.submitted,
			CacheKey: cr.key, Spec: mirrorSpec(cr.spec),
		}
	}
	if !includeResult {
		v.Result = nil
	}
	return v
}

// ---------------------------------------------------------------------------
// Run plane.

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req server.SubmitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.DeadlineS < 0 {
		server.WriteError(w, http.StatusBadRequest, server.CodeInvalidRequest,
			fmt.Errorf("negative deadline_s %v", req.DeadlineS))
		return
	}
	spec := runqueue.Spec{Workload: req.Workload, Options: req.Options}
	if err := spec.Validate(); err != nil {
		server.WriteError(w, http.StatusBadRequest, server.CodeInvalidRequest, err)
		return
	}
	out, _, err := c.submitOne(r.Context(), spec, req.DeadlineS)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	status := http.StatusAccepted
	if out.cacheHit {
		status = http.StatusOK
	}
	server.WriteJSON(w, status, server.SubmitResponse{
		ID: out.id, State: out.state, CacheHit: out.cacheHit, Deduped: out.deduped,
	})
}

func (c *Coordinator) lookupRun(w http.ResponseWriter, id string) *crun {
	c.mu.Lock()
	cr := c.runs[id]
	c.mu.Unlock()
	if cr == nil {
		server.WriteError(w, http.StatusNotFound, server.CodeNotFound,
			fmt.Errorf("fleet: no run %q", id))
	}
	return cr
}

func (c *Coordinator) handleGetRun(w http.ResponseWriter, r *http.Request) {
	cr := c.lookupRun(w, r.PathValue("id"))
	if cr == nil {
		return
	}
	c.refresh(r.Context(), cr)
	c.mu.Lock()
	v := c.viewLocked(cr, true)
	c.mu.Unlock()
	server.WriteJSON(w, http.StatusOK, v)
}

func (c *Coordinator) handleCancelRun(w http.ResponseWriter, r *http.Request) {
	cr := c.lookupRun(w, r.PathValue("id"))
	if cr == nil {
		return
	}
	c.mu.Lock()
	final := cr.final
	n := c.nodes[cr.nodeID]
	if n != nil && n.pendingReconcile {
		n = nil
	}
	remoteID := cr.remoteID
	c.mu.Unlock()
	if final == nil && n != nil && remoteID != "" {
		if _, err := n.cli.CancelRun(r.Context(), remoteID); err != nil {
			var api *client.APIError
			if !errors.As(err, &api) {
				relayError(w, err)
				return
			}
		}
		c.refresh(r.Context(), cr)
	}
	c.mu.Lock()
	v := c.viewLocked(cr, false)
	c.mu.Unlock()
	server.WriteJSON(w, http.StatusOK, v)
}

func (c *Coordinator) handleListRuns(w http.ResponseWriter, r *http.Request) {
	p, err := server.ParsePageParams(r, "queued", "running", "done", "failed", "canceled")
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, server.CodeInvalidRequest, err)
		return
	}
	for _, cr := range c.pendingRuns() {
		c.refresh(r.Context(), cr)
	}
	c.mu.Lock()
	views := make([]client.RunView, 0, len(c.runOrder))
	for i := len(c.runOrder) - 1; i >= 0; i-- { // newest first
		views = append(views, c.viewLocked(c.runOrder[i], false))
	}
	c.mu.Unlock()
	page, next := server.Paginate(views, p,
		func(v client.RunView) string { return v.ID },
		func(v client.RunView) bool { return p.State == "" || v.State == p.State })
	server.WriteJSON(w, http.StatusOK, client.RunPage{Runs: page, NextCursor: next})
}

// handleEvents streams a run's lifecycle as SSE, proxying the serving
// node's stream with the run ID rewritten. If the serving node dies
// mid-stream, the proxy follows the run to its requeued placement (or its
// deterministic failure) instead of going silent.
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		server.WriteError(w, http.StatusInternalServerError, server.CodeInternal, errors.New("streaming unsupported"))
		return
	}
	cr := c.lookupRun(w, r.PathValue("id"))
	if cr == nil {
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	emit := func(ev client.Event) {
		data, err := json.Marshal(ev)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: state\ndata: %s\n\n", data)
		flusher.Flush()
	}
	for {
		c.mu.Lock()
		final := cr.final
		n := c.nodes[cr.nodeID]
		if n != nil && n.pendingReconcile {
			n = nil
		}
		remoteID := cr.remoteID
		c.mu.Unlock()
		if final != nil {
			at := c.now()
			if final.FinishedAt != nil {
				at = *final.FinishedAt
			}
			emit(client.Event{RunID: cr.id, State: final.State, At: at, Message: final.Error})
			return
		}
		sawTerminal := false
		if n != nil && remoteID != "" {
			err := n.cli.FollowRun(r.Context(), remoteID, func(ev client.Event) bool {
				ev.RunID = cr.id
				emit(ev)
				sawTerminal = client.Terminal(ev.State)
				return true
			})
			if err != nil && r.Context().Err() != nil {
				return
			}
			if sawTerminal {
				c.refresh(r.Context(), cr)
				return
			}
		}
		// Stream ended without a terminal state: the node is gone or the
		// run moved. Wait for the monitor to settle the run's fate, then
		// loop to follow its new placement (or emit its final state).
		select {
		case <-r.Context().Done():
			return
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func (c *Coordinator) handleTrace(w http.ResponseWriter, r *http.Request) {
	cr := c.lookupRun(w, r.PathValue("id"))
	if cr == nil {
		return
	}
	c.mu.Lock()
	n := c.nodes[cr.nodeID]
	if n != nil && n.pendingReconcile {
		n = nil
	}
	remoteID := cr.remoteID
	c.mu.Unlock()
	if n == nil || remoteID == "" {
		server.WriteError(w, http.StatusNotFound, server.CodeNotFound,
			fmt.Errorf("fleet: run %s has no reachable decision trace", cr.id))
		return
	}
	raw, err := n.cli.Trace(r.Context(), remoteID)
	if err != nil {
		relayError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(raw)
}

// ---------------------------------------------------------------------------
// Sweep plane.

func (c *Coordinator) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var req server.SweepSubmitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.DeadlineS < 0 {
		server.WriteError(w, http.StatusBadRequest, server.CodeInvalidRequest,
			fmt.Errorf("negative deadline_s %v", req.DeadlineS))
		return
	}
	if err := req.SweepSpec.Validate(); err != nil {
		server.WriteError(w, http.StatusBadRequest, server.CodeInvalidRequest, err)
		return
	}
	resolved := req.SweepSpec.WithDefaults()
	members := resolved.Members()

	// Shard: members dispatch in placement order (LPT sorts by cost) but
	// runIDs keep grid order, which is what reassembly indexes by.
	outcomes := make([]submitOutcome, len(members))
	var created []*crun
	for _, idx := range c.lptOrder(members) {
		out, cr, err := c.submitOne(r.Context(), members[idx], req.DeadlineS)
		if err != nil {
			// Batch admission is atomic: unwind the members already placed.
			for _, u := range created {
				c.mu.Lock()
				n := c.nodes[u.nodeID]
				remoteID := u.remoteID
				c.mu.Unlock()
				if n != nil && remoteID != "" {
					n.cli.CancelRun(r.Context(), remoteID)
				}
				c.remove(u)
			}
			writeSubmitError(w, err)
			return
		}
		outcomes[idx] = out
		if cr != nil {
			created = append(created, cr)
		}
	}

	c.mu.Lock()
	c.swSeq++
	cs := &csweep{
		id:        fmt.Sprintf("sweep-%06d", c.swSeq),
		spec:      resolved,
		submitted: c.now(),
	}
	resp := server.SweepSubmitResponse{ID: cs.id}
	for _, out := range outcomes {
		cs.runIDs = append(cs.runIDs, out.id)
		resp.RunIDs = append(resp.RunIDs, out.id)
		if out.cacheHit {
			resp.CacheHits++
		}
		if out.deduped {
			resp.Deduped++
		}
	}
	c.sweeps[cs.id] = cs
	c.swOrder = append(c.swOrder, cs)
	c.persistSweepLocked(cs)
	c.mu.Unlock()
	server.WriteJSON(w, http.StatusAccepted, resp)
}

// sweepStatus aggregates a sweep exactly as a single pool does: the same
// member state machine, and — once every member is done — the same
// per-cell Summarize over the members' exports in grid order. That is the
// byte-identity contract: fleet cells equal standalone cells.
func (c *Coordinator) sweepStatus(ctx context.Context, cs *csweep) server.SweepView {
	c.mu.Lock()
	members := make([]*crun, len(cs.runIDs))
	for i, id := range cs.runIDs {
		members[i] = c.runs[id]
	}
	c.mu.Unlock()
	for _, cr := range members {
		if cr != nil {
			c.refresh(ctx, cr)
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	v := server.SweepView{
		ID:          cs.id,
		State:       string(runqueue.Queued),
		Total:       len(cs.runIDs),
		SubmittedAt: cs.submitted,
		Spec:        cs.spec,
		RunIDs:      cs.runIDs,
	}
	allDone := true
	anyStarted := false
	var exports []metrics.Export
	for i, cr := range members {
		if cr == nil {
			v.Errors = append(v.Errors, fmt.Sprintf("%s: evicted from history", cs.runIDs[i]))
			v.State = string(runqueue.Failed)
			return v
		}
		state := cr.state
		if cr.final != nil {
			state = cr.final.State
		}
		if state != string(runqueue.Queued) {
			anyStarted = true
		}
		if cr.final != nil {
			v.Done++
		}
		switch state {
		case string(runqueue.Done):
			if allDone {
				var ex metrics.Export
				if err := json.Unmarshal(cr.final.Result, &ex); err != nil {
					v.Errors = append(v.Errors, fmt.Sprintf("%s: decoding result: %v", cr.id, err))
					v.State = string(runqueue.Failed)
					return v
				}
				exports = append(exports, ex)
			}
		case string(runqueue.Failed):
			allDone = false
			v.State = string(runqueue.Failed)
			if cr.final != nil && cr.final.Error != "" {
				v.Errors = append(v.Errors, fmt.Sprintf("%s: %s", cr.id, cr.final.Error))
			}
		case string(runqueue.Canceled):
			allDone = false
			if v.State != string(runqueue.Failed) {
				v.State = string(runqueue.Canceled)
			}
		default:
			allDone = false
		}
	}
	if v.State == string(runqueue.Queued) && anyStarted {
		v.State = string(runqueue.Running)
	}
	if !allDone {
		return v
	}
	v.State = string(runqueue.Done)
	nseeds := len(cs.spec.Seeds)
	i := 0
	for _, mix := range cs.spec.Mixes {
		for _, load := range cs.spec.Loads {
			for _, pol := range cs.spec.Policies {
				v.Cells = append(v.Cells, sweep.Summarize(
					canonicalPolicy(pol), mix, load, cs.spec.Seeds, exports[i:i+nseeds]))
				i += nseeds
			}
		}
	}
	return v
}

// canonicalPolicy matches the pool's: cells carry the simulator's name for
// the policy, not the submitter's spelling.
func canonicalPolicy(pol string) string {
	if p, err := pdpasim.ParsePolicy(pol); err == nil {
		return string(p)
	}
	return pol
}

func (c *Coordinator) lookupSweep(w http.ResponseWriter, id string) *csweep {
	c.mu.Lock()
	cs := c.sweeps[id]
	c.mu.Unlock()
	if cs == nil {
		server.WriteError(w, http.StatusNotFound, server.CodeNotFound,
			fmt.Errorf("fleet: no sweep %q", id))
	}
	return cs
}

func (c *Coordinator) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	cs := c.lookupSweep(w, r.PathValue("id"))
	if cs == nil {
		return
	}
	server.WriteJSON(w, http.StatusOK, c.sweepStatus(r.Context(), cs))
}

func (c *Coordinator) handleListSweeps(w http.ResponseWriter, r *http.Request) {
	p, err := server.ParsePageParams(r, "queued", "running", "done", "failed", "canceled")
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, server.CodeInvalidRequest, err)
		return
	}
	c.mu.Lock()
	sweeps := make([]*csweep, len(c.swOrder))
	copy(sweeps, c.swOrder)
	c.mu.Unlock()
	views := make([]server.SweepView, 0, len(sweeps))
	for i := len(sweeps) - 1; i >= 0; i-- { // newest first
		v := c.sweepStatus(r.Context(), sweeps[i])
		v.RunIDs = nil
		v.Cells = nil
		views = append(views, v)
	}
	page, next := server.Paginate(views, p,
		func(v server.SweepView) string { return v.ID },
		func(v server.SweepView) bool { return p.State == "" || v.State == p.State })
	server.WriteJSON(w, http.StatusOK, server.SweepListResponse{Sweeps: page, NextCursor: next})
}

func (c *Coordinator) handleCancelSweep(w http.ResponseWriter, r *http.Request) {
	cs := c.lookupSweep(w, r.PathValue("id"))
	if cs == nil {
		return
	}
	c.mu.Lock()
	members := make([]*crun, 0, len(cs.runIDs))
	for _, id := range cs.runIDs {
		if cr := c.runs[id]; cr != nil && cr.final == nil {
			members = append(members, cr)
		}
	}
	c.mu.Unlock()
	for _, cr := range members {
		c.mu.Lock()
		n := c.nodes[cr.nodeID]
		remoteID := cr.remoteID
		c.mu.Unlock()
		if n != nil && remoteID != "" {
			n.cli.CancelRun(r.Context(), remoteID) // best effort
		}
		c.refresh(r.Context(), cr)
	}
	v := c.sweepStatus(r.Context(), cs)
	v.RunIDs = nil
	v.Cells = nil
	server.WriteJSON(w, http.StatusOK, v)
}

// ---------------------------------------------------------------------------
// Node plane.

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.APIRevision != server.APIRevision {
		server.WriteError(w, http.StatusBadRequest, server.CodeIncompatibleRevision,
			fmt.Errorf("fleet: node speaks API revision %d, coordinator speaks %d",
				req.APIRevision, server.APIRevision))
		return
	}
	if req.Addr == "" {
		server.WriteError(w, http.StatusBadRequest, server.CodeInvalidRequest,
			errors.New("fleet: registration needs a non-empty addr"))
		return
	}
	now := c.now()
	var orphans, adoptees []*crun
	inheritCordon := false
	c.mu.Lock()
	for _, old := range c.order {
		if old.drained || old.addr != req.Addr {
			continue
		}
		old.drained = true
		c.persistNodeLocked(old)
		if old.pendingReconcile {
			// The same address returning after a coordinator restart: the
			// node kept its pool across the outage, so every run the
			// recovered routing table attributes to it — terminal results
			// included — transfers to the new incarnation for reconcile.
			for _, cr := range c.runOrder {
				if cr.nodeID == old.id {
					adoptees = append(adoptees, cr)
				}
			}
			inheritCordon = inheritCordon || old.cordoned
			c.logf("fleet: node %s returned as a new registration from %s after coordinator restart; reconciling %d runs",
				old.id, old.addr, len(adoptees))
			continue
		}
		// A re-registration from a restarted node: its old incarnation's
		// runs are gone with the old process, so drain the stale record.
		orphans = append(orphans, c.runsOnLocked(old.id)...)
		c.logf("fleet: node %s re-registered from %s; draining stale record", old.id, old.addr)
	}
	c.nodeSeq++
	n := &node{
		id:           fmt.Sprintf("node-%03d", c.nodeSeq),
		name:         req.Name,
		addr:         req.Addr,
		cli:          client.New(req.Addr, client.WithHTTPClient(c.hc)),
		cpus:         req.CPUs,
		baseWorkers:  req.BaseWorkers,
		maxWorkers:   req.MaxWorkers,
		registeredAt: now,
		lastBeat:     now,
		cordoned:     inheritCordon,
	}
	c.nodes[n.id] = n
	c.order = append(c.order, n)
	for _, cr := range adoptees {
		if cr.final == nil {
			c.transferLocked(cr, n)
		} else {
			cr.nodeID = n.id
		}
		c.persistRunLocked(cr)
	}
	c.persistNodeLocked(n)
	c.mu.Unlock()
	c.logf("fleet: node %s registered from %s (%d cpus)", n.id, n.addr, n.cpus)
	for _, cr := range orphans {
		c.requeue(r.Context(), cr, "node restarted")
	}
	c.reconcile(r.Context(), n, adoptees)
	server.WriteJSON(w, http.StatusOK, RegisterResponse{
		ID:                 n.id,
		HeartbeatIntervalS: c.health.HeartbeatInterval.Seconds(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	id := r.PathValue("id")
	c.mu.Lock()
	n := c.nodes[id]
	if n != nil && n.drained && n.scaleDrained {
		c.mu.Unlock()
		// A scale-drain is an instruction, not an amnesia: answering
		// "drained" makes the agent leave the fleet instead of the 404 that
		// would make it re-register.
		server.WriteJSON(w, http.StatusOK, HeartbeatResponse{State: StateDrained})
		return
	}
	if n == nil || n.drained || n.pendingReconcile {
		c.mu.Unlock()
		// 404 tells the node to re-register: it is unknown, was declared
		// dead and its record is now a tombstone, or it predates a
		// coordinator restart and must run the reconcile protocol.
		server.WriteError(w, http.StatusNotFound, server.CodeNotFound,
			fmt.Errorf("fleet: no live node %q (re-register)", id))
		return
	}
	n.lastBeat = c.now()
	n.beats++
	n.queueDepth = req.QueueDepth
	n.inflight = req.Inflight
	n.nodeDraining = req.Draining
	state := CombineState(StateHealthy, n.cordoned, n.drained)
	c.mu.Unlock()
	c.met.heartbeats.Inc()
	server.WriteJSON(w, http.StatusOK, HeartbeatResponse{State: state})
}

// nodeViewLocked renders a node for the wire using the client mirror type,
// so coordinator and client literally share the schema.
func (c *Coordinator) nodeViewLocked(n *node) client.NodeView {
	live := c.health.Liveness(c.now().Sub(n.lastBeat))
	if n.pendingReconcile {
		// Recovered from the store but not yet re-registered: never report
		// it healthy, whatever the rehydrated heartbeat clock says.
		live = StateUnhealthy
	}
	return client.NodeView{
		ID:              n.id,
		Name:            n.name,
		Addr:            n.addr,
		State:           string(CombineState(live, n.cordoned, n.drained)),
		Cordoned:        n.cordoned,
		CPUs:            n.cpus,
		BaseWorkers:     n.baseWorkers,
		MaxWorkers:      n.maxWorkers,
		RegisteredAt:    n.registeredAt,
		LastHeartbeatAt: n.lastBeat,
		Heartbeats:      n.beats,
		QueueDepth:      n.queueDepth,
		Inflight:        n.inflight,
		Draining:        n.nodeDraining,
		Assigned:        n.assigned,
	}
}

func (c *Coordinator) handleListNodes(w http.ResponseWriter, r *http.Request) {
	p, err := server.ParsePageParams(r,
		string(StateHealthy), string(StateCordoned), string(StateUnhealthy), string(StateDrained))
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, server.CodeInvalidRequest, err)
		return
	}
	c.mu.Lock()
	views := make([]client.NodeView, 0, len(c.order))
	for i := len(c.order) - 1; i >= 0; i-- { // newest first
		views = append(views, c.nodeViewLocked(c.order[i]))
	}
	c.mu.Unlock()
	page, next := server.Paginate(views, p,
		func(v client.NodeView) string { return v.ID },
		func(v client.NodeView) bool { return p.State == "" || v.State == p.State })
	server.WriteJSON(w, http.StatusOK, client.NodePage{Nodes: page, NextCursor: next})
}

func (c *Coordinator) lookupNode(w http.ResponseWriter, id string) *node {
	c.mu.Lock()
	n := c.nodes[id]
	c.mu.Unlock()
	if n == nil {
		server.WriteError(w, http.StatusNotFound, server.CodeNotFound,
			fmt.Errorf("fleet: no node %q", id))
	}
	return n
}

func (c *Coordinator) handleCordon(w http.ResponseWriter, r *http.Request) {
	n := c.lookupNode(w, r.PathValue("id"))
	if n == nil {
		return
	}
	c.mu.Lock()
	n.cordoned = true
	c.persistNodeLocked(n)
	v := c.nodeViewLocked(n)
	c.mu.Unlock()
	c.logf("fleet: node %s cordoned", n.id)
	server.WriteJSON(w, http.StatusOK, v)
}

func (c *Coordinator) handleUncordon(w http.ResponseWriter, r *http.Request) {
	n := c.lookupNode(w, r.PathValue("id"))
	if n == nil {
		return
	}
	c.mu.Lock()
	n.cordoned = false
	c.persistNodeLocked(n)
	v := c.nodeViewLocked(n)
	c.mu.Unlock()
	c.logf("fleet: node %s uncordoned", n.id)
	server.WriteJSON(w, http.StatusOK, v)
}

// handleDrainNode cordons the node, then evicts its placed runs: each one
// is refreshed (finished work keeps its result), cancelled on the node
// best-effort, and requeued elsewhere.
func (c *Coordinator) handleDrainNode(w http.ResponseWriter, r *http.Request) {
	n := c.lookupNode(w, r.PathValue("id"))
	if n == nil {
		return
	}
	c.mu.Lock()
	n.cordoned = true
	n.drained = true
	c.persistNodeLocked(n)
	evicted := c.runsOnLocked(n.id)
	c.mu.Unlock()
	c.logf("fleet: node %s draining, evicting %d runs", n.id, len(evicted))
	for _, cr := range evicted {
		c.refresh(r.Context(), cr)
		c.mu.Lock()
		final := cr.final
		remoteID := cr.remoteID
		c.mu.Unlock()
		if final != nil {
			continue // finished before eviction: keep the result
		}
		if remoteID != "" {
			n.cli.CancelRun(r.Context(), remoteID) // best effort: free the node
		}
		c.requeue(r.Context(), cr, "node drained")
	}
	c.mu.Lock()
	v := c.nodeViewLocked(n)
	c.mu.Unlock()
	server.WriteJSON(w, http.StatusOK, v)
}

// ---------------------------------------------------------------------------
// Introspection.

func (c *Coordinator) handleVersion(w http.ResponseWriter, r *http.Request) {
	server.WriteJSON(w, http.StatusOK, server.Version(server.RoleCoordinator))
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	status := "ok"
	if c.draining {
		status = "draining"
	}
	queue, inflight, total, healthy := 0, 0, 0, 0
	now := c.now()
	for _, n := range c.order {
		if n.drained {
			continue
		}
		total++
		queue += n.queueDepth
		inflight += n.inflight
		if !n.pendingReconcile &&
			CombineState(c.health.Liveness(now.Sub(n.lastBeat)), n.cordoned, n.drained) == StateHealthy {
			healthy++
		}
	}
	c.mu.Unlock()
	server.WriteJSON(w, http.StatusOK, map[string]any{
		"status":   status,
		"uptime_s": time.Since(c.started).Seconds(),
		"queue":    queue,
		"inflight": inflight,
		"nodes":    total,
		"healthy":  healthy,
	})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	c.reg.WritePrometheus(w)
}
