package fleet

// The reconcile protocol: when a node re-registers after a coordinator
// restart, the coordinator asks it (POST /v1/runs/reconcile) for the
// authoritative state of every run the recovered routing table attributes
// to that address. The node is the source of truth — it kept simulating
// while the coordinator was down — so terminal results are adopted with
// their exact bytes, live runs are resumed in place, and runs the node has
// no record of are requeued (onto any healthy node, the returning one
// included, and still respecting the requeue budget).

import (
	"context"

	"pdpasim/client"
)

// reconcileVerdict classifies one reconcile answer for a single run.
type reconcileVerdict int

const (
	// verdictRequeue: the node has no record of the run — place it again.
	verdictRequeue reconcileVerdict = iota
	// verdictAdopt: the node holds a terminal view — take it verbatim.
	verdictAdopt
	// verdictResume: the node is still working on the run — follow along.
	verdictResume
)

func (v reconcileVerdict) String() string {
	switch v {
	case verdictAdopt:
		return "adopt"
	case verdictResume:
		return "resume"
	default:
		return "requeue"
	}
}

// reconcileVerdictFor is the reconcile state machine's single decision
// point, pure so the table tests can enumerate it: view is the node's
// answer for one run, nil when the node reported it missing (or did not
// mention it at all, which recovery treats the same way).
func reconcileVerdictFor(view *client.RunView) reconcileVerdict {
	switch {
	case view == nil:
		return verdictRequeue
	case view.Terminal():
		return verdictAdopt
	default:
		return verdictResume
	}
}

// reconcile settles the fate of every run attributed to a returning node.
// runs were already transferred to n under the register handler's lock; the
// HTTP probe happens outside the lock and each commit re-checks the run's
// generation, so placements that moved meanwhile are left alone. A probe
// failure leaves the runs attached: the monitor's liveness machinery and
// the ordinary refresh path settle them later.
func (c *Coordinator) reconcile(ctx context.Context, n *node, runs []*crun) {
	if len(runs) == 0 {
		return
	}
	var ids []string
	byRemote := map[string]*crun{}
	gens := map[string]int{}
	var unplaced []*crun
	c.mu.Lock()
	for _, cr := range runs {
		c.met.reconciled.Inc()
		if cr.remoteID == "" {
			if cr.final == nil {
				unplaced = append(unplaced, cr)
			}
			continue
		}
		ids = append(ids, cr.remoteID)
		byRemote[cr.remoteID] = cr
		gens[cr.remoteID] = cr.gen
	}
	c.mu.Unlock()

	var res client.ReconcileResult
	if len(ids) > 0 {
		var err error
		res, err = n.cli.ReconcileRuns(ctx, ids)
		if err != nil {
			c.logf("fleet: reconcile with node %s failed: %v", n.id, err)
			return
		}
	}
	views := map[string]client.RunView{}
	for _, v := range res.Runs {
		views[v.ID] = v
	}

	adopted, resumed := 0, 0
	requeues := append([]*crun(nil), unplaced...)
	c.mu.Lock()
	for _, remoteID := range ids {
		cr := byRemote[remoteID]
		var view *client.RunView
		if v, ok := views[remoteID]; ok {
			view = &v
		}
		verdict := reconcileVerdictFor(view)
		if cr.gen != gens[remoteID] || cr.final != nil {
			if verdict == verdictAdopt {
				c.met.adopted.Inc()
				adopted++
			}
			continue // moved or settled meanwhile; nothing to commit
		}
		switch verdict {
		case verdictAdopt:
			c.met.adopted.Inc()
			adopted++
			v := *view
			v.ID = cr.id
			cr.lastView = &v
			cr.state = v.State
			cr.final = &v
			c.releaseLocked(cr)
			c.persistRunLocked(cr)
		case verdictResume:
			resumed++
			v := *view
			v.ID = cr.id
			cr.lastView = &v
			cr.state = v.State
		case verdictRequeue:
			requeues = append(requeues, cr)
		}
	}
	c.mu.Unlock()
	for _, cr := range requeues {
		// The returning node is a legitimate target again — no exclusion.
		c.requeueEx(ctx, cr, "lost across coordinator restart", false)
	}
	c.logf("fleet: reconciled %d runs with node %s (%d adopted, %d resumed, %d requeued)",
		len(runs), n.id, adopted, resumed, len(requeues))
}
