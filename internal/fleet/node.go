package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"pdpasim/client"
	"pdpasim/internal/faults"
	"pdpasim/internal/runqueue"
	"pdpasim/internal/server"
)

// AgentConfig parameterizes a node's membership in a fleet.
type AgentConfig struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// Advertise is this node's own base URL — how the coordinator reaches
	// its v1 surface.
	Advertise string
	// Name is an optional human label sent at registration.
	Name string
	// CPUs, BaseWorkers, MaxWorkers describe capacity for the registration.
	CPUs        int
	BaseWorkers int
	MaxWorkers  int
	// Faults injects failures at SiteNodeHeartbeat: an injected fault
	// swallows that beat, simulating a lost heartbeat. Nil is a no-op.
	Faults *faults.Injector
	// HTTPClient carries node → coordinator traffic (default fresh).
	HTTPClient *http.Client
	// RetryInterval paces registration retries (default 250ms).
	RetryInterval time.Duration
	// Logf receives operational log lines (default: discarded).
	Logf func(format string, args ...any)
}

// Agent keeps one node registered with its coordinator: it registers (with
// retry), then heartbeats at the coordinator-directed cadence, re-registering
// under a fresh ID whenever the coordinator answers 404 (the node was
// declared dead, or the coordinator restarted). Create with StartAgent.
type Agent struct {
	cfg    AgentConfig
	pool   *runqueue.Pool
	cli    *client.Client
	cancel context.CancelFunc
	done   chan struct{}

	mu         sync.Mutex
	id         string
	fatal      error
	registered chan struct{} // closed after the first successful registration
}

// StartAgent launches the registration/heartbeat loop for pool and returns
// immediately. Stop the agent with Stop.
func StartAgent(cfg AgentConfig, pool *runqueue.Pool) *Agent {
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{}
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 250 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	a := &Agent{
		cfg:        cfg,
		pool:       pool,
		cli:        client.New(cfg.Coordinator, client.WithHTTPClient(cfg.HTTPClient)),
		cancel:     cancel,
		done:       make(chan struct{}),
		registered: make(chan struct{}),
	}
	go a.loop(ctx)
	return a
}

// Stop ends the loop and waits for it to exit. The node's pool is left
// running; stopping membership does not stop work.
func (a *Agent) Stop() {
	a.cancel()
	<-a.done
	a.cli.CloseIdleConnections()
}

// Registered is closed once the agent has successfully registered for the
// first time.
func (a *Agent) Registered() <-chan struct{} { return a.registered }

// ID returns the coordinator-assigned node ID ("" before registration).
func (a *Agent) ID() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.id
}

// Err returns the fatal error that stopped the agent for good (an
// incompatible API revision), or nil.
func (a *Agent) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.fatal
}

func (a *Agent) loop(ctx context.Context) {
	defer close(a.done)
	first := true
	for {
		interval, ok := a.register(ctx)
		if !ok {
			return // context cancelled or fatal
		}
		if first {
			close(a.registered)
			first = false
		}
		if !a.heartbeatLoop(ctx, interval) {
			return // context cancelled
		}
		// heartbeatLoop returned because the coordinator answered 404:
		// this incarnation is dead to it; register again under a new ID.
	}
}

// register registers until it succeeds, returning the directed heartbeat
// interval. ok is false when the context ended or the revision mismatch
// made registration permanently hopeless.
func (a *Agent) register(ctx context.Context) (time.Duration, bool) {
	req := RegisterRequest{
		Name:        a.cfg.Name,
		Addr:        a.cfg.Advertise,
		APIRevision: server.APIRevision,
		CPUs:        a.cfg.CPUs,
		BaseWorkers: a.cfg.BaseWorkers,
		MaxWorkers:  a.cfg.MaxWorkers,
	}
	for {
		var resp RegisterResponse
		err := a.cli.Do(ctx, http.MethodPost, "/v1/nodes/register", req, &resp)
		if err == nil {
			a.mu.Lock()
			a.id = resp.ID
			a.mu.Unlock()
			a.cfg.Logf("fleet: registered as %s with %s", resp.ID, a.cfg.Coordinator)
			interval := time.Duration(resp.HeartbeatIntervalS * float64(time.Second))
			if interval < 10*time.Millisecond {
				interval = 10 * time.Millisecond
			}
			return interval, true
		}
		var api *client.APIError
		if errors.As(err, &api) && api.Code == server.CodeIncompatibleRevision {
			a.mu.Lock()
			a.fatal = fmt.Errorf("fleet: coordinator refused registration: %w", err)
			a.mu.Unlock()
			a.cfg.Logf("fleet: fatal: %v", err)
			return 0, false
		}
		a.cfg.Logf("fleet: registration failed, retrying: %v", err)
		select {
		case <-ctx.Done():
			return 0, false
		case <-time.After(a.cfg.RetryInterval):
		}
	}
}

// heartbeatLoop beats until the context ends (returns false) or the
// coordinator forgets this node (returns true: caller re-registers).
func (a *Agent) heartbeatLoop(ctx context.Context, interval time.Duration) bool {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
		}
		if err := a.cfg.Faults.Hit(ctx, faults.SiteNodeHeartbeat); err != nil {
			a.cfg.Logf("fleet: heartbeat swallowed by injected fault: %v", err)
			continue
		}
		st := a.pool.Stats()
		req := HeartbeatRequest{QueueDepth: st.QueueDepth, Inflight: st.Inflight, Draining: st.Draining}
		var resp HeartbeatResponse
		err := a.cli.Do(ctx, http.MethodPost, "/v1/nodes/"+a.ID()+"/heartbeat", req, &resp)
		if err == nil {
			if resp.State == StateDrained {
				// The coordinator scale-drained this node: leave the fleet
				// for good (the pool keeps running; Stop still works).
				a.cfg.Logf("fleet: coordinator drained node %s; leaving the fleet", a.ID())
				return false
			}
			continue
		}
		var api *client.APIError
		if errors.As(err, &api) && api.Status == http.StatusNotFound {
			a.cfg.Logf("fleet: coordinator forgot node %s; re-registering", a.ID())
			return true
		}
		if ctx.Err() != nil {
			return false
		}
		a.cfg.Logf("fleet: heartbeat failed: %v", err)
	}
}
