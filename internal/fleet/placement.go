package fleet

import (
	"fmt"

	"pdpasim/internal/runqueue"
)

// Placement names a coordinator routing strategy. The first two transplant
// internal/cluster's in-process dispatcher strategies to the fleet; LPT is
// the classic longest-processing-time-first greedy for sweep sharding.
type Placement string

// Placement strategies.
const (
	// PlaceRoundRobin cycles through eligible nodes in registration order
	// regardless of load.
	PlaceRoundRobin Placement = "round_robin"
	// PlaceLeastLoaded picks the eligible node with the fewest
	// coordinator-placed non-terminal runs (ties to registration order).
	// Deliberately counted from the coordinator's own ledger, not from
	// heartbeat snapshots: the ledger moves synchronously with placement,
	// so the choice is deterministic regardless of heartbeat timing.
	PlaceLeastLoaded Placement = "least_loaded"
	// PlaceLPT orders a batch's members by estimated cost (simulated window
	// × load), longest first, and greedily assigns each to the eligible
	// node with the smallest total estimated cost — the makespan heuristic.
	// Single runs place like least-loaded-by-cost.
	PlaceLPT Placement = "lpt"
)

// ParsePlacement validates a placement name ("" = round_robin).
func ParsePlacement(s string) (Placement, error) {
	switch Placement(s) {
	case "":
		return PlaceRoundRobin, nil
	case PlaceRoundRobin, PlaceLeastLoaded, PlaceLPT:
		return Placement(s), nil
	}
	return "", fmt.Errorf("fleet: unknown placement %q (want round_robin, least_loaded, or lpt)", s)
}

// estCost is a member's LPT weight: how much simulated work it asks for.
// The defaults mirror the workload generator's (300 s window, load 1.0).
func estCost(spec runqueue.Spec) float64 {
	w := spec.Workload.WindowS
	if w <= 0 {
		w = 300
	}
	l := spec.Workload.Load
	if l <= 0 {
		l = 1.0
	}
	return w * l
}

// pickLocked chooses the node for one run among the eligible candidates
// (non-empty, registration order). Caller holds c.mu; the choice reads and
// updates only coordinator-local counters, never the network.
func (c *Coordinator) pickLocked(cands []*node, cost float64) *node {
	switch c.placement {
	case PlaceLeastLoaded:
		best := cands[0]
		for _, n := range cands[1:] {
			if n.assigned < best.assigned {
				best = n
			}
		}
		return best
	case PlaceLPT:
		best := cands[0]
		for _, n := range cands[1:] {
			if n.costSum < best.costSum {
				best = n
			}
		}
		return best
	default: // PlaceRoundRobin
		n := cands[c.rrNext%len(cands)]
		c.rrNext++
		return n
	}
}

// lptOrder returns member indexes in LPT dispatch order: descending
// estimated cost, ties broken by grid index so the order is total and
// deterministic. Other placements dispatch in grid order.
func (c *Coordinator) lptOrder(members []runqueue.Spec) []int {
	order := make([]int, len(members))
	for i := range order {
		order[i] = i
	}
	if c.placement != PlaceLPT {
		return order
	}
	costs := make([]float64, len(members))
	for i, m := range members {
		costs[i] = estCost(m)
	}
	// Insertion sort keeps it dependency-free and stable on ties.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && costs[order[j]] > costs[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}
