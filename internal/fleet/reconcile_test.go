package fleet

import (
	"bytes"
	"context"
	"net/http"
	"testing"
	"time"

	"pdpasim"
	"pdpasim/client"
	"pdpasim/internal/runqueue"
	"pdpasim/internal/server"
)

// TestReconcileVerdict enumerates the reconcile state machine's single
// decision point: what a returning node's answer (or silence) means for a
// run the recovered routing table attributes to it.
func TestReconcileVerdict(t *testing.T) {
	view := func(state string) *client.RunView { return &client.RunView{State: state} }
	cases := []struct {
		name string
		view *client.RunView
		want reconcileVerdict
	}{
		{"node has no record", nil, verdictRequeue},
		{"node reports queued", view("queued"), verdictResume},
		{"node reports running", view("running"), verdictResume},
		{"node reports done", view("done"), verdictAdopt},
		{"node reports failed", view("failed"), verdictAdopt},
		{"node reports canceled", view("canceled"), verdictAdopt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := reconcileVerdictFor(tc.view); got != tc.want {
				t.Errorf("reconcileVerdictFor = %s, want %s", got, tc.want)
			}
		})
	}
	// The String form is what the logs print; pin all three.
	for v, want := range map[reconcileVerdict]string{
		verdictRequeue: "requeue", verdictAdopt: "adopt", verdictResume: "resume",
	} {
		if v.String() != want {
			t.Errorf("verdict %d String = %q, want %q", v, v.String(), want)
		}
	}
}

// patientHealth keeps heartbeats fast but gives returning nodes a generous
// window before liveness rules on them — for the never-return cases, where
// the survivor must have re-registered before requeue fires.
var patientHealth = HealthConfig{
	HeartbeatInterval: 30 * time.Millisecond,
	UnhealthyAfter:    300 * time.Millisecond,
	DeadAfter:         900 * time.Millisecond,
}

// stalledFirstNodeConfig gives node 0 a simulation that stalls 1.5 s before
// delegating to the instant test simulator; other nodes are instant.
func stalledFirstNodeConfig() func(i int) runqueue.Config {
	return func(i int) runqueue.Config {
		cfg := fastNodeConfig(i)
		if i != 0 {
			return cfg
		}
		inner := cfg.Simulate
		cfg.Simulate = func(ctx context.Context, spec runqueue.Spec) (*pdpasim.Outcome, error) {
			select {
			case <-time.After(1500 * time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return inner(ctx, spec)
		}
		return cfg
	}
}

// --- reconcile state machine, end to end --------------------------------
//
// Each test below is one row of the node-return × run-state matrix: the
// coordinator is killed with a run in a known state, restarted, and the
// run's exact terminal outcome asserted.

// TestReconcileAdoptsCompleted: node returns holding a terminal result →
// the coordinator adopts it verbatim, byte for byte, with no re-placement.
func TestReconcileAdoptsCompleted(t *testing.T) {
	f := startDurableFleet(t, 1, fastNodeConfig)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	sub, err := f.cli.SubmitRun(ctx, client.SubmitRunRequest{
		Workload: client.Workload{Mix: "w1", Seed: 11},
		Options:  client.RunOptions{Policy: "equip"},
	})
	if err != nil {
		t.Fatal(err)
	}
	before, err := f.cli.WaitRun(ctx, sub.ID, 0)
	if err != nil {
		t.Fatal(err)
	}

	f.killCoordinator()
	f.restartCoordinator()
	f.waitHealthy(ctx, 1)

	after, err := f.cli.Run(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.State != "done" {
		t.Fatalf("recovered run state = %s, want done", after.State)
	}
	if !bytes.Equal(before.Result, after.Result) {
		t.Errorf("adopted result differs:\nbefore %s\nafter  %s", before.Result, after.Result)
	}
	if got := f.metric(ctx, "pdpad_fleet_reconciled_runs_total"); got < 1 {
		t.Errorf("reconciled_runs_total = %v, want >= 1", got)
	}
	if got := f.metric(ctx, "pdpad_fleet_adopted_results_total"); got < 1 {
		t.Errorf("adopted_results_total = %v, want >= 1", got)
	}
	if got := f.metric(ctx, "pdpad_fleet_requeues_total"); got != 0 {
		t.Errorf("requeues_total = %v, want 0", got)
	}
}

// TestReconcileResumesRunning: node returns still working on the run → the
// coordinator follows it to completion in place, no requeue.
func TestReconcileResumesRunning(t *testing.T) {
	f := startDurableFleet(t, 1, stalledFirstNodeConfig())
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	sub, err := f.cli.SubmitRun(ctx, client.SubmitRunRequest{
		Workload: client.Workload{Mix: "w1", Seed: 12},
		Options:  client.RunOptions{Policy: "equip"},
	})
	if err != nil {
		t.Fatal(err)
	}

	f.killCoordinator()
	f.restartCoordinator()
	f.waitHealthy(ctx, 1)

	v, err := f.cli.WaitRun(ctx, sub.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != "done" {
		t.Fatalf("resumed run state = %s (%s), want done", v.State, v.Error)
	}
	if got := f.metric(ctx, "pdpad_fleet_reconciled_runs_total"); got < 1 {
		t.Errorf("reconciled_runs_total = %v, want >= 1", got)
	}
	if got := f.metric(ctx, "pdpad_fleet_requeues_total"); got != 0 {
		t.Errorf("requeues_total = %v, want 0 (the run never left its node)", got)
	}
}

// TestReconcileRequeuesUnknown: the node returns but has no record of the
// run (its process restarted across the outage) → requeue, which may land
// on the very node that forgot it, and the run still completes.
func TestReconcileRequeuesUnknown(t *testing.T) {
	f := startDurableFleet(t, 1, stalledFirstNodeConfig())
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	sub, err := f.cli.SubmitRun(ctx, client.SubmitRunRequest{
		Workload: client.Workload{Mix: "w1", Seed: 13},
		Options:  client.RunOptions{Policy: "equip"},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Kill the coordinator AND restart the node with a fresh pool at the
	// same address: the new node process has no record of the run.
	f.killCoordinator()
	old := f.nodes[0]
	old.agent.Stop()
	nodeAddr := old.ts.Listener.Addr().String()
	old.ts.CloseClientConnections()
	old.ts.Close()
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), 30*time.Second)
	old.pool.Drain(drainCtx)
	cancelDrain()

	pool := runqueue.New(fastNodeConfig(0))
	ts := serveAt(t, nodeAddr, server.New(pool))
	f.restartCoordinator()
	agent := StartAgent(AgentConfig{
		Coordinator:   f.cli.Base(),
		Advertise:     "http://" + nodeAddr,
		RetryInterval: 20 * time.Millisecond,
		Logf:          t.Logf,
	}, pool)
	f.nodes[0] = &testNode{pool: pool, ts: ts, agent: agent}
	f.waitHealthy(ctx, 1)

	v, err := f.cli.WaitRun(ctx, sub.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != "done" {
		t.Fatalf("requeued run state = %s (%s), want done", v.State, v.Error)
	}
	if got := f.metric(ctx, "pdpad_fleet_requeues_total"); got < 1 {
		t.Errorf("requeues_total = %v, want >= 1", got)
	}
}

// TestReconcileRequeuesNeverReturning: the owning node never comes back →
// liveness declares it dead and the run requeues onto the survivor.
func TestReconcileRequeuesNeverReturning(t *testing.T) {
	f := startDurableFleetH(t, 2, patientHealth, stalledFirstNodeConfig())
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Round-robin: the first submission lands on node 0, which stalls it.
	sub, err := f.cli.SubmitRun(ctx, client.SubmitRunRequest{
		Workload: client.Workload{Mix: "w1", Seed: 21},
		Options:  client.RunOptions{Policy: "equip"},
	})
	if err != nil {
		t.Fatal(err)
	}

	f.killCoordinator()
	f.nodes[0].kill() // gone for good
	f.restartCoordinator()

	v, err := f.cli.WaitRun(ctx, sub.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != "done" {
		t.Fatalf("run after permanent node loss = %s (%s), want done on the survivor", v.State, v.Error)
	}
	if got := f.metric(ctx, "pdpad_fleet_node_deaths_total"); got < 1 {
		t.Errorf("node_deaths_total = %v, want >= 1", got)
	}
	if got := f.metric(ctx, "pdpad_fleet_requeues_total"); got < 1 {
		t.Errorf("requeues_total = %v, want >= 1", got)
	}
}

// TestReconcileStaleRevision: the returning node speaks an old wire
// revision → registration is refused with the typed code, it can never
// rejoin, and liveness eventually requeues its runs to the survivor.
func TestReconcileStaleRevision(t *testing.T) {
	f := startDurableFleetH(t, 2, patientHealth, stalledFirstNodeConfig())
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	sub, err := f.cli.SubmitRun(ctx, client.SubmitRunRequest{
		Workload: client.Workload{Mix: "w1", Seed: 31},
		Options:  client.RunOptions{Policy: "equip"},
	})
	if err != nil {
		t.Fatal(err)
	}

	f.killCoordinator()
	// Stop node 0's real agent: the only "return" it makes is a stale one.
	f.nodes[0].agent.Stop()
	f.restartCoordinator()

	var resp RegisterResponse
	err = f.cli.Do(ctx, http.MethodPost, "/v1/nodes/register", RegisterRequest{
		Addr:        f.nodes[0].ts.URL,
		APIRevision: server.APIRevision + 1,
	}, &resp)
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.Code != server.CodeIncompatibleRevision {
		t.Fatalf("stale-revision register: err = %v, want %s", err, server.CodeIncompatibleRevision)
	}

	v, err := f.cli.WaitRun(ctx, sub.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != "done" {
		t.Fatalf("run after stale-revision node = %s (%s), want done on the survivor", v.State, v.Error)
	}
	if got := f.metric(ctx, "pdpad_fleet_requeues_total"); got < 1 {
		t.Errorf("requeues_total = %v, want >= 1", got)
	}
}
