package fleet

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pdpasim"
	"pdpasim/client"
	"pdpasim/internal/leakcheck"
	"pdpasim/internal/runqueue"
	"pdpasim/internal/server"
)

func TestHealthConfigDefaults(t *testing.T) {
	h := HealthConfig{}.withDefaults()
	if h.HeartbeatInterval != 2*time.Second {
		t.Fatalf("interval = %v, want 2s", h.HeartbeatInterval)
	}
	if h.UnhealthyAfter != 6*time.Second {
		t.Fatalf("unhealthy = %v, want 6s", h.UnhealthyAfter)
	}
	if h.DeadAfter != 12*time.Second {
		t.Fatalf("dead = %v, want 12s", h.DeadAfter)
	}
	// Inverted bounds are repaired, never accepted.
	h = HealthConfig{HeartbeatInterval: time.Second, UnhealthyAfter: time.Millisecond, DeadAfter: time.Microsecond}.withDefaults()
	if h.UnhealthyAfter < h.HeartbeatInterval || h.DeadAfter < h.UnhealthyAfter {
		t.Fatalf("withDefaults left inverted bounds: %+v", h)
	}
}

func TestLivenessStateMachine(t *testing.T) {
	h := HealthConfig{HeartbeatInterval: 2 * time.Second}.withDefaults() // unhealthy 6s, dead 12s
	cases := []struct {
		silence time.Duration
		want    NodeState
	}{
		{0, StateHealthy},
		{time.Second, StateHealthy},
		{6*time.Second - time.Nanosecond, StateHealthy},
		{6 * time.Second, StateUnhealthy},
		{10 * time.Second, StateUnhealthy},
		{12*time.Second - time.Nanosecond, StateUnhealthy},
		{12 * time.Second, StateDrained},
		{time.Hour, StateDrained},
	}
	for _, tc := range cases {
		if got := h.Liveness(tc.silence); got != tc.want {
			t.Errorf("Liveness(%v) = %s, want %s", tc.silence, got, tc.want)
		}
	}
}

func TestCombineState(t *testing.T) {
	cases := []struct {
		live              NodeState
		cordoned, drained bool
		want              NodeState
	}{
		{StateHealthy, false, false, StateHealthy},
		{StateHealthy, true, false, StateCordoned},
		{StateHealthy, false, true, StateDrained},
		{StateHealthy, true, true, StateDrained},
		{StateUnhealthy, false, false, StateUnhealthy},
		{StateUnhealthy, true, false, StateUnhealthy}, // liveness outranks cordon
		{StateUnhealthy, false, true, StateDrained},
		{StateDrained, false, false, StateDrained},
		{StateDrained, true, false, StateDrained},
	}
	for _, tc := range cases {
		if got := CombineState(tc.live, tc.cordoned, tc.drained); got != tc.want {
			t.Errorf("CombineState(%s, cordoned=%v, drained=%v) = %s, want %s",
				tc.live, tc.cordoned, tc.drained, got, tc.want)
		}
	}
}

func TestParsePlacement(t *testing.T) {
	for _, ok := range []string{"", "round_robin", "least_loaded", "lpt"} {
		if _, err := ParsePlacement(ok); err != nil {
			t.Errorf("ParsePlacement(%q): %v", ok, err)
		}
	}
	if _, err := ParsePlacement("coordinated"); err == nil {
		t.Error("ParsePlacement accepted an unknown strategy")
	}
}

// --- in-process fleet harness -------------------------------------------

// fastHealth keeps fleet tests snappy: unhealthy after 90ms, dead at 180ms.
var fastHealth = HealthConfig{HeartbeatInterval: 30 * time.Millisecond}

type testNode struct {
	pool  *runqueue.Pool
	ts    *httptest.Server
	agent *Agent
}

// kill simulates node death: the HTTP surface vanishes and heartbeats stop.
func (n *testNode) kill() {
	n.agent.Stop()
	n.ts.CloseClientConnections()
	n.ts.Close()
}

type testFleet struct {
	t     *testing.T
	coord *Coordinator
	cts   *httptest.Server
	cli   *client.Client
	nodes []*testNode
}

// startFleet boots a coordinator plus n nodes and waits for every node to
// register. cfgFor customizes each node's pool (nil = defaults).
func startFleet(t *testing.T, n int, placement Placement, cfgFor func(i int) runqueue.Config) *testFleet {
	t.Helper()
	coord, err := NewCoordinator(Config{Placement: placement, Health: fastHealth, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	f := &testFleet{t: t, coord: coord}
	f.cts = httptest.NewServer(coord)
	f.cli = client.New(f.cts.URL)
	for i := 0; i < n; i++ {
		cfg := runqueue.Config{}
		if cfgFor != nil {
			cfg = cfgFor(i)
		}
		pool := runqueue.New(cfg)
		ts := httptest.NewServer(server.New(pool))
		agent := StartAgent(AgentConfig{
			Coordinator: f.cts.URL,
			Advertise:   ts.URL,
			Name:        fmt.Sprintf("n%d", i),
			CPUs:        60,
			Logf:        t.Logf,
		}, pool)
		select {
		case <-agent.Registered():
		case <-time.After(10 * time.Second):
			t.Fatalf("node %d never registered", i)
		}
		f.nodes = append(f.nodes, &testNode{pool: pool, ts: ts, agent: agent})
	}
	t.Cleanup(f.shutdown)
	return f
}

func (f *testFleet) shutdown() {
	for _, n := range f.nodes {
		if n.agent != nil {
			n.agent.Stop()
			n.agent = nil
		}
	}
	f.coord.Close()
	for _, n := range f.nodes {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		n.pool.Drain(ctx)
		cancel()
		if n.ts != nil {
			n.ts.Close()
			n.ts = nil
		}
	}
	f.cts.Close()
	f.cli.CloseIdleConnections()
}

// testSweep is the grid used for the byte-identity contract: two policies,
// two seeds, small enough to simulate quickly but aggregated over real runs.
func testSweep() client.SubmitSweepRequest {
	return client.SubmitSweepRequest{SweepSpec: client.SweepSpec{
		Policies: []string{"equip", "gang"},
		Mixes:    []string{"w1"},
		Loads:    []float64{0.5},
		Seeds:    []int64{1, 2},
		NCPU:     32,
		WindowS:  30,
	}}
}

// standaloneCells runs the sweep on a plain single-node daemon and returns
// the cells JSON — the reference bytes fleets must reproduce.
func standaloneCells(t *testing.T) []byte {
	t.Helper()
	pool := runqueue.New(runqueue.Config{})
	ts := httptest.NewServer(server.New(pool))
	cli := client.New(ts.URL)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		pool.Drain(ctx)
		cancel()
		ts.Close()
		cli.CloseIdleConnections()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	sub, err := cli.SubmitSweep(ctx, testSweep())
	if err != nil {
		t.Fatal(err)
	}
	v, err := cli.WaitSweep(ctx, sub.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != "done" {
		t.Fatalf("standalone sweep state = %s, errors %v", v.State, v.Errors)
	}
	return v.Cells
}

// TestFleetSweepByteIdentical is the PR's acceptance contract: a sweep
// sharded across any number of nodes under any placement strategy yields
// cells byte-identical to the same sweep on a single standalone daemon.
func TestFleetSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations; skipped in -short")
	}
	want := standaloneCells(t)
	if len(want) == 0 {
		t.Fatal("standalone sweep produced no cells")
	}
	for _, placement := range []Placement{PlaceRoundRobin, PlaceLeastLoaded, PlaceLPT} {
		for _, nodes := range []int{1, 2, 3} {
			t.Run(fmt.Sprintf("%s/%dnode", placement, nodes), func(t *testing.T) {
				f := startFleet(t, nodes, placement, nil)
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
				defer cancel()
				sub, err := f.cli.SubmitSweep(ctx, testSweep())
				if err != nil {
					t.Fatal(err)
				}
				v, err := f.cli.WaitSweep(ctx, sub.ID, 0)
				if err != nil {
					t.Fatal(err)
				}
				if v.State != "done" {
					t.Fatalf("fleet sweep state = %s, errors %v", v.State, v.Errors)
				}
				if !bytes.Equal(v.Cells, want) {
					t.Errorf("fleet cells differ from standalone:\nfleet: %s\nwant:  %s", v.Cells, want)
				}
			})
		}
	}
}

// TestFleetNodeDeathMidSweep kills a node while its members are in flight:
// the coordinator must requeue them onto the survivor and the finished
// sweep's cells must still be byte-identical to the standalone reference.
func TestFleetNodeDeathMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations; skipped in -short")
	}
	defer leakcheck.Check(t)
	want := standaloneCells(t)

	// Node 0 stalls every simulation long enough for the kill to land while
	// its members are running; node 1 simulates normally.
	var stall atomic.Bool
	stall.Store(true)
	real := func(ctx context.Context, spec runqueue.Spec) (*pdpasim.Outcome, error) {
		ws, opts := spec.Facade()
		return pdpasim.RunContext(ctx, ws, opts)
	}
	f := startFleet(t, 2, PlaceRoundRobin, func(i int) runqueue.Config {
		if i != 0 {
			return runqueue.Config{}
		}
		return runqueue.Config{Simulate: func(ctx context.Context, spec runqueue.Spec) (*pdpasim.Outcome, error) {
			if stall.Load() {
				select {
				case <-time.After(2 * time.Second):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return real(ctx, spec)
		}}
	})

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	sub, err := f.cli.SubmitSweep(ctx, testSweep())
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin over two nodes put half the members on the doomed node.
	f.nodes[0].kill()
	v, err := f.cli.WaitSweep(ctx, sub.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != "done" {
		t.Fatalf("sweep state after node death = %s, errors %v", v.State, v.Errors)
	}
	if !bytes.Equal(v.Cells, want) {
		t.Errorf("cells after node death differ from standalone:\nfleet: %s\nwant:  %s", v.Cells, want)
	}
	met, err := f.cli.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if met["pdpad_fleet_node_deaths_total"] < 1 {
		t.Errorf("node_deaths_total = %v, want >= 1", met["pdpad_fleet_node_deaths_total"])
	}
	if met["pdpad_fleet_requeues_total"] < 1 {
		t.Errorf("requeues_total = %v, want >= 1", met["pdpad_fleet_requeues_total"])
	}
	f.shutdown()
}

// TestFleetRunProxy exercises the proxied run plane end to end: submit,
// dedup, wait, list, events.
func TestFleetRunProxy(t *testing.T) {
	f := startFleet(t, 2, PlaceLeastLoaded, fastNodeConfig)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	req := client.SubmitRunRequest{
		Workload: client.Workload{Mix: "w1", Load: 0.6, WindowS: 60, Seed: 7},
		Options:  client.RunOptions{Policy: "equip"},
	}
	sub, err := f.cli.SubmitRun(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID != "run-000001" {
		t.Errorf("coordinator run ID = %q, want run-000001", sub.ID)
	}
	v, err := f.cli.WaitRun(ctx, sub.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != "done" || len(v.Result) == 0 {
		t.Fatalf("run state = %s, result bytes = %d", v.State, len(v.Result))
	}

	// Identical resubmission resolves fleet-side without a fresh placement.
	again, err := f.cli.SubmitRun(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != sub.ID || !again.CacheHit {
		t.Errorf("resubmit = %+v, want same ID with cache_hit", again)
	}

	page, err := f.cli.Runs(ctx, client.ListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Runs) != 1 || page.Runs[0].ID != sub.ID {
		t.Errorf("run list = %+v, want exactly %s", page.Runs, sub.ID)
	}

	var states []string
	err = f.cli.FollowRun(ctx, sub.ID, func(ev client.Event) bool {
		if ev.RunID != sub.ID {
			t.Errorf("event run_id = %q, want %q", ev.RunID, sub.ID)
		}
		states = append(states, ev.State)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(states) == 0 || states[len(states)-1] != "done" {
		t.Errorf("event states = %v, want trailing done", states)
	}
}

// fastNodeConfig makes node pools simulate instantly for control-plane
// tests that don't care about real results.
func fastNodeConfig(int) runqueue.Config {
	return runqueue.Config{
		Warmup: time.Millisecond,
		Simulate: func(ctx context.Context, spec runqueue.Spec) (*pdpasim.Outcome, error) {
			ws := pdpasim.WorkloadSpec{Mix: spec.Workload.Mix, Load: 0.2, NCPU: 8,
				Window: 5 * time.Second, Seed: spec.Workload.Seed}
			return pdpasim.RunContext(ctx, ws, pdpasim.Options{Policy: pdpasim.Equipartition})
		},
	}
}

// TestCordonStopsPlacements cordons the only node: running work finishes,
// new submissions are refused with no_healthy_nodes, uncordon restores.
func TestCordonStopsPlacements(t *testing.T) {
	f := startFleet(t, 1, PlaceRoundRobin, fastNodeConfig)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	page, err := f.cli.Nodes(ctx, client.ListOptions{})
	if err != nil || len(page.Nodes) != 1 {
		t.Fatalf("nodes = %+v, err %v", page.Nodes, err)
	}
	id := page.Nodes[0].ID
	nv, err := f.cli.CordonNode(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if nv.State != string(StateCordoned) || !nv.Cordoned {
		t.Fatalf("after cordon: %+v", nv)
	}
	_, err = f.cli.SubmitRun(ctx, client.SubmitRunRequest{
		Workload: client.Workload{Mix: "w1", Seed: 1},
		Options:  client.RunOptions{Policy: "equip"},
	})
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.Code != server.CodeNoHealthyNodes {
		t.Fatalf("submit on cordoned fleet: err = %v, want %s", err, server.CodeNoHealthyNodes)
	}
	if _, err := f.cli.UncordonNode(ctx, id); err != nil {
		t.Fatal(err)
	}
	sub, err := f.cli.SubmitRun(ctx, client.SubmitRunRequest{
		Workload: client.Workload{Mix: "w1", Seed: 1},
		Options:  client.RunOptions{Policy: "equip"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := f.cli.WaitRun(ctx, sub.ID, 0); err != nil || v.State != "done" {
		t.Fatalf("after uncordon: view %+v err %v", v, err)
	}
}

// TestDrainNodeRequeues drains a busy node by hand: its in-flight run moves
// to the other node and completes.
func TestDrainNodeRequeues(t *testing.T) {
	var stall atomic.Bool
	stall.Store(true)
	f := startFleet(t, 2, PlaceRoundRobin, func(i int) runqueue.Config {
		cfg := fastNodeConfig(i)
		if i == 0 {
			inner := cfg.Simulate
			cfg.Simulate = func(ctx context.Context, spec runqueue.Spec) (*pdpasim.Outcome, error) {
				if stall.Load() {
					select {
					case <-time.After(2 * time.Second):
					case <-ctx.Done():
						return nil, ctx.Err()
					}
				}
				return inner(ctx, spec)
			}
		}
		return cfg
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Round-robin: first submission lands on node 0, which stalls it.
	sub, err := f.cli.SubmitRun(ctx, client.SubmitRunRequest{
		Workload: client.Workload{Mix: "w1", Seed: 3},
		Options:  client.RunOptions{Policy: "equip"},
	})
	if err != nil {
		t.Fatal(err)
	}
	nv, err := f.cli.DrainNode(ctx, f.nodes[0].agent.ID())
	if err != nil {
		t.Fatal(err)
	}
	if nv.State != string(StateDrained) {
		t.Errorf("drained node state = %s", nv.State)
	}
	v, err := f.cli.WaitRun(ctx, sub.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != "done" {
		t.Fatalf("run after drain = %s (%s)", v.State, v.Error)
	}
	met, err := f.cli.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if met["pdpad_fleet_requeues_total"] < 1 {
		t.Errorf("requeues_total = %v, want >= 1", met["pdpad_fleet_requeues_total"])
	}
}

// TestHeartbeatTimeoutDrainsNode stops a node's heartbeats and watches the
// coordinator walk it healthy → unhealthy → drained.
func TestHeartbeatTimeoutDrainsNode(t *testing.T) {
	f := startFleet(t, 2, PlaceRoundRobin, fastNodeConfig)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	id := f.nodes[0].agent.ID()
	f.nodes[0].agent.Stop()

	sawUnhealthy := false
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("node %s never drained (unhealthy seen: %v)", id, sawUnhealthy)
		}
		page, err := f.cli.Nodes(ctx, client.ListOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var state string
		for _, n := range page.Nodes {
			if n.ID == id {
				state = n.State
			}
		}
		if state == string(StateUnhealthy) {
			sawUnhealthy = true
		}
		if state == string(StateDrained) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The survivor keeps the fleet serving.
	sub, err := f.cli.SubmitRun(ctx, client.SubmitRunRequest{
		Workload: client.Workload{Mix: "w1", Seed: 9},
		Options:  client.RunOptions{Policy: "equip"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := f.cli.WaitRun(ctx, sub.ID, 0); err != nil || v.State != "done" {
		t.Fatalf("survivor run: %+v err %v", v, err)
	}
}

// TestRegisterRevisionMismatch: a node speaking another API revision is
// refused with the typed envelope code.
func TestRegisterRevisionMismatch(t *testing.T) {
	f := startFleet(t, 0, PlaceRoundRobin, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var resp RegisterResponse
	err := f.cli.Do(ctx, http.MethodPost, "/v1/nodes/register", RegisterRequest{
		Addr:        "http://127.0.0.1:1",
		APIRevision: server.APIRevision + 1,
	}, &resp)
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.Code != server.CodeIncompatibleRevision || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("mismatched registration: err = %v, want 400 %s", err, server.CodeIncompatibleRevision)
	}
}

// TestCoordinatorVersion: the coordinator reports its role and revision.
func TestCoordinatorVersion(t *testing.T) {
	f := startFleet(t, 0, PlaceRoundRobin, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := f.cli.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v.Role != server.RoleCoordinator || v.APIRevision != server.APIRevision {
		t.Fatalf("version = %+v", v)
	}
}

// TestNoNodesRejectsSubmissions: an empty fleet refuses work with the
// typed no_healthy_nodes code rather than hanging.
func TestNoNodesRejectsSubmissions(t *testing.T) {
	f := startFleet(t, 0, PlaceRoundRobin, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := f.cli.SubmitRun(ctx, client.SubmitRunRequest{
		Workload: client.Workload{Mix: "w1"},
		Options:  client.RunOptions{Policy: "equip"},
	})
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.Code != server.CodeNoHealthyNodes {
		t.Fatalf("submit on empty fleet: err = %v, want %s", err, server.CodeNoHealthyNodes)
	}
}
