package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pdpasim"
	"pdpasim/client"
	"pdpasim/internal/runqueue"
	"pdpasim/internal/server"
	"pdpasim/internal/store"
)

// mustRecord marshals v into a store record of the given kind.
func mustRecord(t *testing.T, kind string, v any) store.Record {
	t.Helper()
	payload, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return store.Record{Kind: kind, Payload: payload}
}

func TestRecoverStateLastWins(t *testing.T) {
	recs := []store.Record{
		mustRecord(t, kindCoordNode, nodeRecord{ID: "node-001", Addr: "http://a"}),
		mustRecord(t, kindCoordNode, nodeRecord{ID: "node-002", Addr: "http://b"}),
		mustRecord(t, kindCoordNode, nodeRecord{ID: "node-001", Addr: "http://a", Drained: true, ScaleDrained: true}),
		mustRecord(t, kindCoordRun, crunRecord{ID: "run-000001", State: "queued"}),
		mustRecord(t, kindCoordRun, crunRecord{ID: "run-000001", State: "running", NodeID: "node-002"}),
		mustRecord(t, kindCoordSweep, csweepRecord{ID: "sweep-000001", RunIDs: []string{"run-000001"}}),
	}
	rec := recoverState(recs)
	if rec.dropped != 0 {
		t.Fatalf("dropped = %d, want 0", rec.dropped)
	}
	if len(rec.nodes) != 2 || rec.nodes[0].ID != "node-001" || rec.nodes[1].ID != "node-002" {
		t.Fatalf("nodes = %+v, want node-001 then node-002", rec.nodes)
	}
	if !rec.nodes[0].Drained || !rec.nodes[0].ScaleDrained {
		t.Errorf("node-001 = %+v, want the later drained record to win", rec.nodes[0])
	}
	if len(rec.runs) != 1 || rec.runs[0].State != "running" || rec.runs[0].NodeID != "node-002" {
		t.Fatalf("runs = %+v, want one run in its latest state", rec.runs)
	}
	if len(rec.sweeps) != 1 || rec.sweeps[0].ID != "sweep-000001" {
		t.Fatalf("sweeps = %+v", rec.sweeps)
	}
}

func TestRecoverStateDeletes(t *testing.T) {
	recs := []store.Record{
		mustRecord(t, kindCoordRun, crunRecord{ID: "run-000001", State: "queued"}),
		mustRecord(t, kindCoordRun, crunRecord{ID: "run-000002", State: "queued"}),
		mustRecord(t, kindCoordDel, delRecord{ID: "run-000001"}),
	}
	rec := recoverState(recs)
	if len(rec.runs) != 1 || rec.runs[0].ID != "run-000002" {
		t.Fatalf("runs = %+v, want run-000001 erased", rec.runs)
	}

	// Erased then recreated: the ID appears twice in first-seen order but
	// must come back exactly once, in its latest state.
	recs = append(recs, mustRecord(t, kindCoordRun, crunRecord{ID: "run-000001", State: "running"}))
	rec = recoverState(recs)
	if len(rec.runs) != 2 {
		t.Fatalf("runs = %+v, want exactly two", rec.runs)
	}
	seen := 0
	for _, rr := range rec.runs {
		if rr.ID == "run-000001" {
			seen++
			if rr.State != "running" {
				t.Errorf("recreated run state = %s, want running", rr.State)
			}
		}
	}
	if seen != 1 {
		t.Fatalf("run-000001 appears %d times, want once", seen)
	}
}

func TestRecoverStateDropsWreckage(t *testing.T) {
	recs := []store.Record{
		{Kind: kindCoordRun, Payload: []byte("{half a record")},
		{Kind: kindCoordNode, Payload: []byte(`{"addr":"http://x"}`)}, // empty ID
		{Kind: "unknown-kind", Payload: []byte(`{}`)},
		{Kind: kindCoordDel, Payload: []byte("??")},
		mustRecord(t, kindCoordRun, crunRecord{ID: "run-000001", State: "queued"}),
	}
	rec := recoverState(recs)
	if rec.dropped != 4 {
		t.Errorf("dropped = %d, want 4", rec.dropped)
	}
	if len(rec.runs) != 1 || len(rec.nodes) != 0 {
		t.Errorf("survivors = %d runs %d nodes, want 1/0", len(rec.runs), len(rec.nodes))
	}
}

// TestRecoverStateAcrossCompaction round-trips durable state through a
// compaction: snapshot generation plus post-snapshot journal records must
// fold together with the same last-wins semantics.
func TestRecoverStateAcrossCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	appendRec := func(kind string, v any) {
		t.Helper()
		if err := st.Append(mustRecord(t, kind, v)); err != nil {
			t.Fatal(err)
		}
	}
	appendRec(kindCoordNode, nodeRecord{ID: "node-001", Addr: "http://a"})
	appendRec(kindCoordRun, crunRecord{ID: "run-000001", State: "queued", NodeID: "node-001"})
	// Compact to a snapshot holding the node in a newer state, then journal
	// a newer run state on top of it.
	if err := st.Compact([]store.Record{
		mustRecord(t, kindCoordNode, nodeRecord{ID: "node-001", Addr: "http://a", Cordoned: true}),
		mustRecord(t, kindCoordRun, crunRecord{ID: "run-000001", State: "queued", NodeID: "node-001"}),
	}); err != nil {
		t.Fatal(err)
	}
	appendRec(kindCoordRun, crunRecord{ID: "run-000001", State: "running", NodeID: "node-001"})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := recoverState(st2.TakeRecovered())
	if len(rec.nodes) != 1 || !rec.nodes[0].Cordoned {
		t.Fatalf("nodes = %+v, want the snapshot's cordoned node", rec.nodes)
	}
	if len(rec.runs) != 1 || rec.runs[0].State != "running" {
		t.Fatalf("runs = %+v, want the journal's running state to win", rec.runs)
	}
}

// --- durable fleet harness ----------------------------------------------

// serveAt serves h on a specific address, retrying while a previous
// listener's port frees up; addr "" picks a fresh ephemeral port. This is
// what lets a test coordinator restart at the same URL its agents hold.
func serveAt(t *testing.T, addr string, h http.Handler) *httptest.Server {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var l net.Listener
	var err error
	deadline := time.Now().Add(10 * time.Second)
	for {
		l, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("binding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	ts := &httptest.Server{Listener: l, Config: &http.Server{Handler: h}}
	ts.Start()
	return ts
}

// durableFleet is a fleet whose coordinator persists to a store and can be
// killed and restarted at the same address, with node daemons surviving the
// outage — the in-process double of the fleetsmoke kill -9 leg.
type durableFleet struct {
	t      *testing.T
	dir    string
	addr   string
	health HealthConfig
	st     *store.Store
	coord  *Coordinator
	cts    *httptest.Server
	cli    *client.Client
	nodes  []*testNode
	killed bool
}

func startDurableFleet(t *testing.T, n int, cfgFor func(i int) runqueue.Config) *durableFleet {
	return startDurableFleetH(t, n, fastHealth, cfgFor)
}

func startDurableFleetH(t *testing.T, n int, health HealthConfig, cfgFor func(i int) runqueue.Config) *durableFleet {
	t.Helper()
	f := &durableFleet{t: t, dir: t.TempDir(), health: health}
	st, err := store.Open(f.dir, store.Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	f.st = st
	coord, err := NewCoordinator(Config{Health: f.health, Logf: t.Logf, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	f.coord = coord
	f.cts = serveAt(t, "", coord)
	f.addr = f.cts.Listener.Addr().String()
	f.cli = client.New(f.cts.URL)
	for i := 0; i < n; i++ {
		cfg := runqueue.Config{}
		if cfgFor != nil {
			cfg = cfgFor(i)
		}
		pool := runqueue.New(cfg)
		ts := httptest.NewServer(server.New(pool))
		agent := StartAgent(AgentConfig{
			Coordinator:   f.cts.URL,
			Advertise:     ts.URL,
			Name:          fmt.Sprintf("n%d", i),
			CPUs:          60,
			RetryInterval: 20 * time.Millisecond,
			Logf:          t.Logf,
		}, pool)
		select {
		case <-agent.Registered():
		case <-time.After(10 * time.Second):
			t.Fatalf("node %d never registered", i)
		}
		f.nodes = append(f.nodes, &testNode{pool: pool, ts: ts, agent: agent})
	}
	t.Cleanup(f.shutdown)
	return f
}

// killCoordinator simulates the coordinator process dying: HTTP surface
// gone, monitor stopped, store handle released. Node daemons keep running.
func (f *durableFleet) killCoordinator() {
	f.cts.CloseClientConnections()
	f.cts.Close()
	f.coord.Close()
	f.st.Close()
	f.killed = true
}

// restartCoordinator brings a fresh coordinator up from the same store at
// the same address, as a supervisor would after a crash.
func (f *durableFleet) restartCoordinator() {
	f.t.Helper()
	st, err := store.Open(f.dir, store.Options{SyncInterval: -1})
	if err != nil {
		f.t.Fatal(err)
	}
	f.st = st
	coord, err := NewCoordinator(Config{Health: f.health, Logf: f.t.Logf, Store: st})
	if err != nil {
		f.t.Fatal(err)
	}
	f.coord = coord
	f.cts = serveAt(f.t, f.addr, coord)
	f.cli.CloseIdleConnections()
	f.cli = client.New(f.cts.URL)
	f.killed = false
}

// waitHealthy polls until want nodes report healthy (agents re-registered
// and reconciled after a restart).
func (f *durableFleet) waitHealthy(ctx context.Context, want int) {
	f.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		page, err := f.cli.Nodes(ctx, client.ListOptions{})
		healthy := 0
		if err == nil {
			for _, nv := range page.Nodes {
				if nv.State == string(StateHealthy) {
					healthy++
				}
			}
			if healthy >= want {
				return
			}
		}
		if time.Now().After(deadline) {
			f.t.Fatalf("fleet never reached %d healthy nodes (last: %d, err %v)", want, healthy, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (f *durableFleet) shutdown() {
	for _, n := range f.nodes {
		if n.agent != nil {
			n.agent.Stop()
			n.agent = nil
		}
	}
	if !f.killed {
		f.killCoordinator()
	}
	for _, n := range f.nodes {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		n.pool.Drain(ctx)
		cancel()
		if n.ts != nil {
			n.ts.Close()
			n.ts = nil
		}
	}
	f.cli.CloseIdleConnections()
}

func (f *durableFleet) metric(ctx context.Context, name string) float64 {
	f.t.Helper()
	met, err := f.cli.Metrics(ctx)
	if err != nil {
		f.t.Fatal(err)
	}
	return met[name]
}

// TestCoordinatorRestartRecoversSweep is the tentpole contract in-process:
// a sweep interrupted by a coordinator kill mid-flight completes after a
// restart with cells byte-identical to a standalone daemon's, with the
// stragglers settled through the reconcile protocol rather than re-run.
func TestCoordinatorRestartRecoversSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations; skipped in -short")
	}
	want := standaloneCells(t)

	// Node 0 stalls every simulation so the kill lands while its members
	// are still in flight; node 1 simulates at full speed.
	var stall atomic.Bool
	stall.Store(true)
	real := func(ctx context.Context, spec runqueue.Spec) (*pdpasim.Outcome, error) {
		ws, opts := spec.Facade()
		return pdpasim.RunContext(ctx, ws, opts)
	}
	f := startDurableFleet(t, 2, func(i int) runqueue.Config {
		if i != 0 {
			return runqueue.Config{}
		}
		return runqueue.Config{Simulate: func(ctx context.Context, spec runqueue.Spec) (*pdpasim.Outcome, error) {
			if stall.Load() {
				select {
				case <-time.After(1500 * time.Millisecond):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return real(ctx, spec)
		}}
	})

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	sub, err := f.cli.SubmitSweep(ctx, testSweep())
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the fast node's members are done — their results are on
	// disk — while the stalled node still owns in-flight members.
	for {
		v, err := f.cli.Sweep(ctx, sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.Done >= 2 {
			break
		}
		select {
		case <-ctx.Done():
			t.Fatal("sweep never reached 2 done members")
		case <-time.After(10 * time.Millisecond):
		}
	}

	f.killCoordinator()
	stall.Store(false)
	f.restartCoordinator()
	f.waitHealthy(ctx, 2)

	v, err := f.cli.WaitSweep(ctx, sub.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != "done" {
		t.Fatalf("recovered sweep state = %s, errors %v", v.State, v.Errors)
	}
	if !bytes.Equal(v.Cells, want) {
		t.Errorf("recovered cells differ from standalone:\nfleet: %s\nwant:  %s", v.Cells, want)
	}
	if got := f.metric(ctx, "pdpad_fleet_recovered_runs_total"); got < 4 {
		t.Errorf("recovered_runs_total = %v, want >= 4", got)
	}
	if got := f.metric(ctx, "pdpad_fleet_recovered_sweeps_total"); got < 1 {
		t.Errorf("recovered_sweeps_total = %v, want >= 1", got)
	}
	if got := f.metric(ctx, "pdpad_fleet_reconciled_runs_total"); got < 1 {
		t.Errorf("reconciled_runs_total = %v, want >= 1", got)
	}
	if got := f.metric(ctx, "pdpad_fleet_requeues_total"); got != 0 {
		t.Errorf("requeues_total = %v, want 0 (reconcile must not re-run surviving work)", got)
	}
}

// TestCoordinatorRestartKeepsIDSequences: recovered ID counters continue
// after the highest persisted sequence instead of colliding with it.
func TestCoordinatorRestartKeepsIDSequences(t *testing.T) {
	f := startDurableFleet(t, 1, fastNodeConfig)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	sub, err := f.cli.SubmitRun(ctx, client.SubmitRunRequest{
		Workload: client.Workload{Mix: "w1", Seed: 1},
		Options:  client.RunOptions{Policy: "equip"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.cli.WaitRun(ctx, sub.ID, 0); err != nil {
		t.Fatal(err)
	}

	f.killCoordinator()
	f.restartCoordinator()
	f.waitHealthy(ctx, 1)

	again, err := f.cli.SubmitRun(ctx, client.SubmitRunRequest{
		Workload: client.Workload{Mix: "w2", Seed: 2},
		Options:  client.RunOptions{Policy: "equip"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != "run-000002" {
		t.Errorf("post-restart run ID = %s, want run-000002 (sequence continued)", again.ID)
	}
	// The pre-restart run is still addressable under its old ID.
	v, err := f.cli.Run(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != "done" || len(v.Result) == 0 {
		t.Errorf("recovered run %s = %s with %d result bytes", sub.ID, v.State, len(v.Result))
	}
}
