package fleet

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"pdpasim/internal/store"
)

// seedJournal builds a real on-disk journal holding one of each coordinator
// record kind and returns its raw bytes — an intact corpus seed the fuzzer
// then mutates into torn tails, corrupt CRCs, and garbage.
func seedJournal(f *testing.F) []byte {
	f.Helper()
	dir := f.TempDir()
	st, err := store.Open(dir, store.Options{SyncInterval: -1})
	if err != nil {
		f.Fatal(err)
	}
	for _, rec := range []struct {
		kind string
		v    any
	}{
		{kindCoordNode, nodeRecord{ID: "node-001", Addr: "http://127.0.0.1:1", CPUs: 60}},
		{kindCoordRun, crunRecord{ID: "run-000001", Key: "k", State: "running", NodeID: "node-001", RemoteID: "run-000007"}},
		{kindCoordSweep, csweepRecord{ID: "sweep-000001", RunIDs: []string{"run-000001"}}},
		{kindCoordDel, delRecord{ID: "run-000001"}},
	} {
		payload, err := json.Marshal(rec.v)
		if err != nil {
			f.Fatal(err)
		}
		if err := st.Append(store.Record{Kind: rec.kind, Payload: payload}); err != nil {
			f.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "journal-000000.pdpj"))
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzRecoverState drives coordinator recovery with arbitrary store
// wreckage: the bytes are laid down both as a bare journal and as a
// mixed-generation snapshot+journal pair, opened through the real store,
// and folded by recoverState. Whatever the input: no panic, no error from
// Open (corruption is truncated and counted, never fatal), and every
// recovered entity carries a usable ID.
func FuzzRecoverState(f *testing.F) {
	valid := seedJournal(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)-3]) // torn tail
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)/2] ^= 0xFF // corrupt CRC mid-stream
	f.Add(mutated)
	f.Add([]byte("not a journal at all"))

	check := func(t *testing.T, st *store.Store) {
		rec := recoverState(st.TakeRecovered())
		if rec.dropped < 0 {
			t.Fatalf("negative drop count %d", rec.dropped)
		}
		for _, n := range rec.nodes {
			if n.ID == "" {
				t.Fatal("recovered node with empty ID")
			}
		}
		for _, r := range rec.runs {
			if r.ID == "" {
				t.Fatal("recovered run with empty ID")
			}
		}
		for _, sw := range rec.sweeps {
			if sw.ID == "" {
				t.Fatal("recovered sweep with empty ID")
			}
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// As a bare journal (generation 0, no snapshot).
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "journal-000000.pdpj"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := store.Open(dir, store.Options{SyncInterval: -1})
		if err != nil {
			t.Fatalf("Open on fuzzed journal: %v", err)
		}
		check(t, st)
		st.Close()

		// As a snapshot with the intact seed journaled on top: recovery
		// must fold mixed generations without panicking, whatever the
		// snapshot's condition.
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, "snapshot-000001.pdps"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir2, "journal-000001.pdpj"), valid, 0o644); err != nil {
			t.Fatal(err)
		}
		st2, err := store.Open(dir2, store.Options{SyncInterval: -1})
		if err != nil {
			t.Fatalf("Open on fuzzed snapshot: %v", err)
		}
		check(t, st2)
		st2.Close()
	})
}
