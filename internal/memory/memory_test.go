package memory

import (
	"math"
	"testing"

	"pdpasim/internal/sim"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		nodes int
		pen   float64
		rate  float64
	}{
		{0, 1.5, 0.1},
		{4, 0.9, 0.1},
		{4, 1.5, 0},
		{4, 1.5, 1.5},
	}
	for i, c := range cases {
		if _, err := New(c.nodes, c.pen, c.rate); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := New(4, 1.5, 0.1); err != nil {
		t.Fatal(err)
	}
}

func TestPerfectLocalityAtStart(t *testing.T) {
	m := MustNew(4, 2.0, 0.1)
	m.JobStarted(0, 1, []float64{1, 0, 0, 0})
	// First-touch: pages where the job runs => locality 1.
	if got := m.Locality(1, []float64{1, 0, 0, 0}); math.Abs(got-1) > 1e-9 {
		t.Fatalf("locality = %v, want 1", got)
	}
}

func TestRelocationHurtsThenHeals(t *testing.T) {
	m := MustNew(4, 2.0, 0.2)
	m.JobStarted(0, 1, []float64{1, 0, 0, 0})
	// The job moves entirely to node 1: all pages remote.
	away := []float64{0, 1, 0, 0}
	got := m.Advance(0, 1, away)
	if math.Abs(got-0.5) > 1e-9 { // fully remote at penalty 2 => 0.5
		t.Fatalf("post-move locality = %v, want 0.5", got)
	}
	// The migration daemon heals placement over time.
	prev := got
	for i := 1; i <= 30; i++ {
		cur := m.Advance(sim.Time(i)*sim.Second, 1, away)
		if cur+1e-12 < prev {
			t.Fatalf("locality regressed at %ds: %v -> %v", i, prev, cur)
		}
		prev = cur
	}
	if prev < 0.99 {
		t.Fatalf("locality after 30s = %v, want ~1", prev)
	}
}

func TestStableScheduleKeepsLocality(t *testing.T) {
	m := MustNew(4, 1.5, 0.1)
	share := []float64{0.5, 0.5, 0, 0}
	m.JobStarted(0, 1, share)
	for i := 1; i <= 10; i++ {
		if got := m.Advance(sim.Time(i)*sim.Second, 1, share); math.Abs(got-1) > 1e-9 {
			t.Fatalf("stable job lost locality: %v", got)
		}
	}
}

func TestChurnKeepsLocalityLow(t *testing.T) {
	// A job bounced between nodes every second never converges — the
	// instability cost of Section 5.1.1.
	m := MustNew(2, 2.0, 0.1)
	m.JobStarted(0, 1, []float64{1, 0})
	var minLoc float64 = 1
	for i := 1; i <= 20; i++ {
		share := []float64{1, 0}
		if i%2 == 0 {
			share = []float64{0, 1}
		}
		loc := m.Advance(sim.Time(i)*sim.Second, 1, share)
		if loc < minLoc {
			minLoc = loc
		}
	}
	if minLoc > 0.8 {
		t.Fatalf("churning job kept locality %v, want it hurt", minLoc)
	}
}

func TestUnknownJobNeutral(t *testing.T) {
	m := MustNew(2, 2.0, 0.1)
	if m.Advance(sim.Second, 42, []float64{1, 0}) != 1 {
		t.Fatal("unknown job should run at full speed")
	}
	if m.Locality(42, nil) != 1 {
		t.Fatal("unknown job locality should be 1")
	}
}

func TestJobLifecycle(t *testing.T) {
	m := MustNew(2, 2.0, 0.1)
	m.JobStarted(0, 1, []float64{1, 0})
	if m.Jobs() != 1 {
		t.Fatal("job not tracked")
	}
	m.JobFinished(1)
	if m.Jobs() != 0 {
		t.Fatal("job not dropped")
	}
}

func TestZeroShareDefaultsToNodeZero(t *testing.T) {
	m := MustNew(2, 2.0, 0.1)
	m.JobStarted(0, 1, nil)
	// Pages on node 0; running on node 0 => locality 1.
	if got := m.Locality(1, []float64{1, 0}); math.Abs(got-1) > 1e-9 {
		t.Fatalf("locality = %v", got)
	}
	// Running on node 1 => fully remote.
	if got := m.Locality(1, []float64{0, 1}); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("remote locality = %v", got)
	}
}

func TestLocalityBounds(t *testing.T) {
	m := MustNew(4, 3.0, 0.5)
	m.JobStarted(0, 1, []float64{0.25, 0.25, 0.25, 0.25})
	shares := [][]float64{
		{1, 0, 0, 0}, {0, 0, 0, 1}, {0.5, 0.5, 0, 0}, {0.25, 0.25, 0.25, 0.25},
	}
	for i, share := range shares {
		loc := m.Advance(sim.Time(i+1)*sim.Second, 1, share)
		if loc < 1/3.0-1e-9 || loc > 1+1e-9 {
			t.Fatalf("locality %v out of [1/penalty, 1]", loc)
		}
	}
}
