// Package memory models the CC-NUMA memory behaviour behind the paper's
// stability argument. The evaluation enables IRIX's automatic page migration
// (_DSM_MIGRATION=ALL_ON) and observes that a stable processor schedule "is
// very important to help the rest of mechanisms of the operating system
// (such as the memory migration) to do their work efficiently"
// (Section 5.1.1).
//
// The model: each application's working set is a distribution of pages over
// NUMA nodes. Threads access memory wherever it lives; accesses to remote
// nodes are slower, so the application's effective speed is scaled by a
// locality factor — the fraction of accesses that hit pages on the nodes the
// application is currently running on, discounted by the remote-access
// penalty. A page-migration daemon continuously moves pages toward the nodes
// the application runs on, at a bounded rate. A stable schedule therefore
// converges to locality 1; every reallocation or migration restarts part of
// the convergence — the emergent cost of instability.
package memory

import (
	"fmt"

	"pdpasim/internal/sim"
)

// Model tracks page placement for a set of jobs on a NUMA machine.
type Model struct {
	nodes int
	// remotePenalty is the relative cost of a remote access (>= 1): a job
	// with all pages remote runs at 1/remotePenalty speed.
	remotePenalty float64
	// migrationRate is the fraction of a job's misplaced pages the daemon
	// moves per second (0..1].
	migrationRate float64

	jobs map[int]*jobPages
}

type jobPages struct {
	// placement[n] is the fraction of the job's pages on node n; sums to 1.
	placement []float64
	lastTime  sim.Time
}

// New returns a memory model for a machine with nodes NUMA nodes.
// remotePenalty is the slowdown of a fully-remote working set (e.g. 1.5 for
// the Origin 2000's modest NUMA ratio); migrationRate is the per-second
// fraction of misplaced pages the migration daemon moves (e.g. 0.1).
func New(nodes int, remotePenalty, migrationRate float64) (*Model, error) {
	switch {
	case nodes < 1:
		return nil, fmt.Errorf("memory: need at least one node")
	case remotePenalty < 1:
		return nil, fmt.Errorf("memory: remote penalty %v < 1", remotePenalty)
	case migrationRate <= 0 || migrationRate > 1:
		return nil, fmt.Errorf("memory: migration rate %v out of (0, 1]", migrationRate)
	}
	return &Model{
		nodes:         nodes,
		remotePenalty: remotePenalty,
		migrationRate: migrationRate,
		jobs:          map[int]*jobPages{},
	}, nil
}

// MustNew is New that panics on error.
func MustNew(nodes int, remotePenalty, migrationRate float64) *Model {
	m, err := New(nodes, remotePenalty, migrationRate)
	if err != nil {
		panic(err)
	}
	return m
}

// JobStarted places a new job's working set uniformly over the nodes it
// first runs on (first-touch allocation). nodeShare[n] is the fraction of
// the job's processors on node n and must sum to ~1.
func (m *Model) JobStarted(t sim.Time, job int, nodeShare []float64) {
	p := &jobPages{placement: make([]float64, m.nodes), lastTime: t}
	copy(p.placement, m.normalized(nodeShare))
	m.jobs[job] = p
}

// JobFinished drops the job's pages.
func (m *Model) JobFinished(job int) { delete(m.jobs, job) }

func (m *Model) normalized(share []float64) []float64 {
	out := make([]float64, m.nodes)
	total := 0.0
	for n := 0; n < m.nodes && n < len(share); n++ {
		if share[n] > 0 {
			out[n] = share[n]
			total += share[n]
		}
	}
	if total <= 0 {
		// No processors yet: pages on node 0 (the allocating node).
		out[0] = 1
		return out
	}
	for n := range out {
		out[n] /= total
	}
	return out
}

// Advance migrates the job's pages toward its current processor placement
// (nodeShare) for the interval ending at t, then returns the locality
// factor in (0, 1]: the speed multiplier memory placement imposes.
//
// Migration follows an exponential approach: each second, migrationRate of
// the gap between the current and the ideal placement closes.
func (m *Model) Advance(t sim.Time, job int, nodeShare []float64) float64 {
	p, ok := m.jobs[job]
	if !ok {
		return 1
	}
	ideal := m.normalized(nodeShare)
	dt := (t - p.lastTime).Seconds()
	if dt > 0 {
		// Exponential decay of the misplacement: factor = (1-rate)^dt.
		remain := pow1m(m.migrationRate, dt)
		for n := range p.placement {
			p.placement[n] = ideal[n] + (p.placement[n]-ideal[n])*remain
		}
		p.lastTime = t
	}
	return m.locality(p, ideal)
}

// Locality returns the job's current locality factor without advancing time.
func (m *Model) Locality(job int, nodeShare []float64) float64 {
	p, ok := m.jobs[job]
	if !ok {
		return 1
	}
	return m.locality(p, m.normalized(nodeShare))
}

// locality computes the speed multiplier: the fraction of accesses that are
// local runs at full speed, the remote fraction at 1/remotePenalty.
func (m *Model) locality(p *jobPages, ideal []float64) float64 {
	local := 0.0
	for n := range p.placement {
		// Accesses from node n's processors hit local pages with
		// probability placement[n]; weight by the processor share.
		if ideal[n] > 0 {
			f := p.placement[n]
			if f > ideal[n] {
				// Pages beyond the node's access share don't help further.
				f = ideal[n]
			}
			local += f
		}
	}
	if local > 1 {
		local = 1
	}
	return local + (1-local)/m.remotePenalty
}

// pow1m computes (1-rate)^dt without math.Pow edge cases for rate = 1.
func pow1m(rate, dt float64) float64 {
	if rate >= 1 {
		return 0
	}
	// (1-rate)^dt = e^(dt·ln(1-rate)); for the small rates used here the
	// direct form is stable.
	out := 1.0
	base := 1 - rate
	for dt >= 1 {
		out *= base
		dt--
	}
	if dt > 0 {
		// Linear interpolation for the fractional second — close enough for
		// a daemon model and avoids importing math for Pow.
		out *= 1 - rate*dt
	}
	return out
}

// Jobs returns how many jobs the model tracks.
func (m *Model) Jobs() int { return len(m.jobs) }
