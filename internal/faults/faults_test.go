package faults

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var inj *Injector
	if err := inj.Hit(context.Background(), SiteWorkerStart); err != nil {
		t.Fatalf("nil injector returned %v", err)
	}
	inj.Sleep(SiteCacheHit)
	if inj.Seen(SiteWorkerStart) != 0 || inj.Injected(SiteWorkerStart) != 0 {
		t.Fatal("nil injector counted occurrences")
	}
}

func TestOccurrenceWindow(t *testing.T) {
	inj := New(1, Rule{Site: SiteWorkerStart, Kind: KindError, After: 1, Count: 2})
	var got []bool
	for i := 0; i < 5; i++ {
		got = append(got, inj.Hit(context.Background(), SiteWorkerStart) != nil)
	}
	want := []bool{false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("occurrence %d: injected=%v, want %v (window After=1 Count=2)", i, got[i], want[i])
		}
	}
	if inj.Seen(SiteWorkerStart) != 5 || inj.Injected(SiteWorkerStart) != 2 {
		t.Fatalf("seen=%d injected=%d, want 5/2", inj.Seen(SiteWorkerStart), inj.Injected(SiteWorkerStart))
	}
	// Other sites are counted independently.
	if inj.Seen(SiteHTTPRequest) != 0 {
		t.Fatal("sites share occurrence counters")
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	sentinel := errors.New("second rule")
	inj := New(1,
		Rule{Site: SiteWorkerStart, Kind: KindError, Count: 1},
		Rule{Site: SiteWorkerStart, Kind: KindError, Err: sentinel},
	)
	if err := inj.Hit(context.Background(), SiteWorkerStart); !errors.Is(err, ErrInjected) {
		t.Fatalf("first occurrence: got %v, want ErrInjected", err)
	}
	if err := inj.Hit(context.Background(), SiteWorkerStart); !errors.Is(err, sentinel) {
		t.Fatalf("second occurrence: got %v, want sentinel from second rule", err)
	}
}

func TestProbIsSeededDeterministic(t *testing.T) {
	draw := func() []bool {
		inj := New(42, Rule{Site: SiteWorkerStart, Kind: KindError, Prob: 0.5})
		var got []bool
		for i := 0; i < 32; i++ {
			got = append(got, inj.Hit(context.Background(), SiteWorkerStart) != nil)
		}
		return got
	}
	a, b := draw(), draw()
	some, all := false, true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("occurrence %d differs across identically seeded injectors", i)
		}
		some = some || a[i]
		all = all && a[i]
	}
	if !some || all {
		t.Fatalf("Prob=0.5 over 32 draws fired always or never: %v", a)
	}
}

func TestErrorFault(t *testing.T) {
	cause := errors.New("flaky backend")
	inj := New(1, Rule{Site: SiteWorkerFinish, Kind: KindError, Err: cause, Transient: true})
	err := inj.Hit(context.Background(), SiteWorkerFinish)
	if !errors.Is(err, cause) {
		t.Fatalf("errors.Is lost the cause: %v", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || !fe.Transient() || fe.Site != SiteWorkerFinish {
		t.Fatalf("want transient *Error at worker_finish, got %#v", err)
	}
}

func TestPanicFault(t *testing.T) {
	inj := New(1, Rule{Site: SiteWorkerStart, Kind: KindPanic})
	defer func() {
		if recover() == nil {
			t.Fatal("KindPanic did not panic")
		}
	}()
	inj.Hit(context.Background(), SiteWorkerStart)
}

func TestHangHonorsContext(t *testing.T) {
	inj := New(1, Rule{Site: SiteWorkerStart, Kind: KindHang})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := inj.Hit(ctx, SiteWorkerStart)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang returned %v, want DeadlineExceeded", err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("hang returned before the context expired")
	}
}

func TestDelayFault(t *testing.T) {
	inj := New(1, Rule{Site: SiteCacheHit, Kind: KindDelay, Delay: 20 * time.Millisecond})
	start := time.Now()
	inj.Sleep(SiteCacheHit)
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("delay slept %v, want >= 20ms", d)
	}
}

func TestSleepIgnoresNonDelayRules(t *testing.T) {
	inj := New(1, Rule{Site: SiteCacheHit, Kind: KindPanic})
	inj.Sleep(SiteCacheHit) // must neither panic nor error
	if inj.Seen(SiteCacheHit) != 1 {
		t.Fatal("Sleep did not consume the occurrence")
	}
}
