// Package faults is a seeded, deterministic fault injector for the daemon
// stack. Instrumented code holds a possibly-nil *Injector and evaluates it
// at named sites; a nil injector — the production configuration — is a no-op
// costing one nil check, mirroring the nil-guarded *obs.Trace pattern.
//
// Rules select occurrences of a site by position (After/Count windows) or by
// a seeded probability, so a chaos test can script "the second simulation
// attempt panics" and get the same failure on every run, at every worker
// count, under -count=5.
package faults

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Site names a code location instrumented for fault injection.
type Site uint8

const (
	// SiteWorkerStart fires as a pool worker begins a simulation attempt.
	SiteWorkerStart Site = iota
	// SiteWorkerFinish fires after a simulation attempt succeeds, before the
	// pool records its outcome.
	SiteWorkerFinish
	// SiteCacheHit fires while a cache-hit submission is being served.
	SiteCacheHit
	// SiteHTTPRequest fires at the top of the daemon's HTTP handler.
	SiteHTTPRequest
	// SiteNodeHeartbeat fires as a fleet node agent is about to send a
	// heartbeat to its coordinator; an injected error drops that heartbeat,
	// so a rule here simulates a flaky or dead node.
	SiteNodeHeartbeat
	// SiteNodeDispatch fires as the coordinator is about to dispatch a run
	// to a node; an injected error fails that dispatch attempt and the
	// coordinator falls over to the next candidate node.
	SiteNodeDispatch

	siteCount
)

var siteNames = [siteCount]string{
	SiteWorkerStart:   "worker_start",
	SiteWorkerFinish:  "worker_finish",
	SiteCacheHit:      "cache_hit",
	SiteHTTPRequest:   "http_request",
	SiteNodeHeartbeat: "node_heartbeat",
	SiteNodeDispatch:  "node_dispatch",
}

// String returns the site's name.
func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return fmt.Sprintf("site(%d)", int(s))
}

// Kind is the failure mode a rule injects.
type Kind uint8

const (
	// KindPanic panics at the site — exercises recovery paths.
	KindPanic Kind = iota + 1
	// KindHang blocks until the site's context is cancelled, then returns
	// the context error: a run that never progresses on its own.
	KindHang
	// KindDelay sleeps for Rule.Delay (bounded by the context), then lets
	// the site proceed normally.
	KindDelay
	// KindError fails the site with Rule.Err (ErrInjected when unset).
	KindError
)

// Rule matches a window of occurrences at one site and injects a fault.
// Occurrences are counted per site from zero in evaluation order, which is
// what makes scripted scenarios deterministic.
type Rule struct {
	Site Site
	Kind Kind
	// After skips the first After occurrences of the site.
	After int
	// Count bounds the occurrence window to [After, After+Count); 0 leaves
	// it open-ended.
	Count int
	// Prob, when positive, fires the rule on each windowed occurrence with
	// this probability. Draws come from the injector's seeded generator, so
	// a fixed seed and evaluation order reproduce the same faults. 0 fires
	// on every windowed occurrence.
	Prob float64
	// Delay is the KindDelay sleep, and an optional extra latency before a
	// KindError failure surfaces.
	Delay time.Duration
	// Err overrides the KindError error; it is wrapped, so errors.Is still
	// finds it. Nil uses ErrInjected.
	Err error
	// Transient marks the injected error retryable: the returned *Error
	// reports Transient() == true, which bounded-retry loops honor.
	Transient bool
}

// ErrInjected is the default error carried by KindError faults.
var ErrInjected = errors.New("injected fault")

// Error is the error returned by KindError faults.
type Error struct {
	Site      Site
	transient bool
	err       error
}

func (e *Error) Error() string { return fmt.Sprintf("faults: %v at %s", e.err, e.Site) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *Error) Unwrap() error { return e.err }

// Transient reports whether the fault models a retryable condition.
func (e *Error) Transient() bool { return e.transient }

// Injector evaluates rules at instrumented sites. A nil *Injector is a
// no-op at every site. All methods are safe for concurrent use.
type Injector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	rules    []Rule
	seen     [siteCount]int
	injected [siteCount]int
}

// New returns an injector applying rules in order (first match per
// occurrence wins), with probability draws driven by seed.
func New(seed int64, rules ...Rule) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		rules: append([]Rule(nil), rules...),
	}
}

// plan counts one occurrence of site and returns the first rule firing on it.
func (i *Injector) plan(site Site) (Rule, bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	n := i.seen[site]
	i.seen[site]++
	for _, r := range i.rules {
		if r.Site != site || n < r.After {
			continue
		}
		if r.Count > 0 && n >= r.After+r.Count {
			continue
		}
		if r.Prob > 0 && i.rng.Float64() >= r.Prob {
			continue
		}
		i.injected[site]++
		return r, true
	}
	return Rule{}, false
}

// Hit evaluates one occurrence of site: it returns nil to proceed, panics,
// hangs, sleeps, or returns an injected error according to the first
// matching rule. ctx bounds hangs and delays.
func (i *Injector) Hit(ctx context.Context, site Site) error {
	if i == nil {
		return nil
	}
	r, ok := i.plan(site)
	if !ok {
		return nil
	}
	switch r.Kind {
	case KindPanic:
		panic(fmt.Sprintf("faults: injected panic at %s", site))
	case KindHang:
		if ctx == nil {
			select {}
		}
		<-ctx.Done()
		return ctx.Err()
	case KindDelay:
		return sleep(ctx, r.Delay)
	case KindError:
		if r.Delay > 0 {
			if err := sleep(ctx, r.Delay); err != nil {
				return err
			}
		}
		err := r.Err
		if err == nil {
			err = ErrInjected
		}
		return &Error{Site: site, transient: r.Transient, err: err}
	}
	return nil
}

// Sleep evaluates one occurrence of site honoring only KindDelay rules —
// for call sites where a panic or error cannot be expressed, such as
// serving an already-cached result. Other matching rules are consumed but
// ignored.
func (i *Injector) Sleep(site Site) {
	if i == nil {
		return
	}
	if r, ok := i.plan(site); ok && r.Kind == KindDelay {
		time.Sleep(r.Delay)
	}
}

func sleep(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Seen returns how many occurrences of site have been evaluated.
func (i *Injector) Seen(site Site) int {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.seen[site]
}

// Injected returns how many occurrences of site fired a rule.
func (i *Injector) Injected(site Site) int {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.injected[site]
}
