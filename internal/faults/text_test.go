package faults

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestRuleStringRoundTrip: every representative rule survives
// String → ParseRule → String unchanged, and the parsed rule matches the
// original field for field.
func TestRuleStringRoundTrip(t *testing.T) {
	rules := []Rule{
		{Site: SiteWorkerStart, Kind: KindPanic},
		{Site: SiteWorkerStart, Kind: KindPanic, Count: 1},
		{Site: SiteWorkerFinish, Kind: KindHang, After: 2},
		{Site: SiteCacheHit, Kind: KindDelay, Delay: 30 * time.Millisecond},
		{Site: SiteHTTPRequest, Kind: KindError, Transient: true, After: 1, Count: 3},
		{Site: SiteWorkerStart, Kind: KindError, Prob: 0.25, Delay: 5 * time.Millisecond},
		{Site: SiteWorkerStart, Kind: KindError, Err: errors.New("disk on fire")},
		{Site: SiteWorkerStart, Kind: KindError, Err: errors.New(`quoted "msg"`), Transient: true},
	}
	for _, want := range rules {
		text := want.String()
		got, err := ParseRule(text)
		if err != nil {
			t.Fatalf("ParseRule(%q): %v", text, err)
		}
		if got.String() != text {
			t.Errorf("round trip not a fixed point: %q → %q", text, got.String())
		}
		if got.Site != want.Site || got.Kind != want.Kind || got.After != want.After ||
			got.Count != want.Count || got.Prob != want.Prob || got.Delay != want.Delay ||
			got.Transient != want.Transient {
			t.Errorf("ParseRule(%q) = %+v, want %+v", text, got, want)
		}
		switch {
		case want.Err == nil && got.Err != nil:
			t.Errorf("ParseRule(%q) invented error %v", text, got.Err)
		case want.Err != nil && (got.Err == nil || got.Err.Error() != want.Err.Error()):
			t.Errorf("ParseRule(%q) err = %v, want message %q", text, got.Err, want.Err)
		}
	}
}

// TestParseRuleSyntax: the parser accepts the documented grammar and rejects
// everything else with a descriptive error.
func TestParseRuleSyntax(t *testing.T) {
	good := map[string]Rule{
		"worker_start:panic":                  {Site: SiteWorkerStart, Kind: KindPanic},
		"  cache_hit:delay   delay=10ms ":     {Site: SiteCacheHit, Kind: KindDelay, Delay: 10 * time.Millisecond},
		"worker_start:error transient":        {Site: SiteWorkerStart, Kind: KindError, Transient: true},
		"worker_start:error err=boom":         {Site: SiteWorkerStart, Kind: KindError, Err: errors.New("boom")},
		`worker_finish:error err="two words"`: {Site: SiteWorkerFinish, Kind: KindError, Err: errors.New("two words")},
		"http_request:error prob=0.5 after=1": {Site: SiteHTTPRequest, Kind: KindError, Prob: 0.5, After: 1},
		"worker_start:hang count=2 after=0":   {Site: SiteWorkerStart, Kind: KindHang, Count: 2},
		"worker_start:error delay=1s prob=1":  {Site: SiteWorkerStart, Kind: KindError, Delay: time.Second, Prob: 1},
	}
	for text, want := range good {
		got, err := ParseRule(text)
		if err != nil {
			t.Errorf("ParseRule(%q): %v", text, err)
			continue
		}
		if got.Site != want.Site || got.Kind != want.Kind || got.Transient != want.Transient ||
			got.After != want.After || got.Count != want.Count || got.Prob != want.Prob || got.Delay != want.Delay {
			t.Errorf("ParseRule(%q) = %+v, want %+v", text, got, want)
		}
	}

	bad := []string{
		"",
		"worker_start",           // no kind
		"nowhere:panic",          // unknown site
		"worker_start:explode",   // unknown kind
		"worker_start:panic x=1", // unknown option
		"worker_start:panic after=-1",
		"worker_start:panic count=two",
		"worker_start:error prob=1.5",
		"worker_start:error delay=fast",
		"worker_start:error err=",
		"worker_start:panic transient",   // transient on a non-error rule
		"worker_start:hang err=nope",     // err on a non-error rule
		"worker_start:panic transient=1", // transient takes no value
		`worker_start:error err="unterminated`,
	}
	for _, text := range bad {
		if r, err := ParseRule(text); err == nil {
			t.Errorf("ParseRule(%q) = %+v, want error", text, r)
		}
	}
}

// TestParseRules: semicolon- and newline-separated lists parse in order.
func TestParseRules(t *testing.T) {
	rules, err := ParseRules("worker_start:panic count=1; worker_start:error transient after=1\ncache_hit:delay delay=5ms;;")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(rules))
	}
	if rules[0].Kind != KindPanic || rules[1].Transient != true || rules[2].Delay != 5*time.Millisecond {
		t.Fatalf("rules parsed out of order: %+v", rules)
	}
	if _, err := ParseRules("worker_start:panic; bogus"); err == nil {
		t.Fatal("bad list entry not rejected")
	}
}

// TestParsedRulesDriveInjector: a text-built injector behaves identically to
// the equivalent Go-built one — the property that lets the scenario DSL and
// -inject flags reuse the chaos machinery.
func TestParsedRulesDriveInjector(t *testing.T) {
	rules, err := ParseRules("worker_start:error transient count=2; worker_start:panic after=2 count=1")
	if err != nil {
		t.Fatal(err)
	}
	inj := New(1, rules...)
	for i := 0; i < 2; i++ {
		err := inj.Hit(nil, SiteWorkerStart)
		var fe *Error
		if !errors.As(err, &fe) || !fe.Transient() {
			t.Fatalf("occurrence %d: err %v, want transient injected error", i, err)
		}
	}
	func() {
		defer func() {
			if rec := recover(); rec == nil || !strings.Contains(rec.(string), "injected panic") {
				t.Errorf("occurrence 2: recover %v, want injected panic", rec)
			}
		}()
		_ = inj.Hit(nil, SiteWorkerStart)
	}()
	if err := inj.Hit(nil, SiteWorkerStart); err != nil {
		t.Fatalf("occurrence 3 past every window: %v", err)
	}
}
