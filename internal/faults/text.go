package faults

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// This file gives rules a canonical text form so the same syntax configures
// fault injection everywhere: the scenario DSL's faults: list, the pdpad
// -inject flag, and test helpers. The grammar of one rule is
//
//	<site>:<kind> [after=N] [count=N] [prob=F] [delay=DUR] [transient] [err=MSG]
//
// where <site> is a Site name (worker_start, worker_finish, cache_hit,
// http_request), <kind> is panic, hang, delay, or error, DUR is a Go
// duration (30ms), and MSG may be Go-quoted to contain spaces. String and
// ParseRule are inverses up to canonical spelling: for any rule r,
// ParseRule(r.String()) stringifies back to r.String().

var kindNames = map[Kind]string{
	KindPanic: "panic",
	KindHang:  "hang",
	KindDelay: "delay",
	KindError: "error",
}

// String returns the kind's text name ("panic", "hang", "delay", "error").
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseSite converts a site name (as produced by Site.String) back to the
// Site.
func ParseSite(s string) (Site, error) {
	for i, n := range siteNames {
		if n == s {
			return Site(i), nil
		}
	}
	return 0, fmt.Errorf("faults: unknown site %q (valid: %s)", s, strings.Join(siteNames[:], ", "))
}

// ParseKind converts a kind name back to the Kind.
func ParseKind(s string) (Kind, error) {
	for k, n := range kindNames {
		if n == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("faults: unknown fault kind %q (valid: panic, hang, delay, error)", s)
}

// String renders the rule in its canonical text form, parseable by
// ParseRule. Zero-valued options are omitted; option order is fixed so equal
// rules render identically.
func (r Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%s", r.Site, r.Kind)
	if r.After > 0 {
		fmt.Fprintf(&b, " after=%d", r.After)
	}
	if r.Count > 0 {
		fmt.Fprintf(&b, " count=%d", r.Count)
	}
	if r.Prob > 0 {
		fmt.Fprintf(&b, " prob=%s", strconv.FormatFloat(r.Prob, 'g', -1, 64))
	}
	if r.Delay > 0 {
		fmt.Fprintf(&b, " delay=%s", r.Delay)
	}
	if r.Transient {
		b.WriteString(" transient")
	}
	if r.Err != nil {
		fmt.Fprintf(&b, " err=%q", r.Err.Error())
	}
	return b.String()
}

// ParseRule parses one rule from its text form. An err=MSG option yields a
// fresh errors.New(MSG): the message round-trips, error identity does not —
// errors.Is against the original value only works for rules built in Go.
func ParseRule(s string) (Rule, error) {
	toks, err := tokenize(s)
	if err != nil {
		return Rule{}, err
	}
	if len(toks) == 0 {
		return Rule{}, errors.New("faults: empty rule")
	}
	site, kind, ok := strings.Cut(toks[0], ":")
	if !ok {
		return Rule{}, fmt.Errorf("faults: rule %q must start with <site>:<kind>", s)
	}
	var r Rule
	if r.Site, err = ParseSite(site); err != nil {
		return Rule{}, err
	}
	if r.Kind, err = ParseKind(kind); err != nil {
		return Rule{}, err
	}
	for _, tok := range toks[1:] {
		key, val, hasVal := strings.Cut(tok, "=")
		switch key {
		case "after", "count":
			if !hasVal {
				return Rule{}, fmt.Errorf("faults: option %q needs a value", key)
			}
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Rule{}, fmt.Errorf("faults: bad %s=%q (want a non-negative integer)", key, val)
			}
			if key == "after" {
				r.After = n
			} else {
				r.Count = n
			}
		case "prob":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || !hasVal || p < 0 || p > 1 {
				return Rule{}, fmt.Errorf("faults: bad prob=%q (want a probability in [0,1])", val)
			}
			r.Prob = p
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || !hasVal || d < 0 {
				return Rule{}, fmt.Errorf("faults: bad delay=%q (want a non-negative Go duration)", val)
			}
			r.Delay = d
		case "transient":
			if hasVal {
				return Rule{}, fmt.Errorf("faults: option transient takes no value")
			}
			r.Transient = true
		case "err":
			msg := val
			if strings.HasPrefix(val, `"`) {
				if msg, err = strconv.Unquote(val); err != nil {
					return Rule{}, fmt.Errorf("faults: bad err=%s: %v", val, err)
				}
			}
			if !hasVal || msg == "" {
				return Rule{}, fmt.Errorf("faults: option err needs a non-empty message")
			}
			r.Err = errors.New(msg)
		default:
			return Rule{}, fmt.Errorf("faults: unknown rule option %q (valid: after, count, prob, delay, transient, err)", key)
		}
	}
	if r.Err != nil && r.Kind != KindError {
		return Rule{}, fmt.Errorf("faults: err= only applies to error rules, not %s", r.Kind)
	}
	if r.Transient && r.Kind != KindError {
		return Rule{}, fmt.Errorf("faults: transient only applies to error rules, not %s", r.Kind)
	}
	return r, nil
}

// ParseRules parses a list of rules separated by semicolons or newlines,
// skipping empty entries.
func ParseRules(s string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.FieldsFunc(s, func(r rune) bool { return r == ';' || r == '\n' }) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := ParseRule(part)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// tokenize splits a rule on spaces, keeping double-quoted spans (with Go
// escapes) inside one token so err="two words" survives.
func tokenize(s string) ([]string, error) {
	var toks []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQuote:
			cur.WriteByte(c)
			if c == '\\' && i+1 < len(s) {
				i++
				cur.WriteByte(s[i])
			} else if c == '"' {
				inQuote = false
			}
		case c == '"':
			cur.WriteByte(c)
			inQuote = true
		case c == ' ' || c == '\t':
			if cur.Len() > 0 {
				toks = append(toks, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("faults: unterminated quote in rule %q", s)
	}
	if cur.Len() > 0 {
		toks = append(toks, cur.String())
	}
	return toks, nil
}
