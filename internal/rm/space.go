package rm

import (
	"pdpasim/internal/machine"
	"pdpasim/internal/nthlib"
	"pdpasim/internal/obs"
	"pdpasim/internal/sched"
	"pdpasim/internal/selfanalyzer"
	"pdpasim/internal/sim"
	"pdpasim/internal/trace"
)

type managedJob struct {
	view *sched.JobView
	rt   *nthlib.Runtime
}

// SpaceManager enforces a dynamic space-sharing policy: each running job
// owns a disjoint CPU partition, resized whenever the policy replans (job
// arrival, job completion, or a performance report — the activations
// Section 4.1 lists).
type SpaceManager struct {
	eng  *sim.Engine
	mach *machine.Machine
	pol  sched.Policy
	rec  *trace.Recorder

	jobs             map[sched.JobID]*managedJob
	admissionChanged func()
	queued           func() int
	replanning       bool
	replanPending    bool
	tr               *obs.Trace

	// Snapshot scratch buffers, reused across calls because snapshot runs on
	// every replan and admission check and the allocations dominate the GC
	// profile. Two buffers, not one: an admission check (CanAdmit) can fire
	// while replanOnce is still iterating its own snapshot, and must not
	// clobber it. Policies never retain View.Jobs past the call.
	admitScratch []*sched.JobView
	planScratch  []*sched.JobView

	// Free lists recycling per-job state across jobs and runs. Safe because
	// nothing retains a job's view (or its Reports) past JobFinished: policies
	// see views only during calls and the run result is assembled from the
	// job tracks. reportsPool keeps grown Reports backing arrays — the
	// dominant steady-state allocation site of a PDPA run.
	viewFree    []*sched.JobView
	jobFree     []*managedJob
	reportsPool [][]sched.Report
}

// SetQueuedFunc wires the queuing system's queue-depth accessor into the
// views handed to the policy (load-adaptive policies read it).
func (m *SpaceManager) SetQueuedFunc(fn func() int) { m.queued = fn }

// SetTrace attaches a decision-trace recorder (nil detaches): performance
// reports and machine reallocations are recorded.
func (m *SpaceManager) SetTrace(tr *obs.Trace) { m.tr = tr }

// NewSpaceManager returns a manager driving pol over mach. rec may be nil.
func NewSpaceManager(eng *sim.Engine, mach *machine.Machine, pol sched.Policy, rec *trace.Recorder) *SpaceManager {
	return &SpaceManager{
		eng:  eng,
		mach: mach,
		pol:  pol,
		rec:  rec,
		jobs: make(map[sched.JobID]*managedJob),
	}
}

// Name implements Manager.
func (m *SpaceManager) Name() string { return m.pol.Name() }

// Policy returns the policy being driven.
func (m *SpaceManager) Policy() sched.Policy { return m.pol }

// Running implements Manager.
func (m *SpaceManager) Running() int { return len(m.jobs) }

// SetAdmissionChanged implements Manager.
func (m *SpaceManager) SetAdmissionChanged(fn func()) { m.admissionChanged = fn }

// StartJob implements Manager.
func (m *SpaceManager) StartJob(id sched.JobID, rt *nthlib.Runtime) {
	var view *sched.JobView
	if n := len(m.viewFree); n > 0 {
		view = m.viewFree[n-1]
		m.viewFree = m.viewFree[:n-1]
	} else {
		view = new(sched.JobView)
	}
	var reports []sched.Report
	if n := len(m.reportsPool); n > 0 {
		reports = m.reportsPool[n-1]
		m.reportsPool = m.reportsPool[:n-1]
	}
	*view = sched.JobView{
		ID:      id,
		Name:    rt.Profile().Name,
		Request: rt.Request(),
		Gran:    rt.Granularity(),
		Arrived: m.eng.Now(),
		Reports: reports,
	}
	var j *managedJob
	if n := len(m.jobFree); n > 0 {
		j = m.jobFree[n-1]
		m.jobFree = m.jobFree[:n-1]
	} else {
		j = new(managedJob)
	}
	*j = managedJob{view: view, rt: rt}
	m.jobs[id] = j
	m.pol.JobStarted(m.eng.Now(), view)
	m.replan()
}

// recycleJob returns a finished job's view, Reports backing array, and
// managedJob struct to the free lists.
func (m *SpaceManager) recycleJob(j *managedJob) {
	if r := j.view.Reports; cap(r) > 0 {
		m.reportsPool = append(m.reportsPool, r[:0])
	}
	*j.view = sched.JobView{}
	m.viewFree = append(m.viewFree, j.view)
	*j = managedJob{}
	m.jobFree = append(m.jobFree, j)
}

// ReportPerformance implements Manager.
func (m *SpaceManager) ReportPerformance(id sched.JobID, meas selfanalyzer.Measurement) {
	j, ok := m.jobs[id]
	if !ok {
		return
	}
	r := sched.Report{
		At:         m.eng.Now(),
		Procs:      meas.Procs,
		Speedup:    meas.Speedup,
		Efficiency: meas.Efficiency,
		IterTime:   meas.IterTime,
	}
	j.view.Reports = append(j.view.Reports, r)
	if m.tr != nil {
		m.tr.Record(obs.Event{
			At: r.At, Kind: obs.KindReport, Job: int32(id),
			Procs: int32(r.Procs), Eff: r.Efficiency, Speedup: r.Speedup,
		})
	}
	m.pol.ReportPerformance(m.eng.Now(), j.view, r)
	m.replan()
}

// JobFinished implements Manager.
func (m *SpaceManager) JobFinished(id sched.JobID) {
	j, ok := m.jobs[id]
	if !ok {
		return
	}
	m.mach.Release(m.eng.Now(), int(id))
	m.pol.JobFinished(m.eng.Now(), id)
	delete(m.jobs, id)
	m.recycleJob(j)
	m.replan()
}

// Reset returns the manager to the state NewSpaceManager(eng, mach, pol, rec)
// would produce while keeping the free lists and scratch buffers. The engine,
// machine, and policy stay attached (callers reset those separately); any
// queued-func, admission hook, and trace are detached.
func (m *SpaceManager) Reset(rec *trace.Recorder) {
	for id, j := range m.jobs {
		delete(m.jobs, id)
		m.recycleJob(j)
	}
	if m.jobs == nil {
		m.jobs = make(map[sched.JobID]*managedJob)
	}
	m.rec = rec
	m.admissionChanged = nil
	m.queued = nil
	m.replanning = false
	m.replanPending = false
	m.tr = nil
}

// CanAdmit implements Manager.
func (m *SpaceManager) CanAdmit() bool {
	return m.pol.WantsNewJob(m.snapshot(&m.admitScratch))
}

func (m *SpaceManager) snapshot(scratch *[]*sched.JobView) sched.View {
	jobs := (*scratch)[:0]
	for _, j := range m.jobs {
		jobs = append(jobs, j.view)
	}
	v := sched.View{
		Now:  m.eng.Now(),
		NCPU: m.mach.NCPU(),
		Jobs: jobs,
	}
	if m.queued != nil {
		v.Queued = m.queued()
	}
	v.SortJobs()
	*scratch = v.Jobs
	return v
}

// replan asks the policy for the desired allocation and applies it to the
// machine: shrinks first (freeing processors), then grows (clamped by what
// is free), and finally the run-to-completion guarantee — every running job
// keeps at least one processor, preempted from the largest partition if the
// machine is full.
func (m *SpaceManager) replan() {
	if m.replanning {
		// A policy callback triggered a nested replan (e.g. admission
		// started a job while applying allocations); fold it into one more
		// pass instead of recursing.
		m.replanPending = true
		return
	}
	m.replanning = true
	for {
		m.replanPending = false
		m.replanOnce()
		if !m.replanPending {
			break
		}
	}
	m.replanning = false
	if m.admissionChanged != nil {
		m.admissionChanged()
	}
}

func (m *SpaceManager) replanOnce() {
	if len(m.jobs) == 0 {
		return
	}
	now := m.eng.Now()
	view := m.snapshot(&m.planScratch)
	plan := m.pol.Plan(view)

	// view.Jobs is already sorted by ascending ID; iterate it directly
	// instead of materialising a separate id list.
	ids := view.Jobs

	// Shrinks release processors before any growth claims them.
	for _, jv := range ids {
		j := m.jobs[jv.ID]
		want, ok := plan[jv.ID]
		if !ok {
			continue
		}
		want = m.roundToGranularity(j, want)
		if want < j.view.Allocated {
			m.apply(now, j, want)
		}
	}
	for _, jv := range ids {
		j := m.jobs[jv.ID]
		want, ok := plan[jv.ID]
		if !ok {
			continue
		}
		want = m.roundToGranularity(j, want)
		if want > j.view.Allocated {
			m.applyGrow(now, j, want)
		}
	}

	// Backfill: a granular (MPI) job that could not start because its fair
	// share is less than one whole multiple of its process count takes what
	// actually fits from the free processors — otherwise rigid jobs starve
	// forever on a machine whose policy plans in smaller units. (A policy
	// that plans below a rigid job's request can never run it; the paper's
	// Section 4.3 calls this the fragmentation cost of rigidity.)
	for _, jv := range ids {
		j := m.jobs[jv.ID]
		g := j.rt.Granularity()
		if g <= 1 || j.view.Allocated >= g {
			continue
		}
		fit := m.mach.FreeCPUs() / g * g
		if fit > j.view.Request {
			fit = j.view.Request
		}
		if fit >= g {
			m.apply(now, j, fit)
		}
	}

	// Run-to-completion: a malleable job starved to zero takes one
	// processor from the largest partition. Granular (MPI) jobs instead
	// wait for a whole multiple of their process count — the fragmentation
	// cost of rigidity (Section 4.3).
	for _, jv := range ids {
		starving := m.jobs[jv.ID]
		if starving.rt.Granularity() > 1 {
			continue
		}
		for starving.view.Allocated < 1 {
			victim := m.largestPartition(jv.ID)
			if victim == nil || victim.view.Allocated <= 1 {
				break
			}
			m.apply(now, victim, victim.view.Allocated-1)
			m.apply(now, starving, 1)
		}
	}
}

// roundToGranularity clamps a planned allocation to what the job can
// actually use: non-negative, capped at the request, and a whole multiple of
// the job's granularity. A running granular job is never shrunk below one
// processor per process.
func (m *SpaceManager) roundToGranularity(j *managedJob, want int) int {
	if want < 0 {
		want = 0
	}
	if want > j.view.Request {
		want = j.view.Request
	}
	g := j.rt.Granularity()
	if g <= 1 {
		return want
	}
	want = want / g * g
	if want < g && j.view.Allocated >= g {
		want = g
	}
	return want
}

// applyGrow grows a partition, all-or-nothing in granularity units: the
// grant is pre-clamped to the free processors so a rigid job never receives
// a fraction of a process.
func (m *SpaceManager) applyGrow(now sim.Time, j *managedJob, want int) {
	g := j.rt.Granularity()
	if g > 1 {
		available := j.view.Allocated + m.mach.FreeCPUs()
		if want > available {
			want = available / g * g
		}
		if want <= j.view.Allocated {
			return
		}
	}
	m.apply(now, j, want)
}

func (m *SpaceManager) largestPartition(excluding sched.JobID) *managedJob {
	var best *managedJob
	bestID := sched.JobID(-1)
	for id, j := range m.jobs {
		if id == excluding {
			continue
		}
		if best == nil || j.view.Allocated > best.view.Allocated ||
			(j.view.Allocated == best.view.Allocated && id < bestID) {
			best = j
			bestID = id
		}
	}
	return best
}

func (m *SpaceManager) apply(now sim.Time, j *managedJob, want int) {
	granted := m.mach.Resize(now, int(j.view.ID), want)
	if granted == j.view.Allocated {
		return
	}
	if m.tr != nil {
		m.tr.Record(obs.Event{
			At: now, Kind: obs.KindRealloc, Job: int32(j.view.ID),
			From: int32(j.view.Allocated), To: int32(granted), Want: int32(want),
		})
	}
	j.view.Allocated = granted
	j.rt.SetAllocation(granted)
	if m.rec != nil {
		m.rec.ObserveAllocation(now, int(j.view.ID), granted)
	}
}
