package rm

import (
	"sort"

	"pdpasim/internal/machine"
	"pdpasim/internal/nthlib"
	"pdpasim/internal/sched"
	"pdpasim/internal/selfanalyzer"
	"pdpasim/internal/sim"
	"pdpasim/internal/trace"
)

type managedJob struct {
	view *sched.JobView
	rt   *nthlib.Runtime
}

// SpaceManager enforces a dynamic space-sharing policy: each running job
// owns a disjoint CPU partition, resized whenever the policy replans (job
// arrival, job completion, or a performance report — the activations
// Section 4.1 lists).
type SpaceManager struct {
	eng  *sim.Engine
	mach *machine.Machine
	pol  sched.Policy
	rec  *trace.Recorder

	jobs             map[sched.JobID]*managedJob
	admissionChanged func()
	queued           func() int
	replanning       bool
	replanPending    bool
}

// SetQueuedFunc wires the queuing system's queue-depth accessor into the
// views handed to the policy (load-adaptive policies read it).
func (m *SpaceManager) SetQueuedFunc(fn func() int) { m.queued = fn }

// NewSpaceManager returns a manager driving pol over mach. rec may be nil.
func NewSpaceManager(eng *sim.Engine, mach *machine.Machine, pol sched.Policy, rec *trace.Recorder) *SpaceManager {
	return &SpaceManager{
		eng:  eng,
		mach: mach,
		pol:  pol,
		rec:  rec,
		jobs: make(map[sched.JobID]*managedJob),
	}
}

// Name implements Manager.
func (m *SpaceManager) Name() string { return m.pol.Name() }

// Policy returns the policy being driven.
func (m *SpaceManager) Policy() sched.Policy { return m.pol }

// Running implements Manager.
func (m *SpaceManager) Running() int { return len(m.jobs) }

// SetAdmissionChanged implements Manager.
func (m *SpaceManager) SetAdmissionChanged(fn func()) { m.admissionChanged = fn }

// StartJob implements Manager.
func (m *SpaceManager) StartJob(id sched.JobID, rt *nthlib.Runtime) {
	view := &sched.JobView{
		ID:      id,
		Name:    rt.Profile().Name,
		Request: rt.Request(),
		Gran:    rt.Granularity(),
		Arrived: m.eng.Now(),
	}
	m.jobs[id] = &managedJob{view: view, rt: rt}
	m.pol.JobStarted(m.eng.Now(), view)
	m.replan()
}

// ReportPerformance implements Manager.
func (m *SpaceManager) ReportPerformance(id sched.JobID, meas selfanalyzer.Measurement) {
	j, ok := m.jobs[id]
	if !ok {
		return
	}
	r := sched.Report{
		At:         m.eng.Now(),
		Procs:      meas.Procs,
		Speedup:    meas.Speedup,
		Efficiency: meas.Efficiency,
		IterTime:   meas.IterTime,
	}
	j.view.Reports = append(j.view.Reports, r)
	m.pol.ReportPerformance(m.eng.Now(), j.view, r)
	m.replan()
}

// JobFinished implements Manager.
func (m *SpaceManager) JobFinished(id sched.JobID) {
	if _, ok := m.jobs[id]; !ok {
		return
	}
	m.mach.Release(m.eng.Now(), int(id))
	m.pol.JobFinished(m.eng.Now(), id)
	delete(m.jobs, id)
	m.replan()
}

// CanAdmit implements Manager.
func (m *SpaceManager) CanAdmit() bool {
	return m.pol.WantsNewJob(m.snapshot())
}

func (m *SpaceManager) snapshot() sched.View {
	v := sched.View{
		Now:  m.eng.Now(),
		NCPU: m.mach.NCPU(),
		Jobs: make([]*sched.JobView, 0, len(m.jobs)),
	}
	if m.queued != nil {
		v.Queued = m.queued()
	}
	for _, j := range m.jobs {
		v.Jobs = append(v.Jobs, j.view)
	}
	v.SortJobs()
	return v
}

// replan asks the policy for the desired allocation and applies it to the
// machine: shrinks first (freeing processors), then grows (clamped by what
// is free), and finally the run-to-completion guarantee — every running job
// keeps at least one processor, preempted from the largest partition if the
// machine is full.
func (m *SpaceManager) replan() {
	if m.replanning {
		// A policy callback triggered a nested replan (e.g. admission
		// started a job while applying allocations); fold it into one more
		// pass instead of recursing.
		m.replanPending = true
		return
	}
	m.replanning = true
	for {
		m.replanPending = false
		m.replanOnce()
		if !m.replanPending {
			break
		}
	}
	m.replanning = false
	if m.admissionChanged != nil {
		m.admissionChanged()
	}
}

func (m *SpaceManager) replanOnce() {
	if len(m.jobs) == 0 {
		return
	}
	now := m.eng.Now()
	view := m.snapshot()
	plan := m.pol.Plan(view)

	ids := make([]sched.JobID, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	// Shrinks release processors before any growth claims them.
	for _, id := range ids {
		j := m.jobs[id]
		want, ok := plan[id]
		if !ok {
			continue
		}
		want = m.roundToGranularity(j, want)
		if want < j.view.Allocated {
			m.apply(now, j, want)
		}
	}
	for _, id := range ids {
		j := m.jobs[id]
		want, ok := plan[id]
		if !ok {
			continue
		}
		want = m.roundToGranularity(j, want)
		if want > j.view.Allocated {
			m.applyGrow(now, j, want)
		}
	}

	// Backfill: a granular (MPI) job that could not start because its fair
	// share is less than one whole multiple of its process count takes what
	// actually fits from the free processors — otherwise rigid jobs starve
	// forever on a machine whose policy plans in smaller units. (A policy
	// that plans below a rigid job's request can never run it; the paper's
	// Section 4.3 calls this the fragmentation cost of rigidity.)
	for _, id := range ids {
		j := m.jobs[id]
		g := j.rt.Granularity()
		if g <= 1 || j.view.Allocated >= g {
			continue
		}
		fit := m.mach.FreeCPUs() / g * g
		if fit > j.view.Request {
			fit = j.view.Request
		}
		if fit >= g {
			m.apply(now, j, fit)
		}
	}

	// Run-to-completion: a malleable job starved to zero takes one
	// processor from the largest partition. Granular (MPI) jobs instead
	// wait for a whole multiple of their process count — the fragmentation
	// cost of rigidity (Section 4.3).
	for _, id := range ids {
		starving := m.jobs[id]
		if starving.rt.Granularity() > 1 {
			continue
		}
		for starving.view.Allocated < 1 {
			victim := m.largestPartition(id)
			if victim == nil || victim.view.Allocated <= 1 {
				break
			}
			m.apply(now, victim, victim.view.Allocated-1)
			m.apply(now, starving, 1)
		}
	}
}

// roundToGranularity clamps a planned allocation to what the job can
// actually use: non-negative, capped at the request, and a whole multiple of
// the job's granularity. A running granular job is never shrunk below one
// processor per process.
func (m *SpaceManager) roundToGranularity(j *managedJob, want int) int {
	if want < 0 {
		want = 0
	}
	if want > j.view.Request {
		want = j.view.Request
	}
	g := j.rt.Granularity()
	if g <= 1 {
		return want
	}
	want = want / g * g
	if want < g && j.view.Allocated >= g {
		want = g
	}
	return want
}

// applyGrow grows a partition, all-or-nothing in granularity units: the
// grant is pre-clamped to the free processors so a rigid job never receives
// a fraction of a process.
func (m *SpaceManager) applyGrow(now sim.Time, j *managedJob, want int) {
	g := j.rt.Granularity()
	if g > 1 {
		available := j.view.Allocated + m.mach.FreeCPUs()
		if want > available {
			want = available / g * g
		}
		if want <= j.view.Allocated {
			return
		}
	}
	m.apply(now, j, want)
}

func (m *SpaceManager) largestPartition(excluding sched.JobID) *managedJob {
	var best *managedJob
	bestID := sched.JobID(-1)
	for id, j := range m.jobs {
		if id == excluding {
			continue
		}
		if best == nil || j.view.Allocated > best.view.Allocated ||
			(j.view.Allocated == best.view.Allocated && id < bestID) {
			best = j
			bestID = id
		}
	}
	return best
}

func (m *SpaceManager) apply(now sim.Time, j *managedJob, want int) {
	granted := m.mach.Resize(now, int(j.view.ID), want)
	if granted == j.view.Allocated {
		return
	}
	j.view.Allocated = granted
	j.rt.SetAllocation(granted)
	if m.rec != nil {
		m.rec.ObserveAllocation(now, int(j.view.ID), granted)
	}
}
