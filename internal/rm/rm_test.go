package rm

import (
	"testing"

	"pdpasim/internal/app"
	"pdpasim/internal/core"
	"pdpasim/internal/machine"
	"pdpasim/internal/nthlib"
	"pdpasim/internal/policy"
	"pdpasim/internal/sched"
	"pdpasim/internal/selfanalyzer"
	"pdpasim/internal/sim"
	"pdpasim/internal/trace"
)

// env bundles engine + machine + recorder for manager tests.
type env struct {
	eng  *sim.Engine
	mach *machine.Machine
	rec  *trace.Recorder
}

func newEnv(ncpu int) *env {
	rec := trace.NewRecorder(ncpu)
	return &env{eng: sim.NewEngine(), mach: machine.New(ncpu, rec), rec: rec}
}

// startJob creates an instrumented runtime under mgr and returns it.
func startJob(e *env, mgr Manager, id sched.JobID, class app.Class, request int, onDone func()) *nthlib.Runtime {
	prof := app.ProfileFor(class)
	an := selfanalyzer.MustNew(selfanalyzer.ConfigFor(prof, 0), nil)
	var rt *nthlib.Runtime
	rt = nthlib.New(e.eng, prof, request, an, nthlib.Hooks{
		OnPerformance: func(m selfanalyzer.Measurement) { mgr.ReportPerformance(id, m) },
		OnDone: func() {
			mgr.JobFinished(id)
			if onDone != nil {
				onDone()
			}
		},
	})
	mgr.StartJob(id, rt)
	return rt
}

func TestSpaceManagerEquipartitionSplit(t *testing.T) {
	e := newEnv(60)
	mgr := NewSpaceManager(e.eng, e.mach, policy.NewEquipartition(), e.rec)
	a := startJob(e, mgr, 0, app.BT, 30, nil)
	b := startJob(e, mgr, 1, app.BT, 30, nil)
	if a.Allocated() != 30 {
		t.Fatalf("first job alone should get its request, got %d", a.Allocated())
	}
	if a.Allocated() != 30 || b.Allocated() != 30 {
		t.Fatalf("two jobs on 60: %d/%d", a.Allocated(), b.Allocated())
	}
	c := startJob(e, mgr, 2, app.BT, 30, nil)
	if a.Allocated() != 20 || b.Allocated() != 20 || c.Allocated() != 20 {
		t.Fatalf("three jobs on 60: %d/%d/%d, want 20 each",
			a.Allocated(), b.Allocated(), c.Allocated())
	}
	if mgr.Running() != 3 || mgr.Name() != "Equip" {
		t.Fatalf("running=%d name=%s", mgr.Running(), mgr.Name())
	}
}

func TestSpaceManagerRunToCompletionMinimum(t *testing.T) {
	e := newEnv(4)
	mgr := NewSpaceManager(e.eng, e.mach, policy.NewEquipartition(), e.rec)
	rts := make([]*nthlib.Runtime, 6)
	for i := range rts {
		rts[i] = startJob(e, mgr, sched.JobID(i), app.BT, 30, nil)
	}
	// 6 jobs on 4 CPUs: equipartition gives 1 to four jobs, 0 to two; the
	// run-to-completion pass cannot conjure CPUs, but nobody may hold 2
	// while another holds 0.
	zero, two := 0, 0
	for _, rt := range rts {
		switch rt.Allocated() {
		case 0:
			zero++
		case 2:
			two++
		}
	}
	if two > 0 && zero > 0 {
		t.Fatalf("starvation with slack: allocations %v", rts)
	}
}

func TestSpaceManagerPDPAFullRun(t *testing.T) {
	e := newEnv(60)
	mgr := NewSpaceManager(e.eng, e.mach, core.MustNew(core.DefaultParams()), e.rec)
	done := 0
	startJob(e, mgr, 0, app.Apsi, 2, func() { done++ })
	e.eng.RunUntilIdle()
	if done != 1 {
		t.Fatal("apsi did not finish under PDPA")
	}
	if mgr.Running() != 0 {
		t.Fatalf("running = %d after completion", mgr.Running())
	}
	if e.mach.FreeCPUs() != 60 {
		t.Fatalf("free = %d after completion", e.mach.FreeCPUs())
	}
}

func TestSpaceManagerPDPAConvergesHydro(t *testing.T) {
	e := newEnv(60)
	pdpa := core.MustNew(core.DefaultParams())
	mgr := NewSpaceManager(e.eng, e.mach, pdpa, e.rec)
	rt := startJob(e, mgr, 0, app.Hydro2D, 30, nil)
	// Run long enough for the search to settle but not to finish.
	e.eng.Run(60 * sim.Second)
	if rt.Done() {
		t.Skip("hydro finished too early for convergence check")
	}
	got := rt.Allocated()
	if got < 6 || got > 10 {
		t.Fatalf("hydro2d allocation after settling = %d, want 6..10", got)
	}
	if pdpa.StateOf(0) != core.Stable {
		t.Fatalf("state = %v", pdpa.StateOf(0))
	}
}

func TestSpaceManagerAdmissionCallback(t *testing.T) {
	e := newEnv(60)
	mgr := NewSpaceManager(e.eng, e.mach, policy.NewEquipartition(), e.rec)
	pokes := 0
	mgr.SetAdmissionChanged(func() { pokes++ })
	startJob(e, mgr, 0, app.Apsi, 2, nil)
	if pokes == 0 {
		t.Fatal("admission callback not invoked on start")
	}
	e.eng.RunUntilIdle()
	if mgr.Running() != 0 {
		t.Fatal("job not finished")
	}
}

func TestSpaceManagerUnknownJobIgnored(t *testing.T) {
	e := newEnv(8)
	mgr := NewSpaceManager(e.eng, e.mach, policy.NewEquipartition(), e.rec)
	mgr.ReportPerformance(99, selfanalyzer.Measurement{Procs: 4, Speedup: 3})
	mgr.JobFinished(99) // must not panic
}

func TestIRIXManagerBasicRun(t *testing.T) {
	e := newEnv(8)
	mgr := NewIRIXManager(e.eng, e.mach, e.rec, IRIXConfig{})
	prof := app.ProfileFor(app.Apsi)
	done := false
	var rt *nthlib.Runtime
	rt = nthlib.New(e.eng, prof, 2, nil, nthlib.Hooks{
		OnDone: func() { mgr.JobFinished(0); done = true },
	})
	mgr.StartJob(0, rt)
	e.eng.RunUntilIdle()
	if !done {
		t.Fatal("job did not finish under IRIX")
	}
	// With 2 threads on 8 CPUs there is no oversubscription: rate is the
	// full S(2), so the finish time matches the dedicated time closely.
	want := prof.DedicatedTime(2)
	got := e.eng.Now()
	if got < want || got > want+2*sim.Second {
		t.Fatalf("finish at %v, want ~%v", got, want)
	}
	// No events must remain (the quantum tick stops with no jobs).
	if e.eng.Pending() != 0 {
		t.Fatalf("pending events after completion: %d", e.eng.Pending())
	}
}

func TestIRIXOversubscriptionSlowsJobs(t *testing.T) {
	runOne := func(extraJobs int) sim.Time {
		e := newEnv(8)
		mgr := NewIRIXManager(e.eng, e.mach, e.rec, IRIXConfig{})
		prof := app.ProfileFor(app.Apsi)
		var finished sim.Time
		rt := nthlib.New(e.eng, prof, 2, nil, nthlib.Hooks{
			OnDone: func() { mgr.JobFinished(0); finished = e.eng.Now() },
		})
		mgr.StartJob(0, rt)
		for i := 1; i <= extraJobs; i++ {
			id := sched.JobID(i)
			p := app.ProfileFor(app.BT)
			r := nthlib.New(e.eng, p, 8, nil, nthlib.Hooks{
				OnDone: func() { mgr.JobFinished(id) },
			})
			mgr.StartJob(id, r)
		}
		e.eng.Run(4000 * sim.Second)
		return finished
	}
	alone := runOne(0)
	crowded := runOne(3) // 2 + 24 threads on 8 CPUs
	if crowded < 2*alone {
		t.Fatalf("oversubscription barely hurt: alone %v, crowded %v", alone, crowded)
	}
}

func TestIRIXGeneratesMigrationsAndShortBursts(t *testing.T) {
	e := newEnv(8)
	mgr := NewIRIXManager(e.eng, e.mach, e.rec, IRIXConfig{})
	for i := 0; i < 3; i++ {
		id := sched.JobID(i)
		prof := app.ProfileFor(app.Hydro2D)
		rt := nthlib.New(e.eng, prof, 6, nil, nthlib.Hooks{
			OnDone: func() { mgr.JobFinished(id) },
		})
		mgr.StartJob(id, rt)
	}
	e.eng.Run(60 * sim.Second)
	e.rec.Close(e.eng.Now())
	s := e.rec.Stats()
	if s.Migrations < 100 {
		t.Fatalf("migrations = %d, want many under oversubscription", s.Migrations)
	}
	if s.AvgBurst > 2*sim.Second {
		t.Fatalf("avg burst = %v, want short bursts", s.AvgBurst)
	}
}

func TestIRIXThreadAdjustment(t *testing.T) {
	e := newEnv(8)
	cfg := IRIXConfig{AdjustEvery: 5}
	mgr := NewIRIXManager(e.eng, e.mach, e.rec, cfg)
	ids := []sched.JobID{0, 1}
	for _, id := range ids {
		id := id
		prof := app.ProfileFor(app.BT)
		rt := nthlib.New(e.eng, prof, 8, nil, nthlib.Hooks{
			OnDone: func() { mgr.JobFinished(id) },
		})
		mgr.StartJob(id, rt)
	}
	// 16 threads on 8 CPUs; OMP_DYNAMIC should shed threads over time.
	e.eng.Run(30 * sim.Second)
	total := 0
	for _, j := range mgr.order {
		total += j.threads
	}
	if total >= 16 {
		t.Fatalf("threads = %d, OMP_DYNAMIC did not adapt", total)
	}
}

func TestIRIXSpaceSharingStability(t *testing.T) {
	// Contrast: same workload under Equipartition produces almost no
	// migrations compared with IRIX (Table 2's point).
	run := func(mk func(e *env) Manager) trace.Stats {
		e := newEnv(8)
		mgr := mk(e)
		for i := 0; i < 3; i++ {
			id := sched.JobID(i)
			prof := app.ProfileFor(app.Hydro2D)
			var an *selfanalyzer.Analyzer
			if mgr.Name() != "IRIX" {
				an = selfanalyzer.MustNew(selfanalyzer.ConfigFor(prof, 0), nil)
			}
			rt := nthlib.New(e.eng, prof, 6, an, nthlib.Hooks{
				OnPerformance: func(m selfanalyzer.Measurement) { mgr.ReportPerformance(id, m) },
				OnDone:        func() { mgr.JobFinished(id) },
			})
			mgr.StartJob(id, rt)
		}
		e.eng.Run(60 * sim.Second)
		e.rec.Close(e.eng.Now())
		return e.rec.Stats()
	}
	irix := run(func(e *env) Manager { return NewIRIXManager(e.eng, e.mach, e.rec, IRIXConfig{}) })
	equip := run(func(e *env) Manager { return NewSpaceManager(e.eng, e.mach, policy.NewEquipartition(), e.rec) })
	if irix.Migrations < 20*(equip.Migrations+1) {
		t.Fatalf("IRIX %d migrations vs Equip %d: stability gap too small",
			irix.Migrations, equip.Migrations)
	}
	if irix.AvgBurst >= equip.AvgBurst {
		t.Fatalf("IRIX bursts (%v) should be shorter than Equip (%v)",
			irix.AvgBurst, equip.AvgBurst)
	}
}
