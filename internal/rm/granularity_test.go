package rm

import (
	"testing"

	"pdpasim/internal/app"
	"pdpasim/internal/core"
	"pdpasim/internal/nthlib"
	"pdpasim/internal/policy"
	"pdpasim/internal/sched"
	"pdpasim/internal/selfanalyzer"
	"pdpasim/internal/sim"
)

// startGranular creates an instrumented runtime with allocation granularity
// g under mgr.
func startGranular(e *env, mgr Manager, id sched.JobID, class app.Class, request, g int, onDone func()) *nthlib.Runtime {
	prof := app.ProfileFor(class)
	an := selfanalyzer.MustNew(selfanalyzer.ConfigFor(prof, 0), nil)
	rt := nthlib.New(e.eng, prof, request, an, nthlib.Hooks{
		OnPerformance: func(m selfanalyzer.Measurement) { mgr.ReportPerformance(id, m) },
		OnDone: func() {
			mgr.JobFinished(id)
			if onDone != nil {
				onDone()
			}
		},
	})
	rt.SetGranularity(g)
	mgr.StartJob(id, rt)
	return rt
}

func TestRigidJobAllOrNothing(t *testing.T) {
	e := newEnv(60)
	mgr := NewSpaceManager(e.eng, e.mach, policy.NewEquipartition(), e.rec)
	// A malleable bt takes the whole machine first.
	a := startJob(e, mgr, 0, app.BT, 40, nil)
	if a.Allocated() != 40 {
		t.Fatalf("malleable alloc = %d", a.Allocated())
	}
	// A rigid 30-CPU job cannot fit in the remaining 20 even though
	// Equipartition would plan 30 for it: it must wait at zero.
	done := false
	b := startGranular(e, mgr, 1, app.BT, 30, 30, func() { done = true })
	if b.Allocated() != 0 && b.Allocated() != 30 {
		t.Fatalf("rigid job got a partial grant: %d", b.Allocated())
	}
	// Equipartition replans at arrival: job a shrinks to 30, so the rigid
	// job fits exactly.
	e.eng.Run(600 * sim.Second)
	if !done {
		t.Fatal("rigid job never ran")
	}
}

func TestRigidJobWaitsForSpace(t *testing.T) {
	e := newEnv(40)
	mgr := NewSpaceManager(e.eng, e.mach, policy.NewEquipartition(), e.rec)
	startJob(e, mgr, 0, app.Swim, 30, nil) // short malleable job
	rigid := startGranular(e, mgr, 1, app.BT, 30, 30, nil)
	// Equipartition plans 20/20; the rigid job rounds to 0 — fragmentation.
	if rigid.Allocated() != 0 {
		t.Fatalf("rigid alloc = %d before space frees", rigid.Allocated())
	}
	if rigid.Effective() != 0 {
		t.Fatalf("rigid effective = %d", rigid.Effective())
	}
	// When swim completes, the rigid job gets its 30 at once.
	e.eng.Run(120 * sim.Second)
	if got := rigid.Allocated(); got != 30 {
		t.Fatalf("rigid alloc = %d after space freed, want 30", got)
	}
}

func TestHybridGranularityMultiples(t *testing.T) {
	e := newEnv(60)
	mgr := NewSpaceManager(e.eng, e.mach, core.MustNew(core.DefaultParams()), e.rec)
	// MPI+OpenMP hydro2d with 4 processes: allocations are multiples of 4.
	rt := startGranular(e, mgr, 0, app.Hydro2D, 28, 4, nil)
	for i := 0; i < 400; i++ {
		if !e.eng.Step() {
			break
		}
		if eff := rt.Effective(); eff%4 != 0 {
			t.Fatalf("effective parallelism %d not a multiple of 4", eff)
		}
		if rt.Done() {
			break
		}
	}
}

func TestHybridPDPAConverges(t *testing.T) {
	e := newEnv(60)
	pdpa := core.MustNew(core.DefaultParams())
	mgr := NewSpaceManager(e.eng, e.mach, pdpa, e.rec)
	rt := startGranular(e, mgr, 0, app.Hydro2D, 28, 4, nil)
	e.eng.Run(80 * sim.Second)
	if rt.Done() {
		t.Skip("finished before convergence check")
	}
	got := rt.Allocated()
	if got%4 != 0 {
		t.Fatalf("allocation %d not a multiple of the process count", got)
	}
	// The efficiency frontier (~10) rounds to 8 or 12 in 4-CPU units.
	if got < 4 || got > 12 {
		t.Fatalf("hybrid hydro2d settled at %d, want 4..12", got)
	}
}

func TestGranularWaitingJobEventuallyStartsUnderPDPA(t *testing.T) {
	e := newEnv(32)
	pdpa := core.MustNew(core.DefaultParams())
	mgr := NewSpaceManager(e.eng, e.mach, pdpa, e.rec)
	startJob(e, mgr, 0, app.Swim, 30, nil) // occupies 30 of 32
	done := false
	startGranular(e, mgr, 1, app.BT, 24, 24, func() { done = true })
	e.eng.RunUntilIdle()
	if !done {
		t.Fatal("rigid job starved forever despite processors freeing up")
	}
}

func TestGranularityClamping(t *testing.T) {
	eng := sim.NewEngine()
	prof := app.ProfileFor(app.BT)
	rt := nthlib.New(eng, prof, 8, nil, nthlib.Hooks{})
	rt.SetGranularity(0)
	if rt.Granularity() != 1 {
		t.Fatalf("gran = %d", rt.Granularity())
	}
	rt.SetGranularity(99)
	if rt.Granularity() != 8 {
		t.Fatalf("gran = %d, want clamped to request", rt.Granularity())
	}
}

func TestGranularityFreesMachineOnCompletion(t *testing.T) {
	e := newEnv(16)
	mgr := NewSpaceManager(e.eng, e.mach, policy.NewEquipartition(), e.rec)
	startGranular(e, mgr, 0, app.Apsi, 8, 8, nil)
	e.eng.RunUntilIdle()
	if e.mach.FreeCPUs() != 16 {
		t.Fatalf("free = %d after completion", e.mach.FreeCPUs())
	}
}
