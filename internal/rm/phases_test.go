package rm

import (
	"testing"

	"pdpasim/internal/app"
	"pdpasim/internal/core"
	"pdpasim/internal/nthlib"
	"pdpasim/internal/selfanalyzer"
	"pdpasim/internal/sim"
)

// phasedProfile returns an application that scales like bt.A for its first
// 40 iterations and then collapses to apsi-like behaviour — the paper's
// "iterative parallel region with a variable working set" (Section 3.1).
func phasedProfile() *app.Profile {
	p := *app.ProfileFor(app.BT)
	p.Name = "phased"
	p.Iterations = 120
	p.Phases = []app.Phase{
		{FromIteration: 40, Speedup: app.ProfileFor(app.Apsi).Speedup},
	}
	return &p
}

func TestPhasedProfileValidate(t *testing.T) {
	p := phasedProfile()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.SpeedupAt(0).Speedup(30) < 20 {
		t.Fatal("early phase should scale like bt")
	}
	if p.SpeedupAt(40).Speedup(30) > 2 {
		t.Fatal("late phase should not scale")
	}
	bad := phasedProfile()
	bad.Phases[0].FromIteration = 0
	if bad.Validate() == nil {
		t.Fatal("phase at iteration 0 accepted")
	}
	bad = phasedProfile()
	bad.Phases = append(bad.Phases, app.Phase{FromIteration: 10, Speedup: bad.Speedup})
	if bad.Validate() == nil {
		t.Fatal("unsorted phases accepted")
	}
}

func TestPDPAAdaptsToPhaseCollapse(t *testing.T) {
	e := newEnv(60)
	pdpa := core.MustNew(core.DefaultParams())
	mgr := NewSpaceManager(e.eng, e.mach, pdpa, e.rec)
	prof := phasedProfile()
	an := selfanalyzer.MustNew(selfanalyzer.ConfigFor(prof, 0), nil)
	var rt *nthlib.Runtime
	rt = nthlib.New(e.eng, prof, 30, an, nthlib.Hooks{
		OnPerformance: func(m selfanalyzer.Measurement) { mgr.ReportPerformance(0, m) },
		OnDone:        func() { mgr.JobFinished(0) },
	})
	mgr.StartJob(0, rt)

	// Phase 1: the search grows the job to its request.
	var allocDuringPhase1 int
	for rt.IterationsDone() < 35 && e.eng.Step() {
	}
	allocDuringPhase1 = rt.Allocated()
	if allocDuringPhase1 < 24 {
		t.Fatalf("phase-1 allocation = %d, want near the request", allocDuringPhase1)
	}

	// Phase 2: scalability collapses; the measured efficiency falls below
	// the target and PDPA must walk the allocation down.
	for !rt.Done() && rt.Allocated() > 4 && e.eng.Step() {
	}
	if rt.Done() {
		t.Fatalf("job finished before PDPA adapted (alloc still %d)", rt.Allocated())
	}
	if got := rt.Allocated(); got > 4 {
		t.Fatalf("post-collapse allocation = %d, want <= 4", got)
	}
	if st := pdpa.StateOf(0); st != core.Dec && st != core.Stable {
		t.Fatalf("state = %v", st)
	}
}

func TestPhaseChangeMidIterationRates(t *testing.T) {
	// The iteration straddling the phase boundary runs at the old rate
	// until its boundary; the next iteration uses the new curve.
	eng := sim.NewEngine()
	prof := phasedProfile()
	prof.Iterations = 42
	rt := nthlib.New(eng, prof, 30, nil, nthlib.Hooks{})
	rt.SetAllocation(30)
	for rt.IterationsDone() < 39 && eng.Step() {
	}
	fastRate := rt.Profile().SpeedupAt(39).Speedup(30)
	for rt.IterationsDone() < 41 && eng.Step() {
	}
	// After iteration 40 the apsi-like curve governs: progress slows ~16x.
	slowRate := rt.Profile().SpeedupAt(40).Speedup(30)
	if slowRate >= fastRate/10 {
		t.Fatalf("phase rates not distinct: %v vs %v", fastRate, slowRate)
	}
	eng.RunUntilIdle()
	if !rt.Done() {
		t.Fatal("phased app did not finish")
	}
}
