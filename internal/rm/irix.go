package rm

import (
	"pdpasim/internal/machine"
	"pdpasim/internal/nthlib"
	"pdpasim/internal/obs"
	"pdpasim/internal/sched"
	"pdpasim/internal/selfanalyzer"
	"pdpasim/internal/sim"
	"pdpasim/internal/trace"
)

// IRIXConfig parameterizes the native-scheduler model.
type IRIXConfig struct {
	// Quantum is the time-sharing quantum (default 100 ms).
	Quantum sim.Time
	// BusyWaitFactor is the efficiency multiplier applied while the machine
	// is oversubscribed: preempted OpenMP threads leave their siblings
	// spinning at barriers (MP_BLOCKTIME) and holding pages the runs need.
	// Default 0.7.
	BusyWaitFactor float64
	// MigrationCost is the dead time one thread migration costs its
	// application (cache/page locality loss on the CC-NUMA machine).
	// Default 2 ms.
	MigrationCost sim.Time
	// AdjustEvery is how often the SGI-MP runtime's OMP_DYNAMIC adaptation
	// runs, in quanta — deliberately slow ("unresponsiveness of the native
	// runtime to changes in the system load", Section 5.1.1). Default 100
	// (10 s per single-thread adjustment).
	AdjustEvery int
}

// DefaultIRIXConfig returns the configuration used by the evaluation.
func DefaultIRIXConfig() IRIXConfig {
	return IRIXConfig{
		Quantum:        100 * sim.Millisecond,
		BusyWaitFactor: 0.7,
		MigrationCost:  2 * sim.Millisecond,
		AdjustEvery:    100,
	}
}

func (c *IRIXConfig) applyDefaults() {
	d := DefaultIRIXConfig()
	if c.Quantum <= 0 {
		c.Quantum = d.Quantum
	}
	if c.BusyWaitFactor <= 0 || c.BusyWaitFactor > 1 {
		c.BusyWaitFactor = d.BusyWaitFactor
	}
	if c.MigrationCost < 0 {
		c.MigrationCost = d.MigrationCost
	}
	if c.AdjustEvery <= 0 {
		c.AdjustEvery = d.AdjustEvery
	}
}

type irixJob struct {
	id      sched.JobID
	rt      *nthlib.Runtime
	threads int // kernel threads (OMP_NUM_THREADS, adapted by OMP_DYNAMIC)
	// lastK is the thread-on-CPU count of the previous quantum; a running→0
	// edge is a preemption for the decision trace (recording the edge, not
	// every idle quantum, keeps the event count bounded).
	lastK int32
}

// IRIXManager models the native IRIX scheduler with the SGI-MP runtime:
// applications create as many kernel threads as processors they request, and
// every quantum the scheduler assigns threads to CPUs preferring affinity
// (a thread's previous CPU) but rotating runnable threads when the machine
// is oversubscribed — producing the migrations, short bursts, and chaotic
// execution views of Fig. 5 and Table 2.
//
// place runs every quantum — it is the single hottest function of an IRIX
// simulation — so the manager keeps its running set in an incrementally
// maintained id-sorted slice (no per-quantum map iteration or sort), reuses
// finished irixJob structs through a free list, and reads per-quantum
// migration counts from the machine's dense counters.
type IRIXManager struct {
	eng  *sim.Engine
	mach *machine.Machine
	rec  *trace.Recorder
	cfg  IRIXConfig
	tr   *obs.Trace

	// order is the running set sorted by ascending id, maintained on
	// StartJob/JobFinished; lookups binary-search it.
	order         []*irixJob
	freeJobs      []*irixJob
	cursor        int
	quantumCount  int
	tickScheduled bool
	admission     func()

	// Per-quantum scratch state, reused across ticks: place runs every
	// quantum (thousands of times per simulated run) and its transient
	// slices would otherwise dominate the allocation profile.
	tickFn   func()
	tickEv   *sim.Event
	threads  []machine.ThreadID
	selected []machine.ThreadID
	claimed  []bool
	placed   []machine.Placement
	homeless []machine.ThreadID
	running  []int32 // per-order-index thread-on-CPU counts this quantum
}

// NewIRIXManager returns the native-scheduler model over mach.
func NewIRIXManager(eng *sim.Engine, mach *machine.Machine, rec *trace.Recorder, cfg IRIXConfig) *IRIXManager {
	cfg.applyDefaults()
	m := &IRIXManager{
		eng:  eng,
		mach: mach,
		rec:  rec,
		cfg:  cfg,
	}
	m.tickFn = m.tick
	return m
}

// Reset returns the manager to the state NewIRIXManager(eng, mach, rec, cfg)
// would produce while keeping the free list and per-quantum scratch buffers.
// The quantum-tick event struct is kept for reuse: a reused manager's engine
// has been Reset (or drained), which detaches the old arming, and
// ScheduleInto re-arms a detached struct in place.
func (m *IRIXManager) Reset(rec *trace.Recorder, cfg IRIXConfig) {
	cfg.applyDefaults()
	for _, j := range m.order {
		j.rt = nil
		m.freeJobs = append(m.freeJobs, j)
	}
	m.order = m.order[:0]
	m.rec = rec
	m.cfg = cfg
	m.tr = nil
	m.cursor = 0
	m.quantumCount = 0
	m.tickScheduled = false
	m.admission = nil
}

// orderIndex returns the position of id in the id-sorted running set, or
// len(order) if absent (callers verify the id at the returned slot).
func (m *IRIXManager) orderIndex(id sched.JobID) int {
	lo, hi := 0, len(m.order)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.order[mid].id < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Name implements Manager.
func (m *IRIXManager) Name() string { return "IRIX" }

// SetTrace attaches a decision-trace recorder (nil detaches): preemptions —
// an application losing all its CPUs for a quantum — are recorded.
func (m *IRIXManager) SetTrace(tr *obs.Trace) { m.tr = tr }

// Running implements Manager.
func (m *IRIXManager) Running() int { return len(m.order) }

// CanAdmit implements Manager: the native scheduler has no coordination with
// the queuing system; the fixed multiprogramming level alone governs.
func (m *IRIXManager) CanAdmit() bool { return true }

// SetAdmissionChanged implements Manager.
func (m *IRIXManager) SetAdmissionChanged(fn func()) { m.admission = fn }

// ReportPerformance implements Manager. The native runtime takes no
// measurements; nothing flows here.
func (m *IRIXManager) ReportPerformance(id sched.JobID, meas selfanalyzer.Measurement) {}

// StartJob implements Manager.
func (m *IRIXManager) StartJob(id sched.JobID, rt *nthlib.Runtime) {
	var j *irixJob
	if n := len(m.freeJobs); n > 0 {
		j = m.freeJobs[n-1]
		m.freeJobs = m.freeJobs[:n-1]
		*j = irixJob{}
	} else {
		j = &irixJob{}
	}
	j.id, j.rt, j.threads = id, rt, rt.Request()
	// Insert into the id-sorted running set. Ids mostly arrive in increasing
	// order, so the common case is a plain append.
	m.order = append(m.order, j)
	for i := len(m.order) - 1; i > 0 && m.order[i-1].id > id; i-- {
		m.order[i-1], m.order[i] = m.order[i], m.order[i-1]
	}
	m.place()
	m.ensureTick()
}

// JobFinished implements Manager.
func (m *IRIXManager) JobFinished(id sched.JobID) {
	i := m.orderIndex(id)
	if i >= len(m.order) || m.order[i].id != id {
		return
	}
	j := m.order[i]
	m.order = append(m.order[:i], m.order[i+1:]...)
	j.rt = nil
	m.freeJobs = append(m.freeJobs, j)
	m.mach.ForgetThreads(int(id))
	m.place()
	if m.admission != nil {
		m.admission()
	}
}

func (m *IRIXManager) ensureTick() {
	if m.tickScheduled {
		return
	}
	m.tickScheduled = true
	m.tickEv = m.eng.ScheduleInto(m.tickEv, m.eng.Now()+m.cfg.Quantum, "irix/quantum", m.tickFn)
}

func (m *IRIXManager) tick() {
	m.tickScheduled = false
	if len(m.order) == 0 {
		return
	}
	m.quantumCount++
	if m.quantumCount%m.cfg.AdjustEvery == 0 {
		m.adjustThreads()
	}
	m.place()
	m.ensureTick()
}

// adjustThreads is the OMP_DYNAMIC model: the SGI-MP runtime adapts thread
// counts toward the machine capacity, but slowly — a single thread across
// the whole machine per adjustment interval, long after the load changed
// (the "unresponsiveness of the native runtime system to changes in the
// system load" of Section 5.1.1).
func (m *IRIXManager) adjustThreads() {
	total := 0
	for _, j := range m.order {
		total += j.threads
	}
	ncpu := m.mach.NCPU()
	switch {
	case total > ncpu:
		var victim *irixJob
		for _, j := range m.order {
			if j.threads > 1 && (victim == nil || j.threads > victim.threads) {
				victim = j
			}
		}
		if victim != nil {
			victim.threads--
		}
	case total < ncpu:
		var beneficiary *irixJob
		for _, j := range m.order {
			if j.threads < j.rt.Request() && (beneficiary == nil || j.threads < beneficiary.threads) {
				beneficiary = j
			}
		}
		if beneficiary != nil {
			beneficiary.threads++
		}
	}
}

// place computes this quantum's thread-to-CPU assignment and the resulting
// per-application progress rates.
func (m *IRIXManager) place() {
	now := m.eng.Now()
	jobs := m.order
	if len(jobs) == 0 {
		m.mach.PlaceQuantum(now, nil)
		return
	}
	// Global thread list in stable (job, thread) order.
	threads := m.threads[:0]
	for _, j := range jobs {
		for i := 0; i < j.threads; i++ {
			threads = append(threads, machine.ThreadID{Job: int(j.id), Thread: i})
		}
	}
	m.threads = threads
	ncpu := m.mach.NCPU()
	selected := threads
	if len(threads) > ncpu {
		// Round-robin rotation across quanta: each quantum runs the next
		// window of runnable threads.
		if m.cursor >= len(threads) {
			m.cursor %= len(threads)
		}
		selected = m.selected[:0]
		for i := 0; i < ncpu; i++ {
			selected = append(selected, threads[(m.cursor+i)%len(threads)])
		}
		m.selected = selected
		m.cursor = (m.cursor + ncpu) % len(threads)
	}

	// Affinity pass: threads keep their previous CPU when possible.
	if len(m.claimed) < ncpu {
		m.claimed = make([]bool, ncpu)
	}
	claimed := m.claimed[:ncpu]
	clear(claimed)
	placements := m.placed[:0]
	homeless := m.homeless[:0]
	for _, tid := range selected {
		if cpu, ok := m.mach.LastCPU(tid); ok && !claimed[cpu] {
			claimed[cpu] = true
			placements = append(placements, machine.Placement{CPU: cpu, Thread: tid})
			continue
		}
		homeless = append(homeless, tid)
	}
	cpu := 0
	for _, tid := range homeless {
		for cpu < ncpu && claimed[cpu] {
			cpu++
		}
		if cpu >= ncpu {
			break
		}
		claimed[cpu] = true
		placements = append(placements, machine.Placement{CPU: cpu, Thread: tid})
	}
	m.placed = placements
	m.homeless = homeless
	m.mach.PlaceQuantum(now, placements)

	// Per-application thread-on-CPU counts for the coming quantum, indexed
	// like the sorted running set.
	if cap(m.running) < len(jobs) {
		m.running = make([]int32, len(jobs)*2)
	}
	running := m.running[:len(jobs)]
	clear(running)
	for _, p := range placements {
		// Placements reference running jobs only; find the job's slot by
		// binary search over the id-sorted set.
		lo, hi := 0, len(jobs)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if int(jobs[mid].id) < p.Thread.Job {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		running[lo]++
	}
	oversubscribed := len(threads) > ncpu
	for idx, j := range jobs {
		k := int(running[idx])
		if m.rec != nil {
			m.rec.ObserveAllocation(now, int(j.id), k)
		}
		if k == 0 {
			if m.tr != nil && j.lastK > 0 {
				m.tr.Record(obs.Event{
					At: now, Kind: obs.KindPreempt, Job: int32(j.id), From: j.lastK,
				})
			}
			j.lastK = 0
			j.rt.SetRawRate(0, 0)
			continue
		}
		j.lastK = int32(k)
		s := j.rt.Profile().SpeedupAt(j.rt.IterationsDone()).Speedup(j.threads)
		rate := s * float64(k) / float64(j.threads)
		if oversubscribed {
			rate *= m.cfg.BusyWaitFactor
		}
		if mg := m.mach.QuantumMigrations(int(j.id)); mg > 0 && m.cfg.MigrationCost > 0 {
			loss := float64(mg) * float64(m.cfg.MigrationCost) / float64(m.cfg.Quantum)
			if loss > 0.9 {
				loss = 0.9
			}
			rate *= 1 - loss
		}
		// Always push the rate, even when unchanged since the previous
		// quantum: SetRate advances the progress integral in per-quantum
		// chunks, and coalescing chunks perturbs floating-point rounding
		// enough to change reported digits.
		j.rt.SetRawRate(rate, k)
	}
}
