package rm

import (
	"slices"

	"pdpasim/internal/machine"
	"pdpasim/internal/nthlib"
	"pdpasim/internal/sched"
	"pdpasim/internal/selfanalyzer"
	"pdpasim/internal/sim"
	"pdpasim/internal/trace"
)

// GangConfig parameterizes the gang-scheduling manager.
type GangConfig struct {
	// Slot is the time slice each row of the Ousterhout matrix runs
	// (default 2 s — coarse enough to amortize the switch).
	Slot sim.Time
	// SwitchPenalty is the dead time an application pays when its gang is
	// scheduled in after being switched out (cache/TLB refill on the
	// CC-NUMA machine). Default 50 ms.
	SwitchPenalty sim.Time
}

// DefaultGangConfig returns the standard configuration.
func DefaultGangConfig() GangConfig {
	return GangConfig{Slot: 2 * sim.Second, SwitchPenalty: 50 * sim.Millisecond}
}

func (c *GangConfig) applyDefaults() {
	d := DefaultGangConfig()
	if c.Slot <= 0 {
		c.Slot = d.Slot
	}
	if c.SwitchPenalty < 0 {
		c.SwitchPenalty = d.SwitchPenalty
	}
}

type gangJob struct {
	id  sched.JobID
	rt  *nthlib.Runtime
	row int
	// cpus are the machine CPUs the gang occupies while its row runs.
	cpus []int
	// wasRunning tracks whether the job ran in the previous slot (to charge
	// the switch penalty only on actual switches).
	wasRunning bool
}

// GangManager implements classic gang scheduling (Ousterhout matrix): jobs
// are packed into rows first-fit by their full processor request; time is
// sliced into slots and rows run round-robin, each job running with all of
// its threads simultaneously or not at all. Gang scheduling is the classic
// alternative to space sharing for parallel workloads: it gives every job
// dedicated-machine behaviour while it runs, at the price of time-dilation
// by the number of rows and of fragmentation inside rows — the trade-off
// the paper's Section 4.3 discussion of rigid allocations describes.
type GangManager struct {
	eng  *sim.Engine
	mach *machine.Machine
	rec  *trace.Recorder
	cfg  GangConfig

	jobs          map[sched.JobID]*gangJob
	rows          [][]sched.JobID
	activeRow     int
	tickScheduled bool
	admission     func()

	// applySlot scratch, reused across slots.
	placedBuf []machine.Placement
	idsBuf    []sched.JobID
}

// NewGangManager returns a gang scheduler over mach.
func NewGangManager(eng *sim.Engine, mach *machine.Machine, rec *trace.Recorder, cfg GangConfig) *GangManager {
	cfg.applyDefaults()
	return &GangManager{
		eng:  eng,
		mach: mach,
		rec:  rec,
		cfg:  cfg,
		jobs: make(map[sched.JobID]*gangJob),
	}
}

// Name implements Manager.
func (m *GangManager) Name() string { return "Gang" }

// Running implements Manager.
func (m *GangManager) Running() int { return len(m.jobs) }

// CanAdmit implements Manager: the fixed multiprogramming level governs.
func (m *GangManager) CanAdmit() bool { return true }

// SetAdmissionChanged implements Manager.
func (m *GangManager) SetAdmissionChanged(fn func()) { m.admission = fn }

// ReportPerformance implements Manager: gang scheduling ignores measured
// performance.
func (m *GangManager) ReportPerformance(id sched.JobID, meas selfanalyzer.Measurement) {}

// StartJob implements Manager: pack the job into the first row with enough
// spare capacity, or open a new row.
func (m *GangManager) StartJob(id sched.JobID, rt *nthlib.Runtime) {
	j := &gangJob{id: id, rt: rt}
	request := rt.Request()
	if request > m.mach.NCPU() {
		request = m.mach.NCPU()
	}
	j.row = m.placeInRow(id, request)
	m.jobs[id] = j
	m.assignCPUs(j, request)
	m.applySlot()
	m.ensureTick()
}

// placeInRow finds the first row whose occupancy leaves room for request.
func (m *GangManager) placeInRow(id sched.JobID, request int) int {
	for r := range m.rows {
		if m.rowOccupancy(r)+request <= m.mach.NCPU() {
			m.rows[r] = append(m.rows[r], id)
			return r
		}
	}
	m.rows = append(m.rows, []sched.JobID{id})
	return len(m.rows) - 1
}

func (m *GangManager) rowOccupancy(row int) int {
	total := 0
	for _, id := range m.rows[row] {
		if j, ok := m.jobs[id]; ok {
			total += len(j.cpus)
		}
	}
	return total
}

// assignCPUs fixes the CPU set a gang occupies within its row (disjoint from
// its row-mates).
func (m *GangManager) assignCPUs(j *gangJob, request int) {
	used := make([]bool, m.mach.NCPU())
	for _, id := range m.rows[j.row] {
		if other, ok := m.jobs[id]; ok && other != j {
			for _, cpu := range other.cpus {
				used[cpu] = true
			}
		}
	}
	for cpu := 0; cpu < len(used) && len(j.cpus) < request; cpu++ {
		if !used[cpu] {
			j.cpus = append(j.cpus, cpu)
		}
	}
}

// JobFinished implements Manager.
func (m *GangManager) JobFinished(id sched.JobID) {
	j, ok := m.jobs[id]
	if !ok {
		return
	}
	delete(m.jobs, id)
	row := m.rows[j.row]
	for i, rid := range row {
		if rid == id {
			m.rows[j.row] = append(row[:i], row[i+1:]...)
			break
		}
	}
	m.compactRows()
	m.mach.ForgetThreads(int(id))
	m.applySlot()
	if m.admission != nil {
		m.admission()
	}
}

// compactRows drops empty rows so completed workloads do not slow the
// remaining jobs.
func (m *GangManager) compactRows() {
	rows := m.rows[:0]
	for _, row := range m.rows {
		if len(row) > 0 {
			rows = append(rows, row)
		}
	}
	m.rows = rows
	for r, row := range m.rows {
		for _, id := range row {
			if j, ok := m.jobs[id]; ok {
				j.row = r
			}
		}
	}
	if len(m.rows) > 0 {
		m.activeRow %= len(m.rows)
	} else {
		m.activeRow = 0
	}
}

func (m *GangManager) ensureTick() {
	if m.tickScheduled {
		return
	}
	m.tickScheduled = true
	m.eng.After(m.cfg.Slot, "gang/slot", m.tick)
}

func (m *GangManager) tick() {
	m.tickScheduled = false
	if len(m.jobs) == 0 {
		return
	}
	if len(m.rows) > 0 {
		m.activeRow = (m.activeRow + 1) % len(m.rows)
	}
	m.applySlot()
	m.ensureTick()
}

// applySlot runs the active row's gangs at full speed and stops everyone
// else.
func (m *GangManager) applySlot() {
	now := m.eng.Now()
	placements := m.placedBuf[:0]
	ids := m.idsBuf[:0]
	for id := range m.jobs {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	m.idsBuf = ids

	for _, id := range ids {
		j := m.jobs[id]
		active := len(m.rows) > 0 && j.row == m.activeRow
		if !active {
			j.rt.SetRawRate(0, 0)
			j.wasRunning = false
			if m.rec != nil {
				m.rec.ObserveAllocation(now, int(id), 0)
			}
			continue
		}
		for i, cpu := range j.cpus {
			placements = append(placements, machine.Placement{
				CPU:    cpu,
				Thread: machine.ThreadID{Job: int(id), Thread: i},
			})
		}
		procs := len(j.cpus)
		speedup := j.rt.Profile().SpeedupAt(j.rt.IterationsDone()).Speedup(procs)
		if !j.wasRunning && m.cfg.SwitchPenalty > 0 {
			// Charge the gang-switch cost as a rate reduction over the slot.
			loss := float64(m.cfg.SwitchPenalty) / float64(m.cfg.Slot)
			if loss > 0.9 {
				loss = 0.9
			}
			speedup *= 1 - loss
		}
		j.rt.SetRawRate(speedup, procs)
		j.wasRunning = true
		if m.rec != nil {
			m.rec.ObserveAllocation(now, int(id), procs)
		}
	}
	m.placedBuf = placements
	m.mach.PlaceQuantum(now, placements)
}

// Rows returns the current number of rows in the scheduling matrix.
func (m *GangManager) Rows() int { return len(m.rows) }
