// Package rm implements the NANOS Resource Manager (Section 3.3): the
// user-level processor scheduler that decides how many processors each
// application receives and enforces the decision on the machine.
//
// Two managers exist:
//
//   - SpaceManager drives a sched.Policy (PDPA, Equipartition,
//     Equal_efficiency): disjoint per-job CPU partitions, resized when the
//     policy replans.
//   - IRIXManager models the native IRIX scheduler: every job runs as many
//     kernel threads as it requested and a per-quantum, affinity-preferring
//     time-sharing placement assigns threads to CPUs.
package rm

import (
	"pdpasim/internal/nthlib"
	"pdpasim/internal/sched"
	"pdpasim/internal/selfanalyzer"
)

// Manager is what the system driver and queuing system need from a resource
// manager.
type Manager interface {
	// Name identifies the scheduling regime in results.
	Name() string
	// StartJob places a new application under the manager's control.
	StartJob(id sched.JobID, rt *nthlib.Runtime)
	// ReportPerformance delivers a SelfAnalyzer measurement for a job.
	ReportPerformance(id sched.JobID, m selfanalyzer.Measurement)
	// JobFinished removes a completed application.
	JobFinished(id sched.JobID)
	// CanAdmit reports whether the queuing system may start another job —
	// the processor-scheduler side of the coordinated multiprogramming
	// level (Section 4.3).
	CanAdmit() bool
	// Running returns the number of jobs under control.
	Running() int
	// SetAdmissionChanged registers a callback invoked whenever admission
	// conditions may have improved (allocations settled, jobs finished).
	SetAdmissionChanged(func())
}
