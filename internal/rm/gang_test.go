package rm

import (
	"testing"

	"pdpasim/internal/app"
	"pdpasim/internal/machine"
	"pdpasim/internal/nthlib"
	"pdpasim/internal/sched"
	"pdpasim/internal/sim"
	"pdpasim/internal/trace"
)

func gangEnv(ncpu int) (*sim.Engine, *GangManager, *trace.Recorder) {
	eng := sim.NewEngine()
	rec := trace.NewRecorder(ncpu)
	mach := machine.New(ncpu, rec)
	return eng, NewGangManager(eng, mach, rec, GangConfig{}), rec
}

func gangJobOn(eng *sim.Engine, mgr *GangManager, id sched.JobID, class app.Class, request int, done *int) *nthlib.Runtime {
	prof := app.ProfileFor(class)
	rt := nthlib.New(eng, prof, request, nil, nthlib.Hooks{
		OnDone: func() {
			mgr.JobFinished(id)
			if done != nil {
				*done++
			}
		},
	})
	mgr.StartJob(id, rt)
	return rt
}

func TestGangSingleJobRunsFullSpeed(t *testing.T) {
	eng, mgr, _ := gangEnv(60)
	done := 0
	gangJobOn(eng, mgr, 0, app.Apsi, 2, &done)
	eng.RunUntilIdle()
	if done != 1 {
		t.Fatal("job did not finish")
	}
	// One row: no time slicing, finish near the dedicated time (plus the
	// initial switch penalty).
	want := app.ProfileFor(app.Apsi).DedicatedTime(2)
	if got := eng.Now(); got < want || got > want+5*sim.Second {
		t.Fatalf("finish at %v, want ~%v", got, want)
	}
	if mgr.Rows() != 0 {
		t.Fatalf("rows = %d after completion", mgr.Rows())
	}
}

func TestGangPacksRowsFirstFit(t *testing.T) {
	eng, mgr, _ := gangEnv(60)
	gangJobOn(eng, mgr, 0, app.BT, 30, nil)
	gangJobOn(eng, mgr, 1, app.BT, 30, nil) // fits row 0 (30+30=60)
	if mgr.Rows() != 1 {
		t.Fatalf("rows = %d, want 1 (two 30s pack)", mgr.Rows())
	}
	gangJobOn(eng, mgr, 2, app.BT, 30, nil) // opens row 1
	if mgr.Rows() != 2 {
		t.Fatalf("rows = %d, want 2", mgr.Rows())
	}
	_ = eng
}

func TestGangTimeDilation(t *testing.T) {
	// Two rows: each job runs ~half the time, so completion takes ~2x the
	// dedicated time.
	eng, mgr, _ := gangEnv(8)
	var doneAt [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		id := sched.JobID(i)
		prof := app.ProfileFor(app.Apsi)
		rt := nthlib.New(eng, prof, 8, nil, nthlib.Hooks{
			OnDone: func() { mgr.JobFinished(id); doneAt[i] = eng.Now() },
		})
		mgr.StartJob(id, rt)
	}
	if mgr.Rows() != 2 {
		t.Fatalf("rows = %d", mgr.Rows())
	}
	eng.RunUntilIdle()
	dedicated := app.ProfileFor(app.Apsi).DedicatedTime(8)
	first := doneAt[0]
	if doneAt[1] < first {
		first = doneAt[1]
	}
	if first < sim.Time(float64(dedicated)*1.7) {
		t.Fatalf("first completion at %v, want >= ~2x dedicated %v", first, dedicated)
	}
}

func TestGangNoMigrations(t *testing.T) {
	eng, mgr, rec := gangEnv(8)
	for i := 0; i < 3; i++ {
		id := sched.JobID(i)
		prof := app.ProfileFor(app.Hydro2D)
		rt := nthlib.New(eng, prof, 6, nil, nthlib.Hooks{
			OnDone: func() { mgr.JobFinished(id) },
		})
		mgr.StartJob(id, rt)
	}
	eng.Run(120 * sim.Second)
	// Gangs have fixed CPU sets: the whole point versus IRIX.
	if rec.Migrations() > 0 {
		t.Fatalf("migrations = %d, want 0", rec.Migrations())
	}
}

func TestGangRowCompaction(t *testing.T) {
	eng, mgr, _ := gangEnv(60)
	done := 0
	gangJobOn(eng, mgr, 0, app.Swim, 40, &done) // row 0 (short job)
	gangJobOn(eng, mgr, 1, app.BT, 30, &done)   // row 1
	// Let the short swim finish; bt must then run every slot.
	eng.Run(60 * sim.Second)
	if done != 1 {
		t.Fatalf("done = %d, want the short job finished", done)
	}
	if mgr.Rows() != 1 {
		t.Fatalf("rows = %d after compaction, want 1", mgr.Rows())
	}
	eng.RunUntilIdle()
	if done != 2 {
		t.Fatal("bt did not finish")
	}
}

func TestGangRequestAboveMachineClamped(t *testing.T) {
	eng, mgr, _ := gangEnv(8)
	done := 0
	gangJobOn(eng, mgr, 0, app.Apsi, 64, &done)
	eng.RunUntilIdle()
	if done != 1 {
		t.Fatal("oversized job did not finish")
	}
}

func TestGangUnknownJobFinishedIgnored(t *testing.T) {
	_, mgr, _ := gangEnv(4)
	mgr.JobFinished(99) // must not panic
	if mgr.Name() != "Gang" || !mgr.CanAdmit() {
		t.Fatal("identity")
	}
}
