// Package invariant checks cross-cutting scheduling invariants — the
// properties that must hold for every policy, workload, and failure mode:
// allocated CPUs never exceed the machine, no CPU is held after its job
// completes, multiprogramming-level accounting never goes negative, and job
// lifecycles are well-ordered.
//
// Two complementary levels:
//
//   - Checker consumes the decision-trace event stream (obs.ExportEvent —
//     the facade's TraceEvent is an alias, so a Checker plugs straight into
//     an Observer) and verifies the invariants online as events arrive.
//     Allocation invariants ride on realloc events, which only the
//     space-sharing resource managers record; IRIX time-sharing runs are
//     covered by lifecycle and MPL accounting here and by CheckResult below.
//   - CheckResult inspects a completed run's recorded execution history
//     (burst-level CPU ownership, per-job allocation series, MPL timeline)
//     and applies the machine-level forms of the same invariants — including
//     CPU conservation for time-sharing policies, which the event stream
//     cannot see.
package invariant

import (
	"fmt"
	"sort"
	"sync"

	"pdpasim/internal/metrics"
	"pdpasim/internal/obs"
	"pdpasim/internal/sim"
	"pdpasim/internal/trace"
)

// maxViolations bounds how many violations a checker retains; a broken run
// can produce one per event, and the first few localize the bug.
const maxViolations = 50

// Checker verifies invariants over a decision-trace event stream. Feed it
// events through Observe, then read Violations (or Err). Safe for
// concurrent use; events are expected in recorded order.
type Checker struct {
	mu         sync.Mutex
	ncpu       int
	total      int // sum of live allocations (space-sharing runs)
	queued     int
	running    int
	jobs       map[int]*jobState
	violations []string
	suppressed int
}

type jobState struct {
	alloc   int
	arrived bool
	started bool
	done    bool
	doneAt  int64 // event time (µs) of completion
}

// New returns an empty checker; the machine size is learned from the
// run_start event.
func New() *Checker {
	return &Checker{jobs: make(map[int]*jobState)}
}

func (c *Checker) violate(format string, args ...any) {
	if len(c.violations) >= maxViolations {
		c.suppressed++
		return
	}
	c.violations = append(c.violations, fmt.Sprintf(format, args...))
}

func (c *Checker) job(id int) *jobState {
	js, ok := c.jobs[id]
	if !ok {
		js = &jobState{}
		c.jobs[id] = js
	}
	return js
}

// Observe feeds one event. The signature matches pdpasim.ObserverFunc
// (TraceEvent aliases obs.ExportEvent), so a Checker can watch a run live:
//
//	opts.Observer = pdpasim.ObserverFunc(chk.Observe)
func (c *Checker) Observe(e obs.ExportEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()

	switch e.Kind {
	case "run_start":
		c.ncpu = e.Procs
	case "job_arrive":
		js := c.job(e.Job)
		if js.arrived {
			c.violate("job %d arrived twice", e.Job)
			return
		}
		js.arrived = true
		c.queued++
	case "job_start":
		js := c.job(e.Job)
		switch {
		case !js.arrived:
			c.violate("job %d started before arriving", e.Job)
		case js.started:
			c.violate("job %d started twice", e.Job)
		case js.done:
			c.violate("job %d started after completing", e.Job)
		}
		js.started = true
		c.queued--
		c.running++
		if c.queued < 0 {
			c.violate("queued-job accounting negative (%d) at job %d start", c.queued, e.Job)
		}
	case "job_done":
		js := c.job(e.Job)
		switch {
		case !js.started:
			c.violate("job %d completed without starting", e.Job)
		case js.done:
			c.violate("job %d completed twice", e.Job)
		}
		js.done = true
		js.doneAt = e.AtUS
		c.running--
		if c.running < 0 {
			c.violate("MPL accounting negative (%d) at job %d completion", c.running, e.Job)
		}
		// The resource manager releases the job's partition at the same
		// instant without tracing a realloc; mirror the implicit release so
		// the conservation sum stays honest. CheckResult verifies from the
		// burst history that the CPUs really were given back.
		c.total -= js.alloc
		js.alloc = 0
	case "realloc":
		js := c.job(e.Job)
		if js.done {
			c.violate("job %d reallocated (%d→%d CPUs) after completing", e.Job, e.Old, e.New)
			return
		}
		if js.alloc != e.Old {
			c.violate("job %d realloc claims old=%d but it holds %d", e.Job, e.Old, js.alloc)
		}
		if e.New < 0 {
			c.violate("job %d reallocated to negative %d CPUs", e.Job, e.New)
		}
		c.total += e.New - js.alloc
		js.alloc = e.New
		if c.ncpu > 0 && c.total > c.ncpu {
			c.violate("allocated %d CPUs at t=%dµs exceeds machine size %d", c.total, e.AtUS, c.ncpu)
		}
	case "run_end":
		for id, js := range c.jobs {
			if js.started && !js.done {
				c.violate("job %d still running at run end", id)
			}
			if js.alloc != 0 {
				c.violate("job %d holds %d CPUs at run end", id, js.alloc)
			}
		}
		if c.running > 0 {
			c.violate("MPL accounting shows %d running jobs at run end", c.running)
		}
	}
}

// Violations returns the recorded violations (nil when every invariant held).
func (c *Checker) Violations() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]string(nil), c.violations...)
	if c.suppressed > 0 {
		out = append(out, fmt.Sprintf("... and %d more suppressed", c.suppressed))
	}
	return out
}

// Err returns nil when every invariant held, else an error summarizing the
// first violations.
func (c *Checker) Err() error {
	v := c.Violations()
	if len(v) == 0 {
		return nil
	}
	n := len(v)
	if n > 5 {
		v = v[:5]
	}
	return fmt.Errorf("invariant: %d violation(s): %v", n, v)
}

// CheckResult verifies machine-level invariants over a completed run's
// recorded execution history (the run must have kept bursts): per-CPU bursts
// never overlap (no CPU has two owners), no burst outlives its job or
// predates its start, the instantaneous total allocation never exceeds the
// machine, every job ends holding zero processors, and the MPL timeline is
// ordered and non-negative. It returns the violations found, nil when clean.
func CheckResult(res *metrics.RunResult) []string {
	var v []string
	rec := res.Recorder
	if rec == nil {
		return []string{"run kept no recorder (Config.KeepBursts unset); burst invariants unverifiable"}
	}
	start := make(map[int]sim.Time, len(res.Jobs))
	end := make(map[int]sim.Time, len(res.Jobs))
	for _, j := range res.Jobs {
		start[j.ID] = j.Start
		end[j.ID] = j.End
	}

	byCPU := make(map[int][]trace.Burst)
	for _, b := range rec.Bursts() {
		if b.End < b.Start {
			v = append(v, fmt.Sprintf("CPU %d: burst for job %d runs backwards (%v > %v)", b.CPU, b.Job, b.Start, b.End))
		}
		e, known := end[b.Job]
		if !known {
			v = append(v, fmt.Sprintf("CPU %d: burst for unknown job %d", b.CPU, b.Job))
		} else {
			if b.End > e {
				v = append(v, fmt.Sprintf("CPU %d held by job %d until %v, after its completion at %v", b.CPU, b.Job, b.End, e))
			}
			if b.Start < start[b.Job] {
				v = append(v, fmt.Sprintf("CPU %d ran job %d from %v, before its start at %v", b.CPU, b.Job, b.Start, start[b.Job]))
			}
		}
		byCPU[b.CPU] = append(byCPU[b.CPU], b)
	}
	for cpu, bs := range byCPU {
		sort.Slice(bs, func(i, j int) bool { return bs[i].Start < bs[j].Start })
		for i := 1; i < len(bs); i++ {
			if bs[i].Start < bs[i-1].End {
				v = append(v, fmt.Sprintf("CPU %d double-owned: job %d until %v overlaps job %d from %v",
					cpu, bs[i-1].Job, bs[i-1].End, bs[i].Job, bs[i].Start))
			}
		}
	}

	// CPU conservation from the per-job allocation series: at every instant
	// the summed allocation must fit the machine, and every job's series
	// must return to zero.
	type step struct {
		at    sim.Time
		delta int
	}
	var steps []step
	for _, j := range res.Jobs {
		prev := 0
		for _, p := range rec.AllocationHistory(j.ID) {
			if p.At > j.End && p.Value > 0 {
				v = append(v, fmt.Sprintf("job %d allocated %d processors at %v, after its completion at %v", j.ID, p.Value, p.At, j.End))
			}
			steps = append(steps, step{p.At, p.Value - prev})
			prev = p.Value
		}
		// The manager releases the partition at completion without recording
		// a zero sample; close the series at the job's end time.
		if prev != 0 {
			steps = append(steps, step{j.End, -prev})
		}
	}
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].at < steps[j].at })
	total := 0
	for i := 0; i < len(steps); {
		at := steps[i].at
		// Apply every step of the instant before judging it, so a release
		// and a grant at the same timestamp never look like a transient
		// over-allocation.
		for i < len(steps) && steps[i].at == at {
			total += steps[i].delta
			i++
		}
		if total > rec.NCPU() {
			v = append(v, fmt.Sprintf("allocated %d CPUs at %v exceeds machine size %d", total, at, rec.NCPU()))
		}
		if total < 0 {
			v = append(v, fmt.Sprintf("allocation accounting negative (%d) at %v", total, at))
		}
	}

	prevAt := sim.Time(-1)
	for _, p := range res.MPLTimeline {
		if p.Value < 0 {
			v = append(v, fmt.Sprintf("MPL negative (%d) at %v", p.Value, p.At))
		}
		if p.At < prevAt {
			v = append(v, fmt.Sprintf("MPL timeline out of order at %v", p.At))
		}
		prevAt = p.At
	}

	if len(v) > maxViolations {
		v = append(v[:maxViolations], fmt.Sprintf("... and %d more suppressed", len(v)-maxViolations))
	}
	return v
}
