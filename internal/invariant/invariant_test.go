package invariant

import (
	"strings"
	"testing"

	"pdpasim/internal/obs"
)

func ev(kind string, at int64, job int) obs.ExportEvent {
	return obs.ExportEvent{Kind: kind, AtUS: at, Job: job}
}

func realloc(at int64, job, old, new_ int) obs.ExportEvent {
	return obs.ExportEvent{Kind: "realloc", AtUS: at, Job: job, Old: old, New: new_}
}

func feed(events ...obs.ExportEvent) *Checker {
	c := New()
	for _, e := range events {
		c.Observe(e)
	}
	return c
}

func TestCleanStreamHasNoViolations(t *testing.T) {
	c := feed(
		obs.ExportEvent{Kind: "run_start", Procs: 4},
		ev("job_arrive", 0, 0),
		ev("job_start", 0, 0),
		realloc(0, 0, 0, 4),
		ev("job_arrive", 5, 1),
		ev("job_start", 5, 1),
		realloc(5, 0, 4, 2),
		realloc(5, 1, 0, 2),
		// Completion releases the partition implicitly (managers do not
		// trace the release); the survivor may absorb it at the same instant.
		ev("job_done", 10, 0),
		realloc(10, 1, 2, 4),
		ev("job_done", 20, 1),
		ev("run_end", 20, -1),
	)
	if err := c.Err(); err != nil {
		t.Fatalf("clean stream flagged: %v", err)
	}
}

func TestOverAllocationDetected(t *testing.T) {
	c := feed(
		obs.ExportEvent{Kind: "run_start", Procs: 4},
		ev("job_arrive", 0, 0), ev("job_start", 0, 0),
		ev("job_arrive", 0, 1), ev("job_start", 0, 1),
		realloc(0, 0, 0, 3),
		realloc(0, 1, 0, 3), // 6 > 4
	)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "exceeds machine") {
		t.Fatalf("over-allocation not flagged: %v", err)
	}
}

func TestReallocAfterCompletionDetected(t *testing.T) {
	c := feed(
		obs.ExportEvent{Kind: "run_start", Procs: 4},
		ev("job_arrive", 0, 0), ev("job_start", 0, 0),
		realloc(0, 0, 0, 2),
		ev("job_done", 10, 0),
		realloc(15, 0, 0, 2), // a completed job must never be granted CPUs
	)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "after completing") {
		t.Fatalf("realloc-after-completion not flagged: %v", err)
	}
}

func TestNegativeMPLDetected(t *testing.T) {
	c := feed(
		obs.ExportEvent{Kind: "run_start", Procs: 4},
		ev("job_arrive", 0, 0), ev("job_start", 0, 0),
		ev("job_done", 5, 0),
		ev("job_done", 6, 0), // double completion drives running negative
	)
	err := c.Err()
	if err == nil || !strings.Contains(err.Error(), "completed twice") ||
		!strings.Contains(err.Error(), "MPL accounting negative") {
		t.Fatalf("double completion / negative MPL not flagged: %v", err)
	}
}

func TestLifecycleOrderDetected(t *testing.T) {
	c := feed(
		obs.ExportEvent{Kind: "run_start", Procs: 4},
		ev("job_start", 0, 7), // never arrived
	)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "before arriving") {
		t.Fatalf("start-before-arrive not flagged: %v", err)
	}
}

func TestReallocMismatchDetected(t *testing.T) {
	c := feed(
		obs.ExportEvent{Kind: "run_start", Procs: 8},
		ev("job_arrive", 0, 0), ev("job_start", 0, 0),
		realloc(0, 0, 3, 4), // claims old=3 while the job holds 0
	)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "claims old=3") {
		t.Fatalf("realloc mismatch not flagged: %v", err)
	}
}

func TestUnfinishedJobAtRunEndDetected(t *testing.T) {
	c := feed(
		obs.ExportEvent{Kind: "run_start", Procs: 4},
		ev("job_arrive", 0, 0), ev("job_start", 0, 0),
		ev("run_end", 10, -1),
	)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "still running at run end") {
		t.Fatalf("unfinished job not flagged: %v", err)
	}
}
