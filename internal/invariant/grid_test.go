package invariant

import (
	"fmt"
	"testing"

	"pdpasim/internal/obs"
	"pdpasim/internal/sim"
	"pdpasim/internal/system"
	"pdpasim/internal/workload"
)

// TestFaultFreeGrid runs every policy against every workload mix and demands
// zero violations from both checker levels — the baseline the chaos suite's
// under-injection runs are compared against.
func TestFaultFreeGrid(t *testing.T) {
	policies := append(system.ExtendedPolicyKinds(), system.AdaptivePDPA)
	mixes := []string{"w1", "w2", "w3", "w4"}
	for _, pol := range policies {
		for _, mixName := range mixes {
			t.Run(fmt.Sprintf("%s/%s", pol, mixName), func(t *testing.T) {
				mix, err := workload.MixByName(mixName)
				if err != nil {
					t.Fatal(err)
				}
				w, err := workload.Generate(workload.GenConfig{
					Mix: mix, Load: 0.8, NCPU: 32, Window: 60 * sim.Second, Seed: 7,
				})
				if err != nil {
					t.Fatal(err)
				}
				chk := New()
				tr := obs.NewTrace(-1) // stream-only: the checker is the consumer
				tr.SetSink(func(seq int, e obs.Event) { chk.Observe(obs.Export(seq, e)) })
				res, err := system.Run(system.Config{
					Workload:   w,
					Policy:     pol,
					Seed:       7,
					KeepBursts: true,
					Trace:      tr,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := chk.Err(); err != nil {
					t.Errorf("stream invariants: %v", err)
				}
				if v := CheckResult(res); len(v) != 0 {
					t.Errorf("recorded-history invariants: %v", v)
				}
			})
		}
	}
}
