package metrics

import (
	"math"
	"strings"
	"testing"

	"pdpasim/internal/app"
	"pdpasim/internal/sim"
	"pdpasim/internal/trace"
)

func mkResult() *RunResult {
	return &RunResult{
		Policy: "PDPA", Workload: "w1", Load: 0.8, MPL: 4, NCPU: 60,
		Jobs: []JobResult{
			{ID: 0, Class: app.Swim, Submit: 0, Start: 10 * sim.Second, End: 20 * sim.Second, CPUSeconds: 100},
			{ID: 1, Class: app.Swim, Submit: 5 * sim.Second, Start: 15 * sim.Second, End: 35 * sim.Second, CPUSeconds: 300},
			{ID: 2, Class: app.BT, Submit: 0, Start: 0, End: 100 * sim.Second, CPUSeconds: 2000},
		},
		Makespan: 100 * sim.Second,
	}
}

func TestJobResultTimes(t *testing.T) {
	j := JobResult{Submit: sim.Second, Start: 3 * sim.Second, End: 10 * sim.Second}
	if j.Response() != 9*sim.Second {
		t.Fatalf("response = %v", j.Response())
	}
	if j.Execution() != 7*sim.Second {
		t.Fatalf("execution = %v", j.Execution())
	}
}

func TestByClassAverages(t *testing.T) {
	r := mkResult()
	resp := r.ResponseByClass()
	// swim: (20-0)=20 and (35-5)=30 => mean 25.
	if math.Abs(resp[app.Swim]-25) > 1e-9 {
		t.Fatalf("swim response = %v", resp[app.Swim])
	}
	if math.Abs(resp[app.BT]-100) > 1e-9 {
		t.Fatalf("bt response = %v", resp[app.BT])
	}
	exec := r.ExecutionByClass()
	if math.Abs(exec[app.Swim]-15) > 1e-9 {
		t.Fatalf("swim exec = %v", exec[app.Swim])
	}
	if got := r.CPUSecondsTotal(); got != 2400 {
		t.Fatalf("cpu total = %v", got)
	}
}

func TestClassesCanonicalOrder(t *testing.T) {
	r := mkResult()
	cs := r.Classes()
	if len(cs) != 2 || cs[0] != app.Swim || cs[1] != app.BT {
		t.Fatalf("classes = %v", cs)
	}
}

func TestMinMaxAllocByClass(t *testing.T) {
	r := &RunResult{Jobs: []JobResult{
		{Class: app.Swim, AvgAlloc: 2},
		{Class: app.Swim, AvgAlloc: 28},
		{Class: app.BT, AvgAlloc: 15},
	}}
	lo, hi := r.MinMaxAllocByClass(app.Swim)
	if lo != 2 || hi != 28 {
		t.Fatalf("lo=%v hi=%v", lo, hi)
	}
	lo, hi = r.MinMaxAllocByClass(app.Apsi)
	if lo != 0 || hi != 0 {
		t.Fatalf("absent class lo=%v hi=%v", lo, hi)
	}
}

func TestStringRendering(t *testing.T) {
	s := mkResult().String()
	for _, want := range []string{"PDPA", "w1", "swim", "bt.A", "resp="} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in %q", want, s)
		}
	}
}

func TestIntegrateAllocation(t *testing.T) {
	hist := []trace.TimePoint{
		{At: 0, Value: 4},
		{At: 10 * sim.Second, Value: 8},
		{At: 20 * sim.Second, Value: 0},
	}
	// 4×10 + 8×10 + 0×10 = 120 cpu-seconds.
	if got := IntegrateAllocation(hist, 30*sim.Second); got != 120 {
		t.Fatalf("integral = %v", got)
	}
	if got := IntegrateAllocation(nil, 30*sim.Second); got != 0 {
		t.Fatalf("empty integral = %v", got)
	}
	// End before the last point: the truncated segment contributes nothing
	// negative.
	if got := IntegrateAllocation(hist, 5*sim.Second); got != 20 {
		t.Fatalf("truncated integral = %v", got)
	}
}

func TestTimeWeightedMPL(t *testing.T) {
	tl := []trace.TimePoint{
		{At: 0, Value: 2},
		{At: 10 * sim.Second, Value: 4},
	}
	// 2 for 10s, 4 for 10s => 3.
	if got := TimeWeightedMPL(tl, 20*sim.Second); got != 3 {
		t.Fatalf("avg MPL = %v", got)
	}
	if got := TimeWeightedMPL(nil, 20*sim.Second); got != 0 {
		t.Fatalf("empty avg MPL = %v", got)
	}
}

func TestSortJobs(t *testing.T) {
	r := &RunResult{Jobs: []JobResult{{ID: 2}, {ID: 0}, {ID: 1}}}
	r.SortJobs()
	for i, j := range r.Jobs {
		if j.ID != i {
			t.Fatalf("order broken: %v", r.Jobs)
		}
	}
}

func TestSlowdownAggregation(t *testing.T) {
	r := &RunResult{Jobs: []JobResult{
		{Class: app.Swim, Slowdown: 2},
		{Class: app.Swim, Slowdown: 4},
		{Class: app.BT, Slowdown: 1.5},
		{Class: app.Apsi}, // zero slowdown (unknown) excluded from stats
	}}
	by := r.SlowdownByClass()
	if by[app.Swim] != 3 || by[app.BT] != 1.5 {
		t.Fatalf("by class = %v", by)
	}
	s := r.SlowdownStats()
	if s.N() != 3 || s.Max() != 4 {
		t.Fatalf("stats = %v", s)
	}
}
